// Capacity planning: the Sec III-c cost-transparency argument as a tool.
// Given a target sustained throughput, size both architectures from the
// calibrated model — "simply multiplying the hardware and average energy
// cost of a single node" for MicroFaaS — and compare acquisition cost,
// power, and 5-year TCO.
//
//	go run ./examples/capacityplanning [func-per-min]
package main

import (
	"fmt"
	"log"
	"math"
	"os"
	"strconv"

	"microfaas/internal/model"
	"microfaas/internal/power"
	"microfaas/internal/tco"
)

func main() {
	target := 10000.0 // func/min
	if len(os.Args) > 1 {
		v, err := strconv.ParseFloat(os.Args[1], 64)
		if err != nil || v <= 0 {
			log.Fatal("usage: capacityplanning [positive func-per-min]")
		}
		target = v
	}

	// Per-node throughput from the calibrated model.
	sbcPerMin := 60 / model.MeanCycleTime(model.ARM, model.DefaultWorkerLink(model.ARM)).Seconds()
	serverPerMin := model.SaturatedThroughput() // one server packed with VMs

	sbcs := int(math.Ceil(target / sbcPerMin))
	servers := int(math.Ceil(target / serverPerMin))

	fmt.Printf("target: %.0f func/min sustained\n\n", target)
	fmt.Printf("per-node capability (calibrated model):\n")
	fmt.Printf("  one SBC:               %6.1f func/min\n", sbcPerMin)
	fmt.Printf("  one saturated server:  %6.1f func/min\n\n", serverPerMin)

	a := tco.PaperAssumptions()
	mfSpec := tco.ClusterSpec{Name: "microfaas", Nodes: sbcs,
		NodeCost: a.SBCCost, NodeLoadW: a.SBCLoadW, NodeIdleW: a.SBCIdleW}
	convSpec := tco.ClusterSpec{Name: "conventional", Nodes: servers,
		NodeCost: a.ServerCost, NodeLoadW: a.ServerLoadW, NodeIdleW: a.ServerIdleW}

	fmt.Printf("%-24s %14s %14s\n", "", "microfaas", "conventional")
	fmt.Printf("%-24s %14d %14d\n", "nodes", sbcs, servers)
	fmt.Printf("%-24s %14d %14d\n", "ToR switches",
		tco.Switches(sbcs, a), tco.Switches(servers, a))
	fmt.Printf("%-24s %13.1fkm %13.1fkm\n", "Cat6 cabling",
		tco.CableKilometers(sbcs, a), tco.CableKilometers(servers, a))
	fmt.Printf("%-24s %13.1fkW %13.1fkW\n", "power under full load",
		loadKW(sbcs, a.SBCLoadW, tco.Switches(sbcs, a)),
		loadKW(servers, a.ServerLoadW, tco.Switches(servers, a)))

	for _, sc := range []tco.Scenario{tco.Ideal(), tco.Realistic()} {
		mf, err := tco.Lifetime(mfSpec, sc, a)
		if err != nil {
			log.Fatal(err)
		}
		conv, err := tco.Lifetime(convSpec, sc, a)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-24s %13.0fk %13.0fk  (%.1f%% savings)\n",
			"5y TCO, "+sc.Name, mf.Total()/1000, conv.Total()/1000,
			(1-mf.Total()/conv.Total())*100)
	}
	fmt.Println("\nthe MicroFaaS estimate is a tight bound: node count × unit cost — the")
	fmt.Println("provider-side cost transparency the paper argues for in Sec III-c.")
}

// loadKW is the full-load IT power of nodes plus switches, in kilowatts.
func loadKW(nodes int, nodeW float64, switches int) float64 {
	return (float64(nodes)*nodeW + float64(switches)*float64(power.DefaultSwitchModel().Power())) / 1000
}
