// TCO what-if analysis: recompute the paper's Table II under varying
// electricity prices and SBC costs, and find the SBC price at which the
// MicroFaaS rack stops being cheaper.
//
//	go run ./examples/tcoanalysis
package main

import (
	"fmt"
	"log"

	"microfaas/internal/tco"
)

func main() {
	base, err := tco.TableII()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline (paper Appendix assumptions):\n")
	for _, row := range base {
		fmt.Printf("  %-9s conventional $%8.0f vs MicroFaaS $%8.0f → %.1f%% savings\n",
			row.Scenario.Name, row.Conventional.Total(), row.MicroFaaS.Total(), row.Savings()*100)
	}

	// 1. Electricity price sweep: dearer power widens MicroFaaS's lead.
	fmt.Printf("\nsavings vs electricity price (realistic scenario):\n")
	for _, price := range []float64{0.05, 0.10, 0.20, 0.30, 0.40} {
		a := tco.PaperAssumptions()
		a.PricePerKWh = price
		s, err := savings(a, tco.Realistic())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  $%.2f/kWh → %5.1f%%\n", price, s*100)
	}

	// 2. SBC cost sweep: the BOM driver of the MicroFaaS side.
	fmt.Printf("\nsavings vs SBC unit cost (realistic scenario):\n")
	for _, cost := range []float64{25, 52.5, 75, 100, 125} {
		a := tco.PaperAssumptions()
		a.SBCCost = cost
		s, err := savings(a, tco.Realistic())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  $%6.2f/SBC → %5.1f%%\n", cost, s*100)
	}

	// 3. Break-even SBC price (bisection on savings = 0).
	lo, hi := 52.5, 400.0
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		a := tco.PaperAssumptions()
		a.SBCCost = mid
		s, err := savings(a, tco.Realistic())
		if err != nil {
			log.Fatal(err)
		}
		if s > 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	fmt.Printf("\nbreak-even SBC price (realistic scenario): $%.2f (paper's BeagleBone: $52.50)\n", lo)
}

// savings computes the MicroFaaS TCO advantage under custom assumptions.
func savings(a tco.Assumptions, sc tco.Scenario) (float64, error) {
	conv, err := tco.Lifetime(tco.ConventionalRack(a), sc, a)
	if err != nil {
		return 0, err
	}
	mf, err := tco.Lifetime(tco.MicroFaaSRack(a), sc, a)
	if err != nil {
		return 0, err
	}
	return 1 - mf.Total()/conv.Total(), nil
}
