// Throughput matching: find the conventional-cluster VM count whose
// throughput matches an N-SBC MicroFaaS cluster — the paper's procedure
// for choosing its 6-VM configuration (Sec V) — and compare their energy
// costs at the matched point.
//
//	go run ./examples/throughputmatch [sbcs]
package main

import (
	"fmt"
	"log"
	"os"
	"strconv"

	"microfaas"
)

func main() {
	sbcs := 10
	if len(os.Args) > 1 {
		n, err := strconv.Atoi(os.Args[1])
		if err != nil || n <= 0 {
			log.Fatalf("usage: throughputmatch [positive sbc count]")
		}
		sbcs = n
	}

	target, mfJoules := measureMicroFaaS(sbcs)
	fmt.Printf("%d-SBC MicroFaaS cluster: %.1f func/min at %.2f J/function\n\n", sbcs, target, mfJoules)

	fmt.Printf("%-5s %12s %12s\n", "vms", "func/min", "J/function")
	matched := 0
	var matchedJoules float64
	for vms := 1; vms <= 32; vms++ {
		thpt, joules := measureConventional(vms)
		marker := ""
		if matched == 0 && thpt >= target {
			matched, matchedJoules = vms, joules
			marker = "  <- first configuration to match"
		}
		fmt.Printf("%-5d %12.1f %12.1f%s\n", vms, thpt, joules, marker)
		if matched != 0 && vms >= matched+2 {
			break
		}
	}
	if matched == 0 {
		fmt.Println("\nno VM count matched — the server saturates below the target")
		return
	}
	fmt.Printf("\nmatched at %d VMs; energy ratio conventional/MicroFaaS = %.1fx\n",
		matched, matchedJoules/mfJoules)
	fmt.Printf("(the paper matches its 10-SBC cluster with 6 VMs and measures 5.6x)\n")
}

func measureMicroFaaS(sbcs int) (throughput, joules float64) {
	s, err := microfaas.NewMicroFaaSSim(sbcs, microfaas.SimOptions{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := s.RunSuite(30, nil); err != nil {
		log.Fatal(err)
	}
	st := s.Stats()
	return st.ThroughputPerMin, st.JoulesPerFunction
}

func measureConventional(vms int) (throughput, joules float64) {
	s, err := microfaas.NewConventionalSim(vms, microfaas.SimOptions{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := s.RunSuite(20, nil); err != nil {
		log.Fatal(err)
	}
	st := s.Stats()
	// Measured capacity: completions over makespan (counts contention).
	return float64(st.Completed) / (st.MakespanS / 60), st.JoulesPerFunction
}
