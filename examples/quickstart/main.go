// Quickstart: boot a live in-process MicroFaaS cluster — real backing
// services, real TCP workers — and invoke workload functions through the
// orchestration platform.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"microfaas"
)

func main() {
	// A 4-worker MicroFaaS deployment with a 25 ms simulated reboot
	// between jobs (the BeagleBone pays 1.51 s; see -boot-delay on
	// cmd/microfaas-live for paper-faithful pacing).
	cl, err := microfaas.StartLiveCluster(microfaas.LiveOptions{
		Workers:   4,
		BootDelay: 25 * time.Millisecond,
		Meter:     true,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()
	fmt.Printf("cluster up: %d single-tenant run-to-completion workers\n\n", len(cl.Workers))

	// Invoke a CPU-bound function with explicit arguments...
	out := invoke(cl, "CascSHA", []byte(`{"rounds":2500,"seed":"microfaas"}`))
	fmt.Printf("CascSHA     → %s\n", out)

	// ...a network-bound function against the real KV service...
	out = invoke(cl, "RedisInsert", []byte(`{"key":"user:42","value":"quickstart"}`))
	fmt.Printf("RedisInsert → %s\n", out)

	// ...and a few generated invocations of the whole suite.
	rng := rand.New(rand.NewSource(7))
	for _, f := range microfaas.Functions()[:5] {
		cl.Orch.Submit(f.Name, f.GenArgs(rng))
	}
	cl.Orch.Quiesce()

	fmt.Println("\nper-function statistics:")
	for _, st := range cl.Orch.Collector().ByFunction() {
		fmt.Printf("  %-12s ×%d  exec %v, overhead %v\n",
			st.Function, st.Count,
			st.MeanExec.Round(time.Microsecond),
			st.MeanOverhead.Round(time.Microsecond))
	}
	energy := cl.Meter.TotalEnergy(cl.Runtime.Now())
	fmt.Printf("\nmodelled cluster energy so far: %.3f J\n", float64(energy))
}

// invoke submits one job and waits for its result.
func invoke(cl *microfaas.LiveCluster, fn string, args []byte) string {
	done := make(chan string, 1)
	cl.Orch.SubmitAsync(fn, args, func(res microfaas.InvocationResult) {
		if res.Err != "" {
			done <- "ERROR: " + res.Err
			return
		}
		done <- string(res.Output)
	})
	select {
	case s := <-done:
		return s
	case <-time.After(time.Minute):
		return "TIMEOUT"
	}
}
