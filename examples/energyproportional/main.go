// Energy proportionality (Fig 5): compare cluster power draw as workers
// activate, on the simulator. The MicroFaaS cluster's powered-down nodes
// draw ≈0.13 W each, so power tracks load almost perfectly linearly; the
// rack server burns 60 W before it runs a single function.
//
//	go run ./examples/energyproportional
package main

import (
	"fmt"
	"log"
	"strings"

	"microfaas"
)

func main() {
	pts, err := microfaas.Fig5(microfaas.Fig5Config{MaxWorkers: 10, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("cluster power vs active workers (10-node clusters)")
	fmt.Printf("%-8s %-12s %-42s %-12s\n", "active", "microfaas", "", "conventional")
	maxW := pts[len(pts)-1].ConventionalWatts
	for _, p := range pts {
		fmt.Printf("%-8d %8.2f W  %-42s %8.2f W  %s\n",
			p.ActiveWorkers,
			p.MicroFaaSWatts, bar(p.MicroFaaSWatts, maxW, 40),
			p.ConventionalWatts, bar(p.ConventionalWatts, maxW, 40))
	}

	idle, full := pts[0], pts[len(pts)-1]
	fmt.Printf("\nidle draw:  MicroFaaS %.2f W vs conventional %.2f W (%.0fx)\n",
		idle.MicroFaaSWatts, idle.ConventionalWatts,
		idle.ConventionalWatts/idle.MicroFaaSWatts)
	mfRange := full.MicroFaaSWatts - idle.MicroFaaSWatts
	convRange := full.ConventionalWatts - idle.ConventionalWatts
	fmt.Printf("dynamic range used for actual work: MicroFaaS %.0f%% of peak vs conventional %.0f%%\n",
		mfRange/full.MicroFaaSWatts*100, convRange/full.ConventionalWatts*100)
}

// bar renders a proportional ASCII bar.
func bar(v, max float64, width int) string {
	n := int(v / max * float64(width))
	if n < 1 && v > 0 {
		n = 1
	}
	return strings.Repeat("█", n)
}
