// Fault tolerance: inject worker faults into a simulated MicroFaaS
// cluster and show the orchestrator's retry policy masking them — the
// operational upside of hardware-isolated workers (a fault stays on its
// node; the OP just reassigns the job to a different board).
//
//	go run ./examples/faulttolerance
package main

import (
	"fmt"
	"log"
	"net/http"
	"time"

	"microfaas"
)

func main() {
	const faultRate = 0.25

	fmt.Printf("injecting faults into %.0f%% of jobs on a 10-SBC cluster\n\n", faultRate*100)
	fmt.Printf("%-22s %10s %10s %12s\n", "policy", "jobs", "failed", "goodput/min")
	for _, attempts := range []int{1, 2, 4} {
		label := "no retries (paper)"
		if attempts > 1 {
			label = fmt.Sprintf("up to %d attempts", attempts)
		}
		jobs, failed, goodput := run(faultRate, attempts)
		fmt.Printf("%-22s %10d %10d %12.1f\n", label, jobs, failed, goodput)
	}

	fmt.Println("\nretries re-run failed jobs on a different board; the per-job failure")
	fmt.Printf("probability drops from %.0f%% to %.2f%% at 4 attempts (0.25^4).\n",
		faultRate*100, 100*faultRate*faultRate*faultRate*faultRate)

	hangDemo()
	metricsDemo()
}

// metricsDemo runs a clean cluster with telemetry enabled, scrapes the
// gateway's /metrics endpoint the way a Prometheus server would, and
// prints the paper's J/function headline from the scraped counters —
// cross-checked against the same number derived offline from the trace
// collector and the Appendix power model.
func metricsDemo() {
	tel := microfaas.NewTelemetry()
	s, err := microfaas.NewMicroFaaSSim(10, microfaas.SimOptions{Seed: 42, Telemetry: tel})
	if err != nil {
		log.Fatal(err)
	}
	coll, err := s.RunSuite(5, nil)
	if err != nil {
		log.Fatal(err)
	}

	gw, err := microfaas.NewGateway(s.Orch, microfaas.GatewayOptions{Mode: "sim", Telemetry: tel})
	if err != nil {
		log.Fatal(err)
	}
	addr, err := gw.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer gw.Close()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	samples, err := microfaas.ParseMetrics(resp.Body)
	if err != nil {
		log.Fatal(err)
	}

	// The same joules, two independent ways: scraped from the per-function
	// energy counters, and reconstructed from trace records priced at the
	// Appendix draw constants (boot seconds at boot draw, overhead+exec at
	// busy draw).
	sbc := microfaas.DefaultSBCPowerModel()
	var scraped, derived float64
	invocations := 0
	for _, r := range coll.Records() {
		derived += r.Boot.Seconds()*float64(sbc.Power(microfaas.PowerBooting)) +
			(r.Overhead + r.Exec).Seconds()*float64(sbc.Power(microfaas.PowerBusy))
		invocations++
	}
	for _, fn := range microfaas.FunctionNames() {
		j, ok := samples.Value("microfaas_function_energy_joules_total", "function", fn)
		if !ok {
			log.Fatalf("no energy counter for %s", fn)
		}
		scraped += j
	}

	fmt.Printf("\nscraping /metrics on a clean 10-SBC run (%d invocations)\n\n", invocations)
	fmt.Printf("%-38s %10.2f J\n", "energy scraped from /metrics", scraped)
	fmt.Printf("%-38s %10.2f J\n", "energy derived from trace collector", derived)
	fmt.Printf("%-38s %9.3f%%\n", "disagreement", 100*(scraped-derived)/derived)
	fmt.Printf("%-38s %10.2f J  (paper: %.1f)\n", "J/function",
		scraped/float64(invocations), microfaas.PaperMicroFaaSJoules)
	fmt.Println("\nthe counters and the trace agree: metered energy attribution is the")
	fmt.Println("same measurement as the offline trace analysis, available live.")
}

// hangDemo injects wedges: workers that power on, take the job, and never
// report back. A wedge is worse than a clean fault — there is no error to
// retry on — so masking it takes the full failure path: a per-invocation
// deadline to detect it, a retry to re-run the job elsewhere, and a
// circuit breaker to stop assigning work to the wedged board.
func hangDemo() {
	const hangRate = 0.02

	fmt.Printf("\nwedging workers mid-job on %.0f%% of invocations\n\n", hangRate*100)

	// Without deadlines the cluster cannot even drain: the wedged workers
	// hold their queues forever.
	s, err := microfaas.NewMicroFaaSSim(10, microfaas.SimOptions{
		Seed:     42,
		HangRate: hangRate,
	})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := s.RunSuite(20, nil); err != nil {
		fmt.Printf("%-22s %s\n", "no deadlines", err)
	} else {
		fmt.Printf("%-22s run unexpectedly drained\n", "no deadlines")
	}

	// With deadlines + retries + the breaker the same seed completes: every
	// wedge costs one timed-out attempt, the job finishes on another board,
	// and the wedged board is ejected from assignment.
	s, err = microfaas.NewMicroFaaSSim(10, microfaas.SimOptions{
		Seed:             42,
		HangRate:         hangRate,
		MaxAttempts:      4,
		JobTimeout:       10 * time.Minute,
		BreakerThreshold: 1,
		BreakerProbe:     1000 * time.Hour,
	})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := s.RunSuite(20, nil); err != nil {
		log.Fatal(err)
	}
	wedges := 0
	for _, w := range s.Workers {
		wedges += w.Hangs()
	}
	jobs, lost := 0, 0
	finalErr := map[int64]bool{}
	for _, r := range s.Orch.Collector().Records() {
		finalErr[r.JobID] = r.Err != ""
	}
	for _, bad := range finalErr {
		jobs++
		if bad {
			lost++
		}
	}
	ejected := 0
	for _, h := range s.Orch.Health() {
		if h.State == microfaas.BreakerOpen {
			ejected++
		}
	}
	fmt.Printf("%-22s %d jobs, %d wedges hit, %d jobs lost, %d boards ejected\n",
		"deadline + breaker", jobs, wedges, lost, ejected)
	fmt.Println("\nthe deadline converts a silent wedge into a retryable timeout; the")
	fmt.Println("breaker keeps new work off the wedged board until it is probed again.")
}

// run drives one cluster configuration and reports job-level outcomes.
func run(faultRate float64, maxAttempts int) (jobs, failed int, goodputPerMin float64) {
	s, err := microfaas.NewMicroFaaSSim(10, microfaas.SimOptions{
		Seed:        42,
		FailureRate: faultRate,
		MaxAttempts: maxAttempts,
	})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := s.RunSuite(20, nil); err != nil {
		log.Fatal(err)
	}
	// Group attempts by job id; a job fails only if its final attempt did.
	finalErr := map[int64]bool{}
	for _, r := range s.Orch.Collector().Records() {
		finalErr[r.JobID] = r.Err != ""
	}
	for _, bad := range finalErr {
		jobs++
		if bad {
			failed++
		}
	}
	st := s.Stats()
	return jobs, failed, float64(jobs-failed) / (st.MakespanS / 60)
}
