package telemetry

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// TextContentType is the Content-Type of the Prometheus text exposition
// format this package writes.
const TextContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders every registered family in the Prometheus text
// exposition format (# HELP, # TYPE, then one sample line per child;
// histograms expand to _bucket/_sum/_count). Families are sorted by name
// and children by creation order, so output is stable between scrapes.
// A nil registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	return r.WritePrometheusLabeled(w, "", "")
}

// WritePrometheusLabeled is WritePrometheus with one extra label pair
// injected into every sample line (before any le bucket label). A
// sharded gateway uses it to merge per-shard registries into one
// exposition — each shard's samples carry shard="N", so same-named
// series from different shards stay distinct and aggregate with Sum.
// Empty labelName injects nothing.
func (r *Registry) WritePrometheusLabeled(w io.Writer, labelName, labelValue string) error {
	if r == nil {
		return nil
	}
	for _, f := range r.sortedFamilies() {
		if err := f.write(w, labelName, labelValue); err != nil {
			return err
		}
	}
	return nil
}

func (f *family) write(w io.Writer, extraName, extraValue string) error {
	if f.help != "" {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ); err != nil {
		return err
	}
	if f.fn != nil {
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.name,
			labelString(nil, nil, extraName, extraValue, "", 0), formatValue(f.fn()))
		return err
	}
	for _, c := range f.order {
		if err := f.writeChild(w, c, extraName, extraValue); err != nil {
			return err
		}
	}
	return nil
}

func (f *family) writeChild(w io.Writer, c *child, extraName, extraValue string) error {
	if f.typ != TypeHistogram {
		_, err := fmt.Fprintf(w, "%s%s %s\n",
			f.name, labelString(f.labels, c.labelValues, extraName, extraValue, "", 0),
			formatValue(math.Float64frombits(c.bits.Load())))
		return err
	}
	c.mu.Lock()
	counts := append([]uint64(nil), c.counts...)
	sum, count := c.sum, c.count
	c.mu.Unlock()
	for i, bound := range c.bucketBounds {
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
			f.name, labelString(f.labels, c.labelValues, extraName, extraValue, "le", bound), counts[i]); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
		f.name, labelString(f.labels, c.labelValues, extraName, extraValue, "le", math.Inf(1)), counts[len(counts)-1]); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n",
		f.name, labelString(f.labels, c.labelValues, extraName, extraValue, "", 0), formatValue(sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n",
		f.name, labelString(f.labels, c.labelValues, extraName, extraValue, "", 0), count)
	return err
}

// labelString renders {k="v",...}, optionally injecting one extra label
// pair and appending an le bucket label; it returns "" when there are no
// labels at all.
func labelString(names, values []string, extraName, extraValue, le string, bound float64) string {
	if len(names) == 0 && extraName == "" && le == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(names[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	if extraName != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraName)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(extraValue))
		b.WriteByte('"')
	}
	if le != "" {
		if len(names) > 0 || extraName != "" {
			b.WriteByte(',')
		}
		b.WriteString(le)
		b.WriteString(`="`)
		b.WriteString(formatValue(bound))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// formatValue renders a sample value the way Prometheus expects: shortest
// round-trip float, with +Inf/-Inf/NaN spelled out.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	default:
		return strconv.FormatFloat(v, 'g', -1, 64)
	}
}

// escapeLabel escapes a label value per the text format: backslash,
// double-quote, and newline.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

// escapeHelp escapes a help string: backslash and newline only.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
