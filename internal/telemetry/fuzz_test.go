package telemetry

import (
	"errors"
	"math"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// exposeSamples renders parsed samples back into the exposition format
// ParseText consumes — the inverse used to close the fuzz round-trip.
// Label sets are always braced (a sample parsed from `{} 1` has an empty
// name) and values print with full float64 round-trip precision.
func exposeSamples(ss Samples) string {
	var b strings.Builder
	for _, s := range ss {
		b.WriteString(s.Name)
		b.WriteByte('{')
		keys := make([]string, 0, len(s.Labels))
		for k := range s.Labels {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for i, k := range keys {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(k)
			b.WriteString(`="`)
			v := s.Labels[k]
			v = strings.ReplaceAll(v, `\`, `\\`)
			v = strings.ReplaceAll(v, `"`, `\"`)
			v = strings.ReplaceAll(v, "\n", `\n`)
			b.WriteString(v)
			b.WriteByte('"')
		}
		b.WriteString("} ")
		switch {
		case math.IsInf(s.Value, 1):
			b.WriteString("+Inf")
		case math.IsInf(s.Value, -1):
			b.WriteString("-Inf")
		case math.IsNaN(s.Value):
			b.WriteString("NaN")
		default:
			b.WriteString(strconv.FormatFloat(s.Value, 'g', -1, 64))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func sameValue(a, b float64) bool {
	return a == b || (math.IsNaN(a) && math.IsNaN(b))
}

// FuzzParseMetrics feeds arbitrary text to the exposition parser. It must
// never panic; whatever it accepts must survive a full
// parse -> expose -> parse round trip with identical samples — the
// guarantee that lets faasctl top and the test suite treat /metrics
// scrapes as a lossless view of the registry.
func FuzzParseMetrics(f *testing.F) {
	f.Add("# HELP microfaas_invocations_total Completed invocations.\n# TYPE microfaas_invocations_total counter\nmicrofaas_invocations_total{worker=\"sbc-0\",result=\"ok\"} 41\n")
	f.Add("microfaas_queue_depth{worker=\"sbc-3\"} 2\n")
	f.Add("microfaas_invocation_seconds_bucket{function=\"AES128\",le=\"0.5\"} 17\nmicrofaas_invocation_seconds_bucket{function=\"AES128\",le=\"+Inf\"} 20\nmicrofaas_invocation_seconds_sum{function=\"AES128\"} 8.25\nmicrofaas_invocation_seconds_count{function=\"AES128\"} 20\n")
	f.Add("up 1\n\n# stray comment\nweird{a=\"b \\\"quoted\\\" and \\\\ back\",c=\"line\\nbreak\"} -0.5\n")
	f.Add("nan_metric NaN\nneg_inf -Inf\n")
	f.Add("{} 3\n")        // empty name, empty labels
	f.Add("broken{a= 1\n") // unterminated label set
	f.Add("novalue\n")
	// A line over MaxLineBytes: must surface LineTooLongError with the
	// preceding samples intact, never a silent whole-document failure.
	f.Add("before_wall 1\nhuge{x=\"" + strings.Repeat("a", MaxLineBytes+1) + "\"} 2\n")
	// Shard-labeled lines, as WritePrometheusLabeled emits them: the same
	// series name split across shard label values, histogram buckets with
	// the injected label next to le, and escapes inside label values.
	f.Add("jobs_total{function=\"CascSHA\",result=\"ok\",shard=\"shard-00\"} 3\njobs_total{function=\"CascSHA\",result=\"ok\",shard=\"shard-01\"} 4\n")
	f.Add("lat_seconds_bucket{mode=\"sim\",shard=\"shard-00\",le=\"0.5\"} 1\nlat_seconds_bucket{mode=\"sim\",shard=\"shard-00\",le=\"+Inf\"} 2\nlat_seconds_sum{mode=\"sim\",shard=\"shard-00\"} 0.7\nlat_seconds_count{mode=\"sim\",shard=\"shard-00\"} 2\n")
	f.Add("esc{shard=\"sh\\\"ard\\\\00\\nline\"} 1\n")
	f.Add("dup{a=\"x\",a=\"y\"} 1\n") // duplicate label key

	f.Fuzz(func(t *testing.T, text string) {
		ss, err := ParseText(strings.NewReader(text))
		if err != nil {
			var tooLong *LineTooLongError
			if errors.As(err, &tooLong) {
				// The degraded-scrape contract: the samples returned
				// alongside a LineTooLongError are fully parsed and must
				// round trip like any accepted document.
				ss2, err2 := ParseText(strings.NewReader(exposeSamples(ss)))
				if err2 != nil || len(ss2) != len(ss) {
					t.Fatalf("partial samples did not round trip: %v (%d -> %d)", err2, len(ss), len(ss2))
				}
			}
			return // rejected input is fine; panics are the failure mode
		}
		rendered := exposeSamples(ss)
		ss2, err := ParseText(strings.NewReader(rendered))
		if err != nil {
			t.Fatalf("re-parse of exposed samples failed: %v\nexposed:\n%s", err, rendered)
		}
		if len(ss2) != len(ss) {
			t.Fatalf("round trip changed sample count: %d -> %d\nexposed:\n%s", len(ss), len(ss2), rendered)
		}
		for i := range ss {
			a, b := ss[i], ss2[i]
			if a.Name != b.Name {
				t.Fatalf("sample %d name %q -> %q", i, a.Name, b.Name)
			}
			if !sameValue(a.Value, b.Value) {
				t.Fatalf("sample %d (%s) value %v -> %v", i, a.Name, a.Value, b.Value)
			}
			if len(a.Labels) != len(b.Labels) {
				t.Fatalf("sample %d (%s) labels %v -> %v", i, a.Name, a.Labels, b.Labels)
			}
			for k, v := range a.Labels {
				if b.Labels[k] != v {
					t.Fatalf("sample %d (%s) label %q: %q -> %q", i, a.Name, k, v, b.Labels[k])
				}
			}
		}
	})
}
