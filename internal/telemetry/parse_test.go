package telemetry

import (
	"errors"
	"strings"
	"testing"
)

// TestParseTextLineTooLongReturnsPartial locks the degraded-scrape
// contract: a line over MaxLineBytes yields the samples parsed before it
// plus a typed *LineTooLongError naming the line where parsing stopped.
func TestParseTextLineTooLongReturnsPartial(t *testing.T) {
	doc := "good_metric 1\nanother{w=\"sbc-0\"} 2\n" +
		"huge{x=\"" + strings.Repeat("a", MaxLineBytes+1) + "\"} 3\n" +
		"after_the_wall 4\n"
	ss, err := ParseText(strings.NewReader(doc))
	if err == nil {
		t.Fatal("oversized line parsed without error")
	}
	var tooLong *LineTooLongError
	if !errors.As(err, &tooLong) {
		t.Fatalf("error %v (%T) is not a *LineTooLongError", err, err)
	}
	if tooLong.Line != 3 {
		t.Fatalf("LineTooLongError.Line = %d, want 3", tooLong.Line)
	}
	if tooLong.Limit != MaxLineBytes {
		t.Fatalf("LineTooLongError.Limit = %d, want %d", tooLong.Limit, MaxLineBytes)
	}
	// The two clean lines before the wall must have survived.
	if len(ss) != 2 {
		t.Fatalf("partial parse returned %d samples, want 2", len(ss))
	}
	if v, ok := ss.Value("good_metric"); !ok || v != 1 {
		t.Fatalf("good_metric = %v, %v", v, ok)
	}
	if v, ok := ss.Value("another", "w", "sbc-0"); !ok || v != 2 {
		t.Fatalf("another = %v, %v", v, ok)
	}
}

// TestParseTextMaxLengthLineStillParses pins the boundary: a line of
// exactly MaxLineBytes parses normally.
func TestParseTextMaxLengthLineStillParses(t *testing.T) {
	line := "m{x=\"" + strings.Repeat("a", MaxLineBytes-10) + "\"} 7"
	if len(line) > MaxLineBytes {
		t.Fatalf("test bug: line is %d bytes", len(line))
	}
	ss, err := ParseText(strings.NewReader(line + "\n"))
	if err != nil {
		t.Fatalf("max-length line failed: %v", err)
	}
	if v, ok := ss.Value("m"); !ok || v != 7 {
		t.Fatalf("m = %v, %v", v, ok)
	}
}
