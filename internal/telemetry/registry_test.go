package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("jobs_total", "jobs", "worker", "sbc-000")
	c.Inc()
	c.Add(2.5)
	if got := c.Value(); got != 3.5 {
		t.Fatalf("counter = %v, want 3.5", got)
	}
	// Get-or-create: same handle for same labels, distinct otherwise.
	if r.Counter("jobs_total", "jobs", "worker", "sbc-000") != c {
		t.Fatal("same labels returned a different handle")
	}
	if r.Counter("jobs_total", "jobs", "worker", "sbc-001") == c {
		t.Fatal("different labels shared a handle")
	}
	g := r.Gauge("queue_depth", "depth")
	g.Set(4)
	g.Add(-1)
	if got := g.Value(); got != 3 {
		t.Fatalf("gauge = %v, want 3", got)
	}
}

func TestCounterNegativeAddPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative counter add did not panic")
		}
	}()
	NewRegistry().Counter("c_total", "").Add(-1)
}

func TestTypeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("x_total", "")
}

func TestLabelMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("y_total", "", "worker", "a")
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched label names did not panic")
		}
	}()
	r.Counter("y_total", "", "function", "a")
}

func TestInvalidNamesPanic(t *testing.T) {
	for _, name := range []string{"", "9lead", "has space", "dash-ed"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("name %q accepted", name)
				}
			}()
			NewRegistry().Counter(name, "")
		}()
	}
}

func TestNilSafety(t *testing.T) {
	var tel *Telemetry
	tel.Emit(0, EventSubmit, 1, "f", "w", 0, "")
	var r *Registry
	c := r.Counter("a_total", "")
	c.Inc()
	c.Add(2)
	if c.Value() != 0 {
		t.Fatal("nil counter holds a value")
	}
	g := r.Gauge("b", "")
	g.Set(1)
	g.Add(1)
	if g.Value() != 0 {
		t.Fatal("nil gauge holds a value")
	}
	h := r.Histogram("h", "", []float64{1})
	h.Observe(0.5)
	if h.Count() != 0 || h.Sum() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil histogram holds samples")
	}
	r.CounterFunc("fn_total", "", nil) // nil fn on nil registry: no panic
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	var l *EventLog
	if l.Append(Event{}) != 0 || l.Since(-1, 0) != nil || l.LastSeq() != -1 || l.Len() != 0 {
		t.Fatal("nil event log misbehaved")
	}
	if tel.Registry() != nil || tel.Events() != nil {
		t.Fatal("nil telemetry exposed non-nil parts")
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "latency", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d", h.Count())
	}
	if math.Abs(h.Sum()-106.05) > 1e-9 {
		t.Fatalf("sum = %v", h.Sum())
	}
	// Cumulative buckets: ≤0.1 → 1, ≤1 → 3, ≤10 → 4, +Inf → 5.
	if q := h.Quantile(0.5); q != 1 {
		t.Fatalf("p50 = %v, want 1", q)
	}
	// p99 lands in the +Inf bucket → highest finite bound.
	if q := h.Quantile(0.99); q != 10 {
		t.Fatalf("p99 = %v, want 10", q)
	}
	if q := h.Quantile(0); q != 0.1 {
		t.Fatalf("p0 = %v, want 0.1", q)
	}
}

func TestLogBucketsMirrorTraceHistogram(t *testing.T) {
	b := LogBuckets(0.001, 60, 14)
	if len(b) != 14 || b[0] != 0.001 || b[13] != 60 {
		t.Fatalf("buckets = %v", b)
	}
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("buckets not increasing at %d: %v", i, b)
		}
	}
}

func TestConcurrentCounters(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("conc_total", "")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %v, want 8000", c.Value())
	}
}

func TestExpositionFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("microfaas_jobs_submitted_total", "Jobs accepted by the OP.").Add(3)
	r.Gauge("microfaas_queue_depth", "Queued jobs.", "worker", `od"d\x`).Set(2)
	r.Histogram("microfaas_latency_seconds", "", []float64{0.5, 5}).Observe(0.2)
	r.GaugeFunc("microfaas_power_watts", "Instantaneous draw.", func() float64 { return 19.6 })
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE microfaas_jobs_submitted_total counter\n",
		"microfaas_jobs_submitted_total 3\n",
		"# HELP microfaas_jobs_submitted_total Jobs accepted by the OP.\n",
		`microfaas_queue_depth{worker="od\"d\\x"} 2` + "\n",
		"# TYPE microfaas_latency_seconds histogram\n",
		`microfaas_latency_seconds_bucket{le="0.5"} 1` + "\n",
		`microfaas_latency_seconds_bucket{le="+Inf"} 1` + "\n",
		"microfaas_latency_seconds_sum 0.2\n",
		"microfaas_latency_seconds_count 1\n",
		"microfaas_power_watts 19.6\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// Families are sorted by name: jobs < latency < power < queue.
	idx := func(s string) int { return strings.Index(out, "# TYPE "+s) }
	if !(idx("microfaas_jobs_submitted_total") < idx("microfaas_latency_seconds") &&
		idx("microfaas_latency_seconds") < idx("microfaas_power_watts") &&
		idx("microfaas_power_watts") < idx("microfaas_queue_depth")) {
		t.Fatalf("families not sorted:\n%s", out)
	}
}

func TestParseRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "help", "function", "Casc SHA").Add(7)
	r.Histogram("lat_seconds", "", []float64{0.1, 1}, "mode", "sim").Observe(0.05)
	r.GaugeFunc("watts", "", func() float64 { return 1.5 })
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	ss, err := ParseText(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := ss.Value("a_total", "function", "Casc SHA"); !ok || v != 7 {
		t.Fatalf("a_total = %v, %v", v, ok)
	}
	if v, ok := ss.Value("watts"); !ok || v != 1.5 {
		t.Fatalf("watts = %v, %v", v, ok)
	}
	if v, ok := ss.Value("lat_seconds_count", "mode", "sim"); !ok || v != 1 {
		t.Fatalf("lat count = %v, %v", v, ok)
	}
	if q := ss.HistogramQuantile("lat_seconds", 0.5, "mode", "sim"); q != 0.1 {
		t.Fatalf("parsed p50 = %v, want 0.1", q)
	}
	if fns := ss.LabelValues("a_total", "function"); len(fns) != 1 || fns[0] != "Casc SHA" {
		t.Fatalf("label values = %v", fns)
	}
}

// TestLabeledExpositionRoundTrip closes the loop a sharded gateway
// depends on: WritePrometheusLabeled injects a shard label into every
// sample line — escapes and all — and ParseText recovers the exact
// label set, so per-shard series stay distinct and aggregate with Sum.
func TestLabeledExpositionRoundTrip(t *testing.T) {
	// The injected value exercises every escape the text format defines.
	shardValue := "sh\"ard\\00\nline"
	r := NewRegistry()
	r.Counter("jobs_total", "jobs", "function", "Casc SHA", "result", "ok").Add(3)
	r.Counter("jobs_total", "jobs", "function", "Casc SHA", "result", "error").Add(1)
	r.Histogram("lat_seconds", "", []float64{0.1, 1}, "mode", "sim").Observe(0.05)
	r.GaugeFunc("watts", "", func() float64 { return 2.5 })

	var b strings.Builder
	if err := r.WritePrometheusLabeled(&b, "shard", shardValue); err != nil {
		t.Fatal(err)
	}
	ss, err := ParseText(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("labeled exposition does not parse: %v\n%s", err, b.String())
	}
	for _, s := range ss {
		if s.Labels["shard"] != shardValue {
			t.Fatalf("sample %s lost the injected label: %v", s.Name, s.Labels)
		}
	}
	// Original labels survive next to the injected one, on scalars and on
	// every expanded histogram series.
	if v, ok := ss.Value("jobs_total", "function", "Casc SHA", "result", "ok", "shard", shardValue); !ok || v != 3 {
		t.Fatalf("ok counter = %v, %v", v, ok)
	}
	for _, name := range []string{"lat_seconds_bucket", "lat_seconds_sum", "lat_seconds_count"} {
		found := false
		for _, s := range ss {
			if s.Name == name && s.Labels["mode"] == "sim" && s.Labels["shard"] == shardValue {
				found = true
			}
		}
		if !found {
			t.Fatalf("%s missing mode+shard labels:\n%s", name, b.String())
		}
	}
	if q := ss.HistogramQuantile("lat_seconds", 0.5, "shard", shardValue); q != 0.1 {
		t.Fatalf("quantile through injected label = %v, want 0.1", q)
	}

	// Two shards' expositions concatenated — exactly what a sharded
	// gateway's /metrics serves — keep same-named series distinct by
	// shard and aggregate with Sum.
	r2 := NewRegistry()
	r2.Counter("jobs_total", "jobs", "function", "Casc SHA", "result", "ok").Add(5)
	if err := r2.WritePrometheusLabeled(&b, "shard", "shard-01"); err != nil {
		t.Fatal(err)
	}
	merged, err := ParseText(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("merged exposition does not parse: %v", err)
	}
	if got := merged.Sum("jobs_total", "function", "Casc SHA", "result", "ok"); got != 8 {
		t.Fatalf("cross-shard Sum = %v, want 8", got)
	}
	if got := merged.Sum("jobs_total", "result", "ok", "shard", "shard-01"); got != 5 {
		t.Fatalf("single-shard Sum = %v, want 5", got)
	}
}
