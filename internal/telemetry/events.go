package telemetry

import "sync"

// Event is one structured invocation-lifecycle event. The sequence number
// is assigned at append time and increases without gaps, so a consumer
// polling Since(lastSeq) can detect loss when the ring overwrote entries
// it had not yet read (returned events then start above lastSeq+1).
type Event struct {
	// Seq is the gap-free append ordinal (see the loss-detection note
	// above).
	Seq int64 `json:"seq"`
	// AtMs is the cluster-clock offset in milliseconds (virtual in sim
	// mode, wall in live mode).
	AtMs float64 `json:"at_ms"`
	// Type is the lifecycle event kind ("submitted", "dispatched", ...).
	Type string `json:"type"`
	// Job is the invocation's job id (0 for cluster-level events).
	Job int64 `json:"job,omitempty"`
	// Function names the invoked workload function.
	Function string `json:"function,omitempty"`
	// Worker names the worker involved, when one is.
	Worker string `json:"worker,omitempty"`
	// Attempt is the retry ordinal the event belongs to (0 = first).
	Attempt int `json:"attempt"`
	// Detail carries event-specific context (fault cause, boot kind, ...).
	Detail string `json:"detail,omitempty"`
}

// EventLog is a fixed-capacity ring buffer of events. Appends never block
// and never grow memory: the oldest events are overwritten. Safe for
// concurrent use; a nil *EventLog no-ops.
type EventLog struct {
	mu    sync.Mutex
	ring  []Event
	next  int64 // sequence number of the next append
	count int64 // total events ever appended (== next)
}

// NewEventLog returns an empty ring holding up to capacity events.
func NewEventLog(capacity int) *EventLog {
	if capacity <= 0 {
		capacity = DefaultEventCapacity
	}
	return &EventLog{ring: make([]Event, capacity)}
}

// Append stamps the event's sequence number and stores it, overwriting
// the oldest entry when full. It returns the assigned sequence number.
func (l *EventLog) Append(ev Event) int64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	ev.Seq = l.next
	l.ring[l.next%int64(len(l.ring))] = ev
	l.next++
	return ev.Seq
}

// Since returns up to max events with sequence numbers strictly greater
// than seq, oldest first (pass seq = -1 for everything retained; max <= 0
// means no limit). Events already overwritten are silently absent.
func (l *EventLog) Since(seq int64, max int) []Event {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.sinceLocked(seq, max)
}

// sinceLocked implements Since under l.mu.
func (l *EventLog) sinceLocked(seq int64, max int) []Event {
	oldest := l.next - int64(len(l.ring))
	if oldest < 0 {
		oldest = 0
	}
	from := seq + 1
	if from < oldest {
		from = oldest
	}
	if from >= l.next {
		return nil
	}
	n := l.next - from
	if max > 0 && n > int64(max) {
		n = int64(max)
	}
	out := make([]Event, 0, n)
	for s := from; s < from+n; s++ {
		out = append(out, l.ring[s%int64(len(l.ring))])
	}
	return out
}

// Gap returns how many events with sequence numbers strictly greater
// than seq the ring has already overwritten — the precise count a
// consumer who last saw seq has lost, rather than the seq-jump inference
// it would otherwise make. Pass seq = -1 to count all loss ever.
func (l *EventLog) Gap(seq int64) int64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.gapLocked(seq)
}

// gapLocked computes Gap under l.mu.
func (l *EventLog) gapLocked(seq int64) int64 {
	oldest := l.next - int64(len(l.ring))
	if oldest < 0 {
		oldest = 0
	}
	lost := oldest - (seq + 1)
	if lost < 0 {
		return 0
	}
	return lost
}

// Page atomically reads one poll's worth of state: the events Since(seq,
// max) would return, the Gap(seq) loss count, and LastSeq — all under one
// lock acquisition, so a concurrent appender cannot make the three
// disagree (a gap computed after a separate Since call could blame events
// the page actually delivered).
func (l *EventLog) Page(seq int64, max int) (events []Event, gap, lastSeq int64) {
	if l == nil {
		return nil, 0, -1
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.sinceLocked(seq, max), l.gapLocked(seq), l.next - 1
}

// LastSeq returns the sequence number of the most recent event, or -1
// when nothing has been appended.
func (l *EventLog) LastSeq() int64 {
	if l == nil {
		return -1
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.next - 1
}

// Len returns how many events are currently retained.
func (l *EventLog) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.next < int64(len(l.ring)) {
		return int(l.next)
	}
	return len(l.ring)
}
