package telemetry

import (
	"testing"
	"time"
)

func TestEventLogAppendAndSince(t *testing.T) {
	l := NewEventLog(4)
	for i := 0; i < 3; i++ {
		seq := l.Append(Event{Type: EventSubmit, Job: int64(i)})
		if seq != int64(i) {
			t.Fatalf("seq = %d, want %d", seq, i)
		}
	}
	if l.Len() != 3 || l.LastSeq() != 2 {
		t.Fatalf("len=%d lastSeq=%d", l.Len(), l.LastSeq())
	}
	all := l.Since(-1, 0)
	if len(all) != 3 || all[0].Job != 0 || all[2].Job != 2 {
		t.Fatalf("since(-1) = %+v", all)
	}
	tail := l.Since(1, 0)
	if len(tail) != 1 || tail[0].Seq != 2 {
		t.Fatalf("since(1) = %+v", tail)
	}
	if got := l.Since(2, 0); got != nil {
		t.Fatalf("since(last) = %+v, want nil", got)
	}
}

func TestEventLogOverwriteOldest(t *testing.T) {
	l := NewEventLog(4)
	for i := 0; i < 10; i++ {
		l.Append(Event{Job: int64(i)})
	}
	if l.Len() != 4 {
		t.Fatalf("len = %d, want 4", l.Len())
	}
	// Asking from the beginning only yields what the ring retains, and the
	// gap is visible: the first sequence returned is 6, not 0.
	got := l.Since(-1, 0)
	if len(got) != 4 || got[0].Seq != 6 || got[3].Seq != 9 {
		t.Fatalf("retained = %+v", got)
	}
}

func TestEventLogSinceMaxIsOldestFirst(t *testing.T) {
	l := NewEventLog(8)
	for i := 0; i < 6; i++ {
		l.Append(Event{Job: int64(i)})
	}
	got := l.Since(-1, 2)
	if len(got) != 2 || got[0].Seq != 0 || got[1].Seq != 1 {
		t.Fatalf("paged = %+v, want seqs 0,1", got)
	}
}

func TestEventLogGap(t *testing.T) {
	l := NewEventLog(4)
	// Nothing appended: no loss from any vantage point.
	if g := l.Gap(-1); g != 0 {
		t.Fatalf("empty gap = %d", g)
	}
	for i := 0; i < 10; i++ {
		l.Append(Event{Job: int64(i)})
	}
	// Ring holds seqs 6..9; a from-scratch consumer lost 0..5.
	if g := l.Gap(-1); g != 6 {
		t.Fatalf("gap(-1) = %d, want 6", g)
	}
	// A consumer current through seq 4 lost 5 only.
	if g := l.Gap(4); g != 1 {
		t.Fatalf("gap(4) = %d, want 1", g)
	}
	// Current through the oldest survivor or later: nothing lost.
	for _, seq := range []int64{5, 6, 9, 42} {
		if g := l.Gap(seq); g != 0 {
			t.Fatalf("gap(%d) = %d, want 0", seq, g)
		}
	}
	var nilLog *EventLog
	if g := nilLog.Gap(-1); g != 0 {
		t.Fatalf("nil gap = %d", g)
	}
}

func TestEventLogPageAtomicity(t *testing.T) {
	l := NewEventLog(4)
	for i := 0; i < 10; i++ {
		l.Append(Event{Job: int64(i)})
	}
	events, gap, last := l.Page(-1, 0)
	if len(events) != 4 || events[0].Seq != 6 || gap != 6 || last != 9 {
		t.Fatalf("page = %d events from %d, gap %d, last %d", len(events), events[0].Seq, gap, last)
	}
	// Page respects max while still reporting the full gap.
	events, gap, last = l.Page(-1, 2)
	if len(events) != 2 || events[0].Seq != 6 || gap != 6 || last != 9 {
		t.Fatalf("paged = %d events, gap %d, last %d", len(events), gap, last)
	}
	// A caught-up consumer: empty page, no loss.
	events, gap, last = l.Page(9, 0)
	if len(events) != 0 || gap != 0 || last != 9 {
		t.Fatalf("caught-up page = %d events, gap %d, last %d", len(events), gap, last)
	}
	var nilLog *EventLog
	if ev, g, lastSeq := nilLog.Page(-1, 0); ev != nil || g != 0 || lastSeq != -1 {
		t.Fatalf("nil page = %v, %d, %d", ev, g, lastSeq)
	}
}

func TestTelemetryEmit(t *testing.T) {
	tel := NewWithConfig(Config{EventCapacity: 8})
	tel.Emit(1500*time.Millisecond, EventBoot, 7, "CascSHA", "sbc-001", 1, "cold")
	evs := tel.Events().Since(-1, 0)
	if len(evs) != 1 {
		t.Fatalf("events = %+v", evs)
	}
	ev := evs[0]
	if ev.Type != EventBoot || ev.Job != 7 || ev.Function != "CascSHA" ||
		ev.Worker != "sbc-001" || ev.Attempt != 1 || ev.Detail != "cold" || ev.AtMs != 1500 {
		t.Fatalf("event = %+v", ev)
	}
}
