// Package telemetry is the platform's observability layer: a
// dependency-free metrics registry with Prometheus text-format exposition
// and a ring-buffered structured event stream covering the invocation
// lifecycle (submit → queue → assign → boot → exec → settle).
//
// The paper's headline claim is an energy number — 5.7 J/function on the
// SBC cluster — so energy is a first-class exported signal here, not a
// post-hoc computation: workers attribute metered joules to the function
// that consumed them, and the gateway serves the running counters at
// GET /metrics (microfaas_function_energy_joules_total{function=...}).
//
// Everything in this package is nil-safe: a nil *Telemetry, *Registry,
// *Counter, *Gauge, *Histogram, or *EventLog turns every method into a
// no-op, so instrumented code paths need no guards and a disabled
// telemetry layer costs one nil check per call site. Telemetry never
// consumes randomness or schedules events, so enabling it leaves seeded
// simulation runs bit-identical.
package telemetry

import "time"

// Lifecycle event types, in the order one invocation moves through them.
// A retried job loops back to EventQueue with a higher attempt number.
const (
	// EventSubmit: the OP accepted a new job.
	EventSubmit = "submit"
	// EventQueue: an attempt landed on a specific worker's queue
	// (the first time, on retry, and on wedged-queue reassignment).
	EventQueue = "queue"
	// EventAssign: the worker was dispatched onto the attempt.
	EventAssign = "assign"
	// EventBoot: the worker began its power-on/boot phase.
	EventBoot = "boot"
	// EventExec: the worker began executing the function.
	EventExec = "exec"
	// EventSettle: the attempt finished — completed, failed, or timed out.
	EventSettle = "settle"
)

// Alert event types appended by the SLO engine (internal/tsdb) when a
// burn-rate page transitions. They live in the store's own alert ring,
// not the per-shard lifecycle rings, so alert history survives lifecycle
// churn; the Function field carries the rule name and Detail the burn
// numbers at the transition.
const (
	// EventAlertFiring: a burn-rate page crossed its threshold on both
	// windows.
	EventAlertFiring = "alert_firing"
	// EventAlertResolved: a firing page dropped back below threshold.
	EventAlertResolved = "alert_resolved"
)

// DefaultEventCapacity is the event ring's size when Config leaves it zero.
const DefaultEventCapacity = 4096

// Config tunes a Telemetry instance.
type Config struct {
	// EventCapacity bounds the event ring buffer (default
	// DefaultEventCapacity). Older events are overwritten.
	EventCapacity int
}

// Telemetry bundles the metrics registry and the event log. The zero of
// *Telemetry (nil) is a valid, fully disabled instance.
type Telemetry struct {
	registry *Registry
	events   *EventLog
}

// New returns an enabled Telemetry with a default-capacity event ring.
func New() *Telemetry { return NewWithConfig(Config{}) }

// NewWithConfig returns an enabled Telemetry.
func NewWithConfig(cfg Config) *Telemetry {
	capacity := cfg.EventCapacity
	if capacity <= 0 {
		capacity = DefaultEventCapacity
	}
	return &Telemetry{registry: NewRegistry(), events: NewEventLog(capacity)}
}

// Registry returns the metrics registry (nil when telemetry is disabled).
func (t *Telemetry) Registry() *Registry {
	if t == nil {
		return nil
	}
	return t.registry
}

// Events returns the event log (nil when telemetry is disabled).
func (t *Telemetry) Events() *EventLog {
	if t == nil {
		return nil
	}
	return t.events
}

// Emit appends one lifecycle event stamped at cluster-clock offset at.
func (t *Telemetry) Emit(at time.Duration, typ string, job int64, function, worker string, attempt int, detail string) {
	if t == nil {
		return
	}
	t.events.Append(Event{
		AtMs:     float64(at) / float64(time.Millisecond),
		Type:     typ,
		Job:      job,
		Function: function,
		Worker:   worker,
		Attempt:  attempt,
		Detail:   detail,
	})
}
