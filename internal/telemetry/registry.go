package telemetry

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"sync/atomic"
)

// MetricType distinguishes the exposition families.
type MetricType int

const (
	// TypeCounter is a monotonically increasing value.
	TypeCounter MetricType = iota
	// TypeGauge is a value that can go up and down.
	TypeGauge
	// TypeHistogram is a fixed-bucket distribution.
	TypeHistogram
)

// String returns the Prometheus TYPE keyword for the metric kind.
func (t MetricType) String() string {
	switch t {
	case TypeCounter:
		return "counter"
	case TypeGauge:
		return "gauge"
	case TypeHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("type(%d)", int(t))
	}
}

// Registry is a set of named metric families, each holding one child per
// distinct label-value combination. Get-or-create accessors make call
// sites idempotent: asking for the same (name, labels) twice returns the
// same handle. Safe for concurrent use; a nil *Registry no-ops everywhere.
//
// Label-cardinality rule (see DESIGN.md §7): label values must come from
// small, bounded sets — worker ids, function names, short enums. Never
// label by job id, argument content, or timestamps.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// family is one exposition family: a name, help, type, and its children.
type family struct {
	name    string
	help    string
	typ     MetricType
	labels  []string  // label names, creation order
	buckets []float64 // TypeHistogram only
	byKey   map[string]*child
	order   []*child // creation order, for stable exposition
	fn      func() float64
}

// child is one labeled series within a family.
type child struct {
	labelValues []string
	bits        atomic.Uint64 // counter/gauge value as float64 bits

	// histogram state, guarded by mu (only allocated for histograms)
	mu           *sync.Mutex
	bucketBounds []float64 // finite upper bounds, shared with the family
	counts       []uint64  // cumulative per-bucket counts plus +Inf
	sum          float64
	count        uint64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{families: make(map[string]*family)} }

// Counter returns the counter for (name, label pairs), creating family and
// child as needed. kv alternates label name, label value. Misuse —
// invalid names, mismatched label sets, or a name already registered with
// a different type — panics: metric identity is a programming error, not
// a runtime condition.
func (r *Registry) Counter(name, help string, kv ...string) *Counter {
	c := r.get(name, help, TypeCounter, nil, kv)
	if c == nil {
		return nil
	}
	return (*Counter)(c)
}

// Gauge returns the gauge for (name, label pairs); see Counter for rules.
func (r *Registry) Gauge(name, help string, kv ...string) *Gauge {
	c := r.get(name, help, TypeGauge, nil, kv)
	if c == nil {
		return nil
	}
	return (*Gauge)(c)
}

// Histogram returns the histogram for (name, label pairs). buckets are the
// inclusive upper bounds of the fixed buckets, strictly increasing; an
// implicit +Inf bucket is appended. The first creation of a family fixes
// its buckets.
func (r *Registry) Histogram(name, help string, buckets []float64, kv ...string) *Histogram {
	if r != nil && len(buckets) == 0 {
		panic(fmt.Sprintf("telemetry: histogram %s needs at least one bucket", name))
	}
	c := r.get(name, help, TypeHistogram, buckets, kv)
	if c == nil {
		return nil
	}
	return &Histogram{child: c}
}

// CounterFunc registers a counter family whose single unlabeled value is
// read from fn at exposition time (for externally accumulated monotone
// values, e.g. metered joules).
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.registerFunc(name, help, TypeCounter, fn)
}

// GaugeFunc registers a gauge family read from fn at exposition time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.registerFunc(name, help, TypeGauge, fn)
}

func (r *Registry) registerFunc(name, help string, typ MetricType, fn func() float64) {
	if r == nil {
		return
	}
	if fn == nil {
		panic(fmt.Sprintf("telemetry: nil func for %s", name))
	}
	mustValidName(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.families[name]; dup {
		panic(fmt.Sprintf("telemetry: metric %s already registered", name))
	}
	r.families[name] = &family{name: name, help: help, typ: typ, fn: fn}
}

// get is the family/child get-or-create shared by the typed accessors.
func (r *Registry) get(name, help string, typ MetricType, buckets []float64, kv []string) *child {
	if r == nil {
		return nil
	}
	if len(kv)%2 != 0 {
		panic(fmt.Sprintf("telemetry: odd label kv list for %s", name))
	}
	mustValidName(name)
	names := make([]string, 0, len(kv)/2)
	values := make([]string, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		mustValidLabel(kv[i])
		names = append(names, kv[i])
		values = append(values, kv[i+1])
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{
			name:    name,
			help:    help,
			typ:     typ,
			labels:  names,
			buckets: append([]float64(nil), buckets...),
			byKey:   make(map[string]*child),
		}
		for i := 1; i < len(f.buckets); i++ {
			if f.buckets[i] <= f.buckets[i-1] {
				panic(fmt.Sprintf("telemetry: histogram %s buckets not strictly increasing", name))
			}
		}
		r.families[name] = f
	}
	if f.typ != typ {
		panic(fmt.Sprintf("telemetry: metric %s is a %s, requested as %s", name, f.typ, typ))
	}
	if f.fn != nil {
		panic(fmt.Sprintf("telemetry: metric %s is func-backed", name))
	}
	if len(names) != len(f.labels) {
		panic(fmt.Sprintf("telemetry: metric %s has labels %v, requested with %v", name, f.labels, names))
	}
	for i := range names {
		if names[i] != f.labels[i] {
			panic(fmt.Sprintf("telemetry: metric %s has labels %v, requested with %v", name, f.labels, names))
		}
	}
	key := strings.Join(values, "\x00")
	if c, ok := f.byKey[key]; ok {
		return c
	}
	c := &child{labelValues: values}
	if typ == TypeHistogram {
		c.mu = &sync.Mutex{}
		c.bucketBounds = f.buckets
		c.counts = make([]uint64, len(f.buckets)+1)
	}
	f.byKey[key] = c
	f.order = append(f.order, c)
	return c
}

// Counter is a monotonically increasing metric. Nil-safe.
type Counter child

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add adds v (negative deltas panic: counters only go up).
func (c *Counter) Add(v float64) {
	if c == nil {
		return
	}
	if v < 0 {
		panic(fmt.Sprintf("telemetry: negative counter add %v", v))
	}
	(*child)(c).addFloat(v)
}

// Value returns the current count.
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return math.Float64frombits(c.bits.Load())
}

// Gauge is an up-down metric. Nil-safe.
type Gauge child

// Set replaces the value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adjusts the value by v (may be negative).
func (g *Gauge) Add(v float64) {
	if g == nil {
		return
	}
	(*child)(g).addFloat(v)
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// addFloat CAS-adds v to the child's float64 bits.
func (c *child) addFloat(v float64) {
	for {
		old := c.bits.Load()
		newBits := math.Float64bits(math.Float64frombits(old) + v)
		if c.bits.CompareAndSwap(old, newBits) {
			return
		}
	}
}

// Histogram is a fixed-bucket distribution. Nil-safe.
type Histogram struct {
	child *child
}

// Observe adds one sample, counting it into every cumulative le-bucket it
// fits (the Prometheus histogram contract) plus the implicit +Inf bucket.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	c := h.child
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sum += v
	c.count++
	c.counts[len(c.counts)-1]++ // +Inf catches everything
	for i := len(c.bucketBounds) - 1; i >= 0; i-- {
		if v <= c.bucketBounds[i] {
			c.counts[i]++
		} else {
			break
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	h.child.mu.Lock()
	defer h.child.mu.Unlock()
	return h.child.count
}

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	h.child.mu.Lock()
	defer h.child.mu.Unlock()
	return h.child.sum
}

// Quantile returns an upper bound on the q-th quantile — the bound of the
// cumulative bucket containing it (+Inf maps to the last finite bound).
// Mirrors internal/trace.Histogram.Quantile.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("telemetry: quantile %v outside [0,1]", q))
	}
	h.child.mu.Lock()
	defer h.child.mu.Unlock()
	return QuantileFromCumulative(h.child.bucketBounds, h.child.counts, h.child.count, q)
}

// QuantileFromCumulative resolves quantile q over cumulative le-bucket
// counts: bounds are the finite bucket upper bounds, cumulative the
// per-bucket cumulative counts (the +Inf bucket last), total the
// observation count. Samples landing only in the +Inf bucket report
// the highest finite bound (the same convention Prometheus's
// histogram_quantile uses). Shared by Histogram.Quantile,
// Samples.HistogramQuantile, and the tsdb quantile_over_time op.
func QuantileFromCumulative(bounds []float64, cumulative []uint64, total uint64, q float64) float64 {
	if total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	for i, c := range cumulative {
		if c >= rank && i < len(bounds) {
			return bounds[i]
		}
	}
	return bounds[len(bounds)-1]
}

// LogBuckets returns n log-spaced bucket bounds from lo to hi inclusive —
// the same spacing internal/trace.NewHistogram uses for its latency
// report. lo must be positive, hi greater than lo, n at least 2.
func LogBuckets(lo, hi float64, n int) []float64 {
	if lo <= 0 || hi <= lo || n < 2 {
		panic(fmt.Sprintf("telemetry: bad bucket shape lo=%v hi=%v n=%d", lo, hi, n))
	}
	out := make([]float64, n)
	ratio := math.Pow(hi/lo, 1/float64(n-1))
	edge := lo
	for i := 0; i < n; i++ {
		out[i] = edge
		edge *= ratio
	}
	out[n-1] = hi // kill accumulation error on the last edge
	return out
}

// mustValidName panics unless name matches [a-zA-Z_:][a-zA-Z0-9_:]*.
func mustValidName(name string) {
	if !validMetricName(name, true) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
	}
}

// mustValidLabel panics unless name matches [a-zA-Z_][a-zA-Z0-9_]*.
func mustValidLabel(name string) {
	if !validMetricName(name, false) {
		panic(fmt.Sprintf("telemetry: invalid label name %q", name))
	}
}

func validMetricName(name string, allowColon bool) bool {
	if name == "" {
		return false
	}
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
		case r == ':' && allowColon:
		case r >= '0' && r <= '9' && i > 0:
		default:
			return false
		}
	}
	return true
}
