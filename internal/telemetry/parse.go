package telemetry

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// MaxLineBytes is the per-line limit ParseText accepts. Exposition lines
// are one sample each, so even pathological label cardinality fits far
// below it; anything longer is reported as a LineTooLongError instead of
// silently failing the whole document.
const MaxLineBytes = 1024 * 1024

// LineTooLongError reports an exposition line exceeding MaxLineBytes.
// ParseText returns it together with every sample parsed before the
// oversized line, so a scrape with one high-cardinality outlier degrades
// to a partial view instead of nothing. Match with errors.As.
type LineTooLongError struct {
	// Line is the 1-based number of the line where parsing stopped.
	Line int
	// Limit is the per-line byte limit that was exceeded.
	Limit int
}

// Error implements the error interface.
func (e *LineTooLongError) Error() string {
	return fmt.Sprintf("telemetry: line %d exceeds the %d-byte line limit (parse stopped there; earlier samples are valid)", e.Line, e.Limit)
}

// Sample is one parsed exposition line: a metric name, its label set, and
// the sample value. Histogram series appear under their expanded names
// (name_bucket with an "le" label, name_sum, name_count).
type Sample struct {
	// Name is the metric name (histogram series use expanded names).
	Name string
	// Labels is the sample's label set (nil when unlabelled).
	Labels map[string]string
	// Value is the sample value.
	Value float64
}

// Samples is a scrape result with lookup helpers.
type Samples []Sample

// ParseText parses the Prometheus text exposition format (the subset this
// package writes: # comments, name{labels} value lines, +Inf/NaN values).
// It is the client half of WritePrometheus, used by faasctl top and by
// tests cross-checking /metrics against trace-derived numbers.
//
// A line longer than MaxLineBytes stops the parse there: ParseText
// returns the samples parsed so far together with a *LineTooLongError
// carrying the offending line's position, so one high-cardinality
// outlier line degrades the scrape instead of erasing it.
func ParseText(r io.Reader) (Samples, error) {
	var out Samples
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), MaxLineBytes)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		s, err := parseLine(line)
		if err != nil {
			return nil, fmt.Errorf("telemetry: line %d: %w", lineNo, err)
		}
		out = append(out, s)
	}
	if err := sc.Err(); err != nil {
		if errors.Is(err, bufio.ErrTooLong) {
			// The scanner stopped at the line after the last one it
			// delivered; hand back what parsed cleanly.
			return out, &LineTooLongError{Line: lineNo + 1, Limit: MaxLineBytes}
		}
		return nil, fmt.Errorf("telemetry: %w", err)
	}
	return out, nil
}

func parseLine(line string) (Sample, error) {
	s := Sample{Labels: map[string]string{}}
	rest := line
	if i := strings.IndexAny(rest, "{ \t"); i < 0 {
		return s, fmt.Errorf("no value in %q", line)
	} else {
		s.Name = rest[:i]
		rest = rest[i:]
	}
	if strings.HasPrefix(rest, "{") {
		end, err := parseLabels(rest[1:], s.Labels)
		if err != nil {
			return s, err
		}
		rest = rest[1+end:]
	}
	rest = strings.TrimSpace(rest)
	// A trailing timestamp (which we never write) would be a second field.
	if i := strings.IndexAny(rest, " \t"); i >= 0 {
		rest = rest[:i]
	}
	v, err := parseValue(rest)
	if err != nil {
		return s, err
	}
	s.Value = v
	return s, nil
}

// parseLabels consumes `k="v",...}` from in, filling labels, and returns
// the index just past the closing brace.
func parseLabels(in string, labels map[string]string) (int, error) {
	i := 0
	for {
		for i < len(in) && (in[i] == ',' || in[i] == ' ') {
			i++
		}
		if i < len(in) && in[i] == '}' {
			return i + 1, nil
		}
		eq := strings.IndexByte(in[i:], '=')
		if eq < 0 {
			return 0, fmt.Errorf("unterminated label set")
		}
		name := strings.TrimSpace(in[i : i+eq])
		i += eq + 1
		if i >= len(in) || in[i] != '"' {
			return 0, fmt.Errorf("label %s: missing opening quote", name)
		}
		i++
		var b strings.Builder
		for {
			if i >= len(in) {
				return 0, fmt.Errorf("label %s: unterminated value", name)
			}
			c := in[i]
			if c == '\\' && i+1 < len(in) {
				switch in[i+1] {
				case 'n':
					b.WriteByte('\n')
				default:
					b.WriteByte(in[i+1])
				}
				i += 2
				continue
			}
			if c == '"' {
				i++
				break
			}
			b.WriteByte(c)
			i++
		}
		labels[name] = b.String()
	}
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// Value returns the single sample matching name and every given label
// pair, and whether one was found.
func (ss Samples) Value(name string, kv ...string) (float64, bool) {
	for _, s := range ss {
		if s.Name == name && matchLabels(s.Labels, kv) {
			return s.Value, true
		}
	}
	return 0, false
}

// Sum adds every sample matching name and the given label pairs (use it
// to aggregate a family across its remaining labels).
func (ss Samples) Sum(name string, kv ...string) float64 {
	var sum float64
	for _, s := range ss {
		if s.Name == name && matchLabels(s.Labels, kv) {
			sum += s.Value
		}
	}
	return sum
}

// LabelValues returns the sorted distinct values of one label across all
// samples of a family.
func (ss Samples) LabelValues(name, label string) []string {
	seen := map[string]bool{}
	for _, s := range ss {
		if s.Name == name {
			if v, ok := s.Labels[label]; ok && !seen[v] {
				seen[v] = true
			}
		}
	}
	out := make([]string, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// HistogramQuantile resolves quantile q from a family's parsed _bucket
// samples (matching the given non-le label pairs), using the same
// upper-bound convention as Histogram.Quantile. Samples sharing an le
// bound are summed first, so the quantile works over a merged
// exposition (e.g. a sharded gateway's /metrics, where every shard
// contributes the same bucket grid under its own shard label).
func (ss Samples) HistogramQuantile(name string, q float64, kv ...string) float64 {
	byLE := map[float64]uint64{}
	for _, s := range ss {
		if s.Name != name+"_bucket" || !matchLabels(s.Labels, kv) {
			continue
		}
		le, err := parseValue(s.Labels["le"])
		if err != nil {
			continue
		}
		byLE[le] += uint64(s.Value)
	}
	if len(byLE) == 0 {
		return 0
	}
	les := make([]float64, 0, len(byLE))
	for le := range byLE {
		les = append(les, le)
	}
	sort.Float64s(les)
	bounds := make([]float64, 0, len(les))
	counts := make([]uint64, 0, len(les))
	for _, le := range les {
		if !math.IsInf(le, 1) {
			bounds = append(bounds, le)
		}
		counts = append(counts, byLE[le])
	}
	total := counts[len(counts)-1]
	if len(bounds) == 0 || total == 0 {
		return 0
	}
	return QuantileFromCumulative(bounds, counts, total, q)
}

func matchLabels(have map[string]string, kv []string) bool {
	for i := 0; i+1 < len(kv); i += 2 {
		if have[kv[i]] != kv[i+1] {
			return false
		}
	}
	return true
}
