package telemetry

import (
	"math"
	"sort"
)

// Snapshot renders every registered family as structured Samples — the
// exact series WritePrometheusLabeled(w, extraName, extraValue) would
// emit, without a text round-trip. Histogram children expand to their
// _bucket (le-labelled, +Inf included), _sum, and _count series.
// Families come out sorted by name and children in creation order, so
// sample order is stable between scrapes — the property the embedded
// time-series store's deterministic ingest relies on. Empty extraName
// injects nothing. A nil registry returns nil.
func (r *Registry) Snapshot(extraName, extraValue string) Samples {
	if r == nil {
		return nil
	}
	fams := r.sortedFamilies()
	var out Samples
	for _, f := range fams {
		out = f.snapshot(out, extraName, extraValue)
	}
	return out
}

// sortedFamilies returns the registry's families sorted by name, the
// shared ordering contract of exposition and snapshot.
func (r *Registry) sortedFamilies() []*family {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	fams := make([]*family, 0, len(names))
	for _, name := range names {
		fams = append(fams, r.families[name])
	}
	return fams
}

// snapshot appends the family's samples to out.
func (f *family) snapshot(out Samples, extraName, extraValue string) Samples {
	if f.fn != nil {
		return append(out, Sample{Name: f.name, Labels: snapLabels(nil, nil, extraName, extraValue, ""), Value: f.fn()})
	}
	for _, c := range f.order {
		if f.typ != TypeHistogram {
			out = append(out, Sample{
				Name:   f.name,
				Labels: snapLabels(f.labels, c.labelValues, extraName, extraValue, ""),
				Value:  math.Float64frombits(c.bits.Load()),
			})
			continue
		}
		c.mu.Lock()
		counts := append([]uint64(nil), c.counts...)
		sum, count := c.sum, c.count
		c.mu.Unlock()
		for i, bound := range c.bucketBounds {
			out = append(out, Sample{
				Name:   f.name + "_bucket",
				Labels: snapLabels(f.labels, c.labelValues, extraName, extraValue, formatValue(bound)),
				Value:  float64(counts[i]),
			})
		}
		out = append(out, Sample{
			Name:   f.name + "_bucket",
			Labels: snapLabels(f.labels, c.labelValues, extraName, extraValue, "+Inf"),
			Value:  float64(counts[len(counts)-1]),
		})
		out = append(out, Sample{
			Name:   f.name + "_sum",
			Labels: snapLabels(f.labels, c.labelValues, extraName, extraValue, ""),
			Value:  sum,
		})
		out = append(out, Sample{
			Name:   f.name + "_count",
			Labels: snapLabels(f.labels, c.labelValues, extraName, extraValue, ""),
			Value:  float64(count),
		})
	}
	return out
}

// snapLabels builds a sample's label map; nil when there are no labels
// at all (matching ParseText's shape for unlabelled lines is not needed —
// ParseText returns an empty map — but nil keeps unlabelled snapshots
// allocation-free).
func snapLabels(names, values []string, extraName, extraValue, le string) map[string]string {
	n := len(names)
	if extraName != "" {
		n++
	}
	if le != "" {
		n++
	}
	if n == 0 {
		return nil
	}
	m := make(map[string]string, n)
	for i := range names {
		m[names[i]] = values[i]
	}
	if extraName != "" {
		m[extraName] = extraValue
	}
	if le != "" {
		m["le"] = le
	}
	return m
}
