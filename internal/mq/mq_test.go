package mq

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

// --- Broker unit tests ---

func TestProduceAssignsSequentialOffsets(t *testing.T) {
	b := NewBroker()
	for i := int64(0); i < 5; i++ {
		off, err := b.Produce("jobs", nil, []byte(fmt.Sprintf("m%d", i)))
		if err != nil || off != i {
			t.Fatalf("Produce #%d = %d, %v", i, off, err)
		}
	}
	if b.End("jobs") != 5 {
		t.Fatalf("End = %d, want 5", b.End("jobs"))
	}
}

func TestFetchFromOffset(t *testing.T) {
	b := NewBroker()
	for i := 0; i < 10; i++ {
		b.Produce("t", nil, []byte{byte(i)}) //nolint:errcheck
	}
	msgs, err := b.Fetch("t", 7, 100, 0)
	if err != nil || len(msgs) != 3 {
		t.Fatalf("Fetch = %d msgs, %v", len(msgs), err)
	}
	if msgs[0].Offset != 7 || msgs[2].Offset != 9 {
		t.Fatalf("offsets = %d..%d", msgs[0].Offset, msgs[2].Offset)
	}
}

func TestFetchHonorsMax(t *testing.T) {
	b := NewBroker()
	for i := 0; i < 10; i++ {
		b.Produce("t", nil, nil) //nolint:errcheck
	}
	msgs, _ := b.Fetch("t", 0, 4, 0)
	if len(msgs) != 4 {
		t.Fatalf("len = %d, want 4", len(msgs))
	}
}

func TestFetchPastEndReturnsEmptyImmediately(t *testing.T) {
	b := NewBroker()
	start := time.Now()
	msgs, err := b.Fetch("empty", 0, 1, 0)
	if err != nil || len(msgs) != 0 {
		t.Fatalf("Fetch = %v, %v", msgs, err)
	}
	if time.Since(start) > 100*time.Millisecond {
		t.Fatal("non-waiting fetch blocked")
	}
}

func TestFetchLongPollWakesOnProduce(t *testing.T) {
	b := NewBroker()
	done := make(chan []Message, 1)
	go func() {
		msgs, _ := b.Fetch("t", 0, 1, 5*time.Second)
		done <- msgs
	}()
	time.Sleep(20 * time.Millisecond)
	b.Produce("t", nil, []byte("wake")) //nolint:errcheck
	select {
	case msgs := <-done:
		if len(msgs) != 1 || string(msgs[0].Value) != "wake" {
			t.Fatalf("msgs = %v", msgs)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("long poll did not wake on produce")
	}
}

func TestFetchLongPollTimesOut(t *testing.T) {
	b := NewBroker()
	start := time.Now()
	msgs, err := b.Fetch("quiet", 0, 1, 50*time.Millisecond)
	if err != nil || len(msgs) != 0 {
		t.Fatalf("Fetch = %v, %v", msgs, err)
	}
	if elapsed := time.Since(start); elapsed < 40*time.Millisecond || elapsed > 2*time.Second {
		t.Fatalf("timeout took %v", elapsed)
	}
}

func TestCommitAndCommitted(t *testing.T) {
	b := NewBroker()
	if b.Committed("g", "t") != 0 {
		t.Fatal("fresh group should start at 0")
	}
	if err := b.Commit("g", "t", 42); err != nil {
		t.Fatal(err)
	}
	if got := b.Committed("g", "t"); got != 42 {
		t.Fatalf("Committed = %d", got)
	}
	// Groups are independent.
	if b.Committed("other", "t") != 0 {
		t.Fatal("groups must not share commits")
	}
}

func TestValidation(t *testing.T) {
	b := NewBroker()
	if _, err := b.Produce("", nil, nil); err == nil {
		t.Fatal("empty topic accepted")
	}
	if _, err := b.Fetch("", 0, 1, 0); err == nil {
		t.Fatal("empty topic accepted in fetch")
	}
	if _, err := b.Fetch("t", -1, 1, 0); err == nil {
		t.Fatal("negative offset accepted")
	}
	if err := b.Commit("", "t", 0); err == nil {
		t.Fatal("empty group accepted")
	}
	if err := b.Commit("g", "t", -1); err == nil {
		t.Fatal("negative commit accepted")
	}
}

func TestMessagesAreCopied(t *testing.T) {
	b := NewBroker()
	val := []byte("original")
	b.Produce("t", nil, val) //nolint:errcheck
	val[0] = 'X'
	msgs, _ := b.Fetch("t", 0, 1, 0)
	if string(msgs[0].Value) != "original" {
		t.Fatal("Produce aliased caller's buffer")
	}
}

func TestTopics(t *testing.T) {
	b := NewBroker()
	b.Produce("zeta", nil, nil)  //nolint:errcheck
	b.Produce("alpha", nil, nil) //nolint:errcheck
	got := b.Topics()
	if len(got) != 2 || got[0] != "alpha" || got[1] != "zeta" {
		t.Fatalf("Topics = %v", got)
	}
}

func TestCloseWakesBlockedFetch(t *testing.T) {
	b := NewBroker()
	errc := make(chan error, 1)
	go func() {
		_, err := b.Fetch("t", 0, 1, 10*time.Second)
		errc <- err
	}()
	time.Sleep(20 * time.Millisecond)
	b.Close()
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("fetch on closed broker should error")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Close did not wake blocked fetch")
	}
	if _, err := b.Produce("t", nil, nil); err == nil {
		t.Fatal("produce after Close should error")
	}
}

func TestConcurrentProducersTotalOrder(t *testing.T) {
	b := NewBroker()
	var wg sync.WaitGroup
	const producers, each = 4, 100
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if _, err := b.Produce("t", nil, []byte("m")); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	msgs, err := b.Fetch("t", 0, producers*each+1, 0)
	if err != nil || len(msgs) != producers*each {
		t.Fatalf("fetched %d, %v", len(msgs), err)
	}
	for i, m := range msgs {
		if m.Offset != int64(i) {
			t.Fatalf("offset hole at %d: %d", i, m.Offset)
		}
	}
}

// Property: producing N messages then fetching from 0 returns them in
// order with intact payloads.
func TestProduceFetchOrderProperty(t *testing.T) {
	prop := func(payloads [][]byte) bool {
		b := NewBroker()
		for _, p := range payloads {
			if _, err := b.Produce("t", nil, p); err != nil {
				return false
			}
		}
		msgs, err := b.Fetch("t", 0, len(payloads)+1, 0)
		if err != nil || len(msgs) != len(payloads) {
			return len(payloads) == 0 && err == nil
		}
		for i, m := range msgs {
			if !bytes.Equal(m.Value, payloads[i]) || m.Offset != int64(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// --- End-to-end over TCP ---

func startMQServer(t *testing.T) string {
	t.Helper()
	srv := NewServer(nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return addr
}

func dialMQ(t *testing.T, addr string) *Client {
	t.Helper()
	c, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func startMQ(t *testing.T) *Client {
	t.Helper()
	return dialMQ(t, startMQServer(t))
}

func TestEndToEndProduceConsume(t *testing.T) {
	c := startMQ(t)
	off, err := c.Produce("orders", []byte("k1"), []byte("order-1"))
	if err != nil || off != 0 {
		t.Fatalf("Produce = %d, %v", off, err)
	}
	off, err = c.Produce("orders", nil, []byte("order-2"))
	if err != nil || off != 1 {
		t.Fatalf("Produce = %d, %v", off, err)
	}
	msgs, err := c.Fetch("orders", 0, 10, 0)
	if err != nil || len(msgs) != 2 {
		t.Fatalf("Fetch = %v, %v", msgs, err)
	}
	if string(msgs[0].Key) != "k1" || string(msgs[1].Value) != "order-2" {
		t.Fatalf("messages corrupted: %+v", msgs)
	}
	end, err := c.End("orders")
	if err != nil || end != 2 {
		t.Fatalf("End = %d, %v", end, err)
	}
}

func TestEndToEndConsumerGroupFlow(t *testing.T) {
	c := startMQ(t)
	for i := 0; i < 3; i++ {
		c.Produce("t", nil, []byte{byte(i)}) //nolint:errcheck
	}
	pos, err := c.Committed("workers", "t")
	if err != nil || pos != 0 {
		t.Fatalf("Committed = %d, %v", pos, err)
	}
	msgs, err := c.Fetch("t", pos, 2, 0)
	if err != nil || len(msgs) != 2 {
		t.Fatalf("Fetch = %v, %v", msgs, err)
	}
	next := msgs[len(msgs)-1].Offset + 1
	if err := c.Commit("workers", "t", next); err != nil {
		t.Fatal(err)
	}
	pos, err = c.Committed("workers", "t")
	if err != nil || pos != 2 {
		t.Fatalf("Committed after commit = %d, %v", pos, err)
	}
	msgs, err = c.Fetch("t", pos, 10, 0)
	if err != nil || len(msgs) != 1 || msgs[0].Value[0] != 2 {
		t.Fatalf("remaining = %v, %v", msgs, err)
	}
}

func TestEndToEndErrorsKeepConnection(t *testing.T) {
	c := startMQ(t)
	if _, err := c.Produce("", nil, nil); err == nil {
		t.Fatal("empty topic accepted over the wire")
	}
	if _, err := c.Produce("ok", nil, []byte("x")); err != nil {
		t.Fatalf("connection unusable after error: %v", err)
	}
	if _, err := c.Fetch("t", -5, 1, 0); err == nil {
		t.Fatal("negative offset accepted over the wire")
	}
	if _, err := c.Topics(); err != nil {
		t.Fatal(err)
	}
}

func TestEndToEndLongPollOverTCP(t *testing.T) {
	addr := startMQServer(t)
	c, producer := dialMQ(t, addr), dialMQ(t, addr)
	done := make(chan []Message, 1)
	go func() {
		msgs, _ := c.Fetch("live", 0, 1, 5*time.Second)
		done <- msgs
	}()
	time.Sleep(30 * time.Millisecond)
	if _, err := producer.Produce("live", nil, []byte("ping")); err != nil {
		t.Fatal(err)
	}
	select {
	case msgs := <-done:
		if len(msgs) != 1 || string(msgs[0].Value) != "ping" {
			t.Fatalf("msgs = %v", msgs)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("TCP long poll did not deliver")
	}
}

func TestConsumeGroupAdvancesCommit(t *testing.T) {
	b := NewBroker()
	for i := 0; i < 5; i++ {
		b.Produce("t", nil, []byte{byte(i)}) //nolint:errcheck
	}
	first, err := b.ConsumeGroup("g", "t", 2, 0)
	if err != nil || len(first) != 2 || first[0].Offset != 0 {
		t.Fatalf("first = %v, %v", first, err)
	}
	second, err := b.ConsumeGroup("g", "t", 10, 0)
	if err != nil || len(second) != 3 || second[0].Offset != 2 {
		t.Fatalf("second = %v, %v", second, err)
	}
	// Caught up: immediate return with nothing.
	third, err := b.ConsumeGroup("g", "t", 1, 0)
	if err != nil || len(third) != 0 {
		t.Fatalf("third = %v, %v", third, err)
	}
	if b.Committed("g", "t") != 5 {
		t.Fatalf("committed = %d", b.Committed("g", "t"))
	}
	// A different group starts from the beginning.
	other, _ := b.ConsumeGroup("g2", "t", 1, 0)
	if len(other) != 1 || other[0].Offset != 0 {
		t.Fatalf("other group = %v", other)
	}
}

func TestConsumeGroupNoDuplicatesUnderConcurrency(t *testing.T) {
	b := NewBroker()
	const total = 300
	for i := 0; i < total; i++ {
		b.Produce("t", nil, []byte(fmt.Sprintf("%d", i))) //nolint:errcheck
	}
	var mu sync.Mutex
	seen := map[int64]int{}
	var wg sync.WaitGroup
	for c := 0; c < 6; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				msgs, err := b.ConsumeGroup("workers", "t", 7, 0)
				if err != nil {
					t.Error(err)
					return
				}
				if len(msgs) == 0 {
					return
				}
				mu.Lock()
				for _, m := range msgs {
					seen[m.Offset]++
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if len(seen) != total {
		t.Fatalf("consumed %d distinct messages, want %d", len(seen), total)
	}
	for off, n := range seen {
		if n != 1 {
			t.Fatalf("offset %d delivered %d times", off, n)
		}
	}
}

func TestConsumeGroupLongPoll(t *testing.T) {
	b := NewBroker()
	done := make(chan []Message, 1)
	go func() {
		msgs, _ := b.ConsumeGroup("g", "t", 1, 5*time.Second)
		done <- msgs
	}()
	time.Sleep(20 * time.Millisecond)
	b.Produce("t", nil, []byte("late")) //nolint:errcheck
	select {
	case msgs := <-done:
		if len(msgs) != 1 || string(msgs[0].Value) != "late" {
			t.Fatalf("msgs = %v", msgs)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("group long poll missed the produce")
	}
	if b.Committed("g", "t") != 1 {
		t.Fatal("commit not advanced by long-polled consume")
	}
}

func TestConsumeGroupValidation(t *testing.T) {
	b := NewBroker()
	if _, err := b.ConsumeGroup("", "t", 1, 0); err == nil {
		t.Fatal("empty group accepted")
	}
	if _, err := b.ConsumeGroup("g", "", 1, 0); err == nil {
		t.Fatal("empty topic accepted")
	}
}

func TestEndToEndConsumeGroup(t *testing.T) {
	c := startMQ(t)
	for i := 0; i < 4; i++ {
		c.Produce("jobs", nil, []byte{byte(i)}) //nolint:errcheck
	}
	msgs, err := c.ConsumeGroup("team", "jobs", 3, 0)
	if err != nil || len(msgs) != 3 {
		t.Fatalf("ConsumeGroup = %v, %v", msgs, err)
	}
	pos, err := c.Committed("team", "jobs")
	if err != nil || pos != 3 {
		t.Fatalf("Committed = %d, %v", pos, err)
	}
	msgs, err = c.ConsumeGroup("team", "jobs", 3, 0)
	if err != nil || len(msgs) != 1 || msgs[0].Value[0] != 3 {
		t.Fatalf("second ConsumeGroup = %v, %v", msgs, err)
	}
	if _, err := c.ConsumeGroup("", "jobs", 1, 0); err == nil {
		t.Fatal("empty group accepted over the wire")
	}
}
