package mq

import (
	"math"
	"strings"
	"testing"
	"time"
)

// TestBrokerSurvivesHugeFetchMax is the regression test for the overflow
// panic: Fetch computed end = offset + max, which for max near MaxInt64
// wraps negative and makes the result slice allocation panic. The clamp
// must work off the remaining message count instead.
func TestBrokerSurvivesHugeFetchMax(t *testing.T) {
	b := NewBroker()
	for i := 0; i < 3; i++ {
		if _, err := b.Produce("t", nil, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	msgs, err := b.Fetch("t", 0, math.MaxInt, 0)
	if err != nil || len(msgs) != 3 {
		t.Fatalf("Fetch(max=MaxInt) = %v, %v", msgs, err)
	}
	// Same arithmetic in the group-consume path.
	msgs, err = b.ConsumeGroup("g", "t", math.MaxInt, 0)
	if err != nil || len(msgs) != 3 {
		t.Fatalf("ConsumeGroup(max=MaxInt) = %v, %v", msgs, err)
	}
	if got := b.Committed("g", "t"); got != 3 {
		t.Fatalf("commit advanced to %d, want 3", got)
	}
	// A non-zero offset plus a huge max is the worst case for the old
	// end = offset + max arithmetic.
	msgs, err = b.Fetch("t", 2, math.MaxInt, 0)
	if err != nil || len(msgs) != 1 || msgs[0].Offset != 2 {
		t.Fatalf("Fetch(2, MaxInt) = %v, %v", msgs, err)
	}
}

// TestServerRejectsMalformedFetchFrames drives malformed fetch/consume
// frames over real TCP: every hostile offset/max/wait combination must come
// back as a protocol error (or a sane success), never kill the server, and
// leave the connection usable.
func TestServerRejectsMalformedFetchFrames(t *testing.T) {
	c := startMQ(t)
	for i := 0; i < 3; i++ {
		if _, err := c.Produce("t", nil, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	cases := []struct {
		name    string
		req     request
		wantErr string // empty = must succeed
		wantN   int
	}{
		{"negative offset", request{Op: "fetch", Topic: "t", Offset: -1, Max: 1}, "negative offset", 0},
		{"hugely negative offset", request{Op: "fetch", Topic: "t", Offset: math.MinInt64, Max: 1}, "negative offset", 0},
		{"negative max", request{Op: "fetch", Topic: "t", Offset: 0, Max: -5}, "negative max", 0},
		{"huge max overflows", request{Op: "fetch", Topic: "t", Offset: 0, Max: math.MaxInt}, "", 3},
		{"huge max from offset", request{Op: "fetch", Topic: "t", Offset: 1, Max: math.MaxInt}, "", 2},
		{"zero max defaults", request{Op: "fetch", Topic: "t", Offset: 0, Max: 0}, "", 1},
		{"negative wait no block", request{Op: "fetch", Topic: "t", Offset: 99, Max: 1, WaitMs: math.MinInt64}, "", 0},
		{"consume negative max", request{Op: "consume", Group: "g", Topic: "t", Max: -5}, "negative max", 0},
		{"consume huge max", request{Op: "consume", Group: "g", Topic: "t", Max: math.MaxInt}, "", 3},
	}
	for _, tc := range cases {
		resp, err := c.do(tc.req)
		if tc.wantErr != "" {
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("%s: err = %v, want %q", tc.name, err, tc.wantErr)
			}
			continue
		}
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if len(resp.Messages) != tc.wantN {
			t.Fatalf("%s: %d messages, want %d", tc.name, len(resp.Messages), tc.wantN)
		}
	}
	// The connection survived every malformed frame.
	if _, err := c.Produce("t", nil, []byte("still alive")); err != nil {
		t.Fatalf("connection dead after malformed frames: %v", err)
	}
}

// TestClampWait bounds hostile long-poll budgets.
func TestClampWait(t *testing.T) {
	for in, want := range map[int64]time.Duration{
		0:              0,
		-1:             0,
		math.MinInt64:  0,
		5:              5 * time.Millisecond,
		math.MaxInt64:  maxFetchWait, // multiply overflow clamps to the cap
		10_000_000_000: maxFetchWait,
	} {
		if got := clampWait(in); got != want {
			t.Fatalf("clampWait(%d) = %v, want %v", in, got, want)
		}
	}
}
