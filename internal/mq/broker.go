// Package mq is the repository's Kafka substitute: a topic-based message
// broker with append-only logs, consumer-group offsets, and long-polling
// fetch, served over a length-framed JSON TCP protocol.
//
// The paper's MQProduce and MQConsume workload functions send to and
// receive from a Kafka topic (Table I). The broker keeps Kafka's essential
// semantics for those workloads: messages in a topic are totally ordered
// and durable for the broker's lifetime, consumers address messages by
// offset, and consumer groups track commit positions independently.
package mq

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Message is one record in a topic log.
type Message struct {
	Topic  string `json:"topic"`
	Offset int64  `json:"offset"`
	Key    []byte `json:"key,omitempty"`
	Value  []byte `json:"value"`
}

// Broker is a thread-safe in-memory message broker. Topics are created on
// first produce or subscribe.
type Broker struct {
	mu      sync.Mutex
	topics  map[string]*topicLog
	commits map[string]map[string]int64 // group -> topic -> next offset to read
	closed  bool
}

type topicLog struct {
	messages []Message
	cond     *sync.Cond // signalled on append; waits use the broker mutex
}

// NewBroker returns an empty broker.
func NewBroker() *Broker {
	return &Broker{
		topics:  make(map[string]*topicLog),
		commits: make(map[string]map[string]int64),
	}
}

func (b *Broker) topic(name string) *topicLog {
	t, ok := b.topics[name]
	if !ok {
		t = &topicLog{}
		t.cond = sync.NewCond(&b.mu)
		b.topics[name] = t
	}
	return t
}

// Produce appends a message to a topic and returns its offset.
func (b *Broker) Produce(topic string, key, value []byte) (int64, error) {
	if topic == "" {
		return 0, fmt.Errorf("mq: empty topic")
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return 0, fmt.Errorf("mq: broker closed")
	}
	t := b.topic(topic)
	off := int64(len(t.messages))
	t.messages = append(t.messages, Message{
		Topic:  topic,
		Offset: off,
		Key:    append([]byte(nil), key...),
		Value:  append([]byte(nil), value...),
	})
	t.cond.Broadcast()
	return off, nil
}

// Fetch returns up to max messages from topic starting at offset. When the
// log has no messages at or past offset, Fetch blocks up to wait for new
// ones (wait<=0 returns immediately). An empty slice means nothing arrived.
func (b *Broker) Fetch(topic string, offset int64, max int, wait time.Duration) ([]Message, error) {
	if topic == "" {
		return nil, fmt.Errorf("mq: empty topic")
	}
	if offset < 0 {
		return nil, fmt.Errorf("mq: negative offset %d", offset)
	}
	if max <= 0 {
		max = 1
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	t := b.topic(topic)
	deadline := time.Now().Add(wait)
	for int64(len(t.messages)) <= offset {
		if b.closed {
			return nil, fmt.Errorf("mq: broker closed")
		}
		if wait <= 0 || !time.Now().Before(deadline) {
			return nil, nil
		}
		// sync.Cond has no timed wait; poke the condition on a timer so a
		// quiet topic can't wedge the fetch past its deadline.
		timer := time.AfterFunc(time.Until(deadline), t.cond.Broadcast)
		t.cond.Wait()
		timer.Stop()
	}
	// Clamp by remaining count, not by computing offset+max: with a huge
	// max the sum overflows int64 and the slice size goes negative.
	n := int64(len(t.messages)) - offset
	if n > int64(max) {
		n = int64(max)
	}
	out := make([]Message, n)
	copy(out, t.messages[offset:offset+n])
	return out, nil
}

// Commit records that a consumer group has processed a topic up to (but not
// including) offset.
func (b *Broker) Commit(group, topic string, offset int64) error {
	if group == "" || topic == "" {
		return fmt.Errorf("mq: group and topic required")
	}
	if offset < 0 {
		return fmt.Errorf("mq: negative offset %d", offset)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	g, ok := b.commits[group]
	if !ok {
		g = make(map[string]int64)
		b.commits[group] = g
	}
	g[topic] = offset
	return nil
}

// Committed returns a group's committed offset for a topic (0 if none).
func (b *Broker) Committed(group, topic string) int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.commits[group][topic]
}

// ConsumeGroup atomically fetches up to max messages from the group's
// committed position and advances the commit past what it returns — the
// classic at-most-once group consume. It long-polls up to wait when the
// group is already caught up. Concurrent group consumers never receive the
// same message.
func (b *Broker) ConsumeGroup(group, topic string, max int, wait time.Duration) ([]Message, error) {
	if group == "" || topic == "" {
		return nil, fmt.Errorf("mq: group and topic required")
	}
	if max <= 0 {
		max = 1
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	t := b.topic(topic)
	deadline := time.Now().Add(wait)
	for {
		if b.closed {
			return nil, fmt.Errorf("mq: broker closed")
		}
		offset := b.commits[group][topic]
		if int64(len(t.messages)) > offset {
			// Same overflow-safe clamp as Fetch.
			n := int64(len(t.messages)) - offset
			if n > int64(max) {
				n = int64(max)
			}
			out := make([]Message, n)
			copy(out, t.messages[offset:offset+n])
			g, ok := b.commits[group]
			if !ok {
				g = make(map[string]int64)
				b.commits[group] = g
			}
			g[topic] = offset + n
			return out, nil
		}
		if wait <= 0 || !time.Now().Before(deadline) {
			return nil, nil
		}
		timer := time.AfterFunc(time.Until(deadline), t.cond.Broadcast)
		t.cond.Wait()
		timer.Stop()
	}
}

// End returns the next offset that a produce to the topic would receive
// (i.e. the log length).
func (b *Broker) End(topic string) int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	t, ok := b.topics[topic]
	if !ok {
		return 0
	}
	return int64(len(t.messages))
}

// Topics returns the sorted topic names.
func (b *Broker) Topics() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]string, 0, len(b.topics))
	for name := range b.topics {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Close wakes all blocked fetches and rejects further operations.
func (b *Broker) Close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.closed = true
	for _, t := range b.topics {
		t.cond.Broadcast()
	}
}
