package mq

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"microfaas/internal/wire"
)

// Wire protocol: wire-framed JSON. Request op is one of "produce", "fetch",
// "commit", "committed", "end", "topics".

type request struct {
	Op     string `json:"op"`
	Topic  string `json:"topic,omitempty"`
	Group  string `json:"group,omitempty"`
	Key    []byte `json:"key,omitempty"`
	Value  []byte `json:"value,omitempty"`
	Offset int64  `json:"offset,omitempty"`
	Max    int    `json:"max,omitempty"`
	WaitMs int64  `json:"wait_ms,omitempty"`
}

type response struct {
	Offset   int64     `json:"offset,omitempty"`
	Messages []Message `json:"messages,omitempty"`
	Topics   []string  `json:"topics,omitempty"`
	Error    string    `json:"error,omitempty"`
}

// maxFetchWait caps server-side long-poll blocking so a slow client cannot
// pin a handler goroutine indefinitely.
const maxFetchWait = 30 * time.Second

// clampWait bounds a client-supplied long-poll budget to [0, maxFetchWait].
// A negative WaitMs would otherwise overflow the Duration multiply for
// extreme values; it simply means "don't block".
func clampWait(waitMs int64) time.Duration {
	if waitMs <= 0 {
		return 0
	}
	wait := time.Duration(waitMs) * time.Millisecond
	if wait > maxFetchWait || wait < 0 { // < 0: multiply overflowed
		wait = maxFetchWait
	}
	return wait
}

// Server serves a Broker over TCP.
type Server struct {
	broker *Broker

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	wg       sync.WaitGroup
}

// NewServer returns a server backed by broker (a fresh broker if nil).
func NewServer(broker *Broker) *Server {
	if broker == nil {
		broker = NewBroker()
	}
	return &Server{broker: broker, conns: make(map[net.Conn]struct{})}
}

// Broker returns the underlying broker.
func (s *Server) Broker() *Broker { return s.broker }

// Listen binds to addr and serves in the background, returning the bound
// address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("mq: listen: %w", err)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return "", errors.New("mq: server already closed")
	}
	s.listener = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

// Close stops the server, the broker, and every open connection.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.listener
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.broker.Close()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	for {
		var req request
		if err := wire.ReadJSON(r, &req); err != nil {
			return
		}
		resp := s.handle(req)
		if err := wire.WriteJSON(w, resp); err != nil {
			return
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
}

func (s *Server) handle(req request) response {
	switch req.Op {
	case "produce":
		off, err := s.broker.Produce(req.Topic, req.Key, req.Value)
		if err != nil {
			return response{Error: err.Error()}
		}
		return response{Offset: off}
	case "fetch":
		// Validate before touching the broker: a malformed frame (negative
		// offset or count) must come back as a protocol error, never reach
		// broker internals.
		if req.Offset < 0 {
			return response{Error: fmt.Sprintf("mq: negative offset %d", req.Offset)}
		}
		if req.Max < 0 {
			return response{Error: fmt.Sprintf("mq: negative max %d", req.Max)}
		}
		msgs, err := s.broker.Fetch(req.Topic, req.Offset, req.Max, clampWait(req.WaitMs))
		if err != nil {
			return response{Error: err.Error()}
		}
		return response{Messages: msgs}
	case "consume":
		if req.Max < 0 {
			return response{Error: fmt.Sprintf("mq: negative max %d", req.Max)}
		}
		msgs, err := s.broker.ConsumeGroup(req.Group, req.Topic, req.Max, clampWait(req.WaitMs))
		if err != nil {
			return response{Error: err.Error()}
		}
		return response{Messages: msgs}
	case "commit":
		if err := s.broker.Commit(req.Group, req.Topic, req.Offset); err != nil {
			return response{Error: err.Error()}
		}
		return response{}
	case "committed":
		if req.Group == "" || req.Topic == "" {
			return response{Error: "mq: group and topic required"}
		}
		return response{Offset: s.broker.Committed(req.Group, req.Topic)}
	case "end":
		if req.Topic == "" {
			return response{Error: "mq: empty topic"}
		}
		return response{Offset: s.broker.End(req.Topic)}
	case "topics":
		return response{Topics: s.broker.Topics()}
	default:
		return response{Error: fmt.Sprintf("mq: unknown op %q", req.Op)}
	}
}

// Client speaks the broker protocol over TCP. Like the other service
// clients it is single-connection and sequential.
type Client struct {
	conn    net.Conn
	r       *bufio.Reader
	w       *bufio.Writer
	timeout time.Duration // per-operation I/O deadline (0 = none)
}

// Dial connects to an mq server. The timeout bounds the dial and, as a
// per-operation I/O deadline, each subsequent call (long polls extend it
// by their wait), so a broker dying mid-frame fails the call instead of
// wedging the client forever with the connection held open.
func Dial(addr string, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("mq: dial %s: %w", addr, err)
	}
	return &Client{conn: conn, r: bufio.NewReader(conn), w: bufio.NewWriter(conn), timeout: timeout}, nil
}

// Close terminates the connection.
func (c *Client) Close() error { return c.conn.Close() }

func (c *Client) do(req request) (response, error) {
	if c.timeout > 0 {
		// Long-polling ops legitimately sit quiet for WaitMs; the
		// deadline budgets that on top of the base timeout.
		deadline := c.timeout + time.Duration(req.WaitMs)*time.Millisecond
		if err := c.conn.SetDeadline(time.Now().Add(deadline)); err != nil {
			return response{}, fmt.Errorf("mq: deadline: %w", err)
		}
	}
	if err := wire.WriteJSON(c.w, req); err != nil {
		return response{}, err
	}
	if err := c.w.Flush(); err != nil {
		return response{}, err
	}
	var resp response
	if err := wire.ReadJSON(c.r, &resp); err != nil {
		return response{}, err
	}
	if resp.Error != "" {
		return response{}, errors.New(resp.Error)
	}
	return resp, nil
}

// Produce appends a message and returns its offset.
func (c *Client) Produce(topic string, key, value []byte) (int64, error) {
	resp, err := c.do(request{Op: "produce", Topic: topic, Key: key, Value: value})
	if err != nil {
		return 0, err
	}
	return resp.Offset, nil
}

// Fetch reads up to max messages from offset, long-polling up to wait.
func (c *Client) Fetch(topic string, offset int64, max int, wait time.Duration) ([]Message, error) {
	resp, err := c.do(request{
		Op: "fetch", Topic: topic, Offset: offset, Max: max,
		WaitMs: int64(wait / time.Millisecond),
	})
	if err != nil {
		return nil, err
	}
	return resp.Messages, nil
}

// ConsumeGroup atomically fetches from the group's committed position and
// advances the commit (at-most-once delivery), long-polling up to wait.
func (c *Client) ConsumeGroup(group, topic string, max int, wait time.Duration) ([]Message, error) {
	resp, err := c.do(request{
		Op: "consume", Group: group, Topic: topic, Max: max,
		WaitMs: int64(wait / time.Millisecond),
	})
	if err != nil {
		return nil, err
	}
	return resp.Messages, nil
}

// Commit stores a consumer group's position.
func (c *Client) Commit(group, topic string, offset int64) error {
	_, err := c.do(request{Op: "commit", Group: group, Topic: topic, Offset: offset})
	return err
}

// Committed reads a consumer group's position.
func (c *Client) Committed(group, topic string) (int64, error) {
	resp, err := c.do(request{Op: "committed", Group: group, Topic: topic})
	if err != nil {
		return 0, err
	}
	return resp.Offset, nil
}

// End returns the topic's next-produce offset.
func (c *Client) End(topic string) (int64, error) {
	resp, err := c.do(request{Op: "end", Topic: topic})
	if err != nil {
		return 0, err
	}
	return resp.Offset, nil
}

// Topics lists the broker's topics.
func (c *Client) Topics() ([]string, error) {
	resp, err := c.do(request{Op: "topics"})
	if err != nil {
		return nil, err
	}
	return resp.Topics, nil
}
