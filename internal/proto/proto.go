// Package proto defines the OP↔worker invocation protocol used by the live
// cluster: the orchestrator sends framed Invoke requests (function name +
// JSON arguments) and reads framed responses carrying the result and the
// worker's own timing measurements.
//
// A MicroFaaS worker is single-tenant and run-to-completion, and the
// modeled node reboots between jobs (Sec III) — but the TCP session is the
// OP's management-plane view of the node, not part of the node's
// per-job state. Conn keeps one persistent, multiplexed connection per
// worker: requests carry a connection-scoped id (RID), responses echo it,
// and in-flight calls may interleave. A broken or power-cycled connection
// fails every in-flight call exactly once and redials lazily on the next
// invoke, so the reboot-per-job execution model is untouched while the
// per-invocation dial/teardown cost disappears.
//
// The one-shot Invoke/Serve pair remains for tools that genuinely want a
// single exchange; the serve loop handles both shapes (a one-shot client
// simply hangs up after its first response).
package proto

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"microfaas/internal/wire"
)

// Request is an invocation order from the OP to a worker.
type Request struct {
	// RID is the connection-scoped request id used to pair responses with
	// in-flight requests on a multiplexed connection. Servers echo it
	// verbatim. Zero on one-shot connections.
	RID int64 `json:"rid,omitempty"`
	// JobID correlates the response with the OP's queue entry.
	JobID int64 `json:"job_id"`
	// Function is the workload function name (Table I).
	Function string `json:"function"`
	// Args is the JSON argument payload.
	Args []byte `json:"args"`
	// TraceID and ParentSpan propagate the invocation's tracing context
	// (hex, per tracing.Context.Wire; empty when untraced), so the
	// worker's boot/exec spans join the OP's trace across the wire.
	// Attempt travels with them so worker-side spans carry the OP's
	// attempt number.
	TraceID    string `json:"trace_id,omitempty"`
	ParentSpan string `json:"parent_span,omitempty"`
	Attempt    int    `json:"attempt,omitempty"`
}

// Response is the worker's reply.
type Response struct {
	// RID echoes the request's connection-scoped id.
	RID   int64 `json:"rid,omitempty"`
	JobID int64 `json:"job_id"`
	// Output is the function's JSON result (nil on error).
	Output []byte `json:"output,omitempty"`
	// Err is the failure message ("" on success).
	Err string `json:"err,omitempty"`
	// BootMs, OverheadMs, ExecMs are the worker's own timing split, in
	// fractional milliseconds (the paper's workers timestamp themselves).
	BootMs     float64 `json:"boot_ms"`
	OverheadMs float64 `json:"overhead_ms"`
	ExecMs     float64 `json:"exec_ms"`
}

// Boot returns the boot time as a duration.
func (r Response) Boot() time.Duration { return msToDur(r.BootMs) }

// Overhead returns the network/protocol overhead as a duration.
func (r Response) Overhead() time.Duration { return msToDur(r.OverheadMs) }

// Exec returns the execution time as a duration.
func (r Response) Exec() time.Duration { return msToDur(r.ExecMs) }

func msToDur(ms float64) time.Duration {
	return time.Duration(ms * float64(time.Millisecond))
}

// invokeResult is what a waiting call receives: the matched response or
// the connection-level error that killed it.
type invokeResult struct {
	resp Response
	err  error
}

// errStaleConn marks a write failure on a connection that was reused from
// a previous invoke: the peer may simply have hung up between calls, so
// the invoke is safe to retry once on a fresh dial (the request never
// completed its frame, so the worker never started the job).
var errStaleConn = errors.New("proto: stale connection")

// Conn is a persistent, multiplexed client connection to one worker. The
// zero value is not usable; construct with NewConn. All methods are safe
// for concurrent use: any number of goroutines may Invoke over the same
// Conn and responses are paired to callers by RID.
//
// The connection dials lazily on first use and redials after any failure
// (read error, invoke timeout, Reset). Failure handling is all-or-nothing:
// a connection-level error settles every in-flight invoke exactly once
// with that error, and the next invoke starts clean.
type Conn struct {
	addr string

	mu      sync.Mutex
	conn    net.Conn
	bw      *bufio.Writer
	pending map[int64]chan invokeResult
	nextRID int64
	closed  bool
}

// NewConn returns a Conn for the worker at addr. No I/O happens until the
// first Invoke.
func NewConn(addr string) *Conn {
	return &Conn{addr: addr, pending: make(map[int64]chan invokeResult)}
}

// Invoke performs one invocation over the persistent connection, with
// timeout covering dial (when the connection is down) + full round trip.
// A write failure on a reused connection — the worker hung up between
// jobs — is retried once on a fresh dial; every other failure is
// returned as-is. A timeout tears the connection down: a request with no
// response leaves the stream's health unknown, and the lazy redial is
// cheaper than trusting it.
func (c *Conn) Invoke(req Request, timeout time.Duration) (Response, error) {
	resp, err := c.invokeOnce(req, timeout)
	if errors.Is(err, errStaleConn) {
		resp, err = c.invokeOnce(req, timeout)
	}
	if err != nil {
		return Response{}, err
	}
	if resp.JobID != req.JobID {
		return Response{}, fmt.Errorf("proto: response for job %d, expected %d", resp.JobID, req.JobID)
	}
	return resp, nil
}

// invokeOnce registers the call, writes the request frame, and waits for
// the reader goroutine (or a connection failure) to settle it.
func (c *Conn) invokeOnce(req Request, timeout time.Duration) (Response, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return Response{}, fmt.Errorf("proto: connection to %s is closed", c.addr)
	}
	reused := c.conn != nil
	if !reused {
		dialTimeout := timeout
		if dialTimeout <= 0 {
			dialTimeout = 30 * time.Second
		}
		conn, err := net.DialTimeout("tcp", c.addr, dialTimeout)
		if err != nil {
			c.mu.Unlock()
			return Response{}, fmt.Errorf("proto: dial %s: %w", c.addr, err)
		}
		c.conn = conn
		c.bw = bufio.NewWriter(conn)
		go c.readLoop(conn)
	}
	conn := c.conn
	c.nextRID++
	req.RID = c.nextRID
	ch := make(chan invokeResult, 1)
	c.pending[req.RID] = ch
	err := wire.WriteJSON(c.bw, req)
	if err == nil {
		err = c.bw.Flush()
	}
	if err != nil {
		delete(c.pending, req.RID)
		c.teardownLocked(conn, fmt.Errorf("proto: send to %s: %w", c.addr, err))
		c.mu.Unlock()
		if reused {
			return Response{}, fmt.Errorf("%w: %v", errStaleConn, err)
		}
		return Response{}, fmt.Errorf("proto: send to %s: %w", c.addr, err)
	}
	c.mu.Unlock()

	if timeout <= 0 {
		r := <-ch
		return r.resp, r.err
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case r := <-ch:
		return r.resp, r.err
	case <-timer.C:
	}
	// Timed out. If the call is still registered, withdraw it and kill the
	// connection (its stream now carries an orphaned response). If it is
	// gone, a settle is already in flight on the buffered channel — take
	// that result instead of inventing a timeout.
	c.mu.Lock()
	if _, ok := c.pending[req.RID]; ok {
		delete(c.pending, req.RID)
		c.teardownLocked(conn, fmt.Errorf("proto: invoke timed out after %v", timeout))
		c.mu.Unlock()
		return Response{}, fmt.Errorf("proto: invoke %s: timed out after %v", c.addr, timeout)
	}
	c.mu.Unlock()
	r := <-ch
	return r.resp, r.err
}

// readLoop pairs response frames with pending calls until the connection
// dies, then fails whatever is still in flight.
func (c *Conn) readLoop(conn net.Conn) {
	br := bufio.NewReader(conn)
	var scratch []byte
	for {
		var resp Response
		if err := wire.ReadJSONInto(br, &resp, &scratch); err != nil {
			c.fail(conn, fmt.Errorf("proto: recv from %s: %w", c.addr, err))
			return
		}
		c.mu.Lock()
		ch, ok := c.pending[resp.RID]
		if ok {
			delete(c.pending, resp.RID)
		}
		c.mu.Unlock()
		if ok {
			ch <- invokeResult{resp: resp}
		}
		// An unmatched RID is a late response to a withdrawn (timed-out)
		// call: drop it.
	}
}

// fail tears down conn (if it is still the active connection) and settles
// every in-flight call with err.
func (c *Conn) fail(conn net.Conn, err error) {
	c.mu.Lock()
	waiters := c.teardownLocked(conn, err)
	c.mu.Unlock()
	for _, ch := range waiters {
		ch <- invokeResult{err: err}
	}
}

// teardownLocked detaches conn if it is current, closes it, and returns
// the calls to settle (the caller must deliver err to each outside the
// lock). A conn that has already been replaced is just closed.
func (c *Conn) teardownLocked(conn net.Conn, err error) []chan invokeResult {
	conn.Close() //nolint:errcheck // teardown
	if c.conn != conn {
		return nil
	}
	c.conn = nil
	c.bw = nil
	if len(c.pending) == 0 {
		return nil
	}
	waiters := make([]chan invokeResult, 0, len(c.pending))
	for _, ch := range c.pending {
		waiters = append(waiters, ch)
	}
	c.pending = make(map[int64]chan invokeResult)
	return waiters
}

// Reset drops the current connection, failing every in-flight invoke with
// an error naming reason. The next Invoke redials. It models the node
// side of a power-cycle: a gated-off SBC drops its TCP sessions, and the
// OP reconnects when it next powers the node up.
func (c *Conn) Reset(reason string) {
	c.mu.Lock()
	conn := c.conn
	c.mu.Unlock()
	if conn == nil {
		return
	}
	c.fail(conn, fmt.Errorf("proto: connection to %s reset: %s", c.addr, reason))
}

// Close resets the connection and refuses all future invokes.
func (c *Conn) Close() {
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
	c.Reset("closed")
}

// Invoke performs one invocation against the worker at addr over a fresh
// connection, with timeout covering dial + full round trip. It is the
// one-shot form; steady-state callers hold a Conn instead.
func Invoke(addr string, req Request, timeout time.Duration) (Response, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return Response{}, fmt.Errorf("proto: dial %s: %w", addr, err)
	}
	defer conn.Close()
	if timeout > 0 {
		if err := conn.SetDeadline(time.Now().Add(timeout)); err != nil {
			return Response{}, fmt.Errorf("proto: deadline: %w", err)
		}
	}
	w := bufio.NewWriter(conn)
	if err := wire.WriteJSON(w, req); err != nil {
		return Response{}, fmt.Errorf("proto: send: %w", err)
	}
	if err := w.Flush(); err != nil {
		return Response{}, fmt.Errorf("proto: send: %w", err)
	}
	var resp Response
	if err := wire.ReadJSON(bufio.NewReader(conn), &resp); err != nil {
		return Response{}, fmt.Errorf("proto: recv: %w", err)
	}
	if resp.JobID != req.JobID {
		return Response{}, fmt.Errorf("proto: response for job %d, expected %d", resp.JobID, req.JobID)
	}
	return resp, nil
}

// ReadRequest reads one framed Request from br, reusing *scratch for the
// payload. Servers that loop over a connection hold one bufio.Reader and
// one scratch buffer for its lifetime and read every request with zero
// steady-state allocations.
func ReadRequest(br *bufio.Reader, scratch *[]byte) (Request, error) {
	var req Request
	if err := wire.ReadJSONInto(br, &req, scratch); err != nil {
		return Request{}, fmt.Errorf("proto: read request: %w", err)
	}
	return req, nil
}

// WriteResponse stamps resp with req's correlation ids (RID and JobID) and
// writes it to bw as one flushed frame.
func WriteResponse(bw *bufio.Writer, req Request, resp Response) error {
	resp.RID = req.RID
	resp.JobID = req.JobID
	if err := wire.WriteJSON(bw, resp); err != nil {
		return fmt.Errorf("proto: write response: %w", err)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("proto: write response: %w", err)
	}
	return nil
}

// ServeLoop handles invocations on conn sequentially until the peer hangs
// up (returns nil) or the connection errors. The worker is single-tenant:
// one request is read, handled, and answered before the next is read, so
// a multiplexing client's interleaved requests queue in the stream.
func ServeLoop(conn net.Conn, handle func(Request) Response) error {
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	var scratch []byte
	for {
		req, err := ReadRequest(br, &scratch)
		if err != nil {
			// A hang-up between frames (clean EOF or a closed socket) is
			// the normal end of a session, not a protocol failure.
			if errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		if err := WriteResponse(bw, req, handle(req)); err != nil {
			return err
		}
	}
}

// Serve handles exactly one invocation on conn: read a Request, call
// handle, write the Response. The caller owns the connection lifecycle.
func Serve(conn net.Conn, handle func(Request) Response) error {
	br := bufio.NewReader(conn)
	var scratch []byte
	req, err := ReadRequest(br, &scratch)
	if err != nil {
		return err
	}
	return WriteResponse(bufio.NewWriter(conn), req, handle(req))
}
