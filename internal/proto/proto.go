// Package proto defines the OP↔worker invocation protocol used by the live
// cluster: the orchestrator dials a worker, sends one framed Invoke request
// (function name + JSON arguments), and reads one framed response carrying
// the result and the worker's own timing measurements.
//
// One connection carries exactly one invocation — a MicroFaaS worker is
// single-tenant and run-to-completion, and it reboots after every job, so
// connection reuse is meaningless by design (Sec III).
package proto

import (
	"bufio"
	"fmt"
	"net"
	"time"

	"microfaas/internal/wire"
)

// Request is an invocation order from the OP to a worker.
type Request struct {
	// JobID correlates the response with the OP's queue entry.
	JobID int64 `json:"job_id"`
	// Function is the workload function name (Table I).
	Function string `json:"function"`
	// Args is the JSON argument payload.
	Args []byte `json:"args"`
	// TraceID and ParentSpan propagate the invocation's tracing context
	// (hex, per tracing.Context.Wire; empty when untraced), so the
	// worker's boot/exec spans join the OP's trace across the wire.
	// Attempt travels with them so worker-side spans carry the OP's
	// attempt number.
	TraceID    string `json:"trace_id,omitempty"`
	ParentSpan string `json:"parent_span,omitempty"`
	Attempt    int    `json:"attempt,omitempty"`
}

// Response is the worker's reply.
type Response struct {
	JobID int64 `json:"job_id"`
	// Output is the function's JSON result (nil on error).
	Output []byte `json:"output,omitempty"`
	// Err is the failure message ("" on success).
	Err string `json:"err,omitempty"`
	// BootMs, OverheadMs, ExecMs are the worker's own timing split, in
	// fractional milliseconds (the paper's workers timestamp themselves).
	BootMs     float64 `json:"boot_ms"`
	OverheadMs float64 `json:"overhead_ms"`
	ExecMs     float64 `json:"exec_ms"`
}

// Boot returns the boot time as a duration.
func (r Response) Boot() time.Duration { return msToDur(r.BootMs) }

// Overhead returns the network/protocol overhead as a duration.
func (r Response) Overhead() time.Duration { return msToDur(r.OverheadMs) }

// Exec returns the execution time as a duration.
func (r Response) Exec() time.Duration { return msToDur(r.ExecMs) }

func msToDur(ms float64) time.Duration {
	return time.Duration(ms * float64(time.Millisecond))
}

// Invoke performs one invocation against the worker at addr, with timeout
// covering dial + full round trip.
func Invoke(addr string, req Request, timeout time.Duration) (Response, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return Response{}, fmt.Errorf("proto: dial %s: %w", addr, err)
	}
	defer conn.Close()
	if timeout > 0 {
		if err := conn.SetDeadline(time.Now().Add(timeout)); err != nil {
			return Response{}, fmt.Errorf("proto: deadline: %w", err)
		}
	}
	w := bufio.NewWriter(conn)
	if err := wire.WriteJSON(w, req); err != nil {
		return Response{}, fmt.Errorf("proto: send: %w", err)
	}
	if err := w.Flush(); err != nil {
		return Response{}, fmt.Errorf("proto: send: %w", err)
	}
	var resp Response
	if err := wire.ReadJSON(bufio.NewReader(conn), &resp); err != nil {
		return Response{}, fmt.Errorf("proto: recv: %w", err)
	}
	if resp.JobID != req.JobID {
		return Response{}, fmt.Errorf("proto: response for job %d, expected %d", resp.JobID, req.JobID)
	}
	return resp, nil
}

// Serve handles exactly one invocation on conn: read a Request, call
// handle, write the Response. The caller owns the connection lifecycle.
func Serve(conn net.Conn, handle func(Request) Response) error {
	r := bufio.NewReader(conn)
	var req Request
	if err := wire.ReadJSON(r, &req); err != nil {
		return fmt.Errorf("proto: read request: %w", err)
	}
	resp := handle(req)
	resp.JobID = req.JobID
	w := bufio.NewWriter(conn)
	if err := wire.WriteJSON(w, resp); err != nil {
		return fmt.Errorf("proto: write response: %w", err)
	}
	if err := w.Flush(); err != nil {
		return fmt.Errorf("proto: write response: %w", err)
	}
	return nil
}
