package proto

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"microfaas/internal/wire"
)

// loopWorker accepts connections and serves each with ServeLoop, echoing
// args back as output — the persistent-session counterpart of echoWorker.
func loopWorker(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				ServeLoop(c, func(req Request) Response { //nolint:errcheck
					return Response{Output: req.Args}
				})
			}(conn)
		}
	}()
	return ln.Addr().String()
}

// TestConnConcurrentInvokes hammers one multiplexed Conn from many
// goroutines and checks every response pairs with its own request (run
// under -race this also exercises the Conn's locking).
func TestConnConcurrentInvokes(t *testing.T) {
	addr := loopWorker(t)
	c := NewConn(addr)
	defer c.Close()
	const goroutines, calls = 8, 25
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*calls)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < calls; i++ {
				id := int64(g*1000 + i)
				args := []byte(fmt.Sprintf(`{"caller":%d}`, id))
				resp, err := c.Invoke(Request{JobID: id, Function: "echo", Args: args}, 5*time.Second)
				if err != nil {
					errs <- fmt.Errorf("job %d: %w", id, err)
					return
				}
				if string(resp.Output) != string(args) {
					errs <- fmt.Errorf("job %d: got someone else's output %s", id, resp.Output)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// silentThenEchoWorker serves its first connection by reading requests
// (reporting each on recvd) and never replying; every later connection
// gets a normal echo loop. It models a wedged worker that a power-cycle
// brings back healthy.
func silentThenEchoWorker(t *testing.T) (addr string, recvd <-chan Request) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	ch := make(chan Request, 16)
	go func() {
		first := true
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			silent := first
			first = false
			go func(c net.Conn) {
				defer c.Close()
				if !silent {
					ServeLoop(c, func(req Request) Response { //nolint:errcheck
						return Response{Output: req.Args}
					})
					return
				}
				br := bufio.NewReader(c)
				var scratch []byte
				for {
					var req Request
					if err := wire.ReadJSONInto(br, &req, &scratch); err != nil {
						return // peer tore the session down
					}
					ch <- req
				}
			}(conn)
		}
	}()
	return ln.Addr().String(), ch
}

// TestConnResetSettlesInFlightExactlyOnce parks several invokes (no
// timeout: only a settle can release them) on a silent connection, resets
// it mid-flight, and checks each call returns exactly once with the reset
// error — no invocation lost, none double-settled — and that the next
// invoke transparently redials.
func TestConnResetSettlesInFlightExactlyOnce(t *testing.T) {
	addr, recvd := silentThenEchoWorker(t)
	c := NewConn(addr)
	defer c.Close()
	const inflight = 4
	done := make(chan error, inflight)
	for i := 0; i < inflight; i++ {
		go func(i int) {
			_, err := c.Invoke(Request{JobID: int64(i + 1), Function: "x"}, 0)
			done <- err
		}(i)
	}
	// Wait until the worker has read all the request frames, so every call
	// is genuinely in flight when the reset lands.
	for i := 0; i < inflight; i++ {
		select {
		case <-recvd:
		case <-time.After(5 * time.Second):
			t.Fatal("worker never received all requests")
		}
	}
	c.Reset("power-cycled (test)")
	for i := 0; i < inflight; i++ {
		select {
		case err := <-done:
			if err == nil {
				t.Fatal("in-flight invoke survived a reset with a success")
			}
			if !strings.Contains(err.Error(), "reset") {
				t.Fatalf("unexpected settle error: %v", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("invoke %d lost: never settled after reset", i)
		}
	}
	// Exactly once: no call may settle a second time.
	select {
	case err := <-done:
		t.Fatalf("an invoke settled twice (second result: %v)", err)
	case <-time.After(100 * time.Millisecond):
	}
	// The connection recovers lazily: the next invoke redials and lands on
	// the healthy serve loop.
	resp, err := c.Invoke(Request{JobID: 99, Function: "x", Args: []byte(`"ok"`)}, 5*time.Second)
	if err != nil {
		t.Fatalf("invoke after reset: %v", err)
	}
	if string(resp.Output) != `"ok"` {
		t.Fatalf("post-reset output = %s", resp.Output)
	}
}

// TestConnInvokeTimeoutDropsConnAndRedials wedges the first connection (a
// request with no reply), lets the invoke time out, and checks the Conn
// abandoned that session: the follow-up invoke must arrive on a fresh
// connection and succeed.
func TestConnInvokeTimeoutDropsConnAndRedials(t *testing.T) {
	addr, recvd := silentThenEchoWorker(t)
	c := NewConn(addr)
	defer c.Close()
	start := time.Now()
	if _, err := c.Invoke(Request{JobID: 1, Function: "x"}, 200*time.Millisecond); err == nil {
		t.Fatal("silent worker did not time out")
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("timeout took far too long")
	}
	<-recvd // the wedged conn really had the request
	resp, err := c.Invoke(Request{JobID: 2, Function: "x", Args: []byte(`"again"`)}, 5*time.Second)
	if err != nil {
		t.Fatalf("invoke after timeout: %v", err)
	}
	if string(resp.Output) != `"again"` {
		t.Fatalf("post-timeout output = %s", resp.Output)
	}
}

// TestConnRedialsAfterPeerHangup lets the worker close the session between
// jobs (the between-jobs power-down case) and checks the next invoke
// succeeds on a fresh dial once the Conn has noticed the hangup.
func TestConnRedialsAfterPeerHangup(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		first := true
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			oneShot := first
			first = false
			go func(c net.Conn) {
				defer c.Close()
				if oneShot {
					Serve(c, func(req Request) Response { return Response{Output: req.Args} }) //nolint:errcheck
					return // hang up after one job, like a power-cycling node
				}
				ServeLoop(c, func(req Request) Response { return Response{Output: req.Args} }) //nolint:errcheck
			}(conn)
		}
	}()
	c := NewConn(ln.Addr().String())
	defer c.Close()
	if _, err := c.Invoke(Request{JobID: 1, Function: "x"}, 5*time.Second); err != nil {
		t.Fatalf("first invoke: %v", err)
	}
	// Wait for the read loop to observe the hangup and detach the dead
	// connection, so the next invoke deterministically takes the redial
	// path (invoking mid-race exercises the stale-conn retry instead,
	// which is fine in production but makes assertions flaky).
	deadline := time.Now().Add(5 * time.Second)
	for {
		c.mu.Lock()
		detached := c.conn == nil
		c.mu.Unlock()
		if detached {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("read loop never noticed the peer hangup")
		}
		time.Sleep(time.Millisecond)
	}
	resp, err := c.Invoke(Request{JobID: 2, Function: "x", Args: []byte(`"back"`)}, 5*time.Second)
	if err != nil {
		t.Fatalf("invoke after hangup: %v", err)
	}
	if string(resp.Output) != `"back"` {
		t.Fatalf("post-hangup output = %s", resp.Output)
	}
}

// TestConnClosedRefusesInvokes locks in the terminal state: Close settles
// the connection and every later invoke fails fast.
func TestConnClosedRefusesInvokes(t *testing.T) {
	addr := loopWorker(t)
	c := NewConn(addr)
	if _, err := c.Invoke(Request{JobID: 1, Function: "x"}, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	c.Close()
	if _, err := c.Invoke(Request{JobID: 2, Function: "x"}, 5*time.Second); err == nil {
		t.Fatal("closed conn accepted an invoke")
	}
}
