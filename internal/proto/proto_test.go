package proto

import (
	"bytes"
	"net"
	"testing"
	"time"
)

// echoWorker accepts connections and serves one invocation each, echoing
// args back as output with fixed timings.
func echoWorker(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				Serve(c, func(req Request) Response { //nolint:errcheck
					if req.Function == "fail" {
						return Response{Err: "requested failure"}
					}
					return Response{Output: req.Args, BootMs: 1510, OverheadMs: 42.5, ExecMs: 100}
				})
			}(conn)
		}
	}()
	return ln.Addr().String()
}

func TestInvokeRoundTrip(t *testing.T) {
	addr := echoWorker(t)
	args := []byte(`{"rounds":3}`)
	resp, err := Invoke(addr, Request{JobID: 9, Function: "CascSHA", Args: args}, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if resp.JobID != 9 || !bytes.Equal(resp.Output, args) {
		t.Fatalf("resp = %+v", resp)
	}
	if resp.Boot() != 1510*time.Millisecond {
		t.Fatalf("Boot = %v", resp.Boot())
	}
	if resp.Overhead() != 42500*time.Microsecond {
		t.Fatalf("Overhead = %v", resp.Overhead())
	}
	if resp.Exec() != 100*time.Millisecond {
		t.Fatalf("Exec = %v", resp.Exec())
	}
}

func TestInvokeCarriesWorkerError(t *testing.T) {
	addr := echoWorker(t)
	resp, err := Invoke(addr, Request{JobID: 1, Function: "fail"}, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Err == "" {
		t.Fatal("worker error lost in transit")
	}
}

func TestInvokeDialFailure(t *testing.T) {
	if _, err := Invoke("127.0.0.1:1", Request{JobID: 1, Function: "x"}, 200*time.Millisecond); err == nil {
		t.Fatal("invoking a dead address succeeded")
	}
}

func TestInvokeTimeout(t *testing.T) {
	// A listener that accepts but never replies.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			defer conn.Close()
			select {} // hold the connection open silently
		}
	}()
	start := time.Now()
	_, err = Invoke(ln.Addr().String(), Request{JobID: 1, Function: "x"}, 150*time.Millisecond)
	if err == nil {
		t.Fatal("silent worker did not time out")
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("timeout took far too long")
	}
}

func TestServeRejectsGarbage(t *testing.T) {
	client, server := net.Pipe()
	done := make(chan error, 1)
	go func() { done <- Serve(server, func(Request) Response { return Response{} }) }()
	client.Write([]byte{0, 0, 0, 4, 'n', 'o', 'p', 'e'}) //nolint:errcheck
	client.Close()
	if err := <-done; err == nil {
		t.Fatal("Serve accepted a garbage frame")
	}
}

func TestJobIDMismatchDetected(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		// Deliberately reply with the wrong job id.
		Serve(conn, func(req Request) Response { return Response{} }) //nolint:errcheck
	}()
	// Serve forces resp.JobID = req.JobID, so craft a raw mismatch instead:
	// easiest is a second listener that writes a fixed frame.
	ln2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln2.Close()
	go func() {
		conn, err := ln2.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		buf := make([]byte, 1024)
		conn.Read(buf) //nolint:errcheck
		// {"job_id":999}
		body := []byte(`{"job_id":999}`)
		frame := append([]byte{0, 0, 0, byte(len(body))}, body...)
		conn.Write(frame) //nolint:errcheck
	}()
	if _, err := Invoke(ln2.Addr().String(), Request{JobID: 1, Function: "x"}, time.Second); err == nil {
		t.Fatal("mismatched job id accepted")
	}
}
