package sqlstore

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Database is a thread-safe in-memory collection of tables.
type Database struct {
	mu     sync.RWMutex
	tables map[string]*table
}

type table struct {
	cols   []ColumnDef
	colIdx map[string]int // lower-cased name -> index
	rows   [][]Value
}

// NewDatabase returns an empty database.
func NewDatabase() *Database {
	return &Database{tables: make(map[string]*table)}
}

// Result is the outcome of executing a statement.
type Result struct {
	// Columns is set for SELECT.
	Columns []string `json:"columns,omitempty"`
	// Rows is set for SELECT.
	Rows [][]Value `json:"rows,omitempty"`
	// Affected is the row count for INSERT/UPDATE/DELETE.
	Affected int `json:"affected"`
}

// Exec parses and executes one SQL statement.
func (db *Database) Exec(query string) (*Result, error) {
	st, err := Parse(query)
	if err != nil {
		return nil, err
	}
	return db.ExecStatement(st)
}

// ExecStatement executes a parsed statement.
func (db *Database) ExecStatement(st Statement) (*Result, error) {
	switch s := st.(type) {
	case CreateTable:
		return db.createTable(s)
	case DropTable:
		return db.dropTable(s)
	case Insert:
		return db.insert(s)
	case Select:
		return db.selectRows(s)
	case Update:
		return db.update(s)
	case Delete:
		return db.deleteRows(s)
	default:
		return nil, fmt.Errorf("sqlstore: unsupported statement %T", st)
	}
}

// Tables returns the sorted table names.
func (db *Database) Tables() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	names := make([]string, 0, len(db.tables))
	for n := range db.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func (db *Database) createTable(s CreateTable) (*Result, error) {
	if len(s.Columns) == 0 {
		return nil, fmt.Errorf("sqlstore: table %q needs at least one column", s.Table)
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	key := strings.ToLower(s.Table)
	if _, exists := db.tables[key]; exists {
		return nil, fmt.Errorf("sqlstore: table %q already exists", s.Table)
	}
	idx := make(map[string]int, len(s.Columns))
	for i, c := range s.Columns {
		lc := strings.ToLower(c.Name)
		if _, dup := idx[lc]; dup {
			return nil, fmt.Errorf("sqlstore: duplicate column %q", c.Name)
		}
		idx[lc] = i
	}
	db.tables[key] = &table{cols: s.Columns, colIdx: idx}
	return &Result{}, nil
}

func (db *Database) dropTable(s DropTable) (*Result, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	key := strings.ToLower(s.Table)
	if _, exists := db.tables[key]; !exists {
		return nil, fmt.Errorf("sqlstore: no such table %q", s.Table)
	}
	delete(db.tables, key)
	return &Result{}, nil
}

func (db *Database) lookup(name string) (*table, error) {
	t, ok := db.tables[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("sqlstore: no such table %q", name)
	}
	return t, nil
}

func (db *Database) insert(s Insert) (*Result, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, err := db.lookup(s.Table)
	if err != nil {
		return nil, err
	}
	// Map the insert's column order to table positions.
	targets := make([]int, 0, len(t.cols))
	if len(s.Columns) == 0 {
		for i := range t.cols {
			targets = append(targets, i)
		}
	} else {
		for _, c := range s.Columns {
			idx, ok := t.colIdx[strings.ToLower(c)]
			if !ok {
				return nil, fmt.Errorf("sqlstore: no such column %q in %q", c, s.Table)
			}
			targets = append(targets, idx)
		}
	}
	inserted := make([][]Value, 0, len(s.Rows))
	for _, vals := range s.Rows {
		if len(vals) != len(targets) {
			return nil, fmt.Errorf("sqlstore: expected %d values, got %d", len(targets), len(vals))
		}
		row := make([]Value, len(t.cols))
		for i, v := range vals {
			col := targets[i]
			cv, err := coerce(v, t.cols[col].Type)
			if err != nil {
				return nil, err
			}
			row[col] = cv
		}
		inserted = append(inserted, row)
	}
	t.rows = append(t.rows, inserted...)
	return &Result{Affected: len(inserted)}, nil
}

func (db *Database) selectRows(s Select) (*Result, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, err := db.lookup(s.Table)
	if err != nil {
		return nil, err
	}
	var matched [][]Value
	for _, row := range t.rows {
		ok, err := matches(s.Where, t.colIdx, row)
		if err != nil {
			return nil, err
		}
		if ok {
			matched = append(matched, row)
		}
	}
	if s.Aggregated() || s.GroupBy != "" {
		return aggregate(t, s, matched)
	}
	if s.OrderBy != "" {
		idx, ok := t.colIdx[strings.ToLower(s.OrderBy)]
		if !ok {
			return nil, fmt.Errorf("sqlstore: no such column %q in ORDER BY", s.OrderBy)
		}
		var sortErr error
		sort.SliceStable(matched, func(i, j int) bool {
			a, b := matched[i][idx], matched[j][idx]
			// NULLs sort first (ascending).
			if a == nil || b == nil {
				less := a == nil && b != nil
				if s.Desc {
					return !less && a != b
				}
				return less
			}
			cmp, err := compare(a, b)
			if err != nil && sortErr == nil {
				sortErr = err
			}
			if s.Desc {
				return cmp > 0
			}
			return cmp < 0
		})
		if sortErr != nil {
			return nil, sortErr
		}
	}
	if s.Limit >= 0 && len(matched) > s.Limit {
		matched = matched[:s.Limit]
	}
	// Project columns.
	proj := make([]int, 0, len(t.cols))
	var names []string
	if len(s.Items) == 0 {
		for i, c := range t.cols {
			proj = append(proj, i)
			names = append(names, c.Name)
		}
	} else {
		for _, it := range s.Items {
			idx, ok := t.colIdx[strings.ToLower(it.Column)]
			if !ok {
				return nil, fmt.Errorf("sqlstore: no such column %q", it.Column)
			}
			proj = append(proj, idx)
			names = append(names, t.cols[idx].Name)
		}
	}
	out := make([][]Value, len(matched))
	for i, row := range matched {
		r := make([]Value, len(proj))
		for j, idx := range proj {
			r[j] = row[idx]
		}
		out[i] = r
	}
	return &Result{Columns: names, Rows: out}, nil
}

func (db *Database) update(s Update) (*Result, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, err := db.lookup(s.Table)
	if err != nil {
		return nil, err
	}
	// Validate assignments before touching any row so updates are atomic.
	type setOp struct {
		idx int
		val Value
	}
	ops := make([]setOp, 0, len(s.Set))
	for _, a := range s.Set {
		idx, ok := t.colIdx[strings.ToLower(a.Column)]
		if !ok {
			return nil, fmt.Errorf("sqlstore: no such column %q in %q", a.Column, s.Table)
		}
		cv, err := coerce(a.Value, t.cols[idx].Type)
		if err != nil {
			return nil, err
		}
		ops = append(ops, setOp{idx: idx, val: cv})
	}
	// Two passes: evaluate WHERE on the pre-update snapshot, then apply,
	// so an UPDATE whose SET changes its own predicate stays consistent.
	var hit []int
	for i, row := range t.rows {
		ok, err := matches(s.Where, t.colIdx, row)
		if err != nil {
			return nil, err
		}
		if ok {
			hit = append(hit, i)
		}
	}
	for _, i := range hit {
		for _, op := range ops {
			t.rows[i][op.idx] = op.val
		}
	}
	return &Result{Affected: len(hit)}, nil
}

func (db *Database) deleteRows(s Delete) (*Result, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, err := db.lookup(s.Table)
	if err != nil {
		return nil, err
	}
	kept := t.rows[:0]
	deleted := 0
	for _, row := range t.rows {
		ok, err := matches(s.Where, t.colIdx, row)
		if err != nil {
			return nil, err
		}
		if ok {
			deleted++
		} else {
			kept = append(kept, row)
		}
	}
	t.rows = kept
	return &Result{Affected: deleted}, nil
}

// matches applies a nullable WHERE expression.
func matches(w Expr, cols map[string]int, row []Value) (bool, error) {
	if w == nil {
		return true, nil
	}
	return w.eval(cols, row)
}
