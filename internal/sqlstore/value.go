// Package sqlstore is the repository's PostgreSQL substitute: a small
// in-memory SQL engine served over a length-framed JSON TCP protocol.
//
// The paper points its SQLSelect and SQLUpdate workload functions at a
// PostgreSQL server hosted on a dedicated SBC (Sec IV-C). This package
// implements the slice of SQL those workloads need — CREATE TABLE, INSERT,
// SELECT with WHERE/ORDER BY/LIMIT and COUNT(*), UPDATE, DELETE, DROP —
// with a real lexer, parser, and executor, so the network-bound SQL
// workloads exercise genuine query parsing and evaluation on the far side
// of a TCP connection.
package sqlstore

import (
	"fmt"
	"strconv"
)

// Type is a column type.
type Type int

const (
	// IntType holds 64-bit signed integers (INT, INTEGER, BIGINT).
	IntType Type = iota
	// FloatType holds float64 (FLOAT, REAL, DOUBLE).
	FloatType
	// TextType holds strings (TEXT, VARCHAR).
	TextType
)

func (t Type) String() string {
	switch t {
	case IntType:
		return "INT"
	case FloatType:
		return "FLOAT"
	case TextType:
		return "TEXT"
	default:
		return fmt.Sprintf("type(%d)", int(t))
	}
}

// Value is one SQL value: int64, float64, string, or nil (NULL).
type Value any

// typeOf reports whether v is storable in a column of type t, coercing
// ints to floats where SQL would.
func coerce(v Value, t Type) (Value, error) {
	if v == nil {
		return nil, nil
	}
	switch t {
	case IntType:
		if i, ok := v.(int64); ok {
			return i, nil
		}
	case FloatType:
		switch x := v.(type) {
		case float64:
			return x, nil
		case int64:
			return float64(x), nil
		}
	case TextType:
		if s, ok := v.(string); ok {
			return s, nil
		}
	}
	return nil, fmt.Errorf("sqlstore: value %v (%T) not assignable to %s column", v, v, t)
}

// compare orders two non-nil values of compatible types.
// Returns <0, 0, >0; an error for incomparable types.
func compare(a, b Value) (int, error) {
	switch x := a.(type) {
	case int64:
		switch y := b.(type) {
		case int64:
			return cmpInt(x, y), nil
		case float64:
			return cmpFloat(float64(x), y), nil
		}
	case float64:
		switch y := b.(type) {
		case int64:
			return cmpFloat(x, float64(y)), nil
		case float64:
			return cmpFloat(x, y), nil
		}
	case string:
		if y, ok := b.(string); ok {
			switch {
			case x < y:
				return -1, nil
			case x > y:
				return 1, nil
			default:
				return 0, nil
			}
		}
	}
	return 0, fmt.Errorf("sqlstore: cannot compare %T with %T", a, b)
}

func cmpInt(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func cmpFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// formatValue renders a value the way results print it (for tests/CLIs).
func formatValue(v Value) string {
	switch x := v.(type) {
	case nil:
		return "NULL"
	case int64:
		return strconv.FormatInt(x, 10)
	case float64:
		return strconv.FormatFloat(x, 'g', -1, 64)
	case string:
		return x
	default:
		return fmt.Sprintf("%v", x)
	}
}
