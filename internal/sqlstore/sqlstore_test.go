package sqlstore

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
	"testing/quick"
)

// --- Lexer ---

func TestLexBasics(t *testing.T) {
	toks, err := lex("SELECT a, b FROM t WHERE x >= -3.5 AND name != 'o''brien';")
	if err != nil {
		t.Fatal(err)
	}
	var texts []string
	for _, tk := range toks {
		if tk.kind == tokEOF {
			break
		}
		texts = append(texts, tk.text)
	}
	want := []string{"SELECT", "a", ",", "b", "FROM", "t", "WHERE", "x", ">=", "-3.5", "AND", "name", "!=", "o'brien", ";"}
	if len(texts) != len(want) {
		t.Fatalf("tokens = %v", texts)
	}
	for i := range want {
		if texts[i] != want[i] {
			t.Fatalf("token %d = %q, want %q", i, texts[i], want[i])
		}
	}
}

func TestLexNormalizesNotEquals(t *testing.T) {
	toks, err := lex("a <> b")
	if err != nil {
		t.Fatal(err)
	}
	if toks[1].text != "!=" {
		t.Fatalf("<> lexed as %q, want !=", toks[1].text)
	}
}

func TestLexRejects(t *testing.T) {
	for _, bad := range []string{"'unterminated", "a ! b", "a @ b"} {
		if _, err := lex(bad); err == nil {
			t.Fatalf("lexed %q without error", bad)
		}
	}
}

// --- Parser ---

func TestParseCreateTable(t *testing.T) {
	st, err := Parse("CREATE TABLE users (id INT, name VARCHAR(64), score FLOAT)")
	if err != nil {
		t.Fatal(err)
	}
	ct := st.(CreateTable)
	if ct.Table != "users" || len(ct.Columns) != 3 {
		t.Fatalf("parsed %+v", ct)
	}
	if ct.Columns[0].Type != IntType || ct.Columns[1].Type != TextType || ct.Columns[2].Type != FloatType {
		t.Fatalf("column types wrong: %+v", ct.Columns)
	}
}

func TestParseInsertMultiRow(t *testing.T) {
	st, err := Parse("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')")
	if err != nil {
		t.Fatal(err)
	}
	in := st.(Insert)
	if len(in.Rows) != 2 || in.Rows[1][0] != int64(2) || in.Rows[1][1] != "y" {
		t.Fatalf("parsed %+v", in)
	}
}

func TestParseSelectFull(t *testing.T) {
	st, err := Parse("SELECT a, b FROM t WHERE (a > 1 AND b != 'x') OR NOT c IS NULL ORDER BY a DESC LIMIT 10")
	if err != nil {
		t.Fatal(err)
	}
	sel := st.(Select)
	if sel.Table != "t" || len(sel.Items) != 2 || sel.OrderBy != "a" || !sel.Desc || sel.Limit != 10 {
		t.Fatalf("parsed %+v", sel)
	}
	if sel.Items[0] != (SelectItem{Column: "a"}) || sel.Items[1] != (SelectItem{Column: "b"}) {
		t.Fatalf("items = %+v", sel.Items)
	}
	if sel.Where == nil {
		t.Fatal("missing WHERE")
	}
}

func TestParseCountStar(t *testing.T) {
	st, err := Parse("SELECT COUNT(*) FROM t WHERE a = 1")
	if err != nil {
		t.Fatal(err)
	}
	sel := st.(Select)
	if !sel.Aggregated() || len(sel.Items) != 1 || sel.Items[0].Agg != "count" || sel.Items[0].Column != "" {
		t.Fatalf("COUNT(*) parsed as %+v", sel.Items)
	}
}

func TestParseKeywordsCaseInsensitive(t *testing.T) {
	if _, err := Parse("select * from t where a = 1 order by a limit 1"); err != nil {
		t.Fatal(err)
	}
}

func TestParseRejects(t *testing.T) {
	bad := []string{
		"",
		"SELEKT * FROM t",
		"SELECT * FROM",
		"CREATE TABLE t ()",
		"CREATE TABLE t (a BLOB)",
		"INSERT INTO t VALUES",
		"UPDATE t SET",
		"SELECT * FROM t WHERE",
		"SELECT * FROM t LIMIT -1",
		"SELECT * FROM t; garbage",
		"DELETE t WHERE a = 1",
		"SELECT * FROM t WHERE 1 IS NULL",
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Fatalf("parsed %q without error", q)
		}
	}
}

// --- Executor ---

func newTestDB(t *testing.T) *Database {
	t.Helper()
	db := NewDatabase()
	mustExec(t, db, "CREATE TABLE emp (id INT, name TEXT, salary FLOAT, dept TEXT)")
	mustExec(t, db, `INSERT INTO emp VALUES
		(1, 'alice', 90.5, 'eng'),
		(2, 'bob', 80.0, 'eng'),
		(3, 'carol', 120.0, 'mgmt'),
		(4, 'dave', 70.25, 'ops'),
		(5, 'erin', NULL, 'eng')`)
	return db
}

func mustExec(t *testing.T, db *Database, q string) *Result {
	t.Helper()
	res, err := db.Exec(q)
	if err != nil {
		t.Fatalf("Exec(%q): %v", q, err)
	}
	return res
}

func TestSelectAll(t *testing.T) {
	db := newTestDB(t)
	res := mustExec(t, db, "SELECT * FROM emp")
	if len(res.Rows) != 5 || len(res.Columns) != 4 {
		t.Fatalf("got %d rows × %d cols", len(res.Rows), len(res.Columns))
	}
}

func TestSelectWhereAndProjection(t *testing.T) {
	db := newTestDB(t)
	res := mustExec(t, db, "SELECT name FROM emp WHERE dept = 'eng' AND salary > 85")
	if len(res.Rows) != 1 || res.Rows[0][0] != "alice" {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestSelectOr(t *testing.T) {
	db := newTestDB(t)
	res := mustExec(t, db, "SELECT id FROM emp WHERE dept = 'mgmt' OR dept = 'ops' ORDER BY id")
	if len(res.Rows) != 2 || res.Rows[0][0] != int64(3) || res.Rows[1][0] != int64(4) {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestSelectNullSemantics(t *testing.T) {
	db := newTestDB(t)
	// NULL never matches comparisons...
	res := mustExec(t, db, "SELECT id FROM emp WHERE salary > 0")
	if len(res.Rows) != 4 {
		t.Fatalf("NULL salary matched a comparison: %v", res.Rows)
	}
	// ...but IS NULL finds it.
	res = mustExec(t, db, "SELECT name FROM emp WHERE salary IS NULL")
	if len(res.Rows) != 1 || res.Rows[0][0] != "erin" {
		t.Fatalf("rows = %v", res.Rows)
	}
	res = mustExec(t, db, "SELECT COUNT(*) FROM emp WHERE salary IS NOT NULL")
	if res.Rows[0][0] != int64(4) {
		t.Fatalf("count = %v", res.Rows)
	}
}

func TestSelectOrderByAndLimit(t *testing.T) {
	db := newTestDB(t)
	res := mustExec(t, db, "SELECT name FROM emp WHERE salary IS NOT NULL ORDER BY salary DESC LIMIT 2")
	if len(res.Rows) != 2 || res.Rows[0][0] != "carol" || res.Rows[1][0] != "alice" {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestSelectCountStar(t *testing.T) {
	db := newTestDB(t)
	res := mustExec(t, db, "SELECT COUNT(*) FROM emp WHERE dept = 'eng'")
	if res.Rows[0][0] != int64(3) {
		t.Fatalf("count = %v", res.Rows[0][0])
	}
}

func TestUpdate(t *testing.T) {
	db := newTestDB(t)
	res := mustExec(t, db, "UPDATE emp SET salary = 100.0, dept = 'core' WHERE dept = 'eng'")
	if res.Affected != 3 {
		t.Fatalf("affected = %d, want 3", res.Affected)
	}
	check := mustExec(t, db, "SELECT COUNT(*) FROM emp WHERE dept = 'core' AND salary = 100.0")
	if check.Rows[0][0] != int64(3) {
		t.Fatalf("post-update count = %v", check.Rows[0][0])
	}
}

func TestUpdateIsAtomicOnBadAssignment(t *testing.T) {
	db := newTestDB(t)
	if _, err := db.Exec("UPDATE emp SET salary = 'oops' WHERE id = 1"); err == nil {
		t.Fatal("type-mismatched UPDATE succeeded")
	}
	res := mustExec(t, db, "SELECT salary FROM emp WHERE id = 1")
	if res.Rows[0][0] != 90.5 {
		t.Fatalf("row mutated by failed update: %v", res.Rows[0][0])
	}
}

func TestDelete(t *testing.T) {
	db := newTestDB(t)
	res := mustExec(t, db, "DELETE FROM emp WHERE salary < 85")
	if res.Affected != 2 {
		t.Fatalf("affected = %d, want 2 (NULL must not match)", res.Affected)
	}
	left := mustExec(t, db, "SELECT COUNT(*) FROM emp")
	if left.Rows[0][0] != int64(3) {
		t.Fatalf("remaining = %v", left.Rows[0][0])
	}
}

func TestInsertColumnSubsetFillsNull(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, "INSERT INTO emp (id, name) VALUES (6, 'frank')")
	res := mustExec(t, db, "SELECT salary, dept FROM emp WHERE id = 6")
	if res.Rows[0][0] != nil || res.Rows[0][1] != nil {
		t.Fatalf("unspecified columns = %v, want NULLs", res.Rows[0])
	}
}

func TestIntCoercesToFloatColumn(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, "INSERT INTO emp VALUES (7, 'gail', 95, 'eng')")
	res := mustExec(t, db, "SELECT salary FROM emp WHERE id = 7")
	if res.Rows[0][0] != float64(95) {
		t.Fatalf("salary = %v (%T), want 95.0", res.Rows[0][0], res.Rows[0][0])
	}
}

func TestExecErrors(t *testing.T) {
	db := newTestDB(t)
	bad := []string{
		"SELECT * FROM nope",
		"SELECT nope FROM emp",
		"SELECT * FROM emp WHERE nope = 1",
		"SELECT * FROM emp ORDER BY nope",
		"INSERT INTO emp VALUES (1)",
		"INSERT INTO emp (nope) VALUES (1)",
		"INSERT INTO emp VALUES ('x', 'y', 'z', 'w')",
		"CREATE TABLE emp (id INT)",
		"CREATE TABLE t2 (a INT, a TEXT)",
		"DROP TABLE nope",
		"UPDATE nope SET a = 1",
		"SELECT * FROM emp WHERE name > 5",
	}
	for _, q := range bad {
		if _, err := db.Exec(q); err == nil {
			t.Fatalf("Exec(%q) succeeded, want error", q)
		}
	}
}

func TestDropTable(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, "DROP TABLE emp")
	if len(db.Tables()) != 0 {
		t.Fatalf("tables = %v", db.Tables())
	}
}

func TestTableNamesCaseInsensitive(t *testing.T) {
	db := newTestDB(t)
	res := mustExec(t, db, "SELECT COUNT(*) FROM EMP")
	if res.Rows[0][0] != int64(5) {
		t.Fatal("table lookup should be case-insensitive")
	}
	res = mustExec(t, db, "SELECT NAME FROM emp WHERE ID = 1")
	if res.Rows[0][0] != "alice" {
		t.Fatal("column lookup should be case-insensitive")
	}
}

func TestConcurrentReadersAndWriters(t *testing.T) {
	db := NewDatabase()
	mustExec(t, db, "CREATE TABLE ctr (id INT, n INT)")
	mustExec(t, db, "INSERT INTO ctr VALUES (1, 0)")
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if _, err := db.Exec(fmt.Sprintf("INSERT INTO ctr VALUES (%d, %d)", g*1000+i, i)); err != nil {
					t.Error(err)
					return
				}
				if _, err := db.Exec("SELECT COUNT(*) FROM ctr"); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	res := mustExec(t, db, "SELECT COUNT(*) FROM ctr")
	if res.Rows[0][0] != int64(201) {
		t.Fatalf("rows = %v, want 201", res.Rows[0][0])
	}
}

// Property: inserting N distinct ids and selecting them back preserves count
// and a WHERE on id returns exactly one row.
func TestInsertSelectProperty(t *testing.T) {
	prop := func(ids []uint16) bool {
		db := NewDatabase()
		if _, err := db.Exec("CREATE TABLE t (id INT, v TEXT)"); err != nil {
			return false
		}
		seen := map[uint16]bool{}
		n := 0
		for _, id := range ids {
			if seen[id] {
				continue
			}
			seen[id] = true
			n++
			if _, err := db.Exec(fmt.Sprintf("INSERT INTO t VALUES (%d, 'v%d')", id, id)); err != nil {
				return false
			}
		}
		res, err := db.Exec("SELECT COUNT(*) FROM t")
		if err != nil || res.Rows[0][0] != int64(n) {
			return false
		}
		for id := range seen {
			res, err := db.Exec(fmt.Sprintf("SELECT v FROM t WHERE id = %d", id))
			if err != nil || len(res.Rows) != 1 || res.Rows[0][0] != fmt.Sprintf("v%d", id) {
				return false
			}
			break // one probe per case keeps the property fast
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestFormatValue(t *testing.T) {
	cases := map[string]Value{"NULL": nil, "42": int64(42), "3.5": 3.5, "hi": "hi"}
	for want, v := range cases {
		if got := formatValue(v); got != want {
			t.Fatalf("formatValue(%v) = %q, want %q", v, got, want)
		}
	}
}

// --- End-to-end over TCP ---

func startSQLServer(t *testing.T) string {
	t.Helper()
	srv := NewServer(nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return addr
}

func TestEndToEndQuery(t *testing.T) {
	addr := startSQLServer(t)
	c, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, err := c.Query("CREATE TABLE kv (k TEXT, v INT)"); err != nil {
		t.Fatal(err)
	}
	res, err := c.Query("INSERT INTO kv VALUES ('a', 1), ('b', 2)")
	if err != nil || res.Affected != 2 {
		t.Fatalf("insert: %+v, %v", res, err)
	}
	res, err = c.Query("SELECT v FROM kv WHERE k = 'b'")
	if err != nil {
		t.Fatal(err)
	}
	// Wire decoding must hand back int64, not float64.
	if res.Rows[0][0] != int64(2) {
		t.Fatalf("value = %v (%T), want int64(2)", res.Rows[0][0], res.Rows[0][0])
	}
	res, err = c.Query("UPDATE kv SET v = 10 WHERE k = 'a'")
	if err != nil || res.Affected != 1 {
		t.Fatalf("update: %+v, %v", res, err)
	}
}

func TestEndToEndErrorKeepsConnection(t *testing.T) {
	addr := startSQLServer(t)
	c, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Query("SELECT * FROM missing"); err == nil || !strings.Contains(err.Error(), "no such table") {
		t.Fatalf("err = %v", err)
	}
	if _, err := c.Query("CREATE TABLE ok (a INT)"); err != nil {
		t.Fatalf("connection unusable after error: %v", err)
	}
}

func TestEndToEndFloatsSurviveWire(t *testing.T) {
	addr := startSQLServer(t)
	c, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Query("CREATE TABLE f (x FLOAT)")        //nolint:errcheck
	c.Query("INSERT INTO f VALUES (2.5), (3)") //nolint:errcheck
	res, err := c.Query("SELECT x FROM f ORDER BY x")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0] != 2.5 {
		t.Fatalf("row0 = %v (%T)", res.Rows[0][0], res.Rows[0][0])
	}
	// Integral floats decode as int64 on the wire (JSON erases the
	// distinction); comparisons still work across the int/float divide.
	res, err = c.Query("SELECT COUNT(*) FROM f WHERE x >= 2.5")
	if err != nil || res.Rows[0][0] != int64(2) {
		t.Fatalf("count = %v, %v", res.Rows, err)
	}
}
