package sqlstore

import (
	"net"
	"testing"
	"time"
)

// TestDialTimeoutBoundsDeadBackend is the regression test for the
// unbounded net.Dial: a dead SQL backend must fail the dial within the
// client's timeout instead of hanging a live worker forever (the OP's
// deadline machinery never sees time spent inside a workload function).
func TestDialTimeoutBoundsDeadBackend(t *testing.T) {
	// A listener with a full accept backlog behaves like a dead backend
	// for connect purposes on some platforms; a closed port fails fast
	// everywhere. Either way the dial must return within the timeout.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close() // the port is now dead
	start := time.Now()
	if _, err := Dial(addr, 500*time.Millisecond); err == nil {
		t.Fatal("dialing a dead backend succeeded")
	}
	if waited := time.Since(start); waited > 5*time.Second {
		t.Fatalf("dial to a dead backend took %v, should be bounded by the timeout", waited)
	}
}

// TestQuerySilentBackendTimesOut is the regression test for missing I/O
// deadlines: a backend that accepts the connection and then goes silent
// must fail the query at the client's deadline, not hang it forever.
func TestQuerySilentBackendTimesOut(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			defer conn.Close() // swallow the connection: never read, never reply
		}
	}()
	c, err := Dial(ln.Addr().String(), 300*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	done := make(chan error, 1)
	go func() {
		_, err := c.Query("SELECT 1 FROM kv")
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("query against a silent backend succeeded")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("query against a silent backend hung past its deadline")
	}
}
