package sqlstore

import (
	"errors"
	"net"
	"os"
	"testing"
	"time"
)

// TestClientMidFrameErrorDoesNotLeakConn pairs the client with a raw
// listener that answers a query with a truncated frame (the header
// promises 200 bytes, one arrives) and never finishes it. The client
// must surface an error at its deadline, and Close must actually release
// the TCP connection — the peer proves it by observing EOF instead of a
// read timeout.
func TestClientMidFrameErrorDoesNotLeakConn(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	conns := make(chan net.Conn, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		conns <- conn
		buf := make([]byte, 4096)
		conn.Read(buf)                           //nolint:errcheck // the request; content irrelevant
		conn.Write([]byte{0, 0, 0, 200, '{'})    //nolint:errcheck // truncated frame, never completed
	}()
	c, err := Dial(ln.Addr().String(), 300*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Query("SELECT 1 FROM kv"); err == nil {
		t.Fatal("truncated reply did not error")
	}
	if err := c.Close(); err != nil {
		t.Fatalf("close after mid-frame error: %v", err)
	}
	sconn := <-conns
	defer sconn.Close()
	sconn.SetReadDeadline(time.Now().Add(2 * time.Second)) //nolint:errcheck
	buf := make([]byte, 64)
	for {
		_, rerr := sconn.Read(buf)
		if rerr == nil {
			continue
		}
		if errors.Is(rerr, os.ErrDeadlineExceeded) {
			t.Fatal("client connection still open after Close: leaked")
		}
		return // EOF or reset: the client really hung up
	}
}
