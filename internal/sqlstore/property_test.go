package sqlstore

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// Differential property test: build a random table, generate random WHERE
// clauses, and check the engine's SELECT against a plain Go filter over
// the same rows. Catches parser/evaluator disagreements that example-based
// tests miss.

type refRow struct {
	id      int64
	qty     int64
	price   float64
	name    string
	hasName bool // false → NULL
}

func buildRandomTable(t *testing.T, rng *rand.Rand, db *Database) []refRow {
	t.Helper()
	if _, err := db.Exec("CREATE TABLE items (id INT, qty INT, price FLOAT, name TEXT)"); err != nil {
		t.Fatal(err)
	}
	n := 20 + rng.Intn(60)
	rows := make([]refRow, 0, n)
	var sb strings.Builder
	sb.WriteString("INSERT INTO items VALUES ")
	for i := 0; i < n; i++ {
		r := refRow{
			id:      int64(i),
			qty:     int64(rng.Intn(20) - 5),
			price:   float64(rng.Intn(1000)) / 10,
			hasName: rng.Intn(5) != 0,
		}
		if r.hasName {
			r.name = fmt.Sprintf("item-%c", 'a'+rune(rng.Intn(6)))
		}
		rows = append(rows, r)
		if i > 0 {
			sb.WriteString(", ")
		}
		nameLit := "NULL"
		if r.hasName {
			nameLit = "'" + r.name + "'"
		}
		fmt.Fprintf(&sb, "(%d, %d, %f, %s)", r.id, r.qty, r.price, nameLit)
	}
	if _, err := db.Exec(sb.String()); err != nil {
		t.Fatal(err)
	}
	return rows
}

// predicate pairs a SQL fragment with its reference evaluation.
type predicate struct {
	sql  string
	eval func(refRow) bool
}

func randomPredicate(rng *rand.Rand, depth int) predicate {
	if depth > 0 && rng.Intn(3) == 0 {
		left := randomPredicate(rng, depth-1)
		right := randomPredicate(rng, depth-1)
		if rng.Intn(2) == 0 {
			return predicate{
				sql:  "(" + left.sql + " AND " + right.sql + ")",
				eval: func(r refRow) bool { return left.eval(r) && right.eval(r) },
			}
		}
		return predicate{
			sql:  "(" + left.sql + " OR " + right.sql + ")",
			eval: func(r refRow) bool { return left.eval(r) || right.eval(r) },
		}
	}
	if depth > 0 && rng.Intn(6) == 0 {
		inner := randomPredicate(rng, depth-1)
		return predicate{
			sql:  "NOT " + inner.sql,
			eval: func(r refRow) bool { return !inner.eval(r) },
		}
	}
	switch rng.Intn(5) {
	case 0:
		v := int64(rng.Intn(20) - 5)
		op, cmp := randomOp(rng)
		return predicate{
			sql:  fmt.Sprintf("qty %s %d", op, v),
			eval: func(r refRow) bool { return cmp(compareInt(r.qty, v)) },
		}
	case 1:
		v := float64(rng.Intn(1000)) / 10
		op, cmp := randomOp(rng)
		return predicate{
			sql:  fmt.Sprintf("price %s %f", op, v),
			eval: func(r refRow) bool { return cmp(compareFloat(r.price, v)) },
		}
	case 2:
		v := fmt.Sprintf("item-%c", 'a'+rune(rng.Intn(6)))
		op, cmp := randomOp(rng)
		return predicate{
			sql: fmt.Sprintf("name %s '%s'", op, v),
			eval: func(r refRow) bool {
				if !r.hasName {
					return false // NULL never matches comparisons
				}
				return cmp(strings.Compare(r.name, v))
			},
		}
	case 3:
		return predicate{sql: "name IS NULL", eval: func(r refRow) bool { return !r.hasName }}
	default:
		return predicate{sql: "name IS NOT NULL", eval: func(r refRow) bool { return r.hasName }}
	}
}

func randomOp(rng *rand.Rand) (string, func(int) bool) {
	switch rng.Intn(6) {
	case 0:
		return "=", func(c int) bool { return c == 0 }
	case 1:
		return "!=", func(c int) bool { return c != 0 }
	case 2:
		return "<", func(c int) bool { return c < 0 }
	case 3:
		return "<=", func(c int) bool { return c <= 0 }
	case 4:
		return ">", func(c int) bool { return c > 0 }
	default:
		return ">=", func(c int) bool { return c >= 0 }
	}
}

func compareInt(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func compareFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func TestRandomWhereClausesAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(20260706))
	for trial := 0; trial < 40; trial++ {
		db := NewDatabase()
		rows := buildRandomTable(t, rng, db)
		for q := 0; q < 25; q++ {
			pred := randomPredicate(rng, 2)
			query := "SELECT id FROM items WHERE " + pred.sql + " ORDER BY id"
			res, err := db.Exec(query)
			if err != nil {
				t.Fatalf("trial %d: %s: %v", trial, query, err)
			}
			var want []int64
			for _, r := range rows {
				if pred.eval(r) {
					want = append(want, r.id)
				}
			}
			if len(res.Rows) != len(want) {
				t.Fatalf("trial %d: %s\nengine %d rows, reference %d", trial, query, len(res.Rows), len(want))
			}
			for i, w := range want {
				if res.Rows[i][0] != w {
					t.Fatalf("trial %d: %s\nrow %d = %v, want %d", trial, query, i, res.Rows[i][0], w)
				}
			}
		}
	}
}

func TestRandomUpdateDeleteAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 20; trial++ {
		db := NewDatabase()
		rows := buildRandomTable(t, rng, db)
		pred := randomPredicate(rng, 1)

		// Count first, then DELETE must affect exactly that many.
		matching := 0
		for _, r := range rows {
			if pred.eval(r) {
				matching++
			}
		}
		res, err := db.Exec("DELETE FROM items WHERE " + pred.sql)
		if err != nil {
			t.Fatalf("trial %d: DELETE %s: %v", trial, pred.sql, err)
		}
		if res.Affected != matching {
			t.Fatalf("trial %d: DELETE %s affected %d, reference %d", trial, pred.sql, res.Affected, matching)
		}
		left, err := db.Exec("SELECT COUNT(*) FROM items")
		if err != nil {
			t.Fatal(err)
		}
		if left.Rows[0][0] != int64(len(rows)-matching) {
			t.Fatalf("trial %d: %v rows remain, want %d", trial, left.Rows[0][0], len(rows)-matching)
		}
	}
}
