package sqlstore

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"microfaas/internal/wire"
)

// Wire protocol: wire-framed JSON (see internal/wire). Requests carry
// {"query": "..."}; responses carry the Result fields plus an optional
// "error".

type request struct {
	Query string `json:"query"`
}

type response struct {
	Columns  []string  `json:"columns,omitempty"`
	Rows     [][]Value `json:"rows,omitempty"`
	Affected int       `json:"affected"`
	Error    string    `json:"error,omitempty"`
}

// normalizeValues rewrites json.Number values into int64/float64 so results
// decoded from the wire behave like results from a local Database.
func normalizeValues(rows [][]Value) error {
	for _, row := range rows {
		for i, v := range row {
			num, ok := v.(json.Number)
			if !ok {
				continue
			}
			if n, err := num.Int64(); err == nil {
				row[i] = n
				continue
			}
			f, err := num.Float64()
			if err != nil {
				return fmt.Errorf("sqlstore: bad number %q on wire", num)
			}
			row[i] = f
		}
	}
	return nil
}

// Server serves a Database over the framed JSON protocol.
type Server struct {
	db *Database

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	wg       sync.WaitGroup
}

// NewServer returns a server backed by db (a fresh database if nil).
func NewServer(db *Database) *Server {
	if db == nil {
		db = NewDatabase()
	}
	return &Server{db: db, conns: make(map[net.Conn]struct{})}
}

// Database returns the underlying database.
func (s *Server) Database() *Database { return s.db }

// Listen binds to addr and serves in the background, returning the bound
// address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("sqlstore: listen: %w", err)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return "", errors.New("sqlstore: server already closed")
	}
	s.listener = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

// Close stops the server and waits for connection handlers.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.listener
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	for {
		var req request
		if err := wire.ReadJSON(r, &req); err != nil {
			return
		}
		var resp response
		res, err := s.db.Exec(req.Query)
		if err != nil {
			resp.Error = err.Error()
		} else {
			resp.Columns = res.Columns
			resp.Rows = res.Rows
			resp.Affected = res.Affected
		}
		if err := wire.WriteJSON(w, resp); err != nil {
			return
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
}

// Client speaks the framed JSON protocol to a sqlstore server.
type Client struct {
	conn    net.Conn
	r       *bufio.Reader
	w       *bufio.Writer
	timeout time.Duration // per-operation I/O deadline (0 = none)
}

// Dial connects to a sqlstore server with the given timeout, matching
// kvstore.Dial and mq.Dial. The timeout also bounds each subsequent
// Query's I/O (as a per-operation deadline), so a backend that dies
// mid-conversation fails the call instead of hanging the worker forever.
// A zero timeout disables both bounds.
func Dial(addr string, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("sqlstore: dial %s: %w", addr, err)
	}
	return &Client{conn: conn, r: bufio.NewReader(conn), w: bufio.NewWriter(conn), timeout: timeout}, nil
}

// Close terminates the connection.
func (c *Client) Close() error { return c.conn.Close() }

// Query executes one SQL statement on the server. Each call runs under
// the client's dial timeout as an I/O deadline: a backend that goes
// silent mid-conversation fails the query instead of hanging it.
func (c *Client) Query(sql string) (*Result, error) {
	if c.timeout > 0 {
		if err := c.conn.SetDeadline(time.Now().Add(c.timeout)); err != nil {
			return nil, fmt.Errorf("sqlstore: deadline: %w", err)
		}
	}
	if err := wire.WriteJSON(c.w, request{Query: sql}); err != nil {
		return nil, err
	}
	if err := c.w.Flush(); err != nil {
		return nil, err
	}
	var resp response
	if err := wire.ReadJSON(c.r, &resp); err != nil {
		return nil, err
	}
	if resp.Error != "" {
		return nil, errors.New(resp.Error)
	}
	if err := normalizeValues(resp.Rows); err != nil {
		return nil, err
	}
	return &Result{Columns: resp.Columns, Rows: resp.Rows, Affected: resp.Affected}, nil
}
