package sqlstore

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexer output.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokSymbol // punctuation and operators: ( ) , * = != <> < <= > >= ;
)

type token struct {
	kind tokenKind
	text string // identifiers upper-cased for keyword matching? No: raw text
	pos  int
}

// lexer tokenizes a SQL statement.
type lexer struct {
	src []rune
	pos int
}

func newLexer(src string) *lexer { return &lexer{src: []rune(src)} }

func (l *lexer) errf(pos int, format string, args ...any) error {
	return fmt.Errorf("sqlstore: syntax error at position %d: %s", pos, fmt.Sprintf(format, args...))
}

func (l *lexer) peek() rune {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) && unicode.IsSpace(l.src[l.pos]) {
		l.pos++
	}
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: l.pos}, nil
	}
	start := l.pos
	c := l.src[l.pos]
	switch {
	case unicode.IsLetter(c) || c == '_':
		for l.pos < len(l.src) && (unicode.IsLetter(l.src[l.pos]) || unicode.IsDigit(l.src[l.pos]) || l.src[l.pos] == '_') {
			l.pos++
		}
		return token{kind: tokIdent, text: string(l.src[start:l.pos]), pos: start}, nil
	case unicode.IsDigit(c) || (c == '-' && l.pos+1 < len(l.src) && unicode.IsDigit(l.src[l.pos+1])):
		l.pos++ // first digit or sign
		seenDot := false
		for l.pos < len(l.src) {
			r := l.src[l.pos]
			if unicode.IsDigit(r) {
				l.pos++
				continue
			}
			if r == '.' && !seenDot {
				seenDot = true
				l.pos++
				continue
			}
			break
		}
		return token{kind: tokNumber, text: string(l.src[start:l.pos]), pos: start}, nil
	case c == '\'':
		l.pos++
		var sb strings.Builder
		for {
			if l.pos >= len(l.src) {
				return token{}, l.errf(start, "unterminated string literal")
			}
			r := l.src[l.pos]
			if r == '\'' {
				// '' escapes a quote inside the literal.
				if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
					sb.WriteRune('\'')
					l.pos += 2
					continue
				}
				l.pos++
				return token{kind: tokString, text: sb.String(), pos: start}, nil
			}
			sb.WriteRune(r)
			l.pos++
		}
	case strings.ContainsRune("(),*;=", c):
		l.pos++
		return token{kind: tokSymbol, text: string(c), pos: start}, nil
	case c == '!':
		l.pos++
		if l.peek() == '=' {
			l.pos++
			return token{kind: tokSymbol, text: "!=", pos: start}, nil
		}
		return token{}, l.errf(start, "unexpected '!'")
	case c == '<':
		l.pos++
		switch l.peek() {
		case '=':
			l.pos++
			return token{kind: tokSymbol, text: "<=", pos: start}, nil
		case '>':
			l.pos++
			return token{kind: tokSymbol, text: "!=", pos: start}, nil // <> normalized to !=
		}
		return token{kind: tokSymbol, text: "<", pos: start}, nil
	case c == '>':
		l.pos++
		if l.peek() == '=' {
			l.pos++
			return token{kind: tokSymbol, text: ">=", pos: start}, nil
		}
		return token{kind: tokSymbol, text: ">", pos: start}, nil
	default:
		return token{}, l.errf(start, "unexpected character %q", string(c))
	}
}

// lex tokenizes the whole statement up front, which simplifies lookahead.
func lex(src string) ([]token, error) {
	l := newLexer(src)
	var toks []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.kind == tokEOF {
			return toks, nil
		}
	}
}
