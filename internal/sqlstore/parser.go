package sqlstore

import (
	"fmt"
	"strconv"
	"strings"
)

// --- AST ---

// Statement is a parsed SQL statement.
type Statement interface{ stmt() }

// ColumnDef is one column in a CREATE TABLE.
type ColumnDef struct {
	Name string
	Type Type
}

// CreateTable is CREATE TABLE name (col type, ...).
type CreateTable struct {
	Table   string
	Columns []ColumnDef
}

// DropTable is DROP TABLE name.
type DropTable struct{ Table string }

// Insert is INSERT INTO name [(cols)] VALUES (...), (...).
type Insert struct {
	Table   string
	Columns []string // empty means table order
	Rows    [][]Value
}

// SelectItem is one projection in a SELECT list: a plain column or an
// aggregate over one (COUNT also accepts *, leaving Column empty).
type SelectItem struct {
	Column string
	// Agg is "", "count", "sum", "avg", "min", or "max".
	Agg string
}

// Name returns the result-column label for the item.
func (it SelectItem) Name() string {
	if it.Agg == "" {
		return it.Column
	}
	if it.Column == "" {
		return it.Agg // COUNT(*)
	}
	return it.Agg + "(" + it.Column + ")"
}

// Select is SELECT items FROM name [WHERE] [GROUP BY] [ORDER BY] [LIMIT].
type Select struct {
	Table string
	// Items is the projection list; empty means *.
	Items   []SelectItem
	Where   Expr   // nil means all rows
	GroupBy string // empty means no grouping
	OrderBy string // empty means unordered
	Desc    bool
	Limit   int // -1 means no limit
}

// Aggregated reports whether any item is an aggregate.
func (s Select) Aggregated() bool {
	for _, it := range s.Items {
		if it.Agg != "" {
			return true
		}
	}
	return false
}

// Update is UPDATE name SET col=val,... [WHERE].
type Update struct {
	Table string
	Set   []Assignment
	Where Expr
}

// Assignment is one col=value pair in UPDATE ... SET.
type Assignment struct {
	Column string
	Value  Value
}

// Delete is DELETE FROM name [WHERE].
type Delete struct {
	Table string
	Where Expr
}

func (CreateTable) stmt() {}
func (DropTable) stmt()   {}
func (Insert) stmt()      {}
func (Select) stmt()      {}
func (Update) stmt()      {}
func (Delete) stmt()      {}

// Expr is a WHERE-clause expression evaluated against a row.
type Expr interface {
	eval(cols map[string]int, row []Value) (bool, error)
}

type binaryLogic struct {
	op   string // "AND" | "OR"
	l, r Expr
}

func (b binaryLogic) eval(cols map[string]int, row []Value) (bool, error) {
	lv, err := b.l.eval(cols, row)
	if err != nil {
		return false, err
	}
	// Short-circuit like every SQL engine does.
	if b.op == "AND" && !lv {
		return false, nil
	}
	if b.op == "OR" && lv {
		return true, nil
	}
	return b.r.eval(cols, row)
}

type notExpr struct{ x Expr }

func (n notExpr) eval(cols map[string]int, row []Value) (bool, error) {
	v, err := n.x.eval(cols, row)
	return !v, err
}

// operand is either a column reference or a literal.
type operand struct {
	column  string // set when isCol
	isCol   bool
	literal Value
}

func (o operand) value(cols map[string]int, row []Value) (Value, error) {
	if !o.isCol {
		return o.literal, nil
	}
	idx, ok := cols[strings.ToLower(o.column)]
	if !ok {
		return nil, fmt.Errorf("sqlstore: unknown column %q", o.column)
	}
	return row[idx], nil
}

type comparison struct {
	op   string // = != < <= > >=
	l, r operand
}

func (c comparison) eval(cols map[string]int, row []Value) (bool, error) {
	lv, err := c.l.value(cols, row)
	if err != nil {
		return false, err
	}
	rv, err := c.r.value(cols, row)
	if err != nil {
		return false, err
	}
	// SQL three-valued logic collapsed to false: NULL compares false.
	if lv == nil || rv == nil {
		return false, nil
	}
	cmp, err := compare(lv, rv)
	if err != nil {
		return false, err
	}
	switch c.op {
	case "=":
		return cmp == 0, nil
	case "!=":
		return cmp != 0, nil
	case "<":
		return cmp < 0, nil
	case "<=":
		return cmp <= 0, nil
	case ">":
		return cmp > 0, nil
	case ">=":
		return cmp >= 0, nil
	default:
		return false, fmt.Errorf("sqlstore: unknown operator %q", c.op)
	}
}

type isNull struct {
	col    string
	negate bool
}

func (n isNull) eval(cols map[string]int, row []Value) (bool, error) {
	idx, ok := cols[strings.ToLower(n.col)]
	if !ok {
		return false, fmt.Errorf("sqlstore: unknown column %q", n.col)
	}
	null := row[idx] == nil
	if n.negate {
		return !null, nil
	}
	return null, nil
}

// --- Parser ---

type parser struct {
	toks []token
	pos  int
}

// Parse parses one SQL statement (an optional trailing ';' is allowed).
func Parse(src string) (Statement, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	st, err := p.statement()
	if err != nil {
		return nil, err
	}
	p.accept(tokSymbol, ";")
	if !p.at(tokEOF, "") {
		return nil, p.errHere("unexpected trailing input")
	}
	return st, nil
}

func (p *parser) cur() token { return p.toks[p.pos] }

func (p *parser) errHere(msg string) error {
	t := p.cur()
	what := t.text
	if t.kind == tokEOF {
		what = "end of input"
	}
	return fmt.Errorf("sqlstore: parse error near %q: %s", what, msg)
}

// at reports whether the current token matches kind (and text for symbols /
// case-insensitive keywords when text != "").
func (p *parser) at(kind tokenKind, text string) bool {
	t := p.cur()
	if t.kind != kind {
		return false
	}
	if text == "" {
		return true
	}
	if kind == tokIdent {
		return strings.EqualFold(t.text, text)
	}
	return t.text == text
}

// accept consumes the current token when it matches.
func (p *parser) accept(kind tokenKind, text string) bool {
	if p.at(kind, text) {
		p.pos++
		return true
	}
	return false
}

// expect consumes a required token or errors.
func (p *parser) expect(kind tokenKind, text string) (token, error) {
	if !p.at(kind, text) {
		want := text
		if want == "" {
			want = map[tokenKind]string{tokIdent: "identifier", tokNumber: "number", tokString: "string"}[kind]
		}
		return token{}, p.errHere(fmt.Sprintf("expected %s", want))
	}
	t := p.cur()
	p.pos++
	return t, nil
}

func (p *parser) ident() (string, error) {
	t, err := p.expect(tokIdent, "")
	if err != nil {
		return "", err
	}
	return t.text, nil
}

func (p *parser) statement() (Statement, error) {
	switch {
	case p.accept(tokIdent, "CREATE"):
		return p.createTable()
	case p.accept(tokIdent, "DROP"):
		if _, err := p.expect(tokIdent, "TABLE"); err != nil {
			return nil, err
		}
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		return DropTable{Table: name}, nil
	case p.accept(tokIdent, "INSERT"):
		return p.insert()
	case p.accept(tokIdent, "SELECT"):
		return p.selectStmt()
	case p.accept(tokIdent, "UPDATE"):
		return p.update()
	case p.accept(tokIdent, "DELETE"):
		return p.deleteStmt()
	default:
		return nil, p.errHere("expected CREATE, DROP, INSERT, SELECT, UPDATE, or DELETE")
	}
}

func (p *parser) createTable() (Statement, error) {
	if _, err := p.expect(tokIdent, "TABLE"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokSymbol, "("); err != nil {
		return nil, err
	}
	var cols []ColumnDef
	for {
		colName, err := p.ident()
		if err != nil {
			return nil, err
		}
		typeName, err := p.ident()
		if err != nil {
			return nil, err
		}
		var typ Type
		switch strings.ToUpper(typeName) {
		case "INT", "INTEGER", "BIGINT":
			typ = IntType
		case "FLOAT", "REAL", "DOUBLE":
			typ = FloatType
		case "TEXT", "VARCHAR", "CHAR":
			typ = TextType
		default:
			return nil, fmt.Errorf("sqlstore: unknown column type %q", typeName)
		}
		// Tolerate a length suffix like VARCHAR(255).
		if p.accept(tokSymbol, "(") {
			if _, err := p.expect(tokNumber, ""); err != nil {
				return nil, err
			}
			if _, err := p.expect(tokSymbol, ")"); err != nil {
				return nil, err
			}
		}
		cols = append(cols, ColumnDef{Name: colName, Type: typ})
		if p.accept(tokSymbol, ",") {
			continue
		}
		break
	}
	if _, err := p.expect(tokSymbol, ")"); err != nil {
		return nil, err
	}
	return CreateTable{Table: name, Columns: cols}, nil
}

func (p *parser) insert() (Statement, error) {
	if _, err := p.expect(tokIdent, "INTO"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	var cols []string
	if p.accept(tokSymbol, "(") {
		for {
			c, err := p.ident()
			if err != nil {
				return nil, err
			}
			cols = append(cols, c)
			if p.accept(tokSymbol, ",") {
				continue
			}
			break
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(tokIdent, "VALUES"); err != nil {
		return nil, err
	}
	var rows [][]Value
	for {
		if _, err := p.expect(tokSymbol, "("); err != nil {
			return nil, err
		}
		var row []Value
		for {
			v, err := p.literal()
			if err != nil {
				return nil, err
			}
			row = append(row, v)
			if p.accept(tokSymbol, ",") {
				continue
			}
			break
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		rows = append(rows, row)
		if p.accept(tokSymbol, ",") {
			continue
		}
		break
	}
	return Insert{Table: name, Columns: cols, Rows: rows}, nil
}

// aggregateNames are the supported aggregate functions.
var aggregateNames = map[string]bool{
	"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true,
}

// selectItem parses one projection: column, AGG(column), or COUNT(*).
func (p *parser) selectItem() (SelectItem, error) {
	t := p.cur()
	if t.kind == tokIdent && aggregateNames[strings.ToUpper(t.text)] && p.toks[p.pos+1].kind == tokSymbol && p.toks[p.pos+1].text == "(" {
		agg := strings.ToLower(t.text)
		p.pos += 2 // name and "("
		item := SelectItem{Agg: agg}
		if p.accept(tokSymbol, "*") {
			if agg != "count" {
				return SelectItem{}, p.errHere(fmt.Sprintf("%s(*) is not supported; name a column", strings.ToUpper(agg)))
			}
		} else {
			col, err := p.ident()
			if err != nil {
				return SelectItem{}, err
			}
			item.Column = col
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return SelectItem{}, err
		}
		return item, nil
	}
	col, err := p.ident()
	if err != nil {
		return SelectItem{}, err
	}
	return SelectItem{Column: col}, nil
}

func (p *parser) selectStmt() (Statement, error) {
	sel := Select{Limit: -1}
	if !p.accept(tokSymbol, "*") {
		for {
			item, err := p.selectItem()
			if err != nil {
				return nil, err
			}
			sel.Items = append(sel.Items, item)
			if p.accept(tokSymbol, ",") {
				continue
			}
			break
		}
	}
	if _, err := p.expect(tokIdent, "FROM"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	sel.Table = name
	if p.accept(tokIdent, "WHERE") {
		w, err := p.orExpr()
		if err != nil {
			return nil, err
		}
		sel.Where = w
	}
	if p.accept(tokIdent, "GROUP") {
		if _, err := p.expect(tokIdent, "BY"); err != nil {
			return nil, err
		}
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		sel.GroupBy = col
	}
	if p.accept(tokIdent, "ORDER") {
		if _, err := p.expect(tokIdent, "BY"); err != nil {
			return nil, err
		}
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		sel.OrderBy = col
		if p.accept(tokIdent, "DESC") {
			sel.Desc = true
		} else {
			p.accept(tokIdent, "ASC")
		}
	}
	if p.accept(tokIdent, "LIMIT") {
		t, err := p.expect(tokNumber, "")
		if err != nil {
			return nil, err
		}
		n, err := strconv.Atoi(t.text)
		if err != nil || n < 0 {
			return nil, p.errHere("LIMIT must be a non-negative integer")
		}
		sel.Limit = n
	}
	return sel, nil
}

func (p *parser) update() (Statement, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokIdent, "SET"); err != nil {
		return nil, err
	}
	var sets []Assignment
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSymbol, "="); err != nil {
			return nil, err
		}
		v, err := p.literal()
		if err != nil {
			return nil, err
		}
		sets = append(sets, Assignment{Column: col, Value: v})
		if p.accept(tokSymbol, ",") {
			continue
		}
		break
	}
	up := Update{Table: name, Set: sets}
	if p.accept(tokIdent, "WHERE") {
		w, err := p.orExpr()
		if err != nil {
			return nil, err
		}
		up.Where = w
	}
	return up, nil
}

func (p *parser) deleteStmt() (Statement, error) {
	if _, err := p.expect(tokIdent, "FROM"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	del := Delete{Table: name}
	if p.accept(tokIdent, "WHERE") {
		w, err := p.orExpr()
		if err != nil {
			return nil, err
		}
		del.Where = w
	}
	return del, nil
}

// literal parses a number, string, NULL, TRUE, or FALSE (booleans stored
// as integers, the SQLite way).
func (p *parser) literal() (Value, error) {
	t := p.cur()
	switch {
	case t.kind == tokNumber:
		p.pos++
		if strings.ContainsRune(t.text, '.') {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, p.errHere("bad float literal")
			}
			return f, nil
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errHere("bad integer literal")
		}
		return n, nil
	case t.kind == tokString:
		p.pos++
		return t.text, nil
	case p.accept(tokIdent, "NULL"):
		return nil, nil
	case p.accept(tokIdent, "TRUE"):
		return int64(1), nil
	case p.accept(tokIdent, "FALSE"):
		return int64(0), nil
	default:
		return nil, p.errHere("expected a literal value")
	}
}

// --- WHERE expression grammar: or -> and (OR and)*, and -> unary (AND unary)*,
// unary -> NOT unary | primary, primary -> (or) | predicate ---

func (p *parser) orExpr() (Expr, error) {
	left, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.accept(tokIdent, "OR") {
		right, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		left = binaryLogic{op: "OR", l: left, r: right}
	}
	return left, nil
}

func (p *parser) andExpr() (Expr, error) {
	left, err := p.unaryExpr()
	if err != nil {
		return nil, err
	}
	for p.accept(tokIdent, "AND") {
		right, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		left = binaryLogic{op: "AND", l: left, r: right}
	}
	return left, nil
}

func (p *parser) unaryExpr() (Expr, error) {
	if p.accept(tokIdent, "NOT") {
		x, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return notExpr{x: x}, nil
	}
	if p.accept(tokSymbol, "(") {
		x, err := p.orExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		return x, nil
	}
	return p.predicate()
}

func (p *parser) predicate() (Expr, error) {
	left, err := p.operand()
	if err != nil {
		return nil, err
	}
	// col IS [NOT] NULL
	if p.accept(tokIdent, "IS") {
		if !left.isCol {
			return nil, p.errHere("IS NULL requires a column")
		}
		neg := p.accept(tokIdent, "NOT")
		if _, err := p.expect(tokIdent, "NULL"); err != nil {
			return nil, err
		}
		return isNull{col: left.column, negate: neg}, nil
	}
	t := p.cur()
	if t.kind != tokSymbol || !strings.Contains("= != < <= > >=", t.text) || t.text == "" {
		return nil, p.errHere("expected comparison operator")
	}
	op := t.text
	switch op {
	case "=", "!=", "<", "<=", ">", ">=":
	default:
		return nil, p.errHere("expected comparison operator")
	}
	p.pos++
	right, err := p.operand()
	if err != nil {
		return nil, err
	}
	return comparison{op: op, l: left, r: right}, nil
}

func (p *parser) operand() (operand, error) {
	t := p.cur()
	if t.kind == tokIdent && !isKeyword(t.text) {
		p.pos++
		return operand{isCol: true, column: t.text}, nil
	}
	v, err := p.literal()
	if err != nil {
		return operand{}, err
	}
	return operand{literal: v}, nil
}

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "INSERT": true, "INTO": true,
	"VALUES": true, "UPDATE": true, "SET": true, "DELETE": true, "CREATE": true,
	"TABLE": true, "DROP": true, "AND": true, "OR": true, "NOT": true,
	"NULL": true, "TRUE": true, "FALSE": true, "ORDER": true, "BY": true,
	"LIMIT": true, "IS": true, "ASC": true, "DESC": true, "COUNT": true,
	"SUM": true, "AVG": true, "MIN": true, "MAX": true, "GROUP": true,
}

func isKeyword(s string) bool { return keywords[strings.ToUpper(s)] }
