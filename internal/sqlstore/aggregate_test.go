package sqlstore

import (
	"math"
	"testing"
	"time"
)

// The emp fixture (newTestDB): eng={alice 90.5, bob 80, erin NULL},
// mgmt={carol 120}, ops={dave 70.25}.

func TestAggregatesOverWholeTable(t *testing.T) {
	db := newTestDB(t)
	res := mustExec(t, db, "SELECT COUNT(*), COUNT(salary), SUM(salary), AVG(salary), MIN(salary), MAX(salary) FROM emp")
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
	row := res.Rows[0]
	if row[0] != int64(5) {
		t.Fatalf("COUNT(*) = %v", row[0])
	}
	if row[1] != int64(4) { // NULL salary excluded
		t.Fatalf("COUNT(salary) = %v", row[1])
	}
	if row[2] != 90.5+80+120+70.25 {
		t.Fatalf("SUM = %v", row[2])
	}
	wantAvg := (90.5 + 80 + 120 + 70.25) / 4
	if math.Abs(row[3].(float64)-wantAvg) > 1e-9 {
		t.Fatalf("AVG = %v, want %v", row[3], wantAvg)
	}
	if row[4] != 70.25 || row[5] != 120.0 {
		t.Fatalf("MIN/MAX = %v/%v", row[4], row[5])
	}
	wantNames := []string{"count", "count(salary)", "sum(salary)", "avg(salary)", "min(salary)", "max(salary)"}
	for i, n := range wantNames {
		if res.Columns[i] != n {
			t.Fatalf("column %d = %q, want %q", i, res.Columns[i], n)
		}
	}
}

func TestGroupBy(t *testing.T) {
	db := newTestDB(t)
	res := mustExec(t, db, "SELECT dept, COUNT(*), AVG(salary) FROM emp GROUP BY dept ORDER BY dept")
	if len(res.Rows) != 3 {
		t.Fatalf("groups = %v", res.Rows)
	}
	// Sorted: eng, mgmt, ops.
	eng := res.Rows[0]
	if eng[0] != "eng" || eng[1] != int64(3) {
		t.Fatalf("eng group = %v", eng)
	}
	if math.Abs(eng[2].(float64)-(90.5+80)/2) > 1e-9 { // NULL excluded from AVG
		t.Fatalf("eng AVG = %v", eng[2])
	}
	if res.Rows[1][0] != "mgmt" || res.Rows[2][0] != "ops" {
		t.Fatalf("group order = %v", res.Rows)
	}
}

func TestGroupByDescAndLimit(t *testing.T) {
	db := newTestDB(t)
	res := mustExec(t, db, "SELECT dept, COUNT(*) FROM emp GROUP BY dept ORDER BY dept DESC LIMIT 2")
	if len(res.Rows) != 2 || res.Rows[0][0] != "ops" || res.Rows[1][0] != "mgmt" {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestGroupByWithWhere(t *testing.T) {
	db := newTestDB(t)
	res := mustExec(t, db, "SELECT dept, MAX(salary) FROM emp WHERE salary < 100 GROUP BY dept ORDER BY dept")
	// mgmt's only row (120) is filtered out entirely; erin's NULL doesn't match.
	if len(res.Rows) != 2 {
		t.Fatalf("groups = %v", res.Rows)
	}
	if res.Rows[0][0] != "eng" || res.Rows[0][1] != 90.5 {
		t.Fatalf("eng = %v", res.Rows[0])
	}
}

func TestGroupByNullKeyIsItsOwnGroup(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, "INSERT INTO emp (id, name, salary) VALUES (9, 'zed', 10.0)")
	res := mustExec(t, db, "SELECT dept, COUNT(*) FROM emp GROUP BY dept")
	if len(res.Rows) != 4 {
		t.Fatalf("groups = %v", res.Rows)
	}
	// NULL group sorts first.
	if res.Rows[0][0] != nil || res.Rows[0][1] != int64(1) {
		t.Fatalf("null group = %v", res.Rows[0])
	}
}

func TestAggregateEmptyInput(t *testing.T) {
	db := newTestDB(t)
	res := mustExec(t, db, "SELECT COUNT(*), SUM(salary), MIN(salary) FROM emp WHERE id > 100")
	row := res.Rows[0]
	if row[0] != int64(0) {
		t.Fatalf("COUNT over empty = %v", row[0])
	}
	if row[1] != nil || row[2] != nil {
		t.Fatalf("SUM/MIN over empty = %v/%v, want NULLs", row[1], row[2])
	}
}

func TestSumOfIntegersStaysInteger(t *testing.T) {
	db := newTestDB(t)
	res := mustExec(t, db, "SELECT SUM(id) FROM emp")
	if res.Rows[0][0] != int64(1+2+3+4+5) {
		t.Fatalf("SUM(id) = %v (%T)", res.Rows[0][0], res.Rows[0][0])
	}
}

func TestMinMaxOnText(t *testing.T) {
	db := newTestDB(t)
	res := mustExec(t, db, "SELECT MIN(name), MAX(name) FROM emp")
	if res.Rows[0][0] != "alice" || res.Rows[0][1] != "erin" {
		t.Fatalf("MIN/MAX name = %v", res.Rows[0])
	}
}

func TestAggregateErrors(t *testing.T) {
	db := newTestDB(t)
	bad := []string{
		"SELECT SUM(name) FROM emp",                                    // non-numeric SUM
		"SELECT AVG(*) FROM emp",                                       // only COUNT takes *
		"SELECT name, COUNT(*) FROM emp",                               // bare column without GROUP BY
		"SELECT name, COUNT(*) FROM emp GROUP BY dept",                 // column not the group key
		"SELECT COUNT(*) FROM emp GROUP BY nope",                       // unknown group column
		"SELECT SUM(nope) FROM emp",                                    // unknown aggregate column
		"SELECT dept, COUNT(*) FROM emp GROUP BY dept ORDER BY salary", // order by non-key
		"SELECT * FROM emp GROUP BY dept",                              // * with GROUP BY
	}
	for _, q := range bad {
		if _, err := db.Exec(q); err == nil {
			t.Fatalf("Exec(%q) succeeded, want error", q)
		}
	}
}

func TestAggregatesOverTheWire(t *testing.T) {
	addr := startSQLServer(t)
	c, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	mustQuery := func(q string) *Result {
		t.Helper()
		res, err := c.Query(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		return res
	}
	mustQuery("CREATE TABLE sales (region TEXT, amount INT)")
	mustQuery("INSERT INTO sales VALUES ('east', 10), ('east', 20), ('west', 5)")
	res := mustQuery("SELECT region, SUM(amount) FROM sales GROUP BY region ORDER BY region")
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Rows[0][0] != "east" || res.Rows[0][1] != int64(30) {
		t.Fatalf("east = %v", res.Rows[0])
	}
	if res.Rows[1][0] != "west" || res.Rows[1][1] != int64(5) {
		t.Fatalf("west = %v", res.Rows[1])
	}
}
