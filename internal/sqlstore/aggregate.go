package sqlstore

import (
	"fmt"
	"sort"
	"strings"
)

// This file evaluates aggregated SELECTs: COUNT/SUM/AVG/MIN/MAX, with an
// optional single-column GROUP BY. NULL handling follows SQL: aggregates
// skip NULL inputs, SUM/AVG/MIN/MAX of an empty input are NULL, COUNT is 0.

// aggregate evaluates s (which has aggregates and/or GROUP BY) over the
// WHERE-matched rows.
func aggregate(t *table, s Select, matched [][]Value) (*Result, error) {
	if len(s.Items) == 0 {
		return nil, fmt.Errorf("sqlstore: GROUP BY requires an explicit select list")
	}
	groupIdx := -1
	if s.GroupBy != "" {
		idx, ok := t.colIdx[strings.ToLower(s.GroupBy)]
		if !ok {
			return nil, fmt.Errorf("sqlstore: no such column %q in GROUP BY", s.GroupBy)
		}
		groupIdx = idx
	}
	// Validate items: plain columns must be the GROUP BY column; aggregate
	// columns must exist.
	for _, it := range s.Items {
		if it.Agg == "" {
			if groupIdx < 0 {
				return nil, fmt.Errorf("sqlstore: column %q must appear in GROUP BY or an aggregate", it.Column)
			}
			if strings.ToLower(it.Column) != strings.ToLower(s.GroupBy) {
				return nil, fmt.Errorf("sqlstore: column %q is not the GROUP BY column", it.Column)
			}
			continue
		}
		if it.Column == "" {
			continue // COUNT(*)
		}
		if _, ok := t.colIdx[strings.ToLower(it.Column)]; !ok {
			return nil, fmt.Errorf("sqlstore: no such column %q", it.Column)
		}
	}
	if s.OrderBy != "" && (groupIdx < 0 || !strings.EqualFold(s.OrderBy, s.GroupBy)) {
		return nil, fmt.Errorf("sqlstore: ORDER BY on aggregate queries must name the GROUP BY column")
	}

	// Bucket rows. Without GROUP BY, everything lands in one group (which
	// exists even when no rows matched, per SQL).
	type bucket struct {
		key  Value
		rows [][]Value
	}
	var buckets []*bucket
	if groupIdx < 0 {
		buckets = append(buckets, &bucket{rows: matched})
	} else {
		index := map[Value]*bucket{}
		var order []*bucket
		for _, row := range matched {
			k := row[groupIdx]
			b, ok := index[k]
			if !ok {
				b = &bucket{key: k}
				index[k] = b
				order = append(order, b)
			}
			b.rows = append(b.rows, row)
		}
		buckets = order
		// Deterministic output: sort groups by key, NULL first.
		var sortErr error
		sort.SliceStable(buckets, func(i, j int) bool {
			a, b := buckets[i].key, buckets[j].key
			if a == nil || b == nil {
				return a == nil && b != nil
			}
			cmp, err := compare(a, b)
			if err != nil && sortErr == nil {
				sortErr = err
			}
			return cmp < 0
		})
		if sortErr != nil {
			return nil, sortErr
		}
		if s.Desc {
			for i, j := 0, len(buckets)-1; i < j; i, j = i+1, j-1 {
				buckets[i], buckets[j] = buckets[j], buckets[i]
			}
		}
	}

	names := make([]string, len(s.Items))
	for i, it := range s.Items {
		names[i] = it.Name()
	}
	out := make([][]Value, 0, len(buckets))
	for _, b := range buckets {
		row := make([]Value, len(s.Items))
		for i, it := range s.Items {
			v, err := evalAggregate(t, it, b.key, b.rows)
			if err != nil {
				return nil, err
			}
			row[i] = v
		}
		out = append(out, row)
	}
	if s.Limit >= 0 && len(out) > s.Limit {
		out = out[:s.Limit]
	}
	return &Result{Columns: names, Rows: out}, nil
}

// evalAggregate computes one item over one group.
func evalAggregate(t *table, it SelectItem, key Value, rows [][]Value) (Value, error) {
	if it.Agg == "" {
		return key, nil
	}
	if it.Agg == "count" && it.Column == "" {
		return int64(len(rows)), nil
	}
	idx := t.colIdx[strings.ToLower(it.Column)]
	var values []Value
	for _, row := range rows {
		if row[idx] != nil {
			values = append(values, row[idx])
		}
	}
	switch it.Agg {
	case "count":
		return int64(len(values)), nil
	case "sum", "avg":
		if len(values) == 0 {
			return nil, nil
		}
		sumInt, sumFloat := int64(0), 0.0
		allInt := true
		for _, v := range values {
			switch x := v.(type) {
			case int64:
				sumInt += x
				sumFloat += float64(x)
			case float64:
				allInt = false
				sumFloat += x
			default:
				return nil, fmt.Errorf("sqlstore: %s over non-numeric column %q", strings.ToUpper(it.Agg), it.Column)
			}
		}
		if it.Agg == "avg" {
			return sumFloat / float64(len(values)), nil
		}
		if allInt {
			return sumInt, nil
		}
		return sumFloat, nil
	case "min", "max":
		if len(values) == 0 {
			return nil, nil
		}
		best := values[0]
		for _, v := range values[1:] {
			cmp, err := compare(v, best)
			if err != nil {
				return nil, err
			}
			if (it.Agg == "min" && cmp < 0) || (it.Agg == "max" && cmp > 0) {
				best = v
			}
		}
		return best, nil
	default:
		return nil, fmt.Errorf("sqlstore: unknown aggregate %q", it.Agg)
	}
}
