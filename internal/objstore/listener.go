package objstore

import (
	"fmt"
	"net"
)

// newListener wraps net.Listen with a package-tagged error.
func newListener(addr string) (net.Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("objstore: listen: %w", err)
	}
	return ln, nil
}
