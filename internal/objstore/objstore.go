// Package objstore is the repository's MinIO substitute: an in-memory
// S3-style object store served over HTTP, with a matching client.
//
// The paper's COSGet and COSPut workload functions download from and upload
// to a MinIO cloud object store hosted on a dedicated SBC (Table I). This
// package provides the same bucket/object model — PUT, GET, DELETE, HEAD,
// bucket listing, MD5 ETags — over net/http, so the bulk-transfer workloads
// move real bytes through a real HTTP stack.
package objstore

import (
	"bytes"
	"crypto/md5"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// ObjectInfo describes one stored object.
type ObjectInfo struct {
	Key  string `json:"key"`
	Size int64  `json:"size"`
	ETag string `json:"etag"`
}

// Store is a thread-safe in-memory bucket/object map.
type Store struct {
	mu      sync.RWMutex
	buckets map[string]map[string][]byte
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{buckets: make(map[string]map[string][]byte)}
}

// CreateBucket makes a bucket; creating an existing bucket is a no-op.
func (s *Store) CreateBucket(bucket string) error {
	if bucket == "" {
		return fmt.Errorf("objstore: empty bucket name")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.buckets[bucket]; !ok {
		s.buckets[bucket] = make(map[string][]byte)
	}
	return nil
}

// Put stores an object, creating the bucket on demand, and returns its ETag.
func (s *Store) Put(bucket, key string, data []byte) (string, error) {
	if bucket == "" || key == "" {
		return "", fmt.Errorf("objstore: bucket and key required")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.buckets[bucket]
	if !ok {
		b = make(map[string][]byte)
		s.buckets[bucket] = b
	}
	b[key] = append([]byte(nil), data...)
	return etag(data), nil
}

// Get returns a copy of an object's bytes.
func (s *Store) Get(bucket, key string) ([]byte, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	b, ok := s.buckets[bucket]
	if !ok {
		return nil, false
	}
	data, ok := b[key]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), data...), true
}

// Delete removes an object; reports whether it existed.
func (s *Store) Delete(bucket, key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.buckets[bucket]
	if !ok {
		return false
	}
	if _, ok := b[key]; !ok {
		return false
	}
	delete(b, key)
	return true
}

// List returns the bucket's objects sorted by key; ok=false for a missing
// bucket.
func (s *Store) List(bucket string) ([]ObjectInfo, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	b, ok := s.buckets[bucket]
	if !ok {
		return nil, false
	}
	out := make([]ObjectInfo, 0, len(b))
	for k, v := range b {
		out = append(out, ObjectInfo{Key: k, Size: int64(len(v)), ETag: etag(v)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out, true
}

// Buckets returns the sorted bucket names.
func (s *Store) Buckets() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.buckets))
	for b := range s.buckets {
		out = append(out, b)
	}
	sort.Strings(out)
	return out
}

func etag(data []byte) string {
	sum := md5.Sum(data)
	return hex.EncodeToString(sum[:])
}

// Server serves a Store over HTTP. Routes:
//
//	PUT    /b/{bucket}            create bucket
//	GET    /b/{bucket}            list objects (JSON)
//	PUT    /b/{bucket}/{key...}   store object (body = bytes)
//	GET    /b/{bucket}/{key...}   fetch object
//	HEAD   /b/{bucket}/{key...}   stat object
//	DELETE /b/{bucket}/{key...}   delete object
type Server struct {
	store *Store
	http  *http.Server

	mu   sync.Mutex
	addr string
}

// NewServer returns a server backed by store (a fresh store if nil).
func NewServer(store *Store) *Server {
	if store == nil {
		store = NewStore()
	}
	return &Server{store: store}
}

// Store returns the underlying store.
func (s *Server) Store() *Store { return s.store }

// Handler returns the HTTP handler (exposed for httptest-style embedding).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/b/", s.handle)
	return mux
}

// Listen binds to addr and serves in the background, returning the bound
// address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := newListener(addr)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	s.addr = ln.Addr().String()
	s.http = &http.Server{Handler: s.Handler()}
	srv := s.http
	s.mu.Unlock()
	go srv.Serve(ln) //nolint:errcheck // Serve returns ErrServerClosed on Close
	return ln.Addr().String(), nil
}

// Close shuts the HTTP server down immediately.
func (s *Server) Close() error {
	s.mu.Lock()
	srv := s.http
	s.mu.Unlock()
	if srv == nil {
		return nil
	}
	return srv.Close()
}

func (s *Server) handle(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/b/")
	bucket, key, hasKey := strings.Cut(rest, "/")
	if bucket == "" {
		http.Error(w, "bucket required", http.StatusBadRequest)
		return
	}
	if !hasKey || key == "" {
		s.handleBucket(w, r, bucket)
		return
	}
	s.handleObject(w, r, bucket, key)
}

func (s *Server) handleBucket(w http.ResponseWriter, r *http.Request, bucket string) {
	switch r.Method {
	case http.MethodPut:
		if err := s.store.CreateBucket(bucket); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.WriteHeader(http.StatusCreated)
	case http.MethodGet:
		objs, ok := s.store.List(bucket)
		if !ok {
			http.Error(w, "no such bucket", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(objs) //nolint:errcheck
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

func (s *Server) handleObject(w http.ResponseWriter, r *http.Request, bucket, key string) {
	switch r.Method {
	case http.MethodPut:
		data, err := io.ReadAll(io.LimitReader(r.Body, 256<<20))
		if err != nil {
			http.Error(w, "read body: "+err.Error(), http.StatusBadRequest)
			return
		}
		tag, err := s.store.Put(bucket, key, data)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.Header().Set("ETag", tag)
		w.WriteHeader(http.StatusCreated)
	case http.MethodGet, http.MethodHead:
		data, ok := s.store.Get(bucket, key)
		if !ok {
			http.Error(w, "no such object", http.StatusNotFound)
			return
		}
		w.Header().Set("ETag", etag(data))
		w.Header().Set("Accept-Ranges", "bytes")
		w.Header().Set("Content-Type", "application/octet-stream")
		status := http.StatusOK
		if rangeHdr := r.Header.Get("Range"); rangeHdr != "" && r.Method == http.MethodGet {
			start, end, err := parseRange(rangeHdr, len(data))
			if err != nil {
				w.Header().Set("Content-Range", fmt.Sprintf("bytes */%d", len(data)))
				http.Error(w, err.Error(), http.StatusRequestedRangeNotSatisfiable)
				return
			}
			w.Header().Set("Content-Range", fmt.Sprintf("bytes %d-%d/%d", start, end, len(data)))
			data = data[start : end+1]
			status = http.StatusPartialContent
		}
		w.Header().Set("Content-Length", fmt.Sprint(len(data)))
		w.WriteHeader(status)
		if r.Method == http.MethodGet {
			w.Write(data) //nolint:errcheck
		}
	case http.MethodDelete:
		if !s.store.Delete(bucket, key) {
			http.Error(w, "no such object", http.StatusNotFound)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

// Client accesses an objstore server over HTTP.
type Client struct {
	base string
	http *http.Client
}

// NewClient returns a client for the server at addr ("host:port").
func NewClient(addr string) *Client {
	return &Client{
		base: "http://" + addr,
		http: &http.Client{Timeout: 2 * time.Minute},
	}
}

func (c *Client) url(parts ...string) string {
	return c.base + "/b/" + strings.Join(parts, "/")
}

// CreateBucket makes a bucket.
func (c *Client) CreateBucket(bucket string) error {
	req, err := http.NewRequest(http.MethodPut, c.url(bucket), nil)
	if err != nil {
		return err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return fmt.Errorf("objstore: create bucket: %w", err)
	}
	defer drain(resp)
	if resp.StatusCode != http.StatusCreated {
		return statusErr("create bucket", resp)
	}
	return nil
}

// Put uploads an object and returns the server's ETag.
func (c *Client) Put(bucket, key string, data []byte) (string, error) {
	req, err := http.NewRequest(http.MethodPut, c.url(bucket, key), bytes.NewReader(data))
	if err != nil {
		return "", err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return "", fmt.Errorf("objstore: put: %w", err)
	}
	defer drain(resp)
	if resp.StatusCode != http.StatusCreated {
		return "", statusErr("put", resp)
	}
	return resp.Header.Get("ETag"), nil
}

// Get downloads an object; ok=false means it does not exist.
func (c *Client) Get(bucket, key string) (data []byte, ok bool, err error) {
	resp, err := c.http.Get(c.url(bucket, key))
	if err != nil {
		return nil, false, fmt.Errorf("objstore: get: %w", err)
	}
	defer drain(resp)
	if resp.StatusCode == http.StatusNotFound {
		return nil, false, nil
	}
	if resp.StatusCode != http.StatusOK {
		return nil, false, statusErr("get", resp)
	}
	data, err = io.ReadAll(resp.Body)
	if err != nil {
		return nil, false, err
	}
	return data, true, nil
}

// Stat returns an object's size and ETag without fetching its bytes.
func (c *Client) Stat(bucket, key string) (info ObjectInfo, ok bool, err error) {
	resp, err := c.http.Head(c.url(bucket, key))
	if err != nil {
		return ObjectInfo{}, false, fmt.Errorf("objstore: stat: %w", err)
	}
	defer drain(resp)
	if resp.StatusCode == http.StatusNotFound {
		return ObjectInfo{}, false, nil
	}
	if resp.StatusCode != http.StatusOK {
		return ObjectInfo{}, false, statusErr("stat", resp)
	}
	return ObjectInfo{Key: key, Size: resp.ContentLength, ETag: resp.Header.Get("ETag")}, true, nil
}

// Delete removes an object; ok=false means it did not exist.
func (c *Client) Delete(bucket, key string) (bool, error) {
	req, err := http.NewRequest(http.MethodDelete, c.url(bucket, key), nil)
	if err != nil {
		return false, err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return false, fmt.Errorf("objstore: delete: %w", err)
	}
	defer drain(resp)
	switch resp.StatusCode {
	case http.StatusNoContent:
		return true, nil
	case http.StatusNotFound:
		return false, nil
	default:
		return false, statusErr("delete", resp)
	}
}

// List returns the objects in a bucket.
func (c *Client) List(bucket string) ([]ObjectInfo, error) {
	resp, err := c.http.Get(c.url(bucket))
	if err != nil {
		return nil, fmt.Errorf("objstore: list: %w", err)
	}
	defer drain(resp)
	if resp.StatusCode != http.StatusOK {
		return nil, statusErr("list", resp)
	}
	var out []ObjectInfo
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("objstore: decode list: %w", err)
	}
	return out, nil
}

// parseRange interprets a single "bytes=a-b" range (the S3-style subset:
// one range, absolute offsets or a suffix length) against an object of
// size n, returning inclusive byte positions.
func parseRange(hdr string, n int) (start, end int, err error) {
	spec, ok := strings.CutPrefix(hdr, "bytes=")
	if !ok || strings.Contains(spec, ",") {
		return 0, 0, fmt.Errorf("objstore: unsupported range %q", hdr)
	}
	lo, hi, ok := strings.Cut(spec, "-")
	if !ok {
		return 0, 0, fmt.Errorf("objstore: malformed range %q", hdr)
	}
	if lo == "" {
		// Suffix form: last N bytes.
		suffix, err := strconv.Atoi(hi)
		if err != nil || suffix <= 0 {
			return 0, 0, fmt.Errorf("objstore: malformed range %q", hdr)
		}
		if suffix > n {
			suffix = n
		}
		if n == 0 {
			return 0, 0, fmt.Errorf("objstore: empty object has no bytes")
		}
		return n - suffix, n - 1, nil
	}
	start, err = strconv.Atoi(lo)
	if err != nil || start < 0 {
		return 0, 0, fmt.Errorf("objstore: malformed range %q", hdr)
	}
	if hi == "" {
		end = n - 1
	} else {
		end, err = strconv.Atoi(hi)
		if err != nil || end < start {
			return 0, 0, fmt.Errorf("objstore: malformed range %q", hdr)
		}
		if end > n-1 {
			end = n - 1
		}
	}
	if start > n-1 {
		return 0, 0, fmt.Errorf("objstore: range %q starts past object end", hdr)
	}
	return start, end, nil
}

// GetRange downloads a byte range [offset, offset+length) of an object;
// ok=false means the object does not exist.
func (c *Client) GetRange(bucket, key string, offset, length int) (data []byte, ok bool, err error) {
	if offset < 0 || length <= 0 {
		return nil, false, fmt.Errorf("objstore: bad range offset=%d length=%d", offset, length)
	}
	req, err := http.NewRequest(http.MethodGet, c.url(bucket, key), nil)
	if err != nil {
		return nil, false, err
	}
	req.Header.Set("Range", fmt.Sprintf("bytes=%d-%d", offset, offset+length-1))
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, false, fmt.Errorf("objstore: get range: %w", err)
	}
	defer drain(resp)
	switch resp.StatusCode {
	case http.StatusNotFound:
		return nil, false, nil
	case http.StatusPartialContent, http.StatusOK:
		data, err = io.ReadAll(resp.Body)
		if err != nil {
			return nil, false, err
		}
		return data, true, nil
	default:
		return nil, false, statusErr("get range", resp)
	}
}

func drain(resp *http.Response) {
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
}

func statusErr(op string, resp *http.Response) error {
	return fmt.Errorf("objstore: %s: unexpected status %s", op, resp.Status)
}
