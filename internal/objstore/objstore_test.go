package objstore

import (
	"bytes"
	"crypto/rand"
	"testing"
	"testing/quick"
)

// --- Store unit tests ---

func TestStorePutGet(t *testing.T) {
	s := NewStore()
	tag, err := s.Put("bkt", "k", []byte("hello"))
	if err != nil || tag == "" {
		t.Fatalf("Put: %q, %v", tag, err)
	}
	data, ok := s.Get("bkt", "k")
	if !ok || string(data) != "hello" {
		t.Fatalf("Get = %q/%v", data, ok)
	}
}

func TestStorePutAutoCreatesBucket(t *testing.T) {
	s := NewStore()
	s.Put("auto", "k", nil) //nolint:errcheck
	if got := s.Buckets(); len(got) != 1 || got[0] != "auto" {
		t.Fatalf("Buckets = %v", got)
	}
}

func TestStoreIsolation(t *testing.T) {
	s := NewStore()
	buf := []byte("abc")
	s.Put("b", "k", buf) //nolint:errcheck
	buf[0] = 'X'
	got, _ := s.Get("b", "k")
	if string(got) != "abc" {
		t.Fatal("Put aliased caller's buffer")
	}
	got[0] = 'Y'
	again, _ := s.Get("b", "k")
	if string(again) != "abc" {
		t.Fatal("Get leaked internal storage")
	}
}

func TestStoreDelete(t *testing.T) {
	s := NewStore()
	s.Put("b", "k", nil) //nolint:errcheck
	if !s.Delete("b", "k") {
		t.Fatal("Delete existing = false")
	}
	if s.Delete("b", "k") {
		t.Fatal("Delete missing = true")
	}
	if s.Delete("nope", "k") {
		t.Fatal("Delete in missing bucket = true")
	}
}

func TestStoreList(t *testing.T) {
	s := NewStore()
	s.CreateBucket("b")                 //nolint:errcheck
	s.Put("b", "zeta", []byte("12345")) //nolint:errcheck
	s.Put("b", "alpha", []byte("1"))    //nolint:errcheck
	objs, ok := s.List("b")
	if !ok || len(objs) != 2 {
		t.Fatalf("List = %v/%v", objs, ok)
	}
	if objs[0].Key != "alpha" || objs[1].Key != "zeta" || objs[1].Size != 5 {
		t.Fatalf("List = %+v", objs)
	}
	if _, ok := s.List("missing"); ok {
		t.Fatal("List on missing bucket = ok")
	}
}

func TestStoreValidation(t *testing.T) {
	s := NewStore()
	if err := s.CreateBucket(""); err == nil {
		t.Fatal("empty bucket accepted")
	}
	if _, err := s.Put("", "k", nil); err == nil {
		t.Fatal("empty bucket accepted in Put")
	}
	if _, err := s.Put("b", "", nil); err == nil {
		t.Fatal("empty key accepted in Put")
	}
}

func TestETagIsContentHash(t *testing.T) {
	s := NewStore()
	t1, _ := s.Put("b", "a", []byte("same"))
	t2, _ := s.Put("b", "b", []byte("same"))
	t3, _ := s.Put("b", "c", []byte("different"))
	if t1 != t2 {
		t.Fatal("identical content must share an ETag")
	}
	if t1 == t3 {
		t.Fatal("different content must not share an ETag")
	}
}

// Property: put-then-get round-trips arbitrary binary payloads.
func TestStoreRoundTripProperty(t *testing.T) {
	s := NewStore()
	prop := func(key string, data []byte) bool {
		if key == "" {
			return true
		}
		if _, err := s.Put("p", key, data); err != nil {
			return false
		}
		got, ok := s.Get("p", key)
		return ok && bytes.Equal(got, data)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// --- End-to-end over HTTP ---

func startObjServer(t *testing.T) *Client {
	t.Helper()
	srv := NewServer(nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return NewClient(addr)
}

func TestEndToEndObjectLifecycle(t *testing.T) {
	c := startObjServer(t)
	if err := c.CreateBucket("photos"); err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 1<<20)
	if _, err := rand.Read(payload); err != nil {
		t.Fatal(err)
	}
	tag, err := c.Put("photos", "cat.jpg", payload)
	if err != nil || tag == "" {
		t.Fatalf("Put: %q, %v", tag, err)
	}
	info, ok, err := c.Stat("photos", "cat.jpg")
	if err != nil || !ok || info.Size != int64(len(payload)) || info.ETag != tag {
		t.Fatalf("Stat = %+v/%v/%v", info, ok, err)
	}
	data, ok, err := c.Get("photos", "cat.jpg")
	if err != nil || !ok || !bytes.Equal(data, payload) {
		t.Fatalf("Get mismatch: ok=%v err=%v len=%d", ok, err, len(data))
	}
	objs, err := c.List("photos")
	if err != nil || len(objs) != 1 || objs[0].Key != "cat.jpg" {
		t.Fatalf("List = %v, %v", objs, err)
	}
	existed, err := c.Delete("photos", "cat.jpg")
	if err != nil || !existed {
		t.Fatalf("Delete = %v, %v", existed, err)
	}
	if _, ok, _ := c.Get("photos", "cat.jpg"); ok {
		t.Fatal("object survived delete")
	}
}

func TestEndToEndMissing(t *testing.T) {
	c := startObjServer(t)
	if _, ok, err := c.Get("nope", "k"); ok || err != nil {
		t.Fatalf("Get missing = %v/%v", ok, err)
	}
	if _, ok, err := c.Stat("nope", "k"); ok || err != nil {
		t.Fatalf("Stat missing = %v/%v", ok, err)
	}
	if existed, err := c.Delete("nope", "k"); existed || err != nil {
		t.Fatalf("Delete missing = %v/%v", existed, err)
	}
	if _, err := c.List("nope"); err == nil {
		t.Fatal("List on missing bucket must error")
	}
}

func TestEndToEndNestedKeys(t *testing.T) {
	c := startObjServer(t)
	if _, err := c.Put("b", "dir/sub/file.txt", []byte("x")); err != nil {
		t.Fatal(err)
	}
	data, ok, err := c.Get("b", "dir/sub/file.txt")
	if err != nil || !ok || string(data) != "x" {
		t.Fatalf("nested key: %q/%v/%v", data, ok, err)
	}
}

func TestEndToEndCreateBucketIdempotent(t *testing.T) {
	c := startObjServer(t)
	if err := c.CreateBucket("b"); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateBucket("b"); err != nil {
		t.Fatal("re-creating bucket should succeed")
	}
}

func TestParseRange(t *testing.T) {
	cases := []struct {
		hdr        string
		n          int
		start, end int
		wantErr    bool
	}{
		{"bytes=0-9", 100, 0, 9, false},
		{"bytes=90-", 100, 90, 99, false},
		{"bytes=-10", 100, 90, 99, false},
		{"bytes=0-1000", 100, 0, 99, false}, // end clamped
		{"bytes=-1000", 100, 0, 99, false},  // suffix clamped
		{"bytes=100-", 100, 0, 0, true},     // starts past end
		{"bytes=5-2", 100, 0, 0, true},
		{"bytes=0-9,20-29", 100, 0, 0, true}, // multi-range unsupported
		{"bits=0-9", 100, 0, 0, true},
		{"bytes=x-y", 100, 0, 0, true},
		{"bytes=-0", 100, 0, 0, true},
	}
	for _, c := range cases {
		start, end, err := parseRange(c.hdr, c.n)
		if c.wantErr {
			if err == nil {
				t.Errorf("parseRange(%q,%d) accepted", c.hdr, c.n)
			}
			continue
		}
		if err != nil || start != c.start || end != c.end {
			t.Errorf("parseRange(%q,%d) = %d,%d,%v want %d,%d", c.hdr, c.n, start, end, err, c.start, c.end)
		}
	}
}

func TestEndToEndRangeGet(t *testing.T) {
	c := startObjServer(t)
	payload := []byte("0123456789abcdefghij")
	if _, err := c.Put("b", "blob", payload); err != nil {
		t.Fatal(err)
	}
	data, ok, err := c.GetRange("b", "blob", 5, 5)
	if err != nil || !ok || string(data) != "56789" {
		t.Fatalf("GetRange = %q/%v/%v", data, ok, err)
	}
	// Range past the end clamps.
	data, ok, err = c.GetRange("b", "blob", 15, 100)
	if err != nil || !ok || string(data) != "fghij" {
		t.Fatalf("clamped GetRange = %q/%v/%v", data, ok, err)
	}
	// Missing object.
	if _, ok, err := c.GetRange("b", "missing", 0, 1); ok || err != nil {
		t.Fatalf("missing GetRange = %v/%v", ok, err)
	}
	// Bad client-side arguments.
	if _, _, err := c.GetRange("b", "blob", -1, 5); err == nil {
		t.Fatal("negative offset accepted")
	}
	if _, _, err := c.GetRange("b", "blob", 0, 0); err == nil {
		t.Fatal("zero length accepted")
	}
	// Server-side unsatisfiable range (start past end) is an error.
	if _, _, err := c.GetRange("b", "blob", 1000, 5); err == nil {
		t.Fatal("unsatisfiable range accepted")
	}
	// Full GET still works and returns everything.
	full, ok, err := c.Get("b", "blob")
	if err != nil || !ok || len(full) != len(payload) {
		t.Fatalf("full Get after range = %d bytes/%v/%v", len(full), ok, err)
	}
}
