// Package chunklog provides an append-only log that stores its entries in
// fixed-size chunks instead of one flat slice.
//
// The flat-slice alternative (`s = append(s, v)`) regrows geometrically:
// every doubling allocates a fresh array of the full length and zeroes it
// before copying, so a million-entry log pays for zeroing and copying
// megabytes many times over. On the single-board computers this project
// targets (and the modest VMs it is developed on) that memory traffic is
// the dominant cost of the simulator's audit logs — the GPIO transition
// log and the trace collector both append once per event on the hot path.
// Chunking makes every append touch at most one small, freshly allocated
// chunk: no entry is ever copied or re-zeroed after it is written.
package chunklog

// chunkSize is the number of entries per chunk. 1024 keeps chunks of
// typical record types (≈100 bytes) around 100 KiB — big enough to
// amortize allocation, small enough that allocating one never stalls on
// zeroing megabytes.
const chunkSize = 1024

// Log is an append-only chunked log. The zero value is an empty log ready
// for use. Log is not safe for concurrent use; callers hold their own
// locks (the audit-log owners already serialize on a mutex).
type Log[T any] struct {
	chunks [][]T
	n      int
}

// Len returns the number of entries appended.
func (l *Log[T]) Len() int { return l.n }

// Append adds v to the end of the log.
func (l *Log[T]) Append(v T) {
	if k := len(l.chunks); k == 0 || len(l.chunks[k-1]) == chunkSize {
		l.chunks = append(l.chunks, make([]T, 0, chunkSize))
	}
	k := len(l.chunks) - 1
	l.chunks[k] = append(l.chunks[k], v)
	l.n++
}

// Last returns the most recent entry and whether the log is non-empty.
func (l *Log[T]) Last() (T, bool) {
	if l.n == 0 {
		var zero T
		return zero, false
	}
	last := l.chunks[len(l.chunks)-1]
	return last[len(last)-1], true
}

// Flatten returns a fresh flat copy of all entries in append order.
func (l *Log[T]) Flatten() []T {
	out := make([]T, 0, l.n)
	for _, c := range l.chunks {
		out = append(out, c...)
	}
	return out
}

// Each calls fn for every entry in append order. It exists so read paths
// that only need to scan (counters, CSV writers) can skip Flatten's copy.
func (l *Log[T]) Each(fn func(T)) {
	for _, c := range l.chunks {
		for i := range c {
			fn(c[i])
		}
	}
}
