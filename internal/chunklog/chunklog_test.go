package chunklog

import "testing"

func TestAppendFlattenOrder(t *testing.T) {
	var l Log[int]
	const n = chunkSize*3 + 17 // cross several chunk boundaries
	for i := 0; i < n; i++ {
		l.Append(i)
	}
	if l.Len() != n {
		t.Fatalf("Len = %d, want %d", l.Len(), n)
	}
	flat := l.Flatten()
	if len(flat) != n {
		t.Fatalf("Flatten len = %d, want %d", len(flat), n)
	}
	for i, v := range flat {
		if v != i {
			t.Fatalf("Flatten[%d] = %d, want %d", i, v, i)
		}
	}
}

func TestLast(t *testing.T) {
	var l Log[string]
	if _, ok := l.Last(); ok {
		t.Fatal("Last on empty log reported an entry")
	}
	l.Append("a")
	l.Append("b")
	if v, ok := l.Last(); !ok || v != "b" {
		t.Fatalf("Last = %q, %v; want \"b\", true", v, ok)
	}
	// Cross a chunk boundary and check Last tracks the newest chunk.
	for i := 0; i < chunkSize; i++ {
		l.Append("x")
	}
	l.Append("tail")
	if v, _ := l.Last(); v != "tail" {
		t.Fatalf("Last after boundary = %q, want \"tail\"", v)
	}
}

func TestEachVisitsAllInOrder(t *testing.T) {
	var l Log[int]
	const n = chunkSize + 5
	for i := 0; i < n; i++ {
		l.Append(i)
	}
	next := 0
	l.Each(func(v int) {
		if v != next {
			t.Fatalf("Each visited %d, want %d", v, next)
		}
		next++
	})
	if next != n {
		t.Fatalf("Each visited %d entries, want %d", next, n)
	}
}

func TestZeroValueUsable(t *testing.T) {
	var l Log[byte]
	if l.Len() != 0 {
		t.Fatalf("zero log Len = %d", l.Len())
	}
	if got := l.Flatten(); len(got) != 0 {
		t.Fatalf("zero log Flatten = %v", got)
	}
	l.Each(func(byte) { t.Fatal("zero log Each visited an entry") })
}
