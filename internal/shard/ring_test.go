package shard

import (
	"fmt"
	"math"
	"testing"
)

func TestNewRingValidates(t *testing.T) {
	if _, err := NewRing(0, 8); err == nil {
		t.Fatal("NewRing(0) succeeded")
	}
	if _, err := NewRing(-1, 8); err == nil {
		t.Fatal("NewRing(-1) succeeded")
	}
	if r, err := NewRing(4, 0); err != nil || len(r.points) != 4*DefaultVNodes {
		t.Fatalf("NewRing with zero vnodes should select the default budget: %v, %d points", err, len(r.points))
	}
	r, err := NewRing(4, 16)
	if err != nil {
		t.Fatal(err)
	}
	if r.Shards() != 4 {
		t.Fatalf("Shards() = %d", r.Shards())
	}
}

func TestRingLookupDeterministic(t *testing.T) {
	a, _ := NewRing(8, DefaultVNodes)
	b, _ := NewRing(8, DefaultVNodes)
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("key-%d", i)
		if a.Lookup(key) != b.Lookup(key) {
			t.Fatalf("two identical rings disagree on %q", key)
		}
	}
}

func TestRingSpreadsKeys(t *testing.T) {
	const n, keys = 8, 8000
	r, _ := NewRing(n, DefaultVNodes)
	counts := make([]int, n)
	for i := 0; i < keys; i++ {
		counts[r.Lookup(fmt.Sprintf("key-%d", i))]++
	}
	for s, c := range counts {
		// Expect keys/n ± a generous consistent-hashing spread.
		if c < keys/n/3 || c > keys/n*3 {
			t.Fatalf("shard %d got %d of %d keys (counts %v)", s, c, keys, counts)
		}
	}
}

// TestRingStabilityUnderGrowth is the consistent-hashing property test:
// growing n shards to n+1 must relocate roughly 1/(n+1) of the keys —
// and never more than ~2.5× that — while every unmoved key keeps its
// shard (indices below n are unchanged by construction).
func TestRingStabilityUnderGrowth(t *testing.T) {
	const keys = 20000
	for _, n := range []int{2, 4, 8, 16, 32} {
		before, _ := NewRing(n, DefaultVNodes)
		after, _ := NewRing(n+1, DefaultVNodes)
		moved := 0
		for i := 0; i < keys; i++ {
			key := fmt.Sprintf("key-%d", i)
			was, is := before.Lookup(key), after.Lookup(key)
			if was != is {
				if is != n {
					t.Fatalf("n=%d: key %q moved %d→%d, not to the new shard", n, key, was, is)
				}
				moved++
			}
		}
		ideal := float64(keys) / float64(n+1)
		if f := float64(moved); f > 2.5*ideal || f < ideal/2.5 {
			t.Fatalf("n=%d→%d moved %d keys, ideal %.0f", n, n+1, moved, ideal)
		}
	}
}

// TestRingReweightMovesFewKeys checks that point placement is
// weight-independent: halving one shard's weight relocates only keys
// that shard owned, and restoring the weight restores every key.
func TestRingReweightMovesFewKeys(t *testing.T) {
	const n, keys = 8, 20000
	r, _ := NewRing(n, DefaultVNodes)
	before := make([]int, keys)
	for i := range before {
		before[i] = r.Lookup(fmt.Sprintf("key-%d", i))
	}
	w := make([]float64, n)
	for i := range w {
		w[i] = 1
	}
	w[3] = 0.5
	if err := r.SetWeights(w); err != nil {
		t.Fatal(err)
	}
	movedFromOthers := 0
	for i := range before {
		now := r.Lookup(fmt.Sprintf("key-%d", i))
		if now != before[i] && before[i] != 3 {
			movedFromOthers++
		}
	}
	if movedFromOthers != 0 {
		t.Fatalf("shrinking shard 3 moved %d keys owned by other shards", movedFromOthers)
	}
	w[3] = 1
	if err := r.SetWeights(w); err != nil {
		t.Fatal(err)
	}
	for i := range before {
		if now := r.Lookup(fmt.Sprintf("key-%d", i)); now != before[i] {
			t.Fatalf("key %d did not return home after weight restore: %d→%d", i, before[i], now)
		}
	}
}

// TestRingStabilityUnderRemoval is the Remove-side ~1/N property test:
// removing one of n shards must move exactly the keys that shard owned
// (roughly 1/n of the key space, never more than ~2.5×) and not one key
// owned by anyone else; re-adding the shard restores every key, since a
// rejoining shard comes back at weight 1 and point placement is
// membership-independent.
func TestRingStabilityUnderRemoval(t *testing.T) {
	const keys = 20000
	for _, n := range []int{2, 4, 8, 16, 32} {
		r, _ := NewRing(n, DefaultVNodes)
		victim := n / 2
		before := make([]int, keys)
		for i := range before {
			before[i] = r.Lookup(fmt.Sprintf("key-%d", i))
		}
		if err := r.Remove(victim); err != nil {
			t.Fatal(err)
		}
		if r.Members() != n-1 || r.Present(victim) {
			t.Fatalf("n=%d: Members()=%d Present(%d)=%v after Remove", n, r.Members(), victim, r.Present(victim))
		}
		moved := 0
		for i := range before {
			now := r.Lookup(fmt.Sprintf("key-%d", i))
			if now == victim {
				t.Fatalf("n=%d: key %d still routes to removed shard %d", n, i, victim)
			}
			if now != before[i] {
				if before[i] != victim {
					t.Fatalf("n=%d: key %d moved %d→%d but shard %d was not removed", n, i, before[i], now, victim)
				}
				moved++
			}
		}
		ideal := float64(keys) / float64(n)
		if f := float64(moved); f > 2.5*ideal || f < ideal/2.5 {
			t.Fatalf("n=%d: removal moved %d keys, ideal %.0f", n, moved, ideal)
		}
		if err := r.Add(victim); err != nil {
			t.Fatal(err)
		}
		for i := range before {
			if now := r.Lookup(fmt.Sprintf("key-%d", i)); now != before[i] {
				t.Fatalf("n=%d: key %d did not return home after re-add: %d→%d", n, i, before[i], now)
			}
		}
	}
}

// TestRingAddRemoveValidates covers the membership error paths: out-of-
// range ids, double add/remove, and the empty-ring guard.
func TestRingAddRemoveValidates(t *testing.T) {
	r, _ := NewRing(3, 32)
	if err := r.Add(0); err == nil {
		t.Fatal("Add of a present shard succeeded")
	}
	if err := r.Add(3); err == nil {
		t.Fatal("Add outside the slot range succeeded")
	}
	if err := r.Remove(-1); err == nil {
		t.Fatal("Remove(-1) succeeded")
	}
	if err := r.Remove(0); err != nil {
		t.Fatal(err)
	}
	if err := r.Remove(0); err == nil {
		t.Fatal("double Remove succeeded")
	}
	if err := r.SetWeights([]float64{1, 2, 1}); err != nil {
		t.Fatal(err)
	}
	if err := r.Remove(1); err != nil {
		t.Fatal(err)
	}
	if err := r.Remove(2); err == nil {
		t.Fatal("removing the last member succeeded")
	}
	// A removed shard re-added after a reweight comes back at weight 1.
	if err := r.Add(1); err != nil {
		t.Fatal(err)
	}
	if w := r.Weight(1); w != 1 {
		t.Fatalf("re-added shard weight %v, want 1", w)
	}
}

func TestRingSetWeightsValidates(t *testing.T) {
	r, _ := NewRing(4, 32)
	if err := r.SetWeights([]float64{1, 1}); err == nil {
		t.Fatal("wrong-length weights accepted")
	}
	if err := r.SetWeights([]float64{1, 1, math.NaN(), 1}); err == nil {
		t.Fatal("NaN weight accepted")
	}
	// Clamping: extreme weights survive as the clamp bounds.
	if err := r.SetWeights([]float64{100, 0.001, 1, 1}); err != nil {
		t.Fatal(err)
	}
	if w := r.Weight(0); w > 4+1e-9 {
		t.Fatalf("weight 0 not clamped: %v", w)
	}
	if w := r.Weight(1); w < 0.25-1e-9 {
		t.Fatalf("weight 1 not clamped: %v", w)
	}
}

// TestRingBoundedLoadDiverts checks that LookupBounded walks past a
// shard already at its bound and falls back to the home shard when
// everyone is full.
func TestRingBoundedLoadDiverts(t *testing.T) {
	r, _ := NewRing(4, DefaultVNodes)
	home := r.Lookup("hot")
	loads := make([]int, 4)
	// Everyone idle: the bounded lookup routes home.
	if got := r.LookupBounded("hot", 1.25, 0, func(s int) int { return loads[s] }); got != home {
		t.Fatalf("idle bounded lookup %d != home %d", got, home)
	}
	// Saturate home: the key must divert to some other shard.
	loads[home] = 100
	got := r.LookupBounded("hot", 1.25, 100, func(s int) int { return loads[s] })
	if got == home {
		t.Fatal("bounded lookup kept a saturated home shard")
	}
	// Saturate everyone equally: fall back home rather than loop.
	for i := range loads {
		loads[i] = 100
	}
	if got := r.LookupBounded("hot", 1.25, 400, func(s int) int { return loads[s] }); got != home {
		t.Fatalf("all-full bounded lookup %d != home %d", got, home)
	}
	// Factor <= 1 is plain consistent hashing regardless of load.
	if got := r.LookupBounded("hot", -1, 400, func(s int) int { return loads[s] }); got != home {
		t.Fatalf("unbounded lookup %d != home %d", got, home)
	}
}

func BenchmarkRingLookup(b *testing.B) {
	r, _ := NewRing(64, DefaultVNodes)
	keys := make([]string, 1024)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%d", i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Lookup(keys[i%len(keys)])
	}
}
