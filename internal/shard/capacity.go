package shard

import "microfaas/internal/core"

// The capacity aggregator: a periodic tick that snapshots every shard's
// queue depth and (a) steals queued work off backlogged shards onto the
// least-loaded ones, (b) shifts ring weight away from shards whose
// queues run deeper than the cluster mean. The tick self-schedules only
// while work is in flight — an idle cluster runs no events, so a
// discrete-event simulation over a Plane still terminates.
//
// Determinism: the tick fires at clock-scheduled instants, visits
// shards in index order, and every decision (victim choice, steal
// count, destination choice, weight delta) is computed from snapshot
// integers — no randomness, no map iteration — so seeded sims replay
// byte-identically.

// armTick schedules the next aggregator tick unless one is pending, the
// aggregator is disabled (no steal, no rebalance, no membership, and no
// tick hook), or the plane is closed.
func (p *Plane) armTick() {
	if !p.cfg.Steal.Enabled && !p.cfg.Rebalance.Enabled && !p.cfg.Membership.Enabled && !p.hookSet.Load() {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed || p.tickArmed {
		return
	}
	p.tickArmed = true
	p.cancelTick = p.runtime.After(p.cfg.Steal.Interval, p.tick)
}

// tick runs one aggregator pass: heartbeat/membership first (so a shard
// declared dead this pass is off the ring before the steal half reads
// queue depths), then snapshot, steal, rebalance, re-arm.
func (p *Plane) tick() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.tickArmed = false
	p.cancelTick = nil
	p.ticks++
	hook := p.tickHook
	p.mu.Unlock()

	if p.cfg.Membership.Enabled {
		p.healthTick()
	}

	n := len(p.shards)
	queued := make([]int, n)
	pending := make([]int, n)
	totalQ, totalP := 0, 0
	for i, o := range p.shards {
		queued[i] = o.Queued()
		pending[i] = o.Pending()
		totalQ += queued[i]
		totalP += pending[i]
		p.queueDepth[i].Set(float64(queued[i]))
	}
	if p.cfg.Steal.Enabled {
		p.stealTick(queued, pending, totalQ)
	}
	if p.cfg.Rebalance.Enabled {
		p.rebalanceTick(queued, totalQ)
	}
	// Scrape hook last, so the queue-depth gauges and steal counters this
	// tick just updated are sampled fresh.
	if hook != nil {
		hook(p.runtime.Now())
	}
	// Re-arm only while jobs are in flight (the next Submit re-arms an
	// idle plane — without this guard RunAll on a sim engine would never
	// run out of events) or while the membership machine is mid-
	// transition, which resolves in a bounded number of ticks.
	rearm := totalP > 0
	if !rearm && p.cfg.Membership.Enabled {
		p.mu.Lock()
		rearm = p.membershipTransitionalLocked()
		p.mu.Unlock()
	}
	if rearm {
		p.armTick()
	}
}

// stealTick raids every shard whose queue exceeds Threshold × the mean
// depth, moving the newest half of its excess onto the least-loaded
// shards. Queue heads are never stolen (core.TakeQueued keeps them), so
// relief never delays work that was about to dispatch locally.
func (p *Plane) stealTick(queued, pending []int, totalQ int) {
	n := len(p.shards)
	if n < 2 || totalQ == 0 {
		return
	}
	mean := float64(totalQ) / float64(n)
	trigger := p.cfg.Steal.Threshold * mean
	if trigger < 2 {
		// Below two queued jobs there is nothing stealable anyway (heads
		// stay local); don't thrash on near-empty clusters.
		trigger = 2
	}
	budget := p.cfg.Steal.MaxPerTick
	moved := 0
	for v := 0; v < n && budget > 0; v++ {
		if float64(queued[v]) <= trigger || p.shards[v].Draining() {
			continue
		}
		take := (queued[v] - int(mean)) / 2
		if take > budget {
			take = budget
		}
		if take <= 0 {
			continue
		}
		stolen := p.shards[v].TakeQueued(take)
		if len(stolen) == 0 {
			continue
		}
		budget -= len(stolen)
		p.stolenOut[v].Add(float64(len(stolen)))
		queued[v] -= len(stolen)
		pending[v] -= len(stolen)
		for _, st := range stolen {
			d := p.leastLoaded(pending, v)
			if d < 0 {
				d = v // nowhere better; send it home
			}
			d = p.place(st, d, v)
			pending[d]++
			queued[d]++
			if d != v {
				p.stolenIn[d].Add(1)
				moved++
			}
		}
	}
	if moved > 0 {
		p.mu.Lock()
		p.stolenTotal += int64(moved)
		p.mu.Unlock()
	}
}

// place submits a stolen job to shard d, falling back to the victim and
// then to any accepting shard if destinations are draining. Returns the
// index of the shard that took the job. A job is never dropped: at
// least one shard must accept, because the victim itself was verified
// non-draining this tick (and in sim mode drain state cannot change
// mid-tick).
func (p *Plane) place(st core.Stolen, d, victim int) int {
	if id, err := p.shards[d].SubmitJob(st.Job, st.Callback); err == nil && id != 0 {
		return d
	}
	if id, err := p.shards[victim].SubmitJob(st.Job, st.Callback); err == nil && id != 0 {
		return victim
	}
	for i := range p.shards {
		if i == d || i == victim {
			continue
		}
		if id, err := p.shards[i].SubmitJob(st.Job, st.Callback); err == nil && id != 0 {
			return i
		}
	}
	// Every shard is draining; settle the job as failed so the submitter
	// is not left waiting forever.
	if st.Callback != nil {
		res := core.Result{Job: st.Job, Err: "shard: cluster draining, job not rescheduled"}
		st.Callback(res)
	}
	return victim
}

// leastLoaded returns the non-draining shard with the smallest pending
// count, excluding skip; ties break to the lower index. Returns -1 when
// no shard qualifies.
func (p *Plane) leastLoaded(pending []int, skip int) int {
	best := -1
	for i := range p.shards {
		if i == skip || p.shards[i].Draining() {
			continue
		}
		if best == -1 || pending[i] < pending[best] {
			best = i
		}
	}
	return best
}

// rebalanceTick nudges ring weights toward equal queue depth: a shard
// with a deeper-than-mean queue sheds ring share, a shallower one gains
// it, damped by Gain. The ring only rebuilds when some weight moved
// more than 5% — point placement is weight-independent (see pointHash),
// so a rebuild moves only the keys the weight change implies.
func (p *Plane) rebalanceTick(queued []int, totalQ int) {
	n := len(p.shards)
	if n < 2 || totalQ == 0 {
		return
	}
	mean := float64(totalQ) / float64(n)
	p.mu.Lock()
	defer p.mu.Unlock()
	weights := make([]float64, n)
	material := false
	for i := range weights {
		w := p.ring.Weight(i)
		target := w * (mean + 1) / (float64(queued[i]) + 1)
		nw := w + p.cfg.Rebalance.Gain*(target-w)
		weights[i] = nw
		if diff := nw - w; diff > 0.05*w || diff < -0.05*w {
			material = true
		}
	}
	if !material {
		return
	}
	if err := p.ring.SetWeights(weights); err != nil {
		return
	}
	for i := range weights {
		p.weight[i].Set(p.ring.Weight(i))
	}
}
