// Package shard is the horizontal-scaling tier of the platform: a
// consistent-hash load balancer (Ring) that spreads function keys across
// N independent orchestrator shards, a routing Plane that owns the
// submit/settle path across them, and a poolmanager-style capacity
// aggregator that rebalances ring weights and steals queued work from
// backlogged shards (see plane.go and capacity.go).
//
// One orchestrator owns every worker in the unsharded platform, which
// caps cluster throughput at what a single control plane can dispatch
// (~200k func/min at rack scale). Sharding splits the fleet into
// disjoint worker partitions — each with its own orchestrator, power
// manager, and telemetry — and routes invocations by hashing a caller
// key (usually the function name, optionally a tenant-qualified key), so
// shards share nothing on the hot path and the cluster's dispatch
// capacity scales with the shard count.
//
// Everything in this package is deterministic: the ring's point
// placement is a pure function of shard count, weights, and the vnode
// budget; routing draws no randomness; and the aggregator runs on the
// cluster clock (virtual in sim mode), so seeded sharded simulations are
// byte-identical at any experiment parallelism.
package shard

import (
	"fmt"
	"sort"
)

// DefaultVNodes is the virtual-node budget per unit of shard weight.
// 128 vnodes per shard keeps the maximum key-share imbalance across
// shards in the low single-digit percent range while the ring stays
// small enough to rebuild on every weight change (a few thousand points
// at rack scale).
const DefaultVNodes = 128

// ringPoint is one virtual node on the hash circle.
type ringPoint struct {
	hash  uint64
	shard int
}

// Ring is a weighted consistent-hash ring with virtual nodes and
// dynamic membership. A key maps to the shard owning the first point
// clockwise of the key's hash; raising a shard's weight gives it more
// points (and so a proportionally larger share of the key space)
// without disturbing where other shards' points sit — reweighting,
// removing, or re-adding one shard only moves the keys that shard
// gained or lost (the ~1/N key-movement property, because point
// placement is a pure function of (shard, vnode), never of the rest of
// the membership). Ring is not concurrency-safe; the Plane guards it
// with its own lock.
type Ring struct {
	vnodes  int
	weights []float64
	present []bool
	members int
	points  []ringPoint
}

// NewRing builds a ring over n shards (ids 0..n-1), all present, at
// equal weight. vnodes is the per-unit-weight virtual-node budget (<=0
// selects DefaultVNodes).
func NewRing(n, vnodes int) (*Ring, error) {
	if n <= 0 {
		return nil, fmt.Errorf("shard: ring needs at least one shard, got %d", n)
	}
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	r := &Ring{vnodes: vnodes, weights: make([]float64, n), present: make([]bool, n), members: n}
	for i := range r.weights {
		r.weights[i] = 1
		r.present[i] = true
	}
	r.rebuild()
	return r, nil
}

// splitmix64 is the finalizer used everywhere this repository needs a
// fast, well-mixed deterministic hash.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// hashKey maps a routing key onto the hash circle (FNV-1a, then a
// splitmix64 finalizer to spread FNV's weak low bits).
func hashKey(key string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return splitmix64(h)
}

// pointHash places virtual node v of a shard. The placement depends only
// on (shard, v), never on the current weight vector, which is what makes
// reweighting minimally disruptive: shard i's first k points are the
// same no matter how many it has.
func pointHash(shard, v int) uint64 {
	return splitmix64(uint64(shard)<<32 | uint64(v))
}

// rebuild regenerates the sorted point list from the weight vector,
// skipping absent shards entirely (their keys fall through to the next
// present point clockwise — exactly the keys the removed shard owned,
// nothing else).
func (r *Ring) rebuild() {
	r.points = r.points[:0]
	for s, w := range r.weights {
		if !r.present[s] {
			continue
		}
		n := int(w*float64(r.vnodes) + 0.5)
		if n < 1 {
			n = 1 // a present shard always owns at least one point
		}
		for v := 0; v < n; v++ {
			r.points = append(r.points, ringPoint{hash: pointHash(s, v), shard: s})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// 64-bit collisions are astronomically rare but must not make the
		// ring order depend on sort stability: break by shard id.
		return r.points[i].shard < r.points[j].shard
	})
}

// Shards returns the number of shard slots the ring was built over
// (present or not).
func (r *Ring) Shards() int { return len(r.weights) }

// Members returns the number of shards currently present on the ring.
func (r *Ring) Members() int { return r.members }

// Present reports whether a shard currently owns points on the ring.
func (r *Ring) Present(shard int) bool {
	return shard >= 0 && shard < len(r.present) && r.present[shard]
}

// Weight returns a shard's current weight.
func (r *Ring) Weight(shard int) float64 { return r.weights[shard] }

// Add returns a shard to the ring at weight 1 (a rejoining shard starts
// neutral; the rebalancer re-earns its share from live queue depths).
// Only the re-added shard's points appear, so the only keys that move
// are the ones it now owns — no key between two other shards changes
// hands.
func (r *Ring) Add(shard int) error {
	if shard < 0 || shard >= len(r.weights) {
		return fmt.Errorf("shard: Add(%d) outside [0,%d)", shard, len(r.weights))
	}
	if r.present[shard] {
		return fmt.Errorf("shard: Add(%d): already on the ring", shard)
	}
	r.present[shard] = true
	r.weights[shard] = 1
	r.members++
	r.rebuild()
	return nil
}

// Remove takes a shard off the ring. Its points vanish and nothing else
// changes, so exactly the keys it owned (~1/N of the key space at equal
// weights) move — each to the next present shard clockwise. The last
// member cannot be removed: an empty ring routes nothing.
func (r *Ring) Remove(shard int) error {
	if shard < 0 || shard >= len(r.weights) {
		return fmt.Errorf("shard: Remove(%d) outside [0,%d)", shard, len(r.weights))
	}
	if !r.present[shard] {
		return fmt.Errorf("shard: Remove(%d): not on the ring", shard)
	}
	if r.members == 1 {
		return fmt.Errorf("shard: Remove(%d) would empty the ring", shard)
	}
	r.present[shard] = false
	r.members--
	r.rebuild()
	return nil
}

// SetWeights replaces the weight vector (one entry per shard, each
// clamped to [1/4, 4] so a capacity wobble can never starve or flood one
// shard) and rebuilds the ring. len(w) must equal Shards().
func (r *Ring) SetWeights(w []float64) error {
	if len(w) != len(r.weights) {
		return fmt.Errorf("shard: weight vector has %d entries for %d shards", len(w), len(r.weights))
	}
	for i, v := range w {
		if v != v {
			return fmt.Errorf("shard: weight[%d] is NaN", i)
		}
		if v < 0.25 {
			v = 0.25
		}
		if v > 4 {
			v = 4
		}
		r.weights[i] = v
	}
	r.rebuild()
	return nil
}

// Lookup maps a key to its owning shard: the first point clockwise of
// the key's hash.
func (r *Ring) Lookup(key string) int {
	return r.points[r.successor(hashKey(key))].shard
}

// successor returns the index of the first point at or after h, wrapping
// at the top of the circle.
func (r *Ring) successor(h uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		return 0
	}
	return i
}

// LookupBounded is consistent hashing with bounded loads (the fnlb /
// Mirrokni et al. policy): starting from the key's home shard, it walks
// clockwise past shards whose current load exceeds factor × the mean
// load (plus a +1 slack so an idle ring never rejects), and returns the
// first shard under its bound. load reports a shard's current load (the
// Plane passes pending invocations); total is the sum over all shards.
// factor <= 1 disables the bound and behaves exactly like Lookup. The
// walk visits each distinct shard at most once and falls back to the
// home shard if every shard is somehow over its bound.
func (r *Ring) LookupBounded(key string, factor float64, total int, load func(shard int) int) int {
	home := r.successor(hashKey(key))
	if factor <= 1 {
		return r.points[home].shard
	}
	n := r.members
	bound := factor*float64(total)/float64(n) + 1
	visited := 0
	seen := make([]bool, len(r.weights))
	for i := 0; visited < n && i < len(r.points); i++ {
		p := r.points[(home+i)%len(r.points)]
		if seen[p.shard] {
			continue
		}
		seen[p.shard] = true
		visited++
		if float64(load(p.shard)) < bound {
			return p.shard
		}
	}
	return r.points[home].shard
}
