package shard

import "testing"

// FuzzRing drives ring construction, membership churn, reweighting, and
// both lookup paths with arbitrary shapes, checking the invariants that
// matter to the plane: lookups always land on a present shard, bounded
// lookups terminate, a rebuilt ring keeps one point minimum per present
// shard so no member becomes unroutable, and an arbitrary interleaving
// of Add/Remove/SetWeights never breaks any of that.
func FuzzRing(f *testing.F) {
	f.Add(uint8(4), uint8(32), "hot", 1.25, uint8(1), uint16(0))
	f.Add(uint8(1), uint8(1), "", 0.0, uint8(0), uint16(0xffff))
	f.Add(uint8(64), uint8(255), "a-very-long-function-key/tenant-42", 4.0, uint8(200), uint16(0xa5a5))
	f.Fuzz(func(t *testing.T, n, vnodes uint8, key string, factor float64, wseed uint8, churn uint16) {
		shards := int(n)%64 + 1
		vn := int(vnodes)%DefaultVNodes + 1
		r, err := NewRing(shards, vn)
		if err != nil {
			t.Fatalf("NewRing(%d,%d): %v", shards, vn, err)
		}
		weights := make([]float64, shards)
		for i := range weights {
			// Arbitrary positive weights spanning the clamp range.
			weights[i] = 0.1 + float64((int(wseed)+i*7)%100)/10
		}
		if err := r.SetWeights(weights); err != nil {
			t.Fatalf("SetWeights: %v", err)
		}

		// Interleave membership churn with reweights, driven by the churn
		// bits: each step removes, re-adds, or reweights some shard. The
		// bounded-load invariant below must hold at every step.
		check := func(step int) {
			if r.Members() < 1 || r.Members() > shards {
				t.Fatalf("step %d: Members() = %d outside [1,%d]", step, r.Members(), shards)
			}
			if got := r.Lookup(key); got < 0 || got >= shards || !r.Present(got) {
				t.Fatalf("step %d: Lookup(%q) = %d not a present shard", step, key, got)
			}
			loads := make([]int, shards)
			total := 0
			for i := range loads {
				loads[i] = (int(wseed) * (i + 1)) % 17
				total += loads[i]
			}
			got := r.LookupBounded(key, factor, total, func(s int) int { return loads[s] })
			if got < 0 || got >= shards || !r.Present(got) {
				t.Fatalf("step %d: LookupBounded(%q) = %d not a present shard", step, key, got)
			}
		}
		check(-1)
		for step := 0; step < 16; step++ {
			bits := int(churn) >> (step % 16)
			target := (int(wseed) + step*5) % shards
			switch bits % 3 {
			case 0:
				if err := r.Remove(target); err == nil {
					if r.Present(target) {
						t.Fatalf("step %d: Remove(%d) succeeded but shard still present", step, target)
					}
				} else if r.Present(target) && r.Members() > 1 {
					t.Fatalf("step %d: Remove(%d) of a present, non-last shard failed: %v", step, target, err)
				}
			case 1:
				if err := r.Add(target); err == nil {
					if !r.Present(target) || r.Weight(target) != 1 {
						t.Fatalf("step %d: Add(%d) left present=%v weight=%v", step, target, r.Present(target), r.Weight(target))
					}
				} else if !r.Present(target) {
					t.Fatalf("step %d: Add(%d) of an absent shard failed: %v", step, target, err)
				}
			default:
				for i := range weights {
					weights[i] = 0.1 + float64((int(wseed)+step+i*11)%100)/10
				}
				if err := r.SetWeights(weights); err != nil {
					t.Fatalf("step %d: SetWeights: %v", step, err)
				}
			}
			check(step)
		}
	})
}
