package shard

import "testing"

// FuzzRing drives ring construction, reweighting, and both lookup paths
// with arbitrary shapes, checking the invariants that matter to the
// plane: lookups always land on a valid shard, bounded lookups
// terminate, and a rebuilt ring keeps one point minimum per shard so no
// shard becomes unroutable.
func FuzzRing(f *testing.F) {
	f.Add(uint8(4), uint8(32), "hot", 1.25, uint8(1))
	f.Add(uint8(1), uint8(1), "", 0.0, uint8(0))
	f.Add(uint8(64), uint8(255), "a-very-long-function-key/tenant-42", 4.0, uint8(200))
	f.Fuzz(func(t *testing.T, n, vnodes uint8, key string, factor float64, wseed uint8) {
		shards := int(n)%64 + 1
		vn := int(vnodes)%DefaultVNodes + 1
		r, err := NewRing(shards, vn)
		if err != nil {
			t.Fatalf("NewRing(%d,%d): %v", shards, vn, err)
		}
		weights := make([]float64, shards)
		for i := range weights {
			// Arbitrary positive weights spanning the clamp range.
			weights[i] = 0.1 + float64((int(wseed)+i*7)%100)/10
		}
		if err := r.SetWeights(weights); err != nil {
			t.Fatalf("SetWeights: %v", err)
		}
		if got := r.Lookup(key); got < 0 || got >= shards {
			t.Fatalf("Lookup(%q) = %d outside [0,%d)", key, got, shards)
		}
		loads := make([]int, shards)
		total := 0
		for i := range loads {
			loads[i] = (int(wseed) * (i + 1)) % 17
			total += loads[i]
		}
		got := r.LookupBounded(key, factor, total, func(s int) int { return loads[s] })
		if got < 0 || got >= shards {
			t.Fatalf("LookupBounded(%q) = %d outside [0,%d)", key, got, shards)
		}
	})
}
