package shard

import (
	"context"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"microfaas/internal/core"
	"microfaas/internal/telemetry"
)

// Default tuning for the capacity aggregator. The steal interval is a
// compromise between reaction time (a hot shard's queue is visible for
// at most one interval before relief arrives) and overhead (each tick
// snapshots every shard under its own lock).
const (
	// DefaultStealInterval is how often the capacity aggregator runs.
	DefaultStealInterval = 250 * time.Millisecond
	// DefaultStealThreshold is the queue-depth multiple of the cluster
	// mean beyond which a shard becomes a steal victim.
	DefaultStealThreshold = 2.0
	// DefaultMaxStealPerTick bounds jobs migrated per aggregator tick.
	DefaultMaxStealPerTick = 256
	// DefaultRebalanceGain damps ring-weight adjustments per tick.
	DefaultRebalanceGain = 0.25
	// DefaultBoundFactor is the bounded-load factor c: no shard accepts
	// more than c × (mean load) + 1 routed jobs while a less-loaded
	// successor exists.
	DefaultBoundFactor = 1.25
)

// StealConfig tunes cross-shard work stealing.
type StealConfig struct {
	// Enabled turns the stealing half of the aggregator on.
	Enabled bool
	// Interval is the aggregator tick period (default 250ms).
	Interval time.Duration
	// Threshold is the queue-depth multiple of the cluster mean beyond
	// which a shard's queue is raided (default 2.0).
	Threshold float64
	// MaxPerTick bounds migrations per tick (default 256).
	MaxPerTick int
}

// RebalanceConfig tunes ring-weight rebalancing.
type RebalanceConfig struct {
	// Enabled turns weight rebalancing on.
	Enabled bool
	// Gain in (0,1] damps per-tick weight movement (default 0.25).
	Gain float64
}

// Config configures a Plane.
type Config struct {
	// VNodes is the virtual-node count per unit weight (default
	// DefaultVNodes).
	VNodes int
	// BoundFactor is the bounded-load factor for routing; values <= 1
	// select plain consistent hashing. Zero means DefaultBoundFactor —
	// pass a negative value to explicitly disable bounded loads.
	BoundFactor float64
	// Steal configures cross-shard work stealing.
	Steal StealConfig
	// Rebalance configures ring-weight rebalancing.
	Rebalance RebalanceConfig
	// Membership configures the health checker and dynamic shard
	// membership (see MembershipConfig; disabled by default, leaving the
	// shard set fixed at construction).
	Membership MembershipConfig
}

// Plane is the load-balancer tier in front of N orchestrator shards.
// It routes invocations by consistent-hashing the function key onto the
// shard ring (optionally with bounded loads), and runs a poolmanager-
// style capacity aggregator that watches per-shard queue depth to
// rebalance ring weights and steal queued work from backlogged shards.
//
// Every scheduling decision the plane makes is a pure function of shard
// state at deterministic instants — routing reads pending counts, the
// aggregator runs on the shared runtime clock and visits shards in
// index order — so a seeded simulation through a Plane replays
// byte-identically.
type Plane struct {
	runtime core.Runtime
	shards  []*core.Orchestrator
	labels  []string
	cfg     Config

	reg        *telemetry.Registry
	queueDepth []*telemetry.Gauge
	weight     []*telemetry.Gauge
	stolenIn   []*telemetry.Counter
	stolenOut  []*telemetry.Counter

	mu          sync.Mutex
	ring        *Ring
	members     []memberRecord
	epoch       int64
	stolenTotal int64
	ticks       int64
	tickArmed   bool
	cancelTick  func()
	closed      bool

	// tickHook runs at the end of every aggregator tick (the embedded
	// time-series store's scrape cadence); hookSet mirrors it so the
	// armTick fast path can check without taking mu.
	tickHook func(time.Duration)
	hookSet  atomic.Bool
}

// SetTickHook registers fn to run at the end of every capacity-
// aggregator tick, passed the tick's clock offset — the sampling
// cadence the embedded time-series store (internal/tsdb) scrapes on.
// A hook arms the tick even when stealing, rebalancing, and membership
// are all disabled, but re-arm semantics are unchanged: ticks only
// self-schedule while work is in flight, so a hooked idle plane still
// lets a discrete-event simulation run out of events and terminate.
// Set the hook before submitting traffic; a nil fn clears it.
func (p *Plane) SetTickHook(fn func(now time.Duration)) {
	p.mu.Lock()
	p.tickHook = fn
	p.mu.Unlock()
	p.hookSet.Store(fn != nil)
}

// ShardStatus is one shard's capacity snapshot, as served by the
// gateway's /shards endpoint and faasctl shards.
type ShardStatus struct {
	// Index is the shard's position in the ring.
	Index int `json:"index"`
	// Label is the shard's name (spans and metrics carry it).
	Label string `json:"label"`
	// Workers is the shard's worker-partition size.
	Workers int `json:"workers"`
	// Pending counts queued + running jobs on the shard.
	Pending int `json:"pending"`
	// Queued counts jobs waiting in worker queues (not yet running).
	Queued int `json:"queued"`
	// Weight is the shard's current ring weight.
	Weight float64 `json:"weight"`
	// StolenIn counts jobs this shard received via stealing.
	StolenIn int64 `json:"stolen_in"`
	// StolenOut counts jobs raided from this shard (including a death
	// drain).
	StolenOut int64 `json:"stolen_out"`
	// State is the shard's membership state: "up", "suspect", or "dead".
	State string `json:"state"`
	// Epoch counts the shard's membership transitions (0 = never
	// churned).
	Epoch int64 `json:"epoch"`
}

// NewPlane builds the shard tier over the given orchestrators, which
// must each own a disjoint worker partition and a disjoint job-id space
// (core.Config.JobIDBase). The runtime must be the same clock the
// shards run on.
func NewPlane(rt core.Runtime, shards []*core.Orchestrator, cfg Config) (*Plane, error) {
	if rt == nil {
		return nil, fmt.Errorf("shard: nil runtime")
	}
	if len(shards) == 0 {
		return nil, fmt.Errorf("shard: a plane needs at least one shard")
	}
	if cfg.VNodes <= 0 {
		cfg.VNodes = DefaultVNodes
	}
	if cfg.BoundFactor == 0 {
		cfg.BoundFactor = DefaultBoundFactor
	}
	if cfg.Steal.Interval <= 0 {
		cfg.Steal.Interval = DefaultStealInterval
	}
	if cfg.Steal.Threshold <= 0 {
		cfg.Steal.Threshold = DefaultStealThreshold
	}
	if cfg.Steal.MaxPerTick <= 0 {
		cfg.Steal.MaxPerTick = DefaultMaxStealPerTick
	}
	if cfg.Rebalance.Gain <= 0 || cfg.Rebalance.Gain > 1 {
		cfg.Rebalance.Gain = DefaultRebalanceGain
	}
	normalizeMembership(&cfg.Membership, cfg.Steal.Interval)
	ring, err := NewRing(len(shards), cfg.VNodes)
	if err != nil {
		return nil, err
	}
	p := &Plane{
		runtime: rt,
		shards:  shards,
		labels:  make([]string, len(shards)),
		cfg:     cfg,
		reg:     telemetry.NewRegistry(),
		ring:    ring,
		members: make([]memberRecord, len(shards)),
	}
	if cfg.Membership.Enabled {
		for i := range p.members {
			p.members[i].lastAlive = true
			p.members[i].leaseUntil = rt.Now() + cfg.Membership.LeaseTTL
		}
	}
	for i, o := range shards {
		label := o.ShardLabel()
		if label == "" {
			label = fmt.Sprintf("shard-%02d", i)
		}
		p.labels[i] = label
		p.queueDepth = append(p.queueDepth, p.reg.Gauge(
			"microfaas_shard_queue_depth",
			"Jobs waiting in the shard's worker queues at the last aggregator tick.",
			"shard", label))
		p.weight = append(p.weight, p.reg.Gauge(
			"microfaas_shard_weight",
			"The shard's current consistent-hash ring weight.",
			"shard", label))
		p.stolenIn = append(p.stolenIn, p.reg.Counter(
			"microfaas_shard_stolen_total",
			"Jobs migrated between shards by the work stealer, by direction.",
			"shard", label, "direction", "in"))
		p.stolenOut = append(p.stolenOut, p.reg.Counter(
			"microfaas_shard_stolen_total",
			"Jobs migrated between shards by the work stealer, by direction.",
			"shard", label, "direction", "out"))
		p.weight[i].Set(1)
	}
	return p, nil
}

// NumShards returns the number of shards behind the plane.
func (p *Plane) NumShards() int { return len(p.shards) }

// Shards returns the orchestrators behind the plane, in ring order.
func (p *Plane) Shards() []*core.Orchestrator { return p.shards }

// Labels returns the shard labels, in ring order.
func (p *Plane) Labels() []string { return p.labels }

// Registry returns the plane's own metric registry (shard queue-depth
// and steal counters). Per-shard metrics live in each shard's registry;
// WriteMergedMetrics stitches all of them together.
func (p *Plane) Registry() *telemetry.Registry { return p.reg }

// ShardFor returns the index of the key's home shard — the routing
// decision ignoring bounded loads. Use it to preview placement.
func (p *Plane) ShardFor(key string) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.ring.Lookup(key)
}

// route picks the destination shard for a key under the configured
// bounded-load factor, reading live pending counts as the load signal.
func (p *Plane) route(key string) (*core.Orchestrator, int) {
	loads := make([]int, len(p.shards))
	total := 0
	for i, o := range p.shards {
		loads[i] = o.Pending()
		total += loads[i]
	}
	p.mu.Lock()
	idx := p.ring.LookupBounded(key, p.cfg.BoundFactor, total, func(s int) int { return loads[s] })
	p.mu.Unlock()
	return p.shards[idx], idx
}

// Submit routes one invocation by key and submits it asynchronously to
// the chosen shard. It returns the cluster-unique job id and the shard
// index that accepted it. The key is typically the function name, so
// a function's invocations colocate on one shard (warm state, fairness
// accounting); pass a compound key to spread a hot function.
func (p *Plane) Submit(key, function string, args []byte, cb func(core.Result)) (int64, int) {
	o, idx := p.route(key)
	id := o.SubmitAsync(function, args, cb)
	if id == 0 {
		id, idx = p.failover(idx, func(o *core.Orchestrator) int64 {
			return o.SubmitAsync(function, args, cb)
		})
	}
	p.armTick()
	return id, idx
}

// SubmitWithTimeout is Submit with a per-job timeout on the chosen
// shard.
func (p *Plane) SubmitWithTimeout(key, function string, args []byte, timeout time.Duration, cb func(core.Result)) (int64, int) {
	o, idx := p.route(key)
	id := o.SubmitWithTimeout(function, args, timeout, cb)
	if id == 0 {
		id, idx = p.failover(idx, func(o *core.Orchestrator) int64 {
			return o.SubmitWithTimeout(function, args, timeout, cb)
		})
	}
	p.armTick()
	return id, idx
}

// failover re-submits an invocation its routed shard rejected — a dying
// shard is sealed the moment it loses its control plane but lingers on
// the ring until the health checker declares it dead, and during that
// window routed work must not be lost. The least-loaded live shard
// takes it; (0, idx) only when every shard is out of service.
func (p *Plane) failover(idx int, submit func(*core.Orchestrator) int64) (int64, int) {
	pending := make([]int, len(p.shards))
	for i, s := range p.shards {
		if i != idx {
			pending[i] = s.Pending()
		}
	}
	d := p.leastLoaded(pending, idx)
	if d < 0 {
		return 0, idx
	}
	return submit(p.shards[d]), d
}

// Pending returns the cluster-wide pending (queued + running) count.
func (p *Plane) Pending() int {
	total := 0
	for _, o := range p.shards {
		total += o.Pending()
	}
	return total
}

// Queued returns the cluster-wide queued (not yet running) count.
func (p *Plane) Queued() int {
	total := 0
	for _, o := range p.shards {
		total += o.Queued()
	}
	return total
}

// StolenTotal returns how many jobs the aggregator has migrated.
func (p *Plane) StolenTotal() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stolenTotal
}

// Ticks returns how many aggregator ticks have run.
func (p *Plane) Ticks() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.ticks
}

// Status snapshots every shard's capacity view, in ring order.
func (p *Plane) Status() []ShardStatus {
	p.mu.Lock()
	weights := make([]float64, len(p.shards))
	states := make([]string, len(p.shards))
	epochs := make([]int64, len(p.shards))
	for i := range p.shards {
		weights[i] = p.ring.Weight(i)
		states[i] = p.members[i].state.String()
		epochs[i] = p.members[i].epoch
	}
	p.mu.Unlock()
	out := make([]ShardStatus, len(p.shards))
	for i, o := range p.shards {
		out[i] = ShardStatus{
			Index:     i,
			Label:     p.labels[i],
			Workers:   len(o.Workers()),
			Pending:   o.Pending(),
			Queued:    o.Queued(),
			Weight:    weights[i],
			StolenIn:  int64(p.stolenIn[i].Value()),
			StolenOut: int64(p.stolenOut[i].Value()),
			State:     states[i],
			Epoch:     epochs[i],
		}
	}
	return out
}

// WriteMergedMetrics writes one Prometheus exposition covering the
// whole cluster: the plane's own registry first (its families already
// carry shard labels), then every shard's registry with a shard label
// injected into each sample so same-named families stay distinct.
// Aggregate across shards with Samples.Sum / HistogramQuantile.
func (p *Plane) WriteMergedMetrics(w io.Writer) error {
	if err := p.reg.WritePrometheus(w); err != nil {
		return err
	}
	for i, o := range p.shards {
		tel := o.Telemetry()
		if tel == nil {
			continue
		}
		if err := tel.Registry().WritePrometheusLabeled(w, "shard", p.labels[i]); err != nil {
			return err
		}
	}
	return nil
}

// Drain stops routing new work and drains every shard in ring order,
// returning any jobs still unfinished when the context expired.
func (p *Plane) Drain(ctx context.Context) []core.Job {
	p.Close()
	var left []core.Job
	for _, o := range p.shards {
		left = append(left, o.Drain(ctx)...)
	}
	return left
}

// Close stops the capacity aggregator. Shards keep running; call Drain
// to stop them too.
func (p *Plane) Close() {
	p.mu.Lock()
	p.closed = true
	cancel := p.cancelTick
	p.cancelTick = nil
	p.tickArmed = false
	p.mu.Unlock()
	if cancel != nil {
		cancel()
	}
}
