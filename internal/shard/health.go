package shard

import (
	"fmt"
	"time"
)

// The health checker: the membership half of the aggregator tick (see
// membership.go for the state machine it implements). Like the steal
// and rebalance halves it visits shards in index order, draws no
// randomness, and runs on the cluster clock, so churn under a seeded
// simulation replays byte-identically. Lock discipline: member records
// and the ring mutate under p.mu; orchestrator calls (Seal, TakeAll,
// SubmitJob, Reopen) happen with p.mu released — orchestrator locks are
// leaves and must never nest inside the plane's.

// healthTick probes every shard once and advances the membership state
// machine. Deaths and rejoins decided this pass execute after the scan,
// still within the same tick.
func (p *Plane) healthTick() {
	cfg := &p.cfg.Membership
	now := p.runtime.Now()
	// A tick can decide several transitions; they execute in index order
	// after the scan, outside p.mu.
	var deaths, rejoins []int
	p.mu.Lock()
	for i := range p.members {
		rec := &p.members[i]
		alive := cfg.Probe == nil || cfg.Probe(i)
		rec.lastAlive = alive
		if rec.admin {
			continue // administratively drained: frozen until JoinShard
		}
		if alive {
			rec.missed = 0
			switch rec.state {
			case ShardUp:
				rec.leaseUntil = now + cfg.LeaseTTL
			case ShardSuspect:
				rec.state = ShardUp
				rec.epoch++
				p.epoch++
				rec.leaseUntil = now + cfg.LeaseTTL
			case ShardDead:
				rec.streak++
				if rec.streak >= cfg.RejoinAfter {
					rejoins = append(rejoins, i)
				}
			}
			continue
		}
		rec.streak = 0
		rec.missed++
		expired := now >= rec.leaseUntil
		switch rec.state {
		case ShardUp:
			if (rec.missed >= cfg.DeadAfter || expired) && p.ring.Members() > 1 {
				deaths = append(deaths, i)
			} else if rec.missed >= cfg.SuspectAfter {
				rec.state = ShardSuspect
				rec.epoch++
				p.epoch++
			}
		case ShardSuspect:
			if (rec.missed >= cfg.DeadAfter || expired) && p.ring.Members() > 1 {
				deaths = append(deaths, i)
			}
		}
	}
	p.mu.Unlock()
	for _, i := range deaths {
		p.killShard(i, false)
	}
	for _, i := range rejoins {
		p.rejoinShard(i)
	}
}

// killShard executes a death transition: the shard leaves the ring, its
// orchestrator is sealed, and everything recoverable — queued jobs and
// backoff-parked retries, identity intact — drains into the live shards
// through the steal transport. Attempts already executing on the dead
// shard's boards run to completion and settle through their late
// callbacks, so nothing is lost and nothing runs twice. admin marks an
// administrative drain (DrainShard): no OnDeath hook, no auto-rejoin.
func (p *Plane) killShard(i int, admin bool) {
	p.mu.Lock()
	rec := &p.members[i]
	if rec.state == ShardDead || p.ring.Members() <= 1 {
		p.mu.Unlock()
		return
	}
	if err := p.ring.Remove(i); err != nil {
		p.mu.Unlock()
		return
	}
	rec.state = ShardDead
	rec.missed, rec.streak = 0, 0
	rec.admin = admin
	rec.epoch++
	p.epoch++
	p.mu.Unlock()

	o := p.shards[i]
	o.Seal()
	stolen := o.TakeAll()
	if len(stolen) > 0 {
		pending := make([]int, len(p.shards))
		for j, s := range p.shards {
			if j != i {
				pending[j] = s.Pending()
			}
		}
		p.stolenOut[i].Add(float64(len(stolen)))
		moved := 0
		for _, st := range stolen {
			d := p.leastLoaded(pending, i)
			if d < 0 {
				d = i // place falls back through every shard and settles if none accept
			}
			d = p.place(st, d, i)
			if d != i {
				pending[d]++
				p.stolenIn[d].Add(1)
				moved++
			}
		}
		p.mu.Lock()
		p.stolenTotal += int64(moved)
		p.mu.Unlock()
		p.armTick()
	}
	if cb := p.cfg.Membership.OnDeath; cb != nil && !admin {
		cb(i)
	}
}

// rejoinShard executes a rejoin transition: the orchestrator reopens
// and the shard returns to the ring at weight 1 (it re-earns ring share
// from the rebalancer like any other shard).
func (p *Plane) rejoinShard(i int) {
	p.mu.Lock()
	rec := &p.members[i]
	if rec.state != ShardDead {
		p.mu.Unlock()
		return
	}
	if err := p.ring.Add(i); err != nil {
		p.mu.Unlock()
		return
	}
	rec.state = ShardUp
	rec.missed, rec.streak = 0, 0
	rec.admin = false
	rec.leaseUntil = p.runtime.Now() + p.cfg.Membership.LeaseTTL
	rec.epoch++
	p.epoch++
	p.weight[i].Set(1)
	p.mu.Unlock()
	p.shards[i].Reopen()
	if cb := p.cfg.Membership.OnRejoin; cb != nil {
		cb(i)
	}
}

// membershipTransitionalLocked reports whether the membership machine
// still has progress to make — a shard partway to suspicion or death,
// or a dead shard whose probe has come back and is earning its rejoin
// streak. While true the aggregator keeps ticking even with no work
// pending; every such state resolves in a bounded number of ticks, so
// an idle simulation still terminates. Caller holds p.mu.
func (p *Plane) membershipTransitionalLocked() bool {
	if !p.cfg.Membership.Enabled {
		return false
	}
	for i := range p.members {
		rec := &p.members[i]
		if rec.admin {
			continue
		}
		switch rec.state {
		case ShardUp:
			if rec.missed > 0 {
				return true
			}
		case ShardSuspect:
			return true
		case ShardDead:
			if rec.lastAlive {
				return true
			}
		}
	}
	return false
}

// DrainShard administratively removes a shard from service: it is
// marked dead, leaves the ring, and its queued work migrates to the
// other shards exactly as in a health-detected death — but the OnDeath
// hook does not fire (the operator is taking the shard, not the
// failure detector) and the shard stays out until JoinShard, no matter
// what its probes say. The last live shard cannot be drained.
func (p *Plane) DrainShard(idx int) error {
	if idx < 0 || idx >= len(p.shards) {
		return fmt.Errorf("shard: drain: index %d outside [0,%d)", idx, len(p.shards))
	}
	p.mu.Lock()
	if p.members[idx].state == ShardDead {
		p.mu.Unlock()
		return fmt.Errorf("shard: drain: %s is already out of service", p.labels[idx])
	}
	if p.ring.Members() <= 1 {
		p.mu.Unlock()
		return fmt.Errorf("shard: drain: %s is the last live shard", p.labels[idx])
	}
	p.mu.Unlock()
	p.killShard(idx, true)
	return nil
}

// JoinShard returns a dead (health-declared or administratively
// drained) shard to service immediately, without waiting out the rejoin
// hysteresis.
func (p *Plane) JoinShard(idx int) error {
	if idx < 0 || idx >= len(p.shards) {
		return fmt.Errorf("shard: join: index %d outside [0,%d)", idx, len(p.shards))
	}
	p.mu.Lock()
	dead := p.members[idx].state == ShardDead
	p.mu.Unlock()
	if !dead {
		return fmt.Errorf("shard: join: %s is already in service", p.labels[idx])
	}
	p.rejoinShard(idx)
	return nil
}

// MemberState returns a shard's current membership state. Out-of-range
// indices report ShardDead.
func (p *Plane) MemberState(idx int) ShardState {
	if idx < 0 || idx >= len(p.shards) {
		return ShardDead
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.members[idx].state
}

// Epoch returns the plane-wide membership epoch: the total number of
// state transitions any shard has made. Two views of the plane agree
// whenever their epochs match.
func (p *Plane) Epoch() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.epoch
}

// Kick arms the capacity aggregator if it is idle. Submissions arm it
// on the hot path; call Kick after an out-of-band event that needs the
// tick loop running — e.g. a revived host that should start earning its
// rejoin streak while the cluster is otherwise quiet.
func (p *Plane) Kick() { p.armTick() }

// normalizeMembership fills MembershipConfig defaults (NewPlane calls
// it after the steal interval is normalized, since the heartbeat rides
// the aggregator tick).
func normalizeMembership(m *MembershipConfig, tick time.Duration) {
	if !m.Enabled {
		return
	}
	if m.SuspectAfter <= 0 {
		m.SuspectAfter = DefaultSuspectAfter
	}
	if m.DeadAfter <= 0 {
		m.DeadAfter = DefaultDeadAfter
	}
	if m.DeadAfter <= m.SuspectAfter {
		m.DeadAfter = m.SuspectAfter + 1
	}
	if m.RejoinAfter <= 0 {
		m.RejoinAfter = DefaultRejoinAfter
	}
	if m.LeaseTTL <= 0 {
		m.LeaseTTL = time.Duration(m.DeadAfter+1) * tick
	}
}
