package shard

import (
	"fmt"
	"time"
)

// Dynamic shard membership: a lease-based view of which shards are
// alive, fed by heartbeats taken on the capacity aggregator's tick.
//
// Every tick the plane probes each shard (Probe — in a sharded sim this
// is backed by the harness's kill mask; a multi-host deployment would
// probe the shard's control socket). A successful probe renews the
// shard's lease to now+LeaseTTL; a failed one counts a missed
// heartbeat. The per-shard state machine is:
//
//	up ──(SuspectAfter missed)──▶ suspect ──(DeadAfter missed)──▶ dead
//	 ▲                              │ probe ok: streak resets to up
//	 └──(RejoinAfter consecutive ok probes — MinUp-style hysteresis)──┘
//
// An expired lease is an immediate death sentence regardless of the
// missed-heartbeat count: leases bound how stale any view of the
// membership can be, which is what lets two planes over the same shard
// set converge without a coordinator — membership is a pure function of
// (lease table, shared clock), and both sides run the same
// deterministic transitions from the same probes.
//
// On the up→dead edge the plane removes the shard from the ring, seals
// its orchestrator, drains every queued and backoff-parked job into
// survivors over the identity-preserving steal transport, and fires
// OnDeath (the sharded sim re-homes the dead shard's worker partition
// there). On the dead→up edge (RejoinAfter consecutive successful
// probes — flap hysteresis, so a blinking host does not churn the ring)
// the plane reopens the orchestrator, re-adds it to the ring at weight
// 1, and fires OnRejoin (the sim hands the worker partition back).
// Every transition bumps the membership epoch.

// Default membership tuning. Thresholds are in aggregator ticks (the
// heartbeat is taken on the capacity tick), so wall-clock reaction time
// scales with Steal.Interval.
const (
	// DefaultSuspectAfter is the missed-heartbeat count that turns an up
	// shard suspect.
	DefaultSuspectAfter = 2
	// DefaultDeadAfter is the missed-heartbeat count that declares a
	// shard dead (must exceed SuspectAfter).
	DefaultDeadAfter = 4
	// DefaultRejoinAfter is how many consecutive successful probes a
	// dead shard needs before it rejoins the ring (MinUp-style
	// hysteresis against flapping).
	DefaultRejoinAfter = 3
)

// ShardState is one shard's position in the membership state machine.
type ShardState int

const (
	// ShardUp: heartbeats current, lease valid, shard owns ring points.
	ShardUp ShardState = iota
	// ShardSuspect: missed heartbeats past SuspectAfter; still routed to
	// (a suspect shard usually recovers) but one more threshold from
	// death.
	ShardSuspect
	// ShardDead: declared failed (missed heartbeats past DeadAfter, an
	// expired lease, or an administrative drain). Off the ring, sealed,
	// queue drained into survivors.
	ShardDead
)

// String renders the state as served by /shards ("up", "suspect",
// "dead").
func (s ShardState) String() string {
	switch s {
	case ShardUp:
		return "up"
	case ShardSuspect:
		return "suspect"
	case ShardDead:
		return "dead"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// MembershipConfig tunes the health checker and the lease-based
// membership view. The zero value disables membership entirely: the
// shard set is fixed at construction and the plane behaves exactly like
// the static PR 7 tier (byte-identical seeded output).
type MembershipConfig struct {
	// Enabled turns dynamic membership on.
	Enabled bool
	// Probe reports whether a shard's control plane is reachable. It is
	// called once per shard per aggregator tick, in index order. Nil
	// means every shard always probes healthy (membership still tracks
	// administrative drains).
	Probe func(shard int) bool
	// SuspectAfter / DeadAfter are missed-heartbeat thresholds in
	// aggregator ticks (defaults 2 and 4). DeadAfter must exceed
	// SuspectAfter.
	SuspectAfter int
	DeadAfter    int
	// RejoinAfter is the consecutive-successful-probe count a dead shard
	// needs before rejoining the ring (default 3) — hysteresis so a
	// flapping host does not thrash ring membership.
	RejoinAfter int
	// LeaseTTL is the liveness lease granted per successful heartbeat.
	// Zero derives DeadAfter+1 tick intervals, so lease expiry and the
	// missed-heartbeat count agree under a steady tick.
	LeaseTTL time.Duration
	// OnDeath fires after a shard is declared dead and its queue has
	// been drained into survivors (the sharded sim re-homes the worker
	// partition here). Called outside the plane lock.
	OnDeath func(shard int)
	// OnRejoin fires after a dead shard rejoins the ring. Called outside
	// the plane lock.
	OnRejoin func(shard int)
}

// memberRecord is one shard's mutable membership state.
type memberRecord struct {
	state      ShardState
	missed     int           // consecutive missed heartbeats
	streak     int           // consecutive successful probes while dead
	epoch      int64         // transitions this shard has made
	leaseUntil time.Duration // liveness lease expiry on the cluster clock
	lastAlive  bool          // most recent probe outcome
	admin      bool          // administratively drained: no auto-rejoin
}

// MemberView is one shard's membership snapshot (part of ShardStatus).
type MemberView struct {
	// State is "up", "suspect", or "dead".
	State string `json:"state"`
	// Epoch counts this shard's membership transitions (0 = never
	// churned).
	Epoch int64 `json:"epoch"`
	// LeaseRemaining is how much liveness lease the shard holds, in
	// seconds (<= 0 means expired; meaningless for dead shards).
	LeaseRemaining float64 `json:"lease_remaining_s"`
}
