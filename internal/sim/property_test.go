package sim

import (
	"math/rand"
	"sort"
	"testing"
	"time"
)

// This file is a model-based property test of the engine: random
// interleavings of Schedule / At / Cancel / Step / Run are replayed
// against a trivial reference model (a sorted list of live events), and
// the engine must fire exactly the model's events in exactly the model's
// (time, seq) order while Pending() always equals the model's live count.
// The engine's lazy cancellation and threshold compaction are invisible
// implementation details if and only if this test passes.

// modelEvent is one scheduled callback in the reference model.
type modelEvent struct {
	at        time.Duration
	seq       int
	cancelled bool
	fired     bool
	real      Timer
}

// firingOrder returns the ids of not-cancelled, not-yet-fired events at or
// before cutoff, in (time, seq) order — what a correct engine must fire.
func firingOrder(evs []*modelEvent, cutoff time.Duration) []int {
	var due []*modelEvent
	for _, ev := range evs {
		if !ev.cancelled && !ev.fired && ev.at <= cutoff {
			due = append(due, ev)
		}
	}
	sort.Slice(due, func(i, j int) bool {
		if due[i].at != due[j].at {
			return due[i].at < due[j].at
		}
		return due[i].seq < due[j].seq
	})
	ids := make([]int, len(due))
	for i, ev := range due {
		ids[i] = ev.seq
	}
	return ids
}

func livePending(evs []*modelEvent) int {
	n := 0
	for _, ev := range evs {
		if !ev.cancelled && !ev.fired {
			n++
		}
	}
	return n
}

func TestEnginePropertyRandomInterleavings(t *testing.T) {
	const (
		trials       = 60
		opsPerTrial  = 400
		maxDelay     = 1000 // virtual nanoseconds; collisions are the point
		cancelBatch  = 40   // large batches push past the compaction floor
		maxRunWindow = 300
	)
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		e := NewEngine(int64(trial))
		var model []*modelEvent
		var fired []int

		schedule := func(at time.Duration, viaAt bool) {
			m := &modelEvent{at: at, seq: len(model)}
			id := m.seq
			cb := func() { fired = append(fired, id) }
			if viaAt {
				m.real = e.At(at, cb)
			} else {
				m.real = e.Schedule(at-e.Now(), cb)
			}
			model = append(model, m)
		}

		for op := 0; op < opsPerTrial; op++ {
			switch k := rng.Intn(10); {
			case k < 4: // Schedule relative to now
				schedule(e.Now()+time.Duration(rng.Intn(maxDelay)), false)
			case k < 6: // At an absolute time (>= now)
				schedule(e.Now()+time.Duration(rng.Intn(maxDelay)), true)
			case k < 8: // Cancel a random batch, including double-cancels
				if len(model) == 0 {
					continue
				}
				for i := 0; i < rng.Intn(cancelBatch); i++ {
					m := model[rng.Intn(len(model))]
					m.real.Cancel()
					if !m.fired {
						m.cancelled = true
					}
				}
			case k == 8: // Step once
				want := firingOrder(model, 1<<62)
				stepped := e.Step()
				if stepped != (len(want) > 0) {
					t.Fatalf("trial %d op %d: Step() = %v with %d live events", trial, op, stepped, len(want))
				}
				if stepped {
					m := model[want[0]]
					m.fired = true
					if len(fired) == 0 || fired[len(fired)-1] != m.seq {
						t.Fatalf("trial %d op %d: Step fired wrong event: fired tail %v, want %d", trial, op, tail(fired), m.seq)
					}
					if e.Now() != m.at {
						t.Fatalf("trial %d op %d: clock %v after firing event at %v", trial, op, e.Now(), m.at)
					}
				}
			case k == 9: // Run a bounded window
				cutoff := e.Now() + time.Duration(rng.Intn(maxRunWindow))
				want := firingOrder(model, cutoff)
				start := len(fired)
				n := e.Run(cutoff)
				if n != len(want) {
					t.Fatalf("trial %d op %d: Run(%v) executed %d events, model says %d", trial, op, cutoff, n, len(want))
				}
				got := fired[start:]
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("trial %d op %d: Run order diverged at %d: got %v, want %v", trial, op, i, got, want)
					}
					model[want[i]].fired = true
				}
				if e.Now() < cutoff {
					t.Fatalf("trial %d op %d: clock %v did not reach Run cutoff %v", trial, op, e.Now(), cutoff)
				}
			}
			if got, want := e.Pending(), livePending(model); got != want {
				t.Fatalf("trial %d op %d: Pending() = %d, model live = %d", trial, op, got, want)
			}
		}

		// Drain: everything still live must fire, in model order.
		want := firingOrder(model, 1<<62)
		start := len(fired)
		if n := e.RunAll(); n != len(want) {
			t.Fatalf("trial %d: RunAll executed %d, model says %d", trial, n, len(want))
		}
		got := fired[start:]
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: drain order diverged at %d: got %v, want %v", trial, i, got, want)
			}
		}
		if e.Pending() != 0 {
			t.Fatalf("trial %d: Pending() = %d after drain", trial, e.Pending())
		}
	}
}

func tail(xs []int) []int {
	if len(xs) > 5 {
		return xs[len(xs)-5:]
	}
	return xs
}

// TestEnginePendingConsistentAcrossCompaction drives the engine straight
// through its compaction threshold and checks Pending() from the counter
// against a ground-truth walk of the heap before and after.
func TestEnginePendingConsistentAcrossCompaction(t *testing.T) {
	e := NewEngine(1)
	var events []Timer
	for i := 0; i < 500; i++ {
		events = append(events, e.Schedule(time.Duration(i)*time.Millisecond, func() {}))
	}
	walk := func() int {
		n := 0
		for _, ev := range e.queue {
			if !ev.cancelled {
				n++
			}
		}
		return n
	}
	rng := rand.New(rand.NewSource(7))
	liveWant := 500
	for _, i := range rng.Perm(500) {
		events[i].Cancel()
		liveWant--
		if got := e.Pending(); got != liveWant {
			t.Fatalf("after %d cancels: Pending() = %d, want %d", 500-liveWant, got, liveWant)
		}
		if got := walk(); got != liveWant {
			t.Fatalf("after %d cancels: heap walk = %d live, want %d (compaction lost or kept the wrong events)", 500-liveWant, got, liveWant)
		}
	}
	if len(e.queue) != 0 && e.tombs*2 > len(e.queue) && e.tombs >= compactFloor {
		t.Fatalf("compaction never ran: %d tombstones in a %d-event heap", e.tombs, len(e.queue))
	}
}
