package sim

import (
	"testing"
	"time"
)

// TestPendingAfterMassCancel is the O(1)-Pending regression test. It
// avoids timing assertions (flaky under CI load) and instead checks the
// two structural facts the optimization rests on: the live counter is
// exact after 10k cancellations, and threshold compaction has physically
// evicted the tombstones from the heap rather than leaving Pending to
// walk them.
func TestPendingAfterMassCancel(t *testing.T) {
	const n = 10_000
	e := NewEngine(1)
	events := make([]Timer, n)
	for i := range events {
		events[i] = e.Schedule(time.Duration(i)*time.Microsecond, func() {})
	}
	if got := e.Pending(); got != n {
		t.Fatalf("Pending() = %d after scheduling %d", got, n)
	}
	keep := e.Schedule(time.Hour, func() {})
	for _, ev := range events {
		ev.Cancel()
	}
	if got := e.Pending(); got != 1 {
		t.Fatalf("Pending() = %d after cancelling %d of %d, want 1", got, n, n+1)
	}
	// Compaction must have reclaimed the tombstones: at most half the
	// remaining heap (plus the compaction floor) may be dead weight.
	if len(e.queue) > 2*e.Pending()+compactFloor {
		t.Fatalf("heap holds %d entries for %d live events — compaction did not run", len(e.queue), e.Pending())
	}
	// Double-cancel stays a no-op on the counters.
	events[0].Cancel()
	if got := e.Pending(); got != 1 {
		t.Fatalf("Pending() = %d after double-cancel, want 1", got)
	}
	// The survivor still fires at its scheduled time.
	if keep.Time() != time.Hour {
		t.Fatalf("survivor scheduled at %v, want %v", keep.Time(), time.Hour)
	}
	if !e.Step() {
		t.Fatal("Step() found no event, survivor lost in compaction")
	}
	if e.Now() != time.Hour {
		t.Fatalf("survivor fired at %v, want %v", e.Now(), time.Hour)
	}
	if got := e.Pending(); got != 0 {
		t.Fatalf("Pending() = %d after drain, want 0", got)
	}
}
