package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestScheduleOrdering(t *testing.T) {
	e := NewEngine(1)
	var got []int
	e.Schedule(30*time.Millisecond, func() { got = append(got, 3) })
	e.Schedule(10*time.Millisecond, func() { got = append(got, 1) })
	e.Schedule(20*time.Millisecond, func() { got = append(got, 2) })
	e.RunAll()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 30*time.Millisecond {
		t.Fatalf("Now = %v, want 30ms", e.Now())
	}
}

func TestTieBreakBySchedulingOrder(t *testing.T) {
	e := NewEngine(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(time.Second, func() { got = append(got, i) })
	}
	e.RunAll()
	for i, v := range got {
		if v != i {
			t.Fatalf("tie-break order = %v, want ascending", got)
		}
	}
}

func TestCancel(t *testing.T) {
	e := NewEngine(1)
	fired := false
	ev := e.Schedule(time.Second, func() { fired = true })
	ev.Cancel()
	if n := e.RunAll(); n != 0 {
		t.Fatalf("executed %d events, want 0", n)
	}
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestCancelIsIdempotent(t *testing.T) {
	e := NewEngine(1)
	ev := e.Schedule(time.Second, func() {})
	ev.Cancel()
	ev.Cancel()
	if e.Pending() != 0 {
		t.Fatalf("Pending = %d, want 0", e.Pending())
	}
}

func TestRunUntilStopsAndAdvancesClock(t *testing.T) {
	e := NewEngine(1)
	count := 0
	e.Schedule(1*time.Second, func() { count++ })
	e.Schedule(5*time.Second, func() { count++ })
	n := e.Run(2 * time.Second)
	if n != 1 || count != 1 {
		t.Fatalf("ran %d events (count %d), want 1", n, count)
	}
	if e.Now() != 2*time.Second {
		t.Fatalf("Now = %v, want 2s (clock must advance to the horizon)", e.Now())
	}
	// The 5s event must still be pending and fire on the next Run.
	n = e.Run(10 * time.Second)
	if n != 1 || count != 2 {
		t.Fatalf("second Run executed %d (count %d), want 1 more", n, count)
	}
}

func TestEventAtHorizonRuns(t *testing.T) {
	e := NewEngine(1)
	fired := false
	e.Schedule(2*time.Second, func() { fired = true })
	e.Run(2 * time.Second)
	if !fired {
		t.Fatal("event exactly at the Run horizon did not fire")
	}
}

func TestSelfReschedulingProcess(t *testing.T) {
	e := NewEngine(1)
	ticks := 0
	var tick func()
	tick = func() {
		ticks++
		e.Schedule(time.Second, tick)
	}
	e.Schedule(time.Second, tick)
	e.Run(10 * time.Second)
	if ticks != 10 {
		t.Fatalf("ticks = %d, want 10", ticks)
	}
}

func TestNestedScheduleFromCallback(t *testing.T) {
	e := NewEngine(1)
	var got []string
	e.Schedule(time.Second, func() {
		got = append(got, "outer")
		e.Schedule(time.Second, func() { got = append(got, "inner") })
	})
	e.RunAll()
	if len(got) != 2 || got[0] != "outer" || got[1] != "inner" {
		t.Fatalf("got %v", got)
	}
	if e.Now() != 2*time.Second {
		t.Fatalf("Now = %v, want 2s", e.Now())
	}
}

func TestNegativeDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative delay")
		}
	}()
	NewEngine(1).Schedule(-time.Second, func() {})
}

func TestAtBeforeNowPanics(t *testing.T) {
	e := NewEngine(1)
	e.Schedule(time.Second, func() {})
	e.RunAll()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic scheduling before now")
		}
	}()
	e.At(0, func() {})
}

func TestNilCallbackPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on nil callback")
		}
	}()
	NewEngine(1).Schedule(time.Second, nil)
}

func TestDeterministicWithSameSeed(t *testing.T) {
	run := func(seed int64) []time.Duration {
		e := NewEngine(seed)
		var log []time.Duration
		var step func()
		step = func() {
			log = append(log, e.Now())
			d := time.Duration(e.Rand().Intn(1000)+1) * time.Millisecond
			if len(log) < 50 {
				e.Schedule(d, step)
			}
		}
		e.Schedule(0, step)
		e.RunAll()
		return log
	}
	a, b := run(42), run(42)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("timeline diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// Property: for any set of non-negative delays, events fire in
// non-decreasing time order and the final clock equals the max delay.
func TestEventOrderProperty(t *testing.T) {
	prop := func(delaysMs []uint16) bool {
		e := NewEngine(7)
		var fireTimes []time.Duration
		max := time.Duration(0)
		for _, ms := range delaysMs {
			d := time.Duration(ms) * time.Millisecond
			if d > max {
				max = d
			}
			e.Schedule(d, func() { fireTimes = append(fireTimes, e.Now()) })
		}
		e.RunAll()
		if len(delaysMs) > 0 && e.Now() != max {
			return false
		}
		for i := 1; i < len(fireTimes); i++ {
			if fireTimes[i] < fireTimes[i-1] {
				return false
			}
		}
		return len(fireTimes) == len(delaysMs)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPendingCountsOnlyLive(t *testing.T) {
	e := NewEngine(1)
	a := e.Schedule(time.Second, func() {})
	e.Schedule(2*time.Second, func() {})
	a.Cancel()
	if got := e.Pending(); got != 1 {
		t.Fatalf("Pending = %d, want 1", got)
	}
}
