// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel drives every "sim mode" experiment in this repository: worker
// nodes, the rack server's CPU scheduler, and the power meter all advance on
// the engine's virtual clock. Events are callbacks ordered by (time, seq);
// ties are broken by scheduling order, which makes runs fully deterministic
// for a fixed seed.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Engine is a discrete-event simulation engine with a virtual clock.
// The zero value is not usable; create one with NewEngine.
type Engine struct {
	now     time.Duration
	queue   eventQueue
	seq     uint64
	rng     *rand.Rand
	running bool
	// live counts the not-yet-cancelled events still queued, so Pending is
	// O(1) instead of a heap walk; tombs counts cancelled events that are
	// still physically in the heap awaiting lazy removal.
	live  int
	tombs int
}

// NewEngine returns an engine whose clock starts at zero and whose random
// source is seeded with seed (so experiments are reproducible).
func NewEngine(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time (elapsed since simulation start).
func (e *Engine) Now() time.Duration { return e.now }

// Rand returns the engine's deterministic random source.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Event is a scheduled callback. It can be cancelled before it fires.
type Event struct {
	at        time.Duration
	seq       uint64
	fn        func()
	index     int // heap index; -1 once removed
	cancelled bool
	eng       *Engine
}

// Time returns the virtual time at which the event fires (or would have).
func (ev *Event) Time() time.Duration { return ev.at }

// Cancel prevents the event's callback from running. Cancelling an event
// that already fired or was already cancelled is a no-op. A cancelled
// event stays in the heap as a tombstone until it is popped or the engine
// compacts; the engine's live/tombstone counters are updated here so that
// Pending never has to walk the heap.
func (ev *Event) Cancel() {
	if ev.cancelled || ev.index < 0 {
		ev.cancelled = true
		return
	}
	ev.cancelled = true
	ev.eng.live--
	ev.eng.tombs++
	ev.eng.maybeCompact()
}

// Schedule runs fn after delay of virtual time. A negative delay panics:
// the simulation cannot travel backwards.
func (e *Engine) Schedule(delay time.Duration, fn func()) *Event {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	return e.At(e.now+delay, fn)
}

// At runs fn at absolute virtual time t (>= Now).
func (e *Engine) At(t time.Duration, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", t, e.now))
	}
	if fn == nil {
		panic("sim: nil event callback")
	}
	ev := &Event{at: t, seq: e.seq, fn: fn, eng: e}
	e.seq++
	e.live++
	heap.Push(&e.queue, ev)
	return ev
}

// Step fires the next pending event, advancing the clock to its time.
// It reports whether an event was executed (cancelled events are skipped
// and do not count as execution, but Step keeps popping until it executes
// one event or the queue drains).
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*Event)
		if ev.cancelled {
			e.tombs--
			continue
		}
		e.live--
		e.now = ev.at
		ev.fn()
		return true
	}
	return false
}

// Run executes events until the queue is empty or the clock would pass
// until. Events scheduled exactly at until still run. It returns the
// number of events executed.
func (e *Engine) Run(until time.Duration) int {
	if e.running {
		panic("sim: Run called re-entrantly from an event callback")
	}
	e.running = true
	defer func() { e.running = false }()
	n := 0
	for len(e.queue) > 0 {
		next := e.queue[0]
		if next.cancelled {
			heap.Pop(&e.queue)
			e.tombs--
			continue
		}
		if next.at > until {
			break
		}
		heap.Pop(&e.queue)
		e.live--
		e.now = next.at
		next.fn()
		n++
	}
	// Even if no event lands exactly at until, the clock advances to it so
	// that meters integrating "up to now" cover the whole interval.
	if e.now < until {
		e.now = until
	}
	return n
}

// RunAll executes events until the queue drains and returns the count.
// Use with care: self-rescheduling processes make this run forever.
func (e *Engine) RunAll() int {
	n := 0
	for e.Step() {
		n++
	}
	return n
}

// Pending returns the number of not-yet-cancelled events in the queue.
// It is O(1): the engine keeps a live count instead of walking the heap.
func (e *Engine) Pending() int { return e.live }

// compactFloor is the minimum number of tombstones before compaction is
// considered: below it, lazy pop-time removal is already cheap, and
// compacting tiny queues would thrash.
const compactFloor = 32

// maybeCompact rebuilds the heap without its cancelled events once they
// outnumber the live ones (tombstones exceed half the queue). Cancel-heavy
// workloads — keep-warm expiries, deadline timers that rarely fire — would
// otherwise grow the heap with corpses that every push/pop still pays
// log-time for. Amortized cost is O(1) per cancellation.
func (e *Engine) maybeCompact() {
	if e.tombs < compactFloor || e.tombs*2 <= len(e.queue) {
		return
	}
	kept := 0
	for _, ev := range e.queue {
		if ev.cancelled {
			ev.index = -1
			continue
		}
		e.queue[kept] = ev
		ev.index = kept
		kept++
	}
	for i := kept; i < len(e.queue); i++ {
		e.queue[i] = nil
	}
	e.queue = e.queue[:kept]
	heap.Init(&e.queue)
	e.tombs = 0
}

// eventQueue is a min-heap ordered by (time, sequence number).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}
