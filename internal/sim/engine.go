// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel drives every "sim mode" experiment in this repository: worker
// nodes, the rack server's CPU scheduler, and the power meter all advance on
// the engine's virtual clock. Events are callbacks ordered by (time, seq);
// ties are broken by scheduling order, which makes runs fully deterministic
// for a fixed seed.
//
// The event queue is allocation-free in steady state: fired and cancelled
// event nodes are recycled through an engine-local free list (the engine is
// single-threaded by construction, so no locking is needed), and the heap
// is a hand-rolled typed binary heap over a flat node slice — no
// container/heap interface dispatch on the hot path. Callers hold events
// through the generation-checked Timer handle, so a stale handle to a
// recycled node can never cancel the wrong event.
package sim

import (
	"fmt"
	"math/rand"
	"time"
)

// Engine is a discrete-event simulation engine with a virtual clock.
// The zero value is not usable; create one with NewEngine.
type Engine struct {
	now     time.Duration
	queue   []*event // typed binary min-heap by (at, seq)
	seq     uint64
	rng     *rand.Rand
	running bool
	// live counts the not-yet-cancelled events still queued, so Pending is
	// O(1) instead of a heap walk; tombs counts cancelled events that are
	// still physically in the heap awaiting lazy removal.
	live  int
	tombs int
	// free heads the recycled-node list. Nodes come off it on Schedule/At
	// and go back when they fire, are popped as tombstones, or are evicted
	// by compaction, so a steady-state simulation stops allocating event
	// nodes entirely.
	free *event
}

// NewEngine returns an engine whose clock starts at zero and whose random
// source is seeded with seed (so experiments are reproducible).
func NewEngine(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time (elapsed since simulation start).
func (e *Engine) Now() time.Duration { return e.now }

// Rand returns the engine's deterministic random source.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// event is a scheduled callback node. Nodes are owned by the engine and
// recycled through its free list; external code refers to them only via
// the generation-checked Timer handle.
type event struct {
	at        time.Duration
	seq       uint64
	fn        func()
	index     int // heap index; -1 once removed
	cancelled bool
	// gen increments every time the node is recycled; a Timer whose
	// generation no longer matches refers to an earlier life of the node
	// and all its operations become no-ops.
	gen  uint64
	next *event // free-list link (meaningful only while recycled)
}

// Timer is a cancellable handle to a scheduled event. The zero Timer is
// valid and inert: Cancel is a no-op and Time reports zero. Timers are
// values — copy them freely. A Timer outliving its event (already fired,
// cancelled, or the engine recycled the node for a new event) is harmless:
// the generation check turns every operation on it into a no-op.
type Timer struct {
	eng *Engine
	ev  *event
	gen uint64
}

// Time returns the virtual time at which the event fires (or would have).
// Zero once the event has fired and its node moved on.
func (t Timer) Time() time.Duration {
	if t.ev == nil || t.ev.gen != t.gen {
		return 0
	}
	return t.ev.at
}

// Cancel prevents the event's callback from running. Cancelling an event
// that already fired or was already cancelled is a no-op. A cancelled
// event stays in the heap as a tombstone until it is popped or the engine
// compacts; the engine's live/tombstone counters are updated here so that
// Pending never has to walk the heap.
func (t Timer) Cancel() {
	ev := t.ev
	if ev == nil || ev.gen != t.gen || ev.cancelled {
		return
	}
	ev.cancelled = true
	ev.fn = nil
	t.eng.live--
	t.eng.tombs++
	t.eng.maybeCompact()
}

// getNode pops a recycled node or allocates a fresh one.
func (e *Engine) getNode() *event {
	if ev := e.free; ev != nil {
		e.free = ev.next
		ev.next = nil
		return ev
	}
	return &event{}
}

// putNode recycles a node: its generation moves on (orphaning any
// outstanding Timer handles) and it joins the free list.
func (e *Engine) putNode(ev *event) {
	ev.gen++
	ev.fn = nil
	ev.cancelled = false
	ev.index = -1
	ev.next = e.free
	e.free = ev
}

// Schedule runs fn after delay of virtual time. A negative delay panics:
// the simulation cannot travel backwards.
func (e *Engine) Schedule(delay time.Duration, fn func()) Timer {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	return e.At(e.now+delay, fn)
}

// At runs fn at absolute virtual time t (>= Now).
func (e *Engine) At(t time.Duration, fn func()) Timer {
	if t < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", t, e.now))
	}
	if fn == nil {
		panic("sim: nil event callback")
	}
	ev := e.getNode()
	ev.at = t
	ev.seq = e.seq
	ev.fn = fn
	e.seq++
	e.live++
	e.heapPush(ev)
	return Timer{eng: e, ev: ev, gen: ev.gen}
}

// Step fires the next pending event, advancing the clock to its time.
// It reports whether an event was executed (cancelled events are skipped
// and do not count as execution, but Step keeps popping until it executes
// one event or the queue drains).
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		ev := e.heapPop()
		if ev.cancelled {
			e.tombs--
			e.putNode(ev)
			continue
		}
		e.live--
		e.now = ev.at
		fn := ev.fn
		// Recycle before running: fn may schedule new events, and the node
		// is free to carry one of them (any Timer to this firing is already
		// orphaned by the generation bump).
		e.putNode(ev)
		fn()
		return true
	}
	return false
}

// Run executes events until the queue is empty or the clock would pass
// until. Events scheduled exactly at until still run. It returns the
// number of events executed.
func (e *Engine) Run(until time.Duration) int {
	if e.running {
		panic("sim: Run called re-entrantly from an event callback")
	}
	e.running = true
	defer func() { e.running = false }()
	n := 0
	for len(e.queue) > 0 {
		next := e.queue[0]
		if next.cancelled {
			e.heapPop()
			e.tombs--
			e.putNode(next)
			continue
		}
		if next.at > until {
			break
		}
		e.heapPop()
		e.live--
		e.now = next.at
		fn := next.fn
		e.putNode(next)
		fn()
		n++
	}
	// Even if no event lands exactly at until, the clock advances to it so
	// that meters integrating "up to now" cover the whole interval.
	if e.now < until {
		e.now = until
	}
	return n
}

// RunAll executes events until the queue drains and returns the count.
// Use with care: self-rescheduling processes make this run forever.
func (e *Engine) RunAll() int {
	n := 0
	for e.Step() {
		n++
	}
	return n
}

// Pending returns the number of not-yet-cancelled events in the queue.
// It is O(1): the engine keeps a live count instead of walking the heap.
func (e *Engine) Pending() int { return e.live }

// compactFloor is the minimum number of tombstones before compaction is
// considered: below it, lazy pop-time removal is already cheap, and
// compacting tiny queues would thrash.
const compactFloor = 32

// maybeCompact rebuilds the heap without its cancelled events once they
// outnumber the live ones (tombstones exceed half the queue). Cancel-heavy
// workloads — keep-warm expiries, deadline timers that rarely fire — would
// otherwise grow the heap with corpses that every push/pop still pays
// log-time for. Amortized cost is O(1) per cancellation.
func (e *Engine) maybeCompact() {
	if e.tombs < compactFloor || e.tombs*2 <= len(e.queue) {
		return
	}
	kept := 0
	for _, ev := range e.queue {
		if ev.cancelled {
			e.putNode(ev)
			continue
		}
		e.queue[kept] = ev
		ev.index = kept
		kept++
	}
	for i := kept; i < len(e.queue); i++ {
		e.queue[i] = nil
	}
	e.queue = e.queue[:kept]
	e.heapInit()
	e.tombs = 0
}

// eventLess orders the heap by (time, sequence number).
func eventLess(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// heapPush appends ev and restores the heap invariant.
func (e *Engine) heapPush(ev *event) {
	ev.index = len(e.queue)
	e.queue = append(e.queue, ev)
	e.siftUp(ev.index)
}

// heapPop removes and returns the minimum (time, seq) event.
func (e *Engine) heapPop() *event {
	q := e.queue
	root := q[0]
	last := len(q) - 1
	q[0] = q[last]
	q[0].index = 0
	q[last] = nil
	e.queue = q[:last]
	if last > 0 {
		e.siftDown(0)
	}
	root.index = -1
	return root
}

// heapInit re-establishes the heap invariant over the whole slice
// (after compaction).
func (e *Engine) heapInit() {
	for i := len(e.queue)/2 - 1; i >= 0; i-- {
		e.siftDown(i)
	}
}

func (e *Engine) siftUp(i int) {
	q := e.queue
	ev := q[i]
	for i > 0 {
		parent := (i - 1) / 2
		if !eventLess(ev, q[parent]) {
			break
		}
		q[i] = q[parent]
		q[i].index = i
		i = parent
	}
	q[i] = ev
	ev.index = i
}

func (e *Engine) siftDown(i int) {
	q := e.queue
	n := len(q)
	ev := q[i]
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		least := left
		if right := left + 1; right < n && eventLess(q[right], q[left]) {
			least = right
		}
		if !eventLess(q[least], ev) {
			break
		}
		q[i] = q[least]
		q[i].index = i
		i = least
	}
	q[i] = ev
	ev.index = i
}
