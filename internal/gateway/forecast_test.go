package gateway

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"microfaas/internal/cluster"
	"microfaas/internal/core"
	"microfaas/internal/forecast"
	"microfaas/internal/telemetry"
	"microfaas/internal/tsdb"
)

// startForecastGateway boots a live cluster whose gateway carries an
// observe-only forecast controller fed by a hand-driven store.
func startForecastGateway(t *testing.T) (base string, ctl *forecast.Controller, sub *telemetry.Counter, store *tsdb.Store) {
	t.Helper()
	l, err := cluster.StartLive(cluster.LiveOptions{Workers: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(l.Close)
	tel := telemetry.New()
	sub = tel.Registry().Counter(tsdb.MetricSubmittedByFunction, "submissions", "function", "f")
	store = tsdb.New(tsdb.Config{})
	store.AddSource("", tel.Registry())
	ctl, err = forecast.NewController(forecast.ControllerConfig{
		Store:  store,
		Policy: forecast.Policy{Tick: time.Second, Horizon: time.Second, CycleTime: time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	gw, err := NewWithOptions(l.Orch, Options{Timeout: 30 * time.Second, Forecast: ctl})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := gw.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { gw.Close() })
	return "http://" + addr, ctl, sub, store
}

func TestForecastEndpoint(t *testing.T) {
	base, ctl, sub, store := startForecastGateway(t)
	for i := 1; i <= 10; i++ {
		sub.Add(2)
		at := time.Duration(i) * time.Second
		store.Scrape(at)
		ctl.Tick(at)
	}
	resp, err := http.Get(base + "/forecast")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /forecast → %d", resp.StatusCode)
	}
	var snap forecast.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Mode != "predictive" || snap.Ticks != 10 {
		t.Fatalf("snapshot = %+v, want predictive mode after 10 ticks", snap)
	}
	if len(snap.Functions) != 1 || snap.Functions[0].Function != "f" {
		t.Fatalf("snapshot functions = %+v, want [f]", snap.Functions)
	}
}

func TestForecastEndpointDisabled(t *testing.T) {
	base, _ := startGateway(t)
	resp, err := http.Get(base + "/forecast")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /forecast without a controller → %d, want 404", resp.StatusCode)
	}
}

func TestBudgetsEndpoint(t *testing.T) {
	base, _ := startGateway(t)
	// No budgets yet: an empty (but valid JSON) list.
	resp, err := http.Get(base + "/budgets")
	if err != nil {
		t.Fatal(err)
	}
	var rows []core.BudgetStatus
	if err := json.NewDecoder(resp.Body).Decode(&rows); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(rows) != 0 {
		t.Fatalf("initial budgets = %+v, want none", rows)
	}
	// Install one budget and read it back from the POST reply.
	resp, err = http.Post(base+"/budgets", "application/json",
		bytes.NewReader([]byte(`{"function":"CascSHA","limit_j":12.5}`)))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&rows); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(rows) != 1 || rows[0].Function != "CascSHA" || rows[0].LimitJoules != 12.5 || rows[0].Exhausted {
		t.Fatalf("budgets after POST = %+v", rows)
	}
	// Removing (limit <= 0) empties the list again.
	resp, err = http.Post(base+"/budgets", "application/json",
		bytes.NewReader([]byte(`{"function":"CascSHA","limit_j":0}`)))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&rows); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(rows) != 0 {
		t.Fatalf("budgets after removal = %+v, want none", rows)
	}
	// A POST without a function name is rejected.
	resp, err = http.Post(base+"/budgets", "application/json",
		bytes.NewReader([]byte(`{"limit_j":5}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("POST /budgets without function → %d, want 400", resp.StatusCode)
	}
}
