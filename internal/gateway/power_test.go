package gateway

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"microfaas/internal/cluster"
	"microfaas/internal/powermgr"
)

// startManagedGateway boots a power-managed live cluster with a gateway in
// front of it.
func startManagedGateway(t *testing.T) (base string, l *cluster.Live) {
	t.Helper()
	l, err := cluster.StartLive(cluster.LiveOptions{
		Workers: 2,
		Seed:    9,
		Power:   &powermgr.Policy{IdleTimeout: time.Minute},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(l.Close)
	gw, err := New(l.Orch, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := gw.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { gw.Close() })
	return "http://" + addr, l
}

func getPower(t *testing.T, base string) (int, powermgr.Status) {
	t.Helper()
	resp, err := http.Get(base + "/power")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st powermgr.Status
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode, st
}

func TestPowerEndpoint(t *testing.T) {
	base, _ := startManagedGateway(t)
	code, st := getPower(t, base)
	if code != http.StatusOK {
		t.Fatalf("GET /power → %d", code)
	}
	if st.Total != 2 || len(st.Nodes) != 2 {
		t.Fatalf("snapshot = %+v, want 2 nodes", st)
	}
	// The managed cluster starts fully power-gated.
	if st.Powered != 0 {
		t.Fatalf("powered at start = %d, want 0", st.Powered)
	}
	// An invocation wakes a worker; the snapshot must reflect it.
	resp, out := postInvoke(t, base, `{"function":"CascSHA","args":{"rounds":3,"seed":"pm"}}`)
	if resp.StatusCode != http.StatusOK || out.Error != "" {
		t.Fatalf("invoke on managed cluster: status %d, %+v", resp.StatusCode, out)
	}
	if _, st = getPower(t, base); st.Powered == 0 {
		t.Fatalf("no worker powered after an invocation: %+v", st)
	}
}

func TestPowerCapEndpoint(t *testing.T) {
	base, _ := startManagedGateway(t)
	body := bytes.NewReader([]byte(`{"cap_w":3.92}`))
	resp, err := http.Post(base+"/power/cap", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /power/cap → %d", resp.StatusCode)
	}
	var st powermgr.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.CapW != 3.92 || st.MaxPowered != 2 {
		t.Fatalf("snapshot after cap = %+v, want CapW 3.92 MaxPowered 2", st)
	}
	// Negative caps are rejected.
	resp2, err := http.Post(base+"/power/cap", "application/json",
		bytes.NewReader([]byte(`{"cap_w":-1}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("negative cap → %d, want 400", resp2.StatusCode)
	}
	// So is a GET on the cap endpoint.
	resp3, err := http.Get(base + "/power/cap")
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /power/cap → %d, want 405", resp3.StatusCode)
	}
}

func TestPowerEndpointDisabled(t *testing.T) {
	// A cluster with the static power policy has no manager: 404.
	base, _ := startGateway(t)
	if code, _ := getPower(t, base); code != http.StatusNotFound {
		t.Fatalf("GET /power on unmanaged cluster → %d, want 404", code)
	}
}
