package gateway

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"microfaas/internal/cluster"
	"microfaas/internal/telemetry"
	"microfaas/internal/tracing"
)

// startTracedSimGateway runs a seeded MicroFaaS sim with tracing on and
// serves its orchestrator through a gateway — the deterministic fixture
// the /traces tests read back.
func startTracedSimGateway(t *testing.T) (base string, tr *tracing.Tracer) {
	t.Helper()
	tr = tracing.New()
	s, err := cluster.NewMicroFaaSSim(4, cluster.SimConfig{Seed: 7, Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.RunSuite(1, nil); err != nil {
		t.Fatal(err)
	}
	gw, err := NewWithOptions(s.Orch, Options{Mode: "sim", Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(gw.Handler())
	t.Cleanup(srv.Close)
	return srv.URL, tr
}

func getJSON(t *testing.T, url string, v interface{}) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp
}

func TestTracesEndpoint(t *testing.T) {
	base, tr := startTracedSimGateway(t)
	var out TracesResponse
	if resp := getJSON(t, base+"/traces", &out); resp.StatusCode != http.StatusOK {
		t.Fatalf("traces → %d", resp.StatusCode)
	}
	if len(out.Traces) != tr.Len() {
		t.Fatalf("listed %d traces, tracer holds %d", len(out.Traces), tr.Len())
	}
	if out.Stats.Committed != tr.Len() {
		t.Fatalf("stats = %+v", out.Stats)
	}
	for _, sum := range out.Traces {
		if sum.Trace == "" || sum.Function == "" || sum.LatencyMs <= 0 || len(sum.Phases) == 0 {
			t.Fatalf("malformed summary %+v", sum)
		}
		var phaseMs float64
		for _, p := range sum.Phases {
			phaseMs += p.DurationMs
		}
		// Wire units are float ms; allow float slop only.
		if diff := phaseMs + sum.UnattributedMs - sum.LatencyMs; diff > 1e-6 || diff < -1e-6 {
			t.Fatalf("job %d: phases %.6f + unattributed %.6f != latency %.6f",
				sum.Job, phaseMs, sum.UnattributedMs, sum.LatencyMs)
		}
	}

	// ?job=N returns exactly that job's trace.
	job := out.Traces[0].Job
	var one TracesResponse
	getJSON(t, base+"/traces?job="+itoa(job), &one)
	if len(one.Traces) != 1 || one.Traces[0].Job != job {
		t.Fatalf("?job=%d → %+v", job, one.Traces)
	}

	// ?slowest=2 returns two traces in descending latency order.
	var slow TracesResponse
	getJSON(t, base+"/traces?slowest=2", &slow)
	if len(slow.Traces) != 2 || slow.Traces[0].LatencyMs < slow.Traces[1].LatencyMs {
		t.Fatalf("?slowest=2 → %+v", slow.Traces)
	}

	// ?limit=1 caps the default listing at the newest trace.
	var lim TracesResponse
	getJSON(t, base+"/traces?limit=1", &lim)
	if len(lim.Traces) != 1 {
		t.Fatalf("?limit=1 → %d traces", len(lim.Traces))
	}

	// Bad parameters are 400s.
	for _, q := range []string{"?job=abc", "?slowest=0", "?limit=-1", "?format=yaml"} {
		if resp := getJSON(t, base+"/traces"+q, nil); resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s → %d, want 400", q, resp.StatusCode)
		}
	}
}

func TestTracesExportFormats(t *testing.T) {
	base, _ := startTracedSimGateway(t)
	resp, err := http.Get(base + "/traces?format=chrome")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc struct {
		TraceEvents     []json.RawMessage `json:"traceEvents"`
		DisplayTimeUnit string            `json:"displayTimeUnit"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("chrome export does not parse: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" || len(doc.TraceEvents) == 0 {
		t.Fatalf("chrome export shape: unit=%q events=%d", doc.DisplayTimeUnit, len(doc.TraceEvents))
	}

	resp2, err := http.Get(base + "/traces?format=ndjson&slowest=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if ct := resp2.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("ndjson content type %q", ct)
	}
	body, _ := io.ReadAll(resp2.Body)
	lines := strings.Split(strings.TrimSpace(string(body)), "\n")
	if len(lines) < 2 {
		t.Fatalf("ndjson dump has %d lines", len(lines))
	}
	for _, ln := range lines {
		if !json.Valid([]byte(ln)) {
			t.Fatalf("bad ndjson line: %s", ln)
		}
	}
}

func TestTraceByID(t *testing.T) {
	base, tr := startTracedSimGateway(t)
	want := tr.Traces()[0]
	var out TraceResponse
	if resp := getJSON(t, base+"/traces/"+want.ID.String(), &out); resp.StatusCode != http.StatusOK {
		t.Fatalf("trace by id → %d", resp.StatusCode)
	}
	if out.Trace != want.ID.String() || out.Job != want.Root.Job {
		t.Fatalf("got %+v, want trace %v job %d", out.TraceSummary, want.ID, want.Root.Job)
	}
	// Root plus every child span, root first.
	if len(out.Spans) != len(want.Spans)+1 {
		t.Fatalf("spans = %d, want %d", len(out.Spans), len(want.Spans)+1)
	}
	if out.Spans[0].Phase != string(tracing.PhaseInvocation) {
		t.Fatalf("first span is %q, want the root", out.Spans[0].Phase)
	}
	for _, sp := range out.Spans[1:] {
		if sp.Parent == "" || sp.ID == "" {
			t.Fatalf("child span missing ids: %+v", sp)
		}
	}

	if resp := getJSON(t, base+"/traces/zzzz", nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad id → %d, want 400", resp.StatusCode)
	}
	if resp := getJSON(t, base+"/traces/ffffffffffffffff", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown id → %d, want 404", resp.StatusCode)
	}
}

func TestTracesDisabled(t *testing.T) {
	base, _ := startGateway(t)
	for _, path := range []string{"/traces", "/traces/0000000000000001"} {
		if resp := getJSON(t, base+path, nil); resp.StatusCode != http.StatusNotFound {
			t.Fatalf("%s on untraced gateway → %d, want 404", path, resp.StatusCode)
		}
	}
}

// TestEventsEmptyPageIsArray locks the /events JSON shape: an empty page
// must serialize as "events":[] (never null), with last_seq -1 and
// dropped 0 before any event exists.
func TestEventsEmptyPageIsArray(t *testing.T) {
	base, _ := startTelemetryGateway(t)
	resp, err := http.Get(base + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), `"events":[]`) {
		t.Fatalf("empty page did not serialize as []: %s", body)
	}
	var out EventsResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.LastSeq != -1 || out.Dropped != 0 || out.Events == nil || len(out.Events) != 0 {
		t.Fatalf("empty page = %+v", out)
	}
}

// TestEventsRingOverwritePaging drives more events through a tiny ring
// than it can hold, then pages via ?since= and checks the dropped count
// reports exactly the overwritten events.
func TestEventsRingOverwritePaging(t *testing.T) {
	tel := telemetry.NewWithConfig(telemetry.Config{EventCapacity: 4})
	l, err := cluster.StartLive(cluster.LiveOptions{Workers: 1, Seed: 9, Telemetry: tel})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(l.Close)
	gw, err := NewWithOptions(l.Orch, Options{Timeout: 30 * time.Second, Telemetry: tel})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(gw.Handler())
	t.Cleanup(srv.Close)
	base := srv.URL

	// One invocation emits a full lifecycle (6+ events) — more than the
	// 4-slot ring retains.
	if _, out := postInvoke(t, base, `{"function":"CascSHA","args":{"rounds":3,"seed":"ring"}}`); out.Error != "" {
		t.Fatalf("invoke: %+v", out)
	}
	total := tel.Events().LastSeq() + 1
	if total <= 4 {
		t.Fatalf("only %d events; ring never overwrote", total)
	}

	// A poller that saw nothing (since=-1 default) gets the 4 survivors
	// and an exact loss count for the rest.
	var page EventsResponse
	getJSON(t, base+"/events", &page)
	if len(page.Events) != 4 {
		t.Fatalf("page = %d events, want the ring's 4", len(page.Events))
	}
	if page.Dropped != total-4 {
		t.Fatalf("dropped = %d, want %d", page.Dropped, total-4)
	}
	if page.Events[0].Seq != total-4 || page.LastSeq != total-1 {
		t.Fatalf("page window [%d..%d], want [%d..%d]",
			page.Events[0].Seq, page.LastSeq, total-4, total-1)
	}

	// A poller current through seq N−5 lost exactly the one event below
	// the ring's oldest survivor.
	var part EventsResponse
	getJSON(t, base+"/events?since="+itoa(total-6), &part)
	if part.Dropped != 1 || len(part.Events) != 4 {
		t.Fatalf("partial page: dropped=%d events=%d, want 1/4", part.Dropped, len(part.Events))
	}

	// A fully caught-up poller loses nothing and gets nothing.
	var tail EventsResponse
	getJSON(t, base+"/events?since="+itoa(total-1), &tail)
	if tail.Dropped != 0 || len(tail.Events) != 0 {
		t.Fatalf("caught-up page: %+v", tail)
	}
}

func TestPprofMounting(t *testing.T) {
	l, err := cluster.StartLive(cluster.LiveOptions{Workers: 1, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(l.Close)

	on, err := NewWithOptions(l.Orch, Options{EnablePprof: true})
	if err != nil {
		t.Fatal(err)
	}
	srvOn := httptest.NewServer(on.Handler())
	t.Cleanup(srvOn.Close)
	if resp := getJSON(t, srvOn.URL+"/debug/pprof/", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof index with -pprof → %d", resp.StatusCode)
	}
	if resp := getJSON(t, srvOn.URL+"/debug/pprof/cmdline", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof cmdline with -pprof → %d", resp.StatusCode)
	}

	off, err := NewWithOptions(l.Orch, Options{})
	if err != nil {
		t.Fatal(err)
	}
	srvOff := httptest.NewServer(off.Handler())
	t.Cleanup(srvOff.Close)
	if resp := getJSON(t, srvOff.URL+"/debug/pprof/", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof index without -pprof → %d, want 404", resp.StatusCode)
	}
}

// itoa formats an int64 for URL query building.
func itoa(n int64) string { return strconv.FormatInt(n, 10) }
