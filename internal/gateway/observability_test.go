package gateway

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"microfaas/internal/cluster"
	"microfaas/internal/shard"
	"microfaas/internal/telemetry"
	"microfaas/internal/tsdb"
)

// startObservedShardedGateway boots two live shards (tiny event rings so
// overwrite paths are reachable), fronts them with a sharded gateway, and
// attaches a time-series store scraping both shard registries. The store
// is scraped manually — tests control the clock.
func startObservedShardedGateway(t *testing.T, eventCap int) (base string, plane *shard.Plane, store *tsdb.Store, tels []*telemetry.Telemetry) {
	t.Helper()
	labels := []string{"shard-00", "shard-01"}
	lives := make([]*cluster.Live, 2)
	tels = make([]*telemetry.Telemetry, 2)
	for i := range lives {
		tels[i] = telemetry.NewWithConfig(telemetry.Config{EventCapacity: eventCap})
		l, err := cluster.StartLive(cluster.LiveOptions{
			Workers:    2,
			Seed:       int64(11 + i),
			Telemetry:  tels[i],
			ShardLabel: labels[i],
			JobIDBase:  int64(i) << 40,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(l.Close)
		lives[i] = l
	}
	plane, err := shard.NewPlane(lives[0].Runtime, orchestrators(lives), shard.Config{})
	if err != nil {
		t.Fatal(err)
	}
	store = tsdb.New(tsdb.Config{})
	for i, tel := range tels {
		store.AddSource(labels[i], tel.Registry())
	}
	gw, err := NewSharded(plane, Options{Timeout: 30 * time.Second, Mode: "live", TSDB: store})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := gw.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { gw.Close() })
	return "http://" + addr, plane, store, tels
}

func TestQueryEndpointMergesShards(t *testing.T) {
	base, _, store, _ := startObservedShardedGateway(t, 0)

	// Baseline scrape, traffic, follow-up scrape: the counter increase
	// across the window is exactly the invocations driven in between.
	store.Scrape(time.Second)
	for _, key := range []string{"u/1", "u/2", "u/3", "u/4"} {
		body := `{"function":"CascSHA","args":{"rounds":3,"seed":"q"},"key":"` + key + `"}`
		if resp, out := postInvoke(t, base, body); resp.StatusCode != http.StatusOK || out.Error != "" {
			t.Fatalf("invoke %s: status %d, %+v", key, resp.StatusCode, out)
		}
	}
	store.Scrape(2 * time.Second)

	var q QueryResponse
	getJSON(t, base+"/query?metric=microfaas_jobs_submitted_total&op=increase&window=1m", &q)
	if q.Metric != "microfaas_jobs_submitted_total" || q.Op != "increase" {
		t.Fatalf("echo = %+v", q)
	}
	total := 0.0
	shardsSeen := map[string]bool{}
	for _, sr := range q.Series {
		total += sr.Value
		shardsSeen[sr.Labels["shard"]] = true
	}
	if total != 4 {
		t.Fatalf("summed increase = %g, want 4 (series %+v)", total, q.Series)
	}
	if !shardsSeen["shard-00"] || !shardsSeen["shard-01"] {
		t.Fatalf("merged view missing a shard label: %+v", q.Series)
	}

	// A label matcher narrows to one shard's series.
	var one QueryResponse
	getJSON(t, base+"/query?metric=microfaas_jobs_submitted_total&label=shard=shard-00", &one)
	if len(one.Series) == 0 {
		t.Fatalf("no series for shard-00")
	}
	for _, sr := range one.Series {
		if sr.Labels["shard"] != "shard-00" {
			t.Fatalf("matcher leaked foreign series: %+v", sr)
		}
	}
	if one.Op != string(tsdb.OpLast) {
		t.Fatalf("default op = %q, want last", one.Op)
	}

	// NDJSON export streams raw samples, one JSON object per line.
	resp, err := http.Get(base + "/query?metric=microfaas_jobs_submitted_total&format=ndjson&window=1m")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("ndjson content type = %q", ct)
	}
	lines := 0
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if strings.TrimSpace(sc.Text()) == "" {
			continue
		}
		var sample map[string]interface{}
		if err := json.Unmarshal(sc.Bytes(), &sample); err != nil {
			t.Fatalf("ndjson line %q: %v", sc.Text(), err)
		}
		lines++
	}
	if lines < 2 {
		t.Fatalf("ndjson export returned %d samples, want at least one per scrape", lines)
	}

	// Malformed queries are 400s, not panics or empty 200s.
	for _, bad := range []string{
		"/query?metric=depth&window=abc",
		"/query?metric=depth&op=quantile&q=nope",
		"/query?metric=depth&label=nokey",
		"/query?metric=depth&op=median",
		"/query?op=last", // metric missing
	} {
		resp, err := http.Get(base + bad)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", bad, resp.StatusCode)
		}
	}
}

func TestSLOAndAlertsEndpoints(t *testing.T) {
	l, err := cluster.StartLive(cluster.LiveOptions{Workers: 1, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(l.Close)

	// The store scrapes a hand-driven registry so the burn trajectory is
	// exact: healthy traffic first, then a total outage.
	reg := telemetry.NewRegistry()
	okC := reg.Counter(tsdb.DefaultErrorMetric, "outcomes", "function", "f", "result", "ok")
	errC := reg.Counter(tsdb.DefaultErrorMetric, "outcomes", "function", "f", "result", "error")
	store := tsdb.New(tsdb.Config{})
	store.AddSource("", reg)
	rule := tsdb.Rule{
		Name: "errors", Kind: tsdb.KindErrorRatio, Function: "f", Target: 0.9,
		Windows: &tsdb.Windows{
			FastShort: tsdb.Duration(2 * time.Second), FastLong: tsdb.Duration(4 * time.Second), FastBurn: 2,
			SlowShort: tsdb.Duration(4 * time.Second), SlowLong: tsdb.Duration(8 * time.Second), SlowBurn: 2,
		},
	}
	if err := store.SetRules([]tsdb.Rule{rule}); err != nil {
		t.Fatal(err)
	}
	gw, err := NewWithOptions(l.Orch, Options{Timeout: 30 * time.Second, TSDB: store})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(gw.Handler())
	t.Cleanup(srv.Close)
	base := srv.URL

	now := time.Duration(0)
	step := func(ok, errs int) {
		okC.Add(float64(ok))
		errC.Add(float64(errs))
		now += time.Second
		store.Scrape(now)
	}
	for i := 0; i < 6; i++ {
		step(100, 0)
	}

	// Healthy: /slo reports the rule with both pages quiet; /alerts is
	// empty but well-formed ([] not null).
	var status []tsdb.RuleStatus
	getJSON(t, base+"/slo", &status)
	if len(status) != 1 || status[0].Rule.Name != "errors" || len(status[0].Pages) != 2 {
		t.Fatalf("slo status = %+v", status)
	}
	for _, p := range status[0].Pages {
		if p.Firing {
			t.Fatalf("page %s firing while healthy: %+v", p.Page, p)
		}
	}
	var quiet AlertsResponse
	getJSON(t, base+"/alerts", &quiet)
	if len(quiet.Active) != 0 || quiet.History == nil || len(quiet.History) != 0 {
		t.Fatalf("alerts while healthy = %+v", quiet)
	}

	// Outage: every request errors → burn 10 ≫ 2 on all windows.
	for i := 0; i < 6; i++ {
		step(0, 100)
	}
	var firing AlertsResponse
	getJSON(t, base+"/alerts", &firing)
	if len(firing.Active) == 0 {
		t.Fatal("no active alerts during total outage")
	}
	for _, a := range firing.Active {
		if a.Rule != "errors" || (a.Page != "fast" && a.Page != "slow") {
			t.Fatalf("active alert = %+v", a)
		}
		if a.ShortBurn < a.Threshold || a.LongBurn < a.Threshold {
			t.Fatalf("firing page below threshold: %+v", a)
		}
	}
	if len(firing.History) == 0 || firing.History[0].Type != telemetry.EventAlertFiring {
		t.Fatalf("history = %+v", firing.History)
	}
	getJSON(t, base+"/slo", &status)
	anyFiring := false
	for _, p := range status[0].Pages {
		anyFiring = anyFiring || p.Firing
	}
	if !anyFiring {
		t.Fatalf("slo status shows no firing page during outage: %+v", status)
	}
}

func TestObservabilityEndpointsDisabledWithoutStore(t *testing.T) {
	l, err := cluster.StartLive(cluster.LiveOptions{Workers: 1, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(l.Close)
	gw, err := NewWithOptions(l.Orch, Options{Timeout: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(gw.Handler())
	t.Cleanup(srv.Close)
	for _, path := range []string{"/query?metric=x", "/slo", "/alerts"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("%s without a store: status %d, want 404", path, resp.StatusCode)
		}
	}
}

// shardKeys finds one routing key per shard so a test can aim traffic.
func shardKeys(t *testing.T, plane *shard.Plane) []string {
	t.Helper()
	keys := make([]string, 2)
	found := 0
	for i := 0; i < 64 && found < 2; i++ {
		key := "u/" + itoa(int64(i))
		si := plane.ShardFor(key)
		if si >= 0 && si < 2 && keys[si] == "" {
			keys[si] = key
			found++
		}
	}
	if found != 2 {
		t.Fatal("could not find keys covering both shards")
	}
	return keys
}

// TestShardedEventsRingOverwritePaging drives each shard's tiny event
// ring past capacity, then checks the merged /events page: survivors
// only, loss accounted as the sum of every shard's overwrite gap, and a
// vector cursor that resumes exactly — including a cursor taken before
// the overwrite happened.
func TestShardedEventsRingOverwritePaging(t *testing.T) {
	base, plane, _, tels := startObservedShardedGateway(t, 4)
	keys := shardKeys(t, plane)

	// One invocation emits a full lifecycle (6+ events), overflowing a
	// 4-slot ring; drive one through each shard.
	for _, key := range keys {
		body := `{"function":"CascSHA","args":{"rounds":3,"seed":"ev"},"key":"` + key + `"}`
		if resp, out := postInvoke(t, base, body); resp.StatusCode != http.StatusOK || out.Error != "" {
			t.Fatalf("invoke %s: status %d, %+v", key, resp.StatusCode, out)
		}
	}
	var survivors int
	var wantDropped int64
	for i, tel := range tels {
		evs, gap, _ := tel.Events().Page(-1, 4096)
		if gap == 0 {
			t.Fatalf("shard %d ring never overwrote (%d events)", i, len(evs))
		}
		survivors += len(evs)
		wantDropped += gap
	}

	// A fresh poller gets every survivor, the exact merged loss, and a
	// per-shard cursor.
	var page ShardedEventsResponse
	getJSON(t, base+"/events?max=4096", &page)
	if len(page.Events) != survivors {
		t.Fatalf("merged page has %d events, want %d survivors", len(page.Events), survivors)
	}
	if page.Dropped != wantDropped {
		t.Fatalf("dropped = %d, want %d (summed per-shard gaps)", page.Dropped, wantDropped)
	}
	if parts := strings.Split(page.Cursor, ","); len(parts) != 2 {
		t.Fatalf("cursor %q is not a 2-shard vector", page.Cursor)
	}
	for i := 1; i < len(page.Events); i++ {
		a, b := page.Events[i-1], page.Events[i]
		if a.AtMs > b.AtMs {
			t.Fatalf("merged events out of time order: %+v before %+v", a, b)
		}
		if a.Shard == b.Shard && a.Seq >= b.Seq {
			t.Fatalf("same-shard events out of sequence order: %+v before %+v", a, b)
		}
	}

	// Passing the cursor back reads nothing and loses nothing.
	var tail ShardedEventsResponse
	getJSON(t, base+"/events?since="+page.Cursor+"&max=4096", &tail)
	if len(tail.Events) != 0 || tail.Dropped != 0 || tail.Cursor != page.Cursor {
		t.Fatalf("caught-up page = %+v", tail)
	}

	// Regression: a cursor taken before the rings overwrote (seq 0 on
	// both shards) still accounts the loss exactly — the events between
	// the cursor and each ring's oldest survivor.
	var span ShardedEventsResponse
	getJSON(t, base+"/events?since=0,0&max=4096", &span)
	var wantSpanDropped int64
	wantSpanEvents := 0
	for _, tel := range tels {
		evs, gap, _ := tel.Events().Page(0, 4096)
		wantSpanDropped += gap
		wantSpanEvents += len(evs)
	}
	if span.Dropped != wantSpanDropped || len(span.Events) != wantSpanEvents {
		t.Fatalf("overwrite-spanning cursor: dropped=%d events=%d, want %d/%d",
			span.Dropped, len(span.Events), wantSpanDropped, wantSpanEvents)
	}

	// Small pages chained by cursor reassemble the full stream with no
	// duplicates. (A shard whose cursor has not yet passed its
	// overwritten range re-reports that gap on each page — loss is
	// relative to the request's cursor — so Dropped is bounded by the
	// fresh-poller figure, not zero.)
	var got []ShardEvent
	cursor := "-1"
	for i := 0; i < 20; i++ {
		var p ShardedEventsResponse
		getJSON(t, base+"/events?since="+cursor+"&max=3", &p)
		if len(p.Events) == 0 {
			break
		}
		if len(p.Events) > 3 {
			t.Fatalf("page exceeded max: %d events", len(p.Events))
		}
		if p.Dropped > wantDropped {
			t.Fatalf("page reported more loss than the rings overwrote: %+v", p)
		}
		got = append(got, p.Events...)
		cursor = p.Cursor
	}
	if len(got) != survivors {
		t.Fatalf("chained pages yielded %d events, want %d", len(got), survivors)
	}
	if cursor != page.Cursor {
		t.Fatalf("chained cursor ended at %q, full page at %q", cursor, page.Cursor)
	}
	seen := map[string]bool{}
	for _, ev := range got {
		id := ev.Shard + "/" + itoa(ev.Seq)
		if seen[id] {
			t.Fatalf("event %s delivered twice across pages", id)
		}
		seen[id] = true
	}

	// Cursor validation: wrong arity and junk are 400s.
	for _, bad := range []string{"?since=1,2,3", "?since=x", "?since=1,y"} {
		resp, err := http.Get(base + "/events" + bad)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", bad, resp.StatusCode)
		}
	}
}
