// Package gateway exposes a running MicroFaaS cluster as an HTTP FaaS
// endpoint — the integration surface the paper's conclusion anticipates
// ("integrations for widely-used FaaS orchestration software").
//
// Routes:
//
//	POST /invoke           {"function": "...", "args": {...}} → synchronous result
//	POST /invoke?async=1   same body → 202 with {"job_id": N} immediately
//	GET  /jobs/{id}        async job status: 200 result, 404 unknown, 202 pending
//	GET  /functions        list of deployable function names
//	GET  /workers          per-worker health: breaker state, failure counts, queue depth
//	GET  /stats            per-function runtime statistics and cluster totals
//	GET  /power            power-manager snapshot: per-node power states, cap, pending wakes
//	POST /power/cap        {"cap_w": N} adjusts the cluster power cap (0 removes it)
//	GET  /forecast         prediction-controller snapshot: mode, error ratio, warm target,
//	                       per-function rate/EWMA/ahead forecasts
//	GET  /budgets          per-function energy budgets: limit, spent, exhausted
//	POST /budgets          {"function": "...", "limit_j": N} sets/updates a budget (N <= 0 removes)
//	GET  /healthz          liveness probe: mode, uptime, build version
//	GET  /metrics          Prometheus text exposition (telemetry-enabled servers)
//	GET  /events           ring-buffered invocation lifecycle events (?since=SEQ&max=N;
//	                       sharded gateways merge every shard's ring and cursor with a
//	                       comma-separated per-shard sequence vector)
//	GET  /query            windowed time-series query (?metric=&op=&q=&window=&label=k=v
//	                       &range=1; ?format=ndjson streams raw samples instead)
//	GET  /slo              every SLO rule's fast/slow burn-rate page state
//	GET  /alerts           currently-firing pages plus the alert transition history
//	GET  /traces           per-invocation trace summaries (?job=N | ?slowest=N | ?limit=N;
//	                       ?format=chrome|ndjson streams a raw export instead)
//	GET  /traces/{id}      one trace's critical-path breakdown plus its raw spans
//	GET  /shards           per-shard capacity snapshots (sharded gateways only)
//	POST /shards/{id}/drain  take one shard out of service, migrating its queue
//	POST /shards/{id}/join   return a drained/dead shard to service
//	GET  /debug/pprof/*    net/http/pprof profiler (only when Options.EnablePprof)
//
// A gateway fronts either one orchestrator (New / NewWithOptions) or a
// whole sharded control plane (NewSharded); in the sharded case /invoke
// routes through the consistent-hash tier and the read endpoints merge
// every shard's view.
//
// Async results are retained for a bounded window (RetainAsync, default
// 10 minutes) and deleted on first successful read.
package gateway

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"microfaas/internal/core"
	"microfaas/internal/forecast"
	"microfaas/internal/power"
	"microfaas/internal/powermgr"
	"microfaas/internal/shard"
	"microfaas/internal/telemetry"
	"microfaas/internal/trace"
	"microfaas/internal/tracing"
	"microfaas/internal/tsdb"
	"microfaas/internal/version"
	"microfaas/internal/workload"
)

// InvokeRequest is the POST /invoke body. Key only matters on sharded
// gateways: it is the consistent-hash routing key, defaulting to the
// function name (so a function's invocations colocate on one shard);
// pass a compound key like "user/123" to spread a hot function.
type InvokeRequest struct {
	Function string          `json:"function"`
	Args     json.RawMessage `json:"args"`
	Key      string          `json:"key,omitempty"`
}

// InvokeResponse is the POST /invoke reply.
type InvokeResponse struct {
	JobID  int64           `json:"job_id"`
	Worker string          `json:"worker"`
	Output json.RawMessage `json:"output,omitempty"`
	Error  string          `json:"error,omitempty"`
	BootMs float64         `json:"boot_ms"`
	OvhMs  float64         `json:"overhead_ms"`
	ExecMs float64         `json:"exec_ms"`
	// TotalMs is the worker-side cycle (boot+overhead+exec); QueuedMs the
	// time the job waited in its queue before a worker started it
	// (StartedAt − SubmittedAt); TotalLatencyMs the end-to-end latency
	// from submission to result (FinishedAt − SubmittedAt).
	TotalMs        float64 `json:"total_ms"`
	QueuedMs       float64 `json:"queued_ms"`
	TotalLatencyMs float64 `json:"total_latency_ms"`
}

// makeResponse renders a final invocation result as the HTTP reply body.
func makeResponse(res core.Result) InvokeResponse {
	return InvokeResponse{
		JobID:          res.Job.ID,
		Worker:         res.WorkerID,
		Output:         json.RawMessage(res.Output),
		Error:          res.Err,
		BootMs:         ms(res.Boot),
		OvhMs:          ms(res.Overhead),
		ExecMs:         ms(res.Exec),
		TotalMs:        ms(res.Boot + res.Overhead + res.Exec),
		QueuedMs:       ms(res.StartedAt - res.Job.SubmittedAt),
		TotalLatencyMs: ms(res.FinishedAt - res.Job.SubmittedAt),
	}
}

// StatsResponse is the GET /stats reply.
type StatsResponse struct {
	Completed int                   `json:"completed"`
	Errors    int                   `json:"errors"`
	Pending   int                   `json:"pending"`
	Functions []trace.FunctionStats `json:"functions"`
}

// asyncEntry is a completed async job's retained result.
type asyncEntry struct {
	resp      InvokeResponse
	status    int
	expiresAt time.Time
}

// RetainAsync is how long a completed async result stays fetchable.
const RetainAsync = 10 * time.Minute

// Options configures a Server beyond the orchestrator it fronts.
type Options struct {
	// Timeout bounds a synchronous invocation wait (default 5 minutes).
	Timeout time.Duration
	// Mode labels the cluster behind the gateway — "sim" or "live" — in
	// the /healthz body (default "live").
	Mode string
	// Telemetry, when set, backs GET /metrics and GET /events. Without it
	// both routes answer 404.
	Telemetry *telemetry.Telemetry
	// Tracer, when set, backs GET /traces and GET /traces/{id}. Without it
	// both routes answer 404. Usually the same tracer wired into the
	// cluster behind the orchestrator.
	Tracer *tracing.Tracer
	// TSDB, when set, backs GET /query, GET /slo, and GET /alerts.
	// Without it all three answer 404.
	TSDB *tsdb.Store
	// EnablePprof mounts net/http/pprof under /debug/pprof/ (off by
	// default: the profiler exposes heap and goroutine internals, so it is
	// strictly opt-in).
	EnablePprof bool
	// ShardID overrides the shard label reported in /healthz. Defaults to
	// the fronted orchestrator's core.Config.ShardLabel ("" when
	// unsharded, or when the gateway fronts a whole plane).
	ShardID string
	// Forecast, when set, backs GET /forecast with the prediction
	// controller's live snapshot. Without it the route answers 404.
	Forecast *forecast.Controller
}

// HealthResponse is the GET /healthz reply. ShardID and ShardCount are
// always present: an unsharded gateway reports "" and 1, a gateway
// fronting a whole plane reports "" and the shard count, and a gateway
// fronting one shard of a larger deployment reports that shard's label.
type HealthResponse struct {
	Status     string  `json:"status"`
	Mode       string  `json:"mode"`
	UptimeS    float64 `json:"uptime_s"`
	Version    string  `json:"version"`
	ShardID    string  `json:"shard_id"`
	ShardCount int     `json:"shard_count"`
}

// EventsResponse is the GET /events reply. LastSeq is the newest sequence
// number the ring holds; pass it back as ?since= to poll incrementally.
// Dropped is the exact number of events newer than ?since= the ring
// overwrote before this page was read — a poller that sees Dropped > 0
// lost that many events, no seq-jump inference needed. Events is always
// a JSON array, [] when the page is empty.
type EventsResponse struct {
	Events  []telemetry.Event `json:"events"`
	LastSeq int64             `json:"last_seq"`
	Dropped int64             `json:"dropped"`
}

// Server serves the gateway over HTTP. Exactly one of orch and plane is
// set: handlers branch to the merged cross-shard view when plane is.
type Server struct {
	orch    *core.Orchestrator
	plane   *shard.Plane
	timeout time.Duration
	mode    string
	shardID string
	tel      *telemetry.Telemetry
	tracer   *tracing.Tracer
	tsdb     *tsdb.Store
	forecast *forecast.Controller
	pprof    bool
	start    time.Time

	mu      sync.Mutex
	http    *http.Server
	pending map[int64]time.Time  // async jobs in flight -> expiry
	done    map[int64]asyncEntry // async results awaiting pickup
	// settled marks async jobs whose completion callback has fired,
	// surviving the (pickup-once) deletion of their done entry. It closes
	// the submit/complete race: a completion observed here is never
	// re-marked pending, no matter how the callback and the submitting
	// handler interleave. Entries expire with their done entry's window.
	settled map[int64]time.Time
}

// New wraps an orchestrator. timeout bounds a synchronous invocation wait
// (default 5 minutes).
func New(orch *core.Orchestrator, timeout time.Duration) (*Server, error) {
	return NewWithOptions(orch, Options{Timeout: timeout})
}

// NewWithOptions wraps an orchestrator with full configuration.
func NewWithOptions(orch *core.Orchestrator, opts Options) (*Server, error) {
	if orch == nil {
		return nil, fmt.Errorf("gateway: orchestrator required")
	}
	s := newServer(opts)
	s.orch = orch
	if s.shardID == "" {
		s.shardID = orch.ShardLabel()
	}
	return s, nil
}

// NewSharded fronts a whole sharded control plane: /invoke routes
// through the plane's consistent-hash tier, and /workers, /stats,
// /power, and /metrics merge every shard's view. Options.Telemetry and
// Options.Tracer should be the instances shared across the shards (the
// tracer always is in a sharded sim; per-shard telemetry is merged via
// the plane regardless).
func NewSharded(plane *shard.Plane, opts Options) (*Server, error) {
	if plane == nil {
		return nil, fmt.Errorf("gateway: shard plane required")
	}
	s := newServer(opts)
	s.plane = plane
	return s, nil
}

// newServer applies option defaults and builds the handler-independent
// core of a Server; callers attach the orchestrator or plane.
func newServer(opts Options) *Server {
	if opts.Timeout <= 0 {
		opts.Timeout = 5 * time.Minute
	}
	if opts.Mode == "" {
		opts.Mode = "live"
	}
	return &Server{
		timeout:  opts.Timeout,
		mode:     opts.Mode,
		shardID:  opts.ShardID,
		tel:      opts.Telemetry,
		tracer:   opts.Tracer,
		tsdb:     opts.TSDB,
		forecast: opts.Forecast,
		pprof:    opts.EnablePprof,
		start:    time.Now(),
		pending:  make(map[int64]time.Time),
		done:     make(map[int64]asyncEntry),
		settled:  make(map[int64]time.Time),
	}
}

// Handler returns the HTTP handler (useful for embedding and tests).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/invoke", s.handleInvoke)
	mux.HandleFunc("/jobs/", s.handleJobStatus)
	mux.HandleFunc("/functions", s.handleFunctions)
	mux.HandleFunc("/workers", s.handleWorkers)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/power", s.handlePower)
	mux.HandleFunc("/power/cap", s.handlePowerCap)
	mux.HandleFunc("/forecast", s.handleForecast)
	mux.HandleFunc("/budgets", s.handleBudgets)
	mux.HandleFunc("/shards", s.handleShards)
	mux.HandleFunc("/shards/", s.handleShardOp)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/events", s.handleEvents)
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/slo", s.handleSLO)
	mux.HandleFunc("/alerts", s.handleAlerts)
	mux.HandleFunc("/traces", s.handleTraces)
	mux.HandleFunc("/traces/", s.handleTraceByID)
	if s.pprof {
		mountPprof(mux)
	}
	return mux
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	shards := 1
	if s.plane != nil {
		shards = s.plane.NumShards()
	}
	writeJSON(w, http.StatusOK, HealthResponse{
		Status:     "ok",
		Mode:       s.mode,
		UptimeS:    time.Since(s.start).Seconds(),
		Version:    version.Version,
		ShardID:    s.shardID,
		ShardCount: shards,
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	if s.plane != nil {
		// The plane's registry (queue depth, weights, steal counters)
		// always exists; per-shard registries are appended with a shard
		// label injected into every sample.
		w.Header().Set("Content-Type", telemetry.TextContentType)
		s.plane.WriteMergedMetrics(w) //nolint:errcheck // peer gone: nothing to do
		return
	}
	if s.tel == nil {
		writeError(w, http.StatusNotFound, "telemetry disabled on this gateway")
		return
	}
	w.Header().Set("Content-Type", telemetry.TextContentType)
	s.tel.Registry().WritePrometheus(w) //nolint:errcheck // peer gone: nothing to do
}

// handleEvents serves the lifecycle-event ring. ?since=SEQ returns events
// strictly newer than SEQ (default: everything retained); ?max=N caps the
// page size (default 256, at most 4096). A gateway fronting a whole plane
// merges every shard's ring instead (see handleShardedEvents) — there
// ?since= is the comma-separated cursor the previous page returned.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	max := 256
	if v := r.URL.Query().Get("max"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			writeError(w, http.StatusBadRequest, "bad max: "+v)
			return
		}
		max = n
	}
	if max > 4096 {
		max = 4096
	}
	if s.plane != nil {
		s.handleShardedEvents(w, r, r.URL.Query().Get("since"), max)
		return
	}
	if s.tel == nil {
		writeError(w, http.StatusNotFound, "telemetry disabled on this gateway")
		return
	}
	since := int64(-1)
	if v := r.URL.Query().Get("since"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad since: "+v)
			return
		}
		since = n
	}
	events, gap, last := s.tel.Events().Page(since, max)
	if events == nil {
		// Keep the JSON shape stable: an empty page is [], never null.
		events = []telemetry.Event{}
	}
	writeJSON(w, http.StatusOK, EventsResponse{Events: events, LastSeq: last, Dropped: gap})
}

// Listen binds addr and serves in the background, returning the bound
// address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("gateway: listen: %w", err)
	}
	srv := &http.Server{Handler: s.Handler()}
	s.mu.Lock()
	s.http = srv
	s.mu.Unlock()
	go srv.Serve(ln) //nolint:errcheck // returns ErrServerClosed on Close
	return ln.Addr().String(), nil
}

// Close shuts the HTTP listener down.
func (s *Server) Close() error {
	s.mu.Lock()
	srv := s.http
	s.http = nil
	s.mu.Unlock()
	if srv == nil {
		return nil
	}
	return srv.Close()
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v) //nolint:errcheck
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}

func (s *Server) handleInvoke(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req InvokeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	if req.Function == "" {
		writeError(w, http.StatusBadRequest, "function name required")
		return
	}
	if _, err := workload.Get(req.Function); err != nil {
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	args := []byte(req.Args)
	if len(args) == 0 {
		args = []byte("{}")
	}
	if r.URL.Query().Get("async") != "" {
		s.invokeAsync(w, req, args)
		return
	}
	resCh := make(chan core.Result, 1)
	jobID := s.submit(req, args, func(res core.Result) {
		resCh <- res
	})
	if jobID == 0 {
		writeError(w, http.StatusServiceUnavailable, "gateway draining; not accepting new invocations")
		return
	}
	select {
	case res := <-resCh:
		resp := makeResponse(res)
		status := http.StatusOK
		if res.Err != "" {
			status = http.StatusUnprocessableEntity
		}
		writeJSON(w, status, resp)
	case <-time.After(s.timeout):
		writeError(w, http.StatusGatewayTimeout, "invocation timed out")
	case <-r.Context().Done():
		// Client gave up; the job still completes and is recorded.
	}
}

// submit hands one invocation to the cluster: straight to the
// orchestrator on a single-shard gateway, through the consistent-hash
// tier (keyed by req.Key, defaulting to the function name) when
// fronting a sharded plane. Returns 0 when the cluster is draining.
func (s *Server) submit(req InvokeRequest, args []byte, cb func(core.Result)) int64 {
	if s.plane != nil {
		key := req.Key
		if key == "" {
			key = req.Function
		}
		id, _ := s.plane.Submit(key, req.Function, args, cb)
		return id
	}
	return s.orch.SubmitAsync(req.Function, args, cb)
}

// invokeAsync submits without waiting and returns 202 with the job id.
func (s *Server) invokeAsync(w http.ResponseWriter, req InvokeRequest, args []byte) {
	jobID := s.submit(req, args, s.recordAsync)
	if jobID == 0 {
		writeError(w, http.StatusServiceUnavailable, "gateway draining; not accepting new invocations")
		return
	}
	s.markPending(jobID)
	writeJSON(w, http.StatusAccepted, map[string]int64{"job_id": jobID})
}

// recordAsync is the async completion callback: it retires the pending
// entry and files the result for pickup.
func (s *Server) recordAsync(res core.Result) {
	entry := asyncEntry{
		resp:      makeResponse(res),
		status:    http.StatusOK,
		expiresAt: time.Now().Add(RetainAsync),
	}
	if res.Err != "" {
		entry.status = http.StatusUnprocessableEntity
	}
	s.mu.Lock()
	delete(s.pending, res.Job.ID)
	s.done[res.Job.ID] = entry
	s.settled[res.Job.ID] = entry.expiresAt
	s.reapLocked()
	s.mu.Unlock()
}

// markPending files a just-submitted async job as in flight. The callback
// may already have fired (live workers are fast) — or fired and had its
// result fetched by a fast poller, erasing the done entry. settled
// remembers every completion for the retention window, so a job is marked
// pending only if it has genuinely not finished yet. Pending entries carry
// their own expiry: a job whose callback never fires (abandoned in a
// drain) would otherwise leak its entry forever.
func (s *Server) markPending(jobID int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, completed := s.settled[jobID]; !completed {
		s.pending[jobID] = time.Now().Add(RetainAsync)
	}
}

// reapLocked drops expired async state — results awaiting pickup, the
// settled markers, and pending entries whose completion never came.
// Caller holds s.mu.
func (s *Server) reapLocked() {
	now := time.Now()
	for id, e := range s.done {
		if now.After(e.expiresAt) {
			delete(s.done, id)
		}
	}
	for id, exp := range s.settled {
		if now.After(exp) {
			delete(s.settled, id)
		}
	}
	for id, exp := range s.pending {
		if now.After(exp) {
			delete(s.pending, id)
		}
	}
}

// handleJobStatus serves GET /jobs/{id}: 200/422 with the result (consumed
// on read), 202 while pending, 404 for unknown or expired jobs.
func (s *Server) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	idStr := strings.TrimPrefix(r.URL.Path, "/jobs/")
	id, err := strconv.ParseInt(idStr, 10, 64)
	if err != nil || id <= 0 {
		writeError(w, http.StatusBadRequest, "bad job id")
		return
	}
	s.mu.Lock()
	s.reapLocked()
	if entry, ok := s.done[id]; ok {
		delete(s.done, id) // results are picked up exactly once
		s.mu.Unlock()
		writeJSON(w, entry.status, entry.resp)
		return
	}
	_, pending := s.pending[id]
	s.mu.Unlock()
	if pending {
		writeJSON(w, http.StatusAccepted, map[string]string{"status": "pending"})
		return
	}
	writeError(w, http.StatusNotFound, "unknown, expired, or already-fetched job")
}

func (s *Server) handleFunctions(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	writeJSON(w, http.StatusOK, workload.Names())
}

func (s *Server) handleWorkers(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	type workerInfo struct {
		core.WorkerHealth
		Breaker string `json:"breaker"`
		Shard   string `json:"shard,omitempty"`
	}
	out := []workerInfo{} // stable shape: [] even with nothing to report
	if s.plane != nil {
		labels := s.plane.Labels()
		for si, o := range s.plane.Shards() {
			for _, h := range o.Health() {
				out = append(out, workerInfo{WorkerHealth: h, Breaker: h.State.String(), Shard: labels[si]})
			}
		}
	} else {
		for _, h := range s.orch.Health() {
			out = append(out, workerInfo{WorkerHealth: h, Breaker: h.State.String(), Shard: s.orch.ShardLabel()})
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// handleShards serves GET /shards: every shard's capacity snapshot —
// worker count, pending and queued depth, ring weight, and steal
// counters — in ring order. Unsharded gateways answer 404.
func (s *Server) handleShards(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	if s.plane == nil {
		writeError(w, http.StatusNotFound, "this gateway fronts an unsharded control plane")
		return
	}
	writeJSON(w, http.StatusOK, s.plane.Status())
}

// handleShardOp serves POST /shards/{id}/drain and /shards/{id}/join:
// administratively take one shard out of service (its queued work
// migrates to the others, exactly like a health-detected death) or
// return it. {id} is the shard index or its label. Replies with the
// shard's fresh status snapshot.
func (s *Server) handleShardOp(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	if s.plane == nil {
		writeError(w, http.StatusNotFound, "this gateway fronts an unsharded control plane")
		return
	}
	rest := strings.TrimPrefix(r.URL.Path, "/shards/")
	name, op, ok := strings.Cut(rest, "/")
	if !ok || name == "" {
		writeError(w, http.StatusNotFound, "use /shards/{id}/drain or /shards/{id}/join")
		return
	}
	idx := -1
	if n, err := strconv.Atoi(name); err == nil {
		idx = n
	} else {
		for i, label := range s.plane.Labels() {
			if label == name {
				idx = i
				break
			}
		}
	}
	if idx < 0 || idx >= s.plane.NumShards() {
		writeError(w, http.StatusNotFound, fmt.Sprintf("unknown shard %q", name))
		return
	}
	var err error
	switch op {
	case "drain":
		err = s.plane.DrainShard(idx)
	case "join":
		err = s.plane.JoinShard(idx)
	default:
		writeError(w, http.StatusNotFound, fmt.Sprintf("unknown shard operation %q", op))
		return
	}
	if err != nil {
		writeError(w, http.StatusConflict, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, s.plane.Status()[idx])
}

// shardPower is one shard's power snapshot inside the sharded /power
// and /power/cap replies.
type shardPower struct {
	Shard    string          `json:"shard"`
	Snapshot powermgr.Status `json:"snapshot"`
}

// powerSnapshots collects every shard's power-manager snapshot; ok is
// false when no shard runs a manager.
func (s *Server) powerSnapshots() (out []shardPower, ok bool) {
	labels := s.plane.Labels()
	out = []shardPower{}
	for si, o := range s.plane.Shards() {
		if pm := o.PowerManager(); pm != nil {
			out = append(out, shardPower{Shard: labels[si], Snapshot: pm.Snapshot()})
		}
	}
	return out, len(out) > 0
}

// handlePower serves GET /power: the power manager's live snapshot —
// per-node states, the active cap, and cap-parked wakes. A sharded
// gateway returns the per-shard snapshots as an array. Clusters running
// the static power policy (no manager) answer 404.
func (s *Server) handlePower(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	if s.plane != nil {
		snaps, ok := s.powerSnapshots()
		if !ok {
			writeError(w, http.StatusNotFound, "power management disabled on this cluster")
			return
		}
		writeJSON(w, http.StatusOK, snaps)
		return
	}
	pm := s.orch.PowerManager()
	if pm == nil {
		writeError(w, http.StatusNotFound, "power management disabled on this cluster")
		return
	}
	writeJSON(w, http.StatusOK, pm.Snapshot())
}

// handlePowerCap serves POST /power/cap with body {"cap_w": N}: it adjusts
// the cluster power budget at runtime (0 removes the cap) and returns the
// resulting snapshot. On a sharded gateway the budget is divided evenly
// across the shards that run a power manager (each shard caps its own
// partition) and the per-shard snapshots come back as an array. Lowering
// the cap never force-kills powered nodes; the cluster converges downward
// as they idle out.
func (s *Server) handlePowerCap(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req struct {
		CapW float64 `json:"cap_w"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	if s.plane != nil {
		snaps, ok := s.powerSnapshots()
		if !ok {
			writeError(w, http.StatusNotFound, "power management disabled on this cluster")
			return
		}
		perShard := req.CapW / float64(len(snaps))
		for _, o := range s.plane.Shards() {
			pm := o.PowerManager()
			if pm == nil {
				continue
			}
			if err := pm.SetCapW(power.Watts(perShard)); err != nil {
				writeError(w, http.StatusBadRequest, err.Error())
				return
			}
		}
		snaps, _ = s.powerSnapshots()
		writeJSON(w, http.StatusOK, snaps)
		return
	}
	pm := s.orch.PowerManager()
	if pm == nil {
		writeError(w, http.StatusNotFound, "power management disabled on this cluster")
		return
	}
	if err := pm.SetCapW(power.Watts(req.CapW)); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, pm.Snapshot())
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	var coll *trace.Collector
	var pending int
	if s.plane != nil {
		// Merge every shard's trace records into one collector so the
		// per-function stats cover the whole cluster.
		coll = trace.NewCollector()
		for _, o := range s.plane.Shards() {
			for _, r := range o.Collector().Records() {
				coll.Add(r)
			}
		}
		pending = s.plane.Pending()
	} else {
		coll = s.orch.Collector()
		pending = s.orch.Pending()
	}
	writeJSON(w, http.StatusOK, StatsResponse{
		Completed: coll.Len() - coll.ErrorCount(),
		Errors:    coll.ErrorCount(),
		Pending:   pending,
		Functions: coll.ByFunction(),
	})
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
