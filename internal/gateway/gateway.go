// Package gateway exposes a running MicroFaaS cluster as an HTTP FaaS
// endpoint — the integration surface the paper's conclusion anticipates
// ("integrations for widely-used FaaS orchestration software").
//
// Routes:
//
//	POST /invoke           {"function": "...", "args": {...}} → synchronous result
//	POST /invoke?async=1   same body → 202 with {"job_id": N} immediately
//	GET  /jobs/{id}        async job status: 200 result, 404 unknown, 202 pending
//	GET  /functions        list of deployable function names
//	GET  /workers          worker ids with queue depths
//	GET  /stats            per-function runtime statistics and cluster totals
//	GET  /healthz          liveness probe
//
// Async results are retained for a bounded window (RetainAsync, default
// 10 minutes) and deleted on first successful read.
package gateway

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"microfaas/internal/core"
	"microfaas/internal/trace"
	"microfaas/internal/workload"
)

// InvokeRequest is the POST /invoke body.
type InvokeRequest struct {
	Function string          `json:"function"`
	Args     json.RawMessage `json:"args"`
}

// InvokeResponse is the POST /invoke reply.
type InvokeResponse struct {
	JobID    int64           `json:"job_id"`
	Worker   string          `json:"worker"`
	Output   json.RawMessage `json:"output,omitempty"`
	Error    string          `json:"error,omitempty"`
	BootMs   float64         `json:"boot_ms"`
	OvhMs    float64         `json:"overhead_ms"`
	ExecMs   float64         `json:"exec_ms"`
	TotalMs  float64         `json:"total_ms"`
	QueuedMs float64         `json:"queued_ms"`
}

// StatsResponse is the GET /stats reply.
type StatsResponse struct {
	Completed int                   `json:"completed"`
	Errors    int                   `json:"errors"`
	Pending   int                   `json:"pending"`
	Functions []trace.FunctionStats `json:"functions"`
}

// asyncEntry is a completed async job's retained result.
type asyncEntry struct {
	resp      InvokeResponse
	status    int
	expiresAt time.Time
}

// RetainAsync is how long a completed async result stays fetchable.
const RetainAsync = 10 * time.Minute

// Server serves the gateway over HTTP.
type Server struct {
	orch    *core.Orchestrator
	timeout time.Duration

	mu      sync.Mutex
	http    *http.Server
	pending map[int64]bool       // async jobs in flight
	done    map[int64]asyncEntry // async results awaiting pickup
}

// New wraps an orchestrator. timeout bounds a synchronous invocation wait
// (default 5 minutes).
func New(orch *core.Orchestrator, timeout time.Duration) (*Server, error) {
	if orch == nil {
		return nil, fmt.Errorf("gateway: orchestrator required")
	}
	if timeout <= 0 {
		timeout = 5 * time.Minute
	}
	return &Server{
		orch:    orch,
		timeout: timeout,
		pending: make(map[int64]bool),
		done:    make(map[int64]asyncEntry),
	}, nil
}

// Handler returns the HTTP handler (useful for embedding and tests).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/invoke", s.handleInvoke)
	mux.HandleFunc("/jobs/", s.handleJobStatus)
	mux.HandleFunc("/functions", s.handleFunctions)
	mux.HandleFunc("/workers", s.handleWorkers)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok") //nolint:errcheck
	})
	return mux
}

// Listen binds addr and serves in the background, returning the bound
// address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("gateway: listen: %w", err)
	}
	srv := &http.Server{Handler: s.Handler()}
	s.mu.Lock()
	s.http = srv
	s.mu.Unlock()
	go srv.Serve(ln) //nolint:errcheck // returns ErrServerClosed on Close
	return ln.Addr().String(), nil
}

// Close shuts the HTTP listener down.
func (s *Server) Close() error {
	s.mu.Lock()
	srv := s.http
	s.http = nil
	s.mu.Unlock()
	if srv == nil {
		return nil
	}
	return srv.Close()
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v) //nolint:errcheck
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}

func (s *Server) handleInvoke(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req InvokeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	if req.Function == "" {
		writeError(w, http.StatusBadRequest, "function name required")
		return
	}
	if _, err := workload.Get(req.Function); err != nil {
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	args := []byte(req.Args)
	if len(args) == 0 {
		args = []byte("{}")
	}
	if r.URL.Query().Get("async") != "" {
		s.invokeAsync(w, req.Function, args)
		return
	}
	resCh := make(chan core.Result, 1)
	jobID := s.orch.SubmitAsync(req.Function, args, func(res core.Result) {
		resCh <- res
	})
	select {
	case res := <-resCh:
		resp := InvokeResponse{
			JobID:    jobID,
			Worker:   res.WorkerID,
			Output:   json.RawMessage(res.Output),
			Error:    res.Err,
			BootMs:   ms(res.Boot),
			OvhMs:    ms(res.Overhead),
			ExecMs:   ms(res.Exec),
			TotalMs:  ms(res.Boot + res.Overhead + res.Exec),
			QueuedMs: ms(res.FinishedAt - res.Job.SubmittedAt),
		}
		status := http.StatusOK
		if res.Err != "" {
			status = http.StatusUnprocessableEntity
		}
		writeJSON(w, status, resp)
	case <-time.After(s.timeout):
		writeError(w, http.StatusGatewayTimeout, "invocation timed out")
	case <-r.Context().Done():
		// Client gave up; the job still completes and is recorded.
	}
}

// invokeAsync submits without waiting and returns 202 with the job id.
func (s *Server) invokeAsync(w http.ResponseWriter, function string, args []byte) {
	jobID := s.orch.SubmitAsync(function, args, func(res core.Result) {
		entry := asyncEntry{
			resp: InvokeResponse{
				JobID:    res.Job.ID,
				Worker:   res.WorkerID,
				Output:   json.RawMessage(res.Output),
				Error:    res.Err,
				BootMs:   ms(res.Boot),
				OvhMs:    ms(res.Overhead),
				ExecMs:   ms(res.Exec),
				TotalMs:  ms(res.Boot + res.Overhead + res.Exec),
				QueuedMs: ms(res.FinishedAt - res.Job.SubmittedAt),
			},
			status:    http.StatusOK,
			expiresAt: time.Now().Add(RetainAsync),
		}
		if res.Err != "" {
			entry.status = http.StatusUnprocessableEntity
		}
		s.mu.Lock()
		delete(s.pending, res.Job.ID)
		s.done[res.Job.ID] = entry
		s.reapLocked()
		s.mu.Unlock()
	})
	s.mu.Lock()
	// The callback may already have fired (live workers are fast); only
	// mark pending if it hasn't completed.
	if _, completed := s.done[jobID]; !completed {
		s.pending[jobID] = true
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusAccepted, map[string]int64{"job_id": jobID})
}

// reapLocked drops expired async results. Caller holds s.mu.
func (s *Server) reapLocked() {
	now := time.Now()
	for id, e := range s.done {
		if now.After(e.expiresAt) {
			delete(s.done, id)
		}
	}
}

// handleJobStatus serves GET /jobs/{id}: 200/422 with the result (consumed
// on read), 202 while pending, 404 for unknown or expired jobs.
func (s *Server) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	idStr := strings.TrimPrefix(r.URL.Path, "/jobs/")
	id, err := strconv.ParseInt(idStr, 10, 64)
	if err != nil || id <= 0 {
		writeError(w, http.StatusBadRequest, "bad job id")
		return
	}
	s.mu.Lock()
	s.reapLocked()
	if entry, ok := s.done[id]; ok {
		delete(s.done, id) // results are picked up exactly once
		s.mu.Unlock()
		writeJSON(w, entry.status, entry.resp)
		return
	}
	pending := s.pending[id]
	s.mu.Unlock()
	if pending {
		writeJSON(w, http.StatusAccepted, map[string]string{"status": "pending"})
		return
	}
	writeError(w, http.StatusNotFound, "unknown, expired, or already-fetched job")
}

func (s *Server) handleFunctions(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	writeJSON(w, http.StatusOK, workload.Names())
}

func (s *Server) handleWorkers(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	type workerInfo struct {
		ID         string `json:"id"`
		QueueDepth int    `json:"queue_depth"`
	}
	var out []workerInfo
	for _, id := range s.orch.Workers() {
		out = append(out, workerInfo{ID: id, QueueDepth: s.orch.QueueDepth(id)})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	coll := s.orch.Collector()
	writeJSON(w, http.StatusOK, StatsResponse{
		Completed: coll.Len() - coll.ErrorCount(),
		Errors:    coll.ErrorCount(),
		Pending:   s.orch.Pending(),
		Functions: coll.ByFunction(),
	})
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
