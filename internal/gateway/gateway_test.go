package gateway

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"

	"microfaas/internal/cluster"
)

// startGateway boots a 2-worker live cluster with a gateway in front.
func startGateway(t *testing.T) (base string, l *cluster.Live) {
	t.Helper()
	l, err := cluster.StartLive(cluster.LiveOptions{Workers: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(l.Close)
	gw, err := New(l.Orch, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := gw.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { gw.Close() })
	return "http://" + addr, l
}

func postInvoke(t *testing.T, base, body string) (*http.Response, InvokeResponse) {
	t.Helper()
	resp, err := http.Post(base+"/invoke", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	var out InvokeResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func TestInvokeSynchronous(t *testing.T) {
	base, _ := startGateway(t)
	resp, out := postInvoke(t, base, `{"function":"CascSHA","args":{"rounds":5,"seed":"gw"}}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %+v", resp.StatusCode, out)
	}
	if out.Error != "" || out.JobID == 0 || out.Worker == "" {
		t.Fatalf("response = %+v", out)
	}
	var digest struct {
		Digest string `json:"digest"`
	}
	if err := json.Unmarshal(out.Output, &digest); err != nil || digest.Digest == "" {
		t.Fatalf("output = %s, %v", out.Output, err)
	}
	if out.TotalMs <= 0 {
		t.Fatal("no timings reported")
	}
}

func TestInvokeNetworkBoundFunction(t *testing.T) {
	base, _ := startGateway(t)
	resp, out := postInvoke(t, base, `{"function":"RedisInsert","args":{"key":"gw:1","value":"v"}}`)
	if resp.StatusCode != http.StatusOK || out.Error != "" {
		t.Fatalf("status %d: %+v", resp.StatusCode, out)
	}
}

func TestInvokeValidation(t *testing.T) {
	base, _ := startGateway(t)
	resp, _ := postInvoke(t, base, `{"args":{}}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing function → %d", resp.StatusCode)
	}
	resp, _ = postInvoke(t, base, `{"function":"NoSuchFn"}`)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown function → %d", resp.StatusCode)
	}
	resp, err := http.Post(base+"/invoke", "application/json", bytes.NewReader([]byte(`{garbage`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage body → %d", resp.StatusCode)
	}
	resp, err = http.Get(base + "/invoke")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /invoke → %d", resp.StatusCode)
	}
}

func TestInvokeFunctionErrorIs422(t *testing.T) {
	base, _ := startGateway(t)
	resp, out := postInvoke(t, base, `{"function":"MatMul","args":{"n":0}}`)
	if resp.StatusCode != http.StatusUnprocessableEntity || out.Error == "" {
		t.Fatalf("status %d, error %q", resp.StatusCode, out.Error)
	}
}

func TestFunctionsEndpoint(t *testing.T) {
	base, _ := startGateway(t)
	resp, err := http.Get(base + "/functions")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var names []string
	if err := json.NewDecoder(resp.Body).Decode(&names); err != nil {
		t.Fatal(err)
	}
	if len(names) != 17 {
		t.Fatalf("%d functions listed", len(names))
	}
}

func TestWorkersEndpoint(t *testing.T) {
	base, _ := startGateway(t)
	resp, err := http.Get(base + "/workers")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out []struct {
		ID         string `json:"id"`
		QueueDepth int    `json:"queue_depth"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[0].ID == "" {
		t.Fatalf("workers = %+v", out)
	}
}

func TestStatsEndpointAfterLoad(t *testing.T) {
	base, _ := startGateway(t)
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := fmt.Sprintf(`{"function":"RegExMatch","args":{"pattern":"a+","text":"aa%d"}}`, i)
			resp, err := http.Post(base+"/invoke", "application/json", bytes.NewReader([]byte(body)))
			if err == nil {
				resp.Body.Close()
			}
		}(i)
	}
	wg.Wait()
	resp, err := http.Get(base + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Completed != 6 || st.Errors != 0 || st.Pending != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if len(st.Functions) != 1 || st.Functions[0].Function != "RegExMatch" {
		t.Fatalf("per-function stats = %+v", st.Functions)
	}
}

func TestHealthz(t *testing.T) {
	base, _ := startGateway(t)
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz → %d", resp.StatusCode)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, time.Second); err == nil {
		t.Fatal("nil orchestrator accepted")
	}
}

func TestAsyncInvokeLifecycle(t *testing.T) {
	base, _ := startGateway(t)
	resp, err := http.Post(base+"/invoke?async=1", "application/json",
		bytes.NewReader([]byte(`{"function":"CascSHA","args":{"rounds":5,"seed":"async"}}`)))
	if err != nil {
		t.Fatal(err)
	}
	var accepted struct {
		JobID int64 `json:"job_id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&accepted); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || accepted.JobID == 0 {
		t.Fatalf("async submit → %d, job %d", resp.StatusCode, accepted.JobID)
	}
	// Poll until the result lands (live workers are fast, but poll anyway).
	deadline := time.Now().Add(10 * time.Second)
	var final InvokeResponse
	for {
		jr, err := http.Get(fmt.Sprintf("%s/jobs/%d", base, accepted.JobID))
		if err != nil {
			t.Fatal(err)
		}
		if jr.StatusCode == http.StatusOK {
			if err := json.NewDecoder(jr.Body).Decode(&final); err != nil {
				t.Fatal(err)
			}
			jr.Body.Close()
			break
		}
		jr.Body.Close()
		if jr.StatusCode != http.StatusAccepted {
			t.Fatalf("poll → %d", jr.StatusCode)
		}
		if time.Now().After(deadline) {
			t.Fatal("async result never arrived")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if final.Error != "" || len(final.Output) == 0 {
		t.Fatalf("async result = %+v", final)
	}
	// Results are consumed on read: the second fetch is a 404.
	jr, err := http.Get(fmt.Sprintf("%s/jobs/%d", base, accepted.JobID))
	if err != nil {
		t.Fatal(err)
	}
	jr.Body.Close()
	if jr.StatusCode != http.StatusNotFound {
		t.Fatalf("second fetch → %d, want 404", jr.StatusCode)
	}
}

func TestAsyncInvokeFailureIs422OnPickup(t *testing.T) {
	base, _ := startGateway(t)
	resp, err := http.Post(base+"/invoke?async=1", "application/json",
		bytes.NewReader([]byte(`{"function":"MatMul","args":{"n":0}}`)))
	if err != nil {
		t.Fatal(err)
	}
	var accepted struct {
		JobID int64 `json:"job_id"`
	}
	json.NewDecoder(resp.Body).Decode(&accepted) //nolint:errcheck
	resp.Body.Close()
	deadline := time.Now().Add(10 * time.Second)
	for {
		jr, err := http.Get(fmt.Sprintf("%s/jobs/%d", base, accepted.JobID))
		if err != nil {
			t.Fatal(err)
		}
		code := jr.StatusCode
		jr.Body.Close()
		if code == http.StatusUnprocessableEntity {
			return // failure delivered with the right status
		}
		if code != http.StatusAccepted {
			t.Fatalf("poll → %d", code)
		}
		if time.Now().After(deadline) {
			t.Fatal("async failure never arrived")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestJobStatusValidation(t *testing.T) {
	base, _ := startGateway(t)
	for path, want := range map[string]int{
		"/jobs/abc": http.StatusBadRequest,
		"/jobs/-3":  http.StatusBadRequest,
		"/jobs/999": http.StatusNotFound,
	} {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Fatalf("GET %s → %d, want %d", path, resp.StatusCode, want)
		}
	}
	resp, err := http.Post(base+"/jobs/1", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /jobs → %d", resp.StatusCode)
	}
}
