package gateway

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"microfaas/internal/cluster"
	"microfaas/internal/core"
	"microfaas/internal/shard"
	"microfaas/internal/telemetry"
)

// startShardedGateway boots two live clusters as shards of one plane
// and fronts them with a sharded gateway.
func startShardedGateway(t *testing.T) (base string, plane *shard.Plane) {
	t.Helper()
	lives := make([]*cluster.Live, 2)
	for i := range lives {
		l, err := cluster.StartLive(cluster.LiveOptions{
			Workers:    2,
			Seed:       int64(11 + i),
			Telemetry:  telemetry.New(),
			ShardLabel: []string{"shard-00", "shard-01"}[i],
			JobIDBase:  int64(i) << 40,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(l.Close)
		lives[i] = l
	}
	plane, err := shard.NewPlane(lives[0].Runtime, orchestrators(lives), shard.Config{})
	if err != nil {
		t.Fatal(err)
	}
	gw, err := NewSharded(plane, Options{Timeout: 30 * time.Second, Mode: "live"})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := gw.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { gw.Close() })
	return "http://" + addr, plane
}

func TestShardedGatewayEndToEnd(t *testing.T) {
	base, plane := startShardedGateway(t)

	// Synchronous invocations route through the consistent-hash tier and
	// come back with cluster-unique job ids.
	seen := map[string]bool{}
	for i, body := range []string{
		`{"function":"CascSHA","args":{"rounds":3,"seed":"a"},"key":"u/1"}`,
		`{"function":"CascSHA","args":{"rounds":3,"seed":"b"},"key":"u/2"}`,
		`{"function":"FloatOps","args":{"iterations":1000},"key":"u/3"}`,
		`{"function":"FloatOps","args":{"iterations":1000},"key":"u/4"}`,
	} {
		resp, out := postInvoke(t, base, body)
		if resp.StatusCode != http.StatusOK || out.Error != "" {
			t.Fatalf("invoke %d: status %d, %+v", i, resp.StatusCode, out)
		}
		if out.JobID == 0 || out.Worker == "" {
			t.Fatalf("invoke %d: response = %+v", i, out)
		}
		seen[out.Worker] = true
	}
	if got := plane.ShardFor("u/1"); got < 0 || got > 1 {
		t.Fatalf("ShardFor out of range: %d", got)
	}

	// /healthz always carries the shard fields; a plane gateway reports
	// the shard count.
	var health HealthResponse
	getJSON(t, base+"/healthz", &health)
	if health.ShardCount != 2 || health.ShardID != "" || health.Status != "ok" {
		t.Fatalf("healthz = %+v", health)
	}

	// /shards snapshots every shard in ring order.
	var statuses []shard.ShardStatus
	getJSON(t, base+"/shards", &statuses)
	if len(statuses) != 2 || statuses[0].Label != "shard-00" || statuses[1].Label != "shard-01" {
		t.Fatalf("shards = %+v", statuses)
	}
	for _, st := range statuses {
		if st.Workers != 2 || st.Weight <= 0 {
			t.Fatalf("shard status = %+v", st)
		}
	}

	// /workers merges both partitions and labels each row by shard.
	var workers []struct {
		ID    string `json:"id"`
		Shard string `json:"shard"`
	}
	getJSON(t, base+"/workers", &workers)
	if len(workers) != 4 {
		t.Fatalf("%d workers across shards", len(workers))
	}
	shardsSeen := map[string]int{}
	for _, w := range workers {
		shardsSeen[w.Shard]++
	}
	if shardsSeen["shard-00"] != 2 || shardsSeen["shard-01"] != 2 {
		t.Fatalf("worker shard labels = %v", shardsSeen)
	}

	// /stats merges the per-shard collectors.
	var stats StatsResponse
	getJSON(t, base+"/stats", &stats)
	if stats.Completed != 4 || stats.Errors != 0 {
		t.Fatalf("stats = %+v", stats)
	}

	// /metrics is one exposition with the plane's shard families and
	// every shard's samples labeled by shard.
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	for _, want := range []string{
		"microfaas_shard_queue_depth",
		"microfaas_shard_stolen_total",
		`shard="shard-00"`,
		`shard="shard-01"`,
	} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("merged metrics missing %q:\n%.2000s", want, body)
		}
	}
	samples, err := telemetry.ParseText(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("merged exposition does not parse: %v", err)
	}
	if got := samples.Sum("microfaas_jobs_submitted_total"); got != 4 {
		t.Fatalf("submitted across shards = %v, want 4", got)
	}
}

func TestShardedGatewayAsyncAndDefaultKey(t *testing.T) {
	base, _ := startShardedGateway(t)

	// No explicit key: the function name routes (colocation default).
	resp, err := http.Post(base+"/invoke?async=1", "application/json",
		strings.NewReader(`{"function":"FloatOps","args":{"iterations":500}}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async status %d", resp.StatusCode)
	}
	var accepted struct {
		JobID int64 `json:"job_id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&accepted); err != nil {
		t.Fatal(err)
	}
	if accepted.JobID == 0 {
		t.Fatal("no job id")
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		r, err := http.Get(base + "/jobs/" + jsonInt(accepted.JobID))
		if err != nil {
			t.Fatal(err)
		}
		if r.StatusCode == http.StatusOK {
			r.Body.Close()
			break
		}
		r.Body.Close()
		if time.Now().After(deadline) {
			t.Fatalf("async job never completed (last status %d)", r.StatusCode)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestUnshardedGatewayShardFields(t *testing.T) {
	base, _ := startGateway(t)
	var health HealthResponse
	getJSON(t, base+"/healthz", &health)
	if health.ShardCount != 1 || health.ShardID != "" {
		t.Fatalf("unsharded healthz = %+v", health)
	}
	resp, err := http.Get(base + "/shards")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/shards on unsharded gateway = %d, want 404", resp.StatusCode)
	}
}

// TestShardedGatewayDrainJoin drives the administrative membership
// endpoints: draining a shard takes it out of service (state "dead",
// routing avoids it), the last live shard refuses to drain, and join
// returns the drained shard to the ring.
func TestShardedGatewayDrainJoin(t *testing.T) {
	base, plane := startShardedGateway(t)

	postShardOp := func(path string) (int, shard.ShardStatus) {
		t.Helper()
		resp, err := http.Post(base+path, "application/json", nil)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var st shard.ShardStatus
		if resp.StatusCode == http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
				t.Fatal(err)
			}
		}
		return resp.StatusCode, st
	}

	// Drain by label; the response carries the fresh snapshot.
	code, st := postShardOp("/shards/shard-01/drain")
	if code != http.StatusOK || st.State != "dead" || st.Index != 1 {
		t.Fatalf("drain = %d, %+v", code, st)
	}
	if got := plane.MemberState(1); got != shard.ShardDead {
		t.Fatalf("shard 1 state after drain = %v", got)
	}

	// /shards reflects the drained state.
	var statuses []shard.ShardStatus
	getJSON(t, base+"/shards", &statuses)
	if statuses[0].State != "up" || statuses[1].State != "dead" {
		t.Fatalf("shards after drain = %+v", statuses)
	}

	// Work still lands — on the surviving shard.
	resp, out := postInvoke(t, base, `{"function":"FloatOps","args":{"iterations":200},"key":"u/9"}`)
	if resp.StatusCode != http.StatusOK || out.Error != "" {
		t.Fatalf("invoke with a drained shard: %d, %+v", resp.StatusCode, out)
	}
	if out.Worker == "" {
		t.Fatalf("invoke ran nowhere: %+v", out)
	}

	// Double drain and last-live-shard drain both conflict.
	if code, _ := postShardOp("/shards/1/drain"); code != http.StatusConflict {
		t.Fatalf("double drain = %d, want 409", code)
	}
	if code, _ := postShardOp("/shards/shard-00/drain"); code != http.StatusConflict {
		t.Fatalf("draining the last live shard = %d, want 409", code)
	}

	// Join brings it back by index.
	code, st = postShardOp("/shards/1/join")
	if code != http.StatusOK || st.State != "up" {
		t.Fatalf("join = %d, %+v", code, st)
	}
	if code, _ := postShardOp("/shards/1/join"); code != http.StatusConflict {
		t.Fatalf("double join = %d, want 409", code)
	}

	// Unknown shards and ops 404; GET is not allowed.
	if code, _ := postShardOp("/shards/nope/drain"); code != http.StatusNotFound {
		t.Fatalf("unknown shard = %d, want 404", code)
	}
	if code, _ := postShardOp("/shards/1/reboot"); code != http.StatusNotFound {
		t.Fatalf("unknown op = %d, want 404", code)
	}
	r, err := http.Get(base + "/shards/1/drain")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET on shard op = %d, want 405", r.StatusCode)
	}
}

// orchestrators extracts the shard orchestrators in ring order.
func orchestrators(lives []*cluster.Live) []*core.Orchestrator {
	out := make([]*core.Orchestrator, len(lives))
	for i, l := range lives {
		out[i] = l.Orch
	}
	return out
}

func jsonInt(v int64) string { return strconv.FormatInt(v, 10) }
