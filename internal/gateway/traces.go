package gateway

import (
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"

	"microfaas/internal/tracing"
)

// PhaseBreakdown is one lifecycle phase's share of a trace, in the
// gateway's wire units (fractional milliseconds).
type PhaseBreakdown struct {
	Phase      string  `json:"phase"`
	DurationMs float64 `json:"duration_ms"`
	EnergyJ    float64 `json:"energy_j"`
	Count      int     `json:"count"`
}

// TraceSummary is a trace's critical-path breakdown: phase latencies sum
// (with UnattributedMs) to LatencyMs, and phase joules sum to EnergyJ.
type TraceSummary struct {
	Trace          string           `json:"trace"`
	Job            int64            `json:"job"`
	Function       string           `json:"function"`
	Worker         string           `json:"worker,omitempty"`
	Attempts       int              `json:"attempts"`
	Error          string           `json:"error,omitempty"`
	StartMs        float64          `json:"start_ms"`
	LatencyMs      float64          `json:"latency_ms"`
	UnattributedMs float64          `json:"unattributed_ms"`
	EnergyJ        float64          `json:"energy_j"`
	Phases         []PhaseBreakdown `json:"phases"`
}

// SpanInfo is one raw span in a GET /traces/{id} reply.
type SpanInfo struct {
	ID         string  `json:"id"`
	Parent     string  `json:"parent,omitempty"`
	Phase      string  `json:"phase"`
	Worker     string  `json:"worker,omitempty"`
	Attempt    int     `json:"attempt"`
	StartMs    float64 `json:"start_ms"`
	DurationMs float64 `json:"duration_ms"`
	EnergyJ    float64 `json:"energy_j"`
	Detail     string  `json:"detail,omitempty"`
	Error      string  `json:"err,omitempty"`
}

// TracesResponse is the GET /traces reply.
type TracesResponse struct {
	Traces []TraceSummary `json:"traces"`
	Stats  tracing.Stats  `json:"stats"`
}

// TraceResponse is the GET /traces/{id} reply.
type TraceResponse struct {
	TraceSummary
	Spans []SpanInfo `json:"spans"`
}

// makeSummary converts an analyzer summary to wire units.
func makeSummary(sum tracing.Summary) TraceSummary {
	out := TraceSummary{
		Trace:          sum.Trace.String(),
		Job:            sum.Job,
		Function:       sum.Function,
		Worker:         sum.Worker,
		Attempts:       sum.Attempts,
		Error:          sum.Err,
		StartMs:        ms(sum.Start),
		LatencyMs:      ms(sum.Latency),
		UnattributedMs: ms(sum.Unattributed),
		EnergyJ:        sum.EnergyJ,
		Phases:         make([]PhaseBreakdown, 0, len(sum.Phases)),
	}
	for _, p := range sum.Phases {
		out.Phases = append(out.Phases, PhaseBreakdown{
			Phase:      string(p.Phase),
			DurationMs: ms(p.Duration),
			EnergyJ:    p.EnergyJ,
			Count:      p.Count,
		})
	}
	return out
}

// handleTraces serves GET /traces: committed-trace summaries, newest
// last. ?job=N returns the trace for one job; ?slowest=N the N slowest by
// end-to-end latency; ?limit=N caps the default listing (100). With
// ?format=chrome or ?format=ndjson the selection is streamed as a raw
// export (Chrome trace_event JSON / newline-delimited spans) instead.
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	if s.tracer == nil {
		writeError(w, http.StatusNotFound, "tracing disabled on this gateway")
		return
	}
	var traces []tracing.Trace
	q := r.URL.Query()
	switch {
	case q.Get("job") != "":
		job, err := strconv.ParseInt(q.Get("job"), 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad job: "+q.Get("job"))
			return
		}
		if tr, ok := s.tracer.ByJob(job); ok {
			traces = []tracing.Trace{tr}
		}
	case q.Get("slowest") != "":
		n, err := strconv.Atoi(q.Get("slowest"))
		if err != nil || n <= 0 {
			writeError(w, http.StatusBadRequest, "bad slowest: "+q.Get("slowest"))
			return
		}
		traces = s.tracer.Slowest(n)
	default:
		limit := 100
		if v := q.Get("limit"); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil || n <= 0 {
				writeError(w, http.StatusBadRequest, "bad limit: "+v)
				return
			}
			limit = n
		}
		traces = s.tracer.Traces()
		if len(traces) > limit {
			traces = traces[len(traces)-limit:] // newest, in stored order
		}
	}
	switch q.Get("format") {
	case "":
		out := TracesResponse{Traces: make([]TraceSummary, 0, len(traces)), Stats: s.tracer.Stats()}
		for _, sum := range tracing.SummarizeAll(traces) {
			out.Traces = append(out.Traces, makeSummary(sum))
		}
		writeJSON(w, http.StatusOK, out)
	case "chrome":
		w.Header().Set("Content-Type", "application/json")
		tracing.WriteChromeTrace(w, traces) //nolint:errcheck // peer gone: nothing to do
	case "ndjson":
		w.Header().Set("Content-Type", "application/x-ndjson")
		tracing.WriteNDJSON(w, traces) //nolint:errcheck // peer gone: nothing to do
	default:
		writeError(w, http.StatusBadRequest, "bad format: "+q.Get("format"))
	}
}

// handleTraceByID serves GET /traces/{id}: the trace's critical-path
// breakdown plus its raw spans. The id is the 16-hex-digit trace id.
func (s *Server) handleTraceByID(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	if s.tracer == nil {
		writeError(w, http.StatusNotFound, "tracing disabled on this gateway")
		return
	}
	idStr := strings.TrimPrefix(r.URL.Path, "/traces/")
	id, err := tracing.ParseTraceID(idStr)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad trace id: "+idStr)
		return
	}
	tr, ok := s.tracer.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown or unsampled trace "+idStr)
		return
	}
	resp := TraceResponse{TraceSummary: makeSummary(tracing.Summarize(tr)), Spans: make([]SpanInfo, 0, len(tr.Spans)+1)}
	all := append([]tracing.Span{tr.Root}, tr.Spans...)
	for _, sp := range all {
		parent := ""
		if sp.Parent != 0 {
			parent = sp.Parent.String()
		}
		resp.Spans = append(resp.Spans, SpanInfo{
			ID:         sp.ID.String(),
			Parent:     parent,
			Phase:      string(sp.Phase),
			Worker:     sp.Worker,
			Attempt:    sp.Attempt,
			StartMs:    ms(sp.Start),
			DurationMs: ms(sp.End - sp.Start),
			EnergyJ:    sp.EnergyJ,
			Detail:     sp.Detail,
			Error:      sp.Err,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

// mountPprof wires the net/http/pprof handlers onto the gateway mux —
// the explicit registrations, not DefaultServeMux, so nothing leaks onto
// the profiler-free default mux and nothing else on it leaks in.
func mountPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}
