package gateway

import (
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"microfaas/internal/telemetry"
	"microfaas/internal/tsdb"
)

// QueryResponse is the GET /query reply: the evaluated query echoed
// back plus one result per matching series (shard labels included —
// the store scrapes every shard's registry, so a sharded gateway's
// /query is already the merged cross-shard view).
type QueryResponse struct {
	Metric string              `json:"metric"`
	Op     string              `json:"op"`
	Series []tsdb.SeriesResult `json:"series"`
}

// AlertsResponse is the GET /alerts reply: the pages firing right now
// plus the retained firing/resolved transition history (oldest first).
type AlertsResponse struct {
	Active  []tsdb.Alert      `json:"active"`
	History []telemetry.Event `json:"history"`
}

// handleQuery serves GET /query against the embedded time-series
// store. Parameters: metric (required), op (last|avg|min|max|increase|
// rate|quantile, default last), q (quantile in [0,1]), window (Go
// duration, default 1m), label=k=v (repeatable matcher), range=1
// (include the window's points), format=ndjson (stream the matching
// raw samples as NDJSON instead of evaluating the op).
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	if s.tsdb == nil {
		writeError(w, http.StatusNotFound, "time-series store disabled on this gateway")
		return
	}
	params := r.URL.Query()
	q := tsdb.Query{
		Metric: params.Get("metric"),
		Op:     tsdb.Op(params.Get("op")),
		Range:  params.Get("range") != "",
	}
	if v := params.Get("q"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad q: "+v)
			return
		}
		q.Q = f
	}
	if v := params.Get("window"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d <= 0 {
			writeError(w, http.StatusBadRequest, "bad window: "+v)
			return
		}
		q.Window = d
	}
	for _, pair := range params["label"] {
		k, v, ok := strings.Cut(pair, "=")
		if !ok || k == "" {
			writeError(w, http.StatusBadRequest, "bad label matcher (want k=v): "+pair)
			return
		}
		if q.Match == nil {
			q.Match = map[string]string{}
		}
		q.Match[k] = v
	}
	if params.Get("format") == "ndjson" {
		w.Header().Set("Content-Type", "application/x-ndjson")
		s.tsdb.WriteNDJSON(w, q.Metric, q.Match, q.Window) //nolint:errcheck // peer gone: nothing to do
		return
	}
	series, err := s.tsdb.Query(q)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	op := string(q.Op)
	if op == "" {
		op = string(tsdb.OpLast)
	}
	writeJSON(w, http.StatusOK, QueryResponse{Metric: q.Metric, Op: op, Series: series})
}

// handleSLO serves GET /slo: every configured objective's fast and slow
// burn-rate pages as of the last scrape.
func (s *Server) handleSLO(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	if s.tsdb == nil {
		writeError(w, http.StatusNotFound, "time-series store disabled on this gateway")
		return
	}
	writeJSON(w, http.StatusOK, s.tsdb.SLOStatus())
}

// handleAlerts serves GET /alerts: currently-firing pages plus the
// retained transition history.
func (s *Server) handleAlerts(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	if s.tsdb == nil {
		writeError(w, http.StatusNotFound, "time-series store disabled on this gateway")
		return
	}
	resp := AlertsResponse{Active: s.tsdb.ActiveAlerts(), History: s.tsdb.AlertHistory()}
	if resp.History == nil {
		resp.History = []telemetry.Event{}
	}
	writeJSON(w, http.StatusOK, resp)
}

// ShardEvent is one lifecycle event in the sharded /events reply,
// tagged with the shard whose log it came from.
type ShardEvent struct {
	telemetry.Event
	Shard string `json:"shard"`
}

// ShardedEventsResponse is the GET /events reply on a gateway fronting
// a whole plane. Cursor is a comma-separated per-shard sequence vector
// (ring order); pass it back as ?since= to poll incrementally — each
// shard's event log numbers independently, so a single integer cannot
// cursor the merged stream. Dropped sums every shard's ring-overwrite
// gap past the cursor.
type ShardedEventsResponse struct {
	Events  []ShardEvent `json:"events"`
	Cursor  string       `json:"cursor"`
	Dropped int64        `json:"dropped"`
}

// handleShardedEvents merges every shard's event ring into one page:
// per-shard Page() reads, then a deterministic merge ordered by
// (timestamp, shard index, sequence). The returned cursor carries each
// shard's last included sequence, so a truncated page resumes exactly
// where it stopped.
func (s *Server) handleShardedEvents(w http.ResponseWriter, r *http.Request, since string, max int) {
	shards := s.plane.Shards()
	cursors := make([]int64, len(shards))
	for i := range cursors {
		cursors[i] = -1
	}
	if since != "" {
		parts := strings.Split(since, ",")
		if len(parts) == 1 {
			// A single integer (e.g. -1) applies to every shard.
			n, err := strconv.ParseInt(parts[0], 10, 64)
			if err != nil {
				writeError(w, http.StatusBadRequest, "bad since: "+since)
				return
			}
			for i := range cursors {
				cursors[i] = n
			}
		} else {
			if len(parts) != len(shards) {
				writeError(w, http.StatusBadRequest,
					"bad since: cursor has "+strconv.Itoa(len(parts))+" fields, plane has "+strconv.Itoa(len(shards))+" shards")
				return
			}
			for i, p := range parts {
				n, err := strconv.ParseInt(p, 10, 64)
				if err != nil {
					writeError(w, http.StatusBadRequest, "bad since: "+since)
					return
				}
				cursors[i] = n
			}
		}
	}
	labels := s.plane.Labels()
	merged := []ShardEvent{}
	var dropped int64
	for si, o := range shards {
		tel := o.Telemetry()
		if tel == nil {
			continue
		}
		events, gap, _ := tel.Events().Page(cursors[si], max)
		dropped += gap
		for _, ev := range events {
			merged = append(merged, ShardEvent{Event: ev, Shard: labels[si]})
		}
	}
	shardIdx := make(map[string]int, len(labels))
	for i, l := range labels {
		shardIdx[l] = i
	}
	sort.SliceStable(merged, func(i, j int) bool {
		a, b := merged[i], merged[j]
		if a.AtMs != b.AtMs {
			return a.AtMs < b.AtMs
		}
		if a.Shard != b.Shard {
			return shardIdx[a.Shard] < shardIdx[b.Shard]
		}
		return a.Seq < b.Seq
	})
	if len(merged) > max {
		merged = merged[:max]
	}
	for _, ev := range merged {
		if si, ok := shardIdx[ev.Shard]; ok && ev.Seq > cursors[si] {
			cursors[si] = ev.Seq
		}
	}
	parts := make([]string, len(cursors))
	for i, c := range cursors {
		parts[i] = strconv.FormatInt(c, 10)
	}
	writeJSON(w, http.StatusOK, ShardedEventsResponse{
		Events:  merged,
		Cursor:  strings.Join(parts, ","),
		Dropped: dropped,
	})
}
