package gateway

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"sync"
	"testing"
	"time"

	"microfaas/internal/cluster"
	"microfaas/internal/core"
)

// TestQueuedMsReportsWaitNotTotal is the regression test for the latency
// accounting bug: queued_ms used to report FinishedAt − SubmittedAt (the
// end-to-end latency) instead of StartedAt − SubmittedAt (the queue wait).
// With a slow worker and a contended queue, the distinction is stark: the
// first job starts immediately (tiny queued_ms), the second waits out the
// first's full cycle.
func TestQueuedMsReportsWaitNotTotal(t *testing.T) {
	l, err := cluster.StartLive(cluster.LiveOptions{Workers: 1, Seed: 9, BootDelay: 60 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(l.Close)
	gw, err := New(l.Orch, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := gw.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { gw.Close() }) //nolint:errcheck
	base := "http://" + addr

	var mu sync.Mutex
	var outs []InvokeResponse
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(base+"/invoke", "application/json",
				bytes.NewReader([]byte(`{"function":"RegExMatch","args":{"pattern":"a+","text":"aa"}}`)))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			var out InvokeResponse
			if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			outs = append(outs, out)
			mu.Unlock()
		}()
	}
	wg.Wait()
	if len(outs) != 2 {
		t.Fatalf("got %d responses", len(outs))
	}
	minQueued, maxQueued := outs[0].QueuedMs, outs[1].QueuedMs
	if minQueued > maxQueued {
		minQueued, maxQueued = maxQueued, minQueued
	}
	// One job ran immediately; under the old accounting its queued_ms
	// would have included the 60ms boot and never been this small.
	if minQueued > 40 {
		t.Fatalf("both jobs report large queued_ms (%.1f, %.1f) — queued time includes execution", outs[0].QueuedMs, outs[1].QueuedMs)
	}
	// The other waited out the first job's ≥60ms cycle.
	if maxQueued < 40 {
		t.Fatalf("contended job reports queued_ms %.1f despite a 60ms boot ahead of it", maxQueued)
	}
	for _, out := range outs {
		if out.TotalLatencyMs < out.QueuedMs+out.TotalMs-1 {
			t.Fatalf("total_latency_ms %.1f < queued %.1f + cycle %.1f", out.TotalLatencyMs, out.QueuedMs, out.TotalMs)
		}
	}
}

// TestAsyncPendingSurvivesFastPollerRace is the regression test for the
// pending-entry leak: when the completion callback fired (and the result
// was even fetched) before invokeAsync got around to marking the job
// pending, the stale pending entry lived forever and /jobs/{id} reported a
// finished job as still pending. The settled map closes the race.
func TestAsyncPendingSurvivesFastPollerRace(t *testing.T) {
	l, err := cluster.StartLive(cluster.LiveOptions{Workers: 1, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(l.Close)
	gw, err := New(l.Orch, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	res := core.Result{Job: core.Job{ID: 7, Function: "F"}, WorkerID: "w"}

	// Normal order: mark pending, then complete → pending retired.
	gw.markPending(7)
	gw.recordAsync(res)
	gw.mu.Lock()
	_, pending := gw.pending[7]
	_, done := gw.done[7]
	gw.mu.Unlock()
	if pending || !done {
		t.Fatalf("normal order: pending=%v done=%v", pending, done)
	}

	// Race order: completion (and even pickup, which consumes the done
	// entry) lands before markPending. The job must NOT be re-marked
	// pending — that entry would never be cleaned up.
	res.Job.ID = 8
	gw.recordAsync(res)
	gw.mu.Lock()
	delete(gw.done, 8) // fast poller consumed the result
	gw.mu.Unlock()
	gw.markPending(8)
	gw.mu.Lock()
	_, pending = gw.pending[8]
	gw.mu.Unlock()
	if pending {
		t.Fatal("completed-and-fetched job re-marked pending: entry leaks forever")
	}
}

// TestAsyncStateExpires verifies every async map — done, settled, and
// pending entries whose callback never fires (drain-abandoned jobs) — is
// reaped once its retention window passes.
func TestAsyncStateExpires(t *testing.T) {
	l, err := cluster.StartLive(cluster.LiveOptions{Workers: 1, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(l.Close)
	gw, err := New(l.Orch, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	past := time.Now().Add(-time.Second)
	gw.mu.Lock()
	gw.pending[1] = past
	gw.done[2] = asyncEntry{expiresAt: past}
	gw.settled[2] = past
	gw.pending[3] = time.Now().Add(time.Minute) // still live
	gw.reapLocked()
	defer gw.mu.Unlock()
	if _, ok := gw.pending[1]; ok {
		t.Fatal("expired pending entry survived reap")
	}
	if _, ok := gw.done[2]; ok {
		t.Fatal("expired done entry survived reap")
	}
	if _, ok := gw.settled[2]; ok {
		t.Fatal("expired settled entry survived reap")
	}
	if _, ok := gw.pending[3]; !ok {
		t.Fatal("live pending entry reaped early")
	}
}

// TestWorkersEndpointReportsHealth checks /workers exposes the OP's
// failure tracking, not just queue depths.
func TestWorkersEndpointReportsHealth(t *testing.T) {
	base, _ := startGateway(t)
	resp, err := http.Get(base + "/workers")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out []struct {
		ID         string `json:"id"`
		Breaker    string `json:"breaker"`
		QueueDepth int    `json:"queue_depth"`
		Completed  int    `json:"completed"`
		Busy       bool   `json:"busy"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("workers = %+v", out)
	}
	for _, w := range out {
		if w.ID == "" || w.Breaker != "closed" {
			t.Fatalf("worker = %+v", w)
		}
	}
}

// TestInvokeDuringDrainIs503 checks both invocation paths refuse work with
// a 503 once the orchestrator is draining.
func TestInvokeDuringDrainIs503(t *testing.T) {
	base, l := startGateway(t)
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	l.Orch.Drain(ctx)
	for _, path := range []string{"/invoke", "/invoke?async=1"} {
		resp, err := http.Post(base+path, "application/json",
			bytes.NewReader([]byte(`{"function":"RegExMatch","args":{"pattern":"a","text":"a"}}`)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("POST %s during drain → %d, want 503", path, resp.StatusCode)
		}
	}
}
