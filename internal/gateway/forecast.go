package gateway

import (
	"encoding/json"
	"net/http"

	"microfaas/internal/core"
)

// shardBudgets is one shard's energy-budget rows inside the sharded
// GET /budgets reply.
type shardBudgets struct {
	Shard   string              `json:"shard"`
	Budgets []core.BudgetStatus `json:"budgets"`
}

// handleForecast serves GET /forecast: the forecast controller's latest
// snapshot — mode, smoothed error ratio, warm-pool target, and the
// per-function rate/EWMA/ahead table. Clusters running without a
// predictor (no Options.Forecast) answer 404.
func (s *Server) handleForecast(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	if s.forecast == nil {
		writeError(w, http.StatusNotFound, "prediction disabled on this cluster")
		return
	}
	writeJSON(w, http.StatusOK, s.forecast.Snapshot())
}

// handleBudgets serves the per-function energy-budget config:
//
//	GET  /budgets  every budgeted function's limit/spent/exhausted rows
//	POST /budgets  {"function": "...", "limit_j": N} sets or updates one
//	               budget (N <= 0 removes it) and returns the fresh rows
//
// A sharded gateway returns per-shard rows and applies POSTs to every
// shard (work stealing can land any function anywhere).
func (s *Server) handleBudgets(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
	case http.MethodPost:
		var req struct {
			Function string  `json:"function"`
			LimitJ   float64 `json:"limit_j"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
			return
		}
		if req.Function == "" {
			writeError(w, http.StatusBadRequest, "function name required")
			return
		}
		if s.plane != nil {
			for _, o := range s.plane.Shards() {
				o.SetEnergyBudget(req.Function, req.LimitJ)
			}
		} else {
			s.orch.SetEnergyBudget(req.Function, req.LimitJ)
		}
	default:
		writeError(w, http.StatusMethodNotAllowed, "GET or POST required")
		return
	}
	if s.plane != nil {
		labels := s.plane.Labels()
		out := []shardBudgets{}
		for si, o := range s.plane.Shards() {
			out = append(out, shardBudgets{Shard: labels[si], Budgets: o.EnergyBudgets()})
		}
		writeJSON(w, http.StatusOK, out)
		return
	}
	writeJSON(w, http.StatusOK, s.orch.EnergyBudgets())
}
