package gateway

import (
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"microfaas/internal/cluster"
	"microfaas/internal/telemetry"
	"microfaas/internal/version"
)

// startTelemetryGateway boots a telemetry-enabled live cluster with a
// gateway in front.
func startTelemetryGateway(t *testing.T) (base string, tel *telemetry.Telemetry) {
	t.Helper()
	tel = telemetry.New()
	l, err := cluster.StartLive(cluster.LiveOptions{Workers: 2, Seed: 9, Meter: true, Telemetry: tel})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(l.Close)
	gw, err := NewWithOptions(l.Orch, Options{Timeout: 30 * time.Second, Telemetry: tel})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := gw.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { gw.Close() })
	return "http://" + addr, tel
}

func TestHealthzJSON(t *testing.T) {
	base, _ := startGateway(t)
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz → %d", resp.StatusCode)
	}
	var h HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Mode != "live" || h.Version != version.Version {
		t.Fatalf("healthz = %+v", h)
	}
	if h.UptimeS < 0 {
		t.Fatalf("uptime went backwards: %+v", h)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	base, _ := startTelemetryGateway(t)
	if _, out := postInvoke(t, base, `{"function":"CascSHA","args":{"rounds":3,"seed":"m"}}`); out.Error != "" {
		t.Fatalf("invoke: %+v", out)
	}
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics → %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != telemetry.TextContentType {
		t.Fatalf("content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	samples, err := telemetry.ParseText(strings.NewReader(string(body)))
	if err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, body)
	}
	if got, ok := samples.Value("microfaas_jobs_submitted_total"); !ok || got != 1 {
		t.Fatalf("jobs_submitted = %v (present %v)", got, ok)
	}
	if got, ok := samples.Value("microfaas_function_invocations_total",
		"function", "CascSHA", "result", "ok"); !ok || got != 1 {
		t.Fatalf("invocations{CascSHA,ok} = %v (present %v)", got, ok)
	}
	if got, ok := samples.Value("microfaas_function_energy_joules_total", "function", "CascSHA"); !ok || got <= 0 {
		t.Fatalf("no energy attributed: %v (present %v)", got, ok)
	}
	if got := samples.Sum("microfaas_worker_boots_total"); got != 1 {
		t.Fatalf("boots = %v", got)
	}
}

func TestMetricsDisabled(t *testing.T) {
	base, _ := startGateway(t)
	for _, path := range []string{"/metrics", "/events"} {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("%s on plain gateway → %d, want 404", path, resp.StatusCode)
		}
	}
}

func TestEventsEndpoint(t *testing.T) {
	base, _ := startTelemetryGateway(t)
	if _, out := postInvoke(t, base, `{"function":"CascSHA","args":{"rounds":3,"seed":"e"}}`); out.Error != "" {
		t.Fatalf("invoke: %+v", out)
	}
	get := func(url string) EventsResponse {
		t.Helper()
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("events → %d", resp.StatusCode)
		}
		var ev EventsResponse
		if err := json.NewDecoder(resp.Body).Decode(&ev); err != nil {
			t.Fatal(err)
		}
		return ev
	}
	all := get(base + "/events")
	if len(all.Events) == 0 {
		t.Fatal("no events after an invocation")
	}
	// One full lifecycle: submit, queue, assign, boot, exec, settle.
	seen := map[string]bool{}
	for _, e := range all.Events {
		seen[e.Type] = true
	}
	for _, typ := range []string{
		telemetry.EventSubmit, telemetry.EventQueue, telemetry.EventAssign,
		telemetry.EventBoot, telemetry.EventExec, telemetry.EventSettle,
	} {
		if !seen[typ] {
			t.Fatalf("missing %s event in %+v", typ, all.Events)
		}
	}
	if all.LastSeq != all.Events[len(all.Events)-1].Seq {
		t.Fatalf("last_seq %d vs newest event %d", all.LastSeq, all.Events[len(all.Events)-1].Seq)
	}
	// Incremental polling from last_seq yields nothing new.
	if tail := get(base + "/events?since=" + strconv.FormatInt(all.LastSeq, 10)); len(tail.Events) != 0 {
		t.Fatalf("tail = %+v", tail.Events)
	}
	// Paging: max=1 returns the oldest retained event.
	if page := get(base + "/events?max=1"); len(page.Events) != 1 || page.Events[0].Seq != all.Events[0].Seq {
		t.Fatalf("page = %+v", page.Events)
	}
}
