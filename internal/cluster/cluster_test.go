package cluster

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"microfaas/internal/model"
	"microfaas/internal/workload"
)

func TestMicroFaaSSimReproducesPaperThroughput(t *testing.T) {
	s, err := NewMicroFaaSSim(model.SBCCount, SimConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.RunSuite(40, nil); err != nil { // 40×17 = 680 jobs
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Errors != 0 {
		t.Fatalf("%d errors", st.Errors)
	}
	if math.Abs(st.ThroughputPerMin-model.PaperSBCThroughput)/model.PaperSBCThroughput > 0.03 {
		t.Fatalf("throughput = %.1f func/min, want %.1f ± 3%%",
			st.ThroughputPerMin, model.PaperSBCThroughput)
	}
}

func TestConventionalSimReproducesPaperThroughput(t *testing.T) {
	s, err := NewConventionalSim(model.VMCount, SimConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.RunSuite(40, nil); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if math.Abs(st.ThroughputPerMin-model.PaperVMThroughput)/model.PaperVMThroughput > 0.03 {
		t.Fatalf("throughput = %.1f func/min, want %.1f ± 3%%",
			st.ThroughputPerMin, model.PaperVMThroughput)
	}
}

func TestEnergyHeadlineNumbers(t *testing.T) {
	mf, err := NewMicroFaaSSim(model.SBCCount, SimConfig{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mf.RunSuite(40, nil); err != nil {
		t.Fatal(err)
	}
	mfJ := mf.Stats().JoulesPerFunction
	if math.Abs(mfJ-model.PaperMicroFaaSJoulesPerFunc)/model.PaperMicroFaaSJoulesPerFunc > 0.08 {
		t.Fatalf("MicroFaaS J/func = %.2f, want %.1f ± 8%%", mfJ, model.PaperMicroFaaSJoulesPerFunc)
	}

	conv, err := NewConventionalSim(model.VMCount, SimConfig{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conv.RunSuite(40, nil); err != nil {
		t.Fatal(err)
	}
	convJ := conv.Stats().JoulesPerFunction
	if math.Abs(convJ-model.PaperConventionalJoulesPerFunc)/model.PaperConventionalJoulesPerFunc > 0.08 {
		t.Fatalf("conventional J/func = %.2f, want %.1f ± 8%%", convJ, model.PaperConventionalJoulesPerFunc)
	}

	gain := convJ / mfJ
	if math.Abs(gain-model.PaperEnergyEfficiencyGain)/model.PaperEnergyEfficiencyGain > 0.10 {
		t.Fatalf("efficiency gain = %.2fx, want %.1fx ± 10%%", gain, model.PaperEnergyEfficiencyGain)
	}
}

func TestSimDeterministicForSeed(t *testing.T) {
	run := func() SuiteStats {
		s, err := NewMicroFaaSSim(4, SimConfig{Seed: 99})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.RunSuite(5, nil); err != nil {
			t.Fatal(err)
		}
		return s.Stats()
	}
	a, b := run(), run()
	// Energy totals sum over a map, so the last float bits may differ in
	// order; everything else must be bit-identical.
	if a.Completed != b.Completed || a.Errors != b.Errors ||
		a.MeanCycle != b.MeanCycle || a.MakespanS != b.MakespanS ||
		a.ThroughputPerMin != b.ThroughputPerMin {
		t.Fatalf("same seed, different stats:\n%+v\n%+v", a, b)
	}
	if math.Abs(a.TotalEnergyJ-b.TotalEnergyJ) > 1e-6 {
		t.Fatalf("energy diverged: %v vs %v", a.TotalEnergyJ, b.TotalEnergyJ)
	}
}

func TestSimSeedChangesOutcome(t *testing.T) {
	stats := func(seed int64) SuiteStats {
		s, err := NewMicroFaaSSim(4, SimConfig{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.RunSuite(5, nil); err != nil {
			t.Fatal(err)
		}
		return s.Stats()
	}
	if stats(1).MakespanS == stats(2).MakespanS {
		t.Fatal("different seeds produced identical makespans — jitter inert?")
	}
}

func TestRunSuiteValidation(t *testing.T) {
	s, err := NewMicroFaaSSim(2, SimConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.RunSuite(0, nil); err == nil {
		t.Fatal("zero jobs accepted")
	}
	if _, err := NewMicroFaaSSim(0, SimConfig{}); err == nil {
		t.Fatal("empty cluster accepted")
	}
	if _, err := NewConventionalSim(0, SimConfig{}); err == nil {
		t.Fatal("empty VM cluster accepted")
	}
}

func TestConventionalThroughputSaturates(t *testing.T) {
	// Fig 4's mechanism: throughput grows ~linearly in VM count until the
	// cores saturate, then plateaus.
	thpt := func(vms int) float64 {
		s, err := NewConventionalSim(vms, SimConfig{Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.RunSuite(12, nil); err != nil {
			t.Fatal(err)
		}
		// Plateau throughput must be measured as completions over
		// makespan, not per-worker cycle capacity.
		st := s.Stats()
		return float64(st.Completed) / (st.MakespanS / 60)
	}
	t6, t12, t20, t24 := thpt(6), thpt(12), thpt(20), thpt(24)
	if t12 < t6*1.7 {
		t.Fatalf("6→12 VMs: %.1f → %.1f func/min — should be near-linear", t6, t12)
	}
	if t24 > t20*1.10 {
		t.Fatalf("20→24 VMs: %.1f → %.1f func/min — should have plateaued", t20, t24)
	}
	sat := model.SaturatedThroughput()
	if math.Abs(t24-sat)/sat > 0.10 {
		t.Fatalf("plateau %.1f func/min, want ≈%.1f", t24, sat)
	}
}

func TestLiveClusterEndToEnd(t *testing.T) {
	l, err := StartLive(LiveOptions{Workers: 3, Seed: 5, Meter: true, BootDelay: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	// Drive one of each function through the real stack.
	rng := rand.New(rand.NewSource(8))
	for _, f := range workload.All() {
		l.Orch.Submit(f.Name, f.GenArgs(rng))
	}
	l.Orch.Quiesce()
	recs := l.Orch.Collector().Records()
	if len(recs) != 17 {
		t.Fatalf("completed %d of 17", len(recs))
	}
	for _, r := range recs {
		if r.Err != "" {
			t.Errorf("%s failed: %s", r.Function, r.Err)
		}
		if r.Boot < 5*time.Millisecond {
			t.Errorf("%s: boot %v below configured delay", r.Function, r.Boot)
		}
		if r.Exec <= 0 {
			t.Errorf("%s: no measured exec time", r.Function)
		}
	}
	// Power accounting ran: all workers off, energy accumulated.
	for _, w := range l.Workers {
		if got := l.Meter.Power(w.ID()); got != 0.128 {
			t.Errorf("%s draw = %v, want off", w.ID(), got)
		}
	}
	if l.Meter.TotalEnergy(l.Runtime.Now()) <= 0 {
		t.Error("no energy recorded")
	}
}

func TestLiveClusterArrivalProcess(t *testing.T) {
	l, err := StartLive(LiveOptions{Workers: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	rng := rand.New(rand.NewSource(1))
	fns := []string{"RedisInsert", "MQProduce", "RegExMatch"}
	stop, err := l.Orch.StartArrivals(15*time.Millisecond, 1, func(r *rand.Rand) (string, []byte) {
		name := fns[r.Intn(len(fns))]
		f, _ := workload.Get(name)
		return name, f.GenArgs(rng)
	})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(200 * time.Millisecond)
	stop()
	l.Orch.Quiesce()
	if n := l.Orch.Collector().Len(); n < 5 {
		t.Fatalf("arrival process completed only %d jobs", n)
	}
	if e := l.Orch.Collector().ErrorCount(); e != 0 {
		t.Fatalf("%d errors under arrival load", e)
	}
}

func TestLiveCloseIdempotent(t *testing.T) {
	l, err := StartLive(LiveOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	l.Close()
	l.Close()
}
