package cluster

import (
	"fmt"
	"time"

	"microfaas/internal/core"
	"microfaas/internal/shard"
)

// Deterministic shard churn for a ShardedSim: Kill takes a shard's
// control-plane host down (the probe starts failing and the
// orchestrator seals — queued jobs freeze for recovery, in-flight
// attempts finish on their boards), Revive brings it back. Schedule the
// churn on the shared virtual clock (ScheduleKill/ScheduleRevive) and a
// seeded run replays byte-identically, kill timing included.
//
// Worker re-homing rides the plane's membership hooks: when the health
// checker declares a killed shard dead, its worker partition moves
// round-robin onto the up shards (core.RemoveWorker hands each board
// over as soon as its current attempt settles; core.AddWorker attaches
// it to the survivor); when the shard rejoins, every surviving board it
// owned — wherever it lives now — moves home again. The owner map
// tracks where each board currently lives. All churn runs on the
// engine thread, so none of this state needs a lock.
//
// Churn requires scfg.Membership.Enabled and is not supported together
// with power management (a power manager's node set is fixed at
// construction, so its workers cannot re-home).

// Kill takes shard si's control-plane host down: its membership probe
// fails from now on and its orchestrator seals immediately — new
// submissions bounce to the plane's failover path, queued jobs freeze
// in place until the health checker declares the shard dead and drains
// them into survivors, and attempts already executing finish on their
// boards and settle normally. No-op if the shard is already down.
func (s *ShardedSim) Kill(si int) error {
	if err := s.churnable(si); err != nil {
		return err
	}
	if s.down[si] {
		return nil
	}
	s.down[si] = true
	s.Orchs[si].Seal()
	s.Plane.Kick()
	return nil
}

// Revive brings shard si's host back: its probe succeeds again. A shard
// that was declared dead earns its rejoin streak and re-enters the ring
// with its workers returned; a shard that only blipped (killed but
// revived before the death threshold) unseals immediately.
func (s *ShardedSim) Revive(si int) error {
	if err := s.churnable(si); err != nil {
		return err
	}
	if !s.down[si] {
		return nil
	}
	s.down[si] = false
	if s.Plane.MemberState(si) != shard.ShardDead {
		// Never declared dead, so no rejoin transition will fire: undo the
		// seal directly.
		s.Orchs[si].Reopen()
	}
	s.Plane.Kick()
	return nil
}

// ScheduleKill arranges Kill(si) at virtual time at.
func (s *ShardedSim) ScheduleKill(at time.Duration, si int) {
	s.Engine.At(at, func() { _ = s.Kill(si) })
}

// ScheduleRevive arranges Revive(si) at virtual time at.
func (s *ShardedSim) ScheduleRevive(at time.Duration, si int) {
	s.Engine.At(at, func() { _ = s.Revive(si) })
}

// Down reports whether shard si's host is currently killed.
func (s *ShardedSim) Down(si int) bool {
	return si >= 0 && si < len(s.down) && s.down[si]
}

// churnable validates a Kill/Revive target.
func (s *ShardedSim) churnable(si int) error {
	if s.owner == nil {
		return fmt.Errorf("cluster: churn needs Membership.Enabled in the shard config")
	}
	if si < 0 || si >= len(s.Orchs) {
		return fmt.Errorf("cluster: shard %d outside [0,%d)", si, len(s.Orchs))
	}
	return nil
}

// upShards returns the shards the membership view considers up, in
// index order.
func (s *ShardedSim) upShards() []int {
	var up []int
	for _, st := range s.Plane.Status() {
		if st.State == shard.ShardUp.String() {
			up = append(up, st.Index)
		}
	}
	return up
}

// rehomeDead is the plane's OnDeath hook: dead shard d's boards —
// including any it had previously adopted — move round-robin onto the
// up shards. Each board detaches as soon as its in-flight attempt (if
// any) settles and attaches to its new owner then.
func (s *ShardedSim) rehomeDead(d int) {
	up := s.upShards()
	if len(up) == 0 {
		return
	}
	k := 0
	for _, ws := range s.Workers {
		for _, w := range ws {
			if s.owner[w.ID()] != d {
				continue
			}
			target := up[k%len(up)]
			k++
			s.moveWorker(w.ID(), d, target)
		}
	}
}

// rehomeRejoin is the plane's OnRejoin hook: shard r's home partition
// returns to it from wherever its boards were fostered.
func (s *ShardedSim) rehomeRejoin(r int) {
	for _, w := range s.Workers[r] {
		id := w.ID()
		if cur := s.owner[id]; cur != r {
			s.moveWorker(id, cur, r)
		}
	}
}

// moveWorker detaches a board from shard from and attaches it to shard
// to (deferred until the board's current attempt settles when busy).
// The owner map flips at handoff time, when the board actually changes
// hands.
func (s *ShardedSim) moveWorker(id string, from, to int) {
	_ = s.Orchs[from].RemoveWorker(id, func(w core.Worker) {
		s.owner[id] = to
		_ = s.Orchs[to].AddWorker(w)
	})
}
