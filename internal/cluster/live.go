package cluster

import (
	"fmt"
	"time"

	"microfaas/internal/core"
	"microfaas/internal/gpio"
	"microfaas/internal/kvstore"
	"microfaas/internal/mq"
	"microfaas/internal/node"
	"microfaas/internal/objstore"
	"microfaas/internal/power"
	"microfaas/internal/powermgr"
	"microfaas/internal/sqlstore"
	"microfaas/internal/telemetry"
	"microfaas/internal/tracing"
	"microfaas/internal/workload"
)

// LiveOptions tunes a live cluster.
type LiveOptions struct {
	// Workers is the node count (default 4).
	Workers int
	// BootDelay simulates the per-job worker reboot (default 0 — tests
	// and examples usually don't want to pay 1.51 s per job; pass
	// bootos.BootTime(bootos.ARM) for paper-faithful pacing).
	BootDelay time.Duration
	// Seed drives the OP's random assignment.
	Seed int64
	// Meter enables wall-clock power accounting when true.
	Meter bool
	// MaxAttempts enables OP-level retries of failed jobs (default 1).
	MaxAttempts int
	// JobTimeout bounds each attempt on the wall clock (zero = none).
	JobTimeout time.Duration
	// RetryBase/RetryMax enable exponential backoff with seeded jitter
	// between attempts (zero RetryBase = immediate re-queue).
	RetryBase time.Duration
	RetryMax  time.Duration
	// BreakerThreshold/BreakerProbe configure the OP's per-worker circuit
	// breaker (zero threshold = disabled).
	BreakerThreshold int
	BreakerProbe     time.Duration
	// InvokeTimeout bounds one worker invocation round trip (see
	// node.LiveWorkerConfig).
	InvokeTimeout time.Duration
	// Faults injects hang/error/slow faults into every worker (each
	// worker draws from Faults.Seed offset by its index, so runs are
	// reproducible per node). See node.FaultSpec.
	Faults *node.FaultSpec
	// Telemetry enables the metrics registry and event stream across the
	// OP, the workers, and (when Meter is on) the power meter. Nil
	// disables instrumentation entirely.
	Telemetry *telemetry.Telemetry
	// Tracer enables per-invocation lifecycle span recording across the
	// OP and the workers, with trace ids propagated to the workers over
	// the wire protocol. Nil disables tracing entirely.
	Tracer *tracing.Tracer
	// Policy selects the OP's queue-assignment policy (default
	// AssignRandom, the paper's).
	Policy core.AssignPolicy
	// Power enables the dynamic power-management plane: workers run
	// managed — powered off until the OP wakes them (a wake pays
	// BootDelay of real wall-clock time), powered down after the policy's
	// idle timeout — and every power-state transition lands in the
	// cluster's GPIO audit log.
	Power *powermgr.Policy
	// ShardLabel names this cluster's orchestrator as one shard of a
	// larger deployment (see core.Config.ShardLabel); JobIDBase gives it
	// a disjoint job-id space so ids stay cluster-unique when several
	// live clusters sit behind one shard.Plane.
	ShardLabel string
	JobIDBase  int64
	// EnergyBudgets caps the listed functions' metered joules (requires
	// Meter for anything to accrue); see core.Config.EnergyBudgets.
	EnergyBudgets map[string]float64
	// BudgetThrottle is the pre-queue hold served by submissions of
	// budget-exhausted functions (zero = deprioritize only).
	BudgetThrottle time.Duration
}

// Live is a running in-process MicroFaaS deployment: four real backing
// services, N real TCP workers executing the real workload functions, and
// the orchestration platform wired over them.
type Live struct {
	Env     *workload.Env
	Orch    *core.Orchestrator
	Runtime core.WallRuntime
	Meter   *power.Meter
	Workers []*node.LiveWorker
	// Telemetry is the cluster's metrics registry and event stream (nil
	// when LiveOptions.Telemetry was nil).
	Telemetry *telemetry.Telemetry
	// PowerMgr is the dynamic power-management plane and GPIO its power
	// audit log (both nil unless LiveOptions.Power was set).
	PowerMgr *powermgr.Manager
	GPIO     *gpio.Controller

	kv  *kvstore.Server
	sql *sqlstore.Server
	obj *objstore.Server
	mqs *mq.Server
}

// StartLive boots the full stack on loopback TCP and provisions the
// workload fixtures. Always Close a started cluster.
func StartLive(opts LiveOptions) (*Live, error) {
	n := opts.Workers
	if n == 0 {
		n = 4
	}
	if n < 0 {
		return nil, fmt.Errorf("cluster: negative worker count %d", n)
	}
	l := &Live{Runtime: core.NewWallRuntime(), Telemetry: opts.Telemetry}
	if opts.Meter {
		l.Meter = power.NewMeter()
	}
	registerMeterMetrics(opts.Telemetry, l.Meter, l.Runtime.Now)
	ok := false
	defer func() {
		if !ok {
			l.Close()
		}
	}()

	l.kv = kvstore.NewServer(nil)
	kvAddr, err := l.kv.Listen("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	l.sql = sqlstore.NewServer(nil)
	sqlAddr, err := l.sql.Listen("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	l.obj = objstore.NewServer(nil)
	objAddr, err := l.obj.Listen("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	l.mqs = mq.NewServer(nil)
	mqAddr, err := l.mqs.Listen("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	l.Env = &workload.Env{
		KVStoreAddr:  kvAddr,
		SQLStoreAddr: sqlAddr,
		ObjStoreAddr: objAddr,
		MQAddr:       mqAddr,
	}
	if err := workload.SetupBackends(l.Env); err != nil {
		return nil, err
	}

	if opts.Power != nil {
		l.GPIO = gpio.NewController()
	}
	workers := make([]core.Worker, 0, n)
	for i := 0; i < n; i++ {
		cfg := node.LiveWorkerConfig{
			ID:            fmt.Sprintf("live-%03d", i),
			Env:           l.Env,
			BootDelay:     opts.BootDelay,
			InvokeTimeout: opts.InvokeTimeout,
		}
		if opts.Faults != nil {
			spec := *opts.Faults
			spec.Seed += int64(i)
			cfg.Faults = &spec
		}
		if l.Meter != nil {
			cfg.Meter = l.Meter
			cfg.Clock = l.Runtime.Now
		}
		if opts.Telemetry != nil {
			cfg.Telemetry = opts.Telemetry
			cfg.Clock = l.Runtime.Now // events stamp on the cluster clock
		}
		if opts.Tracer != nil {
			cfg.Tracer = opts.Tracer
			cfg.Clock = l.Runtime.Now // spans stamp on the cluster clock
		}
		if opts.Power != nil {
			cfg.Managed = true
			cfg.GPIO = l.GPIO
			cfg.Clock = l.Runtime.Now // power transitions stamp on the cluster clock
		}
		w, err := node.StartLiveWorker(cfg)
		if err != nil {
			return nil, err
		}
		l.Workers = append(l.Workers, w)
		workers = append(workers, w)
	}
	if n > 0 {
		cc := core.Config{
			Runtime:          l.Runtime,
			Workers:          workers,
			Seed:             opts.Seed,
			Policy:           opts.Policy,
			MaxAttempts:      opts.MaxAttempts,
			JobTimeout:       opts.JobTimeout,
			RetryBase:        opts.RetryBase,
			RetryMax:         opts.RetryMax,
			BreakerThreshold: opts.BreakerThreshold,
			BreakerProbe:     opts.BreakerProbe,
			Telemetry:        opts.Telemetry,
			Tracer:           opts.Tracer,
			ShardLabel:       opts.ShardLabel,
			JobIDBase:        opts.JobIDBase,
			EnergyBudgets:    opts.EnergyBudgets,
			BudgetThrottle:   opts.BudgetThrottle,
		}
		if opts.Power != nil {
			nodes := make([]powermgr.Node, len(l.Workers))
			for i, w := range l.Workers {
				nodes[i] = w
			}
			pm, err := powermgr.New(powermgr.Config{
				Runtime:   l.Runtime,
				Nodes:     nodes,
				Policy:    *opts.Power,
				Telemetry: opts.Telemetry,
			})
			if err != nil {
				return nil, err
			}
			l.PowerMgr = pm
			cc.PowerManager = pm
		}
		orch, err := core.New(cc)
		if err != nil {
			return nil, err
		}
		l.Orch = orch
	}
	ok = true
	return l, nil
}

// Close tears down workers and services. Safe to call more than once and
// on partially-started clusters.
func (l *Live) Close() {
	for _, w := range l.Workers {
		w.Close() //nolint:errcheck
	}
	l.Workers = nil
	if l.kv != nil {
		l.kv.Close() //nolint:errcheck
		l.kv = nil
	}
	if l.sql != nil {
		l.sql.Close() //nolint:errcheck
		l.sql = nil
	}
	if l.obj != nil {
		l.obj.Close() //nolint:errcheck
		l.obj = nil
	}
	if l.mqs != nil {
		l.mqs.Close() //nolint:errcheck
		l.mqs = nil
	}
}
