package cluster

import (
	"math"
	"reflect"
	"testing"
	"time"

	"microfaas/internal/power"
	"microfaas/internal/tracing"
)

// TestTracingDoesNotPerturbSimulation is the bit-identical guarantee:
// the tracer never draws randomness and never schedules events, so a
// seeded run's collected records must be byte-for-byte the same with
// tracing off (nil) and on — across several seeds, with the failure
// path exercised so retry/fault instrumentation is covered too.
func TestTracingDoesNotPerturbSimulation(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		run := func(tr *tracing.Tracer) interface{} {
			s, err := NewMicroFaaSSim(4, SimConfig{
				Seed:        seed,
				Jitter:      0.05,
				FailureRate: 0.15,
				MaxAttempts: 3,
				JobTimeout:  2 * time.Minute,
				Tracer:      tr,
			})
			if err != nil {
				t.Fatal(err)
			}
			coll, err := s.RunSuite(1, nil)
			if err != nil {
				t.Fatal(err)
			}
			return coll.Records()
		}
		plain := run(nil)
		traced := run(tracing.New())
		if !reflect.DeepEqual(plain, traced) {
			t.Fatalf("seed %d: tracing changed the seeded run's records", seed)
		}
	}
}

// TestSimTraceSumsToLatencyAndEnergy is the tracing acceptance check:
// for every committed trace of a seeded MicroFaaS sim run, the phase
// latencies (plus any unattributed gap) must sum to the invocation's
// end-to-end latency exactly, and the phase joules must match the
// energy reconstructed from the collector's record and the calibrated
// SBC power model within 1% — the critical path accounted for both
// ways.
func TestSimTraceSumsToLatencyAndEnergy(t *testing.T) {
	tr := tracing.New()
	s, err := NewMicroFaaSSim(8, SimConfig{Seed: 7, Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	coll, err := s.RunSuite(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	records := coll.Records()
	byJob := map[int64]int{}
	for i, r := range records {
		byJob[r.JobID] = i
	}
	traces := tr.Traces()
	if len(traces) != len(records) {
		t.Fatalf("traces %d != records %d", len(traces), len(records))
	}

	sbc := power.DefaultSBCModel()
	for _, x := range traces {
		sum := tracing.Summarize(x)
		i, ok := byJob[sum.Job]
		if !ok {
			t.Fatalf("trace %v for unknown job %d", x.ID, sum.Job)
		}
		r := records[i]

		// Latency: the root must cover submit→finish, and the phases must
		// telescope to it with nothing unattributed on the clean path.
		if wantLat := r.Finished - r.Submitted; sum.Latency != wantLat {
			t.Fatalf("job %d: trace latency %v != record latency %v", sum.Job, sum.Latency, wantLat)
		}
		var phaseTotal time.Duration
		var phaseJoules float64
		for _, p := range sum.Phases {
			phaseTotal += p.Duration
			phaseJoules += p.EnergyJ
		}
		if phaseTotal+sum.Unattributed != sum.Latency {
			t.Fatalf("job %d: phases %v + unattributed %v != latency %v",
				sum.Job, phaseTotal, sum.Unattributed, sum.Latency)
		}
		if sum.Unattributed != 0 {
			t.Fatalf("job %d: clean invocation left %v unattributed", sum.Job, sum.Unattributed)
		}

		// Energy: boot at boot draw plus overhead+exec at busy draw, the
		// same arithmetic the meter applies, within the 1% tolerance.
		want := r.Boot.Seconds()*float64(sbc.Power(power.Booting)) +
			(r.Overhead + r.Exec).Seconds()*float64(sbc.Power(power.Busy))
		if phaseJoules != sum.EnergyJ {
			t.Fatalf("job %d: phase joules %v != summary joules %v", sum.Job, phaseJoules, sum.EnergyJ)
		}
		if diff := math.Abs(sum.EnergyJ - want); diff > 0.01*want {
			t.Fatalf("job %d: trace %.6f J vs record-derived %.6f J (%.2f%% off)",
				sum.Job, sum.EnergyJ, want, 100*diff/want)
		}
	}
}

// TestSimTraceRetryFaultShape runs a failure-heavy seed and checks that
// retried invocations carry the full forensic shape: a fault span per
// failed attempt, a retry span per re-queue, attempts counted on the
// root, and per-attempt boot/exec spans.
func TestSimTraceRetryFaultShape(t *testing.T) {
	tr := tracing.New()
	s, err := NewMicroFaaSSim(4, SimConfig{
		Seed:        11,
		FailureRate: 0.3,
		MaxAttempts: 3,
		RetryBase:   10 * time.Millisecond,
		JobTimeout:  2 * time.Minute,
		Tracer:      tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.RunSuite(2, nil); err != nil {
		t.Fatal(err)
	}
	var sawRetry bool
	for _, x := range tr.Traces() {
		counts := map[tracing.Phase]int{}
		for _, sp := range x.Spans {
			counts[sp.Phase]++
		}
		if x.Root.Attempt == 0 {
			if counts[tracing.PhaseRetry] != 0 {
				t.Fatalf("job %d: single-attempt trace has retry spans", x.Root.Job)
			}
			continue
		}
		sawRetry = true
		// N+1 attempts → N retries, and at least N faults (the final
		// attempt may succeed).
		if counts[tracing.PhaseRetry] != x.Root.Attempt {
			t.Fatalf("job %d: %d attempts but %d retry spans",
				x.Root.Job, x.Root.Attempt+1, counts[tracing.PhaseRetry])
		}
		if counts[tracing.PhaseFault] < x.Root.Attempt {
			t.Fatalf("job %d: %d attempts but only %d fault spans",
				x.Root.Job, x.Root.Attempt+1, counts[tracing.PhaseFault])
		}
		if counts[tracing.PhaseQueue] != x.Root.Attempt+1 || counts[tracing.PhaseExec] != x.Root.Attempt+1 {
			t.Fatalf("job %d: queue/exec spans %d/%d for %d attempts",
				x.Root.Job, counts[tracing.PhaseQueue], counts[tracing.PhaseExec], x.Root.Attempt+1)
		}
	}
	if !sawRetry {
		t.Fatal("failure-heavy run produced no retried traces; pick a different seed")
	}
}

// TestLiveTraceWirePropagation boots a real TCP cluster with tracing
// and checks the distributed path: worker-recorded boot/exec spans must
// land in the orchestrator-side tracer via the wire-propagated context,
// carry the worker's metered joules, and telescope into the end-to-end
// latency like the sim spans do.
func TestLiveTraceWirePropagation(t *testing.T) {
	tr := tracing.New()
	l, err := StartLive(LiveOptions{
		Workers: 2, Seed: 3, Meter: true, Tracer: tr,
		BootDelay: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	const jobs = 4
	for i := 0; i < jobs; i++ {
		l.Orch.Submit("CascSHA", []byte(`{"rounds":3,"seed":"x"}`))
	}
	l.Orch.Quiesce()

	traces := tr.Traces()
	if len(traces) != jobs {
		t.Fatalf("traces = %d, want %d", len(traces), jobs)
	}
	for _, x := range traces {
		counts := map[tracing.Phase]int{}
		var bootDur time.Duration
		var execJ float64
		for _, sp := range x.Spans {
			counts[sp.Phase]++
			switch sp.Phase {
			case tracing.PhaseBoot:
				bootDur += sp.Duration()
				if sp.Worker == "" {
					t.Fatalf("job %d: boot span without worker id", x.Root.Job)
				}
			case tracing.PhaseExec:
				execJ += sp.EnergyJ
			}
		}
		for _, p := range []tracing.Phase{tracing.PhaseQueue, tracing.PhaseBoot, tracing.PhaseExec, tracing.PhaseSettle} {
			if counts[p] == 0 {
				t.Fatalf("job %d: missing %s span (got %v)", x.Root.Job, p, counts)
			}
		}
		if bootDur < 15*time.Millisecond {
			t.Fatalf("job %d: boot span %v does not cover the 20ms boot delay", x.Root.Job, bootDur)
		}
		if execJ <= 0 {
			t.Fatalf("job %d: exec span carries no metered energy", x.Root.Job)
		}
		sum := tracing.Summarize(x)
		var phaseTotal time.Duration
		for _, p := range sum.Phases {
			phaseTotal += p.Duration
		}
		if phaseTotal+sum.Unattributed != sum.Latency {
			t.Fatalf("job %d: phases %v + unattributed %v != latency %v",
				sum.Job, phaseTotal, sum.Unattributed, sum.Latency)
		}
	}
}
