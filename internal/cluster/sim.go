// Package cluster assembles complete MicroFaaS and conventional clusters
// in both execution modes, mirroring the paper's two test setups
// (Sec IV-B and Sec V):
//
//   - the MicroFaaS cluster: N single-core ARM SBC workers, each with a
//     Fast Ethernet link, orchestrated run-to-completion with
//     reboot-between-jobs and power-down-when-idle;
//   - the conventional cluster: N single-vCPU QEMU microVMs sharing one
//     12-core rack server through a bridged-virtio network path.
//
// Sim clusters run on the discrete-event engine and scale to the paper's
// hypothetical 989-node racks; the live cluster runs real TCP workers and
// the real workload suite.
package cluster

import (
	"fmt"
	"time"

	"microfaas/internal/core"
	"microfaas/internal/gpio"
	"microfaas/internal/model"
	"microfaas/internal/netsim"
	"microfaas/internal/node"
	"microfaas/internal/power"
	"microfaas/internal/powermgr"
	"microfaas/internal/sim"
	"microfaas/internal/telemetry"
	"microfaas/internal/trace"
	"microfaas/internal/tracing"
)

// SimConfig tunes a simulated cluster.
type SimConfig struct {
	// Seed drives all randomness (assignment, jitter); same seed → same run.
	Seed int64
	// Jitter is the relative service-time perturbation (default 0.03).
	Jitter float64
	// Link overrides the worker link (the GigE-NIC ablation).
	Link *netsim.Link
	// Specs overrides the function table (the crypto-accelerator ablation).
	Specs []model.FunctionSpec
	// DisableReboot is the no-reboot ablation.
	DisableReboot bool
	// Cores overrides the rack server core count (conventional only).
	Cores int
	// FailureRate injects per-job worker faults (see node.SimWorkerConfig).
	FailureRate float64
	// HangRate injects per-job worker wedges: the worker powers on and
	// never reports back, so only JobTimeout can rescue the job.
	HangRate float64
	// SlowRate/SlowFactor inject per-job stragglers (see
	// node.SimWorkerConfig).
	SlowRate   float64
	SlowFactor float64
	// KeepWarm keeps workers booted-idle after a job for this long (the
	// warm-pool extension; zero = the paper's immediate power-down).
	KeepWarm time.Duration
	// BootTime overrides the worker-OS boot duration (zero = the final
	// bootos profile; the boot-stage ablation passes intermediate stages).
	BootTime time.Duration
	// Policy selects the OP's queue-assignment policy.
	Policy core.AssignPolicy
	// MaxAttempts enables OP-level retries of failed jobs.
	MaxAttempts int
	// JobTimeout bounds each attempt on the virtual clock (zero = none).
	JobTimeout time.Duration
	// RetryBase/RetryMax enable exponential backoff with seeded jitter
	// between attempts (zero RetryBase = immediate re-queue).
	RetryBase time.Duration
	RetryMax  time.Duration
	// BreakerThreshold/BreakerProbe configure the OP's per-worker circuit
	// breaker (zero threshold = disabled).
	BreakerThreshold int
	BreakerProbe     time.Duration
	// Telemetry enables the metrics registry and event stream across the
	// OP, the workers, and the power meter. Nil (the default) disables
	// instrumentation entirely; because telemetry never draws from the
	// seeded RNG or schedules events, enabling it leaves a seeded run's
	// trace bit-identical.
	Telemetry *telemetry.Telemetry
	// Tracer enables per-invocation lifecycle span recording across the
	// OP and the workers, with the same bit-identical guarantee as
	// Telemetry (the tracer never draws randomness; sampling hashes the
	// deterministic trace id).
	Tracer *tracing.Tracer
	// Power enables the dynamic power-management plane (MicroFaaS
	// clusters only): workers run managed — powered off until the OP
	// wakes them, idle-powered-down per the policy — instead of the
	// static per-job power cycle. Mutually exclusive with DisableReboot
	// and KeepWarm. Nil (the default) leaves seeded runs byte-identical
	// to clusters built before the power manager existed.
	Power *powermgr.Policy
	// EnergyBudgets caps the listed functions' metered joules
	// (core.Config.EnergyBudgets): exhausted functions are deprioritized
	// by the energy-aware policy and throttled when BudgetThrottle is
	// set. Nil disables budget accounting.
	EnergyBudgets map[string]float64
	// BudgetThrottle is the pre-queue hold served by submissions of
	// budget-exhausted functions (zero = deprioritize only).
	BudgetThrottle time.Duration
}

// coreConfig assembles the OP config shared by every sim constructor.
func (c SimConfig) coreConfig(engine *sim.Engine, workers []core.Worker) core.Config {
	return core.Config{
		Runtime:          core.SimRuntime{Engine: engine},
		Workers:          workers,
		Seed:             c.Seed + 1,
		Policy:           c.Policy,
		MaxAttempts:      c.MaxAttempts,
		JobTimeout:       c.JobTimeout,
		RetryBase:        c.RetryBase,
		RetryMax:         c.RetryMax,
		BreakerThreshold: c.BreakerThreshold,
		BreakerProbe:     c.BreakerProbe,
		Telemetry:        c.Telemetry,
		Tracer:           c.Tracer,
		EnergyBudgets:    c.EnergyBudgets,
		BudgetThrottle:   c.BudgetThrottle,
	}
}

func (c SimConfig) jitter() float64 {
	if c.Jitter == 0 {
		return 0.03
	}
	if c.Jitter < 0 {
		return 0
	}
	return c.Jitter
}

// Sim is an assembled simulated cluster.
type Sim struct {
	Engine  *sim.Engine
	Meter   *power.Meter
	Orch    *core.Orchestrator
	Workers []*node.SimWorker
	// Server is the rack server (conventional clusters only).
	Server *node.RackServer
	// GPIO is the OP's power-control plane with the cluster's power-state
	// audit log (MicroFaaS clusters only).
	GPIO *gpio.Controller
	// Telemetry is the cluster's metrics registry and event stream (nil
	// when SimConfig.Telemetry was nil).
	Telemetry *telemetry.Telemetry
	// PowerMgr is the dynamic power-management plane (nil unless
	// SimConfig.Power was set; MicroFaaS clusters only).
	PowerMgr *powermgr.Manager
}

// NewMicroFaaSSim builds an n-SBC MicroFaaS cluster.
func NewMicroFaaSSim(n int, cfg SimConfig) (*Sim, error) {
	if n <= 0 {
		return nil, fmt.Errorf("cluster: need at least one SBC, got %d", n)
	}
	engine := sim.NewEngine(cfg.Seed)
	meter := power.NewMeter()
	controller := gpio.NewController()
	s := &Sim{Engine: engine, Meter: meter, GPIO: controller, Telemetry: cfg.Telemetry}
	registerMeterMetrics(cfg.Telemetry, meter, engine.Now)
	workers := make([]core.Worker, 0, n)
	for i := 0; i < n; i++ {
		w, err := node.NewSimWorker(node.SimWorkerConfig{
			ID:            fmt.Sprintf("sbc-%03d", i),
			Platform:      model.ARM,
			Link:          cfg.Link,
			Engine:        engine,
			Meter:         meter,
			GPIO:          controller,
			Jitter:        cfg.jitter(),
			BootTime:      cfg.BootTime,
			Specs:         cfg.Specs,
			DisableReboot: cfg.DisableReboot,
			FailureRate:   cfg.FailureRate,
			HangRate:      cfg.HangRate,
			SlowRate:      cfg.SlowRate,
			SlowFactor:    cfg.SlowFactor,
			KeepWarm:      cfg.KeepWarm,
			Managed:       cfg.Power != nil,
			Telemetry:     cfg.Telemetry,
			Tracer:        cfg.Tracer,
		})
		if err != nil {
			return nil, err
		}
		s.Workers = append(s.Workers, w)
		workers = append(workers, w)
	}
	cc := cfg.coreConfig(engine, workers)
	if cfg.Power != nil {
		nodes := make([]powermgr.Node, len(s.Workers))
		for i, w := range s.Workers {
			nodes[i] = w
		}
		pm, err := powermgr.New(powermgr.Config{
			Runtime:   core.SimRuntime{Engine: engine},
			Nodes:     nodes,
			Policy:    *cfg.Power,
			Telemetry: cfg.Telemetry,
		})
		if err != nil {
			return nil, err
		}
		s.PowerMgr = pm
		cc.PowerManager = pm
	}
	orch, err := core.New(cc)
	if err != nil {
		return nil, err
	}
	s.Orch = orch
	return s, nil
}

// NewConventionalSim builds a vms-VM conventional cluster on one rack
// server.
func NewConventionalSim(vms int, cfg SimConfig) (*Sim, error) {
	if vms <= 0 {
		return nil, fmt.Errorf("cluster: need at least one VM, got %d", vms)
	}
	if cfg.Power != nil {
		return nil, fmt.Errorf("cluster: power management applies to MicroFaaS SBC clusters only")
	}
	cores := cfg.Cores
	if cores == 0 {
		cores = model.ServerCores
	}
	engine := sim.NewEngine(cfg.Seed)
	meter := power.NewMeter()
	server := node.NewRackServer("rack-server", cores, engine, meter, power.DefaultServerModel())
	s := &Sim{Engine: engine, Meter: meter, Server: server, Telemetry: cfg.Telemetry}
	registerMeterMetrics(cfg.Telemetry, meter, engine.Now)
	workers := make([]core.Worker, 0, vms)
	for i := 0; i < vms; i++ {
		w, err := node.NewSimWorker(node.SimWorkerConfig{
			ID:            fmt.Sprintf("vm-%03d", i),
			Platform:      model.X86,
			Link:          cfg.Link,
			Engine:        engine,
			Meter:         meter,
			Server:        server,
			Jitter:        cfg.jitter(),
			BootTime:      cfg.BootTime,
			Specs:         cfg.Specs,
			DisableReboot: cfg.DisableReboot,
			FailureRate:   cfg.FailureRate,
			HangRate:      cfg.HangRate,
			SlowRate:      cfg.SlowRate,
			SlowFactor:    cfg.SlowFactor,
			KeepWarm:      cfg.KeepWarm,
			Telemetry:     cfg.Telemetry,
			Tracer:        cfg.Tracer,
		})
		if err != nil {
			return nil, err
		}
		s.Workers = append(s.Workers, w)
		workers = append(workers, w)
	}
	orch, err := core.New(cfg.coreConfig(engine, workers))
	if err != nil {
		return nil, err
	}
	s.Orch = orch
	return s, nil
}

// NewConventionalRackSim builds a rack of several conventional servers —
// `servers` rack servers each hosting `vmsPerServer` microVMs — in one
// simulation, for the datacenter-scale comparison behind Table II's
// throughput-equivalence assumption.
func NewConventionalRackSim(servers, vmsPerServer int, cfg SimConfig) (*Sim, error) {
	if servers <= 0 || vmsPerServer <= 0 {
		return nil, fmt.Errorf("cluster: need positive servers (%d) and VMs per server (%d)", servers, vmsPerServer)
	}
	if cfg.Power != nil {
		return nil, fmt.Errorf("cluster: power management applies to MicroFaaS SBC clusters only")
	}
	cores := cfg.Cores
	if cores == 0 {
		cores = model.ServerCores
	}
	engine := sim.NewEngine(cfg.Seed)
	meter := power.NewMeter()
	s := &Sim{Engine: engine, Meter: meter, Telemetry: cfg.Telemetry}
	registerMeterMetrics(cfg.Telemetry, meter, engine.Now)
	workers := make([]core.Worker, 0, servers*vmsPerServer)
	for sv := 0; sv < servers; sv++ {
		server := node.NewRackServer(fmt.Sprintf("rack-server-%03d", sv), cores, engine, meter, power.DefaultServerModel())
		if sv == 0 {
			s.Server = server
		}
		for i := 0; i < vmsPerServer; i++ {
			w, err := node.NewSimWorker(node.SimWorkerConfig{
				ID:            fmt.Sprintf("vm-%03d-%03d", sv, i),
				Platform:      model.X86,
				Link:          cfg.Link,
				Engine:        engine,
				Meter:         meter,
				Server:        server,
				Jitter:        cfg.jitter(),
				BootTime:      cfg.BootTime,
				Specs:         cfg.Specs,
				DisableReboot: cfg.DisableReboot,
				FailureRate:   cfg.FailureRate,
				HangRate:      cfg.HangRate,
				SlowRate:      cfg.SlowRate,
				SlowFactor:    cfg.SlowFactor,
				KeepWarm:      cfg.KeepWarm,
				Telemetry:     cfg.Telemetry,
				Tracer:        cfg.Tracer,
			})
			if err != nil {
				return nil, err
			}
			s.Workers = append(s.Workers, w)
			workers = append(workers, w)
		}
	}
	orch, err := core.New(cfg.coreConfig(engine, workers))
	if err != nil {
		return nil, err
	}
	s.Orch = orch
	return s, nil
}

// RunSuite issues approximately jobsPerFunction invocations of each named
// function (default: the full 17-function suite; the count rounds to a
// multiple of the worker count, at least one suite pass per worker) and
// drives the simulation until every job completes. Every worker drains an
// equal, fully-mixed queue — this measures the cluster's capacity
// ("capable of N func/min", Sec V) without the queue-imbalance artifacts
// a random assignment adds to short runs. The arrival-driven mode
// (Orchestrator.StartArrivals) keeps the paper's random-sampling policy.
func (s *Sim) RunSuite(jobsPerFunction int, functions []string) (*trace.Collector, error) {
	if jobsPerFunction <= 0 {
		return nil, fmt.Errorf("cluster: jobsPerFunction must be positive")
	}
	if functions == nil {
		for _, f := range model.Functions() {
			functions = append(functions, f.Name)
		}
	}
	// Deal every worker an identical multiset of work — `rounds` full
	// passes of the suite, with the pass order rotated by worker index so
	// no two workers execute the same function simultaneously. Identical
	// per-worker multisets make the makespan reflect cluster capacity
	// rather than deal luck; simpler interleavings alias badly whenever
	// the worker count shares structure with the 17-function stride
	// (e.g. a running counter gives each of 17 workers a single function).
	ids := s.Orch.Workers()
	rounds := jobsPerFunction / len(ids)
	if rounds < 1 {
		rounds = 1
	}
	for r := 0; r < rounds; r++ {
		for step := range functions {
			for w, id := range ids {
				fn := functions[(step+w)%len(functions)]
				if _, err := s.Orch.SubmitTo(id, fn, nil); err != nil {
					return nil, err
				}
			}
		}
	}
	s.Engine.RunAll()
	if pending := s.Orch.Pending(); pending != 0 {
		return nil, fmt.Errorf("cluster: %d jobs stuck after drain", pending)
	}
	return s.Orch.Collector(), nil
}

// SuiteStats aggregates a drained run.
type SuiteStats struct {
	Completed int
	Errors    int
	// MeanCycle is the mean boot+overhead+exec across invocations.
	MeanCycle time.Duration
	// ThroughputPerMin is the cluster's steady-state capacity in
	// functions per minute (workers × 60 / mean cycle).
	ThroughputPerMin float64
	// TotalEnergyJ is the whole-cluster metered energy, and
	// JoulesPerFunction the paper's headline metric.
	TotalEnergyJ      float64
	JoulesPerFunction float64
	// MakespanS is the virtual time the run took.
	MakespanS float64
}

// Stats summarizes the cluster state after RunSuite.
func (s *Sim) Stats() SuiteStats {
	recs := s.Orch.Collector().Records()
	st := SuiteStats{MakespanS: s.Engine.Now().Seconds()}
	var cycle time.Duration
	for _, r := range recs {
		if r.Err != "" {
			st.Errors++
			continue
		}
		st.Completed++
		cycle += r.Total()
	}
	if st.Completed > 0 {
		st.MeanCycle = cycle / time.Duration(st.Completed)
		st.ThroughputPerMin = float64(len(s.Workers)) * 60 / st.MeanCycle.Seconds()
	}
	st.TotalEnergyJ = float64(s.Meter.TotalEnergy(s.Engine.Now()))
	if st.Completed > 0 {
		st.JoulesPerFunction = st.TotalEnergyJ / float64(st.Completed)
	}
	return st
}
