package cluster

import (
	"math"
	"math/rand"
	"strconv"
	"testing"
	"time"

	"microfaas/internal/core"
	"microfaas/internal/power"
	"microfaas/internal/shard"
	"microfaas/internal/tracing"
)

// chaosChurnRun drives one seeded kill/revive schedule against a
// 6-shard cluster with dynamic membership: submissions arrive in bursts
// over several seconds while two randomly-chosen shards are killed
// mid-run and revived later, so deaths (queue drain into survivors,
// worker re-homing) and rejoins (workers returning home) both happen
// under load. Returns everything the assertions need.
type chaosOutcome struct {
	ids      []int64
	fired    map[int64]int
	deaths   int
	rejoins  int
	epoch    int64
	stats    ShardedStats
	tracer   *tracing.Tracer
	sim      *ShardedSim
	rejected int
}

func chaosChurnRun(t *testing.T, seed int64) *chaosOutcome {
	t.Helper()
	out := &chaosOutcome{fired: map[int64]int{}, tracer: tracing.New()}
	scfg := shard.Config{
		BoundFactor: -1, // keep keys home so kills catch real backlogs
		Steal:       shard.StealConfig{Enabled: true, Interval: 100 * time.Millisecond},
		Membership: shard.MembershipConfig{
			Enabled:  true,
			OnDeath:  func(int) { out.deaths++ },
			OnRejoin: func(int) { out.rejoins++ },
		},
	}
	s, err := NewShardedMicroFaaSSim(6, 8, SimConfig{
		Seed:   seed,
		Policy: core.AssignLeastLoaded,
		Tracer: out.tracer,
	}, scfg)
	if err != nil {
		t.Fatalf("NewShardedMicroFaaSSim: %v", err)
	}
	out.sim = s

	// Bursty submissions over ~8s of virtual time so shards hold queue
	// backlogs when the churn hits.
	const bursts, perBurst = 20, 20
	for b := 0; b < bursts; b++ {
		b := b
		s.Engine.At(time.Duration(b)*400*time.Millisecond, func() {
			for j := 0; j < perBurst; j++ {
				key := "u/" + strconv.Itoa((b*perBurst+j)%12)
				id, _ := s.Plane.Submit(key, "FloatOps", nil, func(res core.Result) {
					out.fired[res.Job.ID]++
				})
				if id == 0 {
					out.rejected++
					continue
				}
				out.ids = append(out.ids, id)
			}
		})
	}

	// The churn schedule comes from its own seeded stream (distinct from
	// the engine's), so it is a pure function of the test seed.
	rng := rand.New(rand.NewSource(seed * 977))
	for _, si := range rng.Perm(6)[:2] {
		kill := time.Duration(1000+rng.Intn(3000)) * time.Millisecond
		s.ScheduleKill(kill, si)
		s.ScheduleRevive(kill+time.Duration(2000+rng.Intn(2000))*time.Millisecond, si)
	}

	if err := s.Run(); err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	out.epoch = s.Plane.Epoch()
	out.stats = s.Stats()
	return out
}

// TestShardedChaosChurn is the failover acceptance test: across seeds
// 1–4, every accepted invocation settles exactly once (no losses, no
// duplicates) even though shards die with queued backlogs and rejoin
// mid-run, job ids stay unique cluster-wide, and migrated traces still
// telescope — phases plus unattributed gap equal end-to-end latency,
// and span joules match the energy reconstructed from the run records.
func TestShardedChaosChurn(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		out := chaosChurnRun(t, seed)
		const jobs = 20 * 20
		if out.rejected != 0 {
			t.Fatalf("seed %d: %d submissions rejected despite live shards", seed, out.rejected)
		}
		if len(out.ids) != jobs {
			t.Fatalf("seed %d: accepted %d of %d submissions", seed, len(out.ids), jobs)
		}
		seen := map[int64]bool{}
		for _, id := range out.ids {
			if seen[id] {
				t.Fatalf("seed %d: duplicate job id %d", seed, id)
			}
			seen[id] = true
		}
		for _, id := range out.ids {
			if out.fired[id] != 1 {
				t.Fatalf("seed %d: job %d settled %d times", seed, id, out.fired[id])
			}
		}
		if len(out.fired) != jobs {
			t.Fatalf("seed %d: %d distinct callbacks for %d jobs", seed, len(out.fired), jobs)
		}
		if out.deaths == 0 {
			t.Fatalf("seed %d: churn schedule produced no shard deaths", seed)
		}
		if out.rejoins != out.deaths {
			t.Fatalf("seed %d: %d deaths but %d rejoins (every killed shard was revived)", seed, out.deaths, out.rejoins)
		}
		if out.epoch < int64(3*out.deaths) {
			// Each death is at least suspect→dead (2) plus a rejoin (1).
			t.Fatalf("seed %d: membership epoch %d too low for %d deaths", seed, out.epoch, out.deaths)
		}
		if out.stats.Completed != jobs || out.stats.Errors != 0 {
			t.Fatalf("seed %d: completed %d errors %d, want %d/0", seed, out.stats.Completed, out.stats.Errors, jobs)
		}

		// Every board must be accounted for once the dust settles: the
		// rejoined shards took their partitions back.
		total := 0
		for _, st := range out.sim.Plane.Status() {
			total += st.Workers
			if st.State != "up" {
				t.Fatalf("seed %d: shard %d finished in state %q", seed, st.Index, st.State)
			}
		}
		if total != 6*8 {
			t.Fatalf("seed %d: %d workers attached after churn, want %d", seed, total, 6*8)
		}

		verifyMigratedTraces(t, seed, out)
	}
}

// verifyMigratedTraces checks the FaasMeter-style invariant on every
// trace that crossed shards: span joules must still telescope to the
// energy the run records imply, and phase latencies (plus the
// unattributed gap) to the end-to-end latency.
func verifyMigratedTraces(t *testing.T, seed int64, out *chaosOutcome) {
	t.Helper()
	type rec struct {
		boot, overhead, exec time.Duration
		submitted, finished  time.Duration
	}
	byJob := map[int64]rec{}
	for _, o := range out.sim.Orchs {
		for _, r := range o.Collector().Records() {
			if r.Err == "" {
				byJob[r.JobID] = rec{r.Boot, r.Overhead, r.Exec, r.Submitted, r.Finished}
			}
		}
	}
	sbc := power.DefaultSBCModel()
	migrated := 0
	for _, x := range out.tracer.Traces() {
		moved := false
		for _, sp := range x.Spans {
			if sp.Phase == tracing.PhaseSteal {
				moved = true
				break
			}
		}
		if !moved {
			continue
		}
		migrated++
		sum := tracing.Summarize(x)
		r, ok := byJob[sum.Job]
		if !ok {
			t.Fatalf("seed %d: migrated job %d has no successful record", seed, sum.Job)
		}
		if wantLat := r.finished - r.submitted; sum.Latency != wantLat {
			t.Fatalf("seed %d: job %d trace latency %v != record latency %v", seed, sum.Job, sum.Latency, wantLat)
		}
		var phaseTotal time.Duration
		var phaseJoules float64
		for _, p := range sum.Phases {
			phaseTotal += p.Duration
			phaseJoules += p.EnergyJ
		}
		if phaseTotal+sum.Unattributed != sum.Latency {
			t.Fatalf("seed %d: job %d phases %v + unattributed %v != latency %v",
				seed, sum.Job, phaseTotal, sum.Unattributed, sum.Latency)
		}
		if phaseJoules != sum.EnergyJ {
			t.Fatalf("seed %d: job %d phase joules %v != summary joules %v", seed, sum.Job, phaseJoules, sum.EnergyJ)
		}
		want := r.boot.Seconds()*float64(sbc.Power(power.Booting)) +
			(r.overhead + r.exec).Seconds()*float64(sbc.Power(power.Busy))
		if diff := math.Abs(sum.EnergyJ - want); diff > 0.01*want {
			t.Fatalf("seed %d: job %d trace %.6f J vs record-derived %.6f J (%.2f%% off)",
				seed, sum.Job, sum.EnergyJ, want, 100*diff/want)
		}
	}
	if migrated == 0 {
		t.Fatalf("seed %d: churn produced no migrated traces", seed)
	}
}

// TestShardedChurnDeterminism replays the same seeded churn schedule
// twice and requires identical aggregate results and membership epochs:
// kill timing, death declarations, queue drains, and worker re-homing
// are all functions of the virtual clock.
func TestShardedChurnDeterminism(t *testing.T) {
	a := chaosChurnRun(t, 2)
	b := chaosChurnRun(t, 2)
	if a.stats != b.stats {
		t.Fatalf("churn runs diverged:\n%+v\n%+v", a.stats, b.stats)
	}
	if a.epoch != b.epoch || a.deaths != b.deaths || a.rejoins != b.rejoins {
		t.Fatalf("membership history diverged: epoch %d/%d deaths %d/%d rejoins %d/%d",
			a.epoch, b.epoch, a.deaths, b.deaths, a.rejoins, b.rejoins)
	}
}
