package cluster

import (
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"microfaas/internal/gateway"
	"microfaas/internal/model"
	"microfaas/internal/power"
	"microfaas/internal/telemetry"
)

// TestSimMetricsEnergyMatchesTrace is the acceptance check for the
// telemetry subsystem: the per-function joules counters scraped from a
// sim-mode /metrics endpoint must agree within 1% with the energy derived
// offline from the trace collector's records and the calibrated SBC power
// model — the paper's J/function computed two independent ways.
func TestSimMetricsEnergyMatchesTrace(t *testing.T) {
	tel := telemetry.New()
	s, err := NewMicroFaaSSim(8, SimConfig{Seed: 7, Telemetry: tel})
	if err != nil {
		t.Fatal(err)
	}
	coll, err := s.RunSuite(2, nil)
	if err != nil {
		t.Fatal(err)
	}

	gw, err := gateway.NewWithOptions(s.Orch, gateway.Options{Mode: "sim", Telemetry: tel})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(gw.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics → %d", resp.StatusCode)
	}
	samples, err := telemetry.ParseText(resp.Body)
	if err != nil {
		t.Fatalf("sim-mode exposition does not parse: %v", err)
	}

	// Reconstruct each function's joules from the trace: every ARM cycle
	// spends Boot at boot draw and Overhead+Exec at busy draw.
	sbc := power.DefaultSBCModel()
	want := map[string]float64{}
	for _, r := range coll.Records() {
		boot := r.Boot.Seconds() * float64(sbc.Power(power.Booting))
		busy := (r.Overhead + r.Exec).Seconds() * float64(sbc.Power(power.Busy))
		want[r.Function] += boot + busy
	}
	if len(want) != len(model.Functions()) {
		t.Fatalf("trace covers %d functions, want %d", len(want), len(model.Functions()))
	}
	for fn, w := range want {
		got, ok := samples.Value("microfaas_function_energy_joules_total", "function", fn)
		if !ok {
			t.Fatalf("no energy series for %s", fn)
		}
		if diff := math.Abs(got - w); diff > 0.01*w {
			t.Fatalf("%s: metrics %.4f J vs trace %.4f J (%.2f%% off)",
				fn, got, w, 100*diff/w)
		}
	}

	// The whole-cluster counter must cover at least the attributed energy
	// (it also meters off/idle standby draw the functions are not charged
	// for).
	var attributed float64
	for _, w := range want {
		attributed += w
	}
	cluster, ok := samples.Value("microfaas_cluster_energy_joules_total")
	if !ok || cluster < attributed {
		t.Fatalf("cluster energy %.4f J < attributed %.4f J", cluster, attributed)
	}

	// And /healthz reports sim mode.
	hresp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	var h gateway.HealthResponse
	if err := jsonDecode(hresp, &h); err != nil {
		t.Fatal(err)
	}
	if h.Mode != "sim" || h.Status != "ok" {
		t.Fatalf("healthz = %+v", h)
	}
}

// TestTelemetryDoesNotPerturbSimulation: enabling telemetry must not
// consume RNG draws or schedule events, so a seeded run's trace is
// bit-identical with and without it — the zero-overhead-when-disabled
// guarantee read from the other side.
func TestTelemetryDoesNotPerturbSimulation(t *testing.T) {
	run := func(tel *telemetry.Telemetry) interface{} {
		s, err := NewMicroFaaSSim(4, SimConfig{
			Seed:        11,
			Jitter:      0.05,
			FailureRate: 0.15,
			MaxAttempts: 3,
			JobTimeout:  2 * time.Minute,
			Telemetry:   tel,
		})
		if err != nil {
			t.Fatal(err)
		}
		coll, err := s.RunSuite(1, nil)
		if err != nil {
			t.Fatal(err)
		}
		return coll.Records()
	}
	plain := run(nil)
	instrumented := run(telemetry.New())
	if !reflect.DeepEqual(plain, instrumented) {
		t.Fatal("telemetry changed the seeded run's trace")
	}
}

// TestLiveMetricsEnergyMatchesTrace cross-checks the live path: joules
// attributed per function must track the number reconstructed from the
// trace records at busy draw. The trace stamps Started at OP dispatch and
// Finished at result arrival — a strict superset of the worker's metered
// busy window — so the metrics value is bounded above by the trace-derived
// one and must come close once a real boot delay dominates the
// microseconds of dispatch slop.
func TestLiveMetricsEnergyMatchesTrace(t *testing.T) {
	tel := telemetry.New()
	l, err := StartLive(LiveOptions{
		Workers: 2, Seed: 3, Meter: true, Telemetry: tel,
		BootDelay: 25 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 0; i < 6; i++ {
		l.Orch.Submit("CascSHA", []byte(`{"rounds":3,"seed":"x"}`))
	}
	l.Orch.Quiesce()

	sbc := power.DefaultSBCModel()
	var want float64
	for _, r := range l.Orch.Collector().Records() {
		want += (r.Finished - r.Started).Seconds() * float64(sbc.Power(power.Busy))
	}
	got := tel.Registry().Counter("microfaas_function_energy_joules_total",
		"", "function", "CascSHA").Value()
	if want <= 0 || got <= 0 || got > want || got < 0.9*want {
		t.Fatalf("metrics %.6f J vs trace-bounded %.6f J", got, want)
	}
}

// jsonDecode decodes an HTTP response body as JSON.
func jsonDecode(resp *http.Response, v interface{}) error {
	return json.NewDecoder(resp.Body).Decode(v)
}
