package cluster

import (
	"testing"

	"microfaas/internal/core"
	"microfaas/internal/model"
)

func TestFaultInjectionWithoutRetriesSurfacesErrors(t *testing.T) {
	s, err := NewMicroFaaSSim(6, SimConfig{Seed: 11, FailureRate: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	coll, err := s.RunSuite(20, nil)
	if err != nil {
		t.Fatal(err)
	}
	errs := coll.ErrorCount()
	total := coll.Len()
	// Roughly a quarter of invocations should fail (binomial, wide band).
	if errs < total/8 || errs > total/2 {
		t.Fatalf("%d/%d failures at 25%% injection — injection miscalibrated", errs, total)
	}
}

func TestRetriesMaskInjectedFaults(t *testing.T) {
	s, err := NewMicroFaaSSim(6, SimConfig{Seed: 11, FailureRate: 0.25, MaxAttempts: 4})
	if err != nil {
		t.Fatal(err)
	}
	coll, err := s.RunSuite(20, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Per-job final failure probability is 0.25^4 ≈ 0.4%; group records by
	// job id and check final outcomes.
	finalErr := map[int64]bool{}
	attempts := map[int64]int{}
	for _, r := range coll.Records() {
		finalErr[r.JobID] = r.Err != ""
		attempts[r.JobID]++
	}
	failed, retried := 0, 0
	for id, bad := range finalErr {
		if bad {
			failed++
		}
		if attempts[id] > 1 {
			retried++
		}
	}
	if failed > len(finalErr)/20 {
		t.Fatalf("%d of %d jobs failed after retries, expected <5%%", failed, len(finalErr))
	}
	if retried == 0 {
		t.Fatal("no job was ever retried at a 25% fault rate")
	}
}

func TestFaultsCostThroughput(t *testing.T) {
	run := func(rate float64, attempts int) float64 {
		s, err := NewMicroFaaSSim(model.SBCCount, SimConfig{Seed: 5, FailureRate: rate, MaxAttempts: attempts})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.RunSuite(20, nil); err != nil {
			t.Fatal(err)
		}
		st := s.Stats()
		return float64(st.Completed) / (st.MakespanS / 60)
	}
	clean := run(0, 1)
	faulty := run(0.2, 4)
	// Retries re-execute ~20% of work (partially, since faults strike
	// mid-execution), so goodput drops but by far less than 2x.
	if faulty >= clean {
		t.Fatalf("faulty goodput %.1f >= clean %.1f", faulty, clean)
	}
	if faulty < clean*0.6 {
		t.Fatalf("faulty goodput %.1f collapsed vs clean %.1f", faulty, clean)
	}
}

func TestAssignmentPoliciesThroughCluster(t *testing.T) {
	for _, policy := range []core.AssignPolicy{core.AssignRandom, core.AssignRoundRobin, core.AssignLeastLoaded} {
		s, err := NewMicroFaaSSim(4, SimConfig{Seed: 3, Policy: policy})
		if err != nil {
			t.Fatalf("%v: %v", policy, err)
		}
		// Drive through Submit (the policy path), not RunSuite's SubmitTo.
		fns := model.Functions()
		for i := 0; i < 68; i++ {
			s.Orch.Submit(fns[i%len(fns)].Name, nil)
		}
		s.Engine.RunAll()
		coll := s.Orch.Collector()
		if coll.Len() != 68 || coll.ErrorCount() != 0 {
			t.Fatalf("%v: %d records, %d errors", policy, coll.Len(), coll.ErrorCount())
		}
		// Every worker participated under every policy.
		seen := map[string]bool{}
		for _, r := range coll.Records() {
			seen[r.Worker] = true
		}
		if len(seen) != 4 {
			t.Fatalf("%v: only %d of 4 workers used", policy, len(seen))
		}
	}
}

func TestConventionalRackSimValidation(t *testing.T) {
	if _, err := NewConventionalRackSim(0, 4, SimConfig{}); err == nil {
		t.Fatal("zero servers accepted")
	}
	if _, err := NewConventionalRackSim(2, 0, SimConfig{}); err == nil {
		t.Fatal("zero VMs per server accepted")
	}
}

func TestConventionalRackSimScalesLinearlyInServers(t *testing.T) {
	thpt := func(servers int) float64 {
		s, err := NewConventionalRackSim(servers, 6, SimConfig{Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.RunSuite(30, nil); err != nil {
			t.Fatal(err)
		}
		st := s.Stats()
		return float64(st.Completed) / (st.MakespanS / 60)
	}
	one, three := thpt(1), thpt(3)
	if three < one*2.8 || three > one*3.2 {
		t.Fatalf("1→3 servers: %.1f → %.1f func/min, want ≈3x (independent servers)", one, three)
	}
}

func TestGPIOAuditLogTracksJobCycles(t *testing.T) {
	s, err := NewMicroFaaSSim(3, SimConfig{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.RunSuite(2, []string{"FloatOps", "RegExMatch"}); err != nil {
		t.Fatal(err)
	}
	coll := s.Orch.Collector()
	jobs := coll.Len()
	// Under the paper's policy every job is one PWR_BUT press: the audit
	// log must show exactly `jobs` power-ons across the cluster, and three
	// transitions per job (off→booting→busy→off).
	presses := 0
	for _, id := range s.Orch.Workers() {
		presses += s.GPIO.PowerOnCount(id)
	}
	if presses != jobs {
		t.Fatalf("%d PWR_BUT presses for %d jobs", presses, jobs)
	}
	if got := len(s.GPIO.Events()); got != 3*jobs {
		t.Fatalf("%d transitions for %d jobs, want %d", got, jobs, 3*jobs)
	}
	// Every worker ends powered off.
	for _, id := range s.Orch.Workers() {
		evs := s.GPIO.EventsFor(id)
		if len(evs) == 0 {
			continue
		}
		if last := evs[len(evs)-1]; last.To.String() != "off" {
			t.Fatalf("%s ended in state %v", id, last.To)
		}
	}
}
