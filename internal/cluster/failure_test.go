package cluster

import (
	"strings"
	"testing"
	"time"

	"microfaas/internal/core"
	"microfaas/internal/node"
)

// TestDeadlinesAndBreakerMaskHangs drives the simulated cluster with
// injected wedges: workers that power on and never report back. Without a
// deadline those jobs (and everything queued behind them) would be lost;
// with deadlines + the circuit breaker the suite completes, the wedged
// workers are ejected, and only the hung attempts show as errors.
func TestDeadlinesAndBreakerMaskHangs(t *testing.T) {
	s, err := NewMicroFaaSSim(8, SimConfig{
		Seed:             11,
		HangRate:         0.02,
		MaxAttempts:      4,
		JobTimeout:       10 * time.Minute,
		BreakerThreshold: 1,
		BreakerProbe:     1000 * time.Hour, // never re-admit within the run
	})
	if err != nil {
		t.Fatal(err)
	}
	coll, err := s.RunSuite(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	hangs := 0
	for _, w := range s.Workers {
		hangs += w.Hangs()
	}
	if hangs == 0 {
		t.Fatal("no wedges injected at 2% hang rate — the test exercised nothing")
	}
	// Every hang shows up as exactly one timed-out attempt...
	timeouts := 0
	finalErr := map[int64]bool{}
	for _, r := range coll.Records() {
		if strings.Contains(r.Err, "deadline") {
			timeouts++
		}
		finalErr[r.JobID] = r.Err != ""
	}
	if timeouts != hangs {
		t.Fatalf("%d deadline expiries for %d injected wedges", timeouts, hangs)
	}
	// ...and no job's final outcome is a failure: the retry on a fresh
	// worker masked every wedge.
	for id, bad := range finalErr {
		if bad {
			t.Fatalf("job %d failed despite retries", id)
		}
	}
	// Every wedged worker's breaker opened.
	open := 0
	for _, h := range s.Orch.Health() {
		if h.State == core.BreakerOpen {
			open++
			if h.TimedOut == 0 {
				t.Fatalf("worker %s breaker open without a timeout: %+v", h.ID, h)
			}
		}
	}
	if open == 0 {
		t.Fatal("no breaker opened despite wedges")
	}
}

func TestSlowInjectionStretchesTail(t *testing.T) {
	run := func(slowRate float64) time.Duration {
		s, err := NewMicroFaaSSim(4, SimConfig{Seed: 11, SlowRate: slowRate, SlowFactor: 20})
		if err != nil {
			t.Fatal(err)
		}
		coll, err := s.RunSuite(2, nil)
		if err != nil {
			t.Fatal(err)
		}
		var worst time.Duration
		for _, r := range coll.Records() {
			if r.Total() > worst {
				worst = r.Total()
			}
		}
		return worst
	}
	clean, straggly := run(0), run(0.2)
	if straggly < clean*3 {
		t.Fatalf("20x stragglers on 20%% of jobs only stretched worst case %v → %v", clean, straggly)
	}
}

// TestLiveHungWorkerDoesNotBlockQueue is the live-mode acceptance test for
// the failure path: a real TCP worker wedges (holds the connection open,
// never replies), and the OP's deadline rescues both the hung job and the
// jobs queued behind it, retrying on the healthy worker and opening the
// wedged worker's breaker.
func TestLiveHungWorkerDoesNotBlockQueue(t *testing.T) {
	l, err := StartLive(LiveOptions{Workers: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(l.Close)
	hung, err := node.StartLiveWorker(node.LiveWorkerConfig{
		ID:     "wedge",
		Env:    l.Env,
		Faults: &node.FaultSpec{Seed: 1, HangProb: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { hung.Close() }) //nolint:errcheck
	orch, err := core.New(core.Config{
		Runtime:          core.NewWallRuntime(),
		Workers:          []core.Worker{hung, l.Workers[0]},
		Seed:             3,
		MaxAttempts:      2,
		JobTimeout:       300 * time.Millisecond,
		BreakerThreshold: 1,
		BreakerProbe:     time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Three jobs straight into the wedged worker's queue: the first hangs
	// on the wire, two wait behind it.
	for i := 0; i < 3; i++ {
		if _, err := orch.SubmitTo("wedge", "CascSHA", []byte(`{"rounds":5,"seed":"x"}`)); err != nil {
			t.Fatal(err)
		}
	}
	done := make(chan struct{})
	go func() { orch.Quiesce(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("cluster wedged: hung worker blocked its queue")
	}
	recs := orch.Collector().Records()
	// One timed-out attempt on the wedge; all three jobs finish on the
	// healthy worker.
	timeouts, completed := 0, 0
	for _, r := range recs {
		switch {
		case strings.Contains(r.Err, "deadline"):
			timeouts++
			if r.Worker != "wedge" {
				t.Fatalf("timeout attributed to %s: %+v", r.Worker, r)
			}
		case r.Err == "":
			completed++
			if r.Worker != "live-000" {
				t.Fatalf("success on unexpected worker: %+v", r)
			}
		default:
			t.Fatalf("unexpected failure: %+v", r)
		}
	}
	if timeouts != 1 || completed != 3 {
		t.Fatalf("%d timeouts, %d completions; records = %+v", timeouts, completed, recs)
	}
	h := orch.Health()[0]
	if h.ID != "wedge" || h.State != core.BreakerOpen || h.TimedOut != 1 {
		t.Fatalf("wedge health = %+v", h)
	}
	// With the breaker open, random assignment only reaches the healthy
	// worker.
	for i := 0; i < 5; i++ {
		orch.Submit("RegExMatch", []byte(`{"pattern":"a+","text":"aaa"}`))
	}
	orch.Quiesce()
	for _, r := range orch.Collector().Records()[len(recs):] {
		if r.Worker != "live-000" || r.Err != "" {
			t.Fatalf("post-breaker record = %+v", r)
		}
	}
}

// TestLiveErrorAndSlowFaultInjection exercises the other two live fault
// modes end-to-end: injected errors surface as failed invocations the OP
// can retry, and injected slowness delays but does not fail the reply.
func TestLiveErrorAndSlowFaultInjection(t *testing.T) {
	l, err := StartLive(LiveOptions{
		Workers:     2,
		Seed:        5,
		MaxAttempts: 3,
		Faults:      &node.FaultSpec{Seed: 7, ErrorProb: 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(l.Close)
	for i := 0; i < 12; i++ {
		l.Orch.Submit("RegExMatch", []byte(`{"pattern":"a+","text":"aaa"}`))
	}
	l.Orch.Quiesce()
	injected, finalErr := 0, map[int64]bool{}
	for _, r := range l.Orch.Collector().Records() {
		if strings.Contains(r.Err, "injected worker fault") {
			injected++
		}
		finalErr[r.JobID] = r.Err != ""
	}
	if injected == 0 {
		t.Fatal("no faults injected at 50% error rate")
	}
	failed := 0
	for _, bad := range finalErr {
		if bad {
			failed++
		}
	}
	// Per-job final failure probability is 0.5^3 = 12.5%; 12 jobs → allow a
	// generous band but require retries to have masked most injections.
	if failed > 6 {
		t.Fatalf("%d of 12 jobs failed after 3 attempts at 50%% injection", failed)
	}

	slow, err := StartLive(LiveOptions{
		Workers: 1,
		Seed:    5,
		Faults:  &node.FaultSpec{Seed: 7, SlowProb: 1, SlowDelay: 200 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(slow.Close)
	start := time.Now()
	slow.Orch.Submit("RegExMatch", []byte(`{"pattern":"a+","text":"aaa"}`))
	slow.Orch.Quiesce()
	if elapsed := time.Since(start); elapsed < 150*time.Millisecond {
		t.Fatalf("slow fault did not delay: %v", elapsed)
	}
	if slow.Orch.Collector().ErrorCount() != 0 {
		t.Fatal("slow fault failed the job")
	}
}
