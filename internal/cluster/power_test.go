package cluster

import (
	"bytes"
	"math/rand"
	"testing"
	"time"

	"microfaas/internal/core"
	"microfaas/internal/model"
	"microfaas/internal/power"
	"microfaas/internal/powermgr"
	"microfaas/internal/telemetry"
	"microfaas/internal/workload"
)

// TestManagedSimEndToEnd drives a power-managed MicroFaaS simulation
// through the energy-aware policy and checks the whole plane hangs
// together: every job completes, the GPIO audit log stays monotone, wakes
// are amortized across jobs (far fewer PWR_BUT presses than the per-job
// policy's one per invocation), and the powered gauge agrees with the
// manager's snapshot.
func TestManagedSimEndToEnd(t *testing.T) {
	tel := telemetry.New()
	s, err := NewMicroFaaSSim(4, SimConfig{
		Seed:      1,
		Policy:    core.AssignEnergyAware,
		Power:     &powermgr.Policy{IdleTimeout: 10 * time.Second},
		Telemetry: tel,
	})
	if err != nil {
		t.Fatal(err)
	}
	fns := model.Functions()
	for i := 0; i < 68; i++ {
		s.Orch.Submit(fns[i%len(fns)].Name, nil)
	}
	s.Engine.RunAll()
	coll := s.Orch.Collector()
	if coll.Len() != 68 || coll.ErrorCount() != 0 {
		t.Fatalf("%d records, %d errors", coll.Len(), coll.ErrorCount())
	}
	presses := 0
	for _, id := range s.Orch.Workers() {
		presses += s.GPIO.PowerOnCount(id)
	}
	if presses == 0 || presses >= coll.Len() {
		t.Fatalf("%d PWR_BUT presses for %d jobs; wake-on-demand should amortize boots", presses, coll.Len())
	}
	events := s.GPIO.Events()
	if len(events) == 0 {
		t.Fatal("no GPIO transitions recorded")
	}
	for i := 1; i < len(events); i++ {
		if events[i].At < events[i-1].At {
			t.Fatalf("audit log went backwards: %v after %v", events[i], events[i-1])
		}
	}
	// The powered gauge (as a /metrics scrape would see it) and the
	// manager snapshot must agree.
	snap := s.PowerMgr.Snapshot()
	var exp bytes.Buffer
	if err := tel.Registry().WritePrometheus(&exp); err != nil {
		t.Fatal(err)
	}
	samples, err := telemetry.ParseText(&exp)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := samples.Value("microfaas_workers_powered"); !ok || int(v) != snap.Powered {
		t.Fatalf("workers_powered gauge = %v (ok=%v), snapshot says %d", v, ok, snap.Powered)
	}
	// Idle timers eventually gate every worker off.
	s.Engine.RunAll()
	if up := s.PowerMgr.PoweredUp(); up != 0 {
		t.Fatalf("%d workers still powered after idle timeout", up)
	}
	for _, id := range s.Orch.Workers() {
		evs := s.GPIO.EventsFor(id)
		if len(evs) > 0 && evs[len(evs)-1].To != power.Off {
			t.Fatalf("%s ended in state %v", id, evs[len(evs)-1].To)
		}
	}
}

// TestManagedSimUsesLessEnergyAtLowLoad is the subsystem's reason to
// exist, checked at the cluster level: with sparse arrivals, idle
// power-down + wake-on-demand must spend fewer joules than keeping every
// worker on.
func TestManagedSimUsesLessEnergyAtLowLoad(t *testing.T) {
	run := func(cfg SimConfig) float64 {
		s, err := NewMicroFaaSSim(4, cfg)
		if err != nil {
			t.Fatal(err)
		}
		fns := model.Functions()
		// One job a minute for 20 minutes: mostly idle time.
		for i := 0; i < 20; i++ {
			at := time.Duration(i) * time.Minute
			fn := fns[i%len(fns)].Name
			s.Engine.Schedule(at, func() { s.Orch.Submit(fn, nil) })
		}
		s.Engine.Run(20 * time.Minute)
		s.Engine.RunAll()
		if got := s.Orch.Collector().Len(); got != 20 {
			t.Fatalf("completed %d of 20 jobs", got)
		}
		return float64(s.Meter.TotalEnergy(s.Engine.Now()))
	}
	managed := run(SimConfig{
		Seed:   7,
		Policy: core.AssignEnergyAware,
		Power:  &powermgr.Policy{IdleTimeout: 15 * time.Second},
	})
	alwaysOn := run(SimConfig{Seed: 7, DisableReboot: true})
	if managed >= alwaysOn {
		t.Fatalf("managed cluster used %.1f J, always-on %.1f J", managed, alwaysOn)
	}
}

// TestManagedLiveSmoke exercises the live (wall-clock, TCP) managed path:
// workers start power-gated, an invocation wakes one, and Close drains
// without deadlock. Run with -race this covers the manager's real
// concurrency.
func TestManagedLiveSmoke(t *testing.T) {
	tel := telemetry.New()
	l, err := StartLive(LiveOptions{
		Workers:   2,
		Seed:      11,
		Meter:     true,
		Telemetry: tel,
		Policy:    core.AssignEnergyAware,
		Power:     &powermgr.Policy{IdleTimeout: time.Minute},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if l.PowerMgr == nil || l.GPIO == nil {
		t.Fatal("managed live cluster missing PowerMgr/GPIO")
	}
	if up := l.PowerMgr.PoweredUp(); up != 0 {
		t.Fatalf("%d workers powered before any work", up)
	}
	rng := rand.New(rand.NewSource(11))
	f, err := workload.Get("FloatOps")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		l.Orch.Submit(f.Name, f.GenArgs(rng))
	}
	l.Orch.Quiesce()
	if got := l.Orch.Collector().ErrorCount(); got != 0 {
		recs := l.Orch.Collector().Records()
		t.Fatalf("%d invocations failed (first err: %s)", got, recs[0].Err)
	}
	if up := l.PowerMgr.PoweredUp(); up == 0 {
		t.Fatal("no worker powered after invocations")
	}
	// The audit log must be monotone despite wall-clock concurrency.
	events := l.GPIO.Events()
	if len(events) == 0 {
		t.Fatal("no GPIO transitions recorded")
	}
	for i := 1; i < len(events); i++ {
		if events[i].At < events[i-1].At {
			t.Fatalf("audit log went backwards: %v after %v", events[i], events[i-1])
		}
	}
}

// TestPowerPolicyRejectedOnConventionalSims pins the sim-vs-live split:
// the power plane models PWR_BUT wiring only SBCs have.
func TestPowerPolicyRejectedOnConventionalSims(t *testing.T) {
	pol := &powermgr.Policy{IdleTimeout: time.Second}
	if _, err := NewConventionalSim(4, SimConfig{Power: pol}); err == nil {
		t.Fatal("conventional sim accepted a power policy")
	}
	if _, err := NewConventionalRackSim(2, 4, SimConfig{Power: pol}); err == nil {
		t.Fatal("conventional rack sim accepted a power policy")
	}
	if _, err := NewMicroFaaSSim(4, SimConfig{Power: pol, DisableReboot: true}); err == nil {
		t.Fatal("power policy combined with DisableReboot accepted")
	}
}

// TestBudgetExhaustedFunctionStopsWakingNodes pins the energy-first
// scheduling rule end to end: once a function spends its budget, the
// energy-aware policy queues its work on already-powered hardware instead
// of pulling more nodes out of power gating.
func TestBudgetExhaustedFunctionStopsWakingNodes(t *testing.T) {
	fn := model.Functions()[0].Name
	run := func(budgets map[string]float64) *Sim {
		s, err := NewMicroFaaSSim(2, SimConfig{
			Seed:          3,
			Policy:        core.AssignEnergyAware,
			Power:         &powermgr.Policy{IdleTimeout: 10 * time.Minute},
			EnergyBudgets: budgets,
		})
		if err != nil {
			t.Fatal(err)
		}
		// One warm-up job wakes sbc-000 (and, with any budget present,
		// exhausts it — a single ARM cycle burns a few joules).
		s.Orch.Submit(fn, nil)
		s.Engine.RunAll()
		// Two concurrent jobs: the first lands on the idle powered node,
		// the second must choose between waking sbc-001 and queueing.
		s.Orch.Submit(fn, nil)
		s.Orch.Submit(fn, nil)
		s.Engine.RunAll()
		if got := s.Orch.Collector().Len(); got != 3 {
			t.Fatalf("completed %d of 3 jobs", got)
		}
		return s
	}

	free := run(nil)
	if boots := free.GPIO.PowerOnCount("sbc-001"); boots == 0 {
		t.Fatal("without budgets, concurrent load should wake the second node")
	}
	capped := run(map[string]float64{fn: 0.1})
	if bs := capped.Orch.EnergyBudgets(); len(bs) != 1 || !bs[0].Exhausted {
		t.Fatalf("budget not exhausted after warm-up: %+v", bs)
	}
	if boots := capped.GPIO.PowerOnCount("sbc-001"); boots != 0 {
		t.Fatalf("exhausted function woke the second node %d times; want 0 (queue on powered hardware)", boots)
	}
}
