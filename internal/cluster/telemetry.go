package cluster

import (
	"time"

	"microfaas/internal/power"
	"microfaas/internal/telemetry"
)

// Cluster-owned metric names (see DESIGN.md §7): whole-cluster readings
// taken straight from the power meter at scrape time, the simulated
// equivalent of the paper's wall-power measurement rig.
const (
	metricClusterEnergy = "microfaas_cluster_energy_joules_total"
	metricClusterPower  = "microfaas_cluster_power_watts"
)

// registerMeterMetrics exposes the meter's totals as func-backed metrics,
// evaluated lazily at scrape time against the cluster clock. No-op when
// telemetry is disabled.
func registerMeterMetrics(tel *telemetry.Telemetry, meter *power.Meter, now func() time.Duration) {
	if tel == nil || meter == nil {
		return
	}
	reg := tel.Registry()
	reg.CounterFunc(metricClusterEnergy,
		"Whole-cluster metered energy since start (every device summed).",
		func() float64 { return float64(meter.TotalEnergy(now())) })
	reg.GaugeFunc(metricClusterPower,
		"Instantaneous whole-cluster draw (every device summed).",
		func() float64 { return float64(meter.TotalPower()) })
}
