package cluster

import (
	"fmt"
	"time"

	"microfaas/internal/core"
	"microfaas/internal/gpio"
	"microfaas/internal/model"
	"microfaas/internal/node"
	"microfaas/internal/power"
	"microfaas/internal/powermgr"
	"microfaas/internal/shard"
	"microfaas/internal/sim"
	"microfaas/internal/telemetry"
	"microfaas/internal/trace"
	"microfaas/internal/tsdb"
)

// shardIDSpan is the job-id space reserved per shard (shard i's ids
// start at i*shardIDSpan + 1). A disjoint, cluster-unique id space is
// what lets the work stealer migrate jobs identity-intact.
const shardIDSpan = int64(1) << 40

// ShardedSim is a MicroFaaS cluster split into N control-plane shards
// behind a consistent-hash load-balancer tier (see internal/shard).
// All shards share ONE discrete-event engine — a single virtual clock —
// so cross-shard interactions (work stealing, ring rebalancing) are
// deterministic under a seed, exactly like a single-shard sim. Each
// shard owns a disjoint worker partition, its own telemetry registry,
// its own trace collector, and (when power management is enabled) its
// own power manager; the tracer is shared so a stolen job's spans stay
// in one trace.
type ShardedSim struct {
	// Engine is the single virtual clock every shard runs on.
	Engine *sim.Engine
	// Meter is the whole-cluster power meter.
	Meter *power.Meter
	// GPIO is the shared power-control plane audit log.
	GPIO *gpio.Controller
	// Plane is the load-balancer tier routing by function key.
	Plane *shard.Plane
	// Orchs are the per-shard orchestrators, in ring order.
	Orchs []*core.Orchestrator
	// Workers are the per-shard worker partitions, in ring order.
	Workers [][]*node.SimWorker
	// Telemetries are the per-shard metric registries (nil entries when
	// SimConfig.Telemetry was nil).
	Telemetries []*telemetry.Telemetry
	// PowerMgrs are the per-shard power managers (nil unless
	// SimConfig.Power was set).
	PowerMgrs []*powermgr.Manager
	// SharedTelemetry is the registry passed in SimConfig.Telemetry: it
	// carries only the cluster-wide power-meter gauges (each shard's
	// metrics live in Telemetries). Nil when telemetry was disabled.
	SharedTelemetry *telemetry.Telemetry

	// down is the churn kill mask backing the membership probe (see
	// churn.go); owner tracks which shard currently holds each board
	// (nil when membership is disabled — no churn). Engine-thread only.
	down  []bool
	owner map[string]int
}

// NewShardedMicroFaaSSim builds shards × workersPerShard SBCs split
// into that many control-plane shards behind a load-balancer tier.
// SimConfig applies per shard (its Telemetry field acts as an on/off
// switch: when non-nil, each shard gets its OWN fresh registry, and
// the passed-in instance carries only the shared power-meter gauges).
// The Tracer is shared by every shard.
func NewShardedMicroFaaSSim(shards, workersPerShard int, cfg SimConfig, scfg shard.Config) (*ShardedSim, error) {
	if shards <= 0 {
		return nil, fmt.Errorf("cluster: need at least one shard, got %d", shards)
	}
	if workersPerShard <= 0 {
		return nil, fmt.Errorf("cluster: need at least one SBC per shard, got %d", workersPerShard)
	}
	engine := sim.NewEngine(cfg.Seed)
	meter := power.NewMeter()
	controller := gpio.NewController()
	s := &ShardedSim{Engine: engine, Meter: meter, GPIO: controller, SharedTelemetry: cfg.Telemetry}
	registerMeterMetrics(cfg.Telemetry, meter, engine.Now)
	for si := 0; si < shards; si++ {
		var tel *telemetry.Telemetry
		if cfg.Telemetry != nil {
			tel = telemetry.New()
		}
		s.Telemetries = append(s.Telemetries, tel)
		workers := make([]core.Worker, 0, workersPerShard)
		var simWorkers []*node.SimWorker
		for i := 0; i < workersPerShard; i++ {
			w, err := node.NewSimWorker(node.SimWorkerConfig{
				ID:            fmt.Sprintf("s%02d-sbc-%04d", si, i),
				Platform:      model.ARM,
				Link:          cfg.Link,
				Engine:        engine,
				Meter:         meter,
				GPIO:          controller,
				Jitter:        cfg.jitter(),
				BootTime:      cfg.BootTime,
				Specs:         cfg.Specs,
				DisableReboot: cfg.DisableReboot,
				FailureRate:   cfg.FailureRate,
				HangRate:      cfg.HangRate,
				SlowRate:      cfg.SlowRate,
				SlowFactor:    cfg.SlowFactor,
				KeepWarm:      cfg.KeepWarm,
				Managed:       cfg.Power != nil,
				Telemetry:     tel,
				Tracer:        cfg.Tracer,
			})
			if err != nil {
				return nil, err
			}
			simWorkers = append(simWorkers, w)
			workers = append(workers, w)
		}
		s.Workers = append(s.Workers, simWorkers)
		cc := cfg.coreConfig(engine, workers)
		// Each shard draws from its own RNG stream and owns a disjoint
		// job-id space.
		cc.Seed = cfg.Seed + 1 + int64(si)
		cc.Telemetry = tel
		cc.JobIDBase = int64(si) * shardIDSpan
		cc.ShardLabel = fmt.Sprintf("shard-%02d", si)
		if cfg.Power != nil {
			nodes := make([]powermgr.Node, len(simWorkers))
			for i, w := range simWorkers {
				nodes[i] = w
			}
			pm, err := powermgr.New(powermgr.Config{
				Runtime:   core.SimRuntime{Engine: engine},
				Nodes:     nodes,
				Policy:    *cfg.Power,
				Telemetry: tel,
			})
			if err != nil {
				return nil, err
			}
			s.PowerMgrs = append(s.PowerMgrs, pm)
			cc.PowerManager = pm
		}
		orch, err := core.New(cc)
		if err != nil {
			return nil, err
		}
		s.Orchs = append(s.Orchs, orch)
	}
	s.down = make([]bool, shards)
	if scfg.Membership.Enabled {
		if cfg.Power != nil {
			return nil, fmt.Errorf("cluster: dynamic membership is not supported with power management (a power manager's node set is fixed at construction)")
		}
		// Wire the sim's churn machinery into the plane: the kill mask
		// backs the probe, and worker re-homing chains ahead of any
		// caller-supplied hooks.
		if scfg.Membership.Probe == nil {
			scfg.Membership.Probe = func(i int) bool { return !s.down[i] }
		}
		userDeath, userRejoin := scfg.Membership.OnDeath, scfg.Membership.OnRejoin
		scfg.Membership.OnDeath = func(i int) {
			s.rehomeDead(i)
			if userDeath != nil {
				userDeath(i)
			}
		}
		scfg.Membership.OnRejoin = func(i int) {
			s.rehomeRejoin(i)
			if userRejoin != nil {
				userRejoin(i)
			}
		}
		s.owner = make(map[string]int, shards*workersPerShard)
		for si, ws := range s.Workers {
			for _, w := range ws {
				s.owner[w.ID()] = si
			}
		}
	}
	plane, err := shard.NewPlane(core.SimRuntime{Engine: engine}, s.Orchs, scfg)
	if err != nil {
		return nil, err
	}
	s.Plane = plane
	return s, nil
}

// AttachTSDB points the store at every registry this cluster owns — the
// plane's shard-labeled gauges, the shared power-meter registry, and
// each shard's own registry under its shard label — and hooks the
// store's Scrape onto the plane's aggregator tick, so samples land on
// the same virtual-clock cadence as steal/rebalance decisions. Call
// before submitting traffic; a nil store is a no-op and leaves the
// plane's tick schedule byte-identical to an unobserved run.
func (s *ShardedSim) AttachTSDB(store *tsdb.Store) {
	if store == nil {
		return
	}
	store.AddSource("", s.Plane.Registry())
	if s.SharedTelemetry != nil {
		store.AddSource("", s.SharedTelemetry.Registry())
	}
	for si, tel := range s.Telemetries {
		if tel != nil {
			store.AddSource(fmt.Sprintf("shard-%02d", si), tel.Registry())
		}
	}
	s.Plane.SetTickHook(store.Scrape)
}

// Run drives the engine until every submitted job settles, returning an
// error if any job is still pending when the event queue empties.
func (s *ShardedSim) Run() error {
	s.Engine.RunAll()
	if p := s.Plane.Pending(); p != 0 {
		return fmt.Errorf("cluster: %d jobs stuck after sharded run", p)
	}
	return nil
}

// ShardedStats aggregates a drained sharded run across all shards.
type ShardedStats struct {
	// Completed/Errors count settled invocations cluster-wide.
	Completed int
	Errors    int
	// MeanCycle is the mean boot+overhead+exec across invocations.
	MeanCycle time.Duration
	// ThroughputPerMin is completed work over the makespan, in functions
	// per minute. Open-loop runs include the ramp and the drain tail
	// (the last straggler worker), so this understates capacity.
	ThroughputPerMin float64
	// SustainedPerMin is the completion rate over the middle of the run
	// (finishes inside [20%, 60%] of the makespan), when every worker is
	// busy — the sharded experiments' headline number.
	SustainedPerMin float64
	// P50/P99 are end-to-end (submit→settle) latency percentiles.
	P50, P99 time.Duration
	// Stolen counts cross-shard job migrations.
	Stolen int64
	// TotalEnergyJ is whole-cluster metered energy; JoulesPerFunction
	// the paper's headline efficiency metric.
	TotalEnergyJ      float64
	JoulesPerFunction float64
	// MakespanS is the virtual time the run took.
	MakespanS float64
}

// Stats summarizes the cluster after Run, merging every shard's trace
// collector.
func (s *ShardedSim) Stats() ShardedStats {
	makespan := s.Engine.Now()
	st := ShardedStats{MakespanS: makespan.Seconds(), Stolen: s.Plane.StolenTotal()}
	winLo, winHi := makespan/5, makespan*3/5
	inWindow := 0
	var cycle time.Duration
	var lat []time.Duration
	for _, o := range s.Orchs {
		for _, r := range o.Collector().Records() {
			if r.Err != "" {
				st.Errors++
				continue
			}
			st.Completed++
			cycle += r.Total()
			lat = append(lat, r.Latency())
			if r.Finished >= winLo && r.Finished < winHi {
				inWindow++
			}
		}
	}
	if st.Completed > 0 {
		st.MeanCycle = cycle / time.Duration(st.Completed)
		st.P50 = trace.Percentile(lat, 50)
		st.P99 = trace.Percentile(lat, 99)
	}
	if st.MakespanS > 0 {
		st.ThroughputPerMin = float64(st.Completed) / (st.MakespanS / 60)
	}
	if window := winHi - winLo; window > 0 {
		st.SustainedPerMin = float64(inWindow) / window.Minutes()
	}
	st.TotalEnergyJ = float64(s.Meter.TotalEnergy(s.Engine.Now()))
	if st.Completed > 0 {
		st.JoulesPerFunction = st.TotalEnergyJ / float64(st.Completed)
	}
	return st
}
