package cluster

import (
	"strconv"
	"testing"

	"microfaas/internal/core"
	"microfaas/internal/shard"
)

// newSmallSharded builds a 4-shard × 8-SBC cluster for tests.
func newSmallSharded(t *testing.T, seed int64, scfg shard.Config) *ShardedSim {
	t.Helper()
	s, err := NewShardedMicroFaaSSim(4, 8, SimConfig{Seed: seed, Policy: core.AssignLeastLoaded}, scfg)
	if err != nil {
		t.Fatalf("NewShardedMicroFaaSSim: %v", err)
	}
	return s
}

func TestShardedSimDrainsUniformLoad(t *testing.T) {
	s := newSmallSharded(t, 1, shard.Config{})
	const jobs = 96
	for j := 0; j < jobs; j++ {
		id, idx := s.Plane.Submit("k/"+strconv.Itoa(j%16), "FloatOps", nil, nil)
		if id == 0 {
			t.Fatalf("job %d: zero id", j)
		}
		if idx < 0 || idx >= 4 {
			t.Fatalf("job %d: shard index %d out of range", j, idx)
		}
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Completed != jobs {
		t.Fatalf("completed %d of %d (errors %d)", st.Completed, jobs, st.Errors)
	}
	if st.ThroughputPerMin <= 0 {
		t.Fatalf("throughput %v", st.ThroughputPerMin)
	}
}

// TestShardedJobIDsDisjoint checks that JobIDBase gives every shard its
// own id space — the invariant that makes identity-preserving steals
// safe.
func TestShardedJobIDsDisjoint(t *testing.T) {
	s := newSmallSharded(t, 2, shard.Config{})
	seen := map[int64]bool{}
	for j := 0; j < 64; j++ {
		id, idx := s.Plane.Submit("k/"+strconv.Itoa(j), "CascSHA", nil, nil)
		if seen[id] {
			t.Fatalf("duplicate job id %d", id)
		}
		seen[id] = true
		if want := int64(idx) * (1 << 40); id <= want || id > want+(1<<40) {
			t.Fatalf("job id %d outside shard %d's id space", id, idx)
		}
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestShardedStealReducesTailLatency runs the same hot-key workload
// with stealing off and on: one key receives most of the traffic, so
// without relief its home shard's queue (and the cluster p99) blows up,
// while the aggregator drains it onto idle shards.
func TestShardedStealReducesTailLatency(t *testing.T) {
	run := func(scfg shard.Config) (p99 float64, stolen int64) {
		s := newSmallSharded(t, 3, scfg)
		const jobs = 256
		for j := 0; j < jobs; j++ {
			key := "u/" + strconv.Itoa(j%16)
			if j%10 < 8 {
				key = "hot"
			}
			s.Plane.Submit(key, "FloatOps", nil, nil)
		}
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		st := s.Stats()
		if st.Completed != jobs {
			t.Fatalf("completed %d of %d", st.Completed, jobs)
		}
		return st.P99.Seconds(), st.Stolen
	}
	plain := shard.Config{BoundFactor: -1}
	p99Off, stolenOff := run(plain)
	stealing := shard.Config{BoundFactor: -1, Steal: shard.StealConfig{Enabled: true}}
	p99On, stolenOn := run(stealing)
	if stolenOff != 0 {
		t.Fatalf("stole %d jobs with stealing disabled", stolenOff)
	}
	if stolenOn == 0 {
		t.Fatal("hot-key run with stealing enabled migrated nothing")
	}
	if p99On >= p99Off {
		t.Fatalf("stealing did not reduce p99: off=%.2fs on=%.2fs", p99Off, p99On)
	}
}

// TestShardedBoundedLoadDivertsHotKey checks that bounded-load routing
// alone (no stealing) spreads a hot key across shards once its home
// shard saturates.
func TestShardedBoundedLoadDivertsHotKey(t *testing.T) {
	s := newSmallSharded(t, 4, shard.Config{BoundFactor: 1.25})
	counts := map[int]int{}
	for j := 0; j < 128; j++ {
		_, idx := s.Plane.Submit("hot", "FloatOps", nil, nil)
		counts[idx]++
	}
	if len(counts) < 2 {
		t.Fatalf("bounded-load routing kept all 128 hot jobs on one shard: %v", counts)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestShardedDeterminism replays the same seeded sharded workload (with
// stealing and rebalancing on) and compares full result equality.
func TestShardedDeterminism(t *testing.T) {
	run := func() ShardedStats {
		s := newSmallSharded(t, 5, shard.Config{
			Steal:     shard.StealConfig{Enabled: true},
			Rebalance: shard.RebalanceConfig{Enabled: true},
		})
		for j := 0; j < 256; j++ {
			key := "u/" + strconv.Itoa(j%8)
			if j%2 == 0 {
				key = "hot"
			}
			s.Plane.Submit(key, "FloatOps", nil, nil)
		}
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return s.Stats()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("sharded runs diverged:\n%+v\n%+v", a, b)
	}
}

// TestShardedCallbacksSurviveSteal submits hot-key jobs with callbacks
// and checks that every callback fires exactly once with its own job id
// even when the job migrated shards.
func TestShardedCallbacksSurviveSteal(t *testing.T) {
	s := newSmallSharded(t, 6, shard.Config{
		BoundFactor: -1,
		Steal:       shard.StealConfig{Enabled: true},
	})
	const jobs = 128
	fired := map[int64]int{}
	ids := make([]int64, 0, jobs)
	for j := 0; j < jobs; j++ {
		var id int64
		id, _ = s.Plane.Submit("hot", "FloatOps", nil, func(res core.Result) {
			fired[res.Job.ID]++
		})
		ids = append(ids, id)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if s.Plane.StolenTotal() == 0 {
		t.Fatal("workload was expected to trigger stealing")
	}
	for _, id := range ids {
		if fired[id] != 1 {
			t.Fatalf("job %d callback fired %d times", id, fired[id])
		}
	}
}
