package tsdb

import "time"

// The arrival tracker's synthetic series and its source counter.
const (
	// MetricSubmittedByFunction is the per-function submission counter
	// the orchestrator exports and the tracker differentiates.
	MetricSubmittedByFunction = "microfaas_function_submitted_total"
	// MetricArrivalRate is the tracker's instantaneous per-function
	// arrival rate series (submissions per second over the last scrape
	// interval), injected back into the store as a queryable series.
	MetricArrivalRate = "microfaas_function_arrival_rate_per_s"
	// MetricArrivalEWMA is the exponentially-smoothed arrival rate.
	MetricArrivalEWMA = "microfaas_function_arrival_ewma_per_s"
	// MetricArrivalWindowMean is the mean of the sliding window of
	// instantaneous rates (per second) — the tracker's medium-term
	// level estimate, exported so /query sees what the forecaster sees.
	MetricArrivalWindowMean = "microfaas_function_arrival_window_mean_per_s"
	// MetricArrivalWindowMax is the max of the same sliding window (per
	// second) — the burst envelope a warm pool must absorb.
	MetricArrivalWindowMax = "microfaas_function_arrival_window_max_per_s"
)

// Arrival tracker defaults.
const (
	// DefaultEWMAAlpha is the smoothing factor when Config leaves it 0.
	DefaultEWMAAlpha = 0.3
	// DefaultArrivalWindow is the sliding window in scrapes when Config
	// leaves it 0.
	DefaultArrivalWindow = 20
)

// arrivalState is one function's rate history.
type arrivalState struct {
	function  string
	lastTotal float64
	seeded    bool
	ewma      float64
	lastRate  float64   // most recent instantaneous rate
	window    []float64 // sliding-window ring of instantaneous rates
	next, n   int
}

// windowStats summarizes the ring: mean and max over the filled part.
func (st *arrivalState) windowStats() (mean, max float64) {
	for i := 0; i < st.n; i++ {
		v := st.window[i]
		mean += v
		if v > max {
			max = v
		}
	}
	if st.n > 0 {
		mean /= float64(st.n)
	}
	return mean, max
}

// arrivalTracker maintains EWMA + sliding-window per-function arrival
// rates from the scraped submission counters — the explicit feed-in
// for forecast-driven warm pools. It consumes no randomness and visits
// functions in first-seen order, so its synthetic series are as
// deterministic as the counters they derive from.
type arrivalTracker struct {
	alpha float64
	wsize int
	byFn  map[string]*arrivalState
	order []*arrivalState
}

// newArrivalTracker applies defaults and builds the tracker.
func newArrivalTracker(alpha float64, window int) *arrivalTracker {
	if alpha <= 0 || alpha > 1 {
		alpha = DefaultEWMAAlpha
	}
	if window <= 0 {
		window = DefaultArrivalWindow
	}
	return &arrivalTracker{alpha: alpha, wsize: window, byFn: map[string]*arrivalState{}}
}

// update differentiates this scrape's per-function submission totals
// into rates and injects the rate and EWMA series. Called from Scrape
// with s.mu held, after source ingest.
func (a *arrivalTracker) update(s *Store, now, interval time.Duration) {
	if a == nil {
		return
	}
	ms, ok := s.metrics[MetricSubmittedByFunction]
	if !ok {
		return
	}
	// Sum the counter across shards per function, in series order (the
	// registration order is deterministic, so so is ours).
	totals := map[string]float64{}
	var fns []string
	for _, sr := range ms.order {
		fn := sr.labels["function"]
		if fn == "" {
			continue
		}
		if _, seen := totals[fn]; !seen {
			fns = append(fns, fn)
		}
		if w := sr.window(0); w.haveLast {
			totals[fn] += w.last
		}
	}
	for _, fn := range fns {
		st, ok := a.byFn[fn]
		if !ok {
			st = &arrivalState{function: fn, window: make([]float64, a.wsize)}
			a.byFn[fn] = st
			a.order = append(a.order, st)
		}
		total := totals[fn]
		if !st.seeded || interval <= 0 {
			st.lastTotal = total
			st.seeded = true
			continue
		}
		delta := total - st.lastTotal
		if delta < 0 {
			delta = 0 // counter reset (shard restart)
		}
		st.lastTotal = total
		rate := delta / interval.Seconds()
		if st.n == 0 {
			st.ewma = rate
		} else {
			st.ewma = a.alpha*rate + (1-a.alpha)*st.ewma
		}
		st.lastRate = rate
		st.window[st.next] = rate
		st.next = (st.next + 1) % a.wsize
		if st.n < a.wsize {
			st.n++
		}
		mean, max := st.windowStats()
		s.ingestLocked(now, MetricArrivalRate, map[string]string{"function": fn}, rate)
		s.ingestLocked(now, MetricArrivalEWMA, map[string]string{"function": fn}, st.ewma)
		s.ingestLocked(now, MetricArrivalWindowMean, map[string]string{"function": fn}, mean)
		s.ingestLocked(now, MetricArrivalWindowMax, map[string]string{"function": fn}, max)
	}
}

// Forecast is one function's arrival-rate summary for warm-pool sizing.
type Forecast struct {
	// Function names the workload function.
	Function string `json:"function"`
	// Rate is the most recent instantaneous arrival rate (per second).
	Rate float64 `json:"rate_per_s"`
	// EWMA is the exponentially-smoothed arrival rate (per second).
	EWMA float64 `json:"ewma_per_s"`
	// WindowMean and WindowMax summarize the sliding window of
	// instantaneous rates.
	WindowMean float64 `json:"window_mean_per_s"`
	WindowMax  float64 `json:"window_max_per_s"`
}

// Forecasts returns every tracked function's arrival summary in
// first-seen order — the warm-pool planner's input.
func (s *Store) Forecasts() []Forecast {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Forecast, 0, len(s.arrival.order))
	for _, st := range s.arrival.order {
		f := Forecast{Function: st.function, Rate: st.lastRate, EWMA: st.ewma}
		f.WindowMean, f.WindowMax = st.windowStats()
		out = append(out, f)
	}
	return out
}
