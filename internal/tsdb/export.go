package tsdb

import (
	"bufio"
	"io"
	"sort"
	"time"
)

// WriteNDJSON streams retained series as newline-delimited JSON for
// offline analysis: one object per sample, shaped
//
//	{"metric":"…","labels":{…},"at_ms":…,"value":…}
//
// metric filters to one family ("" = everything); match filters series
// by label pairs; window bounds the lookback from the last scrape
// (<= 0 = all retained points). Metrics stream in first-seen order,
// series within a metric likewise, points oldest first — fully
// deterministic under a seed.
func (s *Store) WriteNDJSON(w io.Writer, metric string, match map[string]string, window time.Duration) error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	from := time.Duration(0)
	if window > 0 {
		if from = s.lastAt - window; from < 0 {
			from = 0
		}
	}
	bw := bufio.NewWriter(w)
	names := s.names
	if metric != "" {
		names = []string{metric}
	}
	for _, name := range names {
		ms, ok := s.metrics[name]
		if !ok {
			continue
		}
		for _, sr := range ms.order {
			if !matchesAll(sr.labels, match) {
				continue
			}
			if err := writeSeriesNDJSON(bw, name, sr, from); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// writeSeriesNDJSON streams one series' windowed points.
func writeSeriesNDJSON(w *bufio.Writer, name string, sr *series, from time.Duration) error {
	prefix := `{"metric":` + jsonString(name) + `,"labels":{` + jsonLabels(sr.labels) + `},"at_ms":`
	var err error
	sr.raw.ascend(from, func(p Point) bool {
		_, werr := w.WriteString(prefix +
			jsonFloat(float64(p.At)/float64(time.Millisecond)) +
			`,"value":` + jsonFloat(p.Value) + "}\n")
		if werr != nil {
			err = werr
			return false
		}
		return true
	})
	return err
}

// jsonLabels renders a label map as sorted JSON members (no braces).
func jsonLabels(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := ""
	for i, k := range keys {
		if i > 0 {
			out += ","
		}
		out += jsonString(k) + ":" + jsonString(labels[k])
	}
	return out
}

// jsonString quotes s as a JSON string, escaping the characters the
// exposition format can carry (quotes, backslashes, newlines); metric
// and label names are already validated to need none of it.
func jsonString(s string) string {
	out := make([]byte, 0, len(s)+2)
	out = append(out, '"')
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '"', '\\':
			out = append(out, '\\', c)
		case '\n':
			out = append(out, '\\', 'n')
		default:
			if c < 0x20 {
				const hex = "0123456789abcdef"
				out = append(out, '\\', 'u', '0', '0', hex[c>>4], hex[c&0xf])
			} else {
				out = append(out, c)
			}
		}
	}
	return string(append(out, '"'))
}
