package tsdb

import (
	"math"
	"strings"
	"testing"
	"time"

	"microfaas/internal/telemetry"
)

// scrapeN drives n scrapes at a fixed interval, calling step before
// each so the test can advance its counters.
func scrapeN(s *Store, n int, interval time.Duration, step func(i int)) {
	for i := 0; i < n; i++ {
		if step != nil {
			step(i)
		}
		s.Scrape(time.Duration(i+1) * interval)
	}
}

func TestScrapeAndQueryOps(t *testing.T) {
	reg := telemetry.NewRegistry()
	c := reg.Counter("jobs_total", "jobs")
	g := reg.Gauge("depth", "queue depth")
	s := New(Config{})
	s.AddSource("shard-00", reg)

	// Counter +2/s for 10s at 1s scrapes; gauge walks 0..9.
	scrapeN(s, 10, time.Second, func(i int) {
		c.Add(2)
		g.Set(float64(i))
	})

	cases := []struct {
		op   Op
		want float64
	}{
		{OpLast, 9},
		{OpMin, 0},
		{OpMax, 9},
		{OpAvg, 4.5},
	}
	for _, tc := range cases {
		res, err := s.Query(Query{Metric: "depth", Op: tc.op, Window: time.Minute})
		if err != nil {
			t.Fatalf("%s: %v", tc.op, err)
		}
		if len(res) != 1 || res[0].Value != tc.want {
			t.Fatalf("%s = %+v, want single series value %g", tc.op, res, tc.want)
		}
		if res[0].Labels["shard"] != "shard-00" {
			t.Fatalf("%s: missing injected shard label: %v", tc.op, res[0].Labels)
		}
	}

	inc, err := s.Query(Query{Metric: "jobs_total", Op: OpIncrease, Window: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	// First scrape saw 2, last saw 20: increase across retained window is 18.
	if len(inc) != 1 || inc[0].Value != 18 {
		t.Fatalf("increase = %+v, want 18", inc)
	}
	rate, err := s.Query(Query{Metric: "jobs_total", Op: OpRate, Window: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if len(rate) != 1 || math.Abs(rate[0].Value-2) > 1e-9 {
		t.Fatalf("rate = %+v, want 2/s", rate)
	}

	if res, err := s.Query(Query{Metric: "no_such_metric"}); err != nil || len(res) != 0 {
		t.Fatalf("unknown metric: res=%v err=%v, want empty and nil", res, err)
	}
	if _, err := s.Query(Query{Metric: "depth", Op: "median"}); err == nil {
		t.Fatal("unknown op accepted")
	}
	if _, err := s.Query(Query{}); err == nil {
		t.Fatal("empty metric accepted")
	}
}

func TestQueryRangePoints(t *testing.T) {
	reg := telemetry.NewRegistry()
	g := reg.Gauge("v", "value")
	s := New(Config{})
	s.AddSource("", reg)
	scrapeN(s, 5, time.Second, func(i int) { g.Set(float64(i * i)) })
	res, err := s.Query(Query{Metric: "v", Op: OpLast, Window: time.Minute, Range: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || len(res[0].Points) != 5 {
		t.Fatalf("range points = %+v, want 5 points", res)
	}
	for i, p := range res[0].Points {
		if p.At != time.Duration(i+1)*time.Second || p.Value != float64(i*i) {
			t.Fatalf("point %d = %+v", i, p)
		}
	}
}

func TestTierFallbackAfterRawEviction(t *testing.T) {
	reg := telemetry.NewRegistry()
	c := reg.Counter("n_total", "count")
	// Raw ring of 8 points, tiers at 10s/1m: 100 scrapes at 1s leaves raw
	// covering only the last 8s, so a full-horizon window must fall back
	// to a downsample tier.
	s := New(Config{RawCapacity: 8})
	s.AddSource("", reg)
	scrapeN(s, 100, time.Second, func(i int) { c.Inc() })

	res, err := s.Query(Query{Metric: "n_total", Op: OpIncrease, Window: 90 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Fatalf("series = %+v", res)
	}
	// Tier-1 buckets (10s) serve the window [10s, 100s]: the counter read
	// 10 at the window start and 100 at the end, so increase is 90.
	if got := res[0].Value; got != 90 {
		t.Fatalf("tier-fallback increase = %g, want 90", got)
	}
	// A window the raw ring still covers answers from raw.
	res, err = s.Query(Query{Metric: "n_total", Op: OpIncrease, Window: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if got := res[0].Value; got != 5 {
		t.Fatalf("raw increase = %g, want 5", got)
	}
}

func TestQuantileOverTimeMergesShards(t *testing.T) {
	bounds := []float64{0.1, 1, 10}
	regA, regB := telemetry.NewRegistry(), telemetry.NewRegistry()
	hA := regA.Histogram("lat_seconds", "latency", bounds)
	hB := regB.Histogram("lat_seconds", "latency", bounds)
	s := New(Config{})
	s.AddSource("shard-00", regA)
	s.AddSource("shard-01", regB)

	s.Scrape(time.Second) // zero baseline
	// Shard A: 30 fast (≤0.1), shard B: 50 medium (≤1) + 20 slow (≤10).
	for i := 0; i < 30; i++ {
		hA.Observe(0.05)
	}
	for i := 0; i < 50; i++ {
		hB.Observe(0.5)
	}
	for i := 0; i < 20; i++ {
		hB.Observe(5)
	}
	s.Scrape(2 * time.Second)

	res, err := s.Query(Query{Metric: "lat_seconds", Op: OpQuantile, Q: 0.5, Window: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Fatalf("quantile results = %+v", res)
	}
	// Merged distribution: 30/100 ≤ 0.1, 80/100 ≤ 1 → p50 interpolates
	// inside the (0.1, 1] bucket.
	if v := res[0].Value; v <= 0.1 || v > 1 {
		t.Fatalf("p50 = %g, want within (0.1, 1]", v)
	}
	// p99 lands in the slowest finite bucket.
	res, err = s.Query(Query{Metric: "lat_seconds", Op: OpQuantile, Q: 0.99, Window: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if v := res[0].Value; v <= 1 || v > 10 {
		t.Fatalf("p99 = %g, want within (1, 10]", v)
	}
	if _, err := s.Query(Query{Metric: "lat_seconds", Op: OpQuantile, Q: 1.5}); err == nil {
		t.Fatal("out-of-range quantile accepted")
	}
}

func TestSLOLatencyBurnFiresAndResolves(t *testing.T) {
	reg := telemetry.NewRegistry()
	h := reg.Histogram(DefaultLatencyMetric, "latency", []float64{0.1, 1, 10})
	s := New(Config{})
	s.AddSource("shard-00", reg)
	win := &Windows{
		FastShort: Duration(2 * time.Second), FastLong: Duration(4 * time.Second), FastBurn: 2,
		SlowShort: Duration(4 * time.Second), SlowLong: Duration(8 * time.Second), SlowBurn: 1.5,
	}
	rule := Rule{Name: "p99-latency", Kind: KindLatency, ThresholdS: 1, Target: 0.9, Windows: win}
	if err := s.SetRules([]Rule{rule}); err != nil {
		t.Fatal(err)
	}

	now := time.Duration(0)
	step := func(slow, fast int) {
		for i := 0; i < slow; i++ {
			h.Observe(5)
		}
		for i := 0; i < fast; i++ {
			h.Observe(0.05)
		}
		now += time.Second
		s.Scrape(now)
	}

	// Healthy traffic: all fast.
	for i := 0; i < 6; i++ {
		step(0, 10)
	}
	if alerts := s.ActiveAlerts(); len(alerts) != 0 {
		t.Fatalf("alerts while healthy: %+v", alerts)
	}
	// Regression: every invocation slow → bad fraction 1.0, burn 10 ≫ 2.
	for i := 0; i < 6; i++ {
		step(10, 0)
	}
	alerts := s.ActiveAlerts()
	if len(alerts) == 0 {
		t.Fatal("no alert during sustained 100% slow traffic")
	}
	if alerts[0].Rule != "p99-latency" {
		t.Fatalf("alert = %+v", alerts[0])
	}
	// Recovery: fast traffic long enough to flush both window pairs.
	for i := 0; i < 12; i++ {
		step(0, 10)
	}
	if alerts := s.ActiveAlerts(); len(alerts) != 0 {
		t.Fatalf("alerts after recovery: %+v", alerts)
	}

	// The transition history holds firing events followed by resolutions,
	// stamped with the rule name and page.
	hist := s.AlertHistory()
	var fired, resolved int
	for _, ev := range hist {
		switch ev.Type {
		case telemetry.EventAlertFiring:
			fired++
		case telemetry.EventAlertResolved:
			resolved++
		default:
			t.Fatalf("unexpected event type %q", ev.Type)
		}
		if ev.Function != "p99-latency" || (ev.Worker != "fast" && ev.Worker != "slow") {
			t.Fatalf("bad transition event: %+v", ev)
		}
	}
	if fired == 0 || fired != resolved {
		t.Fatalf("history fired=%d resolved=%d, want equal and nonzero", fired, resolved)
	}

	// SLOStatus reports both pages quiet again.
	status := s.SLOStatus()
	if len(status) != 1 || len(status[0].Pages) != 2 {
		t.Fatalf("status = %+v", status)
	}
	for _, p := range status[0].Pages {
		if p.Firing {
			t.Fatalf("page %s still firing after recovery: %+v", p.Page, p)
		}
	}
}

func TestSLOErrorRatioAndEnergyBudget(t *testing.T) {
	reg := telemetry.NewRegistry()
	okC := reg.Counter(DefaultErrorMetric, "outcomes", "function", "f", "result", "ok")
	errC := reg.Counter(DefaultErrorMetric, "outcomes", "function", "f", "result", "error")
	joules := reg.Counter(DefaultEnergyMetric, "energy", "function", "f")
	s := New(Config{})
	s.AddSource("", reg)
	win := &Windows{
		FastShort: Duration(2 * time.Second), FastLong: Duration(4 * time.Second), FastBurn: 2,
		SlowShort: Duration(4 * time.Second), SlowLong: Duration(8 * time.Second), SlowBurn: 2,
	}
	rules := []Rule{
		{Name: "errors", Kind: KindErrorRatio, Function: "f", Target: 0.95, Windows: win},
		{Name: "energy", Kind: KindEnergyBudget, Function: "f", BudgetJ: 10, Windows: win},
	}
	if err := s.SetRules(rules); err != nil {
		t.Fatal(err)
	}

	now := time.Duration(0)
	step := func(ok, errs int, j float64) {
		okC.Add(float64(ok))
		errC.Add(float64(errs))
		joules.Add(j)
		now += time.Second
		s.Scrape(now)
	}
	// Within budget: 1% errors, 5 J per completion.
	for i := 0; i < 6; i++ {
		step(99, 1, 500)
	}
	if alerts := s.ActiveAlerts(); len(alerts) != 0 {
		t.Fatalf("alerts while in budget: %+v", alerts)
	}
	// Blow both budgets: 50% errors, 50 J per completion.
	for i := 0; i < 6; i++ {
		step(50, 50, 5000)
	}
	alerts := s.ActiveAlerts()
	names := map[string]bool{}
	for _, a := range alerts {
		names[a.Rule] = true
	}
	if !names["errors"] || !names["energy"] {
		t.Fatalf("want both rules firing, got %+v", alerts)
	}
}

func TestArrivalTrackerEWMAAndForecasts(t *testing.T) {
	reg := telemetry.NewRegistry()
	sub := reg.Counter(MetricSubmittedByFunction, "submissions", "function", "matmul")
	s := New(Config{EWMAAlpha: 0.5, ArrivalWindow: 4})
	s.AddSource("shard-00", reg)

	// 5/s for 8 scrapes.
	scrapeN(s, 8, time.Second, func(i int) { sub.Add(5) })

	res, err := s.Query(Query{Metric: MetricArrivalRate, Op: OpLast, Window: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].Value != 5 {
		t.Fatalf("arrival rate = %+v, want 5/s", res)
	}
	if res[0].Labels["function"] != "matmul" {
		t.Fatalf("rate labels = %v", res[0].Labels)
	}
	ew, err := s.Query(Query{Metric: MetricArrivalEWMA, Op: OpLast, Window: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if len(ew) != 1 || math.Abs(ew[0].Value-5) > 1e-9 {
		t.Fatalf("steady-state EWMA = %+v, want 5", ew)
	}

	fc := s.Forecasts()
	if len(fc) != 1 || fc[0].Function != "matmul" {
		t.Fatalf("forecasts = %+v", fc)
	}
	if fc[0].WindowMean != 5 || fc[0].WindowMax != 5 || math.Abs(fc[0].EWMA-5) > 1e-9 {
		t.Fatalf("forecast = %+v, want 5 across the board", fc[0])
	}
}

func TestWriteNDJSON(t *testing.T) {
	reg := telemetry.NewRegistry()
	g := reg.Gauge("depth", "queue depth", "worker", "w0")
	s := New(Config{})
	s.AddSource("shard-01", reg)
	scrapeN(s, 3, time.Second, func(i int) { g.Set(float64(i)) })

	var b strings.Builder
	if err := s.WriteNDJSON(&b, "depth", nil, 0); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("ndjson lines = %d: %q", len(lines), b.String())
	}
	want := `{"metric":"depth","labels":{"shard":"shard-01","worker":"w0"},"at_ms":1000,"value":0}`
	if lines[0] != want {
		t.Fatalf("line 0 = %s, want %s", lines[0], want)
	}

	// Label filter drops everything when no series matches.
	b.Reset()
	if err := s.WriteNDJSON(&b, "depth", map[string]string{"worker": "nope"}, 0); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 0 {
		t.Fatalf("filtered export not empty: %q", b.String())
	}
}

func TestParseRulesValidation(t *testing.T) {
	good := `[{"name":"p99","kind":"latency","threshold_s":1,"target":0.99}]`
	rules, err := ParseRules([]byte(good))
	if err != nil || len(rules) != 1 {
		t.Fatalf("good rules: %v %v", rules, err)
	}
	bad := []string{
		`[]`, // empty
		`[{"name":"","kind":"latency","threshold_s":1,"target":0.99}]`,   // no name
		`[{"name":"x","kind":"nope"}]`,                                   // unknown kind
		`[{"name":"x","kind":"latency","threshold_s":-1,"target":0.99}]`, // bad threshold
		`[{"name":"x","kind":"latency","threshold_s":1,"target":1.5}]`,   // bad target
		`[{"name":"x","kind":"energy_budget","budget_j":-5}]`,            // bad budget
		`[{"name":"x","kind":"latency","threshold_s":1,"target":0.9,"windows":{"fast_short":"1h","fast_long":"5m","fast_burn":14,"slow_short":"30m","slow_long":"6h","slow_burn":6}}]`, // short > long
		`not json`,
	}
	for _, tc := range bad {
		if _, err := ParseRules([]byte(tc)); err == nil {
			t.Fatalf("accepted bad rules: %s", tc)
		}
	}
	// Metric catalogue check.
	r := Rule{Name: "x", Kind: KindLatency, ThresholdS: 1, Target: 0.9, Metric: "typo_metric"}
	if err := r.ValidateMetric(KnownMetrics()); err == nil {
		t.Fatal("unknown metric accepted")
	}
	r.Metric = ""
	if err := r.ValidateMetric(KnownMetrics()); err != nil {
		t.Fatalf("default metric rejected: %v", err)
	}
}

func TestNilStoreNoOps(t *testing.T) {
	var s *Store
	s.AddSource("x", telemetry.NewRegistry())
	s.Scrape(time.Second)
	if res, err := s.Query(Query{Metric: "m"}); res != nil || err != nil {
		t.Fatal("nil query should return nil, nil")
	}
	if err := s.SetRules([]Rule{{}}); err != nil {
		t.Fatal("nil SetRules should no-op")
	}
	if s.SLOStatus() != nil || s.ActiveAlerts() != nil || s.Forecasts() != nil {
		t.Fatal("nil status calls should return nil")
	}
	if s.MetricNames() != nil || s.SeriesCount() != 0 {
		t.Fatal("nil store reports data")
	}
	if at, n := s.LastScrape(); at != 0 || n != 0 {
		t.Fatal("nil store scraped")
	}
	if err := s.WriteNDJSON(&strings.Builder{}, "", nil, 0); err != nil {
		t.Fatal(err)
	}
	stop := s.Start(func() time.Duration { return 0 }, time.Second)
	stop()
}

func TestSnapshotMatchesExposition(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Counter("a_total", "a", "function", "f").Add(3)
	reg.Gauge("b", "b").Set(7)
	reg.Histogram("h_seconds", "h", []float64{1, 2}).Observe(1.5)

	var text strings.Builder
	if err := reg.WritePrometheusLabeled(&text, "shard", "s0"); err != nil {
		t.Fatal(err)
	}
	parsed, err := telemetry.ParseText(strings.NewReader(text.String()))
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot("shard", "s0")
	if len(snap) != len(parsed) {
		t.Fatalf("snapshot has %d samples, exposition %d", len(snap), len(parsed))
	}
	for i, smp := range snap {
		p := parsed[i]
		if smp.Name != p.Name || smp.Value != p.Value {
			t.Fatalf("sample %d: snapshot %+v vs parsed %+v", i, smp, p)
		}
		if len(smp.Labels) != len(p.Labels) {
			t.Fatalf("sample %d labels: %v vs %v", i, smp.Labels, p.Labels)
		}
		for k, v := range p.Labels {
			if smp.Labels[k] != v {
				t.Fatalf("sample %d label %s: %q vs %q", i, k, smp.Labels[k], v)
			}
		}
	}
}

func TestScrapeIsDeterministic(t *testing.T) {
	build := func() *Store {
		reg := telemetry.NewRegistry()
		c := reg.Counter("n_total", "count", "function", "f")
		g := reg.Gauge("d", "depth")
		s := New(Config{})
		s.AddSource("shard-00", reg)
		scrapeN(s, 20, 250*time.Millisecond, func(i int) {
			c.Add(float64(i % 3))
			g.Set(float64(i))
		})
		return s
	}
	var a, b strings.Builder
	if err := build().WriteNDJSON(&a, "", nil, 0); err != nil {
		t.Fatal(err)
	}
	if err := build().WriteNDJSON(&b, "", nil, 0); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("two identical runs exported different series")
	}
}
