package tsdb

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"time"

	"microfaas/internal/telemetry"
	"microfaas/internal/tracing"
)

// Rule kinds: what an SLO objective constrains.
const (
	// KindLatency bounds the fraction of invocations slower than
	// ThresholdS: good = latency ≤ threshold, Target is the good
	// fraction (e.g. 0.99 → "99% of invocations under threshold").
	KindLatency = "latency"
	// KindErrorRatio bounds the error fraction: Target is the good
	// (non-error) fraction.
	KindErrorRatio = "error_ratio"
	// KindEnergyBudget bounds metered joules per completed invocation
	// (FaasMeter-style per-function energy budgets): burn is the
	// measured J/function over the window divided by BudgetJ.
	KindEnergyBudget = "energy_budget"
)

// Default metrics per rule kind.
const (
	// DefaultLatencyMetric is the end-to-end latency histogram KindLatency
	// rules read.
	DefaultLatencyMetric = "microfaas_invocation_latency_seconds"
	// DefaultErrorMetric is the per-function outcome counter
	// KindErrorRatio rules read (and KindEnergyBudget's completion
	// denominator).
	DefaultErrorMetric = "microfaas_function_invocations_total"
	// DefaultEnergyMetric is the per-function joule counter
	// KindEnergyBudget rules read.
	DefaultEnergyMetric = "microfaas_function_energy_joules_total"
)

// Duration is a time.Duration that marshals to and from JSON as a Go
// duration string ("5m", "1h30m"); bare numbers are read as seconds.
type Duration time.Duration

// MarshalJSON renders the duration as its Go string form.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON accepts "5m"-style strings or numeric seconds.
func (d *Duration) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		v, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("tsdb: bad duration %q: %w", s, err)
		}
		*d = Duration(v)
		return nil
	}
	var secs float64
	if err := json.Unmarshal(b, &secs); err != nil {
		return fmt.Errorf("tsdb: duration must be a string or seconds: %s", b)
	}
	*d = Duration(time.Duration(secs * float64(time.Second)))
	return nil
}

// Windows is one rule's multi-window burn-rate configuration: a fast
// page (short windows, high burn threshold — catches sharp regressions
// in minutes) and a slow page (long windows, low threshold — catches
// slow bleeds). A page fires only when BOTH its windows exceed the
// threshold: the long window proves the burn is sustained, the short
// window makes the alert resolve promptly once the burn stops.
type Windows struct {
	// FastShort and FastLong are the fast page's window pair.
	FastShort Duration `json:"fast_short"`
	FastLong  Duration `json:"fast_long"`
	// FastBurn is the fast page's burn-rate threshold.
	FastBurn float64 `json:"fast_burn"`
	// SlowShort and SlowLong are the slow page's window pair.
	SlowShort Duration `json:"slow_short"`
	SlowLong  Duration `json:"slow_long"`
	// SlowBurn is the slow page's burn-rate threshold.
	SlowBurn float64 `json:"slow_burn"`
}

// DefaultWindows returns the SRE-workbook multi-window pairs: fast
// 5m/1h at burn 14.4 (2% of a 30-day budget in an hour), slow 30m/6h
// at burn 6. Simulation rules override these — a seeded sim's horizon
// is seconds, not days.
func DefaultWindows() Windows {
	return Windows{
		FastShort: Duration(5 * time.Minute), FastLong: Duration(time.Hour), FastBurn: 14.4,
		SlowShort: Duration(30 * time.Minute), SlowLong: Duration(6 * time.Hour), SlowBurn: 6,
	}
}

// Rule is one declarative service-level objective, evaluated as two
// burn-rate pages on every scrape.
type Rule struct {
	// Name identifies the rule in alerts and events.
	Name string `json:"name"`
	// Kind selects the objective: KindLatency, KindErrorRatio, or
	// KindEnergyBudget.
	Kind string `json:"kind"`
	// Metric overrides the kind's default metric (the histogram family
	// for latency, the outcome counter for error ratio, the joule
	// counter for energy budget).
	Metric string `json:"metric,omitempty"`
	// Function scopes the rule to one function's series (adds a
	// function=… matcher; empty = cluster-wide).
	Function string `json:"function,omitempty"`
	// ThresholdS is the latency bound in seconds (KindLatency).
	ThresholdS float64 `json:"threshold_s,omitempty"`
	// Target is the good fraction in (0,1) (KindLatency, KindErrorRatio).
	Target float64 `json:"target,omitempty"`
	// BudgetJ is the joules-per-completion budget (KindEnergyBudget).
	BudgetJ float64 `json:"budget_j,omitempty"`
	// Windows overrides DefaultWindows.
	Windows *Windows `json:"windows,omitempty"`
}

// windows resolves the rule's effective window configuration.
func (r Rule) windows() Windows {
	if r.Windows != nil {
		return *r.Windows
	}
	return DefaultWindows()
}

// metric resolves the rule's effective primary metric.
func (r Rule) metric() string {
	if r.Metric != "" {
		return r.Metric
	}
	switch r.Kind {
	case KindErrorRatio:
		return DefaultErrorMetric
	case KindEnergyBudget:
		return DefaultEnergyMetric
	default:
		return DefaultLatencyMetric
	}
}

// Validate checks the rule's internal consistency: known kind,
// parameter signs, target range, and window ordering (short < long in
// each pair, fast windows no longer than slow ones, positive burn
// thresholds). It does not check the metric against a catalogue — see
// ValidateMetric.
func (r Rule) Validate() error {
	if r.Name == "" {
		return fmt.Errorf("tsdb: rule needs a name")
	}
	switch r.Kind {
	case KindLatency:
		if r.ThresholdS <= 0 {
			return fmt.Errorf("tsdb: rule %s: latency threshold_s must be > 0, got %g", r.Name, r.ThresholdS)
		}
		if r.Target <= 0 || r.Target >= 1 {
			return fmt.Errorf("tsdb: rule %s: target must be in (0,1), got %g", r.Name, r.Target)
		}
	case KindErrorRatio:
		if r.Target <= 0 || r.Target >= 1 {
			return fmt.Errorf("tsdb: rule %s: target must be in (0,1), got %g", r.Name, r.Target)
		}
	case KindEnergyBudget:
		if r.BudgetJ <= 0 {
			return fmt.Errorf("tsdb: rule %s: budget_j must be > 0, got %g", r.Name, r.BudgetJ)
		}
	default:
		return fmt.Errorf("tsdb: rule %s: unknown kind %q (want %s, %s, or %s)",
			r.Name, r.Kind, KindLatency, KindErrorRatio, KindEnergyBudget)
	}
	w := r.windows()
	for _, pair := range []struct {
		page        string
		short, long Duration
		burn        float64
	}{
		{"fast", w.FastShort, w.FastLong, w.FastBurn},
		{"slow", w.SlowShort, w.SlowLong, w.SlowBurn},
	} {
		if pair.short <= 0 || pair.long <= 0 {
			return fmt.Errorf("tsdb: rule %s: %s windows must be > 0", r.Name, pair.page)
		}
		if pair.short >= pair.long {
			return fmt.Errorf("tsdb: rule %s: %s short window %s must be shorter than its long window %s",
				r.Name, pair.page, time.Duration(pair.short), time.Duration(pair.long))
		}
		if pair.burn <= 0 {
			return fmt.Errorf("tsdb: rule %s: %s burn threshold must be > 0, got %g", r.Name, pair.page, pair.burn)
		}
	}
	if w.FastLong > w.SlowLong {
		return fmt.Errorf("tsdb: rule %s: fast long window %s exceeds slow long window %s (pages are ordered fast < slow)",
			r.Name, time.Duration(w.FastLong), time.Duration(w.SlowLong))
	}
	return nil
}

// ValidateMetric checks the rule's effective metric against a known
// catalogue (see KnownMetrics); slolint calls it so a typoed metric
// fails CI instead of silently never firing.
func (r Rule) ValidateMetric(known []string) error {
	m := r.metric()
	for _, k := range known {
		if k == m {
			return nil
		}
	}
	return fmt.Errorf("tsdb: rule %s: unknown metric %q", r.Name, m)
}

// KnownMetrics returns the platform's metric catalogue: every family
// the orchestrator, workers, power manager, shard plane, cluster
// meters, and the store's own synthetic series register. slolint
// validates rule files against it.
func KnownMetrics() []string {
	return []string{
		"microfaas_jobs_submitted_total",
		"microfaas_jobs_pending",
		"microfaas_retries_total",
		"microfaas_attempts_total",
		"microfaas_queue_depth",
		"microfaas_worker_busy",
		"microfaas_breaker_transitions_total",
		"microfaas_function_invocations_total",
		"microfaas_function_submitted_total",
		"microfaas_invocation_latency_seconds",
		"microfaas_worker_boots_total",
		"microfaas_fault_injections_total",
		"microfaas_function_energy_joules_total",
		"microfaas_workers_powered",
		"microfaas_worker_powered",
		"microfaas_power_cap_watts",
		"microfaas_power_wakes_total",
		"microfaas_power_downs_total",
		"microfaas_power_cap_deferred_total",
		"microfaas_shard_queue_depth",
		"microfaas_shard_weight",
		"microfaas_shard_stolen_total",
		"microfaas_cluster_energy_joules_total",
		"microfaas_cluster_power_watts",
		MetricArrivalRate,
		MetricArrivalEWMA,
		MetricArrivalWindowMean,
		MetricArrivalWindowMax,
		"microfaas_forecast_workers_target",
		"microfaas_forecast_error_ratio",
		"microfaas_forecast_predictive_mode",
		"microfaas_forecast_fallbacks_total",
		"microfaas_forecast_rate_ahead_per_s",
		"microfaas_power_prewarm_target",
		"microfaas_function_energy_budget_joules",
		"microfaas_function_budget_spent_joules",
		"microfaas_function_budget_exhausted",
		"microfaas_budget_throttled_total",
	}
}

// resolveFraction is the resolve-side hysteresis: a firing page stays
// lit until both burns fall below this fraction of the threshold.
// Without it a burn hovering at the threshold flaps the alert on every
// scrape; with it the firing level and the resolve level are distinct.
const resolveFraction = 0.9

// pageState is one burn-rate page's live evaluation state.
type pageState struct {
	firing              bool
	sinceMs             float64
	shortBurn, longBurn float64
}

// ruleState pairs a rule with its two pages.
type ruleState struct {
	rule       Rule
	fast, slow pageState
}

// sloEngine evaluates the configured rules on every scrape. Nil when no
// rules are set.
type sloEngine struct {
	rules  []ruleState
	tracer *tracing.Tracer
}

// SetRules installs the SLO rules (replacing any previous set) after
// validating each. Alert state starts clean; call before traffic for
// deterministic timelines. Nil stores no-op.
func (s *Store) SetRules(rules []Rule) error {
	if s == nil {
		return nil
	}
	states := make([]ruleState, 0, len(rules))
	for _, r := range rules {
		if err := r.Validate(); err != nil {
			return err
		}
		states = append(states, ruleState{rule: r})
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(states) == 0 {
		s.slo = nil
		return nil
	}
	s.slo = &sloEngine{rules: states, tracer: s.cfg.Tracer}
	return nil
}

// Rules returns the installed rules.
func (s *Store) Rules() []Rule {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.slo == nil {
		return nil
	}
	out := make([]Rule, len(s.slo.rules))
	for i, rs := range s.slo.rules {
		out[i] = rs.rule
	}
	return out
}

// PageStatus is one burn-rate page's current view.
type PageStatus struct {
	// Page is "fast" or "slow".
	Page string `json:"page"`
	// ShortWindow and LongWindow are the page's window pair.
	ShortWindow Duration `json:"short_window"`
	LongWindow  Duration `json:"long_window"`
	// Threshold is the burn rate both windows must exceed to fire.
	Threshold float64 `json:"threshold"`
	// ShortBurn and LongBurn are the burn rates at the last evaluation.
	ShortBurn float64 `json:"short_burn"`
	LongBurn  float64 `json:"long_burn"`
	// Firing reports whether the page is currently firing.
	Firing bool `json:"firing"`
	// SinceMs stamps the page's last transition (cluster-clock ms).
	SinceMs float64 `json:"since_ms"`
}

// RuleStatus is one rule's full evaluation state, served by GET /slo.
type RuleStatus struct {
	// Rule echoes the configured objective.
	Rule Rule `json:"rule"`
	// Pages holds the fast and slow page states, in that order.
	Pages []PageStatus `json:"pages"`
}

// SLOStatus reports every rule's pages as of the last scrape.
func (s *Store) SLOStatus() []RuleStatus {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.slo == nil {
		return []RuleStatus{}
	}
	out := make([]RuleStatus, 0, len(s.slo.rules))
	for i := range s.slo.rules {
		rs := &s.slo.rules[i]
		w := rs.rule.windows()
		out = append(out, RuleStatus{
			Rule: rs.rule,
			Pages: []PageStatus{
				pageStatus("fast", w.FastShort, w.FastLong, w.FastBurn, rs.fast),
				pageStatus("slow", w.SlowShort, w.SlowLong, w.SlowBurn, rs.slow),
			},
		})
	}
	return out
}

// pageStatus assembles one page's status row.
func pageStatus(page string, short, long Duration, burn float64, st pageState) PageStatus {
	return PageStatus{
		Page: page, ShortWindow: short, LongWindow: long, Threshold: burn,
		ShortBurn: st.shortBurn, LongBurn: st.longBurn,
		Firing: st.firing, SinceMs: st.sinceMs,
	}
}

// Alert is one currently-firing page, served by GET /alerts.
type Alert struct {
	// Rule names the firing objective.
	Rule string `json:"rule"`
	// Page is "fast" or "slow".
	Page string `json:"page"`
	// SinceMs stamps when the page began firing (cluster-clock ms).
	SinceMs float64 `json:"since_ms"`
	// ShortBurn/LongBurn/Threshold are the page's burn view at the last
	// evaluation.
	ShortBurn float64 `json:"short_burn"`
	LongBurn  float64 `json:"long_burn"`
	Threshold float64 `json:"threshold"`
}

// ActiveAlerts returns every page currently firing, in rule order.
func (s *Store) ActiveAlerts() []Alert {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := []Alert{}
	if s.slo == nil {
		return out
	}
	for i := range s.slo.rules {
		rs := &s.slo.rules[i]
		w := rs.rule.windows()
		if rs.fast.firing {
			out = append(out, Alert{Rule: rs.rule.Name, Page: "fast", SinceMs: rs.fast.sinceMs,
				ShortBurn: rs.fast.shortBurn, LongBurn: rs.fast.longBurn, Threshold: w.FastBurn})
		}
		if rs.slow.firing {
			out = append(out, Alert{Rule: rs.rule.Name, Page: "slow", SinceMs: rs.slow.sinceMs,
				ShortBurn: rs.slow.shortBurn, LongBurn: rs.slow.longBurn, Threshold: w.SlowBurn})
		}
	}
	return out
}

// eval runs one evaluation pass over every rule. Called from Scrape
// with s.mu held; a nil engine no-ops.
func (e *sloEngine) eval(s *Store, now time.Duration) {
	if e == nil {
		return
	}
	for i := range e.rules {
		rs := &e.rules[i]
		w := rs.rule.windows()
		e.evalPage(s, now, rs, &rs.fast, "fast", w.FastShort, w.FastLong, w.FastBurn)
		e.evalPage(s, now, rs, &rs.slow, "slow", w.SlowShort, w.SlowLong, w.SlowBurn)
	}
}

// evalPage recomputes one page's burn pair and records a transition
// event (plus a tracing annotation) when the firing state flips.
func (e *sloEngine) evalPage(s *Store, now time.Duration, rs *ruleState, st *pageState, page string, short, long Duration, threshold float64) {
	st.shortBurn = s.burnLocked(rs.rule, now, time.Duration(short))
	st.longBurn = s.burnLocked(rs.rule, now, time.Duration(long))
	// Until the clock has covered the short window, the burn measures the
	// startup transient (a handful of samples against a mostly-empty
	// window), not the service; hold the page's state until then.
	if now < time.Duration(short) {
		return
	}
	firing := st.shortBurn >= threshold && st.longBurn >= threshold
	if st.firing {
		firing = st.shortBurn >= resolveFraction*threshold && st.longBurn >= resolveFraction*threshold
	}
	if firing == st.firing {
		return
	}
	st.firing = firing
	st.sinceMs = float64(now) / float64(time.Millisecond)
	typ := telemetry.EventAlertResolved
	if firing {
		typ = telemetry.EventAlertFiring
	}
	detail := fmt.Sprintf("burn short=%.2f long=%.2f threshold=%g windows=%s/%s",
		st.shortBurn, st.longBurn, threshold, fmtDur(time.Duration(short)), fmtDur(time.Duration(long)))
	s.alerts.Append(telemetry.Event{
		AtMs:     float64(now) / float64(time.Millisecond),
		Type:     typ,
		Function: rs.rule.Name,
		Worker:   page,
		Detail:   detail,
	})
	if e.tracer != nil {
		ctx := e.tracer.StartTrace("slo:"+rs.rule.Name, 0, rs.rule.Name, now)
		e.tracer.Record(ctx, tracing.Span{
			Phase: tracing.PhaseAlert, Name: page + " " + typ,
			Function: rs.rule.Name, Start: now, End: now, Detail: detail,
		})
		e.tracer.EndTrace(ctx, now, "", "")
	}
}

// burnLocked computes a rule's burn rate over the window ending now.
// Burn 1.0 means the objective is being consumed exactly at budget;
// above 1.0 the SLO is being violated at that multiple. Windows with no
// traffic burn 0. Caller holds s.mu.
func (s *Store) burnLocked(r Rule, now, window time.Duration) float64 {
	from := now - window
	if from < 0 {
		from = 0
	}
	match := map[string]string{}
	if r.Function != "" {
		match["function"] = r.Function
	}
	switch r.Kind {
	case KindErrorRatio:
		bad := s.sumIncreaseLocked(r.metric(), from, withLabel(match, "result", "error"))
		total := s.sumIncreaseLocked(r.metric(), from, match)
		if total <= 0 {
			return 0
		}
		return (bad / total) / (1 - r.Target)
	case KindEnergyBudget:
		joules := s.sumIncreaseLocked(r.metric(), from, match)
		completions := s.sumIncreaseLocked(DefaultErrorMetric, from, match)
		if completions <= 0 {
			return 0
		}
		return (joules / completions) / r.BudgetJ
	default: // KindLatency
		good, total := s.latencySplitLocked(r.metric(), r.ThresholdS, from, match)
		if total <= 0 {
			return 0
		}
		bad := total - good
		if bad < 0 {
			bad = 0
		}
		return (bad / total) / (1 - r.Target)
	}
}

// sumIncreaseLocked sums the window increase of every series of metric
// matching match. Caller holds s.mu.
func (s *Store) sumIncreaseLocked(metric string, from time.Duration, match map[string]string) float64 {
	ms, ok := s.metrics[metric]
	if !ok {
		return 0
	}
	total := 0.0
	for _, sr := range ms.order {
		if matchesAll(sr.labels, match) {
			total += increase(sr.window(from))
		}
	}
	return total
}

// latencySplitLocked splits a latency histogram's window growth into
// (good, total): good is the cumulative growth at the smallest bucket
// bound ≥ thresholdS (so the split is conservative by at most one
// bucket width), total the growth of the +Inf bucket, both merged
// across matching series (all shards share one bucket grid). Caller
// holds s.mu.
func (s *Store) latencySplitLocked(metric string, thresholdS float64, from time.Duration, match map[string]string) (good, total float64) {
	ms, ok := s.metrics[metric+"_bucket"]
	if !ok {
		return 0, 0
	}
	byLE := map[float64]float64{}
	for _, sr := range ms.order {
		le, ok := sr.labels["le"]
		if !ok || !matchesAllExceptLE(sr.labels, match) {
			continue
		}
		bound, err := parseLE(le)
		if err != nil {
			continue
		}
		byLE[bound] += increase(sr.window(from))
	}
	if len(byLE) == 0 {
		return 0, 0
	}
	les := make([]float64, 0, len(byLE))
	for le := range byLE {
		les = append(les, le)
	}
	sort.Float64s(les)
	goodLE := math.Inf(1)
	for _, le := range les {
		if le >= thresholdS {
			goodLE = le
			break
		}
	}
	return byLE[goodLE], byLE[les[len(les)-1]]
}

// withLabel returns a copy of match with one extra pair.
func withLabel(match map[string]string, k, v string) map[string]string {
	out := make(map[string]string, len(match)+1)
	for mk, mv := range match {
		out[mk] = mv
	}
	out[k] = v
	return out
}
