package tsdb

import (
	"encoding/json"
	"fmt"
	"os"
)

// LoadRules reads an SLO rule file: a JSON array of Rule objects (see
// examples/slo/rules.json). Every rule is validated; the first invalid
// rule fails the whole load, so a typo cannot silently disable an
// objective.
func LoadRules(path string) ([]Rule, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("tsdb: %w", err)
	}
	return ParseRules(data)
}

// ParseRules parses and validates a rule file's contents.
func ParseRules(data []byte) ([]Rule, error) {
	var rules []Rule
	if err := json.Unmarshal(data, &rules); err != nil {
		return nil, fmt.Errorf("tsdb: bad rule file: %w", err)
	}
	if len(rules) == 0 {
		return nil, fmt.Errorf("tsdb: rule file is empty")
	}
	for _, r := range rules {
		if err := r.Validate(); err != nil {
			return nil, err
		}
	}
	return rules, nil
}
