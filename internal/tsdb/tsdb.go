// Package tsdb is the platform's embedded time-series store: a
// dependency-free, fixed-memory recorder that scrapes telemetry
// registries on the capacity-aggregator tick (virtual clock in sim
// mode, wall clock in live mode) into per-series ring buffers with two
// downsample tiers (raw → 10s → 1m), plus a small windowed query
// engine (rate, increase, avg/min/max/last_over_time, histogram
// quantile_over_time via bucket merge) over per-label-set series.
//
// On top of the store sit two consumers:
//
//   - an SLO engine (slo.go) evaluating declarative objectives —
//     latency threshold, error ratio, J/function energy budget — as
//     multi-window burn-rate alerts, with firing/resolved transitions
//     recorded as telemetry events and tracing annotations;
//   - an arrival-rate tracker (arrival.go) maintaining EWMA and
//     sliding-window per-function submission rates as synthetic,
//     queryable series — the feed-in for forecast-driven warm pools.
//
// Determinism: the store consumes no randomness and schedules no
// events of its own — it samples whenever its owner's tick calls
// Scrape, iterates sources in registration order and series in
// first-seen order, and a nil *Store no-ops everywhere, so a seeded
// simulation without a store is byte-identical to one that never
// linked this package.
package tsdb

import (
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"microfaas/internal/telemetry"
	"microfaas/internal/tracing"
)

// Defaults for Config zero values.
const (
	// DefaultRawCapacity is the per-series raw ring size in points.
	DefaultRawCapacity = 1024
	// DefaultTierCapacity is the per-series per-tier ring size in buckets.
	DefaultTierCapacity = 512
	// DefaultTier1 is the first downsample resolution.
	DefaultTier1 = 10 * time.Second
	// DefaultTier2 is the second downsample resolution.
	DefaultTier2 = time.Minute
	// DefaultAlertCapacity bounds the alert-transition event ring.
	DefaultAlertCapacity = 1024
)

// Config tunes a Store.
type Config struct {
	// RawCapacity bounds each series' raw ring (default
	// DefaultRawCapacity points; the oldest points are overwritten).
	RawCapacity int
	// TierCapacity bounds each downsample tier's ring (default
	// DefaultTierCapacity buckets per tier).
	TierCapacity int
	// Tier1 and Tier2 are the downsample resolutions (defaults 10s and
	// 1m). Tier2 must be a coarser resolution than Tier1.
	Tier1, Tier2 time.Duration
	// EWMAAlpha is the arrival tracker's smoothing factor in (0,1]
	// (default DefaultEWMAAlpha).
	EWMAAlpha float64
	// ArrivalWindow is the arrival tracker's sliding window, in scrapes
	// (default DefaultArrivalWindow).
	ArrivalWindow int
	// AlertCapacity bounds the alert-transition ring (default
	// DefaultAlertCapacity).
	AlertCapacity int
	// Tracer, when set, receives a one-span annotation trace per alert
	// transition (phase "alert").
	Tracer *tracing.Tracer
}

// Point is one raw sample: a cluster-clock offset and a value.
type Point struct {
	// At is the sample's cluster-clock offset.
	At time.Duration
	// Value is the sample value.
	Value float64
}

// MarshalJSON renders the point as {"at_ms":…,"value":…}.
func (p Point) MarshalJSON() ([]byte, error) {
	return []byte(`{"at_ms":` + strconv.FormatFloat(float64(p.At)/float64(time.Millisecond), 'g', -1, 64) +
		`,"value":` + jsonFloat(p.Value) + `}`), nil
}

// Bucket is one downsampled aggregate over a tier's resolution window.
type Bucket struct {
	// Start is the bucket's window start (aligned to the resolution).
	Start time.Duration
	// Count is how many raw points the bucket aggregates.
	Count int
	// Sum, Min, Max aggregate the raw point values.
	Sum, Min, Max float64
	// First and Last are the earliest and latest raw values in the
	// bucket — what rate/increase need once raw points have aged out.
	First, Last float64
	// FirstAt and LastAt stamp those two points.
	FirstAt, LastAt time.Duration
}

// source is one scraped registry and the shard label its samples carry.
type source struct {
	shard string
	reg   *telemetry.Registry
}

// series is one (metric, label set) stream: the raw ring plus its two
// downsample tiers.
type series struct {
	labels map[string]string
	raw    pointRing
	t1, t2 bucketRing
}

// metricSeries indexes every series of one metric name, preserving
// first-seen order for deterministic iteration.
type metricSeries struct {
	order []*series
	byKey map[string]*series
}

// Store is the embedded time-series database. All methods are safe for
// concurrent use, and every method no-ops on a nil *Store.
type Store struct {
	cfg Config

	mu      sync.Mutex
	sources []source
	metrics map[string]*metricSeries
	names   []string // metric names, first-seen order
	lastAt  time.Duration
	scrapes int64

	arrival *arrivalTracker
	slo     *sloEngine
	alerts  *telemetry.EventLog
}

// New builds a Store with the given tuning; zero fields take defaults.
func New(cfg Config) *Store {
	if cfg.RawCapacity <= 0 {
		cfg.RawCapacity = DefaultRawCapacity
	}
	if cfg.TierCapacity <= 0 {
		cfg.TierCapacity = DefaultTierCapacity
	}
	if cfg.Tier1 <= 0 {
		cfg.Tier1 = DefaultTier1
	}
	if cfg.Tier2 <= cfg.Tier1 {
		cfg.Tier2 = DefaultTier2
		if cfg.Tier2 <= cfg.Tier1 {
			cfg.Tier2 = 6 * cfg.Tier1
		}
	}
	if cfg.AlertCapacity <= 0 {
		cfg.AlertCapacity = DefaultAlertCapacity
	}
	s := &Store{
		cfg:     cfg,
		metrics: make(map[string]*metricSeries),
		alerts:  telemetry.NewEventLog(cfg.AlertCapacity),
	}
	s.arrival = newArrivalTracker(cfg.EWMAAlpha, cfg.ArrivalWindow)
	return s
}

// AddSource registers a registry to scrape. Samples from it carry
// shard="label" when label is non-empty (matching the sharded gateway's
// merged /metrics exposition); registries whose families already carry
// their own shard labels — the plane registry — pass "". Sources are
// scraped in registration order. Nil stores and registries no-op.
func (s *Store) AddSource(label string, reg *telemetry.Registry) {
	if s == nil || reg == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sources = append(s.sources, source{shard: label, reg: reg})
}

// Scrape samples every source at cluster-clock offset now, feeds the
// arrival tracker, and evaluates the SLO engine. The caller's tick —
// the shard plane's capacity aggregator, an experiment's scheduled
// sampler, or a live wall-clock ticker — provides the cadence; the
// store itself never schedules anything. Nil stores no-op.
func (s *Store) Scrape(now time.Duration) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var interval time.Duration
	if s.scrapes > 0 {
		if now <= s.lastAt {
			// Same-instant double sample (a scheduled scrape coinciding
			// with a tick) adds nothing; a backwards clock would corrupt
			// the rings' time order.
			return
		}
		interval = now - s.lastAt
	}
	for _, src := range s.sources {
		extra := ""
		if src.shard != "" {
			extra = "shard"
		}
		for _, smp := range src.reg.Snapshot(extra, src.shard) {
			s.ingestLocked(now, smp.Name, smp.Labels, smp.Value)
		}
	}
	s.arrival.update(s, now, interval)
	s.slo.eval(s, now)
	s.lastAt = now
	s.scrapes++
}

// LastScrape returns the clock offset of the most recent scrape and how
// many scrapes have run.
func (s *Store) LastScrape() (time.Duration, int64) {
	if s == nil {
		return 0, 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastAt, s.scrapes
}

// ingestLocked appends one sample to its series, creating the series on
// first sight. Caller holds s.mu.
func (s *Store) ingestLocked(now time.Duration, name string, labels map[string]string, value float64) {
	ms, ok := s.metrics[name]
	if !ok {
		ms = &metricSeries{byKey: make(map[string]*series)}
		s.metrics[name] = ms
		s.names = append(s.names, name)
	}
	key := labelsKey(labels)
	sr, ok := ms.byKey[key]
	if !ok {
		sr = &series{
			labels: labels,
			raw:    pointRing{buf: make([]Point, 0, s.cfg.RawCapacity), cap: s.cfg.RawCapacity},
			t1:     bucketRing{res: s.cfg.Tier1, cap: s.cfg.TierCapacity},
			t2:     bucketRing{res: s.cfg.Tier2, cap: s.cfg.TierCapacity},
		}
		ms.byKey[key] = sr
		ms.order = append(ms.order, sr)
	}
	sr.raw.push(Point{At: now, Value: value})
	sr.t1.push(now, value)
	sr.t2.push(now, value)
}

// MetricNames returns every metric name the store has seen, in
// first-seen order.
func (s *Store) MetricNames() []string {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.names...)
}

// SeriesCount returns the total number of distinct (metric, label set)
// series retained.
func (s *Store) SeriesCount() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, ms := range s.metrics {
		n += len(ms.order)
	}
	return n
}

// AlertLog returns the alert-transition event ring (never nil on a
// non-nil store).
func (s *Store) AlertLog() *telemetry.EventLog {
	if s == nil {
		return nil
	}
	return s.alerts
}

// AlertHistory returns every retained alert transition, oldest first.
func (s *Store) AlertHistory() []telemetry.Event {
	if s == nil {
		return nil
	}
	return s.alerts.Since(-1, 0)
}

// Start begins wall-clock scraping: every interval, Scrape(now()) runs
// until the returned stop function is called. Sim-mode owners never
// call Start — their tick calls Scrape on the virtual clock instead.
func (s *Store) Start(now func() time.Duration, interval time.Duration) (stop func()) {
	if s == nil || now == nil {
		return func() {}
	}
	if interval <= 0 {
		interval = time.Second
	}
	done := make(chan struct{})
	var once sync.Once
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				s.Scrape(now())
			case <-done:
				return
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}

// labelsKey canonicalizes a label set into a map key: sorted
// name=value pairs joined with \x00. Nil and empty maps share "".
func labelsKey(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	names := make([]string, 0, len(labels))
	for k := range labels {
		names = append(names, k)
	}
	sort.Strings(names)
	var b strings.Builder
	for i, k := range names {
		if i > 0 {
			b.WriteByte(0)
		}
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(labels[k])
	}
	return b.String()
}

// jsonFloat renders a float for JSON output, spelling non-finite values
// as quoted strings (encoding/json rejects bare Inf/NaN).
func jsonFloat(v float64) string {
	s := strconv.FormatFloat(v, 'g', -1, 64)
	switch s {
	case "+Inf", "-Inf", "NaN":
		return `"` + s + `"`
	}
	return s
}

// matchesAll reports whether every matcher pair is present in labels.
func matchesAll(labels map[string]string, match map[string]string) bool {
	for k, v := range match {
		if labels[k] != v {
			return false
		}
	}
	return true
}

// fmtDur renders a duration compactly for human-readable surfaces.
func fmtDur(d time.Duration) string {
	return d.Truncate(time.Millisecond).String()
}
