package tsdb

import "time"

// pointRing is a fixed-capacity ring of raw points, oldest overwritten
// first. Points arrive in non-decreasing clock order (scrapes only move
// forward), so windowed reads are contiguous runs.
type pointRing struct {
	buf   []Point
	cap   int
	next  int   // write cursor into buf once full
	total int64 // points ever pushed
}

// push appends a point, overwriting the oldest when full.
func (r *pointRing) push(p Point) {
	if len(r.buf) < r.cap {
		r.buf = append(r.buf, p)
	} else {
		r.buf[r.next] = p
		r.next = (r.next + 1) % r.cap
	}
	r.total++
}

// len returns how many points are retained.
func (r *pointRing) len() int { return len(r.buf) }

// at returns the i-th retained point, oldest first.
func (r *pointRing) at(i int) Point {
	if len(r.buf) < r.cap {
		return r.buf[i]
	}
	return r.buf[(r.next+i)%r.cap]
}

// oldest returns the earliest retained point's offset (0, false when
// empty).
func (r *pointRing) oldest() (time.Duration, bool) {
	if len(r.buf) == 0 {
		return 0, false
	}
	return r.at(0).At, true
}

// covers reports whether the ring can answer a window starting at from:
// either nothing has ever been evicted (the ring holds the series'
// whole history, so any from is covered) or the oldest retained point
// is at or before from.
func (r *pointRing) covers(from time.Duration) bool {
	if len(r.buf) == 0 {
		return false
	}
	if r.total <= int64(r.cap) {
		return true
	}
	return r.at(0).At <= from
}

// ascend calls fn on every retained point with At >= from, oldest
// first, stopping early when fn returns false.
func (r *pointRing) ascend(from time.Duration, fn func(Point) bool) {
	n := r.len()
	// Binary-search the first point >= from (points are time-ordered).
	lo, hi := 0, n
	for lo < hi {
		mid := (lo + hi) / 2
		if r.at(mid).At < from {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	for i := lo; i < n; i++ {
		if !fn(r.at(i)) {
			return
		}
	}
}

// bucketRing downsamples pushed points into fixed-resolution aggregate
// buckets, keeping the newest cap buckets.
type bucketRing struct {
	res  time.Duration
	cap  int
	buf  []Bucket
	next int // write cursor once full
}

// push folds one raw point into its resolution bucket, opening a new
// bucket (and evicting the oldest) when the point crosses a boundary.
func (r *bucketRing) push(at time.Duration, v float64) {
	start := at - (at % r.res)
	if n := r.len(); n > 0 {
		last := r.idx(n - 1)
		if r.buf[last].Start == start {
			b := &r.buf[last]
			b.Count++
			b.Sum += v
			if v < b.Min {
				b.Min = v
			}
			if v > b.Max {
				b.Max = v
			}
			b.Last, b.LastAt = v, at
			return
		}
	}
	nb := Bucket{Start: start, Count: 1, Sum: v, Min: v, Max: v,
		First: v, Last: v, FirstAt: at, LastAt: at}
	if len(r.buf) < r.cap {
		r.buf = append(r.buf, nb)
	} else {
		r.buf[r.next] = nb
		r.next = (r.next + 1) % r.cap
	}
}

// len returns how many buckets are retained.
func (r *bucketRing) len() int { return len(r.buf) }

// idx maps the i-th retained bucket (oldest first) to a buf index.
func (r *bucketRing) idx(i int) int {
	if len(r.buf) < r.cap {
		return i
	}
	return (r.next + i) % r.cap
}

// at returns the i-th retained bucket, oldest first.
func (r *bucketRing) at(i int) Bucket { return r.buf[r.idx(i)] }

// ascend calls fn on every retained bucket overlapping [from, ∞),
// oldest first, stopping early when fn returns false.
func (r *bucketRing) ascend(from time.Duration, fn func(Bucket) bool) {
	n := r.len()
	for i := 0; i < n; i++ {
		b := r.at(i)
		if b.Start+r.res <= from {
			continue
		}
		if !fn(b) {
			return
		}
	}
}

// windowStats are the aggregates a query window resolves to, assembled
// from whichever storage tier still covers the window's start.
type windowStats struct {
	count               int
	sum, min, max       float64
	first, last         float64
	firstAt, lastAt     time.Duration
	haveFirst, haveLast bool
}

// add folds one observation into the stats.
func (w *windowStats) add(at time.Duration, v float64) {
	if w.count == 0 {
		w.min, w.max = v, v
	} else {
		if v < w.min {
			w.min = v
		}
		if v > w.max {
			w.max = v
		}
	}
	w.count++
	w.sum += v
	if !w.haveFirst || at < w.firstAt {
		w.first, w.firstAt, w.haveFirst = v, at, true
	}
	if !w.haveLast || at >= w.lastAt {
		w.last, w.lastAt, w.haveLast = v, at, true
	}
}

// addBucket folds one downsampled bucket into the stats.
func (w *windowStats) addBucket(b Bucket) {
	if w.count == 0 {
		w.min, w.max = b.Min, b.Max
	} else {
		if b.Min < w.min {
			w.min = b.Min
		}
		if b.Max > w.max {
			w.max = b.Max
		}
	}
	w.count += b.Count
	w.sum += b.Sum
	if !w.haveFirst || b.FirstAt < w.firstAt {
		w.first, w.firstAt, w.haveFirst = b.First, b.FirstAt, true
	}
	if !w.haveLast || b.LastAt >= w.lastAt {
		w.last, w.lastAt, w.haveLast = b.Last, b.LastAt, true
	}
}

// window resolves [from, ∞) over the series, preferring raw points and
// falling back to tier 1 then tier 2 when the raw ring no longer
// reaches back to from. The chosen tier is used alone — mixing tiers
// would double-count the overlap.
func (sr *series) window(from time.Duration) windowStats {
	var w windowStats
	if sr.raw.covers(from) {
		sr.raw.ascend(from, func(p Point) bool { w.add(p.At, p.Value); return true })
		return w
	}
	pick := &sr.t1
	if n := sr.t1.len(); n > 0 && sr.t1.at(0).Start > from && sr.t2.len() > 0 {
		pick = &sr.t2
	}
	if pick.len() == 0 {
		// Nothing downsampled yet (short-lived series): use raw anyway.
		sr.raw.ascend(from, func(p Point) bool { w.add(p.At, p.Value); return true })
		return w
	}
	pick.ascend(from, func(b Bucket) bool { w.addBucket(b); return true })
	return w
}

// points returns the series' retained samples in [from, ∞) as plot
// points, downsampling from the finest tier that still covers from.
func (sr *series) points(from time.Duration) []Point {
	var out []Point
	if sr.raw.covers(from) {
		sr.raw.ascend(from, func(p Point) bool { out = append(out, p); return true })
		return out
	}
	pick := &sr.t1
	if sr.t1.len() > 0 && sr.t1.at(0).Start > from && sr.t2.len() > 0 {
		pick = &sr.t2
	}
	if pick.len() == 0 {
		sr.raw.ascend(from, func(p Point) bool { out = append(out, p); return true })
		return out
	}
	pick.ascend(from, func(b Bucket) bool {
		out = append(out, Point{At: b.LastAt, Value: b.Last})
		return true
	})
	return out
}
