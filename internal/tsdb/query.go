package tsdb

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"time"

	"microfaas/internal/telemetry"
)

// Op selects a windowed query function.
type Op string

// The supported query functions. All operate over the window ending at
// the most recent scrape.
const (
	// OpLast returns the newest sample in the window.
	OpLast Op = "last"
	// OpAvg averages the samples in the window.
	OpAvg Op = "avg"
	// OpMin takes the smallest sample in the window.
	OpMin Op = "min"
	// OpMax takes the largest sample in the window.
	OpMax Op = "max"
	// OpIncrease is the counter growth across the window (clamped at 0).
	OpIncrease Op = "increase"
	// OpRate is OpIncrease divided by the covered seconds.
	OpRate Op = "rate"
	// OpQuantile resolves a histogram quantile from the window's growth
	// of the metric's _bucket series, merged across matching label sets
	// (shards included) — quantile_over_time via bucket merge.
	OpQuantile Op = "quantile"
)

// DefaultQueryWindow applies when a Query leaves Window zero.
const DefaultQueryWindow = time.Minute

// Query is one windowed request against the store.
type Query struct {
	// Metric is the series name (for OpQuantile: the histogram family
	// name, without the _bucket suffix).
	Metric string `json:"metric"`
	// Op is the query function (default OpLast).
	Op Op `json:"op,omitempty"`
	// Q is the quantile in [0,1] for OpQuantile.
	Q float64 `json:"q,omitempty"`
	// Window is the lookback ending at the last scrape (default
	// DefaultQueryWindow).
	Window time.Duration `json:"window,omitempty"`
	// Match keeps only series whose label sets contain every given pair.
	Match map[string]string `json:"match,omitempty"`
	// Range additionally returns the window's plot points per series.
	Range bool `json:"range,omitempty"`
}

// SeriesResult is one series' answer to a Query.
type SeriesResult struct {
	// Labels is the series' label set (omitted when unlabelled or for
	// merged quantile results, which carry the matchers instead).
	Labels map[string]string `json:"labels,omitempty"`
	// Value is the query function's result over the window.
	Value float64 `json:"value"`
	// Points holds the window's samples when Query.Range was set.
	Points []Point `json:"points,omitempty"`
}

// Query evaluates q against the store. Series come back in first-seen
// order (deterministic under a seed). An unknown metric yields an empty
// result, not an error; errors are reserved for malformed queries.
func (s *Store) Query(q Query) ([]SeriesResult, error) {
	if s == nil {
		return nil, nil
	}
	if q.Metric == "" {
		return nil, fmt.Errorf("tsdb: query needs a metric")
	}
	if q.Op == "" {
		q.Op = OpLast
	}
	if q.Window <= 0 {
		q.Window = DefaultQueryWindow
	}
	switch q.Op {
	case OpLast, OpAvg, OpMin, OpMax, OpIncrease, OpRate:
	case OpQuantile:
		if q.Q < 0 || q.Q > 1 {
			return nil, fmt.Errorf("tsdb: quantile %v outside [0,1]", q.Q)
		}
	default:
		return nil, fmt.Errorf("tsdb: unknown op %q", q.Op)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	from := s.lastAt - q.Window
	if from < 0 {
		from = 0
	}
	if q.Op == OpQuantile {
		v := s.quantileLocked(q.Metric, q.Q, from, q.Match)
		return []SeriesResult{{Labels: q.Match, Value: v}}, nil
	}
	ms, ok := s.metrics[q.Metric]
	if !ok {
		return []SeriesResult{}, nil
	}
	out := []SeriesResult{}
	for _, sr := range ms.order {
		if !matchesAll(sr.labels, q.Match) {
			continue
		}
		w := sr.window(from)
		if w.count == 0 {
			continue
		}
		res := SeriesResult{Labels: sr.labels, Value: opValue(q.Op, w)}
		if q.Range {
			res.Points = sr.points(from)
		}
		out = append(out, res)
	}
	return out, nil
}

// opValue resolves one non-quantile op over assembled window stats.
func opValue(op Op, w windowStats) float64 {
	switch op {
	case OpAvg:
		return w.sum / float64(w.count)
	case OpMin:
		return w.min
	case OpMax:
		return w.max
	case OpIncrease:
		return increase(w)
	case OpRate:
		return rate(w)
	default: // OpLast
		return w.last
	}
}

// increase is the counter growth across the window, clamped at zero so
// a counter reset (a shard restart) reads as no growth, not negative.
func increase(w windowStats) float64 {
	if w.count < 2 {
		return 0
	}
	d := w.last - w.first
	if d < 0 {
		return 0
	}
	return d
}

// rate is increase per covered second.
func rate(w windowStats) float64 {
	if w.count < 2 || w.lastAt <= w.firstAt {
		return 0
	}
	return increase(w) / (w.lastAt - w.firstAt).Seconds()
}

// quantileLocked merges the window increase of every matching
// <metric>_bucket series per le bound and resolves quantile q over the
// merged cumulative distribution — the distribution of observations
// recorded during the window. Caller holds s.mu.
func (s *Store) quantileLocked(metric string, q float64, from time.Duration, match map[string]string) float64 {
	ms, ok := s.metrics[metric+"_bucket"]
	if !ok {
		return 0
	}
	byLE := map[float64]float64{}
	for _, sr := range ms.order {
		le, ok := sr.labels["le"]
		if !ok || !matchesAllExceptLE(sr.labels, match) {
			continue
		}
		bound, err := parseLE(le)
		if err != nil {
			continue
		}
		byLE[bound] += increase(sr.window(from))
	}
	if len(byLE) == 0 {
		return 0
	}
	les := make([]float64, 0, len(byLE))
	for le := range byLE {
		les = append(les, le)
	}
	sort.Float64s(les)
	bounds := make([]float64, 0, len(les))
	counts := make([]uint64, 0, len(les))
	for _, le := range les {
		if !math.IsInf(le, 1) {
			bounds = append(bounds, le)
		}
		c := byLE[le]
		if c < 0 {
			c = 0
		}
		counts = append(counts, uint64(c+0.5))
	}
	if len(bounds) == 0 {
		return 0
	}
	total := counts[len(counts)-1]
	if total == 0 {
		return 0
	}
	return telemetry.QuantileFromCumulative(bounds, counts, total, q)
}

// matchesAllExceptLE is matchesAll ignoring any "le" matcher (the
// quantile op owns the le dimension).
func matchesAllExceptLE(labels, match map[string]string) bool {
	for k, v := range match {
		if k == "le" {
			continue
		}
		if labels[k] != v {
			return false
		}
	}
	return true
}

// parseLE parses an le bound, accepting +Inf.
func parseLE(s string) (float64, error) {
	if s == "+Inf" || s == "Inf" {
		return math.Inf(1), nil
	}
	return strconv.ParseFloat(s, 64)
}
