package tsdb

import (
	"math"
	"testing"
	"time"

	"microfaas/internal/telemetry"
)

// TestArrivalWindowSeriesExported is the regression for the tracker's
// sliding-window stats being write-only: the window mean and max must
// come back out of Query like any other series, with the per-shard
// submission counters merged into one per-function label set.
func TestArrivalWindowSeriesExported(t *testing.T) {
	regA := telemetry.NewRegistry()
	regB := telemetry.NewRegistry()
	subA := regA.Counter(MetricSubmittedByFunction, "submissions", "function", "matmul")
	subB := regB.Counter(MetricSubmittedByFunction, "submissions", "function", "matmul")
	s := New(Config{ArrivalWindow: 4})
	s.AddSource("shard-00", regA)
	s.AddSource("shard-01", regB)

	// 2/s on each shard → a merged 4/s per-function rate.
	scrapeN(s, 6, time.Second, func(i int) { subA.Add(2); subB.Add(2) })

	for _, tc := range []struct {
		metric string
		want   float64
	}{
		{MetricArrivalWindowMean, 4},
		{MetricArrivalWindowMax, 4},
	} {
		res, err := s.Query(Query{Metric: tc.metric, Op: OpLast, Window: time.Minute})
		if err != nil {
			t.Fatal(err)
		}
		if len(res) != 1 || math.Abs(res[0].Value-tc.want) > 1e-9 {
			t.Fatalf("%s = %+v, want one series at %g", tc.metric, res, tc.want)
		}
		// The synthetic series carries only the function label: the two
		// shards' counters merged before differentiation.
		if len(res[0].Labels) != 1 || res[0].Labels["function"] != "matmul" {
			t.Fatalf("%s labels = %v, want function=matmul only", tc.metric, res[0].Labels)
		}
	}

	// The Forecasts view agrees with the queryable series.
	fc := s.Forecasts()
	if len(fc) != 1 || fc[0].WindowMean != 4 || fc[0].WindowMax != 4 || fc[0].Rate != 4 {
		t.Fatalf("forecasts = %+v, want rate/mean/max 4", fc)
	}
}

// TestArrivalWindowRotationAcrossTierBoundaries pushes the window
// series far past the raw ring so queries must be answered from the
// downsample tiers, and checks the ring rotation stays correct as
// buckets open and close at tier boundaries: a rate step from 3/s to
// 9/s must march through the window mean exactly (window size 5 →
// mean climbs in 1.2/s increments) whether the answering tier is raw,
// t1, or t2.
func TestArrivalWindowRotationAcrossTierBoundaries(t *testing.T) {
	reg := telemetry.NewRegistry()
	sub := reg.Counter(MetricSubmittedByFunction, "submissions", "function", "fft")
	// Tiny raw ring so the tail of the run is only visible downsampled;
	// tier boundaries land every 4th and 12th scrape.
	s := New(Config{RawCapacity: 8, Tier1: 4 * time.Second, Tier2: 12 * time.Second, ArrivalWindow: 5})
	s.AddSource("", reg)

	const step = 40 // scrape index where the rate steps 3/s → 9/s
	wantMean := func(i int) float64 {
		// i is the 1-based scrape index of the latest completed scrape.
		// Scrape 1 only seeds the counter diff; rates exist from scrape 2.
		rates := 0
		sum := 0.0
		for k := i; k >= 2 && rates < 5; k-- {
			r := 3.0
			if k > step {
				r = 9.0
			}
			sum += r
			rates++
		}
		if rates == 0 {
			return 0
		}
		return sum / float64(rates)
	}
	for i := 1; i <= 80; i++ {
		add := 3.0
		if i > step {
			add = 9.0
		}
		sub.Add(add)
		at := time.Duration(i) * time.Second
		s.Scrape(at)
		if i < 2 {
			continue
		}
		res, err := s.Query(Query{Metric: MetricArrivalWindowMean, Op: OpLast, Window: 2 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		if len(res) != 1 {
			t.Fatalf("scrape %d: series = %+v", i, res)
		}
		if want := wantMean(i); math.Abs(res[0].Value-want) > 1e-9 {
			t.Fatalf("scrape %d: window mean = %g, want %g", i, res[0].Value, want)
		}
	}

	// By now only the last 8 raw points survive; a window reaching back
	// a full minute must be served by the tiers. The max series saw the
	// 9/s plateau and the mean settled back to 9 after the window
	// rotated the 3/s samples out.
	mx, err := s.Query(Query{Metric: MetricArrivalWindowMax, Op: OpMax, Window: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if len(mx) != 1 || math.Abs(mx[0].Value-9) > 1e-9 {
		t.Fatalf("window max over tiers = %+v, want 9", mx)
	}
	// Range query across the step: the returned points (raw + tier
	// buckets merged) must cover the pre-step era even though the raw
	// ring no longer does.
	rng, err := s.Query(Query{Metric: MetricArrivalWindowMean, Op: OpAvg, Window: 79 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if len(rng) != 1 || rng[0].Value <= 3 || rng[0].Value >= 9 {
		t.Fatalf("mean-of-means across the step = %+v, want strictly between 3 and 9", rng)
	}
}
