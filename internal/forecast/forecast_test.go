package forecast

import (
	"math"
	"testing"
	"time"
)

// tick feeds n one-second observations of a single function whose rate
// at step i (0-based) is rate(i), with EWMA tracking the rate exactly
// (the store's smoothing is not under test here). Returns the clock
// after the last observation.
func tickN(p *Predictor, start time.Duration, n int, rate func(i int) float64) time.Duration {
	now := start
	for i := 0; i < n; i++ {
		now = start + time.Duration(i+1)*time.Second
		r := rate(i)
		p.Observe(now, []Sample{{Function: "f", Rate: r, EWMA: r}})
	}
	return now
}

func TestColdStartEmptyHistory(t *testing.T) {
	p := NewPredictor(Policy{})
	fns, target := p.Predict(0)
	if len(fns) != 0 || target != 0 {
		t.Fatalf("cold predict = %v, %d; want empty, 0", fns, target)
	}
	if p.ErrorRatio() != 0 || p.Scored() != 0 {
		t.Fatalf("cold error = %g scored = %d, want 0, 0", p.ErrorRatio(), p.Scored())
	}
	// Observing an empty sample set must not corrupt anything.
	p.Observe(time.Second, nil)
	if _, target := p.Predict(time.Second); target != 0 {
		t.Fatalf("target after empty observe = %d, want 0", target)
	}
}

func TestStepTraceConvergesToLittleLaw(t *testing.T) {
	p := NewPredictor(Policy{Horizon: 2 * time.Second, Margin: 1.25, CycleTime: time.Second})
	// Quiet, then a step to 4/s.
	now := tickN(p, 0, 10, func(i int) float64 { return 0 })
	now = tickN(p, now, 30, func(i int) float64 { return 4 })
	fns, target := p.Predict(now)
	if len(fns) != 1 || fns[0].Function != "f" {
		t.Fatalf("forecasts = %+v", fns)
	}
	// Steady state: RateAhead ≈ 4/s, demand = 4 workers, ×1.25 → 5.
	if math.Abs(fns[0].RateAhead-4) > 0.5 {
		t.Fatalf("steady RateAhead = %g, want ≈4", fns[0].RateAhead)
	}
	if target != 5 {
		t.Fatalf("target = %d, want ceil(4×1×1.25) = 5", target)
	}
	// The step itself was mispredicted; steady state scored well, so the
	// smoothed error must have decayed back under the fallback limit.
	if e := p.ErrorRatio(); e > DefaultErrLimit {
		t.Fatalf("steady error ratio = %g, want ≤ %g", e, DefaultErrLimit)
	}
	if p.Scored() == 0 {
		t.Fatal("no predictions were scored")
	}
}

func TestRampTraceExtrapolatesAhead(t *testing.T) {
	p := NewPredictor(Policy{Horizon: 2 * time.Second})
	// 0.5/s² ramp: the trend term must push RateAhead above the current
	// smoothed rate — that lead is what pre-wakes workers before the
	// load lands.
	now := tickN(p, 0, 20, func(i int) float64 { return 0.5 * float64(i) })
	fns, _ := p.Predict(now)
	if len(fns) != 1 {
		t.Fatalf("forecasts = %+v", fns)
	}
	if fns[0].RateAhead <= fns[0].EWMA {
		t.Fatalf("ramp RateAhead = %g ≤ EWMA %g, want extrapolation ahead of the ramp",
			fns[0].RateAhead, fns[0].EWMA)
	}
	// ≈ EWMA + 0.5/s² × 2 s = EWMA + 1.
	if lead := fns[0].RateAhead - fns[0].EWMA; math.Abs(lead-1) > 0.5 {
		t.Fatalf("ramp lead = %g, want ≈1 (slope × horizon)", lead)
	}
}

func TestDiurnalPriorAnticipatesRepeatedRamp(t *testing.T) {
	const period = 100 * time.Second
	pol := Policy{Horizon: 2 * time.Second, Period: period, Bins: 10}
	// Square diurnal shape: 1/s in the first half of the period, 9/s in
	// the second.
	shape := func(i int) float64 {
		if (time.Duration(i+1)*time.Second)%period < period/2 {
			return 1
		}
		return 9
	}
	// Cold predictor at the end of period 1's quiet half: no prior, so
	// the forecast just ahead of the step sees only the quiet trend.
	cold := NewPredictor(pol)
	coldNow := tickN(cold, 0, 48, shape) // t = 48 s; step at 50 s is within the horizon
	coldF, _ := cold.Predict(coldNow)

	// Same instant one period later: the histogram has seen the busy
	// half once, so the blended forecast anticipates the ramp.
	warm := NewPredictor(pol)
	warmNow := tickN(warm, 0, 148, shape) // t = 148 s; step at 150 s within horizon
	warmF, _ := warm.Predict(warmNow)

	if coldF[0].RateAhead >= warmF[0].RateAhead {
		t.Fatalf("pre-step forecast: cold %g ≥ warm %g, want the diurnal prior to raise it",
			coldF[0].RateAhead, warmF[0].RateAhead)
	}
	if warmF[0].RateAhead < 3 {
		t.Fatalf("warm pre-step RateAhead = %g, want ≥3 (prior-blended)", warmF[0].RateAhead)
	}
}

func TestBurstyTraceDrivesErrorPastFallback(t *testing.T) {
	p := NewPredictor(Policy{Horizon: time.Second})
	// Alternate 8/s and silence every tick with a one-tick horizon:
	// every prediction lands on the opposite phase and is maximally
	// wrong. The smoothed error must cross the fallback limit.
	tickN(p, 0, 40, func(i int) float64 {
		if i%2 == 0 {
			return 8
		}
		return 0
	})
	if e := p.ErrorRatio(); e <= DefaultErrLimit {
		t.Fatalf("bursty error ratio = %g, want > %g (forces reactive fallback)", e, DefaultErrLimit)
	}
}

func TestClockSkewDropsNonAdvancingSamples(t *testing.T) {
	p := NewPredictor(Policy{Horizon: 2 * time.Second})
	now := tickN(p, 0, 10, func(i int) float64 { return 3 })
	before, targetBefore := p.Predict(now)

	// A repeated scrape and a backwards one must both be ignored.
	p.Observe(now, []Sample{{Function: "f", Rate: 100, EWMA: 100}})
	p.Observe(now-5*time.Second, []Sample{{Function: "f", Rate: 100, EWMA: 100}})

	after, targetAfter := p.Predict(now)
	if targetBefore != targetAfter || before[0].RateAhead != after[0].RateAhead ||
		before[0].EWMA != after[0].EWMA {
		t.Fatalf("skewed samples changed state: %+v → %+v", before[0], after[0])
	}
	// And the clock still advances normally afterwards.
	p.Observe(now+time.Second, []Sample{{Function: "f", Rate: 3, EWMA: 3}})
	if got, _ := p.Predict(now + time.Second); math.Abs(got[0].EWMA-3) > 1e-9 {
		t.Fatalf("post-skew observe was dropped: %+v", got[0])
	}
}

func TestPredictRespectsMaxWorkers(t *testing.T) {
	p := NewPredictor(Policy{CycleTime: time.Second, Margin: 1, MaxWorkers: 3})
	now := tickN(p, 0, 10, func(i int) float64 { return 50 })
	if _, target := p.Predict(now); target != 3 {
		t.Fatalf("target = %d, want capped at 3", target)
	}
}
