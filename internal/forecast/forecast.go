// Package forecast turns the time-series store's arrival-rate telemetry
// into power decisions: it closes the ROADMAP's "predictive warm pools"
// loop between internal/tsdb (which learns per-function EWMA and
// sliding-window arrival rates) and internal/powermgr (which gained a
// SetWarmTarget predictive mode).
//
// The Predictor is the pure estimation core. Per function it keeps
//
//   - the store's EWMA arrival rate plus a smoothed trend (rate slope),
//     extrapolated over the look-ahead horizon — wake latency plus a
//     safety margin, so a node woken on the forecast is warm by the
//     time the predicted load lands;
//   - a diurnal histogram: the mean observed rate per time-of-period
//     bin, which after one full period becomes a prior for "this time
//     yesterday" and is blended with the trend extrapolation;
//   - a pending-prediction ledger: every forecast made now for now+H is
//     scored against the smoothed rate actually observed at now+H, and
//     the symmetric error (sMAPE-style, bounded [0,2]) feeds a smoothed
//     per-function error ratio.
//
// The Controller glues the loop together on a fixed tick: scrape-side
// forecasts in (Store.Forecasts), warm-pool target out
// (Manager.SetWarmTarget). Its feedback state machine watches the
// rate-weighted error ratio — while predictions hold, the cluster runs
// Predictive (pre-wake ahead of ramps, pre-sleep ahead of troughs);
// when the error crosses ErrLimit the controller falls back to pure
// reactive power management, and only re-engages after the error stays
// below ErrRecover for RecoverTicks consecutive ticks.
//
// Determinism: the package consumes no randomness and schedules nothing
// by itself — the owner drives Tick (pre-scheduled virtual-clock events
// in the sim, a wall-clock ticker in live mode), functions are visited
// in the store's first-seen order, and a cluster without a controller
// is byte-identical to one built before this package existed.
package forecast

import (
	"math"
	"time"
)

// Defaults for Policy zero values.
const (
	// DefaultTick is the controller's tick cadence.
	DefaultTick = 5 * time.Second
	// DefaultHorizon is the forecast look-ahead: the paper SBC's 1.51 s
	// boot plus a safety margin, so a pre-wake issued on the forecast
	// finishes booting before the predicted load arrives.
	DefaultHorizon = 2 * time.Second
	// DefaultMargin is the headroom multiplier on the predicted worker
	// demand (dimensionless).
	DefaultMargin = 1.25
	// DefaultCycleTime is the assumed per-invocation service time used
	// to convert arrival rate into worker demand via Little's law when
	// the caller does not supply one.
	DefaultCycleTime = time.Second
	// DefaultPeriod is the diurnal histogram's cycle length.
	DefaultPeriod = 24 * time.Hour
	// DefaultBins is the diurnal histogram's bin count per period.
	DefaultBins = 48
	// DefaultErrLimit is the smoothed error ratio above which the
	// controller falls back to reactive mode (sMAPE scale, [0,2]).
	DefaultErrLimit = 0.45
	// DefaultErrRecover is the error ratio the controller must stay
	// under to re-engage predictive mode (sMAPE scale, [0,2]).
	DefaultErrRecover = 0.25
	// DefaultRecoverTicks is how many consecutive under-ErrRecover
	// ticks re-engage predictive mode.
	DefaultRecoverTicks = 3
	// DefaultErrAlpha is the error EWMA's smoothing factor.
	DefaultErrAlpha = 0.2
	// DefaultErrFloor is the arrival rate (per second) below which
	// prediction errors are not scored — at near-zero rates the
	// symmetric error is all noise.
	DefaultErrFloor = 0.02
)

// Policy tunes the predictor and the controller's feedback loop.
type Policy struct {
	// Tick is the controller's cadence (default DefaultTick).
	Tick time.Duration
	// Horizon is the look-ahead: wake latency plus safety margin
	// (default DefaultHorizon). Predictions made now are for now+Horizon.
	Horizon time.Duration
	// Margin multiplies the summed worker demand before rounding up —
	// the pre-wake headroom (dimensionless, default DefaultMargin).
	Margin float64
	// CycleTime is the mean per-invocation service time used to convert
	// predicted arrival rate into worker demand (Little's law: workers =
	// rate × CycleTime; default DefaultCycleTime).
	CycleTime time.Duration
	// Period is the diurnal histogram's cycle (default DefaultPeriod;
	// experiments pass their trace's day length).
	Period time.Duration
	// Bins is the histogram resolution per period (default DefaultBins).
	Bins int
	// ErrLimit is the fallback threshold on the rate-weighted error
	// ratio (default DefaultErrLimit).
	ErrLimit float64
	// ErrRecover is the re-engage threshold (default DefaultErrRecover).
	ErrRecover float64
	// RecoverTicks is how many consecutive good ticks re-engage
	// predictive mode (default DefaultRecoverTicks).
	RecoverTicks int
	// ErrAlpha smooths the per-function error EWMA (default
	// DefaultErrAlpha).
	ErrAlpha float64
	// ErrFloor is the rate (per second) below which errors are not
	// scored (default DefaultErrFloor).
	ErrFloor float64
	// MaxWorkers caps the warm-pool target in nodes (0 = uncapped;
	// callers normally pass the cluster size).
	MaxWorkers int
	// Spare is saturation headroom: when every powered node is busy at
	// tick time, the controller raises the warm target to powered+Spare
	// (capped at MaxWorkers) so the next burst arrival finds a warm node
	// instead of waiting out a cold boot (0 = disabled).
	Spare int
}

// withDefaults returns the policy with zero values replaced.
func (p Policy) withDefaults() Policy {
	if p.Tick <= 0 {
		p.Tick = DefaultTick
	}
	if p.Horizon <= 0 {
		p.Horizon = DefaultHorizon
	}
	if p.Margin <= 0 {
		p.Margin = DefaultMargin
	}
	if p.CycleTime <= 0 {
		p.CycleTime = DefaultCycleTime
	}
	if p.Period <= 0 {
		p.Period = DefaultPeriod
	}
	if p.Bins <= 0 {
		p.Bins = DefaultBins
	}
	if p.ErrLimit <= 0 {
		p.ErrLimit = DefaultErrLimit
	}
	if p.ErrRecover <= 0 {
		p.ErrRecover = DefaultErrRecover
	}
	if p.RecoverTicks <= 0 {
		p.RecoverTicks = DefaultRecoverTicks
	}
	if p.ErrAlpha <= 0 || p.ErrAlpha > 1 {
		p.ErrAlpha = DefaultErrAlpha
	}
	if p.ErrFloor <= 0 {
		p.ErrFloor = DefaultErrFloor
	}
	return p
}

// Sample is one function's observed arrival state at a tick — the
// subset of tsdb.Forecast the predictor consumes (kept structural so
// the predictor is testable without a store).
type Sample struct {
	// Function names the workload function.
	Function string
	// Rate is the instantaneous arrival rate (per second).
	Rate float64
	// EWMA is the smoothed arrival rate (per second).
	EWMA float64
}

// pendingPred is one not-yet-scored prediction: rate forecast at
// issue-time for the due instant.
type pendingPred struct {
	due  time.Duration
	rate float64
}

// fnState is one function's estimation state.
type fnState struct {
	name  string
	rate  float64 // latest instantaneous rate (per second)
	ewma  float64 // latest smoothed rate (per second)
	slope float64 // smoothed rate trend (per second per second)
	// activity is a slow-decaying envelope of the smoothed rate; it
	// weights the function's error vote so a bursty function keeps
	// voting through its quiet phases.
	activity float64
	// Diurnal histogram. The prior must come only from completed
	// periods — blending the bin currently being filled would drag
	// every forecast toward the running intra-period mean — so samples
	// accumulate in cur* and roll into hist* when the period wraps.
	histSum   []float64
	histCnt   []int
	curSum    []float64
	curCnt    []int
	curPeriod int64 // period index the cur* bins belong to
	// pending holds issued-but-not-due predictions, oldest first.
	pending []pendingPred
	// errEWMA is the smoothed symmetric prediction error ([0,2]);
	// errSeeded marks the first scored prediction.
	errEWMA   float64
	errSeeded bool
	scored    int // predictions scored so far
	samples   int // observations so far (drives the cold-start warmup)
}

// warmupSamples is how many observations a function needs before the
// predictor starts issuing scorable predictions for it: the first
// samples of a freshly-appeared function carry no usable history, and
// scoring them would seed the error EWMA with cold-start noise.
const warmupSamples = 3

// Predictor is the pure estimation core: per-function trend + diurnal
// prior + prediction-error accounting. It is not safe for concurrent
// use — the Controller (or a test) serializes access.
type Predictor struct {
	pol    Policy
	byFn   map[string]*fnState
	order  []*fnState
	lastAt time.Duration
	seen   bool
	// Aggregate (cluster-demand) prediction ledger. The controller sizes
	// the warm pool from the SUM of per-function forecasts, so the
	// feedback signal grades that sum: per-function noise that cancels
	// in the total (one function's over-read against another's under-
	// read) must not trip the fallback.
	aggPending []pendingPred
	aggErr     float64
	aggSeeded  bool
	aggScored  int
}

// NewPredictor builds a Predictor with defaults applied.
func NewPredictor(pol Policy) *Predictor {
	return &Predictor{pol: pol.withDefaults(), byFn: map[string]*fnState{}}
}

// binOf maps an instant to its diurnal histogram bin.
func (p *Predictor) binOf(at time.Duration) int {
	period := p.pol.Period
	phase := at % period
	b := int(float64(phase) / float64(period) * float64(p.pol.Bins))
	if b >= p.pol.Bins {
		b = p.pol.Bins - 1
	}
	return b
}

// Observe feeds one tick's arrival samples (in the store's first-seen
// order). Predictions that have come due are scored against the
// observed rate; then trend, histogram, and a fresh now+Horizon
// prediction are recorded per function. A sample whose clock does not
// advance — a duplicate or backwards scrape, i.e. clock skew — is
// dropped whole, keeping the rings and slopes consistent.
func (p *Predictor) Observe(now time.Duration, samples []Sample) {
	if p.seen && now <= p.lastAt {
		return
	}
	var dt float64
	if p.seen {
		dt = (now - p.lastAt).Seconds()
	}
	for _, smp := range samples {
		st, ok := p.byFn[smp.Function]
		if !ok {
			st = &fnState{
				name:      smp.Function,
				histSum:   make([]float64, p.pol.Bins),
				histCnt:   make([]int, p.pol.Bins),
				curSum:    make([]float64, p.pol.Bins),
				curCnt:    make([]int, p.pol.Bins),
				curPeriod: int64(now / p.pol.Period),
			}
			p.byFn[smp.Function] = st
			p.order = append(p.order, st)
		}
		// Score due predictions against the smoothed rate observed now —
		// the forecast's actual target. Scoring against the raw window
		// rate would grade every prediction for a sparse function against
		// sampling noise (a 0.05/s function's window reads 0 or 0.2,
		// never 0.05) and drive the error to the sMAPE ceiling.
		for len(st.pending) > 0 && st.pending[0].due <= now {
			pred := st.pending[0]
			st.pending = st.pending[1:]
			p.scoreLocked(st, pred.rate, smp.EWMA)
		}
		// Trend: smoothed EWMA slope over the actual tick spacing.
		if dt > 0 {
			inst := (smp.EWMA - st.ewma) / dt
			st.slope = 0.5*inst + 0.5*st.slope
		}
		st.rate = smp.Rate
		st.ewma = smp.EWMA
		st.activity *= 0.95
		if smp.EWMA > st.activity {
			st.activity = smp.EWMA
		}
		// Period wrap: the finished period's bins become prior history.
		if pi := int64(now / p.pol.Period); pi != st.curPeriod {
			for b := range st.curSum {
				st.histSum[b] += st.curSum[b]
				st.histCnt[b] += st.curCnt[b]
				st.curSum[b], st.curCnt[b] = 0, 0
			}
			st.curPeriod = pi
		}
		b := p.binOf(now)
		st.curSum[b] += smp.Rate
		st.curCnt[b]++
		st.samples++
		// Issue this tick's prediction for now+Horizon, once past the
		// cold-start warmup.
		if st.samples >= warmupSamples {
			st.pending = append(st.pending, pendingPred{
				due:  now + p.pol.Horizon,
				rate: p.aheadLocked(st, now),
			})
		}
	}
	// Aggregate ledger: score due cluster-rate predictions against the
	// summed smoothed rate, then issue this tick's sum-of-forecasts.
	if len(samples) > 0 {
		var total float64
		for _, smp := range samples {
			total += smp.EWMA
		}
		for len(p.aggPending) > 0 && p.aggPending[0].due <= now {
			pred := p.aggPending[0]
			p.aggPending = p.aggPending[1:]
			if pred.rate >= p.pol.ErrFloor || total >= p.pol.ErrFloor {
				e := math.Abs(pred.rate-total) / ((pred.rate + total) / 2)
				if !p.aggSeeded {
					p.aggErr = e
					p.aggSeeded = true
				} else {
					p.aggErr = p.pol.ErrAlpha*e + (1-p.pol.ErrAlpha)*p.aggErr
				}
				p.aggScored++
			}
		}
		var ahead float64
		ready := false
		for _, smp := range samples {
			st := p.byFn[smp.Function]
			ahead += p.aheadLocked(st, now)
			if st.samples >= warmupSamples {
				ready = true
			}
		}
		if ready {
			p.aggPending = append(p.aggPending, pendingPred{due: now + p.pol.Horizon, rate: ahead})
		}
	}
	p.lastAt = now
	p.seen = true
}

// scoreLocked folds one resolved prediction into the function's error
// EWMA. Near-zero rates are not scored: sMAPE at the floor is noise.
func (p *Predictor) scoreLocked(st *fnState, pred, actual float64) {
	if pred < p.pol.ErrFloor && actual < p.pol.ErrFloor {
		return
	}
	e := math.Abs(pred-actual) / ((pred + actual) / 2)
	if !st.errSeeded {
		st.errEWMA = e
		st.errSeeded = true
	} else {
		st.errEWMA = p.pol.ErrAlpha*e + (1-p.pol.ErrAlpha)*st.errEWMA
	}
	st.scored++
}

// aheadLocked is the rate forecast for now+Horizon: the trend-
// extrapolated EWMA, blended half-and-half with the diurnal prior once
// the target bin has history from a completed period.
func (p *Predictor) aheadLocked(st *fnState, now time.Duration) float64 {
	h := p.pol.Horizon.Seconds()
	rate := st.ewma + st.slope*h
	if rate < 0 {
		rate = 0
	}
	if b := p.binOf(now + p.pol.Horizon); st.histCnt[b] > 0 {
		rate = 0.5*rate + 0.5*st.histSum[b]/float64(st.histCnt[b])
	}
	return rate
}

// FunctionForecast is one function's row in a prediction: the observed
// rates, the horizon forecast, and its share of the worker demand.
type FunctionForecast struct {
	// Function names the workload function.
	Function string `json:"function"`
	// Rate is the latest instantaneous arrival rate (per second).
	Rate float64 `json:"rate_per_s"`
	// EWMA is the latest smoothed arrival rate (per second).
	EWMA float64 `json:"ewma_per_s"`
	// RateAhead is the forecast arrival rate at now+Horizon (per
	// second).
	RateAhead float64 `json:"rate_ahead_per_s"`
	// Workers is the function's fractional worker demand (RateAhead ×
	// CycleTime, before the margin).
	Workers float64 `json:"workers"`
	// ErrorRatio is the function's smoothed symmetric prediction error
	// ([0,2]; 0 until a prediction has been scored).
	ErrorRatio float64 `json:"error_ratio"`
}

// Predict returns every tracked function's horizon forecast (in
// first-seen order) and the warm-pool target: ceil(Margin × Σ rate ×
// CycleTime), capped at MaxWorkers.
func (p *Predictor) Predict(now time.Duration) ([]FunctionForecast, int) {
	cycle := p.pol.CycleTime.Seconds()
	out := make([]FunctionForecast, 0, len(p.order))
	var demand float64
	for _, st := range p.order {
		ahead := p.aheadLocked(st, now)
		f := FunctionForecast{
			Function:   st.name,
			Rate:       st.rate,
			EWMA:       st.ewma,
			RateAhead:  ahead,
			Workers:    ahead * cycle,
			ErrorRatio: st.errEWMA,
		}
		demand += f.Workers
		out = append(out, f)
	}
	// The epsilon keeps a float residual (e.g. a decayed-to-nothing
	// slope term) from bumping an exact integer demand up a node.
	target := int(math.Ceil(demand*p.pol.Margin - 1e-6))
	if target < 0 {
		target = 0
	}
	if p.pol.MaxWorkers > 0 && target > p.pol.MaxWorkers {
		target = p.pol.MaxWorkers
	}
	return out, target
}

// ErrorRatio is the controller's feedback signal: the smoothed symmetric
// error of the aggregate (cluster-demand) forecast — the sum the warm
// pool is actually sized from, so per-function noise that cancels in the
// total does not trip the fallback. Until an aggregate prediction has
// been scored it falls back to the activity-weighted mean of the
// per-function error EWMAs (the weight is a slow-decaying rate envelope,
// so a bursty function keeps voting through its quiet phases); with no
// signal at all it reports 0.
func (p *Predictor) ErrorRatio() float64 {
	if p.aggSeeded {
		return p.aggErr
	}
	var wsum, esum float64
	for _, st := range p.order {
		if !st.errSeeded || st.activity < p.pol.ErrFloor {
			continue
		}
		esum += st.activity * st.errEWMA
		wsum += st.activity
	}
	if wsum == 0 {
		return 0
	}
	return esum / wsum
}

// Scored returns how many predictions have been scored across all
// functions — the experiment's denominator for forecast accuracy.
func (p *Predictor) Scored() int {
	n := 0
	for _, st := range p.order {
		n += st.scored
	}
	return n
}
