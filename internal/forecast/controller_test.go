// Controller tests drive the full loop — telemetry counters scraped
// into a real store, predictions steering a real manager over simulated
// workers on the discrete-event engine. (The external test package
// avoids the powermgr import cycle.)
package forecast_test

import (
	"testing"
	"time"

	"microfaas/internal/core"
	"microfaas/internal/forecast"
	"microfaas/internal/gpio"
	"microfaas/internal/model"
	"microfaas/internal/node"
	"microfaas/internal/power"
	"microfaas/internal/powermgr"
	"microfaas/internal/sim"
	"microfaas/internal/telemetry"
	"microfaas/internal/tsdb"
)

// ctlRig wires engine → workers → manager → store → controller.
type ctlRig struct {
	engine *sim.Engine
	mgr    *powermgr.Manager
	store  *tsdb.Store
	ctl    *forecast.Controller
	sub    *telemetry.Counter
}

func newCtlRig(t *testing.T, n int, pol forecast.Policy) *ctlRig {
	t.Helper()
	r := &ctlRig{engine: sim.NewEngine(1)}
	meter := power.NewMeter()
	g := gpio.NewController()
	nodes := make([]powermgr.Node, 0, n)
	for i := 0; i < n; i++ {
		w, err := node.NewSimWorker(node.SimWorkerConfig{
			ID:       string(rune('a' + i)),
			Platform: model.ARM,
			Engine:   r.engine,
			Meter:    meter,
			GPIO:     g,
			BootTime: time.Second,
			Managed:  true,
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, w)
	}
	mgr, err := powermgr.New(powermgr.Config{
		Runtime: core.SimRuntime{Engine: r.engine},
		Nodes:   nodes,
		Policy:  powermgr.Policy{IdleTimeout: 10 * time.Second, MinUp: time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	r.mgr = mgr
	tel := telemetry.New()
	r.sub = tel.Registry().Counter(tsdb.MetricSubmittedByFunction, "submissions", "function", "f")
	r.store = tsdb.New(tsdb.Config{})
	r.store.AddSource("", tel.Registry())
	ctl, err := forecast.NewController(forecast.ControllerConfig{
		Store:   r.store,
		Manager: mgr,
		Policy:  pol,
	})
	if err != nil {
		t.Fatal(err)
	}
	r.ctl = ctl
	return r
}

// phase schedules one observe/tick per second over [from, to) with the
// given per-second arrival count, then runs the engine through it.
func (r *ctlRig) phase(from, to int, arrivals func(i int) float64) {
	for i := from; i < to; i++ {
		at := time.Duration(i) * time.Second
		add := arrivals(i)
		r.engine.At(at, func() {
			r.sub.Add(add)
			r.store.Scrape(at)
			r.ctl.Tick(at)
		})
	}
	r.engine.Run(time.Duration(to) * time.Second)
}

func TestControllerSteersWarmFloorAndRecovers(t *testing.T) {
	pol := forecast.Policy{
		Tick:         time.Second,
		Horizon:      time.Second,
		CycleTime:    time.Second,
		RecoverTicks: 2,
		MaxWorkers:   3,
	}
	r := newCtlRig(t, 3, pol)

	// Steady 2/s: predictions hold, the floor pre-warms the cluster.
	r.phase(1, 21, func(i int) float64 { return 2 })
	snap := r.ctl.Snapshot()
	if snap.Mode != "predictive" {
		t.Fatalf("steady mode = %q, want predictive", snap.Mode)
	}
	// demand ≈ 2/s × 1 s × 1.25 margin → 3 nodes.
	if snap.Target != 3 || r.mgr.WarmTarget() != 3 {
		t.Fatalf("steady target = %d (mgr %d), want 3", snap.Target, r.mgr.WarmTarget())
	}
	if got := r.mgr.PoweredUp(); got != 3 {
		t.Fatalf("powered = %d, want 3 pre-warmed", got)
	}
	if len(snap.Functions) != 1 || snap.Functions[0].Function != "f" {
		t.Fatalf("snapshot functions = %+v", snap.Functions)
	}

	// Bursty anti-pattern: every one-tick-ahead prediction lands on the
	// opposite phase. The error ratio crosses ErrLimit → fallback, and
	// the manager returns to pure reactive control.
	r.phase(21, 61, func(i int) float64 {
		if i%2 == 0 {
			return 12
		}
		return 0
	})
	snap = r.ctl.Snapshot()
	if snap.Mode != "fallback" {
		t.Fatalf("bursty mode = %q (err %.2f), want fallback", snap.Mode, snap.ErrorRatio)
	}
	if snap.Fallbacks < 1 {
		t.Fatalf("fallbacks = %d, want ≥1", snap.Fallbacks)
	}
	if r.mgr.WarmTarget() != -1 {
		t.Fatalf("mgr warm target in fallback = %d, want -1 (disengaged)", r.mgr.WarmTarget())
	}

	// Steady again: the error decays under ErrRecover and, after
	// RecoverTicks consecutive good ticks, predictive mode re-engages.
	r.phase(61, 151, func(i int) float64 { return 2 })
	snap = r.ctl.Snapshot()
	if snap.Mode != "predictive" {
		t.Fatalf("recovered mode = %q (err %.2f), want predictive", snap.Mode, snap.ErrorRatio)
	}
	if r.mgr.WarmTarget() != 3 {
		t.Fatalf("recovered mgr target = %d, want 3", r.mgr.WarmTarget())
	}
}

// TestSpareHeadroomOnSaturation pins the Policy.Spare bump: when every
// powered node is busy at tick time (and at least spareMinBusy of them),
// the controller raises the floor past the occupancy point even though
// the rate forecast asks for less.
func TestSpareHeadroomOnSaturation(t *testing.T) {
	pol := forecast.Policy{
		Tick:       time.Second,
		Horizon:    time.Second,
		CycleTime:  time.Second,
		MaxWorkers: 6,
		Spare:      1,
	}
	r := newCtlRig(t, 6, pol)

	// Steady 3/s → demand 3 × 1.25 margin → floor 4 pre-warmed.
	r.phase(1, 21, func(i int) float64 { return 3 })
	if got := r.mgr.PoweredUp(); got != 4 {
		t.Fatalf("steady powered = %d, want 4 pre-warmed", got)
	}

	// Saturate: the orchestrator grabs all four warm nodes. The next
	// tick sees busy == powered == 4 ≥ spareMinBusy and wakes a spare.
	warm := r.mgr.PoweredIDs()
	for _, id := range warm {
		if !r.mgr.RequestUp(id, "burst", nil) {
			t.Fatalf("RequestUp(%s) on a warm node returned false", id)
		}
	}
	r.phase(21, 22, func(i int) float64 { return 3 })
	if got := r.mgr.WarmTarget(); got != 5 {
		t.Fatalf("saturated warm target = %d, want 5 (powered 4 + spare 1)", got)
	}
	r.engine.Run(23 * time.Second) // the spare's boot completes
	if got := r.mgr.PoweredUp(); got != 5 {
		t.Fatalf("powered after spare wake = %d, want 5", got)
	}

	// Release the burst: with headroom back, the bump disengages and the
	// target returns to the rate-driven floor.
	for _, id := range warm {
		r.mgr.NoteIdle(id)
	}
	r.phase(23, 24, func(i int) float64 { return 3 })
	if got := r.ctl.Snapshot().Target; got != 4 {
		t.Fatalf("post-burst target = %d, want 4 (rate-driven floor)", got)
	}
}

// TestSpareIgnoresSmallSaturation pins the spareMinBusy guard: a couple
// of busy nodes saturating a small pool is routine trough traffic and
// must not wake headroom.
func TestSpareIgnoresSmallSaturation(t *testing.T) {
	pol := forecast.Policy{
		Tick:       time.Second,
		Horizon:    time.Second,
		CycleTime:  time.Second,
		MaxWorkers: 6,
		Spare:      1,
	}
	r := newCtlRig(t, 6, pol)
	// Steady 1.5/s → demand 1.5 × 1.25 → floor 2.
	r.phase(1, 21, func(i int) float64 { return 1.5 })
	if got := r.mgr.PoweredUp(); got != 2 {
		t.Fatalf("steady powered = %d, want 2", got)
	}
	for _, id := range r.mgr.PoweredIDs() {
		if !r.mgr.RequestUp(id, "trough", nil) {
			t.Fatalf("RequestUp(%s) returned false", id)
		}
	}
	r.phase(21, 22, func(i int) float64 { return 1.5 })
	if got := r.mgr.WarmTarget(); got != 2 {
		t.Fatalf("warm target with 2 busy = %d, want 2 (below spareMinBusy)", got)
	}
}

// TestControllerObserveOnly pins the nil-manager mode: forecasts and
// error accounting run, nothing is actuated.
func TestControllerObserveOnly(t *testing.T) {
	tel := telemetry.New()
	sub := tel.Registry().Counter(tsdb.MetricSubmittedByFunction, "submissions", "function", "f")
	store := tsdb.New(tsdb.Config{})
	store.AddSource("", tel.Registry())
	ctl, err := forecast.NewController(forecast.ControllerConfig{Store: store})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 10; i++ {
		sub.Add(3)
		at := time.Duration(i) * time.Second
		store.Scrape(at)
		ctl.Tick(at)
	}
	snap := ctl.Snapshot()
	if snap.Mode != "predictive" || snap.Target == 0 || snap.Ticks != 10 {
		t.Fatalf("observe-only snapshot = %+v", snap)
	}
}

// TestControllerStartStop pins the live-mode ticker: Start drives ticks
// on the runtime and stop disengages the warm floor.
func TestControllerStartStop(t *testing.T) {
	pol := forecast.Policy{Tick: time.Second, Horizon: time.Second, CycleTime: time.Second, MaxWorkers: 2}
	r := newCtlRig(t, 2, pol)
	stop := r.ctl.Start(core.SimRuntime{Engine: r.engine}, time.Second)
	// Feed arrivals and scrapes alongside the self-rescheduling ticks.
	for i := 1; i <= 10; i++ {
		at := time.Duration(i)*time.Second - time.Millisecond
		r.engine.At(at, func() {
			r.sub.Add(4)
			r.store.Scrape(at)
		})
	}
	r.engine.Run(10 * time.Second)
	if snap := r.ctl.Snapshot(); snap.Ticks == 0 || snap.Target == 0 {
		t.Fatalf("ticker snapshot = %+v, want live ticks and a target", snap)
	}
	stop()
	if r.mgr.WarmTarget() != -1 {
		t.Fatalf("warm target after stop = %d, want -1", r.mgr.WarmTarget())
	}
	// The ticker must actually stop: no further events accumulate.
	before := r.engine.Pending()
	r.engine.RunAll()
	if r.engine.Pending() != 0 || before > 3 {
		t.Fatalf("pending after stop = %d (was %d), want the queue to drain", r.engine.Pending(), before)
	}
}
