package forecast

import (
	"fmt"
	"sync"
	"time"

	"microfaas/internal/powermgr"
	"microfaas/internal/telemetry"
	"microfaas/internal/tsdb"
)

// spareMinBusy is the least number of simultaneously held nodes that
// counts as saturation for the Policy.Spare headroom bump. One to
// three busy nodes all granted at once is routine trough-and-shoulder
// traffic — pre-waking an extra node there burns energy the forecast
// floor already decided against. Four or more saturated nodes means a
// genuine burst is outrunning the rate forecast, and the next arrival
// would eat a cold boot the spare can absorb instead.
const spareMinBusy = 4

// Mode is the controller's feedback state.
type Mode int

const (
	// ModePredictive: forecasts are trusted; the controller steers the
	// power manager's warm floor every tick.
	ModePredictive Mode = iota
	// ModeFallback: forecasts mispredicted past ErrLimit; the power
	// manager runs pure reactive (warm floor disengaged) until the
	// error ratio stays under ErrRecover for RecoverTicks ticks.
	ModeFallback
)

// String returns "predictive" or "fallback".
func (m Mode) String() string {
	if m == ModeFallback {
		return "fallback"
	}
	return "predictive"
}

// ControllerConfig assembles a Controller.
type ControllerConfig struct {
	// Store is the time-series store whose arrival tracker feeds the
	// predictor (required).
	Store *tsdb.Store
	// Manager is the power manager the controller steers through
	// SetWarmTarget (nil = observe-only: forecasts and error accounting
	// without power actuation).
	Manager *powermgr.Manager
	// Policy tunes the predictor and the feedback loop.
	Policy Policy
	// Telemetry receives the forecast gauges and fallback counter (nil
	// = disabled; behavior is identical either way).
	Telemetry *telemetry.Telemetry
}

// Controller runs the prediction loop: each Tick it reads the store's
// arrival forecasts, advances the predictor, and — in predictive mode —
// sets the power manager's warm floor. All methods are safe for
// concurrent use; the controller's lock is released before calling into
// the manager.
type Controller struct {
	pol   Policy
	store *tsdb.Store
	mgr   *powermgr.Manager

	mu        sync.Mutex
	pred      *Predictor
	mode      Mode
	goodTicks int
	fallbacks int
	ticks     int
	last      Snapshot

	m ctlMetrics
}

// NewController builds a Controller (predictive mode, no tick yet).
func NewController(cfg ControllerConfig) (*Controller, error) {
	if cfg.Store == nil {
		return nil, fmt.Errorf("forecast: a tsdb.Store is required")
	}
	pol := cfg.Policy.withDefaults()
	c := &Controller{
		pol:   pol,
		store: cfg.Store,
		mgr:   cfg.Manager,
		pred:  NewPredictor(pol),
	}
	c.initTelemetry(cfg.Telemetry)
	return c, nil
}

// Tick advances the loop at the given cluster-clock instant: observe,
// predict, update the feedback state machine, and steer the manager.
// The owner drives it — pre-scheduled virtual-clock events in the sim,
// Start's wall ticker in live mode.
func (c *Controller) Tick(now time.Duration) {
	fcs := c.store.Forecasts()
	samples := make([]Sample, len(fcs))
	for i, f := range fcs {
		samples[i] = Sample{Function: f.Function, Rate: f.Rate, EWMA: f.EWMA}
	}
	// Occupancy is read before c.mu: the manager's lock is a leaf and
	// must never nest inside ours in the other order.
	var busy, powered int
	if c.mgr != nil && c.pol.Spare > 0 {
		busy, powered = c.mgr.Occupancy()
	}
	c.mu.Lock()
	c.pred.Observe(now, samples)
	fns, target := c.pred.Predict(now)
	if c.pol.Spare > 0 && busy >= spareMinBusy && busy == powered {
		// Saturation headroom: every powered node is busy, so the next
		// arrival would eat a cold boot. Raise the floor past the
		// occupancy point regardless of what the rate forecast says.
		want := powered + c.pol.Spare
		if c.pol.MaxWorkers > 0 {
			want = min(want, c.pol.MaxWorkers)
		}
		if want > target {
			target = want
		}
	}
	errRatio := c.pred.ErrorRatio()
	// Pre-sleep only ahead of troughs: trimming is reserved for ticks
	// whose aggregate forecast is below the current smoothed rate. On
	// flat or rising demand the floor still pre-wakes and holds, but
	// surplus decays through the reactive idle timeout — trimming there
	// just re-boots the same nodes when the next burst lands.
	var ewmaSum, aheadSum float64
	for _, f := range fns {
		ewmaSum += f.EWMA
		aheadSum += f.RateAhead
	}
	declining := aheadSum < ewmaSum
	switch c.mode {
	case ModePredictive:
		if errRatio > c.pol.ErrLimit {
			c.mode = ModeFallback
			c.goodTicks = 0
			c.fallbacks++
			c.m.fallbacks.Inc()
		}
	case ModeFallback:
		if errRatio <= c.pol.ErrRecover {
			c.goodTicks++
			if c.goodTicks >= c.pol.RecoverTicks {
				c.mode = ModePredictive
			}
		} else {
			c.goodTicks = 0
		}
	}
	mode := c.mode
	c.ticks++
	c.last = Snapshot{
		Mode:       mode.String(),
		ErrorRatio: errRatio,
		Target:     target,
		Declining:  declining,
		Fallbacks:  c.fallbacks,
		Ticks:      c.ticks,
		TickMs:     float64(c.pol.Tick) / float64(time.Millisecond),
		HorizonMs:  float64(c.pol.Horizon) / float64(time.Millisecond),
		Functions:  fns,
	}
	c.m.target.Set(float64(target))
	c.m.errRatio.Set(errRatio)
	if mode == ModePredictive {
		c.m.predictive.Set(1)
	} else {
		c.m.predictive.Set(0)
	}
	c.noteRatesLocked(fns)
	c.mu.Unlock()
	if c.mgr == nil {
		return
	}
	// Manager calls happen outside c.mu: its lock is a leaf under ours.
	switch {
	case mode != ModePredictive:
		c.mgr.SetWarmTarget(-1)
	case declining:
		c.mgr.SetWarmTarget(target)
	default:
		c.mgr.SetWarmFloor(target)
	}
}

// Start drives Tick on a self-rescheduling runtime timer every
// `every` (0 = the policy tick) — live mode's wall-clock loop. The
// returned stop function cancels the loop and disengages the warm
// floor. Sim owners pre-schedule Tick events instead, keeping the
// virtual-clock event set finite and deterministic.
func (c *Controller) Start(rt powermgr.Runtime, every time.Duration) (stop func()) {
	if every <= 0 {
		every = c.pol.Tick
	}
	var mu sync.Mutex
	var cancel func()
	stopped := false
	var arm func()
	arm = func() {
		mu.Lock()
		defer mu.Unlock()
		if stopped {
			return
		}
		cancel = rt.After(every, func() {
			c.Tick(rt.Now())
			arm()
		})
	}
	arm()
	return func() {
		mu.Lock()
		stopped = true
		if cancel != nil {
			cancel()
		}
		mu.Unlock()
		if c.mgr != nil {
			c.mgr.SetWarmTarget(-1)
		}
	}
}

// Snapshot is the controller's point-in-time state, as served by the
// gateway's /forecast endpoint and rendered by `faasctl forecast`.
type Snapshot struct {
	// Mode is "predictive" or "fallback".
	Mode string `json:"mode"`
	// ErrorRatio is the rate-weighted smoothed prediction error
	// ([0,2]; sMAPE scale — multiply by 100 for a MAPE-like percent).
	ErrorRatio float64 `json:"error_ratio"`
	// Target is the warm-pool target in nodes from the latest tick.
	Target int `json:"target_workers"`
	// Declining is true when the latest tick's aggregate forecast sits
	// below the current smoothed rate — the ticks on which the
	// controller allows pre-sleep.
	Declining bool `json:"declining"`
	// Fallbacks counts predictive→fallback transitions so far.
	Fallbacks int `json:"fallbacks_total"`
	// Ticks counts controller ticks so far.
	Ticks int `json:"ticks"`
	// TickMs and HorizonMs echo the policy in milliseconds.
	TickMs float64 `json:"tick_ms"`
	// HorizonMs is the forecast look-ahead in milliseconds.
	HorizonMs float64 `json:"horizon_ms"`
	// Functions lists per-function forecasts in first-seen order.
	Functions []FunctionForecast `json:"functions"`
}

// Snapshot returns the state computed by the most recent Tick (zero
// before the first).
func (c *Controller) Snapshot() Snapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.last
	if s.Mode == "" {
		s.Mode = c.mode.String()
		s.TickMs = float64(c.pol.Tick) / float64(time.Millisecond)
		s.HorizonMs = float64(c.pol.Horizon) / float64(time.Millisecond)
	}
	if s.Functions == nil {
		s.Functions = []FunctionForecast{}
	}
	return s
}

// Metric names the forecast controller owns.
const (
	metricTarget     = "microfaas_forecast_workers_target"
	metricErrRatio   = "microfaas_forecast_error_ratio"
	metricPredictive = "microfaas_forecast_predictive_mode"
	metricFallbacks  = "microfaas_forecast_fallbacks_total"
	metricRateAhead  = "microfaas_forecast_rate_ahead_per_s"
)

// ctlMetrics holds the controller's metric handles; every handle no-ops
// on nil so the zero value is the disabled-instrumentation path.
type ctlMetrics struct {
	target     *telemetry.Gauge
	errRatio   *telemetry.Gauge
	predictive *telemetry.Gauge
	fallbacks  *telemetry.Counter
	rateAhead  map[string]*telemetry.Gauge // function → forecast rate
	reg        *telemetry.Registry
}

// initTelemetry pre-creates the controller's cluster-level series.
func (c *Controller) initTelemetry(tel *telemetry.Telemetry) {
	if tel == nil {
		return
	}
	reg := tel.Registry()
	c.m = ctlMetrics{
		target: reg.Gauge(metricTarget,
			"Warm-pool worker target from the latest forecast tick (nodes)."),
		errRatio: reg.Gauge(metricErrRatio,
			"Rate-weighted smoothed forecast error ratio (sMAPE scale, 0-2)."),
		predictive: reg.Gauge(metricPredictive,
			"1 while the controller is in predictive mode, 0 during reactive fallback."),
		fallbacks: reg.Counter(metricFallbacks,
			"Predictive-to-fallback transitions caused by forecast error."),
		rateAhead: map[string]*telemetry.Gauge{},
		reg:       reg,
	}
}

// noteRatesLocked refreshes the per-function forecast-rate gauges,
// creating them lazily in first-seen order. Caller holds c.mu.
func (c *Controller) noteRatesLocked(fns []FunctionForecast) {
	if c.m.reg == nil {
		return
	}
	for _, f := range fns {
		g, ok := c.m.rateAhead[f.Function]
		if !ok {
			g = c.m.reg.Gauge(metricRateAhead,
				"Forecast arrival rate at now+horizon per function (per second).",
				"function", f.Function)
			c.m.rateAhead[f.Function] = g
		}
		g.Set(f.RateAhead)
	}
}
