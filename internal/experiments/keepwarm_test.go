package experiments

import (
	"strings"
	"testing"
	"time"
)

func TestKeepWarmTradesEnergyForLatency(t *testing.T) {
	pts, err := KeepWarm(KeepWarmConfig{
		Windows:  []time.Duration{0, 30 * time.Second},
		Duration: 10 * time.Minute,
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	paper, warm := pts[0], pts[1]

	// The paper's policy never warm-starts; a 30 s window at 50% load
	// should warm-start nearly everything.
	if paper.WarmFraction != 0 {
		t.Fatalf("paper policy warm fraction = %.2f, want 0", paper.WarmFraction)
	}
	if warm.WarmFraction < 0.8 {
		t.Fatalf("30s window warm fraction = %.2f, want >0.8", warm.WarmFraction)
	}
	// Warm starts must cut latency by roughly the boot time...
	saved := paper.MeanLatency - warm.MeanLatency
	if saved < time.Second {
		t.Fatalf("keep-warm saved only %v of latency", saved)
	}
	// ...and must cost energy (idle draw while parked).
	if warm.JoulesPerFunc <= paper.JoulesPerFunc {
		t.Fatalf("keep-warm energy %.2f <= paper %.2f J/func — the trade vanished",
			warm.JoulesPerFunc, paper.JoulesPerFunc)
	}
}

func TestKeepWarmLongerWindowsCostMore(t *testing.T) {
	pts, err := KeepWarm(KeepWarmConfig{
		Windows:  []time.Duration{5 * time.Second, 2 * time.Minute},
		Duration: 10 * time.Minute,
		Seed:     2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if pts[1].JoulesPerFunc <= pts[0].JoulesPerFunc {
		t.Fatalf("2m window %.2f J/func <= 5s window %.2f — longer parking must cost more",
			pts[1].JoulesPerFunc, pts[0].JoulesPerFunc)
	}
	if pts[1].WarmFraction < pts[0].WarmFraction {
		t.Fatal("longer window must not lower the warm-hit rate")
	}
}

func TestKeepWarmValidation(t *testing.T) {
	if _, err := KeepWarm(KeepWarmConfig{LoadFraction: 1.5}); err == nil {
		t.Fatal("overload accepted")
	}
	if _, err := KeepWarm(KeepWarmConfig{LoadFraction: -0.5}); err == nil {
		t.Fatal("negative load accepted")
	}
}

func TestWriteKeepWarm(t *testing.T) {
	pts, err := KeepWarm(KeepWarmConfig{
		Windows:  []time.Duration{0},
		Duration: 5 * time.Minute,
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteKeepWarm(&sb, pts); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "off(paper)") {
		t.Fatalf("output:\n%s", sb.String())
	}
}
