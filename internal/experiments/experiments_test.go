package experiments

import (
	"math"
	"strings"
	"testing"
	"time"

	"microfaas/internal/model"
)

func TestFig1EndsAtPaperBootTimes(t *testing.T) {
	rows := Fig1()
	if len(rows) != 10 { // baseline + 9 optimizations
		t.Fatalf("%d stages, want 10", len(rows))
	}
	last := rows[len(rows)-1]
	if last.ARMReal != 1510*time.Millisecond || last.X86Real != 960*time.Millisecond {
		t.Fatalf("final boot = %v / %v, want 1.51s / 0.96s", last.ARMReal, last.X86Real)
	}
	var sb strings.Builder
	if err := WriteFig1(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "baseline") || !strings.Contains(sb.String(), "falcon") {
		t.Fatalf("Fig1 output missing stages:\n%s", sb.String())
	}
}

func TestFig3ReproducesSpeedCounts(t *testing.T) {
	rows, err := Fig3(Fig3Config{InvocationsPerFunction: 30, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 17 {
		t.Fatalf("%d functions, want 17", len(rows))
	}
	faster, atHalf, below := Fig3Counts(rows)
	if faster != 4 || atHalf != 9 || below != 4 {
		for _, r := range rows {
			t.Logf("%-12s ratio=%.3f", r.Function, r.SpeedRatio)
		}
		t.Fatalf("counts = %d/%d/%d, paper reports 4/9/4", faster, atHalf, below)
	}
	for _, r := range rows {
		if r.MFWorking <= 0 || r.MFOverhead <= 0 || r.ConvWorking <= 0 || r.ConvOverhead <= 0 {
			t.Fatalf("%s has empty split: %+v", r.Function, r)
		}
	}
	var sb strings.Builder
	if err := WriteFig3(&sb, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "CascSHA") {
		t.Fatal("Fig3 output missing functions")
	}
}

func TestFig4ShapeMatchesPaper(t *testing.T) {
	res, err := Fig4(Fig4Config{MaxVMs: 24, JobsPerVM: 150, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 24 {
		t.Fatalf("%d points", len(res.Points))
	}
	// Efficiency improves from 1 VM to the peak, which sits at/after
	// saturation (mid-teens VMs).
	if res.Points[0].JoulesPerFunc < res.PeakJoules {
		t.Fatal("1 VM should be least efficient")
	}
	if res.PeakVMs < 12 {
		t.Fatalf("peak at %d VMs, expected at/after saturation", res.PeakVMs)
	}
	if math.Abs(res.PeakJoules-model.PaperPeakConventionalJoulesPerFunc)/model.PaperPeakConventionalJoulesPerFunc > 0.08 {
		t.Fatalf("peak = %.1f J/func, want ≈%.1f", res.PeakJoules, model.PaperPeakConventionalJoulesPerFunc)
	}
	// MicroFaaS stays below the conventional cluster's best point.
	if res.MicroFaaSJoules >= res.PeakJoules {
		t.Fatalf("MicroFaaS %.1f J/func not below conventional peak %.1f",
			res.MicroFaaSJoules, res.PeakJoules)
	}
	// Throughput at 6 VMs should be near the paper's matched value.
	six := res.Points[5]
	if math.Abs(six.ThroughputPerMin-model.PaperVMThroughput)/model.PaperVMThroughput > 0.05 {
		t.Fatalf("6-VM throughput = %.1f, want ≈%.1f", six.ThroughputPerMin, model.PaperVMThroughput)
	}
	var sb strings.Builder
	if err := WriteFig4(&sb, res); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "peak efficiency") {
		t.Fatal("Fig4 output missing peak marker")
	}
}

func TestFig5EnergyProportionality(t *testing.T) {
	pts, err := Fig5(Fig5Config{MaxWorkers: 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 11 {
		t.Fatalf("%d points, want 11 (0..10)", len(pts))
	}
	// Idle offsets (worker qty = 0): the paper's key contrast. The rack
	// server idles at 60 W; the MicroFaaS cluster's ten powered-down SBCs
	// draw ≈1.3 W total.
	idle := pts[0]
	if math.Abs(idle.ConventionalWatts-60) > 1 {
		t.Fatalf("conventional idle = %.1f W, want 60", idle.ConventionalWatts)
	}
	if idle.MicroFaaSWatts > 2 {
		t.Fatalf("MicroFaaS idle = %.2f W, want ≈1.3", idle.MicroFaaSWatts)
	}
	// MicroFaaS scales nearly linearly: each active worker adds ≈1.83 W
	// (busy minus standby).
	for i := 1; i < len(pts); i++ {
		delta := pts[i].MicroFaaSWatts - pts[i-1].MicroFaaSWatts
		if delta < 1.5 || delta > 2.2 {
			t.Fatalf("MicroFaaS power step %d->%d = %.2f W, want ≈1.83", i-1, i, delta)
		}
	}
	// MicroFaaS uses far less power at every point.
	for _, p := range pts {
		if p.MicroFaaSWatts >= p.ConventionalWatts {
			t.Fatalf("at %d workers MicroFaaS %.1f W >= conventional %.1f W",
				p.ActiveWorkers, p.MicroFaaSWatts, p.ConventionalWatts)
		}
	}
	// Fully loaded, ten SBCs draw ≈19.6 W.
	full := pts[10]
	if math.Abs(full.MicroFaaSWatts-19.6) > 1 {
		t.Fatalf("10 busy SBCs = %.1f W, want ≈19.6", full.MicroFaaSWatts)
	}
	var sb strings.Builder
	if err := WriteFig5(&sb, pts); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "workers") {
		t.Fatal("Fig5 output malformed")
	}
}

func TestHeadlineMatchesPaper(t *testing.T) {
	res, err := Headline(HeadlineConfig{InvocationsPerFunction: 40, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	check := func(what string, got, want, tol float64) {
		t.Helper()
		if math.Abs(got-want)/want > tol {
			t.Errorf("%s = %.2f, want %.2f ± %.0f%%", what, got, want, tol*100)
		}
	}
	check("SBC throughput", res.SBCThroughputPerMin, model.PaperSBCThroughput, 0.03)
	check("VM throughput", res.VMThroughputPerMin, model.PaperVMThroughput, 0.03)
	check("MicroFaaS J/func", res.MicroFaaSJoules, model.PaperMicroFaaSJoulesPerFunc, 0.08)
	check("conventional J/func", res.ConventionalJoules, model.PaperConventionalJoulesPerFunc, 0.08)
	check("efficiency gain", res.EfficiencyGain, model.PaperEnergyEfficiencyGain, 0.10)
	var sb strings.Builder
	if err := WriteHeadline(&sb, res); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Efficiency gain") {
		t.Fatal("headline output malformed")
	}
}

func TestWriteTable2(t *testing.T) {
	var sb strings.Builder
	if err := WriteTable2(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Compute", "Network", "Energy", "Total", "82451", "78713"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table II output missing %q:\n%s", want, out)
		}
	}
}

func TestAblationCryptoAccel(t *testing.T) {
	res, err := AblationCryptoAccel(8, 5, 20, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Speedup() <= 1.05 {
		t.Fatalf("crypto accelerator speedup = %.2fx, expected a real gain", res.Speedup())
	}
	for _, d := range res.FunctionDeltas {
		if d.After >= d.Before {
			t.Fatalf("%s did not get faster: %v -> %v", d.Function, d.Before, d.After)
		}
	}
	if _, err := AblationCryptoAccel(0.5, 1, 5, 1); err == nil {
		t.Fatal("speedup below 1 accepted")
	}
}

func TestAblationGigE(t *testing.T) {
	res, err := AblationGigE(6, 20, 1)
	if err != nil {
		t.Fatal(err)
	}
	// COSGet moves 8 MiB: the upgrade should cut its runtime hard.
	var cosget FunctionDelta
	for _, d := range res.FunctionDeltas {
		if d.Function == "COSGet" {
			cosget = d
		}
	}
	if cosget.Function == "" {
		t.Fatal("COSGet delta missing")
	}
	if float64(cosget.After) > float64(cosget.Before)*0.6 {
		t.Fatalf("GigE barely helped COSGet: %v -> %v", cosget.Before, cosget.After)
	}
	if res.Speedup() <= 1 {
		t.Fatalf("GigE upgrade slowed the cluster: %.2fx", res.Speedup())
	}
}

func TestAblationNoReboot(t *testing.T) {
	res, err := AblationNoReboot(7, 20, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Dropping the 1.51 s boot from a ≈3 s cycle should buy roughly
	// 1.8-2.2x throughput — this is the measured price of the paper's
	// hardware-reset isolation guarantee.
	if res.Speedup() < 1.7 || res.Speedup() > 2.4 {
		t.Fatalf("no-reboot speedup = %.2fx, expected ≈2x", res.Speedup())
	}
	var sb strings.Builder
	if err := WriteAblation(&sb, res); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "no reboot") {
		t.Fatal("ablation output malformed")
	}
}
