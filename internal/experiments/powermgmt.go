package experiments

import (
	"fmt"
	"io"
	"time"

	"microfaas/internal/cluster"
	"microfaas/internal/core"
	"microfaas/internal/forecast"
	"microfaas/internal/model"
	"microfaas/internal/power"
	"microfaas/internal/powermgr"
	"microfaas/internal/replay"
	"microfaas/internal/telemetry"
	"microfaas/internal/trace"
	"microfaas/internal/tsdb"
)

// PowerMgmt measures what the dynamic power manager buys over the static
// power policies. At each utilization level it replays the same diurnal
// arrival trace into three otherwise-identical MicroFaaS clusters:
//
//   - per-job: the paper's policy — power-cycle around every invocation;
//   - always-on: the conventional serverless stance — boot once, idle warm
//     forever (the DisableReboot ablation);
//   - managed: the power manager — wake-on-demand, idle power-down, and
//     the energy-aware assignment policy packing load onto powered nodes;
//   - predictive (optional, Predict): managed plus the forecast
//     controller steering the manager's warm floor from the arrival-rate
//     series — pre-waking ahead of the diurnal ramp, pre-sleeping surplus
//     nodes ahead of the trough instead of waiting out the idle timeout.
//
// The headline number is J/function; the savings column is the managed
// cluster's reduction versus always-on at the same load. The lower the
// utilization, the more idle wattage there is to reclaim.
type PowerMgmtResult struct {
	// Day is the replayed trace length (virtual time).
	Day time.Duration
	// IdleTimeout is the managed arms' idle power-down timeout.
	IdleTimeout time.Duration
	Levels      []PowerMgmtLevel
}

// PowerMgmtLevel is one utilization point: the same trace through all
// three power policies.
type PowerMgmtLevel struct {
	// Utilization is the offered load as a fraction of cluster capacity;
	// RatePerMin the resulting mean arrival rate; Invocations the trace
	// size.
	Utilization float64
	RatePerMin  float64
	Invocations int

	PerJob, AlwaysOn, Managed PowerMgmtArm

	// Predictive is the forecast-steered arm; its zero value (empty Name)
	// means PowerMgmtConfig.Predict was off and the arm did not run.
	Predictive PowerMgmtArm

	// SavingsVsAlwaysOn is 1 − managed/always-on in J/function (the
	// fraction of the always-on energy bill the manager reclaims);
	// SavingsVsPerJob is the same against the per-job power cycle.
	SavingsVsAlwaysOn float64
	SavingsVsPerJob   float64
	// SavingsPredictive is 1 − predictive/always-on in J/function (zero
	// when the predictive arm did not run).
	SavingsPredictive float64
}

// arms lists the level's populated arms in display order.
func (lv PowerMgmtLevel) arms() []PowerMgmtArm {
	out := []PowerMgmtArm{lv.PerJob, lv.AlwaysOn, lv.Managed}
	if lv.Predictive.Name != "" {
		out = append(out, lv.Predictive)
	}
	return out
}

// PowerMgmtArm is one cluster's replay of the level's trace.
type PowerMgmtArm struct {
	// Name is "per-job", "always-on", or "managed".
	Name      string
	Completed int
	// JoulesPer is whole-cluster metered energy per completed function (J);
	// MeanPowerW the cluster's mean draw over the run (W).
	JoulesPer  float64
	MeanPowerW float64
	// MeanLatency includes queueing (and, for managed, any wake boots the
	// queue wait absorbed); P99Latency is the same distribution's 99th
	// percentile — the number wake-boot stalls show up in first.
	MeanLatency time.Duration
	P99Latency  time.Duration
	// ForecastError is the controller's final smoothed sMAPE-style error
	// in [0,2] (predictive arm only; see forecast.Predictor — halve it
	// for a rough MAPE reading). Fallbacks counts predictive→reactive
	// mode reversions over the trace.
	ForecastError float64
	Fallbacks     int
	// PowerOns counts Off→powered transitions in the GPIO audit log —
	// PWR_BUT presses. Per-job pays one per invocation; managed pays one
	// per wake.
	PowerOns int
	// Alerts is the SLO alert timeline over the diurnal trace. Non-nil
	// exactly when the run had SLO rules.
	Alerts []telemetry.Event
}

// PowerMgmtConfig sizes the experiment.
type PowerMgmtConfig struct {
	// Levels are the utilization points (fractions of cluster capacity;
	// default 0.1, 0.3, 0.6).
	Levels []float64
	// Day is the trace length (default 2 h of virtual time — long enough
	// for the diurnal shape to matter, short enough to fan out widely).
	Day time.Duration
	// IdleTimeout for the managed arm (default 15 s).
	IdleTimeout time.Duration
	Seed        int64
	// Parallel bounds the worker pool (<=0 = GOMAXPROCS, 1 = serial). All
	// levels × arms fan through it; output is identical at any value.
	Parallel int
	// SLO, when set, enables telemetry plus an embedded time-series
	// store sampling on a fixed virtual-clock cadence (SLOInterval) and
	// reports each arm's alert timeline across the diurnal trace. Nil
	// keeps the run byte-identical to an unobserved one.
	SLO []tsdb.Rule
	// SLOInterval is the scrape cadence for SLO runs (default 5s; the
	// unsharded sim has no aggregator tick to piggyback on, so scrapes
	// are pre-scheduled across the trace).
	SLOInterval time.Duration
	// Predict adds the fourth, forecast-steered arm to every level. Off
	// (the default) keeps the three-arm run byte-identical to runs from
	// before the predictor existed.
	Predict bool
}

// PowerMgmt runs the three-way power-policy comparison across the
// configured utilization levels.
func PowerMgmt(cfg PowerMgmtConfig) (PowerMgmtResult, error) {
	levels := cfg.Levels
	if len(levels) == 0 {
		levels = []float64{0.1, 0.3, 0.6}
	}
	day := cfg.Day
	if day <= 0 {
		day = 2 * time.Hour
	}
	idle := cfg.IdleTimeout
	if idle <= 0 {
		idle = 15 * time.Second
	}
	capacity := model.ClusterThroughput(model.SBCCount, model.ARM, model.DefaultWorkerLink(model.ARM))
	var fns []string
	for _, f := range model.Functions() {
		fns = append(fns, f.Name)
	}
	// Generate each level's trace serially (cheap), then fan the expensive
	// replays — len(levels)×3 day-long sims — through the bounded pool.
	res := PowerMgmtResult{Day: day, IdleTimeout: idle, Levels: make([]PowerMgmtLevel, len(levels))}
	scheds := make([]replay.Schedule, len(levels))
	for i, u := range levels {
		rate := u * capacity
		sched, err := replay.Diurnal(replay.DiurnalConfig{
			Duration:       day,
			BaseRatePerMin: 0.5 * rate,
			PeakRatePerMin: 1.5 * rate,
			Functions:      fns,
			Seed:           DeriveSeed(cfg.Seed, i),
		})
		if err != nil {
			return PowerMgmtResult{}, err
		}
		scheds[i] = sched
		res.Levels[i] = PowerMgmtLevel{
			Utilization: u,
			RatePerMin:  sched.Rate(),
			Invocations: len(sched),
		}
	}
	sloEvery := cfg.SLOInterval
	if sloEvery <= 0 {
		sloEvery = 5 * time.Second
	}
	arms := []string{"per-job", "always-on", "managed"}
	if cfg.Predict {
		arms = append(arms, "predictive")
	}
	runs, err := RunParallel(Parallelism(cfg.Parallel), len(levels)*len(arms), func(i int) (PowerMgmtArm, error) {
		return runPowerArm(arms[i%len(arms)], scheds[i/len(arms)], day, cfg.Seed, idle, cfg.SLO, sloEvery)
	})
	if err != nil {
		return PowerMgmtResult{}, err
	}
	for i := range levels {
		lv := &res.Levels[i]
		lv.PerJob, lv.AlwaysOn, lv.Managed = runs[i*len(arms)], runs[i*len(arms)+1], runs[i*len(arms)+2]
		if cfg.Predict {
			lv.Predictive = runs[i*len(arms)+3]
		}
		if lv.AlwaysOn.JoulesPer > 0 {
			lv.SavingsVsAlwaysOn = 1 - lv.Managed.JoulesPer/lv.AlwaysOn.JoulesPer
			if cfg.Predict {
				lv.SavingsPredictive = 1 - lv.Predictive.JoulesPer/lv.AlwaysOn.JoulesPer
			}
		}
		if lv.PerJob.JoulesPer > 0 {
			lv.SavingsVsPerJob = 1 - lv.Managed.JoulesPer/lv.PerJob.JoulesPer
		}
	}
	return res, nil
}

// runPowerArm replays one trace into one power-policy arm and summarizes
// its energy bill.
func runPowerArm(arm string, sched replay.Schedule, day time.Duration, seed int64, idle time.Duration, slo []tsdb.Rule, sloEvery time.Duration) (PowerMgmtArm, error) {
	cfg := cluster.SimConfig{Seed: seed}
	predict := arm == "predictive"
	switch arm {
	case "always-on":
		cfg.DisableReboot = true
	case "managed", "predictive":
		cfg.Power = &powermgr.Policy{IdleTimeout: idle}
		if predict {
			// Damp pre-sleep thrash: keep one node of slack above the
			// forecast floor (plus half a node per floor level), trim at
			// most one node per tick, and only after the surplus has
			// persisted a tick — so a momentary forecast dip doesn't
			// cycle nodes the next burst re-boots.
			cfg.Power.PreSleepSlack = 1
			cfg.Power.PreSleepSlackFrac = 0.5
			cfg.Power.PreSleepMax = 1
			cfg.Power.PreSleepDebounce = 1
		}
		cfg.Policy = core.AssignEnergyAware
	}
	var store *tsdb.Store
	if slo != nil || predict {
		// The predictive arm needs telemetry regardless of SLO rules: the
		// store's arrival tracker is the forecaster's input signal.
		cfg.Telemetry = telemetry.New()
	}
	s, err := cluster.NewMicroFaaSSim(model.SBCCount, cfg)
	if err != nil {
		return PowerMgmtArm{}, err
	}
	var ctl *forecast.Controller
	if slo != nil || predict {
		store = tsdb.New(tsdb.Config{})
		if slo != nil {
			if err := store.SetRules(slo); err != nil {
				return PowerMgmtArm{}, err
			}
		}
		store.AddSource("", cfg.Telemetry.Registry())
		if predict {
			ctl, err = forecast.NewController(forecast.ControllerConfig{
				Store:   store,
				Manager: s.PowerMgr,
				Policy: forecast.Policy{
					Tick:       sloEvery,
					CycleTime:  model.MeanJobTime(model.ARM, model.DefaultWorkerLink(model.ARM)),
					Period:     day,
					MaxWorkers: model.SBCCount,
					Spare:      1,
				},
				Telemetry: cfg.Telemetry,
			})
			if err != nil {
				return PowerMgmtArm{}, err
			}
		}
		// No aggregator tick to piggyback on in an unsharded sim:
		// pre-schedule the scrape (and, for the predictive arm, the
		// forecast-controller tick) cadence across the whole trace.
		for t := sloEvery; t <= day; t += sloEvery {
			at := t
			s.Engine.At(at, func() {
				store.Scrape(at)
				if ctl != nil {
					ctl.Tick(at)
				}
			})
		}
	}
	if _, err := replay.Feed(core.SimRuntime{Engine: s.Engine}, s.Orch, sched); err != nil {
		return PowerMgmtArm{}, err
	}
	s.Engine.Run(day)
	s.Engine.RunAll() // drain the tail (and the managed arm's idle timers)

	out := PowerMgmtArm{Name: arm}
	var latSum time.Duration
	var lats []time.Duration
	for _, r := range s.Orch.Collector().Records() {
		if r.Err != "" {
			continue
		}
		out.Completed++
		latSum += r.Latency()
		lats = append(lats, r.Latency())
	}
	if out.Completed == 0 {
		return PowerMgmtArm{}, fmt.Errorf("experiments: power-mgmt %s arm completed nothing", arm)
	}
	out.MeanLatency = latSum / time.Duration(out.Completed)
	out.P99Latency = trace.Percentile(lats, 99)
	if ctl != nil {
		snap := ctl.Snapshot()
		out.ForecastError = snap.ErrorRatio
		out.Fallbacks = snap.Fallbacks
	}
	total := float64(s.Meter.TotalEnergy(s.Engine.Now()))
	out.JoulesPer = total / float64(out.Completed)
	out.MeanPowerW = total / s.Engine.Now().Seconds()
	for _, e := range s.GPIO.Events() {
		if e.From == power.Off {
			out.PowerOns++
		}
	}
	if store != nil {
		out.Alerts = store.AlertHistory()
		if out.Alerts == nil {
			out.Alerts = []telemetry.Event{}
		}
	}
	return out, nil
}

// WritePowerMgmt prints the power-management comparison.
func WritePowerMgmt(w io.Writer, r PowerMgmtResult) error {
	if _, err := fmt.Fprintf(w, "Power management: %v diurnal trace per level, %d-SBC cluster, idle timeout %v\n",
		r.Day, model.SBCCount, r.IdleTimeout); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "  %-5s %-10s %10s %11s %10s %12s %9s %8s\n",
		"util", "arm", "completed", "J/function", "mean-W", "mean-latency", "power-ons", "savings"); err != nil {
		return err
	}
	for _, lv := range r.Levels {
		for _, arm := range lv.arms() {
			savings := ""
			switch arm.Name {
			case "managed":
				savings = fmt.Sprintf("%.1f%%", 100*lv.SavingsVsAlwaysOn)
			case "predictive":
				savings = fmt.Sprintf("%.1f%%", 100*lv.SavingsPredictive)
			}
			if _, err := fmt.Fprintf(w, "  %-5.0f%% %-9s %10d %11.2f %10.3f %12s %9d %8s\n",
				100*lv.Utilization, arm.Name, arm.Completed, arm.JoulesPer, arm.MeanPowerW,
				arm.MeanLatency.Round(time.Millisecond), arm.PowerOns, savings); err != nil {
				return err
			}
		}
	}
	for _, lv := range r.Levels {
		p := lv.Predictive
		if p.Name == "" {
			continue
		}
		if _, err := fmt.Fprintf(w,
			"  %.0f%% predictive: p99 %s vs managed %s, forecast error %.3f (~%.1f%% MAPE), fallbacks %d\n",
			100*lv.Utilization, p.P99Latency.Round(time.Millisecond),
			lv.Managed.P99Latency.Round(time.Millisecond),
			p.ForecastError, 50*p.ForecastError, p.Fallbacks); err != nil {
			return err
		}
	}
	for _, lv := range r.Levels {
		for _, arm := range lv.arms() {
			if arm.Alerts == nil {
				continue
			}
			name := fmt.Sprintf("%.0f%% %s", 100*lv.Utilization, arm.Name)
			if err := WriteAlertTimeline(w, name, arm.Alerts); err != nil {
				return err
			}
		}
	}
	return nil
}
