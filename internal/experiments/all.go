package experiments

import (
	"bytes"
	"io"
)

// AllConfig sizes the full experiment suite behind `microfaas-sim all`.
type AllConfig struct {
	// InvocationsPerFunction for the fig3/headline/ablation runs
	// (default 100).
	InvocationsPerFunction int
	Seed                   int64
	// Parallel bounds the worker pool (<=0 = GOMAXPROCS, 1 = serial).
	// Sections render concurrently into per-section buffers and print in
	// suite order, and each section fans its own trials/sweep points
	// through the same pool, so output is byte-identical at any value.
	Parallel int
}

// WriteAll runs every experiment in the suite and prints each section in
// the canonical order, separated by blank lines — the `microfaas-sim all`
// report.
func WriteAll(w io.Writer, cfg AllConfig) error {
	n := cfg.InvocationsPerFunction
	if n <= 0 {
		n = 100
	}
	seed := cfg.Seed
	par := cfg.Parallel
	sections := []func(io.Writer) error{
		func(w io.Writer) error { return WriteFig1(w) },
		func(w io.Writer) error { return WriteTable1(w) },
		func(w io.Writer) error {
			rows, err := Fig3(Fig3Config{InvocationsPerFunction: n, Seed: seed, Parallel: par})
			if err != nil {
				return err
			}
			return WriteFig3(w, rows)
		},
		func(w io.Writer) error {
			res, err := Fig4(Fig4Config{Seed: seed, Parallel: par})
			if err != nil {
				return err
			}
			return WriteFig4(w, res)
		},
		func(w io.Writer) error {
			pts, err := Fig5(Fig5Config{Seed: seed, Parallel: par})
			if err != nil {
				return err
			}
			return WriteFig5(w, pts)
		},
		func(w io.Writer) error {
			res, err := Headline(HeadlineConfig{InvocationsPerFunction: n, Seed: seed, Parallel: par})
			if err != nil {
				return err
			}
			return WriteHeadline(w, res)
		},
		func(w io.Writer) error { return WriteTable2(w) },
		func(w io.Writer) error {
			res, err := RackScale(RackScaleConfig{Seed: seed, Parallel: par})
			if err != nil {
				return err
			}
			return WriteRackScale(w, res)
		},
		func(w io.Writer) error {
			pts, err := LoadSweep(LoadSweepConfig{Seed: seed, Parallel: par})
			if err != nil {
				return err
			}
			return WriteLoadSweep(w, pts)
		},
		func(w io.Writer) error {
			pts, err := KeepWarm(KeepWarmConfig{Seed: seed, Parallel: par})
			if err != nil {
				return err
			}
			return WriteKeepWarm(w, pts)
		},
		func(w io.Writer) error {
			res, err := Diurnal(DiurnalConfig{Seed: seed, Parallel: par})
			if err != nil {
				return err
			}
			return WriteDiurnal(w, res)
		},
		func(w io.Writer) error {
			res, err := PowerMgmt(PowerMgmtConfig{Seed: seed, Parallel: par})
			if err != nil {
				return err
			}
			return WritePowerMgmt(w, res)
		},
		func(w io.Writer) error {
			res, err := Sensitivity(SensitivityConfig{Seed: seed, Parallel: par})
			if err != nil {
				return err
			}
			return WriteSensitivity(w, res)
		},
		func(w io.Writer) error {
			rows, err := BootImpact(BootImpactConfig{Seed: seed, Parallel: par})
			if err != nil {
				return err
			}
			return WriteBootImpact(w, rows)
		},
		func(w io.Writer) error { return writeAblations(w, seed, n, par) },
	}
	// Render every section into its own buffer concurrently, then print in
	// suite order. Two levels of fan-out share the bounded pools: sections
	// here, trials/sweep points inside each section.
	bufs, err := RunParallel(Parallelism(par), len(sections), func(i int) (*bytes.Buffer, error) {
		var b bytes.Buffer
		if err := sections[i](&b); err != nil {
			return nil, err
		}
		return &b, nil
	})
	if err != nil {
		return err
	}
	for _, b := range bufs {
		if _, err := w.Write(b.Bytes()); err != nil {
			return err
		}
		if _, err := io.WriteString(w, "\n"); err != nil {
			return err
		}
	}
	return nil
}

// writeAblations prints the three ablation studies back to back.
func writeAblations(w io.Writer, seed int64, n, parallel int) error {
	crypto, err := AblationCryptoAccel(8, seed, n, parallel)
	if err != nil {
		return err
	}
	if err := WriteAblation(w, crypto); err != nil {
		return err
	}
	gige, err := AblationGigE(seed, n, parallel)
	if err != nil {
		return err
	}
	if err := WriteAblation(w, gige); err != nil {
		return err
	}
	noreboot, err := AblationNoReboot(seed, n, parallel)
	if err != nil {
		return err
	}
	return WriteAblation(w, noreboot)
}
