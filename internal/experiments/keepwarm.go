package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"microfaas/internal/cluster"
	"microfaas/internal/model"
	"microfaas/internal/trace"
)

// KeepWarm quantifies the warm-pool trade the paper's design refuses
// (Sec III-a argues for reboot-between-jobs isolation; conventional FaaS
// platforms instead keep workers warm to cut cold-start latency). The
// experiment drives the MicroFaaS cluster with the paper's open arrival
// process under several keep-warm windows and measures mean latency,
// energy per function, and the warm-start fraction.
//
// KeepWarm > 0 sacrifices the clean-environment guarantee for every
// warm-started job — the point of the experiment is to price that
// guarantee in latency and joules.
type KeepWarmPoint struct {
	// Window is the keep-warm duration (0 = the paper's policy).
	Window time.Duration
	// MeanLatency and P95Latency are end-to-end (queueing included).
	MeanLatency, P95Latency time.Duration
	// JoulesPerFunc is metered energy over completions.
	JoulesPerFunc float64
	// WarmFraction is the share of jobs that skipped the boot.
	WarmFraction float64
}

// KeepWarmConfig sizes the experiment.
type KeepWarmConfig struct {
	// Windows to test; default 0, 5s, 30s, 2m, ∞ (no-reboot).
	Windows []time.Duration
	// LoadFraction of cluster capacity to offer (default 0.5).
	LoadFraction float64
	// Duration is virtual observation time (default 20 min).
	Duration time.Duration
	Seed     int64
	// Parallel bounds the worker pool fanning windows across cores
	// (<=0 = GOMAXPROCS, 1 = serial).
	Parallel int
}

// KeepWarm runs the sweep on the 10-SBC MicroFaaS cluster.
func KeepWarm(cfg KeepWarmConfig) ([]KeepWarmPoint, error) {
	windows := cfg.Windows
	if windows == nil {
		windows = []time.Duration{0, 5 * time.Second, 30 * time.Second, 2 * time.Minute}
	}
	load := cfg.LoadFraction
	if load == 0 {
		load = 0.5
	}
	if load <= 0 || load >= 1 {
		return nil, fmt.Errorf("experiments: load fraction %v outside (0,1)", load)
	}
	duration := cfg.Duration
	if duration <= 0 {
		duration = 20 * time.Minute
	}
	return RunParallel(Parallelism(cfg.Parallel), len(windows), func(i int) (KeepWarmPoint, error) {
		return runKeepWarm(windows[i], load, duration, cfg.Seed)
	})
}

func runKeepWarm(window time.Duration, load float64, duration time.Duration, seed int64) (KeepWarmPoint, error) {
	s, err := cluster.NewMicroFaaSSim(model.SBCCount, cluster.SimConfig{Seed: seed, KeepWarm: window})
	if err != nil {
		return KeepWarmPoint{}, err
	}
	rate := load * model.PaperSBCThroughput / 60 // func/s
	interval := time.Duration(float64(time.Second) / rate)
	fns := model.Functions()
	stop, err := s.Orch.StartArrivals(interval, 1, func(rng *rand.Rand) (string, []byte) {
		return fns[rng.Intn(len(fns))].Name, nil
	})
	if err != nil {
		return KeepWarmPoint{}, err
	}
	s.Engine.Run(duration)
	stop()
	s.Engine.RunAll()

	recs := s.Orch.Collector().Records()
	var lats []time.Duration
	var sum time.Duration
	completed := 0
	for _, r := range recs {
		if r.Err != "" {
			continue
		}
		lats = append(lats, r.Latency())
		sum += r.Latency()
		completed++
	}
	if completed == 0 {
		return KeepWarmPoint{}, fmt.Errorf("experiments: keep-warm run completed nothing")
	}
	cold, warm := 0, 0
	for _, w := range s.Workers {
		cold += w.ColdStarts()
		warm += w.WarmStarts()
	}
	return KeepWarmPoint{
		Window:        window,
		MeanLatency:   sum / time.Duration(completed),
		P95Latency:    trace.Percentile(lats, 95),
		JoulesPerFunc: float64(s.Meter.TotalEnergy(s.Engine.Now())) / float64(completed),
		WarmFraction:  float64(warm) / float64(cold+warm),
	}, nil
}

// WriteKeepWarm prints the sweep.
func WriteKeepWarm(w io.Writer, pts []KeepWarmPoint) error {
	if _, err := fmt.Fprintf(w, "Keep-warm sweep (10 SBCs, 50%% load): pricing the reboot-isolation guarantee\n%-10s %12s %12s %10s %10s\n",
		"window", "mean-lat", "p95-lat", "J/func", "warm-%"); err != nil {
		return err
	}
	for _, p := range pts {
		label := p.Window.String()
		if p.Window == 0 {
			label = "off(paper)"
		}
		if _, err := fmt.Fprintf(w, "%-10s %12s %12s %10.2f %9.1f%%\n",
			label,
			p.MeanLatency.Round(time.Millisecond), p.P95Latency.Round(time.Millisecond),
			p.JoulesPerFunc, p.WarmFraction*100); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, "warm starts skip the 1.51 s boot (lower latency) but forfeit the clean-\nenvironment guarantee and pay idle draw while parked (higher J at low warm-hit rates).")
	return err
}
