package experiments

import (
	"strings"
	"testing"
	"time"
)

// shortDay keeps the test fast: a 4-hour "day" with modest rates.
func shortDay(t *testing.T, seed int64) DiurnalResult {
	t.Helper()
	res, err := Diurnal(DiurnalConfig{
		TroughPerMin: 5,
		PeakPerMin:   120,
		Day:          4 * time.Hour,
		Seed:         seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestDiurnalBothClustersCompleteTheDay(t *testing.T) {
	res := shortDay(t, 1)
	if res.Invocations == 0 {
		t.Fatal("empty trace")
	}
	if res.MF.Completed != res.Invocations || res.Conv.Completed != res.Invocations {
		t.Fatalf("completed %d / %d of %d invocations",
			res.MF.Completed, res.Conv.Completed, res.Invocations)
	}
}

func TestDiurnalEnergyAdvantageExceedsSaturated(t *testing.T) {
	// Under a realistic demand curve — long off-peak stretches — the
	// energy ratio must beat the saturated 5.6x headline: the conventional
	// rack idles at 60 W all night.
	res := shortDay(t, 1)
	ratio := res.Conv.KWh / res.MF.KWh
	if ratio < 5.6 {
		t.Fatalf("diurnal energy ratio = %.1fx, expected to exceed the saturated 5.6x", ratio)
	}
	if res.MF.JoulesPer >= res.Conv.JoulesPer {
		t.Fatal("MicroFaaS lost the per-function comparison")
	}
}

func TestDiurnalMeanPowerBounds(t *testing.T) {
	res := shortDay(t, 2)
	// The conventional cluster can never average below its idle floor...
	if res.Conv.MeanPowerW < 60 {
		t.Fatalf("conventional mean power %.1f W below the 60 W idle floor", res.Conv.MeanPowerW)
	}
	// ...while ten SBCs can never average above their all-busy ceiling.
	if res.MF.MeanPowerW > 19.6 {
		t.Fatalf("MicroFaaS mean power %.1f W above the 19.6 W ceiling", res.MF.MeanPowerW)
	}
	if res.MF.MeanPowerW <= 0 {
		t.Fatal("no MicroFaaS power recorded")
	}
}

func TestDiurnalDeterministicPerSeed(t *testing.T) {
	a, b := shortDay(t, 3), shortDay(t, 3)
	if a.Invocations != b.Invocations || a.MF.Completed != b.MF.Completed {
		t.Fatalf("same seed, different day: %+v vs %+v", a, b)
	}
}

func TestWriteDiurnal(t *testing.T) {
	res := shortDay(t, 1)
	var sb strings.Builder
	if err := WriteDiurnal(&sb, res); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Diurnal day", "microfaas", "conventional", "kWh/day"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}
