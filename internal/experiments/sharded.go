package experiments

import (
	"fmt"
	"io"
	"strconv"

	"microfaas/internal/cluster"
	"microfaas/internal/core"
	"microfaas/internal/model"
	"microfaas/internal/shard"
)

// ShardedRack measures the sharded control plane (internal/shard) at
// the scale one orchestrator cannot reach: a multi-rack MicroFaaS
// deployment split into N control-plane shards behind the
// consistent-hash load-balancer tier, sized past one million functions
// per minute. Four arms isolate the tier's two mechanisms:
//
//	uniform/full   bounded-load routing + stealing (the headline)
//	uniform/plain  plain consistent hashing, no aggregator
//	hotkey/plain   30% of traffic on one key, no relief — p99 blows up
//	hotkey/steal   same skew with work stealing — p99 recovers
//
// Every arm is an independent seeded simulation (one engine per arm,
// all shards of an arm inside it), so arms fan across cores with
// derived seeds and the report is byte-identical at any parallelism.
type ShardedRackConfig struct {
	// Shards is the control-plane shard count (default 64).
	Shards int
	// WorkersPerShard sizes each shard's SBC partition (default 1100;
	// 64 shards × 1100 SBCs ≈ 1.4M func/min of raw capacity).
	WorkersPerShard int
	// JobsPerWorker sets run length (default 4).
	JobsPerWorker int
	// KeySpace is the number of distinct routing keys for uniform
	// traffic (default 4096).
	KeySpace int
	// HotPermille is the share of hot-arm traffic pinned to a single
	// key, in tenths of a percent (default 300 = 30%).
	HotPermille int
	Seed        int64
	// Parallel bounds the worker pool running arms across cores
	// (<=0 = GOMAXPROCS, 1 = serial).
	Parallel int
}

// ShardedArm is one arm's aggregate result.
type ShardedArm struct {
	// Name identifies the arm (traffic / routing mode).
	Name string
	// Completed counts settled invocations; Errors failed ones.
	Completed, Errors int
	// FuncPerMin is completed work over the makespan (ramp and drain
	// tail included); SustainedPerMin is the mid-run completion rate
	// while every worker is busy — the capacity headline.
	FuncPerMin      float64
	SustainedPerMin float64
	// P50S/P99S are end-to-end latency percentiles in seconds.
	P50S, P99S float64
	// Stolen counts cross-shard migrations the aggregator made.
	Stolen int64
	// JoulesPerFunc is metered energy per completed invocation.
	JoulesPerFunc float64
	// MakespanS is the arm's virtual duration in seconds.
	MakespanS float64
}

// ShardedRackResult is the four-arm comparison.
type ShardedRackResult struct {
	// Shards and SBCs record the per-arm sizing.
	Shards, SBCs int
	// Arms holds the four arms in fixed order: uniform/full,
	// uniform/plain, hotkey/plain, hotkey/steal.
	Arms []ShardedArm
}

// shardedArmSpec fixes one arm's traffic pattern and plane config.
type shardedArmSpec struct {
	name  string
	hot   bool
	plane shard.Config
}

// shardedArms returns the four arm specs in report order.
func shardedArms() []shardedArmSpec {
	full := shard.Config{
		Steal:     shard.StealConfig{Enabled: true, MaxPerTick: 4096},
		Rebalance: shard.RebalanceConfig{Enabled: true},
	}
	plain := shard.Config{BoundFactor: -1}
	steal := shard.Config{
		BoundFactor: -1,
		Steal:       shard.StealConfig{Enabled: true, MaxPerTick: 4096},
	}
	return []shardedArmSpec{
		{name: "uniform/full", hot: false, plane: full},
		{name: "uniform/plain", hot: false, plane: plain},
		{name: "hotkey/plain", hot: true, plane: plain},
		{name: "hotkey/steal", hot: true, plane: steal},
	}
}

// ShardedRack runs the four arms (in parallel when configured) and
// reports throughput, tail latency, and steal volume per arm.
func ShardedRack(cfg ShardedRackConfig) (ShardedRackResult, error) {
	if cfg.Shards <= 0 {
		cfg.Shards = 64
	}
	if cfg.WorkersPerShard <= 0 {
		cfg.WorkersPerShard = 1100
	}
	if cfg.JobsPerWorker <= 0 {
		cfg.JobsPerWorker = 4
	}
	if cfg.KeySpace <= 0 {
		cfg.KeySpace = 4096
	}
	if cfg.HotPermille <= 0 {
		cfg.HotPermille = 300
	}
	res := ShardedRackResult{Shards: cfg.Shards, SBCs: cfg.Shards * cfg.WorkersPerShard}
	specs := shardedArms()
	arms, err := RunParallel(Parallelism(cfg.Parallel), len(specs), func(i int) (ShardedArm, error) {
		return runShardedArm(cfg, specs[i], DeriveSeed(cfg.Seed, i))
	})
	if err != nil {
		return ShardedRackResult{}, err
	}
	res.Arms = arms
	return res, nil
}

// runShardedArm builds one sharded sim, submits the arm's traffic
// open-loop (everything at virtual zero, like RunSuite), drains it, and
// summarizes.
func runShardedArm(cfg ShardedRackConfig, spec shardedArmSpec, seed int64) (ShardedArm, error) {
	s, err := cluster.NewShardedMicroFaaSSim(cfg.Shards, cfg.WorkersPerShard, cluster.SimConfig{
		Seed:   seed,
		Policy: core.AssignLeastLoaded,
	}, spec.plane)
	if err != nil {
		return ShardedArm{}, err
	}
	fns := model.Functions()
	total := cfg.Shards * cfg.WorkersPerShard * cfg.JobsPerWorker
	for j := 0; j < total; j++ {
		key := "u/" + strconv.Itoa(j%cfg.KeySpace)
		// The hot arms pin a fixed slice of traffic to one key,
		// deterministically: job j is hot iff j mod 1000 < HotPermille.
		if spec.hot && j%1000 < cfg.HotPermille {
			key = "hot"
		}
		s.Plane.Submit(key, fns[j%len(fns)].Name, nil, nil)
	}
	if err := s.Run(); err != nil {
		return ShardedArm{}, err
	}
	st := s.Stats()
	return ShardedArm{
		Name:            spec.name,
		Completed:       st.Completed,
		Errors:          st.Errors,
		FuncPerMin:      st.ThroughputPerMin,
		SustainedPerMin: st.SustainedPerMin,
		P50S:            st.P50.Seconds(),
		P99S:            st.P99.Seconds(),
		Stolen:          st.Stolen,
		JoulesPerFunc:   st.JoulesPerFunction,
		MakespanS:       st.MakespanS,
	}, nil
}

// WriteShardedRack prints the four-arm comparison.
func WriteShardedRack(w io.Writer, r ShardedRackResult) error {
	if _, err := fmt.Fprintf(w, `Sharded control plane (%d shards × %d SBCs = %d workers):
  arm              completed   func/min  sustained     p50 s     p99 s    stolen   J/func
`, r.Shards, r.SBCs/r.Shards, r.SBCs); err != nil {
		return err
	}
	for _, a := range r.Arms {
		if _, err := fmt.Fprintf(w, "  %-14s %10d %10.0f %10.0f %9.2f %9.2f %9d %8.2f\n",
			a.Name, a.Completed, a.FuncPerMin, a.SustainedPerMin, a.P50S, a.P99S, a.Stolen, a.JoulesPerFunc); err != nil {
			return err
		}
	}
	return nil
}
