package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"time"

	"microfaas/internal/cluster"
	"microfaas/internal/model"
)

// Sensitivity asks how much the headline conclusion depends on this
// repository's calibration. The per-function service times are fitted to
// the paper's aggregates (DESIGN.md §4); a reproduction should show that
// the 5.6× energy-efficiency verdict survives calibration error. Each
// trial independently rescales every function's ARM and x86 compute times
// by uniform factors in [1-Spread, 1+Spread] and re-measures the
// throughput-matched energy comparison.
type SensitivityResult struct {
	Trials int
	Spread float64
	// Gain distribution across trials (conventional J/func ÷ MicroFaaS
	// J/func at the paper's 10-SBC / 6-VM configurations).
	MinGain, MedianGain, MaxGain float64
	// TrialsBelowParity counts trials where the conclusion flipped
	// (gain ≤ 1) — should be zero for any plausible spread.
	TrialsBelowParity int
}

// SensitivityConfig sizes the Monte-Carlo run.
type SensitivityConfig struct {
	// Trials (default 30) and Spread (default 0.2 = ±20 %).
	Trials int
	Spread float64
	// InvocationsPerFunction per trial (default 20).
	InvocationsPerFunction int
	Seed                   int64
	// Parallel bounds the worker pool fanning trials across cores
	// (<=0 = GOMAXPROCS, 1 = serial). Results are identical at any value.
	Parallel int
}

// Sensitivity runs the Monte-Carlo perturbation study.
func Sensitivity(cfg SensitivityConfig) (SensitivityResult, error) {
	trials := cfg.Trials
	if trials <= 0 {
		trials = 30
	}
	spread := cfg.Spread
	if spread == 0 {
		spread = 0.2
	}
	if spread < 0 || spread >= 1 {
		return SensitivityResult{}, fmt.Errorf("experiments: spread %v outside [0,1)", spread)
	}
	inv := cfg.InvocationsPerFunction
	if inv <= 0 {
		inv = 20
	}
	// Each trial perturbs from its own derived-seed RNG stream (instead of
	// one RNG consumed sequentially across trials), so trials are
	// independent tasks: fanning them across cores cannot change any
	// trial's inputs, and serial and parallel runs agree exactly.
	gains, err := RunParallel(Parallelism(cfg.Parallel), trials, func(trial int) (float64, error) {
		rng := rand.New(rand.NewSource(DeriveSeed(cfg.Seed, trial)))
		specs := perturbSpecs(rng, spread)
		return measureGain(specs, inv, cfg.Seed+int64(trial))
	})
	if err != nil {
		return SensitivityResult{}, err
	}
	below := 0
	for _, gain := range gains {
		if gain <= 1 {
			below++
		}
	}
	sort.Float64s(gains)
	return SensitivityResult{
		Trials:            trials,
		Spread:            spread,
		MinGain:           gains[0],
		MedianGain:        gains[len(gains)/2],
		MaxGain:           gains[len(gains)-1],
		TrialsBelowParity: below,
	}, nil
}

// perturbSpecs rescales each function's compute times independently.
func perturbSpecs(rng *rand.Rand, spread float64) []model.FunctionSpec {
	specs := model.Functions()
	scale := func() float64 { return 1 + (rng.Float64()*2-1)*spread }
	for i := range specs {
		specs[i].WorkARM = time.Duration(float64(specs[i].WorkARM) * scale())
		specs[i].WorkX86 = time.Duration(float64(specs[i].WorkX86) * scale())
	}
	return specs
}

// measureGain runs both clusters with the perturbed tables and returns
// conventional J/func ÷ MicroFaaS J/func.
func measureGain(specs []model.FunctionSpec, inv int, seed int64) (float64, error) {
	mf, err := cluster.NewMicroFaaSSim(model.SBCCount, cluster.SimConfig{Seed: seed, Specs: specs})
	if err != nil {
		return 0, err
	}
	if _, err := mf.RunSuite(inv, nil); err != nil {
		return 0, err
	}
	conv, err := cluster.NewConventionalSim(model.VMCount, cluster.SimConfig{Seed: seed, Specs: specs})
	if err != nil {
		return 0, err
	}
	if _, err := conv.RunSuite(inv, nil); err != nil {
		return 0, err
	}
	mfJ := mf.Stats().JoulesPerFunction
	if mfJ == 0 {
		return 0, fmt.Errorf("experiments: sensitivity trial measured zero energy")
	}
	return conv.Stats().JoulesPerFunction / mfJ, nil
}

// WriteSensitivity prints the study.
func WriteSensitivity(w io.Writer, r SensitivityResult) error {
	_, err := fmt.Fprintf(w, `Calibration sensitivity: %d trials, every function's ARM and x86 compute
times independently rescaled by ±%.0f%%:
  energy-efficiency gain: min %.2fx, median %.2fx, max %.2fx (paper: 5.6x)
  trials where the conclusion flipped (gain <= 1): %d
`,
		r.Trials, r.Spread*100, r.MinGain, r.MedianGain, r.MaxGain, r.TrialsBelowParity)
	return err
}
