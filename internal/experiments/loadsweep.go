package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"microfaas/internal/cluster"
	"microfaas/internal/model"
	"microfaas/internal/trace"
)

// LoadSweep quantifies the energy-proportionality argument of Sec III-b
// under a realistic arrival process rather than saturation: both clusters
// receive the same Poisson-like open load (the paper's "job added to a
// random sampling of queues" process, Sec IV-D) at a fraction of their
// matched capacity, and we measure end-to-end latency (including queueing)
// and energy per function.
//
// The conventional cluster's rack server burns 60 W whether or not
// functions arrive, so its J/function explodes as load falls; the
// MicroFaaS cluster's nodes power down between jobs, so its J/function is
// nearly flat — this is the "nearly-linear energy-proportional computing"
// claim, measured.
type LoadSweepPoint struct {
	// LoadFraction is the offered load relative to matched capacity.
	LoadFraction float64
	// Offered and completed rates in func/min.
	OfferedPerMin float64

	// Per cluster: completions, mean and P95 end-to-end latency
	// (submission → result, including queue wait), and J/function.
	MFCompleted   int
	MFMeanLatency time.Duration
	MFP95Latency  time.Duration
	MFJoulesPer   float64
	ConvCompleted int
	ConvMeanLat   time.Duration
	ConvP95Lat    time.Duration
	ConvJoulesPer float64
}

// LoadSweepConfig sizes the sweep.
type LoadSweepConfig struct {
	// Fractions of matched capacity to offer (default 0.1..0.9).
	Fractions []float64
	// Window is the virtual observation time per point (default 20 min).
	Window time.Duration
	Seed   int64
	// Parallel bounds the worker pool fanning sweep points across cores
	// (<=0 = GOMAXPROCS, 1 = serial).
	Parallel int
}

// loadSweepRun is one cluster's measurement at one offered load.
type loadSweepRun struct {
	mean, p95 time.Duration
	completed int
	joulesPer float64
}

// LoadSweep runs both clusters under each offered load.
func LoadSweep(cfg LoadSweepConfig) ([]LoadSweepPoint, error) {
	fractions := cfg.Fractions
	if fractions == nil {
		fractions = []float64{0.1, 0.25, 0.5, 0.75, 0.9}
	}
	window := cfg.Window
	if window <= 0 {
		window = 20 * time.Minute
	}
	// Validate every fraction before fanning out, so a bad config fails
	// fast instead of racing valid points against the error.
	for _, f := range fractions {
		if f <= 0 || f >= 1 {
			return nil, fmt.Errorf("experiments: load fraction %v outside (0,1)", f)
		}
	}
	// 2 tasks per fraction: task 2i is the MicroFaaS cluster at fraction
	// i, task 2i+1 the conventional one.
	runs, err := RunParallel(Parallelism(cfg.Parallel), 2*len(fractions), func(i int) (loadSweepRun, error) {
		// Offered rate: a fraction of the SLOWER cluster's capacity, so
		// both clusters face an identical, feasible open load.
		capacity := model.PaperSBCThroughput // func/min; the matched pair's min
		rate := fractions[i/2] * capacity / 60
		var r loadSweepRun
		var err error
		r.mean, r.p95, r.completed, r.joulesPer, err = runOpenLoad(i%2 == 0, rate, window, cfg.Seed)
		return r, err
	})
	if err != nil {
		return nil, err
	}
	out := make([]LoadSweepPoint, 0, len(fractions))
	for i, f := range fractions {
		mf, cv := runs[2*i], runs[2*i+1]
		rate := f * model.PaperSBCThroughput / 60
		out = append(out, LoadSweepPoint{
			LoadFraction:  f,
			OfferedPerMin: rate * 60,
			MFCompleted:   mf.completed,
			MFMeanLatency: mf.mean,
			MFP95Latency:  mf.p95,
			MFJoulesPer:   mf.joulesPer,
			ConvCompleted: cv.completed,
			ConvMeanLat:   cv.mean,
			ConvP95Lat:    cv.p95,
			ConvJoulesPer: cv.joulesPer,
		})
	}
	return out, nil
}

// runOpenLoad drives one cluster with the paper's arrival process at the
// given rate for the window, then lets the queue drain.
func runOpenLoad(microfaas bool, ratePerSec float64, window time.Duration, seed int64) (mean, p95 time.Duration, completed int, joulesPer float64, err error) {
	var s *cluster.Sim
	if microfaas {
		s, err = cluster.NewMicroFaaSSim(model.SBCCount, cluster.SimConfig{Seed: seed})
	} else {
		s, err = cluster.NewConventionalSim(model.VMCount, cluster.SimConfig{Seed: seed})
	}
	if err != nil {
		return 0, 0, 0, 0, err
	}
	interval := time.Duration(float64(time.Second) / ratePerSec)
	fns := model.Functions()
	stop, err := s.Orch.StartArrivals(interval, 1, func(rng *rand.Rand) (string, []byte) {
		return fns[rng.Intn(len(fns))].Name, nil
	})
	if err != nil {
		return 0, 0, 0, 0, err
	}
	s.Engine.Run(window)
	stop()
	// Drain what's queued so every submission is measured.
	s.Engine.RunAll()

	recs := s.Orch.Collector().Records()
	var lats []time.Duration
	var sum time.Duration
	for _, r := range recs {
		if r.Err != "" {
			continue
		}
		lats = append(lats, r.Latency())
		sum += r.Latency()
		completed++
	}
	if completed == 0 {
		return 0, 0, 0, 0, fmt.Errorf("experiments: no completions at rate %.3f/s", ratePerSec)
	}
	mean = sum / time.Duration(completed)
	p95 = trace.Percentile(lats, 95)
	// Energy over the observation window only (the drain tail is workload
	// accounting, idle draw beyond it would penalize neither honestly).
	joulesPer = float64(s.Meter.TotalEnergy(s.Engine.Now())) / float64(completed)
	return mean, p95, completed, joulesPer, nil
}

// WriteLoadSweep prints the sweep.
func WriteLoadSweep(w io.Writer, pts []LoadSweepPoint) error {
	if _, err := fmt.Fprintf(w, "Load sweep: open arrivals at a fraction of matched capacity (%.0f func/min)\n", model.PaperSBCThroughput); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%-6s %10s | %12s %12s %8s | %12s %12s %8s\n",
		"load", "func/min", "mf-lat", "mf-p95", "mf-J/f", "conv-lat", "conv-p95", "conv-J/f"); err != nil {
		return err
	}
	for _, p := range pts {
		if _, err := fmt.Fprintf(w, "%-6.2f %10.1f | %12s %12s %8.2f | %12s %12s %8.2f\n",
			p.LoadFraction, p.OfferedPerMin,
			p.MFMeanLatency.Round(time.Millisecond), p.MFP95Latency.Round(time.Millisecond), p.MFJoulesPer,
			p.ConvMeanLat.Round(time.Millisecond), p.ConvP95Lat.Round(time.Millisecond), p.ConvJoulesPer); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, "MicroFaaS J/function stays near-flat with load (nodes power down);\nthe conventional rack's idle 60 W dominates at low load (Sec III-b, measured).")
	return err
}
