package experiments

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// shortPM keeps the test runs cheap: a 20-minute virtual day is long
// enough for idle power-downs and wakes to happen many times over.
func shortPM(seed int64, parallel int) PowerMgmtConfig {
	return PowerMgmtConfig{Day: 20 * time.Minute, Seed: seed, Parallel: parallel}
}

func TestPowerMgmtSavings(t *testing.T) {
	r, err := PowerMgmt(shortPM(1, 0))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Levels) != 3 {
		t.Fatalf("expected 3 levels, got %d", len(r.Levels))
	}
	for _, lv := range r.Levels {
		// Every arm must finish the whole trace: the manager may never
		// lose jobs.
		for _, arm := range []PowerMgmtArm{lv.PerJob, lv.AlwaysOn, lv.Managed} {
			if arm.Completed != lv.Invocations {
				t.Errorf("util %.0f%% %s: completed %d of %d invocations",
					100*lv.Utilization, arm.Name, arm.Completed, lv.Invocations)
			}
		}
		// The headline claim: at low-to-moderate utilization the manager
		// reclaims at least 20% of the always-on energy bill.
		if lv.Utilization <= 0.3 && lv.SavingsVsAlwaysOn < 0.20 {
			t.Errorf("util %.0f%%: managed saves only %.1f%% vs always-on (want >= 20%%)",
				100*lv.Utilization, 100*lv.SavingsVsAlwaysOn)
		}
		// Wake-on-demand must press PWR_BUT far less often than the
		// per-job power cycle, and at least once (the cluster starts off).
		if lv.Managed.PowerOns == 0 || lv.Managed.PowerOns >= lv.PerJob.PowerOns {
			t.Errorf("util %.0f%%: managed power-ons %d, per-job %d",
				100*lv.Utilization, lv.Managed.PowerOns, lv.PerJob.PowerOns)
		}
	}
}

func TestPowerMgmtDeterministicAcrossParallelism(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		runTwiceAndCompare(t, "powermgmt", func(p int) (PowerMgmtResult, error) {
			return PowerMgmt(shortPM(seed, p))
		})
	}
}

// TestPowerMgmtPredictiveDeterministicAcrossParallelism pins the
// four-arm predict-on run: the forecast controller's ticks, the tsdb
// scrapes, and the pre-sleep machinery all ride the virtual clock, so
// output is identical at any worker-pool size.
func TestPowerMgmtPredictiveDeterministicAcrossParallelism(t *testing.T) {
	for seed := int64(1); seed <= 2; seed++ {
		runTwiceAndCompare(t, "powermgmt-predict", func(p int) (PowerMgmtResult, error) {
			cfg := shortPM(seed, p)
			cfg.Predict = true
			return PowerMgmt(cfg)
		})
	}
}

// TestPowerMgmtPredictiveArm checks the fourth arm runs the whole trace
// and reports forecast accounting alongside its energy numbers.
func TestPowerMgmtPredictiveArm(t *testing.T) {
	cfg := shortPM(1, 0)
	cfg.Predict = true
	r, err := PowerMgmt(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, lv := range r.Levels {
		p := lv.Predictive
		if p.Name != "predictive" {
			t.Fatalf("util %.0f%%: predictive arm missing (%+v)", 100*lv.Utilization, p)
		}
		if p.Completed != lv.Invocations {
			t.Errorf("util %.0f%%: predictive completed %d of %d", 100*lv.Utilization, p.Completed, lv.Invocations)
		}
		if lv.SavingsPredictive <= 0 {
			t.Errorf("util %.0f%%: predictive savings %.3f, want > 0 vs always-on", 100*lv.Utilization, lv.SavingsPredictive)
		}
		if p.ForecastError < 0 || p.ForecastError > 2 {
			t.Errorf("util %.0f%%: forecast error %.3f outside sMAPE range [0,2]", 100*lv.Utilization, p.ForecastError)
		}
	}
}

func TestWritePowerMgmt(t *testing.T) {
	r, err := PowerMgmt(shortPM(detSeed, 0))
	if err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	if err := WritePowerMgmt(&b, r); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"Power management", "per-job", "always-on", "managed", "J/function", "savings"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}
