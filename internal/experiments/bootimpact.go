package experiments

import (
	"fmt"
	"io"
	"time"

	"microfaas/internal/bootos"
	"microfaas/internal/cluster"
	"microfaas/internal/model"
)

// BootImpact connects Fig 1 to the cluster-level results: for every stage
// of the worker-OS development timeline, it runs the 10-SBC MicroFaaS
// cluster with that stage's boot time and measures throughput and energy
// per function. It answers "what did each OS optimization buy?" — with the
// baseline 27.5 s boot the reboot-per-job architecture is hopeless
// (~2 func/min/node), and each optimization claws capacity back until the
// final 1.51 s boot reaches the paper's 200.6 func/min.
type BootImpactRow struct {
	// Stage label from Fig 1 ("baseline", "A: ...", ...).
	Stage string
	// Boot is the stage's wall-clock boot time.
	Boot time.Duration
	// ThroughputPerMin and JoulesPerFunc for the 10-SBC cluster rebooting
	// into this OS build on every job.
	ThroughputPerMin float64
	JoulesPerFunc    float64
}

// BootImpactConfig sizes the runs.
type BootImpactConfig struct {
	// InvocationsPerFunction per stage (default 10 — the slow early stages
	// make each job cycle tens of seconds).
	InvocationsPerFunction int
	Seed                   int64
	// Parallel bounds the worker pool fanning stages across cores
	// (<=0 = GOMAXPROCS, 1 = serial).
	Parallel int
}

// BootImpact sweeps the Fig 1 development stages.
func BootImpact(cfg BootImpactConfig) ([]BootImpactRow, error) {
	inv := cfg.InvocationsPerFunction
	if inv <= 0 {
		inv = 10
	}
	stages := bootos.Timeline(bootos.ARM)
	return RunParallel(Parallelism(cfg.Parallel), len(stages), func(i int) (BootImpactRow, error) {
		stage := stages[i]
		boot := stage.Profile.RealTime()
		s, err := cluster.NewMicroFaaSSim(model.SBCCount, cluster.SimConfig{
			Seed:     cfg.Seed,
			BootTime: boot,
		})
		if err != nil {
			return BootImpactRow{}, err
		}
		if _, err := s.RunSuite(inv, nil); err != nil {
			return BootImpactRow{}, err
		}
		st := s.Stats()
		return BootImpactRow{
			Stage:            stage.Label,
			Boot:             boot,
			ThroughputPerMin: st.ThroughputPerMin,
			JoulesPerFunc:    st.JoulesPerFunction,
		}, nil
	})
}

// WriteBootImpact prints the sweep.
func WriteBootImpact(w io.Writer, rows []BootImpactRow) error {
	if _, err := fmt.Fprintf(w, "Boot impact: cluster-level value of each Fig 1 OS optimization (10 SBCs)\n%-46s %8s %12s %10s\n",
		"stage", "boot", "func/min", "J/func"); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "%-46s %7.2fs %12.1f %10.2f\n",
			r.Stage, r.Boot.Seconds(), r.ThroughputPerMin, r.JoulesPerFunc); err != nil {
			return err
		}
	}
	first, last := rows[0], rows[len(rows)-1]
	_, err := fmt.Fprintf(w, "the OS work bought %.1fx throughput and %.1fx energy efficiency\n(reboot-per-job is only viable because the boot is fast — Sec III-a)\n",
		last.ThroughputPerMin/first.ThroughputPerMin,
		first.JoulesPerFunc/last.JoulesPerFunc)
	return err
}
