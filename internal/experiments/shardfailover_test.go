package experiments

import (
	"strings"
	"testing"
	"time"
)

// smallFailover keeps the acceptance shape (kill several shards mid-run
// under open-loop load) at a size the test suite can afford.
func smallFailover(parallel int) (ShardFailoverResult, error) {
	return ShardFailover(ShardFailoverConfig{
		Shards:          8,
		WorkersPerShard: 4,
		Kills:           2,
		Bursts:          60,
		BurstEvery:      250 * time.Millisecond,
		JobsPerBurst:    8,
		KeySpace:        32,
		Seed:            detSeed,
		Parallel:        parallel,
	})
}

// TestShardFailoverAcceptance is the PR's acceptance check at test
// scale: killing shards mid-run loses zero accepted invocations, every
// kill becomes a health-checker death, and throughput recovers to
// within 10% of the pre-kill rate once the dead shards' boards have
// re-homed onto survivors.
func TestShardFailoverAcceptance(t *testing.T) {
	res, err := smallFailover(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Arms) != 2 || res.Arms[0].Name != "static" || res.Arms[1].Name != "failover" {
		t.Fatalf("arms = %+v", res.Arms)
	}
	jobs := 60 * 8
	for _, a := range res.Arms {
		if a.Accepted != jobs {
			t.Fatalf("%s: accepted %d of %d submissions", a.Name, a.Accepted, jobs)
		}
		if a.Lost != 0 {
			t.Fatalf("%s: lost %d accepted invocations", a.Name, a.Lost)
		}
		if a.Completed != jobs || a.Errors != 0 {
			t.Fatalf("%s: completed %d errors %d, want %d/0", a.Name, a.Completed, a.Errors, jobs)
		}
		if a.PrePerMin <= 0 || a.PostPerMin <= 0 {
			t.Fatalf("%s: empty rate window (pre %.0f post %.0f)", a.Name, a.PrePerMin, a.PostPerMin)
		}
	}
	static, failover := res.Arms[0], res.Arms[1]
	if static.Deaths != 0 {
		t.Fatalf("static arm saw %d deaths", static.Deaths)
	}
	if failover.Deaths != res.Kills {
		t.Fatalf("failover arm: %d deaths, want %d", failover.Deaths, res.Kills)
	}
	if failover.Recovery < 0.9 {
		t.Fatalf("throughput recovered to only %.1f%% of the pre-kill rate", 100*failover.Recovery)
	}
	if failover.Stolen < static.Stolen {
		t.Fatalf("failover stole %d < static %d: death drains not counted?", failover.Stolen, static.Stolen)
	}

	var sb strings.Builder
	if err := WriteShardFailover(&sb, res); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"static", "failover", "recovery", "lost"} {
		if !strings.Contains(sb.String(), want) {
			t.Fatalf("report missing %q:\n%s", want, sb.String())
		}
	}
}

func TestShardFailoverValidates(t *testing.T) {
	if _, err := ShardFailover(ShardFailoverConfig{Shards: 4, Kills: 4}); err == nil {
		t.Fatal("killing every shard accepted")
	}
}

func TestDeterminismShardFailover(t *testing.T) {
	runTwiceAndCompare(t, "shardfailover", smallFailover)
}
