package experiments

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"microfaas/internal/telemetry"
	"microfaas/internal/tsdb"
)

// smallFailover keeps the acceptance shape (kill several shards mid-run
// under open-loop load) at a size the test suite can afford.
func smallFailover(parallel int) (ShardFailoverResult, error) {
	return ShardFailover(ShardFailoverConfig{
		Shards:          8,
		WorkersPerShard: 4,
		Kills:           2,
		Bursts:          60,
		BurstEvery:      250 * time.Millisecond,
		JobsPerBurst:    8,
		KeySpace:        32,
		Seed:            detSeed,
		Parallel:        parallel,
	})
}

// TestShardFailoverAcceptance is the PR's acceptance check at test
// scale: killing shards mid-run loses zero accepted invocations, every
// kill becomes a health-checker death, and throughput recovers to
// within 10% of the pre-kill rate once the dead shards' boards have
// re-homed onto survivors.
func TestShardFailoverAcceptance(t *testing.T) {
	res, err := smallFailover(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Arms) != 2 || res.Arms[0].Name != "static" || res.Arms[1].Name != "failover" {
		t.Fatalf("arms = %+v", res.Arms)
	}
	jobs := 60 * 8
	for _, a := range res.Arms {
		if a.Accepted != jobs {
			t.Fatalf("%s: accepted %d of %d submissions", a.Name, a.Accepted, jobs)
		}
		if a.Lost != 0 {
			t.Fatalf("%s: lost %d accepted invocations", a.Name, a.Lost)
		}
		if a.Completed != jobs || a.Errors != 0 {
			t.Fatalf("%s: completed %d errors %d, want %d/0", a.Name, a.Completed, a.Errors, jobs)
		}
		if a.PrePerMin <= 0 || a.PostPerMin <= 0 {
			t.Fatalf("%s: empty rate window (pre %.0f post %.0f)", a.Name, a.PrePerMin, a.PostPerMin)
		}
	}
	static, failover := res.Arms[0], res.Arms[1]
	if static.Deaths != 0 {
		t.Fatalf("static arm saw %d deaths", static.Deaths)
	}
	if failover.Deaths != res.Kills {
		t.Fatalf("failover arm: %d deaths, want %d", failover.Deaths, res.Kills)
	}
	if failover.Recovery < 0.9 {
		t.Fatalf("throughput recovered to only %.1f%% of the pre-kill rate", 100*failover.Recovery)
	}
	if failover.Stolen < static.Stolen {
		t.Fatalf("failover stole %d < static %d: death drains not counted?", failover.Stolen, static.Stolen)
	}

	var sb strings.Builder
	if err := WriteShardFailover(&sb, res); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"static", "failover", "recovery", "lost"} {
		if !strings.Contains(sb.String(), want) {
			t.Fatalf("report missing %q:\n%s", want, sb.String())
		}
	}
}

func TestShardFailoverValidates(t *testing.T) {
	if _, err := ShardFailover(ShardFailoverConfig{Shards: 4, Kills: 4}); err == nil {
		t.Fatal("killing every shard accepted")
	}
}

func TestDeterminismShardFailover(t *testing.T) {
	runTwiceAndCompare(t, "shardfailover", smallFailover)
}

// sloFailover drives the failover demo a notch over cluster capacity so
// the latency objective has a real violation to catch: the burn crosses
// threshold in the kill window and recovers once the backlog drains
// after the submission horizon.
func sloFailover(parallel int) (ShardFailoverResult, error) {
	return ShardFailover(ShardFailoverConfig{
		Shards:          8,
		WorkersPerShard: 4,
		Kills:           4,
		Bursts:          80,
		BurstEvery:      500 * time.Millisecond,
		JobsPerBurst:    7,
		KeySpace:        32,
		Seed:            detSeed,
		Parallel:        parallel,
		SLO: []tsdb.Rule{{
			Name: "latency-burn", Kind: tsdb.KindLatency,
			ThresholdS: 4.7, Target: 0.7,
			Windows: &tsdb.Windows{
				FastShort: tsdb.Duration(4 * time.Second), FastLong: tsdb.Duration(10 * time.Second), FastBurn: 1.5,
				SlowShort: tsdb.Duration(8 * time.Second), SlowLong: tsdb.Duration(20 * time.Second), SlowBurn: 1.2,
			},
		}},
	})
}

// TestShardFailoverSLOAlertTimeline is the PR's acceptance check for the
// alerting pipeline: with SLO rules installed, the failover arm's
// latency-burn alert fires during the 4-shard kill and resolves after
// recovery, and the timeline is identical serial vs parallel. Without
// rules the arms carry no timeline at all.
func TestShardFailoverSLOAlertTimeline(t *testing.T) {
	res, err := sloFailover(1)
	if err != nil {
		t.Fatal(err)
	}
	killMs := res.KillAtS * 1000
	for _, a := range res.Arms {
		if a.Alerts == nil {
			t.Fatalf("%s: SLO run returned a nil timeline", a.Name)
		}
	}
	failover := res.Arms[1]
	var firing, resolved []telemetry.Event
	for _, ev := range failover.Alerts {
		switch ev.Type {
		case telemetry.EventAlertFiring:
			firing = append(firing, ev)
		case telemetry.EventAlertResolved:
			resolved = append(resolved, ev)
		default:
			t.Fatalf("unexpected event type %q in timeline", ev.Type)
		}
		if ev.Function != "latency-burn" {
			t.Fatalf("timeline names rule %q, want latency-burn", ev.Function)
		}
	}
	if len(firing) == 0 || len(resolved) == 0 {
		t.Fatalf("failover timeline must both fire and resolve, got %d firing / %d resolved:\n%+v",
			len(firing), len(resolved), failover.Alerts)
	}
	// Fires during the kill: the first transition lands after the kills
	// begin and well before the submission horizon ends.
	if first := firing[0].AtMs; first < killMs || first > killMs+10_000 {
		t.Fatalf("first firing at %.2fs, want inside the kill window starting t=%.2fs", first/1000, killMs/1000)
	}
	// Resolves after recovery: the last transition is a resolution, after
	// every firing.
	last := failover.Alerts[len(failover.Alerts)-1]
	if last.Type != telemetry.EventAlertResolved {
		t.Fatalf("timeline ends %q, want a resolution:\n%+v", last.Type, failover.Alerts)
	}
	if last.AtMs <= firing[len(firing)-1].AtMs {
		t.Fatalf("final resolution at %.2fs does not follow the last firing at %.2fs",
			last.AtMs/1000, firing[len(firing)-1].AtMs/1000)
	}

	// Deterministic under the worker pool: the parallel run's timelines
	// (and aggregates) match the serial run exactly.
	par, err := sloFailover(0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, par) {
		t.Fatalf("serial and parallel SLO runs diverged:\nserial:   %+v\nparallel: %+v", res, par)
	}

	// No rules → no timeline, and the run itself is unchanged.
	bare, err := ShardFailover(ShardFailoverConfig{
		Shards: 8, WorkersPerShard: 4, Kills: 4, Bursts: 80,
		BurstEvery: 500 * time.Millisecond, JobsPerBurst: 7, KeySpace: 32,
		Seed: detSeed, Parallel: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range bare.Arms {
		if a.Alerts != nil {
			t.Fatalf("%s: run without rules grew a timeline", a.Name)
		}
	}
	if bare.Arms[1].Completed != res.Arms[1].Completed || bare.Arms[1].Stolen != res.Arms[1].Stolen {
		t.Fatalf("observing the run changed it: bare %+v vs slo %+v", bare.Arms[1], res.Arms[1])
	}
}
