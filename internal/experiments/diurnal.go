package experiments

import (
	"fmt"
	"io"
	"time"

	"microfaas/internal/cluster"
	"microfaas/internal/core"
	"microfaas/internal/model"
	"microfaas/internal/replay"
)

// Diurnal replays one synthetic day — a non-homogeneous Poisson trace that
// troughs overnight and peaks at noon — into both matched clusters and
// compares their daily energy bills. It is the cost-transparency argument
// of Sec III-c played out over a realistic demand curve: the MicroFaaS
// bill tracks the work, the conventional bill mostly tracks the clock.
type DiurnalResult struct {
	// Invocations in the day's trace and its mean/peak rates.
	Invocations  int
	MeanPerMin   float64
	PeakPerMin   float64
	TroughPerMin float64

	// Per cluster: completions, total energy (kWh), J/function, and mean
	// power over the day.
	MF, Conv DiurnalClusterResult
}

// DiurnalClusterResult is one cluster's day.
type DiurnalClusterResult struct {
	Completed  int
	KWh        float64
	JoulesPer  float64
	MeanPowerW float64
	// MeanLatency includes queueing.
	MeanLatency time.Duration
}

// DiurnalConfig sizes the day.
type DiurnalConfig struct {
	// TroughPerMin/PeakPerMin shape the demand curve. Defaults: 10 and
	// 180 func/min (peak ≈90 % of matched capacity).
	TroughPerMin, PeakPerMin float64
	// Day length (default 24 h of virtual time).
	Day  time.Duration
	Seed int64
	// Parallel bounds the worker pool running the two clusters' days
	// concurrently (<=0 = GOMAXPROCS, 1 = serial).
	Parallel int
}

// Diurnal runs the day on both clusters.
func Diurnal(cfg DiurnalConfig) (DiurnalResult, error) {
	trough := cfg.TroughPerMin
	if trough == 0 {
		trough = 10
	}
	peak := cfg.PeakPerMin
	if peak == 0 {
		peak = 180
	}
	day := cfg.Day
	if day <= 0 {
		day = 24 * time.Hour
	}
	var fns []string
	for _, f := range model.Functions() {
		fns = append(fns, f.Name)
	}
	sched, err := replay.Diurnal(replay.DiurnalConfig{
		Duration:       day,
		BaseRatePerMin: trough,
		PeakRatePerMin: peak,
		Functions:      fns,
		Seed:           cfg.Seed,
	})
	if err != nil {
		return DiurnalResult{}, err
	}
	res := DiurnalResult{
		Invocations:  len(sched),
		MeanPerMin:   sched.Rate(),
		PeakPerMin:   peak,
		TroughPerMin: trough,
	}
	// Both clusters replay the same (read-only) schedule on their own
	// engines; the two day-long sims are the experiment's dominant cost,
	// so they run concurrently.
	days, err := RunParallel(Parallelism(cfg.Parallel), 2, func(i int) (DiurnalClusterResult, error) {
		return replayDay(i == 0, sched, day, cfg.Seed)
	})
	if err != nil {
		return DiurnalResult{}, err
	}
	res.MF, res.Conv = days[0], days[1]
	return res, nil
}

func replayDay(microfaas bool, sched replay.Schedule, day time.Duration, seed int64) (DiurnalClusterResult, error) {
	var s *cluster.Sim
	var err error
	if microfaas {
		s, err = cluster.NewMicroFaaSSim(model.SBCCount, cluster.SimConfig{Seed: seed})
	} else {
		s, err = cluster.NewConventionalSim(model.VMCount, cluster.SimConfig{Seed: seed})
	}
	if err != nil {
		return DiurnalClusterResult{}, err
	}
	if _, err := replay.Feed(core.SimRuntime{Engine: s.Engine}, s.Orch, sched); err != nil {
		return DiurnalClusterResult{}, err
	}
	s.Engine.Run(day)
	s.Engine.RunAll() // drain the evening tail

	var out DiurnalClusterResult
	var latSum time.Duration
	for _, r := range s.Orch.Collector().Records() {
		if r.Err != "" {
			continue
		}
		out.Completed++
		latSum += r.Latency()
	}
	if out.Completed == 0 {
		return DiurnalClusterResult{}, fmt.Errorf("experiments: diurnal day completed nothing")
	}
	out.MeanLatency = latSum / time.Duration(out.Completed)
	total := float64(s.Meter.TotalEnergy(s.Engine.Now()))
	out.KWh = total / 3.6e6
	out.JoulesPer = total / float64(out.Completed)
	out.MeanPowerW = total / s.Engine.Now().Seconds()
	return out, nil
}

// WriteDiurnal prints the day-in-the-life comparison.
func WriteDiurnal(w io.Writer, r DiurnalResult) error {
	_, err := fmt.Fprintf(w, `Diurnal day: %d invocations (trough %.0f, peak %.0f, mean %.1f func/min)
  %-14s %10s %10s %12s %12s
  %-14s %10d %9.3f %11.2f %12s
  %-14s %10d %9.3f %11.2f %12s
  daily energy ratio (conventional/MicroFaaS): %.1fx
`,
		r.Invocations, r.TroughPerMin, r.PeakPerMin, r.MeanPerMin,
		"cluster", "completed", "kWh/day", "J/function", "mean-latency",
		"microfaas", r.MF.Completed, r.MF.KWh, r.MF.JoulesPer, r.MF.MeanLatency.Round(time.Millisecond),
		"conventional", r.Conv.Completed, r.Conv.KWh, r.Conv.JoulesPer, r.Conv.MeanLatency.Round(time.Millisecond),
		r.Conv.KWh/r.MF.KWh)
	return err
}
