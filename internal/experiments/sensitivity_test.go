package experiments

import (
	"strings"
	"testing"
)

func TestSensitivityVerdictSurvivesPerturbation(t *testing.T) {
	res, err := Sensitivity(SensitivityConfig{Trials: 12, Spread: 0.2, InvocationsPerFunction: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.TrialsBelowParity != 0 {
		t.Fatalf("%d of %d trials flipped the conclusion under ±20%% noise", res.TrialsBelowParity, res.Trials)
	}
	// The gain should stay in the same regime as the paper's 5.6x.
	if res.MinGain < 4 || res.MaxGain > 8 {
		t.Fatalf("gain range [%.2f, %.2f] left the plausible regime", res.MinGain, res.MaxGain)
	}
	if res.MedianGain < res.MinGain || res.MedianGain > res.MaxGain {
		t.Fatal("median outside [min,max]")
	}
}

func TestSensitivityWiderSpreadWidensRange(t *testing.T) {
	narrow, err := Sensitivity(SensitivityConfig{Trials: 10, Spread: 0.05, InvocationsPerFunction: 10, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	wide, err := Sensitivity(SensitivityConfig{Trials: 10, Spread: 0.4, InvocationsPerFunction: 10, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if (wide.MaxGain - wide.MinGain) <= (narrow.MaxGain - narrow.MinGain) {
		t.Fatalf("±40%% range %.3f not wider than ±5%% range %.3f",
			wide.MaxGain-wide.MinGain, narrow.MaxGain-narrow.MinGain)
	}
}

func TestSensitivityValidation(t *testing.T) {
	if _, err := Sensitivity(SensitivityConfig{Spread: 1.5}); err == nil {
		t.Fatal("spread >= 1 accepted")
	}
	if _, err := Sensitivity(SensitivityConfig{Spread: -0.1}); err == nil {
		t.Fatal("negative spread accepted")
	}
}

func TestWriteSensitivity(t *testing.T) {
	res, err := Sensitivity(SensitivityConfig{Trials: 3, InvocationsPerFunction: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteSensitivity(&sb, res); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Calibration sensitivity") {
		t.Fatalf("output:\n%s", sb.String())
	}
}
