package experiments

import (
	"fmt"
	"io"
	"time"

	"microfaas/internal/cluster"
	"microfaas/internal/model"
	"microfaas/internal/netsim"
)

// This file implements the ablations the paper's discussion motivates
// (Sec V): a cryptographic accelerator for the hash/AES kernels, a
// Gigabit-Ethernet NIC upgrade for the SBCs, and — as the flip side of the
// Sec III-a isolation argument — disabling the reboot between jobs.

// AblationResult compares baseline and modified MicroFaaS clusters.
type AblationResult struct {
	Name string
	// Baseline/Modified throughput (func/min) and energy (J/func) of the
	// 10-SBC cluster.
	BaselineThroughput, ModifiedThroughput float64
	BaselineJoules, ModifiedJoules         float64
	// FunctionDeltas lists the per-function mean runtime change for the
	// functions the ablation targets.
	FunctionDeltas []FunctionDelta
}

// FunctionDelta is one targeted function's before/after mean runtime.
type FunctionDelta struct {
	Function string
	Before   time.Duration
	After    time.Duration
}

// Speedup is the before/after throughput ratio (>1 = ablation helps).
func (r AblationResult) Speedup() float64 {
	if r.BaselineThroughput == 0 {
		return 0
	}
	return r.ModifiedThroughput / r.BaselineThroughput
}

// ablationArm is one side of an ablation pair: the run's aggregate stats
// plus its per-function means.
type ablationArm struct {
	stats cluster.SuiteStats
	byFn  map[string]time.Duration
}

// runPair measures the baseline cluster and a modified one — the two
// independent arms run on the parallel runner.
func runPair(name string, seed int64, invocations, parallel int, modified cluster.SimConfig, targets []string) (AblationResult, error) {
	if invocations <= 0 {
		invocations = 40
	}
	modified.Seed = seed
	arms, err := RunParallel(Parallelism(parallel), 2, func(i int) (ablationArm, error) {
		cfg := cluster.SimConfig{Seed: seed}
		if i == 1 {
			cfg = modified
		}
		s, err := cluster.NewMicroFaaSSim(model.SBCCount, cfg)
		if err != nil {
			return ablationArm{}, err
		}
		coll, err := s.RunSuite(invocations, nil)
		if err != nil {
			return ablationArm{}, err
		}
		byFn := map[string]time.Duration{}
		for _, st := range coll.ByFunction() {
			byFn[st.Function] = st.MeanTotal
		}
		return ablationArm{stats: s.Stats(), byFn: byFn}, nil
	})
	if err != nil {
		return AblationResult{}, err
	}
	baseSt, modSt := arms[0].stats, arms[1].stats
	res := AblationResult{
		Name:               name,
		BaselineThroughput: baseSt.ThroughputPerMin,
		ModifiedThroughput: modSt.ThroughputPerMin,
		BaselineJoules:     baseSt.JoulesPerFunction,
		ModifiedJoules:     modSt.JoulesPerFunction,
	}
	for _, fn := range targets {
		res.FunctionDeltas = append(res.FunctionDeltas, FunctionDelta{
			Function: fn, Before: arms[0].byFn[fn], After: arms[1].byFn[fn],
		})
	}
	return res, nil
}

// CryptoKernels are the functions a cryptographic accelerator offloads.
var CryptoKernels = []string{"CascSHA", "CascMD5", "AES128"}

// AblationCryptoAccel models adding a crypto accelerator to the SBC
// (Sec V: "adding a cryptographic accelerator might significantly reduce
// the runtime of CascSHA"): the crypto kernels' ARM compute time shrinks
// by the given factor.
func AblationCryptoAccel(speedup float64, seed int64, invocations, parallel int) (AblationResult, error) {
	if speedup <= 1 {
		return AblationResult{}, fmt.Errorf("experiments: accelerator speedup must exceed 1, got %v", speedup)
	}
	specs := model.Functions()
	targetSet := map[string]bool{}
	for _, n := range CryptoKernels {
		targetSet[n] = true
	}
	for i := range specs {
		if targetSet[specs[i].Name] {
			specs[i].WorkARM = time.Duration(float64(specs[i].WorkARM) / speedup)
		}
	}
	return runPair(fmt.Sprintf("crypto-accelerator %.0fx", speedup), seed, invocations, parallel,
		cluster.SimConfig{Specs: specs}, CryptoKernels)
}

// BulkTransferFunctions are the functions the NIC upgrade targets.
var BulkTransferFunctions = []string{"COSGet", "COSPut"}

// AblationGigE models upgrading the SBC NIC from Fast Ethernet to Gigabit
// (Sec V: "would likely reduce the overhead of functions like COSGet").
func AblationGigE(seed int64, invocations, parallel int) (AblationResult, error) {
	link := netsim.GigabitEthernet()
	return runPair("gigabit NIC upgrade", seed, invocations, parallel,
		cluster.SimConfig{Link: &link}, BulkTransferFunctions)
}

// AblationNoReboot disables the reboot between jobs, quantifying what the
// hardware-reset isolation guarantee of Sec III-a costs in throughput and
// energy. (The modified cluster sacrifices the clean-environment
// guarantee; this is the trade the paper's design explicitly refuses.)
func AblationNoReboot(seed int64, invocations, parallel int) (AblationResult, error) {
	return runPair("no reboot between jobs", seed, invocations, parallel,
		cluster.SimConfig{DisableReboot: true}, nil)
}

// WriteAblation prints one ablation's comparison.
func WriteAblation(w io.Writer, r AblationResult) error {
	if _, err := fmt.Fprintf(w, "Ablation: %s\n  throughput: %.1f -> %.1f func/min (%.2fx)\n  energy:     %.2f -> %.2f J/func\n",
		r.Name, r.BaselineThroughput, r.ModifiedThroughput, r.Speedup(),
		r.BaselineJoules, r.ModifiedJoules); err != nil {
		return err
	}
	for _, d := range r.FunctionDeltas {
		if _, err := fmt.Fprintf(w, "  %-12s %8.1f ms -> %8.1f ms\n",
			d.Function, ms(d.Before), ms(d.After)); err != nil {
			return err
		}
	}
	return nil
}
