// Package experiments regenerates every table and figure in the paper's
// evaluation (Sec V), plus the ablations DESIGN.md calls out. Each
// experiment has a structured-result function (used by the benchmarks and
// tests) and a Write* helper that prints rows the way the paper reports
// them (used by cmd/microfaas-sim).
package experiments

import (
	"fmt"
	"io"
	"math"
	"time"

	"microfaas/internal/bootos"
	"microfaas/internal/cluster"
	"microfaas/internal/model"
	"microfaas/internal/tco"
	"microfaas/internal/trace"
)

// ms renders a duration in fractional milliseconds for report rows.
func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// --- Fig 1: worker-OS boot time through development stages ---

// Fig1Row is one development stage's boot times on both platforms.
type Fig1Row struct {
	Label           string
	ARMReal, ARMCPU time.Duration
	X86Real, X86CPU time.Duration
}

// Fig1 returns the boot-time development timeline (Sec IV-A, Fig 1).
func Fig1() []Fig1Row {
	arm := bootos.Timeline(bootos.ARM)
	x86 := bootos.Timeline(bootos.X86)
	rows := make([]Fig1Row, len(arm))
	for i := range arm {
		rows[i] = Fig1Row{
			Label:   arm[i].Label,
			ARMReal: arm[i].Profile.RealTime(),
			ARMCPU:  arm[i].Profile.CPUTime(),
			X86Real: x86[i].Profile.RealTime(),
			X86CPU:  x86[i].Profile.CPUTime(),
		}
	}
	return rows
}

// WriteFig1 prints the Fig 1 series.
func WriteFig1(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "Fig 1: worker OS boot time by development stage\n%-45s %10s %10s %10s %10s\n",
		"stage", "arm-real", "arm-cpu", "x86-real", "x86-cpu"); err != nil {
		return err
	}
	for _, r := range Fig1() {
		if _, err := fmt.Fprintf(w, "%-45s %9.2fs %9.2fs %9.2fs %9.2fs\n",
			r.Label, r.ARMReal.Seconds(), r.ARMCPU.Seconds(),
			r.X86Real.Seconds(), r.X86CPU.Seconds()); err != nil {
			return err
		}
	}
	return nil
}

// --- Fig 3: per-function runtime split (Working vs Overhead) ---

// Fig3Row is one function's mean runtime split on both clusters.
type Fig3Row struct {
	Function string
	// MicroFaaS (10 SBCs) and Conventional (6 VMs) means.
	MFWorking, MFOverhead     time.Duration
	ConvWorking, ConvOverhead time.Duration
	// SpeedRatio is conventional total / MicroFaaS total: >1 means
	// MicroFaaS is faster, >0.5 means "more than half the speed".
	SpeedRatio float64
}

// Fig3Config sizes the experiment. The paper issues 1,000 invocations per
// function; sim runs accept smaller counts for speed.
type Fig3Config struct {
	InvocationsPerFunction int
	Seed                   int64
	// Parallel bounds the worker pool running the two clusters
	// concurrently (<=0 = GOMAXPROCS, 1 = serial).
	Parallel int
}

func (c Fig3Config) invocations() int {
	if c.InvocationsPerFunction <= 0 {
		return 100
	}
	return c.InvocationsPerFunction
}

// Fig3 runs both simulated clusters through the suite and reports the
// per-function runtime split. The two clusters are independent sims, so
// they run as two tasks on the parallel runner.
func Fig3(cfg Fig3Config) ([]Fig3Row, error) {
	colls, err := RunParallel(Parallelism(cfg.Parallel), 2, func(i int) (*trace.Collector, error) {
		var s *cluster.Sim
		var err error
		if i == 0 {
			s, err = cluster.NewMicroFaaSSim(model.SBCCount, cluster.SimConfig{Seed: cfg.Seed})
		} else {
			s, err = cluster.NewConventionalSim(model.VMCount, cluster.SimConfig{Seed: cfg.Seed})
		}
		if err != nil {
			return nil, err
		}
		return s.RunSuite(cfg.invocations(), nil)
	})
	if err != nil {
		return nil, err
	}
	return fig3Rows(colls[0], colls[1]), nil
}

func fig3Rows(mf, conv *trace.Collector) []Fig3Row {
	convStats := map[string]trace.FunctionStats{}
	for _, st := range conv.ByFunction() {
		convStats[st.Function] = st
	}
	var rows []Fig3Row
	for _, st := range mf.ByFunction() {
		cv := convStats[st.Function]
		row := Fig3Row{
			Function:     st.Function,
			MFWorking:    st.MeanExec,
			MFOverhead:   st.MeanOverhead,
			ConvWorking:  cv.MeanExec,
			ConvOverhead: cv.MeanOverhead,
		}
		if st.MeanTotal > 0 {
			row.SpeedRatio = float64(cv.MeanTotal) / float64(st.MeanTotal)
		}
		rows = append(rows, row)
	}
	return rows
}

// Fig3Counts summarizes the paper's Sec V statement: how many functions
// MicroFaaS runs faster, at more than half speed, and below half speed.
func Fig3Counts(rows []Fig3Row) (faster, atHalf, below int) {
	for _, r := range rows {
		switch {
		case r.SpeedRatio > 1:
			faster++
		case r.SpeedRatio > 0.5:
			atHalf++
		default:
			below++
		}
	}
	return
}

// WriteFig3 prints the Fig 3 table.
func WriteFig3(w io.Writer, rows []Fig3Row) error {
	if _, err := fmt.Fprintf(w, "Fig 3: mean runtime split (ms), MicroFaaS (10 SBCs) vs conventional (6 VMs)\n%-12s %12s %12s %12s %12s %8s\n",
		"function", "mf-working", "mf-overhead", "conv-working", "conv-ovh", "speed"); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "%-12s %12.1f %12.1f %12.1f %12.1f %7.2fx\n",
			r.Function, ms(r.MFWorking), ms(r.MFOverhead),
			ms(r.ConvWorking), ms(r.ConvOverhead), r.SpeedRatio); err != nil {
			return err
		}
	}
	faster, atHalf, below := Fig3Counts(rows)
	_, err := fmt.Fprintf(w, "MicroFaaS faster: %d | >half speed: %d | <half speed: %d (paper: 4 / 9 / 4)\n",
		faster, atHalf, below)
	return err
}

// --- Fig 4: conventional efficiency & throughput vs VM count ---

// Fig4Point is one VM-count sample.
type Fig4Point struct {
	VMs              int
	ThroughputPerMin float64
	JoulesPerFunc    float64
}

// Fig4Result is the sweep plus the MicroFaaS reference line.
type Fig4Result struct {
	Points []Fig4Point
	// MicroFaaSJoules is the 10-SBC cluster's J/function reference.
	MicroFaaSJoules float64
	// PeakVMs/PeakJoules locate the conventional cluster's best efficiency.
	PeakVMs    int
	PeakJoules float64
}

// Fig4Config sizes the sweep.
type Fig4Config struct {
	MaxVMs    int // default 24
	JobsPerVM int // default 60
	Seed      int64
	// Parallel bounds the worker pool fanning sweep points across cores
	// (<=0 = GOMAXPROCS, 1 = serial).
	Parallel int
}

// Fig4 sweeps the number of VMs on the rack server, measuring throughput
// and energy per function, and computes the MicroFaaS reference.
func Fig4(cfg Fig4Config) (Fig4Result, error) {
	maxVMs := cfg.MaxVMs
	if maxVMs <= 0 {
		maxVMs = 24
	}
	jobsPerVM := cfg.JobsPerVM
	if jobsPerVM <= 0 {
		jobsPerVM = 150
	}
	// Task i < maxVMs is the (i+1)-VM sweep point; the last task is the
	// MicroFaaS reference run. Points merge in index order and the peak is
	// found after the merge, so parallel and serial sweeps agree exactly.
	stats, err := RunParallel(Parallelism(cfg.Parallel), maxVMs+1, func(i int) (cluster.SuiteStats, error) {
		if i == maxVMs {
			mf, err := cluster.NewMicroFaaSSim(model.SBCCount, cluster.SimConfig{Seed: cfg.Seed})
			if err != nil {
				return cluster.SuiteStats{}, err
			}
			if _, err := mf.RunSuite(40, nil); err != nil {
				return cluster.SuiteStats{}, err
			}
			return mf.Stats(), nil
		}
		vms := i + 1
		s, err := cluster.NewConventionalSim(vms, cluster.SimConfig{Seed: cfg.Seed})
		if err != nil {
			return cluster.SuiteStats{}, err
		}
		// jobsPerVM invocations per worker, full suite mix.
		perFunction := vms * jobsPerVM / len(model.Functions())
		if perFunction < 1 {
			perFunction = 1
		}
		if _, err := s.RunSuite(perFunction, nil); err != nil {
			return cluster.SuiteStats{}, err
		}
		return s.Stats(), nil
	})
	if err != nil {
		return Fig4Result{}, err
	}
	var res Fig4Result
	res.PeakJoules = -1
	for i, st := range stats[:maxVMs] {
		vms := i + 1
		// Measured throughput: completions over makespan (captures the
		// saturation plateau, unlike per-worker cycle capacity).
		thpt := float64(st.Completed) / (st.MakespanS / 60)
		pt := Fig4Point{VMs: vms, ThroughputPerMin: thpt, JoulesPerFunc: st.JoulesPerFunction}
		res.Points = append(res.Points, pt)
		if res.PeakJoules < 0 || pt.JoulesPerFunc < res.PeakJoules {
			res.PeakJoules = pt.JoulesPerFunc
			res.PeakVMs = vms
		}
	}
	res.MicroFaaSJoules = stats[maxVMs].JoulesPerFunction
	return res, nil
}

// WriteFig4 prints the Fig 4 series.
func WriteFig4(w io.Writer, res Fig4Result) error {
	if _, err := fmt.Fprintf(w, "Fig 4: conventional cluster vs VM count (MicroFaaS reference: %.1f J/func)\n%-5s %16s %14s\n",
		res.MicroFaaSJoules, "vms", "func/min", "J/function"); err != nil {
		return err
	}
	for _, p := range res.Points {
		marker := ""
		if p.VMs == model.VMCount {
			marker = "  <- throughput-matched configuration"
		}
		if p.VMs == res.PeakVMs {
			marker = "  <- peak efficiency"
		}
		if _, err := fmt.Fprintf(w, "%-5d %16.1f %14.1f%s\n",
			p.VMs, p.ThroughputPerMin, p.JoulesPerFunc, marker); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "peak efficiency %.1f J/func at %d VMs (paper: 16.1 J/func at saturation)\n",
		res.PeakJoules, res.PeakVMs)
	return err
}

// --- Fig 5: energy-proportionality power sweep ---

// Fig5Point is cluster power with a given number of active workers.
type Fig5Point struct {
	ActiveWorkers     int
	MicroFaaSWatts    float64
	ConventionalWatts float64
}

// Fig5Config sizes the sweep.
type Fig5Config struct {
	MaxWorkers int           // default 10 (the evaluation cluster size)
	Window     time.Duration // averaging window (default 2 min virtual)
	Seed       int64
	// Parallel bounds the worker pool fanning sweep points across cores
	// (<=0 = GOMAXPROCS, 1 = serial).
	Parallel int
}

// Fig5 measures average cluster power while 0..MaxWorkers workers run
// continuously: the MicroFaaS cluster keeps its remaining nodes powered
// down, the conventional cluster keeps its remaining VMs idle on the
// always-on rack server.
func Fig5(cfg Fig5Config) ([]Fig5Point, error) {
	maxW := cfg.MaxWorkers
	if maxW <= 0 {
		maxW = model.SBCCount
	}
	window := cfg.Window
	if window <= 0 {
		window = 2 * time.Minute
	}
	// 2(maxW+1) independent runs: task 2n is the MicroFaaS cluster with n
	// busy workers, task 2n+1 the conventional one.
	watts, err := RunParallel(Parallelism(cfg.Parallel), 2*(maxW+1), func(i int) (float64, error) {
		return clusterPower(i%2 == 0, maxW, i/2, window, cfg.Seed)
	})
	if err != nil {
		return nil, err
	}
	out := make([]Fig5Point, 0, maxW+1)
	for n := 0; n <= maxW; n++ {
		out = append(out, Fig5Point{ActiveWorkers: n, MicroFaaSWatts: watts[2*n], ConventionalWatts: watts[2*n+1]})
	}
	return out, nil
}

// clusterPower runs a cluster of total workers with n kept busy for the
// window and returns mean power.
func clusterPower(microfaas bool, total, busy int, window time.Duration, seed int64) (float64, error) {
	var s *cluster.Sim
	var err error
	if microfaas {
		s, err = cluster.NewMicroFaaSSim(total, cluster.SimConfig{Seed: seed})
	} else {
		s, err = cluster.NewConventionalSim(total, cluster.SimConfig{Seed: seed})
	}
	if err != nil {
		return 0, err
	}
	// Enough queued work to keep each busy worker cycling past the window.
	ids := s.Orch.Workers()
	var shortest time.Duration = time.Hour
	link := model.DefaultWorkerLink(platformOf(microfaas))
	for _, f := range model.Functions() {
		if d := f.TotalTime(platformOf(microfaas), link); d < shortest {
			shortest = d
		}
	}
	jobs := int(window/shortest) + 4
	fns := model.Functions()
	for i := 0; i < busy; i++ {
		for j := 0; j < jobs; j++ {
			if _, err := s.Orch.SubmitTo(ids[i], fns[(i+j)%len(fns)].Name, nil); err != nil {
				return 0, err
			}
		}
	}
	s.Engine.Run(window)
	return float64(s.Meter.TotalEnergy(window)) / window.Seconds(), nil
}

func platformOf(microfaas bool) model.Platform {
	if microfaas {
		return model.ARM
	}
	return model.X86
}

// WriteFig5 prints the Fig 5 series.
func WriteFig5(w io.Writer, pts []Fig5Point) error {
	if _, err := fmt.Fprintf(w, "Fig 5: average cluster power vs active workers\n%-8s %18s %20s\n",
		"workers", "microfaas (W)", "conventional (W)"); err != nil {
		return err
	}
	for _, p := range pts {
		if _, err := fmt.Fprintf(w, "%-8d %18.2f %20.2f\n",
			p.ActiveWorkers, p.MicroFaaSWatts, p.ConventionalWatts); err != nil {
			return err
		}
	}
	return nil
}

// --- Headline: throughput-matched comparison (Sec V's key numbers) ---

// HeadlineResult collects the paper's headline measurements.
type HeadlineResult struct {
	SBCThroughputPerMin float64 // paper: 200.6
	VMThroughputPerMin  float64 // paper: 211.7
	MicroFaaSJoules     float64 // paper: 5.7
	ConventionalJoules  float64 // paper: 32.0
	EfficiencyGain      float64 // paper: 5.6x
}

// HeadlineConfig sizes the run (paper scale: 1,000 invocations/function).
type HeadlineConfig struct {
	InvocationsPerFunction int
	Seed                   int64
	// Parallel bounds the worker pool running the two clusters
	// concurrently (<=0 = GOMAXPROCS, 1 = serial).
	Parallel int
}

// Headline runs both throughput-matched clusters and reports the paper's
// headline metrics.
func Headline(cfg HeadlineConfig) (HeadlineResult, error) {
	inv := cfg.InvocationsPerFunction
	if inv <= 0 {
		inv = 100
	}
	stats, err := RunParallel(Parallelism(cfg.Parallel), 2, func(i int) (cluster.SuiteStats, error) {
		var s *cluster.Sim
		var err error
		if i == 0 {
			s, err = cluster.NewMicroFaaSSim(model.SBCCount, cluster.SimConfig{Seed: cfg.Seed})
		} else {
			s, err = cluster.NewConventionalSim(model.VMCount, cluster.SimConfig{Seed: cfg.Seed})
		}
		if err != nil {
			return cluster.SuiteStats{}, err
		}
		if _, err := s.RunSuite(inv, nil); err != nil {
			return cluster.SuiteStats{}, err
		}
		return s.Stats(), nil
	})
	if err != nil {
		return HeadlineResult{}, err
	}
	mfSt, convSt := stats[0], stats[1]
	return HeadlineResult{
		SBCThroughputPerMin: mfSt.ThroughputPerMin,
		VMThroughputPerMin:  convSt.ThroughputPerMin,
		MicroFaaSJoules:     mfSt.JoulesPerFunction,
		ConventionalJoules:  convSt.JoulesPerFunction,
		EfficiencyGain:      convSt.JoulesPerFunction / mfSt.JoulesPerFunction,
	}, nil
}

// WriteHeadline prints the headline comparison.
func WriteHeadline(w io.Writer, r HeadlineResult) error {
	_, err := fmt.Fprintf(w, `Headline (Sec V) — measured (paper):
  10-SBC throughput:   %6.1f func/min  (200.6)
  6-VM throughput:     %6.1f func/min  (211.7)
  MicroFaaS energy:    %6.2f J/func    (5.7)
  Conventional energy: %6.2f J/func    (32.0)
  Efficiency gain:     %6.2fx          (5.6x)
`, r.SBCThroughputPerMin, r.VMThroughputPerMin, r.MicroFaaSJoules,
		r.ConventionalJoules, r.EfficiencyGain)
	return err
}

// --- Table II ---

// Table2 returns the TCO comparison.
func Table2() ([]tco.Comparison, error) { return tco.TableII() }

// WriteTable2 prints Table II in the paper's layout.
func WriteTable2(w io.Writer) error {
	rows, err := Table2()
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "Table II: 5-year single-rack lifetime cost (USD)"); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%-10s %14s %14s %14s %14s\n",
		"expense", "ideal-conv", "ideal-mf", "real-conv", "real-mf"); err != nil {
		return err
	}
	ideal, realistic := rows[0], rows[1]
	// The paper's Total row sums the rounded cells above it; do the same
	// so the printed table matches Table II digit-for-digit.
	r := math.Round
	lines := []struct {
		name           string
		ic, im, rc, rm float64
	}{
		{"Compute", r(ideal.Conventional.Compute), r(ideal.MicroFaaS.Compute), r(realistic.Conventional.Compute), r(realistic.MicroFaaS.Compute)},
		{"Network", r(ideal.Conventional.Network), r(ideal.MicroFaaS.Network), r(realistic.Conventional.Network), r(realistic.MicroFaaS.Network)},
		{"Energy", r(ideal.Conventional.Energy), r(ideal.MicroFaaS.Energy), r(realistic.Conventional.Energy), r(realistic.MicroFaaS.Energy)},
	}
	lines = append(lines, struct {
		name           string
		ic, im, rc, rm float64
	}{"Total",
		lines[0].ic + lines[1].ic + lines[2].ic,
		lines[0].im + lines[1].im + lines[2].im,
		lines[0].rc + lines[1].rc + lines[2].rc,
		lines[0].rm + lines[1].rm + lines[2].rm,
	})
	for _, l := range lines {
		if _, err := fmt.Fprintf(w, "%-10s %14.0f %14.0f %14.0f %14.0f\n",
			l.name, l.ic, l.im, l.rc, l.rm); err != nil {
			return err
		}
	}
	_, err = fmt.Fprintf(w, "savings: %.1f%% (ideal), %.1f%% (realistic) — paper: 34.2%% / 32.5%%\n",
		ideal.Savings()*100, realistic.Savings()*100)
	return err
}
