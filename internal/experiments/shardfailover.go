package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"strconv"
	"time"

	"microfaas/internal/cluster"
	"microfaas/internal/core"
	"microfaas/internal/model"
	"microfaas/internal/shard"
	"microfaas/internal/telemetry"
	"microfaas/internal/tsdb"
)

// ShardFailover measures what dynamic shard membership costs and what
// it buys: a sharded MicroFaaS cluster takes timed open-loop traffic
// while several control-plane shards are killed mid-run (hosts lost,
// never revived — their boards re-home onto survivors). Two arms:
//
//	static    fixed membership, no failures — the baseline
//	failover  health-checked membership, Kills shards die at 30% of
//	          the submission window
//
// The claims under test: no accepted invocation is lost (queued work
// drains into survivors identity-intact, in-flight work settles), and
// throughput recovers to the pre-kill rate once the dead shards'
// worker partitions have re-homed. Both arms run the same submission
// schedule on the virtual clock, so their rate windows are directly
// comparable and every number is deterministic under the seed.
type ShardFailoverConfig struct {
	// Shards is the control-plane shard count (default 64).
	Shards int
	// WorkersPerShard sizes each shard's SBC partition (default 8).
	WorkersPerShard int
	// Kills is how many shards die mid-run (default 4).
	Kills int
	// Bursts and BurstEvery shape the open-loop schedule: Bursts
	// submission waves, one every BurstEvery of virtual time (defaults
	// 160 and 250ms — a 40s window).
	Bursts     int
	BurstEvery time.Duration
	// JobsPerBurst is the wave size (default Shards×WorkersPerShard/8).
	JobsPerBurst int
	// KeySpace is the number of distinct routing keys (default 256).
	KeySpace int
	Seed     int64
	// Parallel bounds the worker pool running arms across cores
	// (<=0 = GOMAXPROCS, 1 = serial).
	Parallel int
	// SLO, when set, enables per-shard telemetry plus an embedded
	// time-series store scraping on the aggregator tick, evaluates these
	// rules on every scrape, and reports each arm's alert timeline. Nil
	// keeps the run (and its output) byte-identical to an unobserved one.
	SLO []tsdb.Rule
}

// ShardFailoverArm is one arm's aggregate result.
type ShardFailoverArm struct {
	// Name identifies the arm: "static" or "failover".
	Name string
	// Accepted counts submissions the plane took; Lost is accepted
	// invocations that never settled (the headline: must be 0).
	Accepted, Lost int
	// Completed/Errors count settled invocations.
	Completed, Errors int
	// Deaths is how many shards the health checker declared dead.
	Deaths int
	// Stolen counts cross-shard migrations, death drains included.
	Stolen int64
	// PrePerMin/PostPerMin are completion rates in the pre-kill and
	// post-recovery windows; Recovery is their ratio (post/pre).
	PrePerMin, PostPerMin, Recovery float64
	// P99S is the end-to-end p99 latency over the whole run, seconds.
	P99S float64
	// JoulesPerFunc is metered energy per completed invocation.
	JoulesPerFunc float64
	// MakespanS is the arm's virtual duration in seconds.
	MakespanS float64
	// Alerts is the SLO alert timeline (firing/resolved transitions in
	// virtual-clock order). Non-nil exactly when the run had SLO rules.
	Alerts []telemetry.Event
}

// ShardFailoverResult is the two-arm comparison.
type ShardFailoverResult struct {
	// Shards, SBCs, and Kills record the sizing.
	Shards, SBCs, Kills int
	// KillAtS is when the kills land, in virtual seconds.
	KillAtS float64
	// Victims lists the killed shard indices in kill order.
	Victims []int
	// Arms holds static then failover.
	Arms []ShardFailoverArm
}

// ShardFailover runs both arms (in parallel when configured) and
// reports lost work, throughput recovery, tail latency, and energy.
func ShardFailover(cfg ShardFailoverConfig) (ShardFailoverResult, error) {
	if cfg.Shards <= 0 {
		cfg.Shards = 64
	}
	if cfg.WorkersPerShard <= 0 {
		cfg.WorkersPerShard = 8
	}
	if cfg.Kills <= 0 {
		cfg.Kills = 4
	}
	if cfg.Kills >= cfg.Shards {
		return ShardFailoverResult{}, fmt.Errorf("experiments: cannot kill %d of %d shards", cfg.Kills, cfg.Shards)
	}
	if cfg.Bursts <= 0 {
		cfg.Bursts = 160
	}
	if cfg.BurstEvery <= 0 {
		cfg.BurstEvery = 250 * time.Millisecond
	}
	if cfg.JobsPerBurst <= 0 {
		if cfg.JobsPerBurst = cfg.Shards * cfg.WorkersPerShard / 8; cfg.JobsPerBurst < 1 {
			cfg.JobsPerBurst = 1
		}
	}
	if cfg.KeySpace <= 0 {
		cfg.KeySpace = 256
	}
	horizon := time.Duration(cfg.Bursts) * cfg.BurstEvery
	killAt := horizon * 3 / 10
	// Victim choice draws from its own derived stream, so it is a pure
	// function of the seed — not of anything the arms do.
	victims := rand.New(rand.NewSource(DeriveSeed(cfg.Seed, 7331))).Perm(cfg.Shards)[:cfg.Kills]
	res := ShardFailoverResult{
		Shards:  cfg.Shards,
		SBCs:    cfg.Shards * cfg.WorkersPerShard,
		Kills:   cfg.Kills,
		KillAtS: killAt.Seconds(),
		Victims: victims,
	}
	arms, err := RunParallel(Parallelism(cfg.Parallel), 2, func(i int) (ShardFailoverArm, error) {
		return runShardFailoverArm(cfg, i == 1, victims, killAt, horizon, DeriveSeed(cfg.Seed, i))
	})
	if err != nil {
		return ShardFailoverResult{}, err
	}
	res.Arms = arms
	return res, nil
}

// runShardFailoverArm drives one arm: the shared timed submission
// schedule, plus — on the failover arm — the kill schedule.
func runShardFailoverArm(cfg ShardFailoverConfig, churn bool, victims []int, killAt, horizon time.Duration, seed int64) (ShardFailoverArm, error) {
	arm := ShardFailoverArm{Name: "static"}
	scfg := shard.Config{
		Steal: shard.StealConfig{Enabled: true, MaxPerTick: 4096},
	}
	if churn {
		arm.Name = "failover"
		scfg.Membership = shard.MembershipConfig{
			Enabled: true,
			OnDeath: func(int) { arm.Deaths++ },
		}
	}
	simCfg := cluster.SimConfig{
		Seed:   seed,
		Policy: core.AssignLeastLoaded,
	}
	if cfg.SLO != nil {
		simCfg.Telemetry = telemetry.New()
	}
	s, err := cluster.NewShardedMicroFaaSSim(cfg.Shards, cfg.WorkersPerShard, simCfg, scfg)
	if err != nil {
		return ShardFailoverArm{}, err
	}
	var store *tsdb.Store
	if cfg.SLO != nil {
		store = tsdb.New(tsdb.Config{})
		if err := store.SetRules(cfg.SLO); err != nil {
			return ShardFailoverArm{}, err
		}
		s.AttachTSDB(store)
	}
	fns := model.Functions()
	settled := 0
	for b := 0; b < cfg.Bursts; b++ {
		b := b
		s.Engine.At(time.Duration(b)*cfg.BurstEvery, func() {
			for j := 0; j < cfg.JobsPerBurst; j++ {
				n := b*cfg.JobsPerBurst + j
				key := "u/" + strconv.Itoa(n%cfg.KeySpace)
				id, _ := s.Plane.Submit(key, fns[n%len(fns)].Name, nil, func(core.Result) { settled++ })
				if id != 0 {
					arm.Accepted++
				}
			}
		})
	}
	if churn {
		// Kills land one aggregator interval apart — a rolling host loss,
		// not one simultaneous blackout.
		for i, si := range victims {
			s.ScheduleKill(killAt+time.Duration(i)*shard.DefaultStealInterval, si)
		}
	}
	if store != nil {
		// Tick-hook scrapes stop with the ticks once the backlog drains;
		// keep sampling past the horizon so the SLO engine sees the
		// recovered windows and records the resolution (3× covers a
		// saturated run's drain tail plus the longest demo window).
		// Same-instant overlaps with tick scrapes are no-ops.
		for t := horizon; t <= 3*horizon; t += 500 * time.Millisecond {
			at := t
			s.Engine.At(at, func() { store.Scrape(at) })
		}
	}
	if err := s.Run(); err != nil {
		return ShardFailoverArm{}, err
	}
	arm.Lost = arm.Accepted - settled
	st := s.Stats()
	arm.Completed = st.Completed
	arm.Errors = st.Errors
	arm.Stolen = st.Stolen
	arm.P99S = st.P99.Seconds()
	arm.JoulesPerFunc = st.JoulesPerFunction
	arm.MakespanS = st.MakespanS

	// Rate windows, fixed by the submission schedule so both arms use
	// identical intervals: pre-kill excludes the cold-start ramp,
	// post-recovery starts well after the kills to let re-homing finish.
	preLo, preHi := horizon/10, killAt
	postLo, postHi := horizon/2, horizon
	pre, post := 0, 0
	for _, o := range s.Orchs {
		for _, r := range o.Collector().Records() {
			if r.Err != "" {
				continue
			}
			if r.Finished >= preLo && r.Finished < preHi {
				pre++
			}
			if r.Finished >= postLo && r.Finished < postHi {
				post++
			}
		}
	}
	arm.PrePerMin = float64(pre) / (preHi - preLo).Minutes()
	arm.PostPerMin = float64(post) / (postHi - postLo).Minutes()
	if arm.PrePerMin > 0 {
		arm.Recovery = arm.PostPerMin / arm.PrePerMin
	}
	if store != nil {
		arm.Alerts = store.AlertHistory()
		if arm.Alerts == nil {
			arm.Alerts = []telemetry.Event{}
		}
	}
	return arm, nil
}

// WriteShardFailover prints the two-arm comparison.
func WriteShardFailover(w io.Writer, r ShardFailoverResult) error {
	if _, err := fmt.Fprintf(w, `Shard failover (%d shards × %d SBCs, %d shards killed at t=%.1fs, victims %v):
  arm        accepted  lost  deaths    stolen   pre/min  post/min  recovery     p99 s   J/func
`, r.Shards, r.SBCs/r.Shards, r.Kills, r.KillAtS, r.Victims); err != nil {
		return err
	}
	for _, a := range r.Arms {
		if _, err := fmt.Fprintf(w, "  %-9s %9d %5d %7d %9d %9.0f %9.0f %9.3f %9.2f %8.2f\n",
			a.Name, a.Accepted, a.Lost, a.Deaths, a.Stolen, a.PrePerMin, a.PostPerMin, a.Recovery, a.P99S, a.JoulesPerFunc); err != nil {
			return err
		}
	}
	for _, a := range r.Arms {
		if a.Alerts == nil {
			continue
		}
		if err := WriteAlertTimeline(w, a.Name, a.Alerts); err != nil {
			return err
		}
	}
	return nil
}

// WriteAlertTimeline prints one arm's SLO alert transitions in
// virtual-clock order (or a "(none)" marker, so a run with rules but no
// transitions is visibly distinct from a run without rules).
func WriteAlertTimeline(w io.Writer, arm string, alerts []telemetry.Event) error {
	if _, err := fmt.Fprintf(w, "  %s alert timeline:\n", arm); err != nil {
		return err
	}
	if len(alerts) == 0 {
		_, err := fmt.Fprintln(w, "    (none)")
		return err
	}
	for _, ev := range alerts {
		if _, err := fmt.Fprintf(w, "    t=%7.2fs %-14s %-20s %-5s %s\n",
			ev.AtMs/1000, ev.Type, ev.Function, ev.Worker, ev.Detail); err != nil {
			return err
		}
	}
	return nil
}
