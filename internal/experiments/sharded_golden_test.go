package experiments

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateShardedGolden = flag.Bool("update-sharded-golden", false, "regenerate testdata/shardedrack_golden.txt")

// TestShardedRackGoldenPR7 pins the churn-disabled sharded plane to the
// exact bytes PR 7 produced: the golden file was rendered before dynamic
// membership existed, so any drift here means the membership machinery
// leaked into the static path (an extra RNG draw, a changed event
// schedule, a reordered aggregator visit). Regenerate only with a
// deliberate, explained change: go test -run GoldenPR7 -update-sharded-golden.
func TestShardedRackGoldenPR7(t *testing.T) {
	var buf bytes.Buffer
	for seed := int64(1); seed <= 4; seed++ {
		r, err := ShardedRack(smallShardedCfg(seed, 0))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := WriteShardedRack(&buf, r); err != nil {
			t.Fatal(err)
		}
	}
	path := filepath.Join("testdata", "shardedrack_golden.txt")
	if *updateShardedGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d bytes to %s", buf.Len(), path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update-sharded-golden): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("churn-disabled sharded output drifted from the PR 7 golden\n--- got ---\n%s--- want ---\n%s", buf.Bytes(), want)
	}
}
