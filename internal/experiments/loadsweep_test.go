package experiments

import (
	"strings"
	"testing"
	"time"
)

func TestLoadSweepEnergyProportionality(t *testing.T) {
	pts, err := LoadSweep(LoadSweepConfig{
		Fractions: []float64{0.1, 0.5, 0.9},
		Window:    10 * time.Minute,
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("%d points", len(pts))
	}
	low, high := pts[0], pts[2]

	// The core claim: at low load the conventional cluster's fixed idle
	// draw dominates. Its J/function must blow up by several x from 90%
	// to 10% load, while MicroFaaS moves by well under 2x.
	convBlowup := low.ConvJoulesPer / high.ConvJoulesPer
	mfBlowup := low.MFJoulesPer / high.MFJoulesPer
	if convBlowup < 3 {
		t.Fatalf("conventional J/func blowup at low load = %.1fx, want >3x", convBlowup)
	}
	if mfBlowup > 2 {
		t.Fatalf("MicroFaaS J/func blowup = %.1fx, want <2x (energy proportionality)", mfBlowup)
	}
	// MicroFaaS must be cheaper per function at every load level.
	for _, p := range pts {
		if p.MFJoulesPer >= p.ConvJoulesPer {
			t.Fatalf("at load %.2f MicroFaaS %.1f J/f >= conventional %.1f",
				p.LoadFraction, p.MFJoulesPer, p.ConvJoulesPer)
		}
	}
}

func TestLoadSweepLatencyGrowsWithLoad(t *testing.T) {
	pts, err := LoadSweep(LoadSweepConfig{
		Fractions: []float64{0.25, 0.9},
		Window:    10 * time.Minute,
		Seed:      2,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Queueing: latency at 90% load must exceed latency at 25% on both
	// clusters (open-system M/G/1-ish behaviour).
	if pts[1].MFMeanLatency <= pts[0].MFMeanLatency {
		t.Fatalf("MicroFaaS latency did not grow with load: %v -> %v",
			pts[0].MFMeanLatency, pts[1].MFMeanLatency)
	}
	if pts[1].ConvMeanLat <= pts[0].ConvMeanLat {
		t.Fatalf("conventional latency did not grow with load: %v -> %v",
			pts[0].ConvMeanLat, pts[1].ConvMeanLat)
	}
	// P95 at least the mean, always.
	for _, p := range pts {
		if p.MFP95Latency < p.MFMeanLatency || p.ConvP95Lat < p.ConvMeanLat {
			t.Fatalf("P95 below mean at load %.2f", p.LoadFraction)
		}
	}
}

func TestLoadSweepCompletesOfferedLoad(t *testing.T) {
	window := 10 * time.Minute
	pts, err := LoadSweep(LoadSweepConfig{Fractions: []float64{0.5}, Window: window, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	p := pts[0]
	// Arrivals at interval I over window W produce ~W/I jobs; everything
	// offered must complete (the load is below capacity).
	expected := int(p.OfferedPerMin * window.Minutes())
	for _, got := range []int{p.MFCompleted, p.ConvCompleted} {
		if got < expected*9/10 || got > expected*11/10 {
			t.Fatalf("completed %d, offered ≈%d", got, expected)
		}
	}
}

func TestLoadSweepValidation(t *testing.T) {
	if _, err := LoadSweep(LoadSweepConfig{Fractions: []float64{0}}); err == nil {
		t.Fatal("zero load accepted")
	}
	if _, err := LoadSweep(LoadSweepConfig{Fractions: []float64{1.5}}); err == nil {
		t.Fatal("overload accepted")
	}
}

func TestWriteLoadSweep(t *testing.T) {
	pts, err := LoadSweep(LoadSweepConfig{Fractions: []float64{0.5}, Window: 5 * time.Minute, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteLoadSweep(&sb, pts); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Load sweep") || !strings.Contains(sb.String(), "0.50") {
		t.Fatalf("output:\n%s", sb.String())
	}
}
