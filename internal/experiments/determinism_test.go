package experiments

import (
	"bytes"
	"reflect"
	"testing"
)

// These are the PR's golden determinism tests: every experiment must
// produce results that are independent of the worker-pool size. A serial
// run (Parallel: 1) and a wide parallel run (Parallel: 8) of the same seed
// must be deep-equal, and two parallel runs must agree with each other —
// if scheduling order ever leaks into results, these fail.

const detSeed = 3

// runTwiceAndCompare invokes fn serially, then twice at Parallel: 8, and
// requires all three results to be deep-equal.
func runTwiceAndCompare[T any](t *testing.T, name string, fn func(parallel int) (T, error)) {
	t.Helper()
	serial, err := fn(1)
	if err != nil {
		t.Fatalf("%s serial: %v", name, err)
	}
	par1, err := fn(8)
	if err != nil {
		t.Fatalf("%s parallel: %v", name, err)
	}
	par2, err := fn(8)
	if err != nil {
		t.Fatalf("%s parallel (2nd): %v", name, err)
	}
	if !reflect.DeepEqual(serial, par1) {
		t.Fatalf("%s: serial and parallel results differ\nserial:   %+v\nparallel: %+v", name, serial, par1)
	}
	if !reflect.DeepEqual(par1, par2) {
		t.Fatalf("%s: two parallel runs differ\nfirst:  %+v\nsecond: %+v", name, par1, par2)
	}
}

func TestDeterminismFig3(t *testing.T) {
	runTwiceAndCompare(t, "fig3", func(p int) ([]Fig3Row, error) {
		return Fig3(Fig3Config{InvocationsPerFunction: 10, Seed: detSeed, Parallel: p})
	})
}

func TestDeterminismFig4(t *testing.T) {
	runTwiceAndCompare(t, "fig4", func(p int) (Fig4Result, error) {
		return Fig4(Fig4Config{Seed: detSeed, Parallel: p})
	})
}

func TestDeterminismFig5(t *testing.T) {
	runTwiceAndCompare(t, "fig5", func(p int) ([]Fig5Point, error) {
		return Fig5(Fig5Config{Seed: detSeed, Parallel: p})
	})
}

func TestDeterminismHeadline(t *testing.T) {
	runTwiceAndCompare(t, "headline", func(p int) (HeadlineResult, error) {
		return Headline(HeadlineConfig{InvocationsPerFunction: 10, Seed: detSeed, Parallel: p})
	})
}

func TestDeterminismSensitivity(t *testing.T) {
	runTwiceAndCompare(t, "sensitivity", func(p int) (SensitivityResult, error) {
		return Sensitivity(SensitivityConfig{Trials: 8, InvocationsPerFunction: 5, Seed: detSeed, Parallel: p})
	})
}

func TestDeterminismLoadSweep(t *testing.T) {
	runTwiceAndCompare(t, "loadsweep", func(p int) ([]LoadSweepPoint, error) {
		return LoadSweep(LoadSweepConfig{Seed: detSeed, Parallel: p})
	})
}

func TestDeterminismKeepWarm(t *testing.T) {
	runTwiceAndCompare(t, "keepwarm", func(p int) ([]KeepWarmPoint, error) {
		return KeepWarm(KeepWarmConfig{Seed: detSeed, Parallel: p})
	})
}

func TestDeterminismDiurnal(t *testing.T) {
	runTwiceAndCompare(t, "diurnal", func(p int) (DiurnalResult, error) {
		return Diurnal(DiurnalConfig{Seed: detSeed, Parallel: p})
	})
}

func TestDeterminismBootImpact(t *testing.T) {
	runTwiceAndCompare(t, "bootimpact", func(p int) ([]BootImpactRow, error) {
		return BootImpact(BootImpactConfig{Seed: detSeed, Parallel: p})
	})
}

func TestDeterminismRackScale(t *testing.T) {
	runTwiceAndCompare(t, "rackscale", func(p int) (RackScaleResult, error) {
		return RackScale(RackScaleConfig{Seed: detSeed, Parallel: p})
	})
}

func TestDeterminismAblations(t *testing.T) {
	runTwiceAndCompare(t, "ablation-crypto", func(p int) (AblationResult, error) {
		return AblationCryptoAccel(8, detSeed, 10, p)
	})
	runTwiceAndCompare(t, "ablation-gige", func(p int) (AblationResult, error) {
		return AblationGigE(detSeed, 10, p)
	})
	runTwiceAndCompare(t, "ablation-noreboot", func(p int) (AblationResult, error) {
		return AblationNoReboot(detSeed, 10, p)
	})
}

// TestDeterminismWriteAll is the end-to-end byte-compare: the full
// `microfaas-sim all` report rendered serially and at Parallel: 8 must be
// byte-identical (two levels of fan-out — sections and intra-section
// trials — both merge in index order).
func TestDeterminismWriteAll(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite render is slow; skipped in -short")
	}
	render := func(p int) []byte {
		t.Helper()
		var b bytes.Buffer
		if err := WriteAll(&b, AllConfig{InvocationsPerFunction: 10, Seed: detSeed, Parallel: p}); err != nil {
			t.Fatalf("WriteAll(parallel=%d): %v", p, err)
		}
		return b.Bytes()
	}
	serial := render(1)
	parallel := render(8)
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("`all` report differs between serial and parallel renders\nserial %d bytes, parallel %d bytes", len(serial), len(parallel))
	}
}
