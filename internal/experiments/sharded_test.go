package experiments

import (
	"bytes"
	"testing"
)

// smallShardedCfg keeps the four-arm experiment fast enough for the
// test suite while still exercising stealing and rebalancing.
func smallShardedCfg(seed int64, parallel int) ShardedRackConfig {
	return ShardedRackConfig{
		Shards:          4,
		WorkersPerShard: 12,
		JobsPerWorker:   3,
		KeySpace:        64,
		Seed:            seed,
		Parallel:        parallel,
	}
}

// TestShardedRackDeterministicAcrossParallelism renders the sharded
// report serially and at Parallel: 8 for several seeds and requires the
// bytes to match — the repo-wide contract that parallelism is an
// execution detail, never an input.
func TestShardedRackDeterministicAcrossParallelism(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		render := func(parallel int) []byte {
			r, err := ShardedRack(smallShardedCfg(seed, parallel))
			if err != nil {
				t.Fatalf("seed %d parallel %d: %v", seed, parallel, err)
			}
			var buf bytes.Buffer
			if err := WriteShardedRack(&buf, r); err != nil {
				t.Fatal(err)
			}
			return buf.Bytes()
		}
		serial, parallel := render(1), render(8)
		if !bytes.Equal(serial, parallel) {
			t.Fatalf("seed %d: serial and parallel sharded reports differ:\n--- serial ---\n%s--- parallel ---\n%s",
				seed, serial, parallel)
		}
	}
}

// TestShardedRackArms checks the experiment's qualitative claims at
// small scale: all arms complete everything, the hot-key/no-steal arm
// has the worst p99, and stealing pulls it back down.
func TestShardedRackArms(t *testing.T) {
	r, err := ShardedRack(smallShardedCfg(2, 0))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Arms) != 4 {
		t.Fatalf("%d arms", len(r.Arms))
	}
	byName := map[string]ShardedArm{}
	total := 4 * 12 * 3
	for _, a := range r.Arms {
		byName[a.Name] = a
		if a.Completed != total {
			t.Fatalf("arm %s completed %d of %d (errors %d)", a.Name, a.Completed, total, a.Errors)
		}
	}
	hotPlain, hotSteal := byName["hotkey/plain"], byName["hotkey/steal"]
	if hotPlain.Stolen != 0 {
		t.Fatalf("no-steal arm migrated %d jobs", hotPlain.Stolen)
	}
	if hotSteal.Stolen == 0 {
		t.Fatal("steal arm migrated nothing under hot-key skew")
	}
	if hotSteal.P99S >= hotPlain.P99S {
		t.Fatalf("stealing did not reduce hot-key p99: plain=%.2fs steal=%.2fs", hotPlain.P99S, hotSteal.P99S)
	}
	if full := byName["uniform/full"]; full.FuncPerMin <= 0 {
		t.Fatalf("uniform/full throughput %v", full.FuncPerMin)
	}
}
