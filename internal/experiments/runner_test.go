package experiments

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestParallelism(t *testing.T) {
	if got := Parallelism(4); got != 4 {
		t.Fatalf("Parallelism(4) = %d", got)
	}
	if got := Parallelism(1); got != 1 {
		t.Fatalf("Parallelism(1) = %d", got)
	}
	want := runtime.GOMAXPROCS(0)
	if got := Parallelism(0); got != want {
		t.Fatalf("Parallelism(0) = %d, want GOMAXPROCS %d", got, want)
	}
	if got := Parallelism(-3); got != want {
		t.Fatalf("Parallelism(-3) = %d, want GOMAXPROCS %d", got, want)
	}
}

func TestDeriveSeedDecorrelated(t *testing.T) {
	// Distinct (base, index) pairs must map to distinct seeds — adjacent
	// indices and adjacent bases alike.
	seen := map[int64][2]int64{}
	for base := int64(0); base < 8; base++ {
		for i := 0; i < 64; i++ {
			s := DeriveSeed(base, i)
			if prev, dup := seen[s]; dup {
				t.Fatalf("DeriveSeed collision: (%d,%d) and (%d,%d) both -> %d",
					base, i, prev[0], prev[1], s)
			}
			seen[s] = [2]int64{base, int64(i)}
		}
	}
	// And it must be a pure function.
	if DeriveSeed(42, 7) != DeriveSeed(42, 7) {
		t.Fatal("DeriveSeed is not deterministic")
	}
}

func TestRunParallelIndexOrder(t *testing.T) {
	const n = 100
	for _, workers := range []int{1, 2, 8, 200} {
		got, err := RunParallel(workers, n, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != n {
			t.Fatalf("workers=%d: len = %d", workers, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: got[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestRunParallelSerialParallelEquivalent(t *testing.T) {
	fn := func(i int) (string, error) { return fmt.Sprintf("task-%03d", i), nil }
	serial, err := RunParallel(1, 37, fn)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunParallel(8, 37, fn)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("index %d: serial %q != parallel %q", i, serial[i], parallel[i])
		}
	}
}

func TestRunParallelLowestIndexErrorWins(t *testing.T) {
	errLow := errors.New("low")
	errHigh := errors.New("high")
	for _, workers := range []int{1, 8} {
		_, err := RunParallel(workers, 50, func(i int) (int, error) {
			switch i {
			case 3:
				return 0, errLow
			case 40:
				return 0, errHigh
			}
			return i, nil
		})
		if !errors.Is(err, errLow) {
			t.Fatalf("workers=%d: err = %v, want lowest-index error %v", workers, err, errLow)
		}
	}
}

func TestRunParallelRunsEveryIndexOnce(t *testing.T) {
	const n = 500
	var calls [n]atomic.Int32
	if _, err := RunParallel(16, n, func(i int) (struct{}, error) {
		calls[i].Add(1)
		return struct{}{}, nil
	}); err != nil {
		t.Fatal(err)
	}
	for i := range calls {
		if c := calls[i].Load(); c != 1 {
			t.Fatalf("index %d ran %d times", i, c)
		}
	}
}

func TestRunParallelEmpty(t *testing.T) {
	got, err := RunParallel(8, 0, func(i int) (int, error) {
		t.Fatal("fn called for n=0")
		return 0, nil
	})
	if err != nil || len(got) != 0 {
		t.Fatalf("n=0: got %v, %v", got, err)
	}
}
