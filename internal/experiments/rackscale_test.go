package experiments

import (
	"strings"
	"testing"
)

func TestRackScaleSmall(t *testing.T) {
	// A scaled-down rack (fast in CI): 96 SBCs vs 4 servers × 16 VMs.
	res, err := RackScale(RackScaleConfig{SBCs: 96, Servers: 4, VMsPerServer: 16, JobsPerWorker: 6, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.SBCThroughput <= 0 || res.ServerThroughput <= 0 {
		t.Fatalf("throughputs = %.1f / %.1f", res.SBCThroughput, res.ServerThroughput)
	}
	// 96 SBCs ≈ 24 per server × 4 — the paper's Table II density. Under
	// this repository's model that lands near (within ~25% of) the
	// 4-server rack's saturated throughput.
	ratio := res.SBCThroughput / res.ServerThroughput
	if ratio < 0.6 || ratio > 1.4 {
		t.Fatalf("throughput ratio = %.2f, want near parity", ratio)
	}
	// The energy advantage must survive at rack scale (this is the whole
	// point of Table II).
	if res.SBCJoulesPerFunc >= res.ServerJoulesPerFunc {
		t.Fatalf("rack-scale energy: MicroFaaS %.2f J/func >= conventional %.2f",
			res.SBCJoulesPerFunc, res.ServerJoulesPerFunc)
	}
	if res.SBCPowerW >= res.ServerPowerW {
		t.Fatalf("rack-scale power: MicroFaaS %.0f W >= conventional %.0f W",
			res.SBCPowerW, res.ServerPowerW)
	}
	var sb strings.Builder
	if err := WriteRackScale(&sb, res); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "throughput ratio") {
		t.Fatal("rack-scale output malformed")
	}
}

func TestRackScaleDefaultsToTableIISizes(t *testing.T) {
	if testing.Short() {
		t.Skip("full 989-SBC rack in -short mode")
	}
	res, err := RackScale(RackScaleConfig{JobsPerWorker: 2, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.SBCs != 989 || res.Servers != 41 {
		t.Fatalf("defaults = %d SBCs / %d servers, want 989/41", res.SBCs, res.Servers)
	}
	// Thousands of workers simulated: sanity-check scale held up.
	if res.SBCThroughput < 10000 {
		t.Fatalf("989-SBC rack throughput = %.0f func/min, implausibly low", res.SBCThroughput)
	}
}

func TestRackScale10K(t *testing.T) {
	if testing.Short() {
		t.Skip("10,000-SBC rack in -short mode")
	}
	// The PR's dispatch-scalability target: a 10,000-SBC MicroFaaS rack
	// (the `rackscale10k` command's configuration, shortened to 2 jobs per
	// worker) must run to completion — 20,000 completions across 16 shards
	// — with the energy ordering intact.
	res, err := RackScale(RackScaleConfig{SBCs: 10000, Servers: 415, JobsPerWorker: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.SBCs != 10000 {
		t.Fatalf("SBCs = %d, want 10000", res.SBCs)
	}
	if res.SBCThroughput <= 0 || res.ServerThroughput <= 0 {
		t.Fatalf("throughputs = %.1f / %.1f", res.SBCThroughput, res.ServerThroughput)
	}
	if res.SBCJoulesPerFunc >= res.ServerJoulesPerFunc {
		t.Fatalf("10k-rack energy: MicroFaaS %.2f J/func >= conventional %.2f",
			res.SBCJoulesPerFunc, res.ServerJoulesPerFunc)
	}
}
