package experiments

import (
	"strings"
	"testing"

	"microfaas/internal/model"
)

func TestBootImpactMonotoneAndEndsAtPaper(t *testing.T) {
	rows, err := BootImpact(BootImpactConfig{InvocationsPerFunction: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 { // baseline + 9 optimizations
		t.Fatalf("%d stages", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].ThroughputPerMin < rows[i-1].ThroughputPerMin {
			t.Fatalf("stage %q lowered throughput (%.1f -> %.1f)",
				rows[i].Stage, rows[i-1].ThroughputPerMin, rows[i].ThroughputPerMin)
		}
		if rows[i].JoulesPerFunc > rows[i-1].JoulesPerFunc {
			t.Fatalf("stage %q raised energy", rows[i].Stage)
		}
	}
	final := rows[len(rows)-1]
	if final.ThroughputPerMin < model.PaperSBCThroughput*0.97 ||
		final.ThroughputPerMin > model.PaperSBCThroughput*1.03 {
		t.Fatalf("final stage throughput = %.1f, want ≈%.1f", final.ThroughputPerMin, model.PaperSBCThroughput)
	}
	// The architectural point: with the unoptimized boot, MicroFaaS would
	// cost MORE energy per function than the conventional cluster.
	if rows[0].JoulesPerFunc <= model.PaperConventionalJoulesPerFunc {
		t.Fatalf("baseline-boot energy %.1f J/func unexpectedly beats conventional %.1f — the OS work should be load-bearing",
			rows[0].JoulesPerFunc, model.PaperConventionalJoulesPerFunc)
	}
}

func TestWriteBootImpact(t *testing.T) {
	rows, err := BootImpact(BootImpactConfig{InvocationsPerFunction: 5, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteBootImpact(&sb, rows); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"baseline", "falcon", "bought"} {
		if !strings.Contains(sb.String(), want) {
			t.Fatalf("output missing %q:\n%s", want, sb.String())
		}
	}
}
