package experiments

import (
	"fmt"
	"io"

	"microfaas/internal/cluster"
	"microfaas/internal/model"
	"microfaas/internal/power"
	"microfaas/internal/tco"
)

// RackScale simulates the hypothetical racks behind Table II — 989 SBCs
// versus 41 conventional servers — and measures whether they really are
// throughput-equivalent under this repository's calibrated model, along
// with their power draw under load. The paper *estimates* the 989-node
// sizing; this experiment checks the estimate end-to-end with thousands of
// concurrently simulated workers.
type RackScaleResult struct {
	// MicroFaaS rack.
	SBCs             int
	SBCThroughput    float64 // func/min
	SBCPowerW        float64 // mean cluster power under full load, incl. ToR switches
	SBCJoulesPerFunc float64
	// Conventional rack.
	Servers             int
	VMsPerServer        int
	ServerThroughput    float64
	ServerPowerW        float64
	ServerJoulesPerFunc float64
}

// RackScaleConfig sizes the runs.
type RackScaleConfig struct {
	// SBCs (default 989) and Servers (default 41) follow Table II.
	SBCs, Servers int
	// VMsPerServer defaults to the saturation point (16).
	VMsPerServer int
	// JobsPerWorker sets run length (default 8).
	JobsPerWorker int
	Seed          int64
	// Shards splits each rack into independent sub-simulations (default
	// 16, clamped to the node count). MicroFaaS SBCs never interact and
	// conventional servers only couple VMs on the same host, so sharding
	// by node group is exact, not an approximation. The shard count is
	// fixed by the config — never by Parallel — so the report is
	// byte-identical at any parallelism.
	Shards int
	// Parallel bounds the worker pool running shards across cores
	// (<=0 = GOMAXPROCS, 1 = serial).
	Parallel int
}

// rackShardStats is the subset of cluster.SuiteStats a rack merge needs.
type rackShardStats struct {
	completed int
	energyJ   float64
	makespanS float64
}

// RackScale runs both racks to completion and reports throughput and
// power. Switch power (Appendix: 40.87 W per 48 ports) is added to both
// racks' totals, as the paper's TCO energy row does.
//
// Each rack is sharded into independent sub-simulations that run on the
// parallel runner with derived per-shard seeds; shard results merge in
// index order (completions and energy sum, the rack makespan is the
// slowest shard's).
func RackScale(cfg RackScaleConfig) (RackScaleResult, error) {
	res := RackScaleResult{
		SBCs:         cfg.SBCs,
		Servers:      cfg.Servers,
		VMsPerServer: cfg.VMsPerServer,
	}
	if res.SBCs <= 0 {
		res.SBCs = tco.PaperMicroFaaSNodes
	}
	if res.Servers <= 0 {
		res.Servers = tco.PaperConventionalNodes
	}
	if res.VMsPerServer <= 0 {
		res.VMsPerServer = 16 // the Fig 4 saturation knee
	}
	jobs := cfg.JobsPerWorker
	if jobs <= 0 {
		jobs = 8
	}
	shards := cfg.Shards
	if shards <= 0 {
		shards = 16
	}
	assumptions := tco.PaperAssumptions()
	switchW := func(nodes int) float64 {
		return float64(tco.Switches(nodes, assumptions)) * float64(power.DefaultSwitchModel().Power())
	}
	workers := Parallelism(cfg.Parallel)

	// MicroFaaS rack: shard the SBCs. Shard i seeds its own engine with
	// DeriveSeed(seed, i), so shard streams are decorrelated and stable.
	mfShards := shards
	if mfShards > res.SBCs {
		mfShards = res.SBCs
	}
	mfStats, err := RunParallel(workers, mfShards, func(i int) (rackShardStats, error) {
		nodes := shardSize(res.SBCs, mfShards, i)
		s, err := cluster.NewMicroFaaSSim(nodes, cluster.SimConfig{Seed: DeriveSeed(cfg.Seed, i)})
		if err != nil {
			return rackShardStats{}, err
		}
		// jobs per worker ≈ jobsPerFunction×17/nodes → jobsPerFunction = jobs×nodes/17.
		perFunction := jobs * nodes / len(model.Functions())
		if perFunction < 1 {
			perFunction = 1
		}
		if _, err := s.RunSuite(perFunction, nil); err != nil {
			return rackShardStats{}, err
		}
		st := s.Stats()
		return rackShardStats{completed: st.Completed, energyJ: st.TotalEnergyJ, makespanS: st.MakespanS}, nil
	})
	if err != nil {
		return RackScaleResult{}, err
	}
	mfSt := mergeRackShards(mfStats)
	res.SBCThroughput = float64(mfSt.completed) / (mfSt.makespanS / 60)
	res.SBCPowerW = mfSt.energyJ/mfSt.makespanS + switchW(res.SBCs)
	res.SBCJoulesPerFunc = (mfSt.energyJ + switchW(res.SBCs)*mfSt.makespanS) / float64(mfSt.completed)

	// Conventional rack: shard by server, since VMs share a host's cores
	// but servers share nothing. Shard seeds are offset so the two racks
	// never reuse a stream.
	convShards := shards
	if convShards > res.Servers {
		convShards = res.Servers
	}
	convStats, err := RunParallel(workers, convShards, func(i int) (rackShardStats, error) {
		servers := shardSize(res.Servers, convShards, i)
		s, err := cluster.NewConventionalRackSim(servers, res.VMsPerServer, cluster.SimConfig{Seed: DeriveSeed(cfg.Seed, 1<<16+i)})
		if err != nil {
			return rackShardStats{}, err
		}
		vms := servers * res.VMsPerServer
		perFunction := jobs * vms / len(model.Functions())
		if perFunction < 1 {
			perFunction = 1
		}
		if _, err := s.RunSuite(perFunction, nil); err != nil {
			return rackShardStats{}, err
		}
		st := s.Stats()
		return rackShardStats{completed: st.Completed, energyJ: st.TotalEnergyJ, makespanS: st.MakespanS}, nil
	})
	if err != nil {
		return RackScaleResult{}, err
	}
	convSt := mergeRackShards(convStats)
	res.ServerThroughput = float64(convSt.completed) / (convSt.makespanS / 60)
	res.ServerPowerW = convSt.energyJ/convSt.makespanS + switchW(res.Servers)
	res.ServerJoulesPerFunc = (convSt.energyJ + switchW(res.Servers)*convSt.makespanS) / float64(convSt.completed)
	return res, nil
}

// shardSize distributes n nodes over k shards as evenly as possible
// (the first n%k shards get one extra).
func shardSize(n, k, i int) int {
	size := n / k
	if i < n%k {
		size++
	}
	return size
}

// mergeRackShards folds shard results in index order: completions and
// energy sum; the rack's makespan is the slowest shard's (all shards
// start at virtual zero).
func mergeRackShards(shards []rackShardStats) rackShardStats {
	var out rackShardStats
	for _, s := range shards {
		out.completed += s.completed
		out.energyJ += s.energyJ
		if s.makespanS > out.makespanS {
			out.makespanS = s.makespanS
		}
	}
	return out
}

// WriteRackScale prints the rack-scale comparison.
func WriteRackScale(w io.Writer, r RackScaleResult) error {
	_, err := fmt.Fprintf(w, `Rack scale (Table II's throughput-equivalence assumption, measured):
  MicroFaaS rack:     %4d SBCs                 %10.0f func/min  %8.0f W  %6.2f J/func
  Conventional rack:  %4d servers × %2d VMs     %10.0f func/min  %8.0f W  %6.2f J/func
  throughput ratio (MicroFaaS/conventional): %.2f
  power ratio under load (conventional/MicroFaaS): %.1fx
`,
		r.SBCs, r.SBCThroughput, r.SBCPowerW, r.SBCJoulesPerFunc,
		r.Servers, r.VMsPerServer, r.ServerThroughput, r.ServerPowerW, r.ServerJoulesPerFunc,
		r.SBCThroughput/r.ServerThroughput,
		r.ServerPowerW/r.SBCPowerW)
	return err
}
