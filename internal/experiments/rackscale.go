package experiments

import (
	"fmt"
	"io"

	"microfaas/internal/cluster"
	"microfaas/internal/model"
	"microfaas/internal/power"
	"microfaas/internal/tco"
)

// RackScale simulates the hypothetical racks behind Table II — 989 SBCs
// versus 41 conventional servers — and measures whether they really are
// throughput-equivalent under this repository's calibrated model, along
// with their power draw under load. The paper *estimates* the 989-node
// sizing; this experiment checks the estimate end-to-end with thousands of
// concurrently simulated workers.
type RackScaleResult struct {
	// MicroFaaS rack.
	SBCs             int
	SBCThroughput    float64 // func/min
	SBCPowerW        float64 // mean cluster power under full load, incl. ToR switches
	SBCJoulesPerFunc float64
	// Conventional rack.
	Servers             int
	VMsPerServer        int
	ServerThroughput    float64
	ServerPowerW        float64
	ServerJoulesPerFunc float64
}

// RackScaleConfig sizes the runs.
type RackScaleConfig struct {
	// SBCs (default 989) and Servers (default 41) follow Table II.
	SBCs, Servers int
	// VMsPerServer defaults to the saturation point (16).
	VMsPerServer int
	// JobsPerWorker sets run length (default 8).
	JobsPerWorker int
	Seed          int64
}

// RackScale runs both racks to completion and reports throughput and
// power. Switch power (Appendix: 40.87 W per 48 ports) is added to both
// racks' totals, as the paper's TCO energy row does.
func RackScale(cfg RackScaleConfig) (RackScaleResult, error) {
	res := RackScaleResult{
		SBCs:         cfg.SBCs,
		Servers:      cfg.Servers,
		VMsPerServer: cfg.VMsPerServer,
	}
	if res.SBCs <= 0 {
		res.SBCs = tco.PaperMicroFaaSNodes
	}
	if res.Servers <= 0 {
		res.Servers = tco.PaperConventionalNodes
	}
	if res.VMsPerServer <= 0 {
		res.VMsPerServer = 16 // the Fig 4 saturation knee
	}
	jobs := cfg.JobsPerWorker
	if jobs <= 0 {
		jobs = 8
	}
	assumptions := tco.PaperAssumptions()
	switchW := func(nodes int) float64 {
		return float64(tco.Switches(nodes, assumptions)) * float64(power.DefaultSwitchModel().Power())
	}

	mf, err := cluster.NewMicroFaaSSim(res.SBCs, cluster.SimConfig{Seed: cfg.Seed})
	if err != nil {
		return RackScaleResult{}, err
	}
	// jobs per worker ≈ jobsPerFunction×17/nodes → jobsPerFunction = jobs×nodes/17.
	perFunction := jobs * res.SBCs / len(model.Functions())
	if _, err := mf.RunSuite(perFunction, nil); err != nil {
		return RackScaleResult{}, err
	}
	mfSt := mf.Stats()
	res.SBCThroughput = float64(mfSt.Completed) / (mfSt.MakespanS / 60)
	res.SBCPowerW = mfSt.TotalEnergyJ/mfSt.MakespanS + switchW(res.SBCs)
	res.SBCJoulesPerFunc = (mfSt.TotalEnergyJ + switchW(res.SBCs)*mfSt.MakespanS) / float64(mfSt.Completed)

	vms := res.Servers * res.VMsPerServer
	conv, err := cluster.NewConventionalRackSim(res.Servers, res.VMsPerServer, cluster.SimConfig{Seed: cfg.Seed})
	if err != nil {
		return RackScaleResult{}, err
	}
	perFunction = jobs * vms / len(model.Functions())
	if _, err := conv.RunSuite(perFunction, nil); err != nil {
		return RackScaleResult{}, err
	}
	convSt := conv.Stats()
	res.ServerThroughput = float64(convSt.Completed) / (convSt.MakespanS / 60)
	res.ServerPowerW = convSt.TotalEnergyJ/convSt.MakespanS + switchW(res.Servers)
	res.ServerJoulesPerFunc = (convSt.TotalEnergyJ + switchW(res.Servers)*convSt.MakespanS) / float64(convSt.Completed)
	return res, nil
}

// WriteRackScale prints the rack-scale comparison.
func WriteRackScale(w io.Writer, r RackScaleResult) error {
	_, err := fmt.Fprintf(w, `Rack scale (Table II's throughput-equivalence assumption, measured):
  MicroFaaS rack:     %4d SBCs                 %10.0f func/min  %8.0f W  %6.2f J/func
  Conventional rack:  %4d servers × %2d VMs     %10.0f func/min  %8.0f W  %6.2f J/func
  throughput ratio (MicroFaaS/conventional): %.2f
  power ratio under load (conventional/MicroFaaS): %.1fx
`,
		r.SBCs, r.SBCThroughput, r.SBCPowerW, r.SBCJoulesPerFunc,
		r.Servers, r.VMsPerServer, r.ServerThroughput, r.ServerPowerW, r.ServerJoulesPerFunc,
		r.SBCThroughput/r.ServerThroughput,
		r.ServerPowerW/r.SBCPowerW)
	return err
}
