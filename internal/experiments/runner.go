package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// This file is the experiment layer's parallel runner. Every experiment in
// this package is embarrassingly parallel at the granularity of a whole
// simulation: Monte-Carlo trials, sweep points, ablation arms, and rack
// shards each build their own sim.Engine (plus meter, orchestrator, and
// workers) and never share mutable state. The runner fans those
// independent instances across GOMAXPROCS OS threads and merges results in
// index order, so a parallel run's report is byte-identical to a serial
// run's — determinism comes from per-task derived seeds and ordered
// merging, never from scheduling luck.
//
// Events *within* one engine are never parallelized; see DESIGN.md's
// "Concurrency model" section.

// Parallelism normalizes a config's Parallel field: values <= 0 select
// GOMAXPROCS (all available cores), anything else is used as given.
func Parallelism(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// DeriveSeed maps a base seed and a task index to a decorrelated per-task
// seed using the splitmix64 finalizer. Each task gets its own RNG stream,
// so results do not depend on how many tasks share a worker goroutine —
// the foundation of serial/parallel equivalence.
func DeriveSeed(base int64, i int) int64 {
	z := uint64(base) + uint64(i+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// RunParallel executes fn(0..n-1) on a bounded pool of workers goroutines
// and returns the results in index order. workers <= 1 (or n <= 1) runs
// serially on the calling goroutine — the fast path used when a config
// asks for Parallel: 1, and the reference behavior parallel runs must
// reproduce byte-for-byte.
//
// If any fn returns an error, RunParallel returns the error with the
// lowest index (deterministic regardless of which goroutine hit it first);
// remaining indices still run to completion, keeping side effects (none,
// for well-behaved experiment tasks) independent of timing.
func RunParallel[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	results := make([]T, n)
	if n == 0 {
		return results, nil
	}
	if workers <= 1 || n == 1 {
		for i := 0; i < n; i++ {
			r, err := fn(i)
			if err != nil {
				return nil, err
			}
			results[i] = r
		}
		return results, nil
	}
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				results[i], errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}
