package experiments

import (
	"fmt"
	"io"
	"time"

	"microfaas/internal/model"
)

// WriteTable1 reproduces Table I — the workload function catalog — from
// the calibrated model, annotated with each function's class, backing
// service, FunctionBench provenance (the paper's asterisk), and the
// calibrated compute times this repository assigns it.
func WriteTable1(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "Table I: workload functions (17; * = adapted from / inspired by FunctionBench)\n%-13s %-14s %-9s %9s %9s  %s\n",
		"name", "class", "service", "arm-work", "x86-work", "description"); err != nil {
		return err
	}
	for _, f := range model.Functions() {
		name := f.Name
		if f.FromFunctionBench {
			name += "*"
		}
		service := f.Service
		if service == "" {
			service = "-"
		}
		if _, err := fmt.Fprintf(w, "%-13s %-14s %-9s %8.2fs %8.2fs  %s\n",
			name, f.Class, service,
			f.WorkARM.Seconds(), f.WorkX86.Seconds(), f.Description); err != nil {
			return err
		}
	}
	return nil
}

// WriteFig4CSV emits the Fig 4 sweep as CSV for plotting.
func WriteFig4CSV(w io.Writer, res Fig4Result) error {
	if _, err := fmt.Fprintln(w, "vms,throughput_per_min,joules_per_func,microfaas_ref_joules"); err != nil {
		return err
	}
	for _, p := range res.Points {
		if _, err := fmt.Fprintf(w, "%d,%.3f,%.3f,%.3f\n",
			p.VMs, p.ThroughputPerMin, p.JoulesPerFunc, res.MicroFaaSJoules); err != nil {
			return err
		}
	}
	return nil
}

// WriteFig5CSV emits the Fig 5 power sweep as CSV.
func WriteFig5CSV(w io.Writer, pts []Fig5Point) error {
	if _, err := fmt.Fprintln(w, "active_workers,microfaas_watts,conventional_watts"); err != nil {
		return err
	}
	for _, p := range pts {
		if _, err := fmt.Fprintf(w, "%d,%.4f,%.4f\n",
			p.ActiveWorkers, p.MicroFaaSWatts, p.ConventionalWatts); err != nil {
			return err
		}
	}
	return nil
}

// WriteFig3CSV emits the per-function runtime split as CSV.
func WriteFig3CSV(w io.Writer, rows []Fig3Row) error {
	if _, err := fmt.Fprintln(w, "function,mf_working_ms,mf_overhead_ms,conv_working_ms,conv_overhead_ms,speed_ratio"); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "%s,%.3f,%.3f,%.3f,%.3f,%.4f\n",
			r.Function, ms(r.MFWorking), ms(r.MFOverhead),
			ms(r.ConvWorking), ms(r.ConvOverhead), r.SpeedRatio); err != nil {
			return err
		}
	}
	return nil
}

// WriteLoadSweepCSV emits the load sweep as CSV.
func WriteLoadSweepCSV(w io.Writer, pts []LoadSweepPoint) error {
	if _, err := fmt.Fprintln(w, "load_fraction,offered_per_min,mf_mean_latency_ms,mf_p95_latency_ms,mf_joules_per,conv_mean_latency_ms,conv_p95_latency_ms,conv_joules_per"); err != nil {
		return err
	}
	for _, p := range pts {
		if _, err := fmt.Fprintf(w, "%.3f,%.3f,%.3f,%.3f,%.4f,%.3f,%.3f,%.4f\n",
			p.LoadFraction, p.OfferedPerMin,
			msD(p.MFMeanLatency), msD(p.MFP95Latency), p.MFJoulesPer,
			msD(p.ConvMeanLat), msD(p.ConvP95Lat), p.ConvJoulesPer); err != nil {
			return err
		}
	}
	return nil
}

// WriteKeepWarmCSV emits the keep-warm sweep as CSV.
func WriteKeepWarmCSV(w io.Writer, pts []KeepWarmPoint) error {
	if _, err := fmt.Fprintln(w, "window_s,mean_latency_ms,p95_latency_ms,joules_per,warm_fraction"); err != nil {
		return err
	}
	for _, p := range pts {
		if _, err := fmt.Fprintf(w, "%.3f,%.3f,%.3f,%.4f,%.4f\n",
			p.Window.Seconds(), msD(p.MeanLatency), msD(p.P95Latency),
			p.JoulesPerFunc, p.WarmFraction); err != nil {
			return err
		}
	}
	return nil
}

func msD(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
