// Package netsim models the cluster's Ethernet fabric.
//
// The paper's two clusters differ in their last-hop links: each BeagleBone
// has a 10/100 Fast Ethernet NIC, while the rack server bridges its VMs onto
// a shared Gigabit NIC through virtio. The model captures the two effects
// the paper discusses: payload transfer time (bandwidth-bound, the reason
// COSGet is slow on the SBC) and per-round-trip latency (where the VMs'
// bridged virtio path is slower than the SBC's bare-metal PHY).
package netsim

import (
	"fmt"
	"time"
)

// Link describes one worker's path to the top-of-rack switch.
type Link struct {
	// Name identifies the link kind in reports, e.g. "fast-ethernet".
	Name string
	// BandwidthBps is usable bandwidth in bits per second (after framing
	// overhead; we apply Efficiency below to the nominal line rate).
	BandwidthBps float64
	// RTT is the round-trip latency between the worker and a peer on the
	// same switch (OP or backing-service node).
	RTT time.Duration
	// PerRTTOverhead is extra latency added to every application-level
	// round trip by the virtualization stack (virtio + host bridge + softirq
	// scheduling). Zero on bare metal; calibrated for QEMU microVMs.
	PerRTTOverhead time.Duration
}

// Ethernet line-rate efficiency after preamble/IFG/IP+TCP headers for the
// ~1500-byte MTU frames bulk transfers use.
const etherEfficiency = 0.94

// FastEthernet returns the SBC worker link: 100 Mb/s bare-metal.
func FastEthernet() Link {
	return Link{
		Name:         "fast-ethernet",
		BandwidthBps: 100e6 * etherEfficiency,
		RTT:          400 * time.Microsecond,
	}
}

// GigabitEthernet returns a bare-metal gigabit link (the NIC-upgrade
// ablation from Sec V, and the backing-service side of the fabric).
func GigabitEthernet() Link {
	return Link{
		Name:         "gigabit-ethernet",
		BandwidthBps: 1000e6 * etherEfficiency,
		RTT:          250 * time.Microsecond,
	}
}

// BridgedVirtio returns the microVM link: the host's gigabit NIC shared by
// all VMs through a software bridge. Bandwidth is the host NIC's; the
// per-RTT overhead is the calibrated cost of the virtio/bridge/softirq path
// (chatty request/response workloads pay it once per application round
// trip, which is why the paper's small KV and MQ functions run faster on
// MicroFaaS than on the conventional cluster).
func BridgedVirtio() Link {
	return Link{
		Name:           "bridged-virtio",
		BandwidthBps:   1000e6 * etherEfficiency,
		RTT:            250 * time.Microsecond,
		PerRTTOverhead: 2600 * time.Microsecond,
	}
}

// TransferTime returns the time to move n payload bytes one way across the
// link, including one propagation delay (half an RTT).
func (l Link) TransferTime(n int) time.Duration {
	if n < 0 {
		panic(fmt.Sprintf("netsim: negative transfer size %d", n))
	}
	if l.BandwidthBps <= 0 {
		panic(fmt.Sprintf("netsim: link %q has no bandwidth", l.Name))
	}
	serialize := time.Duration(float64(n*8) / l.BandwidthBps * float64(time.Second))
	return serialize + l.RTT/2 + l.PerRTTOverhead/2
}

// RoundTrips returns the latency cost of n application-level round trips
// that carry negligible payload (protocol chatter: TCP handshakes, RESP
// commands, MQ acks).
func (l Link) RoundTrips(n int) time.Duration {
	if n < 0 {
		panic(fmt.Sprintf("netsim: negative round-trip count %d", n))
	}
	return time.Duration(n) * (l.RTT + l.PerRTTOverhead)
}

// RequestResponse returns the time for one request of reqBytes and one
// response of respBytes, plus extra protocol round trips.
func (l Link) RequestResponse(reqBytes, respBytes, extraRTTs int) time.Duration {
	return l.TransferTime(reqBytes) + l.TransferTime(respBytes) + l.RoundTrips(extraRTTs)
}
