package netsim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestTransferTimeScalesWithSize(t *testing.T) {
	l := FastEthernet()
	small := l.TransferTime(1 << 10)
	big := l.TransferTime(16 << 20)
	if big <= small {
		t.Fatal("larger payloads must take longer")
	}
	// 16 MiB over ~94 Mb/s is ≈1.43 s.
	want := 1430 * time.Millisecond
	if big < want-100*time.Millisecond || big > want+100*time.Millisecond {
		t.Fatalf("16 MiB over Fast Ethernet = %v, want ≈%v", big, want)
	}
}

func TestGigabitIsTenTimesFasterForBulk(t *testing.T) {
	n := 64 << 20
	fe := FastEthernet().TransferTime(n)
	ge := GigabitEthernet().TransferTime(n)
	ratio := float64(fe) / float64(ge)
	if ratio < 9 || ratio > 11 {
		t.Fatalf("bulk speedup = %.2fx, want ≈10x", ratio)
	}
}

func TestVirtioPenaltyHitsChatterNotBandwidth(t *testing.T) {
	ge, vio := GigabitEthernet(), BridgedVirtio()
	// Same payload rate...
	if ge.BandwidthBps != vio.BandwidthBps {
		t.Fatal("bridged virtio should share the host gigabit NIC bandwidth")
	}
	// ...but much slower per round trip.
	if vio.RoundTrips(10) <= ge.RoundTrips(10)*2 {
		t.Fatalf("virtio RTT cost %v should far exceed bare-metal %v",
			vio.RoundTrips(10), ge.RoundTrips(10))
	}
}

func TestZeroBytesStillPaysLatency(t *testing.T) {
	l := FastEthernet()
	if l.TransferTime(0) <= 0 {
		t.Fatal("a zero-byte message still pays propagation latency")
	}
}

func TestRoundTripsZero(t *testing.T) {
	if FastEthernet().RoundTrips(0) != 0 {
		t.Fatal("zero round trips must cost nothing")
	}
}

func TestRequestResponseComposition(t *testing.T) {
	l := GigabitEthernet()
	got := l.RequestResponse(1000, 2000, 3)
	want := l.TransferTime(1000) + l.TransferTime(2000) + l.RoundTrips(3)
	if got != want {
		t.Fatalf("RequestResponse = %v, want %v", got, want)
	}
}

func TestNegativeSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	FastEthernet().TransferTime(-1)
}

func TestNegativeRTTsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	FastEthernet().RoundTrips(-1)
}

func TestZeroBandwidthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	Link{Name: "broken"}.TransferTime(1)
}

// Property: transfer time is monotone in payload size on every link.
func TestTransferMonotoneProperty(t *testing.T) {
	links := []Link{FastEthernet(), GigabitEthernet(), BridgedVirtio()}
	prop := func(a, b uint32) bool {
		x, y := int(a%(64<<20)), int(b%(64<<20))
		if x > y {
			x, y = y, x
		}
		for _, l := range links {
			if l.TransferTime(x) > l.TransferTime(y) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: round-trip cost is linear in the count.
func TestRoundTripLinearityProperty(t *testing.T) {
	prop := func(n uint8) bool {
		l := BridgedVirtio()
		return l.RoundTrips(int(n)) == time.Duration(n)*l.RoundTrips(1)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
