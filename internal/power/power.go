// Package power models electrical power draw and integrates it into energy.
//
// It is the repository's substitute for the WattsUp Pro meter the paper
// plugs each cluster into: every device (SBC, rack server, switch) reports
// its piecewise-constant power draw to a Meter, and the Meter integrates
// watts over (virtual or wall) time into joules. The device power models
// use the constants from the paper's Appendix.
package power

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"
)

// Watts is electrical power.
type Watts float64

// Joules is electrical energy.
type Joules float64

// KilowattHours converts energy to kWh, the unit the TCO model bills in.
func (j Joules) KilowattHours() float64 { return float64(j) / 3.6e6 }

// Energy returns the energy consumed drawing p watts for d.
func Energy(p Watts, d time.Duration) Joules {
	return Joules(float64(p) * d.Seconds())
}

// State is a worker node's coarse operating state. The paper's power
// argument rests on exactly these states: a MicroFaaS node is either fully
// powered down, rebooting, or running a function.
type State int

const (
	// Off means the node is powered down (an SBC draws only its
	// power-management standby current; a server still idles at tens of watts).
	Off State = iota
	// Booting means the node is loading the worker OS.
	Booting
	// Idle means the node is up but not executing a function.
	Idle
	// Busy means the node is executing a function.
	Busy
)

var stateNames = [...]string{"off", "booting", "idle", "busy"}

// String renders the state as logged by the GPIO audit trail ("off",
// "booting", "idle", "busy").
func (s State) String() string {
	if s < 0 || int(s) >= len(stateNames) {
		return fmt.Sprintf("state(%d)", int(s))
	}
	return stateNames[s]
}

// Meter integrates the power draw of a set of devices over time.
// Time is supplied by the caller on every update (monotone non-decreasing
// per device), so the same Meter works under the simulation's virtual clock
// and under the live cluster's wall clock. Meter is safe for concurrent
// use (live workers report from their own goroutines).
type Meter struct {
	mu      sync.Mutex
	devices map[string]*deviceTrack
	// order holds device ids in registration order. Totals sum in this
	// order, not map order: float addition is not associative, so summing
	// in randomized map order would perturb the last ULP from run to run
	// and break the simulator's bit-exact determinism guarantee.
	order []string
}

type deviceTrack struct {
	lastTime time.Duration
	watts    Watts
	energy   Joules
}

// NewMeter returns an empty meter.
func NewMeter() *Meter {
	return &Meter{devices: make(map[string]*deviceTrack)}
}

// Set records that device id draws p watts from time now onward.
// Energy accumulated at the previous level up to now is banked first.
// The first Set for a device starts its integration at now. Setting the
// level the device already draws is a harmless no-op (the bank-then-set
// leaves the integral unchanged); moving a device's clock backwards
// panics — per-device update times must be monotone.
func (m *Meter) Set(id string, p Watts, now time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if p < 0 {
		panic(fmt.Sprintf("power: negative draw %v for %s", p, id))
	}
	d, ok := m.devices[id]
	if !ok {
		m.devices[id] = &deviceTrack{lastTime: now, watts: p}
		m.order = append(m.order, id)
		return
	}
	if now < d.lastTime {
		panic(fmt.Sprintf("power: time went backwards for %s: %v < %v", id, now, d.lastTime))
	}
	d.energy += Energy(d.watts, now-d.lastTime)
	d.lastTime = now
	d.watts = p
}

// Energy returns device id's accumulated energy up to now. Querying a
// device the meter has never seen reads as zero (asking before the first
// Set is valid, not an error). A now earlier than the device's last
// update reports only the energy banked so far: reads clamp rather than
// extrapolate backwards into negative joules, so a racing wall-clock
// reader can never observe energy decrease.
func (m *Meter) Energy(id string, now time.Duration) Joules {
	m.mu.Lock()
	defer m.mu.Unlock()
	d, ok := m.devices[id]
	if !ok {
		return 0
	}
	return d.readLocked(now)
}

// TotalEnergy returns the energy of all devices up to now (per-device
// reads clamp exactly as Energy does).
func (m *Meter) TotalEnergy(now time.Duration) Joules {
	m.mu.Lock()
	defer m.mu.Unlock()
	var sum Joules
	for _, id := range m.order {
		sum += m.devices[id].readLocked(now)
	}
	return sum
}

// readLocked integrates a device's energy up to now, clamping reads that
// predate its last update. Caller holds m.mu.
func (d *deviceTrack) readLocked(now time.Duration) Joules {
	if now <= d.lastTime {
		return d.energy
	}
	return d.energy + Energy(d.watts, now-d.lastTime)
}

// Power returns the instantaneous draw of a single device.
func (m *Meter) Power(id string) Watts {
	m.mu.Lock()
	defer m.mu.Unlock()
	d, ok := m.devices[id]
	if !ok {
		return 0
	}
	return d.watts
}

// TotalPower returns the instantaneous draw across all devices — what the
// WattsUp display would read at this moment.
func (m *Meter) TotalPower() Watts {
	m.mu.Lock()
	defer m.mu.Unlock()
	var sum Watts
	for _, id := range m.order {
		sum += m.devices[id].watts
	}
	return sum
}

// Devices returns the tracked device ids, sorted for stable output.
func (m *Meter) Devices() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	ids := make([]string, 0, len(m.devices))
	for id := range m.devices {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// SBCModel maps an SBC worker's state to its power draw. Defaults come
// from the paper's Appendix: 1.96 W under load, 0.128 W powered down.
type SBCModel struct {
	BusyW Watts // draw while executing a function
	BootW Watts // draw while booting (CPU + eMMC + PHY active)
	IdleW Watts // draw while up but idle (nodes rarely linger here)
	OffW  Watts // standby draw while powered down
}

// DefaultSBCModel returns the BeagleBone Black model from the paper's
// Appendix. Boot draw is taken equal to busy draw: during the 1.51 s boot
// the CPU is near-fully loaded (Fig 1's CPU-time bars track real time).
func DefaultSBCModel() SBCModel {
	return SBCModel{BusyW: 1.96, BootW: 1.96, IdleW: 1.10, OffW: 0.128}
}

// Power returns the draw in the given state.
func (m SBCModel) Power(s State) Watts {
	switch s {
	case Off:
		return m.OffW
	case Booting:
		return m.BootW
	case Idle:
		return m.IdleW
	default:
		return m.BusyW
	}
}

// ServerModel maps a rack server's utilization to power draw. The paper
// assumes 60 W idle and 150 W loaded; real servers are concave between the
// two (they reach most of peak draw well before full utilization), which the
// Exponent captures. Exponent is calibrated so that six busy VMs on the
// 12-core evaluation server (≈39 % core utilization under internal/model's
// CPU-demand tables) draw ≈112 W, reproducing the paper's measured
// 32.0 J/function at 211.7 func/min; the calibration test lives in
// internal/model.
type ServerModel struct {
	// IdleW is the draw in watts at 0% CPU.
	IdleW Watts
	// LoadedW is the draw in watts at 100% CPU.
	LoadedW Watts
	// Exponent shapes the concave idle-to-loaded curve (1 = linear;
	// values below 1 reach peak draw early).
	Exponent float64
}

// DefaultServerModel returns the calibrated model of the evaluation rack
// server (Thinkmate RAX, 12-core Opteron 6172).
func DefaultServerModel() ServerModel {
	return ServerModel{IdleW: 60, LoadedW: 150, Exponent: 0.574}
}

// Power returns the draw at CPU utilization u in [0,1]. Values outside the
// range are clamped.
func (m ServerModel) Power(u float64) Watts {
	if u < 0 {
		u = 0
	}
	if u > 1 {
		u = 1
	}
	exp := m.Exponent
	if exp <= 0 {
		exp = 1
	}
	return m.IdleW + Watts(math.Pow(u, exp))*(m.LoadedW-m.IdleW)
}

// SwitchModel is the constant draw of a top-of-rack Ethernet switch
// (40.87 W for the Cisco Catalyst 2960S-48LPS in the paper's Appendix).
type SwitchModel struct {
	// DrawW is the switch's constant draw in watts, load-independent.
	DrawW Watts
}

// DefaultSwitchModel returns the Catalyst 2960S-48LPS draw from the Appendix.
func DefaultSwitchModel() SwitchModel { return SwitchModel{DrawW: 40.87} }

// Power returns the switch draw (state-independent).
func (m SwitchModel) Power() Watts { return m.DrawW }
