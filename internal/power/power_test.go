package power

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestEnergyConversion(t *testing.T) {
	if got := Energy(100, 10*time.Second); got != 1000 {
		t.Fatalf("Energy(100W, 10s) = %v J, want 1000", got)
	}
	// 1 kWh = 3.6 MJ.
	if got := Joules(3.6e6).KilowattHours(); !approx(got, 1.0, 1e-12) {
		t.Fatalf("3.6 MJ = %v kWh, want 1", got)
	}
}

func TestMeterIntegratesPiecewiseConstant(t *testing.T) {
	m := NewMeter()
	m.Set("sbc", 2, 0)
	m.Set("sbc", 4, 10*time.Second) // 2W for 10s = 20 J banked
	got := m.Energy("sbc", 15*time.Second)
	// 20 J + 4W * 5s = 40 J.
	if !approx(float64(got), 40, 1e-9) {
		t.Fatalf("energy = %v, want 40 J", got)
	}
}

func TestMeterEnergyIsLazyUpToNow(t *testing.T) {
	m := NewMeter()
	m.Set("d", 10, 0)
	if got := m.Energy("d", time.Second); !approx(float64(got), 10, 1e-9) {
		t.Fatalf("energy at 1s = %v, want 10", got)
	}
	// Reading at a later time without further Set calls keeps integrating.
	if got := m.Energy("d", time.Minute); !approx(float64(got), 600, 1e-9) {
		t.Fatalf("energy at 1m = %v, want 600", got)
	}
}

func TestMeterUnknownDevice(t *testing.T) {
	m := NewMeter()
	if m.Energy("nope", time.Hour) != 0 || m.Power("nope") != 0 {
		t.Fatal("unknown device must read as zero")
	}
}

func TestMeterTotals(t *testing.T) {
	m := NewMeter()
	m.Set("a", 1, 0)
	m.Set("b", 2, 0)
	if got := m.TotalPower(); got != 3 {
		t.Fatalf("TotalPower = %v, want 3", got)
	}
	if got := m.TotalEnergy(10 * time.Second); !approx(float64(got), 30, 1e-9) {
		t.Fatalf("TotalEnergy = %v, want 30", got)
	}
	devs := m.Devices()
	if len(devs) != 2 || devs[0] != "a" || devs[1] != "b" {
		t.Fatalf("Devices = %v", devs)
	}
}

func TestMeterBackwardsTimePanics(t *testing.T) {
	m := NewMeter()
	m.Set("d", 1, 10*time.Second)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on backwards time")
		}
	}()
	m.Set("d", 2, 5*time.Second)
}

func TestMeterNegativePowerPanics(t *testing.T) {
	m := NewMeter()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative power")
		}
	}()
	m.Set("d", -1, 0)
}

// Property: total energy equals the sum of per-device energies for any
// sequence of non-negative power levels applied at increasing times.
func TestMeterAdditivityProperty(t *testing.T) {
	prop := func(levelsA, levelsB []uint8) bool {
		m := NewMeter()
		now := time.Duration(0)
		for _, l := range levelsA {
			m.Set("a", Watts(l), now)
			now += time.Second
		}
		now2 := time.Duration(0)
		for _, l := range levelsB {
			m.Set("b", Watts(l), now2)
			now2 += time.Second
		}
		end := now
		if now2 > end {
			end = now2
		}
		end += time.Second
		total := m.TotalEnergy(end)
		sum := m.Energy("a", end) + m.Energy("b", end)
		return approx(float64(total), float64(sum), 1e-6)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: energy is monotone non-decreasing in time.
func TestMeterMonotoneProperty(t *testing.T) {
	prop := func(levels []uint8, probeSecs uint8) bool {
		m := NewMeter()
		now := time.Duration(0)
		for _, l := range levels {
			m.Set("d", Watts(l), now)
			now += time.Second
		}
		t1 := now + time.Duration(probeSecs)*time.Second
		t2 := t1 + time.Minute
		return m.Energy("d", t2) >= m.Energy("d", t1)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSBCModelAppendixConstants(t *testing.T) {
	m := DefaultSBCModel()
	if m.Power(Busy) != 1.96 {
		t.Fatalf("busy draw = %v, want 1.96 W (Appendix P_ss)", m.Power(Busy))
	}
	if m.Power(Off) != 0.128 {
		t.Fatalf("off draw = %v, want 0.128 W (Appendix P_ss-idle)", m.Power(Off))
	}
	if m.Power(Booting) <= 0 || m.Power(Idle) <= 0 {
		t.Fatal("boot/idle draws must be positive")
	}
	// Off must be the lowest state by a wide margin (energy proportionality).
	if m.Power(Off) >= m.Power(Idle) {
		t.Fatal("off draw must be far below idle draw")
	}
}

func TestServerModelEndpoints(t *testing.T) {
	m := DefaultServerModel()
	if got := m.Power(0); got != 60 {
		t.Fatalf("idle draw = %v, want 60 W", got)
	}
	if got := m.Power(1); got != 150 {
		t.Fatalf("loaded draw = %v, want 150 W", got)
	}
	// Clamping.
	if m.Power(-1) != 60 || m.Power(2) != 150 {
		t.Fatal("utilization must clamp to [0,1]")
	}
}

func TestServerModelCalibrationPoint(t *testing.T) {
	// Six busy single-core VMs demand ≈39 % of the 12 cores (internal/model's
	// CPU tables) and must draw ≈112 W so that 32.0 J/function holds at
	// 211.7 func/min. The exact cross-package check lives in internal/model;
	// this guards the power side with a loose band.
	m := DefaultServerModel()
	got := float64(m.Power(0.39))
	if !approx(got, 112, 4) {
		t.Fatalf("draw at u=0.39 is %.1f W, want ≈112 W", got)
	}
}

func TestServerModelMonotoneConcave(t *testing.T) {
	m := DefaultServerModel()
	prev := m.Power(0)
	prevDelta := Watts(math.Inf(1))
	for i := 1; i <= 10; i++ {
		u := float64(i) / 10
		p := m.Power(u)
		if p < prev {
			t.Fatalf("power not monotone at u=%.1f", u)
		}
		delta := p - prev
		if delta > prevDelta+1e-9 {
			t.Fatalf("power not concave at u=%.1f (delta %v > %v)", u, delta, prevDelta)
		}
		prev, prevDelta = p, delta
	}
}

func TestServerModelZeroExponentFallsBackToLinear(t *testing.T) {
	m := ServerModel{IdleW: 60, LoadedW: 150}
	if got := m.Power(0.5); !approx(float64(got), 105, 1e-9) {
		t.Fatalf("linear fallback draw = %v, want 105", got)
	}
}

func TestSwitchModel(t *testing.T) {
	if got := DefaultSwitchModel().Power(); got != 40.87 {
		t.Fatalf("switch draw = %v, want 40.87 W (Appendix)", got)
	}
}

func TestStateString(t *testing.T) {
	cases := map[State]string{Off: "off", Booting: "booting", Idle: "idle", Busy: "busy"}
	for s, want := range cases {
		if s.String() != want {
			t.Fatalf("State(%d).String() = %q, want %q", s, s, want)
		}
	}
	if State(99).String() != "state(99)" {
		t.Fatalf("out-of-range state string = %q", State(99).String())
	}
}

func TestMeterEnergyBeforeFirstSet(t *testing.T) {
	m := NewMeter()
	// Querying before any Set is valid and reads zero at any timestamp,
	// including time zero and far in the future.
	if m.Energy("sbc-0", 0) != 0 || m.Energy("sbc-0", time.Hour) != 0 {
		t.Fatal("pre-registration reads must be zero")
	}
	if m.TotalEnergy(time.Hour) != 0 {
		t.Fatal("empty meter total must be zero")
	}
	// The first Set starts integration at its own timestamp; nothing is
	// retroactively accrued for the time before it.
	m.Set("sbc-0", 2, 10*time.Second)
	if got := m.Energy("sbc-0", 15*time.Second); !approx(float64(got), 10, 1e-9) {
		t.Fatalf("energy = %v, want 10 (5s at 2W, none before first Set)", got)
	}
}

func TestMeterEnergyReadBeforeLastUpdateClamps(t *testing.T) {
	m := NewMeter()
	m.Set("d", 1, 0)
	m.Set("d", 3, 10*time.Second) // banks 10 J
	// A read earlier than the device's last update reports the banked
	// energy only — never a negative extrapolation.
	if got := m.Energy("d", 5*time.Second); !approx(float64(got), 10, 1e-9) {
		t.Fatalf("backdated read = %v, want the 10 J banked", got)
	}
	if got := m.TotalEnergy(5 * time.Second); !approx(float64(got), 10, 1e-9) {
		t.Fatalf("backdated total = %v, want 10", got)
	}
	// Forward reads integrate normally again.
	if got := m.Energy("d", 12*time.Second); !approx(float64(got), 16, 1e-9) {
		t.Fatalf("forward read = %v, want 16", got)
	}
}

func TestMeterSetUnchangedPowerIsNoOp(t *testing.T) {
	m := NewMeter()
	m.Set("d", 2, 0)
	m.Set("d", 2, 3*time.Second) // same draw: banks and continues
	m.Set("d", 2, 7*time.Second)
	if got := m.Energy("d", 10*time.Second); !approx(float64(got), 20, 1e-9) {
		t.Fatalf("energy = %v, want 20 (10s at a constant 2W)", got)
	}
	if got := m.Power("d"); got != 2 {
		t.Fatalf("power = %v, want 2", got)
	}
}
