package wire

import (
	"bytes"
	"encoding/binary"
	"io"
	"strings"
	"testing"
	"testing/quick"
)

type payload struct {
	Name string `json:"name"`
	N    int64  `json:"n"`
	Blob []byte `json:"blob,omitempty"`
}

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := payload{Name: "job-1", N: 1 << 60, Blob: []byte{0, 1, 2, 255}}
	if err := WriteJSON(&buf, in); err != nil {
		t.Fatal(err)
	}
	var out payload
	if err := ReadJSON(&buf, &out); err != nil {
		t.Fatal(err)
	}
	if out.Name != in.Name || out.N != in.N || !bytes.Equal(out.Blob, in.Blob) {
		t.Fatalf("round trip mismatch: %+v vs %+v", out, in)
	}
}

func TestMultipleFramesOnOneStream(t *testing.T) {
	var buf bytes.Buffer
	for i := int64(0); i < 5; i++ {
		if err := WriteJSON(&buf, payload{N: i}); err != nil {
			t.Fatal(err)
		}
	}
	for i := int64(0); i < 5; i++ {
		var out payload
		if err := ReadJSON(&buf, &out); err != nil {
			t.Fatal(err)
		}
		if out.N != i {
			t.Fatalf("frame %d decoded as %d", i, out.N)
		}
	}
	var extra payload
	if err := ReadJSON(&buf, &extra); err != io.EOF {
		t.Fatalf("want EOF after last frame, got %v", err)
	}
}

func TestTruncatedFrame(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, payload{Name: "x"}); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()[:buf.Len()-3]
	var out payload
	if err := ReadJSON(bytes.NewReader(data), &out); err == nil {
		t.Fatal("truncated frame decoded without error")
	}
}

func TestOversizedLengthRejected(t *testing.T) {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], MaxFrame+1)
	var out payload
	err := ReadJSON(bytes.NewReader(hdr[:]), &out)
	if err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Fatalf("oversized frame: err = %v", err)
	}
}

func TestUnmarshalableValueErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, make(chan int)); err == nil {
		t.Fatal("marshalling a channel must fail")
	}
	if buf.Len() != 0 {
		t.Fatal("failed marshal must not emit bytes")
	}
}

// Property: arbitrary string/byte payloads survive the frame round trip.
func TestRoundTripProperty(t *testing.T) {
	prop := func(name string, n int64, blob []byte) bool {
		var buf bytes.Buffer
		if err := WriteJSON(&buf, payload{Name: name, N: n, Blob: blob}); err != nil {
			return false
		}
		var out payload
		if err := ReadJSON(&buf, &out); err != nil {
			return false
		}
		return out.Name == name && out.N == n && bytes.Equal(out.Blob, blob)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
