package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

// FuzzReadJSON throws arbitrary byte streams at the frame decoder. The
// contract under attack-shaped input (corrupt length prefixes, truncated
// bodies, malformed JSON) is: return an error, never panic, and never
// mistake a mid-frame truncation for a clean end-of-stream.
func FuzzReadJSON(f *testing.F) {
	frame := func(body string) []byte {
		var b bytes.Buffer
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
		b.Write(hdr[:])
		b.WriteString(body)
		return b.Bytes()
	}
	f.Add([]byte{})
	f.Add([]byte{0, 0})                               // truncated header
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})             // length over MaxFrame
	f.Add([]byte{0, 0, 0, 10, '{', '}'})              // truncated body
	f.Add(frame(`{"op":"invoke","id":7}`))            // well-formed frame
	f.Add(frame(`not json`))                          // framed garbage
	f.Add(frame(``))                                  // zero-length body
	f.Add(append(frame(`{"a":1}`), frame(`[2,3]`)...)) // two frames back to back

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		var v any
		err := ReadJSON(r, &v)
		if len(data) == 0 {
			if !errors.Is(err, io.EOF) {
				t.Fatalf("empty stream: err = %v, want io.EOF", err)
			}
			return
		}
		if len(data) < 4 {
			// A partial header is a truncation, not a clean EOF: callers
			// use io.EOF to mean "peer closed between frames".
			if errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
				t.Fatalf("partial header: err = %v, want ErrUnexpectedEOF", err)
			}
			if err == nil {
				t.Fatal("partial header decoded successfully")
			}
			return
		}
		n := binary.BigEndian.Uint32(data[:4])
		if n <= MaxFrame && uint64(len(data)-4) < uint64(n) {
			if err == nil {
				t.Fatalf("truncated body (%d of %d bytes) decoded successfully", len(data)-4, n)
			}
			if errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
				t.Fatalf("truncated body: err = %v, want ErrUnexpectedEOF", err)
			}
		}
		if err != nil {
			return
		}
		// A frame that decoded must re-encode: WriteJSON accepts every
		// value ReadJSON can produce.
		if werr := WriteJSON(io.Discard, v); werr != nil {
			t.Fatalf("decoded value does not re-encode: %v", werr)
		}
	})
}
