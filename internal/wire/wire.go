// Package wire implements the length-framed JSON message format shared by
// the cluster's TCP protocols: the OP↔worker invocation protocol
// (internal/proto), the message-queue protocol (internal/mq), and the SQL
// protocol (internal/sqlstore).
//
// Every frame is a 4-byte big-endian payload length followed by a JSON
// body. JSON keeps the protocols debuggable with nothing but netcat, which
// matches the plain-text spirit of the paper's Python control plane; the
// length prefix keeps message boundaries explicit and binary-safe ([]byte
// fields ride as base64).
//
// The encode and decode paths are pooled: steady-state traffic reuses
// buffers instead of allocating per frame, which matters on the invocation
// hot path where every worker round trip crosses this package twice.
package wire

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// MaxFrame caps a frame's payload to guard against hostile or corrupt
// length prefixes. 64 MiB comfortably covers the largest workload payloads
// (the object-store functions move multi-MiB objects).
const MaxFrame = 64 << 20

// encoder is a pooled marshal buffer. The json.Encoder is bound to buf
// once; Reset between frames keeps the pair reusable.
type encoder struct {
	buf bytes.Buffer
	enc *json.Encoder
}

var encPool = sync.Pool{New: func() any {
	e := &encoder{}
	e.enc = json.NewEncoder(&e.buf)
	return e
}}

// scratchPool holds read buffers for ReadJSON callers that do not manage
// their own scratch (the stores' request/response loops).
var scratchPool = sync.Pool{New: func() any { return new([]byte) }}

// WriteJSON marshals v and writes one frame. Marshal runs through a pooled
// buffer, so steady-state frames allocate nothing beyond what the writer
// itself does; the output bytes are identical to json.Marshal's.
func WriteJSON(w io.Writer, v any) error {
	e := encPool.Get().(*encoder)
	defer encPool.Put(e)
	e.buf.Reset()
	if err := e.enc.Encode(v); err != nil {
		return fmt.Errorf("wire: marshal: %w", err)
	}
	body := e.buf.Bytes()
	// Encoder.Encode appends a newline that Marshal does not; the frame
	// carries the bare JSON.
	body = body[:len(body)-1]
	if len(body) > MaxFrame {
		return fmt.Errorf("wire: frame of %d bytes exceeds %d limit", len(body), MaxFrame)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(body)
	return err
}

// ReadFrame reads one frame's payload into *scratch (growing it as needed)
// and returns the payload slice, which aliases *scratch and is only valid
// until the next use of the same scratch buffer. A caller that keeps one
// scratch per connection reads every steady-state frame with zero
// allocations.
func ReadFrame(r io.Reader, scratch *[]byte) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := int(binary.BigEndian.Uint32(hdr[:]))
	if n > MaxFrame {
		return nil, fmt.Errorf("wire: frame of %d bytes exceeds %d limit", n, MaxFrame)
	}
	buf := (*scratch)[:cap(*scratch)]
	// Grow toward n geometrically as bytes actually arrive: the length
	// prefix is attacker-controlled on a live socket, and a corrupt header
	// must not pin MaxFrame of memory before the stream proves it has that
	// many bytes.
	read := 0
	for read < n {
		if read == len(buf) {
			grown := len(buf)*2 + 512
			if grown > n {
				grown = n
			}
			nb := make([]byte, grown)
			copy(nb, buf[:read])
			buf = nb
		}
		limit := len(buf)
		if limit > n {
			limit = n
		}
		m, err := r.Read(buf[read:limit])
		read += m
		if read >= n {
			break
		}
		if err != nil {
			if err == io.EOF {
				// A present header promises a body: running dry mid-frame
				// is a truncation, never a clean end-of-stream.
				return nil, io.ErrUnexpectedEOF
			}
			return nil, err
		}
	}
	*scratch = buf
	return buf[:n], nil
}

// ReadJSONInto reads one frame and unmarshals it into v, reusing *scratch
// for the payload. Unlike ReadJSON it decodes with plain json.Unmarshal
// (no json.Number), so it is meant for struct targets without `any` fields
// — the invocation protocol's fixed request/response shapes. Decoded
// strings and []byte fields are copies; nothing in v aliases the scratch
// buffer after return.
func ReadJSONInto(r io.Reader, v any, scratch *[]byte) error {
	body, err := ReadFrame(r, scratch)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(body, v); err != nil {
		return fmt.Errorf("wire: decode: %w", err)
	}
	return nil
}

// ReadJSON reads one frame and unmarshals it into v. Numbers decode via
// json.Number when v contains `any` fields, preserving int64 precision.
func ReadJSON(r io.Reader, v any) error {
	scratch := scratchPool.Get().(*[]byte)
	defer scratchPool.Put(scratch)
	body, err := ReadFrame(r, scratch)
	if err != nil {
		return err
	}
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.UseNumber()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("wire: decode: %w", err)
	}
	return nil
}
