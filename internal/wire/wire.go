// Package wire implements the length-framed JSON message format shared by
// the cluster's TCP protocols: the OP↔worker invocation protocol
// (internal/proto), the message-queue protocol (internal/mq), and the SQL
// protocol (internal/sqlstore).
//
// Every frame is a 4-byte big-endian payload length followed by a JSON
// body. JSON keeps the protocols debuggable with nothing but netcat, which
// matches the plain-text spirit of the paper's Python control plane; the
// length prefix keeps message boundaries explicit and binary-safe ([]byte
// fields ride as base64).
package wire

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
)

// MaxFrame caps a frame's payload to guard against hostile or corrupt
// length prefixes. 64 MiB comfortably covers the largest workload payloads
// (the object-store functions move multi-MiB objects).
const MaxFrame = 64 << 20

// WriteJSON marshals v and writes one frame.
func WriteJSON(w io.Writer, v any) error {
	body, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("wire: marshal: %w", err)
	}
	if len(body) > MaxFrame {
		return fmt.Errorf("wire: frame of %d bytes exceeds %d limit", len(body), MaxFrame)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(body)
	return err
}

// ReadJSON reads one frame and unmarshals it into v. Numbers decode via
// json.Number when v contains `any` fields, preserving int64 precision.
func ReadJSON(r io.Reader, v any) error {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return fmt.Errorf("wire: frame of %d bytes exceeds %d limit", n, MaxFrame)
	}
	// Read through a LimitReader instead of allocating n bytes up front:
	// the length prefix is attacker-controlled on a live socket, and a
	// corrupt header must not pin MaxFrame of memory before the stream
	// proves it has that many bytes.
	body, err := io.ReadAll(io.LimitReader(r, int64(n)))
	if err != nil {
		return err
	}
	if uint32(len(body)) < n {
		// A present header promises a body: running dry mid-frame is a
		// truncation, never a clean end-of-stream.
		return io.ErrUnexpectedEOF
	}
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.UseNumber()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("wire: decode: %w", err)
	}
	return nil
}
