package gpio

import (
	"strings"
	"testing"
	"testing/quick"
	"time"

	"microfaas/internal/power"
)

func TestWireAndPinLookup(t *testing.T) {
	c := NewController()
	if err := c.Wire("sbc-0", 7); err != nil {
		t.Fatal(err)
	}
	pin, ok := c.Pin("sbc-0")
	if !ok || pin != 7 {
		t.Fatalf("Pin = %d/%v", pin, ok)
	}
	if _, ok := c.Pin("ghost"); ok {
		t.Fatal("unwired node has a pin")
	}
}

func TestWireRejectsDuplicates(t *testing.T) {
	c := NewController()
	if err := c.Wire("a", 1); err != nil {
		t.Fatal(err)
	}
	if err := c.Wire("a", 2); err == nil {
		t.Fatal("node double-wired")
	}
	if err := c.Wire("b", 1); err == nil {
		t.Fatal("pin double-used")
	}
	if err := c.Wire("", 3); err == nil {
		t.Fatal("empty node wired")
	}
	if err := c.Wire("c", 0); err == nil {
		t.Fatal("pin 0 accepted")
	}
}

func TestWireNextSkipsUsedPins(t *testing.T) {
	c := NewController()
	if err := c.Wire("manual", 3); err != nil {
		t.Fatal(err)
	}
	pin, err := c.WireNext("auto")
	if err != nil || pin != 4 {
		t.Fatalf("WireNext = %d, %v (want 4, after the manually-used 3)", pin, err)
	}
	nodes := c.Nodes()
	if len(nodes) != 2 || nodes[0] != "auto" || nodes[1] != "manual" {
		t.Fatalf("Nodes = %v", nodes)
	}
}

func TestTransitionRequiresWiring(t *testing.T) {
	c := NewController()
	if err := c.Transition("ghost", 0, power.Off, power.Booting, "x"); err == nil {
		t.Fatal("unwired node actuated")
	}
}

func TestTransitionRejectsNoOp(t *testing.T) {
	c := NewController()
	c.Wire("a", 1) //nolint:errcheck
	if err := c.Transition("a", 0, power.Busy, power.Busy, "x"); err == nil {
		t.Fatal("identity transition accepted")
	}
}

func TestTransitionRejectsTimeTravel(t *testing.T) {
	c := NewController()
	c.Wire("a", 1) //nolint:errcheck
	if err := c.Transition("a", time.Second, power.Off, power.Booting, "on"); err != nil {
		t.Fatal(err)
	}
	if err := c.Transition("a", 500*time.Millisecond, power.Booting, power.Busy, "back"); err == nil {
		t.Fatal("out-of-order event accepted")
	}
}

func TestEventLogAndPowerOnCount(t *testing.T) {
	c := NewController()
	c.Wire("a", 1) //nolint:errcheck
	c.Wire("b", 2) //nolint:errcheck
	steps := []struct {
		node     string
		from, to power.State
	}{
		{"a", power.Off, power.Booting},
		{"a", power.Booting, power.Busy},
		{"b", power.Off, power.Booting},
		{"a", power.Busy, power.Off},
		{"a", power.Off, power.Booting},
	}
	for i, s := range steps {
		if err := c.Transition(s.node, time.Duration(i)*time.Second, s.from, s.to, "t"); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(c.Events()); got != 5 {
		t.Fatalf("%d events", got)
	}
	if got := len(c.EventsFor("a")); got != 4 {
		t.Fatalf("a has %d events", got)
	}
	if got := c.PowerOnCount("a"); got != 2 {
		t.Fatalf("a powered on %d times, want 2", got)
	}
	if got := c.PowerOnCount("b"); got != 1 {
		t.Fatalf("b powered on %d times, want 1", got)
	}
}

func TestEventsReturnsCopy(t *testing.T) {
	c := NewController()
	c.Wire("a", 1)                                         //nolint:errcheck
	c.Transition("a", 0, power.Off, power.Booting, "once") //nolint:errcheck
	evs := c.Events()
	evs[0].Node = "tampered"
	if c.Events()[0].Node != "a" {
		t.Fatal("Events leaked internal storage")
	}
}

func TestWriteCSV(t *testing.T) {
	c := NewController()
	c.Wire("sbc-0", 1)                                                                              //nolint:errcheck
	c.Transition("sbc-0", 1510*time.Millisecond, power.Off, power.Booting, "PWR_BUT press (job 1)") //nolint:errcheck
	var sb strings.Builder
	if err := c.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "at_ms,node,pin,from,to,cause") {
		t.Fatalf("header missing:\n%s", out)
	}
	if !strings.Contains(out, "1510.000,sbc-0,1,off,booting") {
		t.Fatalf("row malformed:\n%s", out)
	}
}

// Property: wiring N distinct nodes via WireNext yields N distinct pins.
func TestWireNextDistinctProperty(t *testing.T) {
	prop := func(n uint8) bool {
		c := NewController()
		seen := map[int]bool{}
		for i := 0; i < int(n%64)+1; i++ {
			pin, err := c.WireNext(strings.Repeat("x", i+1))
			if err != nil || seen[pin] {
				return false
			}
			seen[pin] = true
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
