// Package gpio models the prototype's power-control plane: the OP SBC's
// GPIO header wired to every worker SBC's PWR_BUT pin (Sec IV-D), through
// which the orchestrator powers workers on and off.
//
// The controller does two jobs. First, it enforces the physical wiring
// discipline — every worker must be wired to a distinct GPIO pin before it
// can be actuated, just as the prototype runs one jumper per node. Second,
// it keeps the cluster's power-state audit log: every transition (who,
// when, from→to, why), which is both the evaluation's power timeline and
// the data behind Fig 5-style plots. SimWorkers report their transitions
// here when a controller is attached.
package gpio

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"microfaas/internal/chunklog"
	"microfaas/internal/power"
)

// Event is one power-state transition of one worker node.
type Event struct {
	// At is the cluster-clock timestamp.
	At time.Duration
	// Node is the worker id; Pin the GPIO line that actuated it.
	Node string
	// Pin is the GPIO line number wired to the node's PWR_BUT header.
	Pin int
	// From/To are the power states around the transition.
	From, To power.State
	// Cause describes the actuation, e.g. "PWR_BUT press (job 42)".
	Cause string
}

// Controller is the OP's GPIO header: wiring registry plus transition log.
// Safe for concurrent use.
type Controller struct {
	mu      sync.Mutex
	pins    map[string]int // node -> pin
	used    map[int]string // pin -> node
	nextPin int
	// events is chunked: the log grows by one entry per power transition
	// on the simulator's hot path, and a flat slice's geometric regrowth
	// (zero + copy the whole array at every doubling) was the dominant
	// allocation cost of long runs.
	events chunklog.Log[Event]
}

// NewController returns an empty controller whose pins number from 1.
func NewController() *Controller {
	return &Controller{pins: make(map[string]int), used: make(map[int]string), nextPin: 1}
}

// Wire connects a node's PWR_BUT to a specific pin. Each node and each pin
// may be used once.
func (c *Controller) Wire(node string, pin int) error {
	if node == "" {
		return fmt.Errorf("gpio: empty node name")
	}
	if pin <= 0 {
		return fmt.Errorf("gpio: pin numbers start at 1, got %d", pin)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if p, dup := c.pins[node]; dup {
		return fmt.Errorf("gpio: node %s already wired to pin %d", node, p)
	}
	if n, dup := c.used[pin]; dup {
		return fmt.Errorf("gpio: pin %d already wired to node %s", pin, n)
	}
	c.pins[node] = pin
	c.used[pin] = node
	if pin >= c.nextPin {
		c.nextPin = pin + 1
	}
	return nil
}

// WireNext wires a node to the lowest free pin and returns it.
func (c *Controller) WireNext(node string) (int, error) {
	c.mu.Lock()
	pin := c.nextPin
	c.mu.Unlock()
	if err := c.Wire(node, pin); err != nil {
		return 0, err
	}
	return pin, nil
}

// Pin returns the node's wired pin.
func (c *Controller) Pin(node string) (int, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	pin, ok := c.pins[node]
	return pin, ok
}

// Nodes returns the wired node names, sorted.
func (c *Controller) Nodes() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.pins))
	for n := range c.pins {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Transition records a power-state change for a wired node. Unwired nodes
// are rejected: in the prototype the OP physically cannot actuate them.
func (c *Controller) Transition(node string, at time.Duration, from, to power.State, cause string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	pin, ok := c.pins[node]
	if !ok {
		return fmt.Errorf("gpio: node %s is not wired", node)
	}
	if from == to {
		return fmt.Errorf("gpio: node %s transition %v -> %v is not a transition", node, from, to)
	}
	if last, ok := c.events.Last(); ok && last.At > at {
		return fmt.Errorf("gpio: transition at %v is earlier than the last logged event (%v)", at, last.At)
	}
	c.events.Append(Event{At: at, Node: node, Pin: pin, From: from, To: to, Cause: cause})
	return nil
}

// TransitionMonotone records a transition like Transition but clamps `at`
// forward to the last logged event's timestamp instead of rejecting it.
// Live-mode workers use it: concurrent wall-clock callers can observe
// their timestamps slightly out of order by the time they reach the
// controller's lock, and the audit log must stay lossless and monotone.
// The sim's single-threaded virtual clock never needs the clamp and keeps
// the strict Transition.
func (c *Controller) TransitionMonotone(node string, at time.Duration, from, to power.State, cause string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	pin, ok := c.pins[node]
	if !ok {
		return fmt.Errorf("gpio: node %s is not wired", node)
	}
	if from == to {
		return fmt.Errorf("gpio: node %s transition %v -> %v is not a transition", node, from, to)
	}
	if last, ok := c.events.Last(); ok && last.At > at {
		at = last.At
	}
	c.events.Append(Event{At: at, Node: node, Pin: pin, From: from, To: to, Cause: cause})
	return nil
}

// Events returns a copy of the full transition log, in time order.
func (c *Controller) Events() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.events.Flatten()
}

// EventsFor returns one node's transitions.
func (c *Controller) EventsFor(node string) []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []Event
	c.events.Each(func(e Event) {
		if e.Node == node {
			out = append(out, e)
		}
	})
	return out
}

// PowerOnCount returns how many times a node was powered on (Off →
// anything) — the number of PWR_BUT presses the OP issued for it.
func (c *Controller) PowerOnCount(node string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	c.events.Each(func(e Event) {
		if e.Node == node && e.From == power.Off {
			n++
		}
	})
	return n
}

// WriteCSV dumps the transition log (the cluster's power timeline).
func (c *Controller) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "at_ms,node,pin,from,to,cause"); err != nil {
		return err
	}
	for _, e := range c.Events() {
		if _, err := fmt.Fprintf(w, "%.3f,%s,%d,%s,%s,%q\n",
			float64(e.At)/float64(time.Millisecond), e.Node, e.Pin, e.From, e.To, e.Cause); err != nil {
			return err
		}
	}
	return nil
}
