package core

import (
	"time"

	"microfaas/internal/telemetry"
)

// Metric names the orchestrator owns (see DESIGN.md §7 for the full
// catalogue and the label-cardinality rules).
const (
	metricSubmitted   = "microfaas_jobs_submitted_total"
	metricPending     = "microfaas_jobs_pending"
	metricRetries     = "microfaas_retries_total"
	metricAttempts    = "microfaas_attempts_total"
	metricQueueDepth  = "microfaas_queue_depth"
	metricWorkerBusy  = "microfaas_worker_busy"
	metricBreaker     = "microfaas_breaker_transitions_total"
	metricInvocations = "microfaas_function_invocations_total"
	metricLatency     = "microfaas_invocation_latency_seconds"
	metricFnSubmitted = "microfaas_function_submitted_total"

	metricBudgetLimit     = "microfaas_function_energy_budget_joules"
	metricBudgetSpent     = "microfaas_function_budget_spent_joules"
	metricBudgetExhausted = "microfaas_function_budget_exhausted"
	metricBudgetThrottled = "microfaas_budget_throttled_total"
)

// orchMetrics holds the orchestrator's pre-created metric handles. Every
// handle type no-ops on nil, and a nil map lookup yields a nil handle, so
// the zero orchMetrics is the disabled instrumentation path — call sites
// need no guards.
type orchMetrics struct {
	submitted *telemetry.Counter
	pending   *telemetry.Gauge
	retries   *telemetry.Counter
	latency   *telemetry.Histogram
	// per-function submission counters, filled lazily on first submit
	// so the family only carries functions the workload actually uses
	fnSubmitted map[string]*telemetry.Counter
	// per-worker series, keyed by worker id
	queueDepth map[string]*telemetry.Gauge
	busy       map[string]*telemetry.Gauge
	attempts   map[string]map[string]*telemetry.Counter // worker → result
	breakerTo  map[string]map[string]*telemetry.Counter // worker → state
	// energy-budget series: one counter for throttle holds, and a gauge
	// triple per budgeted function (filled as budgets are installed)
	budgetThrottled *telemetry.Counter
	budgetLimit     map[string]*telemetry.Gauge
	budgetSpent     map[string]*telemetry.Gauge
	budgetExhausted map[string]*telemetry.Gauge
}

// initTelemetryLocked pre-creates the orchestrator's metric families so
// every per-worker series is present (at zero) from the first scrape.
func (o *Orchestrator) initTelemetry(tel *telemetry.Telemetry) {
	o.tel = tel
	if tel == nil {
		return
	}
	reg := tel.Registry()
	o.m = orchMetrics{
		submitted: reg.Counter(metricSubmitted, "Jobs accepted by the orchestration platform."),
		pending:   reg.Gauge(metricPending, "Jobs queued, running, or parked for retry backoff."),
		retries:   reg.Counter(metricRetries, "Failed attempts re-queued onto another worker."),
		latency: reg.Histogram(metricLatency,
			"End-to-end latency of successful invocations (submit to final result).",
			telemetry.LogBuckets(0.001, 60, 14)),
		fnSubmitted: make(map[string]*telemetry.Counter),
		queueDepth:  make(map[string]*telemetry.Gauge, len(o.slots)),
		busy:        make(map[string]*telemetry.Gauge, len(o.slots)),
		attempts:    make(map[string]map[string]*telemetry.Counter, len(o.slots)),
		breakerTo:   make(map[string]map[string]*telemetry.Counter, len(o.slots)),
		budgetThrottled: reg.Counter(metricBudgetThrottled,
			"Submissions held before queueing because their function's energy budget was spent."),
		budgetLimit:     make(map[string]*telemetry.Gauge),
		budgetSpent:     make(map[string]*telemetry.Gauge),
		budgetExhausted: make(map[string]*telemetry.Gauge),
	}
	for _, s := range o.slots {
		o.initWorkerTelemetry(s.id)
	}
}

// initWorkerTelemetry (re-)creates one worker's metric series. Called
// per worker at construction and again from AddWorker — the registry
// returns the existing series for a repeated (name, labels) pair, so a
// worker re-homed back to its original shard resumes its old counters.
func (o *Orchestrator) initWorkerTelemetry(id string) {
	if o.tel == nil {
		return
	}
	reg := o.tel.Registry()
	o.m.queueDepth[id] = reg.Gauge(metricQueueDepth, "Queued (not yet running) jobs per worker.", "worker", id)
	o.m.busy[id] = reg.Gauge(metricWorkerBusy, "1 while the worker is executing a job.", "worker", id)
	o.m.attempts[id] = map[string]*telemetry.Counter{}
	for _, result := range []string{"ok", "error", "timeout"} {
		o.m.attempts[id][result] = reg.Counter(metricAttempts,
			"Finished attempts per worker and outcome (timeouts are deadline expiries).",
			"worker", id, "result", result)
	}
	o.m.breakerTo[id] = map[string]*telemetry.Counter{}
	for _, state := range []string{"open", "closed"} {
		o.m.breakerTo[id][state] = reg.Counter(metricBreaker,
			"Circuit-breaker transitions per worker.", "worker", id, "to", state)
	}
}

// emit appends one lifecycle event stamped with the cluster clock. Callers
// may hold o.mu: the event log's lock is a leaf.
func (o *Orchestrator) emit(typ string, job Job, worker, detail string) {
	if o.tel == nil {
		return
	}
	o.tel.Emit(o.runtime.Now(), typ, job.ID, job.Function, worker, job.Attempt, detail)
}

// noteSubmittedLocked bumps the per-function submission counter — the
// arrival-rate tracker's source series. Caller holds o.mu, which also
// serializes the lazy map fill.
func (o *Orchestrator) noteSubmittedLocked(function string) {
	if o.tel == nil {
		return
	}
	c, ok := o.m.fnSubmitted[function]
	if !ok {
		c = o.tel.Registry().Counter(metricFnSubmitted,
			"Jobs submitted per function (before scheduling or retries).",
			"function", function)
		o.m.fnSubmitted[function] = c
	}
	c.Inc()
}

// noteBudgetLocked refreshes one function's budget gauge triple, creating
// the series on the budget's first installation. Caller holds o.mu, which
// serializes the lazy map fill.
func (o *Orchestrator) noteBudgetLocked(function string, limit, spent float64, exhausted bool) {
	if o.tel == nil {
		return
	}
	lg, ok := o.m.budgetLimit[function]
	if !ok {
		reg := o.tel.Registry()
		lg = reg.Gauge(metricBudgetLimit,
			"Configured per-function energy cap (0 after budget removal).",
			"function", function)
		o.m.budgetLimit[function] = lg
		o.m.budgetSpent[function] = reg.Gauge(metricBudgetSpent,
			"Metered joules charged against the function's budget (all attempts).",
			"function", function)
		o.m.budgetExhausted[function] = reg.Gauge(metricBudgetExhausted,
			"1 while the function's energy budget is spent (deprioritized/throttled).",
			"function", function)
	}
	lg.Set(limit)
	o.m.budgetSpent[function].Set(spent)
	x := 0.0
	if exhausted {
		x = 1
	}
	o.m.budgetExhausted[function].Set(x)
}

// noteAttemptMetrics records one finished attempt's outcome series.
func (o *Orchestrator) noteAttemptMetrics(workerID, result string) {
	o.m.attempts[workerID][result].Inc()
}

// noteFinal records a job's final outcome: the per-function counter and,
// on success, the end-to-end latency sample.
func (o *Orchestrator) noteFinal(job Job, res Result, finished time.Duration) {
	if o.tel == nil {
		return
	}
	result := "ok"
	if res.Err != "" {
		result = "error"
	}
	o.tel.Registry().Counter(metricInvocations,
		"Final per-function outcomes (after any retries).",
		"function", job.Function, "result", result).Inc()
	if res.Err == "" {
		o.m.latency.Observe((finished - job.SubmittedAt).Seconds())
	}
}

// queueDepthChangedLocked refreshes a worker's queue-depth gauge. Caller
// holds o.mu.
func (o *Orchestrator) queueDepthChangedLocked(s *workerSlot) {
	o.m.queueDepth[s.id].Set(float64(s.qlen()))
}
