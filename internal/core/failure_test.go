package core

import (
	"context"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"microfaas/internal/sim"
)

// hangWorker wedges: RunJob optionally never invokes done, or invokes it
// only after a long delay — the sim-mode stand-in for a crashed or
// unreachable node.
type hangWorker struct {
	id     string
	engine *sim.Engine
	// lateAfter > 0: done fires that long after RunJob (a slow recovery);
	// zero: done never fires at all (a true wedge).
	lateAfter time.Duration
	mu        sync.Mutex
	runs      int
}

func (w *hangWorker) ID() string { return w.id }

func (w *hangWorker) RunJob(job Job, done func(Result)) {
	w.mu.Lock()
	w.runs++
	w.mu.Unlock()
	if w.lateAfter <= 0 {
		return // never reports back
	}
	started := w.engine.Now()
	w.engine.Schedule(w.lateAfter, func() {
		done(Result{Job: job, WorkerID: w.id, StartedAt: started, FinishedAt: w.engine.Now()})
	})
}

// errWorker fails every job immediately with an error.
type errWorker struct {
	id     string
	engine *sim.Engine
	mu     sync.Mutex
	runs   int
}

func (w *errWorker) ID() string { return w.id }

func (w *errWorker) RunJob(job Job, done func(Result)) {
	w.mu.Lock()
	w.runs++
	w.mu.Unlock()
	started := w.engine.Now()
	w.engine.Schedule(time.Millisecond, func() {
		done(Result{Job: job, WorkerID: w.id, Err: "boom", StartedAt: started, FinishedAt: w.engine.Now()})
	})
}

func TestDeadlineRescuesJobFromHungWorker(t *testing.T) {
	e := sim.NewEngine(7)
	hung := &hangWorker{id: "hung", engine: e}
	good := &fakeWorker{id: "good", engine: e, service: 10 * time.Millisecond}
	o, err := New(Config{
		Runtime: SimRuntime{Engine: e}, Workers: []Worker{hung, good},
		Seed: 11, MaxAttempts: 2, JobTimeout: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := o.SubmitTo("hung", "F", nil); err != nil {
		t.Fatal(err)
	}
	e.RunAll()
	recs := o.Collector().Records()
	if len(recs) != 2 {
		t.Fatalf("records = %+v", recs)
	}
	if recs[0].Worker != "hung" || !strings.Contains(recs[0].Err, "deadline") {
		t.Fatalf("attempt 0 = %+v", recs[0])
	}
	if recs[0].Finished != time.Second {
		t.Fatalf("deadline fired at %v, want 1s", recs[0].Finished)
	}
	// The retry landed on the healthy worker and succeeded.
	if recs[1].Worker != "good" || recs[1].Err != "" || recs[1].Attempt != 1 {
		t.Fatalf("attempt 1 = %+v", recs[1])
	}
	if o.Pending() != 0 {
		t.Fatal("job still pending after rescue")
	}
}

func TestDeadlineReassignsQueuedJobsOffWedgedWorker(t *testing.T) {
	e := sim.NewEngine(7)
	hung := &hangWorker{id: "hung", engine: e}
	good := &fakeWorker{id: "good", engine: e, service: 10 * time.Millisecond}
	o, err := New(Config{
		Runtime: SimRuntime{Engine: e}, Workers: []Worker{hung, good},
		Seed: 11, MaxAttempts: 2, JobTimeout: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Three jobs pile onto the wedged worker's queue; the first hangs.
	for i := 0; i < 3; i++ {
		if _, err := o.SubmitTo("hung", "F", nil); err != nil {
			t.Fatal(err)
		}
	}
	e.RunAll()
	if o.Pending() != 0 {
		t.Fatalf("%d jobs still pending behind the hang", o.Pending())
	}
	// Jobs 2 and 3 never ran on the wedged worker — its queue was
	// reassigned when the deadline fired, so they completed on "good".
	ok := 0
	for _, r := range o.Collector().Records() {
		if r.Worker == "good" && r.Err == "" {
			ok++
		}
	}
	if ok != 3 { // jobs 2, 3, and job 1's retry
		t.Fatalf("healthy worker completed %d jobs, want 3", ok)
	}
	if hung.runs != 1 {
		t.Fatalf("wedged worker was handed %d jobs after hanging", hung.runs)
	}
}

func TestLateResultAfterDeadlineIsDiscardedAndUnwedges(t *testing.T) {
	e := sim.NewEngine(7)
	// Reports back 5s after starting — well past the 1s deadline.
	w := &hangWorker{id: "slow", engine: e, lateAfter: 5 * time.Second}
	o, err := New(Config{
		Runtime: SimRuntime{Engine: e}, Workers: []Worker{w},
		Seed: 11, JobTimeout: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	o.Submit("F", nil)
	o.Submit("F", nil)
	e.RunAll()
	// Both attempts timed out (MaxAttempts 1 → no retries), and the late
	// done callbacks produced no duplicate records; the second job was
	// dispatched only after the first's late recovery freed the worker.
	recs := o.Collector().Records()
	if len(recs) != 2 {
		t.Fatalf("records = %+v", recs)
	}
	for _, r := range recs {
		if !strings.Contains(r.Err, "deadline") {
			t.Fatalf("record = %+v", r)
		}
	}
	if recs[1].Started != 5*time.Second {
		t.Fatalf("second job started at %v, want 5s (after late recovery)", recs[1].Started)
	}
	if o.Pending() != 0 {
		t.Fatal("pending jobs left")
	}
	for _, h := range o.Health() {
		if h.Busy {
			t.Fatalf("worker %s still marked busy", h.ID)
		}
		if h.TimedOut != 2 {
			t.Fatalf("health = %+v", h)
		}
	}
}

func TestRetryBackoffScheduleIsDeterministic(t *testing.T) {
	run := func() []time.Duration {
		e := sim.NewEngine(7)
		a := &errWorker{id: "a", engine: e}
		b := &errWorker{id: "b", engine: e}
		o, err := New(Config{
			Runtime: SimRuntime{Engine: e}, Workers: []Worker{a, b},
			Seed: 11, MaxAttempts: 3, RetryBase: 100 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		o.Submit("F", nil)
		e.RunAll()
		var starts []time.Duration
		for _, r := range o.Collector().Records() {
			starts = append(starts, r.Started)
		}
		return starts
	}
	starts := run()
	if len(starts) != 3 {
		t.Fatalf("attempts = %v", starts)
	}
	// Attempt n starts after the previous finished (+1ms service) plus a
	// jittered delay in [d/2, d], d = RetryBase·2^(n-1).
	gap1 := starts[1] - starts[0] - time.Millisecond
	gap2 := starts[2] - starts[1] - time.Millisecond
	if gap1 < 50*time.Millisecond || gap1 > 100*time.Millisecond {
		t.Fatalf("first backoff %v outside [50ms,100ms]", gap1)
	}
	if gap2 < 100*time.Millisecond || gap2 > 200*time.Millisecond {
		t.Fatalf("second backoff %v outside [100ms,200ms]", gap2)
	}
	// Same seed, same schedule: the jitter comes from the seeded RNG.
	again := run()
	for i := range starts {
		if starts[i] != again[i] {
			t.Fatalf("schedule not deterministic: %v vs %v", starts, again)
		}
	}
}

func TestBreakerOpensEjectsAndProbes(t *testing.T) {
	e := sim.NewEngine(7)
	bad := &errWorker{id: "bad", engine: e}
	good := &fakeWorker{id: "good", engine: e, service: time.Millisecond}
	o, err := New(Config{
		Runtime: SimRuntime{Engine: e}, Workers: []Worker{bad, good},
		Seed: 11, BreakerThreshold: 2, BreakerProbe: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Two consecutive failures trip the breaker.
	for i := 0; i < 2; i++ {
		if _, err := o.SubmitTo("bad", "F", nil); err != nil {
			t.Fatal(err)
		}
		e.RunAll()
	}
	if st := o.Health()[0].State; st != BreakerOpen {
		t.Fatalf("breaker = %v after threshold failures", st)
	}
	// While open, random assignment never picks the ejected worker.
	before := bad.runs
	for i := 0; i < 30; i++ {
		o.Submit("F", nil)
	}
	e.RunAll()
	if bad.runs != before {
		t.Fatalf("open breaker still received %d jobs", bad.runs-before)
	}
	if len(good.runs) < 30 {
		t.Fatalf("healthy worker ran %d of 30", len(good.runs))
	}
	// Past the probe interval the breaker is half-open: the worker is
	// assignable, and its next failure re-opens the breaker.
	e.Schedule(15*time.Second, func() {})
	e.RunAll()
	if st := o.Health()[0].State; st != BreakerHalfOpen {
		t.Fatalf("breaker = %v after probe interval", st)
	}
	if _, err := o.SubmitTo("bad", "F", nil); err != nil {
		t.Fatal(err)
	}
	e.RunAll()
	if st := o.Health()[0].State; st != BreakerOpen {
		t.Fatalf("breaker = %v after failed probe", st)
	}
	// A successful attempt closes it for good.
	o.mu.Lock()
	o.noteAttemptLocked(o.byID["bad"], true, false)
	o.mu.Unlock()
	if st := o.Health()[0].State; st != BreakerClosed {
		t.Fatalf("breaker = %v after successful probe", st)
	}
}

func TestBreakerSuccessResetsConsecutiveFailures(t *testing.T) {
	e := sim.NewEngine(7)
	w := &fakeWorker{id: "w", engine: e, service: time.Millisecond}
	o, err := New(Config{
		Runtime: SimRuntime{Engine: e}, Workers: []Worker{w},
		Seed: 11, BreakerThreshold: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	o.mu.Lock()
	o.noteAttemptLocked(o.byID["w"], false, false)
	o.noteAttemptLocked(o.byID["w"], false, false)
	o.noteAttemptLocked(o.byID["w"], true, false) // success wipes the streak
	o.noteAttemptLocked(o.byID["w"], false, false)
	o.mu.Unlock()
	h := o.Health()[0]
	if h.State != BreakerClosed || h.ConsecutiveFailures != 1 {
		t.Fatalf("health = %+v", h)
	}
	if h.Completed != 1 || h.Failed != 3 {
		t.Fatalf("health counters = %+v", h)
	}
}

func TestAllBreakersOpenStillAssigns(t *testing.T) {
	e := sim.NewEngine(7)
	a := &errWorker{id: "a", engine: e}
	b := &errWorker{id: "b", engine: e}
	o, err := New(Config{
		Runtime: SimRuntime{Engine: e}, Workers: []Worker{a, b},
		Seed: 11, BreakerThreshold: 1, BreakerProbe: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"a", "b"} {
		if _, err := o.SubmitTo(id, "F", nil); err != nil {
			t.Fatal(err)
		}
	}
	e.RunAll()
	// Both breakers open; submission must still land somewhere rather
	// than blow up or silently drop.
	if id := o.Submit("F", nil); id == 0 {
		t.Fatal("submit rejected with all breakers open")
	}
	e.RunAll()
	if o.Pending() != 0 {
		t.Fatal("job never ran")
	}
}

func TestDrainAbandonsQueuedJobs(t *testing.T) {
	rt := NewWallRuntime()
	w := &goWorker{id: "w", service: 30 * time.Millisecond}
	o, err := New(Config{Runtime: rt, Workers: []Worker{w}, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	var firedMu sync.Mutex
	firedIDs := map[int64]bool{}
	for i := 0; i < 6; i++ {
		o.SubmitAsync("F", nil, func(res Result) {
			firedMu.Lock()
			firedIDs[res.Job.ID] = true
			firedMu.Unlock()
		})
	}
	ctx, cancel := context.WithTimeout(context.Background(), 75*time.Millisecond)
	defer cancel()
	abandoned := o.Drain(ctx)
	if len(abandoned) == 0 {
		t.Fatal("nothing abandoned although the drain deadline was shorter than the queue")
	}
	for i := 1; i < len(abandoned); i++ {
		if abandoned[i-1].ID >= abandoned[i].ID {
			t.Fatalf("abandoned jobs not sorted: %+v", abandoned)
		}
	}
	if !o.Draining() {
		t.Fatal("Draining() = false after Drain")
	}
	// New work is refused once draining.
	if id := o.Submit("F", nil); id != 0 {
		t.Fatalf("submit during drain accepted as job %d", id)
	}
	if _, err := o.SubmitTo("w", "F", nil); err == nil {
		t.Fatal("SubmitTo during drain accepted")
	}
	// The in-flight job finishes in the background and pending hits zero.
	o.Quiesce()
	if o.Pending() != 0 {
		t.Fatalf("pending = %d after drain + quiesce", o.Pending())
	}
	// Abandoned jobs never fire their callbacks.
	time.Sleep(50 * time.Millisecond)
	firedMu.Lock()
	defer firedMu.Unlock()
	for _, j := range abandoned {
		if firedIDs[j.ID] {
			t.Fatalf("abandoned job %d fired its callback", j.ID)
		}
	}
	if len(firedIDs)+len(abandoned) != 6 {
		t.Fatalf("%d callbacks + %d abandoned != 6 submissions", len(firedIDs), len(abandoned))
	}
}

func TestDrainReturnsNilWhenAllWorkFinishes(t *testing.T) {
	rt := NewWallRuntime()
	w := &goWorker{id: "w", service: time.Millisecond}
	o, err := New(Config{Runtime: rt, Workers: []Worker{w}, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		o.Submit("F", nil)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if abandoned := o.Drain(ctx); abandoned != nil {
		t.Fatalf("abandoned %+v with an ample deadline", abandoned)
	}
	if o.Collector().Len() != 5 {
		t.Fatalf("completed %d of 5", o.Collector().Len())
	}
}

func TestDrainStopsRetries(t *testing.T) {
	rt := NewWallRuntime()
	// Always-failing live-style worker: errors come back on goroutines.
	w := &goErrWorker{id: "w", service: 10 * time.Millisecond}
	o, err := New(Config{
		Runtime: rt, Workers: []Worker{w}, Seed: 3,
		MaxAttempts: 100, RetryBase: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	o.Submit("F", nil)
	time.Sleep(30 * time.Millisecond) // let a retry or two park
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	o.Drain(ctx)
	o.Quiesce()
	n := o.Collector().Len()
	time.Sleep(100 * time.Millisecond)
	if got := o.Collector().Len(); got != n {
		t.Fatalf("attempts kept coming after drain: %d → %d", n, got)
	}
}

// goErrWorker fails every job from a real goroutine (live-mode shape).
type goErrWorker struct {
	id      string
	service time.Duration
}

func (w *goErrWorker) ID() string { return w.id }

func (w *goErrWorker) RunJob(job Job, done func(Result)) {
	go func() {
		time.Sleep(w.service)
		done(Result{Job: job, WorkerID: w.id, Err: "boom"})
	}()
}

func TestStartArrivalsStopPreventsInFlightTick(t *testing.T) {
	rt := NewWallRuntime()
	w := &goWorker{id: "w", service: time.Millisecond}
	o, err := New(Config{Runtime: rt, Workers: []Worker{w}, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Hammer start/stop at a tick interval short enough that stop races
	// the tick; the stopped re-check under o.mu must win every time.
	for i := 0; i < 20; i++ {
		stop, err := o.StartArrivals(time.Millisecond, 1, func(*rand.Rand) (string, []byte) {
			return "F", nil
		})
		if err != nil {
			t.Fatal(err)
		}
		time.Sleep(2 * time.Millisecond)
		stop()
	}
	o.Quiesce()
	n := o.Collector().Len()
	time.Sleep(20 * time.Millisecond)
	if got := o.Collector().Len(); got != n {
		t.Fatalf("arrivals after stop: %d → %d", n, got)
	}
}

func TestSubmitWithTimeoutOverridesDefault(t *testing.T) {
	e := sim.NewEngine(7)
	w := &hangWorker{id: "w", engine: e}
	o, err := New(Config{
		Runtime: SimRuntime{Engine: e}, Workers: []Worker{w},
		Seed: 11, JobTimeout: time.Hour, // default would outlast the test
	})
	if err != nil {
		t.Fatal(err)
	}
	var final Result
	o.SubmitWithTimeout("F", nil, 2*time.Second, func(res Result) { final = res })
	e.RunAll()
	if !final.TimedOut || final.FinishedAt != 2*time.Second {
		t.Fatalf("result = %+v", final)
	}
}

func TestFailureConfigValidation(t *testing.T) {
	e := sim.NewEngine(1)
	w := &fakeWorker{id: "w", engine: e, service: time.Millisecond}
	base := Config{Runtime: SimRuntime{Engine: e}, Workers: []Worker{w}}
	for name, mutate := range map[string]func(*Config){
		"negative timeout":   func(c *Config) { c.JobTimeout = -time.Second },
		"negative base":      func(c *Config) { c.RetryBase = -time.Second },
		"negative threshold": func(c *Config) { c.BreakerThreshold = -1 },
		"max below base":     func(c *Config) { c.RetryBase = time.Second; c.RetryMax = time.Millisecond },
	} {
		cfg := base
		mutate(&cfg)
		if _, err := New(cfg); err == nil {
			t.Fatalf("%s accepted", name)
		}
	}
}
