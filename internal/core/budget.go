package core

import "sort"

// Per-function energy budgets (the FaasMeter idea transplanted onto the
// bare-metal cluster): every attempt's worker-metered joules are charged
// to its function, and a function that spends through its cap is pushed
// to the back of the energy line — the energy-aware policy stops waking
// nodes for it, and (when BudgetThrottle is set) its new submissions
// serve a hold before queueing. Budgets never reject work: an exhausted
// function still runs, just slower and only on hardware that is already
// powered.

// SetEnergyBudget sets or updates a function's energy cap at runtime.
// Raising the cap above the joules already spent clears the exhausted
// latch; joules <= 0 removes the budget (and all enforcement) entirely.
// Spending already charged is retained across updates.
func (o *Orchestrator) SetEnergyBudget(function string, joules float64) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.setBudgetLocked(function, joules)
}

// setBudgetLocked installs, updates, or removes one budget and refreshes
// its telemetry series. Caller holds o.mu.
func (o *Orchestrator) setBudgetLocked(function string, joules float64) {
	if joules <= 0 {
		if _, ok := o.budgets[function]; ok {
			delete(o.budgets, function)
			o.noteBudgetLocked(function, 0, 0, false)
		}
		return
	}
	b, ok := o.budgets[function]
	if !ok {
		b = &fnBudget{}
		o.budgets[function] = b
	}
	b.limit = joules
	b.exhausted = b.spent >= b.limit
	o.noteBudgetLocked(function, b.limit, b.spent, b.exhausted)
}

// chargeEnergyLocked accounts one attempt's metered joules against its
// function's budget (no-op for unbudgeted functions and unmetered
// workers). Caller holds o.mu.
func (o *Orchestrator) chargeEnergyLocked(function string, joules float64) {
	b, ok := o.budgets[function]
	if !ok || joules <= 0 {
		return
	}
	b.spent += joules
	if !b.exhausted && b.spent >= b.limit {
		b.exhausted = true
	}
	o.noteBudgetLocked(function, b.limit, b.spent, b.exhausted)
}

// EnergyBudgets returns every budgeted function's accounting snapshot,
// sorted by function name.
func (o *Orchestrator) EnergyBudgets() []BudgetStatus {
	o.mu.Lock()
	defer o.mu.Unlock()
	out := make([]BudgetStatus, 0, len(o.budgets))
	for fn, b := range o.budgets {
		out = append(out, BudgetStatus{
			Function:    fn,
			LimitJoules: b.limit,
			SpentJoules: b.spent,
			Exhausted:   b.exhausted,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Function < out[j].Function })
	return out
}
