package core

import (
	"container/heap"
	"fmt"
	"sort"

	"microfaas/internal/telemetry"
)

// Shard-death support: the drain-all variant of the steal protocol plus
// dynamic worker membership (see internal/shard's health checker, the
// only caller).
//
// When the plane declares a shard dead it (1) Seals the orchestrator so
// nothing new is accepted and nothing queued is dispatched onto dead
// hardware, (2) TakeAlls every queued and backoff-parked job — identity
// intact, exactly like TakeQueued — and re-submits them on survivors,
// and (3) re-homes the dead shard's workers onto survivors with
// RemoveWorker/AddWorker. Attempts already executing when the shard
// died are left alone: an SBC that lost its control plane still
// finishes the job on its flash and the late done callback settles it
// normally, so every accepted invocation settles exactly once.

// Seal stops this orchestrator cold: new submissions are rejected
// (Submit and SubmitJob return 0), the arrival process stops, and
// queued jobs freeze in place — no further dispatch — so they can be
// recovered intact with TakeAll. In-flight attempts are unaffected and
// settle normally (a failure during the sealed window finalizes instead
// of retrying, as in Drain). Unlike Drain, Seal does not wait and is
// reversible with Reopen.
func (o *Orchestrator) Seal() {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.draining = true
	o.sealed = true
	if o.arrivalCancel != nil {
		o.arrivalCancel()
		o.arrivalCancel = nil
	}
}

// Sealed reports whether Seal has been called without a matching Reopen.
func (o *Orchestrator) Sealed() bool {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.sealed
}

// Reopen reverses Seal: submissions are accepted again and any jobs
// still queued (frozen by the seal) dispatch immediately.
func (o *Orchestrator) Reopen() {
	o.mu.Lock()
	o.draining = false
	o.sealed = false
	var runs []*inflight
	for _, s := range o.slots {
		if run := o.maybeDispatchLocked(s); run != nil {
			runs = append(runs, run)
		}
	}
	o.mu.Unlock()
	for _, run := range runs {
		run.run()
	}
}

// TakeAll removes every recoverable job — all queued work including
// queue heads, plus backoff-parked retries whose timers are cancelled —
// and returns them with their callbacks, identity intact, for
// re-submission elsewhere (SubmitJob on a survivor shard). Unlike
// TakeQueued it leaves nothing behind except attempts already
// executing. Order is deterministic: per-worker queues in registration
// order (each front to back), then parked retries by job id.
func (o *Orchestrator) TakeAll() []Stolen {
	o.mu.Lock()
	defer o.mu.Unlock()
	var out []Stolen
	for _, s := range o.slots {
		if s.qlen() == 0 {
			continue
		}
		for _, job := range s.qtake() {
			o.emit(telemetry.EventQueue, job, s.id, "stolen-from")
			cb := o.callbacks[job.ID]
			delete(o.callbacks, job.ID)
			out = append(out, Stolen{Job: job, Callback: cb})
		}
		o.queueDepthChangedLocked(s)
	}
	if len(o.parked) > 0 {
		ids := make([]int64, 0, len(o.parked))
		for id := range o.parked {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			p := o.parked[id]
			p.cancel()
			delete(o.parked, id)
			o.emit(telemetry.EventQueue, p.job, "", "stolen-from")
			cb := o.callbacks[id]
			delete(o.callbacks, id)
			out = append(out, Stolen{Job: p.job, Callback: cb})
		}
	}
	if len(out) > 0 {
		o.pending -= len(out)
		o.m.pending.Set(float64(o.pending))
		if o.pending == 0 {
			o.idle.Broadcast()
		}
	}
	return out
}

// AddWorker registers a worker at runtime (the far end of a re-homing:
// a dead shard's board joining a survivor's partition, or a rejoined
// shard taking its boards back). The worker lands at the end of the
// registration order with a fresh health record and its per-worker
// metric series (re)attached. Not supported under a power manager,
// whose node set is fixed at construction.
func (o *Orchestrator) AddWorker(w Worker) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.pm != nil {
		return fmt.Errorf("core: cannot add workers to a power-managed orchestrator")
	}
	id := w.ID()
	if _, dup := o.byID[id]; dup {
		return fmt.Errorf("core: duplicate worker id %q", id)
	}
	s := &workerSlot{w: w, id: id, idx: o.nextIdx, eligPos: -1, parolePos: -1}
	o.nextIdx++
	o.slots = append(o.slots, s)
	o.byID[id] = s
	o.addEligibleLocked(s)
	o.initWorkerTelemetry(id)
	return nil
}

// RemoveWorker detaches a worker from this orchestrator so it can be
// handed to another one. Its queued jobs are reassigned to the
// remaining local workers immediately; the worker itself is released
// through handoff — right away when idle, or as soon as its current
// attempt settles when busy (a worker wedged past its deadline is
// handed off when its late callback finally arrives). handoff runs
// outside the orchestrator lock; nil skips the callback. The detached
// worker takes no further assignments the moment this returns. The last
// worker cannot be removed, and power-managed orchestrators (fixed node
// set) refuse.
func (o *Orchestrator) RemoveWorker(workerID string, handoff func(Worker)) error {
	o.mu.Lock()
	if o.pm != nil {
		o.mu.Unlock()
		return fmt.Errorf("core: cannot remove workers from a power-managed orchestrator")
	}
	s, ok := o.byID[workerID]
	if !ok {
		o.mu.Unlock()
		return fmt.Errorf("core: unknown worker %q", workerID)
	}
	if len(o.slots) == 1 {
		o.mu.Unlock()
		return fmt.Errorf("core: cannot remove the last worker %q", workerID)
	}
	o.detachLocked(s)
	runs := o.reassignQueueLocked(s)
	var release func(Worker)
	if s.busy {
		// The in-flight attempt owns the worker until its done callback;
		// completed() fires the stashed handoff then.
		s.pendingHandoff = handoff
	} else {
		release = handoff
	}
	o.mu.Unlock()
	for _, run := range runs {
		run.run()
	}
	if release != nil {
		release(s.w)
	}
	return nil
}

// detachLocked splices a slot out of every assignment structure: the
// slot list, the id index, and the eligible/parole split. Registration
// indices are not renumbered (idx stays unique; order comparisons still
// work). The slot object itself stays alive for any in-flight attempt
// that still points at it. Caller holds o.mu.
func (o *Orchestrator) detachLocked(s *workerSlot) {
	for i, t := range o.slots {
		if t == s {
			o.slots = append(o.slots[:i], o.slots[i+1:]...)
			break
		}
	}
	delete(o.byID, s.id)
	o.removeEligibleLocked(s)
	if s.parolePos >= 0 {
		heap.Remove(&o.parole, s.parolePos)
	}
	s.detached = true
}

// takeHandoffLocked claims a detached slot's deferred handoff, if its
// current attempt has settled. Caller holds o.mu and calls the returned
// function (with s.w) after releasing it.
func (o *Orchestrator) takeHandoffLocked(s *workerSlot) func(Worker) {
	if s.pendingHandoff == nil || s.busy {
		return nil
	}
	fn := s.pendingHandoff
	s.pendingHandoff = nil
	return fn
}
