package core

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"microfaas/internal/sim"
	"microfaas/internal/trace"
)

// fakeWorker is a sim-driven worker with a fixed service time that records
// overlap violations (run-to-completion means never two jobs at once).
type fakeWorker struct {
	id      string
	engine  *sim.Engine
	service time.Duration
	mu      sync.Mutex
	running int
	overlap bool
	runs    []string
}

func (w *fakeWorker) ID() string { return w.id }

func (w *fakeWorker) RunJob(job Job, done func(Result)) {
	w.mu.Lock()
	w.running++
	if w.running > 1 {
		w.overlap = true
	}
	w.runs = append(w.runs, job.Function)
	w.mu.Unlock()
	started := w.engine.Now()
	w.engine.Schedule(w.service, func() {
		w.mu.Lock()
		w.running--
		w.mu.Unlock()
		done(Result{
			Job: job, WorkerID: w.id,
			StartedAt: started, FinishedAt: w.engine.Now(),
			Boot: w.service / 3, Exec: w.service / 2, Overhead: w.service / 6,
		})
	})
}

func newSimCluster(t *testing.T, n int, service time.Duration) (*sim.Engine, *Orchestrator, []*fakeWorker) {
	t.Helper()
	e := sim.NewEngine(7)
	workers := make([]*fakeWorker, n)
	ws := make([]Worker, n)
	for i := range workers {
		workers[i] = &fakeWorker{id: fmt.Sprintf("w%02d", i), engine: e, service: service}
		ws[i] = workers[i]
	}
	o, err := New(Config{Runtime: SimRuntime{Engine: e}, Workers: ws, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	return e, o, workers
}

func TestSubmitRunsJob(t *testing.T) {
	e, o, _ := newSimCluster(t, 1, time.Second)
	id := o.Submit("FloatOps", []byte(`{}`))
	if id != 1 {
		t.Fatalf("job id = %d", id)
	}
	e.RunAll()
	recs := o.Collector().Records()
	if len(recs) != 1 || recs[0].Function != "FloatOps" || recs[0].Err != "" {
		t.Fatalf("records = %+v", recs)
	}
	if recs[0].Finished != time.Second {
		t.Fatalf("finished at %v", recs[0].Finished)
	}
}

func TestRunToCompletionNeverOverlaps(t *testing.T) {
	e, o, workers := newSimCluster(t, 3, 100*time.Millisecond)
	for i := 0; i < 50; i++ {
		o.Submit("F", nil)
	}
	e.RunAll()
	for _, w := range workers {
		if w.overlap {
			t.Fatalf("worker %s ran two jobs at once", w.id)
		}
	}
	if got := o.Collector().Len(); got != 50 {
		t.Fatalf("completed %d of 50", got)
	}
}

func TestQueuedJobsDrainInFIFOOrder(t *testing.T) {
	e, o, workers := newSimCluster(t, 1, 10*time.Millisecond)
	for i := 0; i < 5; i++ {
		o.Submit(fmt.Sprintf("f%d", i), nil)
	}
	e.RunAll()
	w := workers[0]
	for i, fn := range w.runs {
		if fn != fmt.Sprintf("f%d", i) {
			t.Fatalf("run order = %v", w.runs)
		}
	}
}

func TestSubmitSpreadsAcrossWorkers(t *testing.T) {
	e, o, workers := newSimCluster(t, 10, time.Millisecond)
	for i := 0; i < 500; i++ {
		o.Submit("F", nil)
	}
	e.RunAll()
	for _, w := range workers {
		if len(w.runs) < 20 {
			t.Fatalf("worker %s got only %d of 500 jobs — assignment not random", w.id, len(w.runs))
		}
	}
}

func TestSubmitTo(t *testing.T) {
	e, o, workers := newSimCluster(t, 3, time.Millisecond)
	if _, err := o.SubmitTo("w02", "F", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := o.SubmitTo("nope", "F", nil); err == nil {
		t.Fatal("unknown worker accepted")
	}
	e.RunAll()
	if len(workers[2].runs) != 1 || len(workers[0].runs) != 0 {
		t.Fatal("SubmitTo did not target the named worker")
	}
}

func TestPendingAndQueueDepth(t *testing.T) {
	e, o, _ := newSimCluster(t, 1, time.Second)
	o.Submit("F", nil)
	o.Submit("F", nil)
	o.Submit("F", nil)
	if got := o.Pending(); got != 3 {
		t.Fatalf("Pending = %d", got)
	}
	if got := o.QueueDepth("w00"); got != 2 { // one running, two queued
		t.Fatalf("QueueDepth = %d", got)
	}
	e.RunAll()
	if o.Pending() != 0 || o.QueueDepth("w00") != 0 {
		t.Fatal("cluster did not drain")
	}
}

func TestStartArrivalsEnqueuesEveryTick(t *testing.T) {
	e, o, _ := newSimCluster(t, 10, 50*time.Millisecond)
	stop, err := o.StartArrivals(time.Second, 4, func(rng *rand.Rand) (string, []byte) {
		return "F", nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Ticks at 1s..10s inclusive when running to 10s → 10 ticks × 4 jobs.
	e.Run(10 * time.Second)
	stop()
	e.Run(11 * time.Second)
	if got := o.Collector().Len(); got != 40 {
		t.Fatalf("completed %d jobs, want 40", got)
	}
	// After stop, no further arrivals.
	e.Run(20 * time.Second)
	if got := o.Collector().Len(); got != 40 {
		t.Fatalf("arrivals continued after stop: %d", got)
	}
}

func TestStartArrivalsValidation(t *testing.T) {
	_, o, _ := newSimCluster(t, 3, time.Millisecond)
	gen := func(*rand.Rand) (string, []byte) { return "F", nil }
	if _, err := o.StartArrivals(0, 1, gen); err == nil {
		t.Fatal("zero interval accepted")
	}
	if _, err := o.StartArrivals(time.Second, 0, gen); err == nil {
		t.Fatal("zero sample accepted")
	}
	if _, err := o.StartArrivals(time.Second, 4, gen); err == nil {
		t.Fatal("sample larger than cluster accepted")
	}
	stop, err := o.StartArrivals(time.Second, 2, gen)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := o.StartArrivals(time.Second, 2, gen); err == nil {
		t.Fatal("second concurrent arrival process accepted")
	}
	stop()
	if _, err := o.StartArrivals(time.Second, 2, gen); err != nil {
		t.Fatalf("restart after stop failed: %v", err)
	}
}

func TestConfigValidation(t *testing.T) {
	e := sim.NewEngine(1)
	w := &fakeWorker{id: "w", engine: e, service: time.Millisecond}
	if _, err := New(Config{Workers: []Worker{w}}); err == nil {
		t.Fatal("missing runtime accepted")
	}
	if _, err := New(Config{Runtime: SimRuntime{Engine: e}}); err == nil {
		t.Fatal("no workers accepted")
	}
	dup := &fakeWorker{id: "w", engine: e, service: time.Millisecond}
	if _, err := New(Config{Runtime: SimRuntime{Engine: e}, Workers: []Worker{w, dup}}); err == nil {
		t.Fatal("duplicate worker ids accepted")
	}
}

func TestCollectorInjection(t *testing.T) {
	e := sim.NewEngine(1)
	coll := trace.NewCollector()
	w := &fakeWorker{id: "w", engine: e, service: time.Millisecond}
	o, err := New(Config{Runtime: SimRuntime{Engine: e}, Workers: []Worker{w}, Collector: coll})
	if err != nil {
		t.Fatal(err)
	}
	o.Submit("F", nil)
	e.RunAll()
	if coll.Len() != 1 {
		t.Fatal("injected collector not used")
	}
}

// goWorker completes jobs on real goroutines — exercises live-mode
// concurrency paths (WallRuntime + Quiesce).
type goWorker struct {
	id      string
	service time.Duration
}

func (w *goWorker) ID() string { return w.id }

func (w *goWorker) RunJob(job Job, done func(Result)) {
	go func() {
		time.Sleep(w.service)
		done(Result{Job: job, WorkerID: w.id})
	}()
}

func TestWallRuntimeQuiesce(t *testing.T) {
	rt := NewWallRuntime()
	ws := []Worker{
		&goWorker{id: "a", service: 10 * time.Millisecond},
		&goWorker{id: "b", service: 5 * time.Millisecond},
	}
	o, err := New(Config{Runtime: rt, Workers: ws, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		o.Submit("F", nil)
	}
	doneCh := make(chan struct{})
	go func() { o.Quiesce(); close(doneCh) }()
	select {
	case <-doneCh:
	case <-time.After(5 * time.Second):
		t.Fatal("Quiesce never returned")
	}
	if o.Collector().Len() != 20 {
		t.Fatalf("completed %d of 20", o.Collector().Len())
	}
	if o.Pending() != 0 {
		t.Fatal("pending after quiesce")
	}
}

func TestWallRuntimeArrivals(t *testing.T) {
	rt := NewWallRuntime()
	ws := []Worker{&goWorker{id: "a", service: time.Millisecond}}
	o, err := New(Config{Runtime: rt, Workers: ws, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	stop, err := o.StartArrivals(20*time.Millisecond, 1, func(*rand.Rand) (string, []byte) {
		return "F", nil
	})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(150 * time.Millisecond)
	stop()
	o.Quiesce()
	got := o.Collector().Len()
	if got < 3 || got > 12 {
		t.Fatalf("wall arrivals produced %d jobs in ~150ms at 20ms cadence", got)
	}
}
