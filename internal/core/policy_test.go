package core

import (
	"fmt"
	"testing"
	"time"

	"microfaas/internal/sim"
)

// flakyWorker fails the first failCount jobs it sees, then succeeds.
type flakyWorker struct {
	id        string
	engine    *sim.Engine
	service   time.Duration
	failCount int
	seen      int
}

func (w *flakyWorker) ID() string { return w.id }

func (w *flakyWorker) RunJob(job Job, done func(Result)) {
	w.seen++
	fail := w.seen <= w.failCount
	w.engine.Schedule(w.service, func() {
		res := Result{Job: job, WorkerID: w.id}
		if fail {
			res.Err = "flaky failure"
		}
		done(res)
	})
}

func TestRetryReassignsFailedJob(t *testing.T) {
	e := sim.NewEngine(3)
	bad := &flakyWorker{id: "bad", engine: e, service: 10 * time.Millisecond, failCount: 1 << 30}
	good := &flakyWorker{id: "good", engine: e, service: 10 * time.Millisecond}
	o, err := New(Config{
		Runtime: SimRuntime{Engine: e}, Workers: []Worker{bad, good},
		Seed: 1, MaxAttempts: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	var final Result
	// Force the first attempt onto the always-failing worker.
	if _, err := o.SubmitTo("bad", "F", nil); err != nil {
		t.Fatal(err)
	}
	// And one with a callback, randomly assigned.
	o.SubmitAsync("F", nil, func(r Result) { final = r })
	e.RunAll()
	recs := o.Collector().Records()
	// The SubmitTo job must appear at least twice: the failed attempt on
	// "bad" and a retry on "good".
	attempts := map[int64]int{}
	for _, r := range recs {
		attempts[r.JobID]++
	}
	if attempts[1] < 2 {
		t.Fatalf("job 1 recorded %d attempts, want >=2 (retry on another worker)", attempts[1])
	}
	// A retried record must carry its attempt number.
	sawRetry := false
	for _, r := range recs {
		if r.JobID == 1 && r.Attempt > 0 {
			sawRetry = true
			if r.Worker == "bad" && r.Err == "" {
				t.Fatal("retry succeeded on the always-failing worker")
			}
		}
	}
	if !sawRetry {
		t.Fatal("no retry attempt recorded")
	}
	// The final outcome of job 1 must be success (it lands on "good").
	var finalErr string
	for _, r := range recs {
		if r.JobID == 1 {
			finalErr = r.Err
		}
	}
	_ = finalErr // order within Records follows completion; check below instead
	ok := false
	for _, r := range recs {
		if r.JobID == 1 && r.Err == "" {
			ok = true
		}
	}
	if !ok {
		t.Fatal("job 1 never succeeded despite retries")
	}
	if final.Job.ID == 0 {
		t.Fatal("callback never fired")
	}
	if o.Pending() != 0 {
		t.Fatal("pending jobs remain")
	}
}

func TestRetryExhaustionDeliversFailure(t *testing.T) {
	e := sim.NewEngine(3)
	bad1 := &flakyWorker{id: "b1", engine: e, service: time.Millisecond, failCount: 1 << 30}
	bad2 := &flakyWorker{id: "b2", engine: e, service: time.Millisecond, failCount: 1 << 30}
	o, err := New(Config{
		Runtime: SimRuntime{Engine: e}, Workers: []Worker{bad1, bad2},
		Seed: 1, MaxAttempts: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	var final Result
	fired := 0
	o.SubmitAsync("F", nil, func(r Result) { final = r; fired++ })
	e.RunAll()
	if fired != 1 {
		t.Fatalf("callback fired %d times, want exactly once", fired)
	}
	if final.Err == "" {
		t.Fatal("exhausted retries reported success")
	}
	if got := o.Collector().Len(); got != 3 {
		t.Fatalf("%d attempts recorded, want 3 (MaxAttempts)", got)
	}
}

func TestNoRetriesByDefault(t *testing.T) {
	e := sim.NewEngine(3)
	bad := &flakyWorker{id: "b", engine: e, service: time.Millisecond, failCount: 1 << 30}
	o, err := New(Config{Runtime: SimRuntime{Engine: e}, Workers: []Worker{bad}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	o.Submit("F", nil)
	e.RunAll()
	if got := o.Collector().Len(); got != 1 {
		t.Fatalf("%d attempts, want 1 (no retries by default)", got)
	}
}

func TestRetrySingleWorkerReusesIt(t *testing.T) {
	e := sim.NewEngine(3)
	w := &flakyWorker{id: "only", engine: e, service: time.Millisecond, failCount: 2}
	o, err := New(Config{Runtime: SimRuntime{Engine: e}, Workers: []Worker{w}, Seed: 1, MaxAttempts: 5})
	if err != nil {
		t.Fatal(err)
	}
	o.Submit("F", nil)
	e.RunAll()
	recs := o.Collector().Records()
	if len(recs) != 3 { // two failures + one success, all on "only"
		t.Fatalf("%d attempts, want 3", len(recs))
	}
	if recs[len(recs)-1].Err != "" {
		t.Fatal("final attempt should succeed")
	}
}

func TestRoundRobinPolicyCycles(t *testing.T) {
	e := sim.NewEngine(1)
	var ws []Worker
	var fws []*fakeWorker
	for i := 0; i < 4; i++ {
		fw := &fakeWorker{id: fmt.Sprintf("w%d", i), engine: e, service: time.Millisecond}
		fws = append(fws, fw)
		ws = append(ws, fw)
	}
	o, err := New(Config{Runtime: SimRuntime{Engine: e}, Workers: ws, Seed: 1, Policy: AssignRoundRobin})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		o.Submit("F", nil)
	}
	e.RunAll()
	for _, fw := range fws {
		if len(fw.runs) != 3 {
			t.Fatalf("worker %s ran %d jobs, want exactly 3 under round-robin", fw.id, len(fw.runs))
		}
	}
}

func TestLeastLoadedPolicyAvoidsBusyWorker(t *testing.T) {
	e := sim.NewEngine(1)
	slow := &fakeWorker{id: "slow", engine: e, service: time.Hour}
	fast := &fakeWorker{id: "fast", engine: e, service: time.Millisecond}
	o, err := New(Config{Runtime: SimRuntime{Engine: e}, Workers: []Worker{slow, fast}, Seed: 1, Policy: AssignLeastLoaded})
	if err != nil {
		t.Fatal(err)
	}
	// First job goes to "slow" (both empty, ties break by order) and pins
	// it busy for an hour. Later submissions — spaced out so fast's jobs
	// complete in between — must all flow to the idle "fast" worker.
	horizon := time.Duration(0)
	for i := 0; i < 10; i++ {
		o.Submit("F", nil)
		horizon += 10 * time.Millisecond
		e.Run(horizon)
	}
	if len(fast.runs) != 9 || len(slow.runs) != 1 {
		t.Fatalf("runs slow=%d fast=%d, want 1/9", len(slow.runs), len(fast.runs))
	}
}

func TestUnknownPolicyRejected(t *testing.T) {
	e := sim.NewEngine(1)
	w := &fakeWorker{id: "w", engine: e, service: time.Millisecond}
	if _, err := New(Config{Runtime: SimRuntime{Engine: e}, Workers: []Worker{w}, Policy: AssignPolicy(99)}); err == nil {
		t.Fatal("bogus policy accepted")
	}
}

func TestPolicyString(t *testing.T) {
	cases := map[AssignPolicy]string{
		AssignRandom:      "random",
		AssignRoundRobin:  "round-robin",
		AssignLeastLoaded: "least-loaded",
		AssignPolicy(9):   "policy(9)",
	}
	for p, want := range cases {
		if p.String() != want {
			t.Fatalf("%d.String() = %q, want %q", int(p), p, want)
		}
	}
}
