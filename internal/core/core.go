// Package core implements the paper's primary contribution: the MicroFaaS
// cluster orchestration platform (OP, Sec IV-D).
//
// The OP maintains a job queue per worker node. Jobs are assigned to a
// random sampling of those queues (simulating the arrival of function
// invocations); on assignment a powered-down worker powers on, boots its
// worker OS, executes the job run-to-completion, and then either reboots
// into its next queued job or powers down. The OP records per-invocation
// timestamps for the evaluation, exactly as the paper's Python OP does.
//
// The same orchestrator drives two worker back-ends: discrete-event
// simulated workers (internal/node SimWorker / VMWorker, for the paper's
// figure-scale experiments) and live TCP workers executing real Go
// workload functions (internal/node LiveWorker). The Runtime abstraction
// is the only clock the OP touches, so its logic is identical in both
// modes.
//
// Failure model (Sec III-a makes worker faults independent; the OP masks
// them): every attempt can carry a deadline enforced on the Runtime clock,
// so a wedged worker yields a timed-out Result instead of occupying its
// queue forever; failed attempts are re-queued onto a different worker
// with exponential backoff and seeded jitter; per-worker consecutive
// failures feed a circuit breaker that ejects the worker from assignment
// until a probe interval passes; and Drain stops intake and hands back the
// jobs it had to abandon.
package core

import (
	"container/heap"
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"microfaas/internal/powermgr"
	"microfaas/internal/sim"
	"microfaas/internal/telemetry"
	"microfaas/internal/trace"
	"microfaas/internal/tracing"
)

// Job is one queued function invocation.
type Job struct {
	// ID is the job's cluster-unique identifier, assigned at Submit.
	ID int64
	// Function names the workload function to run (see internal/workload).
	Function string
	// Args is the function's JSON-encoded argument object.
	Args []byte
	// SubmittedAt is when the job entered the platform, on the cluster
	// clock (virtual time in sim, wall time since start in live mode).
	SubmittedAt time.Duration
	// Attempt counts retries: 0 for the first execution. The OP re-queues
	// failed jobs onto a different worker while attempts remain (hardware
	// isolation makes worker-local faults independent, so reassignment is
	// the natural retry policy).
	Attempt int
	// Timeout bounds one attempt's execution on the cluster clock; when it
	// expires the OP synthesizes a failed Result and moves on (retrying the
	// job elsewhere while attempts remain). Zero means no deadline.
	Timeout time.Duration
	// Trace is the job's tracing context (the invalid zero Context when
	// tracing is disabled). Workers record their boot/exec spans under it,
	// and live workers propagate it over the wire protocol.
	Trace tracing.Context
	// queuedAt is when the current attempt entered its worker's queue, for
	// the queue span. Reassignment away from a wedged worker preserves it:
	// the job was waiting the whole time.
	queuedAt time.Duration
}

// Result is a completed (or failed) invocation as reported by a worker.
type Result struct {
	// Job is the invocation this result settles (its final attempt).
	Job Job
	// WorkerID names the worker that produced the result.
	WorkerID string
	// Output is the function's JSON-encoded return value (nil on failure).
	Output []byte
	// Err is the failure message, empty on success.
	Err string

	// TimedOut marks a Result synthesized by the OP because the attempt's
	// deadline expired before the worker reported back.
	TimedOut bool

	// StartedAt/FinishedAt are on the cluster clock.
	StartedAt, FinishedAt time.Duration
	// Boot/Overhead/Exec decompose the worker's cycle (Fig 3).
	Boot, Overhead, Exec time.Duration

	// Joules is the metered energy the attempt consumed on its worker
	// (boot through power-down), zero when the worker has no meter. The
	// orchestrator charges it against the function's energy budget.
	Joules float64
}

// Worker is a single-tenant, run-to-completion worker node. RunJob carries
// the node through one full cycle: power-on (the OP's GPIO line in the
// prototype), worker-OS boot, input receive, execution, result return, and
// power-down. done is invoked at most once, and never synchronously from
// inside RunJob itself — sim workers fire it from a scheduled event, live
// workers from their own goroutine. A wedged worker may never invoke done
// at all; the OP's deadline covers that case. The orchestrator never calls
// RunJob concurrently on the same worker.
type Worker interface {
	// ID returns the worker's stable, cluster-unique name.
	ID() string
	// RunJob executes one job cycle and reports through done (see the
	// interface comment for the invocation contract).
	RunJob(job Job, done func(Result))
}

// Runtime abstracts the cluster clock: virtual (discrete-event) in sim
// mode, wall-clock in live mode.
type Runtime interface {
	// Now returns elapsed cluster time.
	Now() time.Duration
	// After schedules fn after d; the returned function cancels it.
	After(d time.Duration, fn func()) (cancel func())
}

// SimRuntime adapts a sim.Engine to the Runtime interface.
type SimRuntime struct {
	// Engine is the discrete-event engine supplying virtual time.
	Engine *sim.Engine
}

// Now returns the engine's virtual time.
func (r SimRuntime) Now() time.Duration { return r.Engine.Now() }

// After schedules fn on the engine.
func (r SimRuntime) After(d time.Duration, fn func()) func() {
	ev := r.Engine.Schedule(d, fn)
	return ev.Cancel
}

// WallRuntime is the live cluster's clock: time elapsed since Start.
type WallRuntime struct {
	// Start anchors the clock; Now reports time elapsed since it.
	Start time.Time
}

// NewWallRuntime returns a runtime anchored at the current instant.
func NewWallRuntime() WallRuntime { return WallRuntime{Start: time.Now()} }

// Now returns wall time elapsed since the runtime was anchored.
func (r WallRuntime) Now() time.Duration { return time.Since(r.Start) }

// After schedules fn on a wall-clock timer.
func (r WallRuntime) After(d time.Duration, fn func()) func() {
	t := time.AfterFunc(d, fn)
	return func() { t.Stop() }
}

// AssignPolicy selects how Submit picks a worker queue.
type AssignPolicy int

const (
	// AssignRandom is the paper's policy: a uniformly random queue.
	AssignRandom AssignPolicy = iota
	// AssignRoundRobin cycles through workers in registration order.
	AssignRoundRobin
	// AssignLeastLoaded picks the worker with the fewest queued+running
	// jobs (ties broken by registration order).
	AssignLeastLoaded
	// AssignEnergyAware packs load to maximize power-gated nodes: it
	// prefers an idle, already-powered worker; wakes a powered-down one
	// only when every powered worker is occupied (and the power cap
	// admits another node); and otherwise queues behind the least-loaded
	// powered worker. Deterministic — ties break by registration order
	// and it never draws randomness. Without a power manager configured
	// every worker counts as powered, so it degrades to least-loaded.
	AssignEnergyAware
)

// String returns the policy's CLI name (the form ParsePolicy accepts).
func (p AssignPolicy) String() string {
	switch p {
	case AssignRandom:
		return "random"
	case AssignRoundRobin:
		return "round-robin"
	case AssignLeastLoaded:
		return "least-loaded"
	case AssignEnergyAware:
		return "energy-aware"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// ParsePolicy maps a policy's String form back to its value (for CLI
// flags): "random", "round-robin", "least-loaded", or "energy-aware".
func ParsePolicy(s string) (AssignPolicy, error) {
	for _, p := range []AssignPolicy{AssignRandom, AssignRoundRobin, AssignLeastLoaded, AssignEnergyAware} {
		if p.String() == s {
			return p, nil
		}
	}
	return 0, fmt.Errorf("core: unknown assignment policy %q", s)
}

// BreakerState is a worker's circuit-breaker position.
type BreakerState int

const (
	// BreakerClosed: the worker is healthy and assignable.
	BreakerClosed BreakerState = iota
	// BreakerOpen: consecutive failures crossed the threshold; the worker
	// is ejected from assignment until its probe interval passes.
	BreakerOpen
	// BreakerHalfOpen: the probe interval has passed; the worker is
	// assignable again, and its next outcome closes or re-opens the
	// breaker.
	BreakerHalfOpen
)

// String renders the state as reported in WorkerHealth ("closed",
// "open", "half-open").
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return fmt.Sprintf("breaker(%d)", int(s))
	}
}

// WorkerHealth is a point-in-time snapshot of one worker's failure
// tracking, as exposed by Orchestrator.Health.
type WorkerHealth struct {
	// ID names the worker.
	ID string `json:"id"`
	// State is the circuit-breaker position (serialized via Breaker).
	State BreakerState `json:"-"`
	// ConsecutiveFailures counts failures since the last success; it arms
	// the breaker threshold.
	ConsecutiveFailures int `json:"consecutive_failures"`
	// Completed/Failed count attempts (not jobs); TimedOut attempts are a
	// subset of Failed.
	Completed int `json:"completed"`
	// Failed counts failed attempts; TimedOut ones are the subset that
	// hit the per-attempt deadline.
	Failed   int `json:"failed"`
	TimedOut int `json:"timed_out"` // deadline expiries among Failed
	// QueueDepth is the worker's queued (not yet running) job count.
	QueueDepth int `json:"queue_depth"`
	// Busy reports whether the worker is executing a job right now.
	Busy bool `json:"busy"`
	// Power is the worker's power-plane state ("off", "waking", "on") when
	// a power manager is configured; empty otherwise.
	Power string `json:"power,omitempty"`
}

// workerHealth is the mutable per-worker record behind WorkerHealth.
type workerHealth struct {
	consec    int
	completed int
	failed    int
	timedOut  int
	open      bool
	reopenAt  time.Duration
}

// workerSlot is the orchestrator's per-worker state record: the worker
// itself, its job queue, its busy flag, its health record, and the index
// fields that keep it addressable in O(1) from the eligibility structures.
// Folding queue and busy state into one struct (instead of parallel maps
// keyed by worker id) keeps the dispatch hot path to a single pointer
// dereference per field.
type workerSlot struct {
	w   Worker
	id  string
	idx int // registration order

	// queue[qhead:] is the worker's FIFO of waiting jobs. Popping advances
	// qhead instead of reslicing (`queue = queue[1:]`), which would strand
	// the backing array's head and force append to reallocate on every
	// push/pop cycle; once the queue drains both reset and the array is
	// reused in place.
	queue []Job
	qhead int
	busy  bool

	// waking is set while a wake-on-demand power-up requested for this
	// worker is in flight; dispatch waits for the manager's ready
	// callback. wakeStart is when that wake was requested (cluster clock),
	// the boot span's earliest possible start. bootPending marks the first
	// dispatch after a wake so it records the boot span the queue wait
	// absorbed. All three are meaningful only with a power manager.
	waking      bool
	wakeStart   time.Duration
	bootPending bool

	health workerHealth

	// eligPos is this slot's index in Orchestrator.eligible (-1 while the
	// breaker has it ejected); parolePos is its index in the parole heap
	// (-1 while assignable). Exactly one is >= 0 at any time.
	eligPos   int
	parolePos int

	// detached marks a slot spliced out by RemoveWorker: it takes no new
	// assignments but stays alive for its in-flight attempt.
	// pendingHandoff is RemoveWorker's deferred release for a
	// detached-while-busy worker; completed fires it once the attempt
	// settles.
	detached       bool
	pendingHandoff func(Worker)
}

// qlen returns the number of jobs waiting in the slot's queue.
func (s *workerSlot) qlen() int { return len(s.queue) - s.qhead }

// qpush appends a job to the slot's queue.
func (s *workerSlot) qpush(j Job) { s.queue = append(s.queue, j) }

// qhead0 returns the next job without removing it. Call only when qlen > 0.
func (s *workerSlot) qhead0() Job { return s.queue[s.qhead] }

// qpop removes and returns the next job. The vacated element is zeroed so
// the queue does not pin the job's Args past its dispatch.
func (s *workerSlot) qpop() Job {
	j := s.queue[s.qhead]
	s.queue[s.qhead] = Job{}
	s.qhead++
	if s.qhead == len(s.queue) {
		s.queue = s.queue[:0]
		s.qhead = 0
	}
	return j
}

// qtake removes and returns every waiting job (nil when empty), leaving
// the backing array in place for reuse.
func (s *workerSlot) qtake() []Job {
	if s.qlen() == 0 {
		return nil
	}
	out := make([]Job, s.qlen())
	copy(out, s.queue[s.qhead:])
	for i := s.qhead; i < len(s.queue); i++ {
		s.queue[i] = Job{}
	}
	s.queue = s.queue[:0]
	s.qhead = 0
	return out
}

// paroleHeap orders breaker-ejected workers by reopen time (ties broken by
// registration order), so promoting every worker whose probe interval has
// passed is a peek-and-pop instead of a scan.
type paroleHeap []*workerSlot

func (h paroleHeap) Len() int { return len(h) }

func (h paroleHeap) Less(i, j int) bool {
	if h[i].health.reopenAt != h[j].health.reopenAt {
		return h[i].health.reopenAt < h[j].health.reopenAt
	}
	return h[i].idx < h[j].idx
}

func (h paroleHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].parolePos = i
	h[j].parolePos = j
}

func (h *paroleHeap) Push(x any) {
	s := x.(*workerSlot)
	s.parolePos = len(*h)
	*h = append(*h, s)
}

func (h *paroleHeap) Pop() any {
	old := *h
	n := len(old)
	s := old[n-1]
	old[n-1] = nil
	s.parolePos = -1
	*h = old[:n-1]
	return s
}

// Config assembles an Orchestrator.
type Config struct {
	// Runtime supplies the cluster clock and timers (SimRuntime or
	// WallRuntime).
	Runtime Runtime
	// Workers is the fixed worker fleet, in registration order (the order
	// round-robin and tie-breaks follow).
	Workers   []Worker
	Collector *trace.Collector // optional; a fresh one is created if nil
	// Seed drives the random queue-assignment sampling, retry jitter, and
	// retry-target selection.
	Seed int64
	// Policy selects the queue-assignment policy (default AssignRandom,
	// the paper's).
	Policy AssignPolicy
	// MaxAttempts caps executions per job (default 1 = no retries).
	// Failed jobs are re-queued onto a different worker until the cap;
	// every attempt is recorded in the collector, and SubmitAsync
	// callbacks fire only on the final outcome.
	MaxAttempts int
	// JobTimeout is the default per-attempt deadline stamped onto
	// submitted jobs (zero = no deadline). Enforced via Runtime.After, so
	// it behaves identically in sim and live modes.
	JobTimeout time.Duration
	// RetryBase enables exponential backoff between attempts: attempt n
	// waits in [d/2, d] where d = min(RetryBase·2^(n-1), RetryMax), with
	// the jitter drawn from the orchestrator's seeded RNG (sim runs stay
	// deterministic). Zero keeps the immediate re-queue.
	RetryBase time.Duration
	// RetryMax caps the backoff delay (default 30·RetryBase, at least 1s).
	RetryMax time.Duration
	// BreakerThreshold opens a worker's circuit breaker after this many
	// consecutive failed attempts, ejecting it from assignment policies.
	// Zero disables health-based ejection.
	BreakerThreshold int
	// BreakerProbe is how long an open breaker ejects its worker before
	// the worker is probed with real work again (default 30s).
	BreakerProbe time.Duration
	// Telemetry receives metrics and lifecycle events (nil = disabled;
	// the disabled path costs one nil check per site and leaves seeded
	// runs bit-identical — telemetry never touches the RNG or the clock).
	Telemetry *telemetry.Telemetry
	// Tracer records per-invocation lifecycle spans (nil = disabled, with
	// the same bit-identical guarantee as Telemetry: the tracer never
	// draws randomness or schedules events).
	Tracer *tracing.Tracer
	// PowerManager, when set, puts every scheduling decision through the
	// dynamic power-management plane: dispatch against a powered-down
	// worker first wakes it (the job's queue wait absorbs the boot), idle
	// workers power off after the manager's timeout, and failed attempts
	// power-cycle their node. The manager must be built over the same
	// workers (matching ids) and the same Runtime. Nil keeps the static
	// per-job power policy and leaves seeded runs byte-identical.
	PowerManager *powermgr.Manager
	// JobIDBase offsets this orchestrator's job-id sequence (ids start at
	// JobIDBase+1). A sharded control plane gives each shard a disjoint
	// id space so job ids — and everything keyed by them: async pickup,
	// trace lookups, collector records — stay cluster-unique when jobs
	// migrate between shards. Zero keeps the historical 1,2,3,… sequence.
	JobIDBase int64
	// ShardLabel names the control-plane shard this orchestrator is (for
	// example "shard-03") on every span it records, so a sharded
	// cluster's critical-path analysis shows which control plane owned
	// each phase. Empty (the default) adds nothing.
	ShardLabel string
	// EnergyBudgets caps each listed function's metered joules
	// (FaasMeter-style accounting: every attempt's worker-metered energy
	// — including failed attempts — is charged to its function). A
	// function that exhausts its budget is deprioritized by the
	// energy-aware policy (no new node wakes on its behalf) and, when
	// BudgetThrottle is set, has new submissions held before queueing.
	// Nil or empty disables budget accounting entirely and leaves seeded
	// runs byte-identical.
	EnergyBudgets map[string]float64
	// BudgetThrottle is how long a budget-exhausted function's new
	// submissions are parked before they may enter a queue (each hold is
	// recorded as a throttle span). Zero disables throttling: exhausted
	// functions are then only deprioritized, never delayed.
	BudgetThrottle time.Duration
}

// Orchestrator is the OP: per-worker job queues, random assignment,
// dispatch, and data collection.
type Orchestrator struct {
	runtime   Runtime
	collector *trace.Collector
	tel       *telemetry.Telemetry
	tracer    *tracing.Tracer
	m         orchMetrics

	pm *powermgr.Manager // nil = static power policy

	shardLabel       string
	policy           AssignPolicy
	maxAttempts      int
	jobTimeout       time.Duration
	retryBase        time.Duration
	retryMax         time.Duration
	breakerThreshold int
	breakerProbe     time.Duration

	mu  sync.Mutex
	rng *rand.Rand
	// slots holds every worker's state record in registration order; byID
	// resolves a worker id to its slot in O(1) (SubmitTo and retry
	// re-queues used to scan the worker list).
	slots []*workerSlot
	byID  map[string]*workerSlot
	// eligible is the indexed free-list of assignable workers: slots whose
	// breaker admits new work. It starts as all workers in registration
	// order; breaker trips swap-remove, recoveries append. parole holds the
	// ejected slots keyed by reopen time.
	eligible  []*workerSlot
	parole    paroleHeap
	parked    map[int64]*parkedRetry
	// budgets holds per-function energy accounting (nil entries never
	// exist; functions without a budget are simply absent). throttled
	// parks budget-held submissions by job id, abandoned by Drain exactly
	// like backoff-parked retries.
	budgets        map[string]*fnBudget
	budgetThrottle time.Duration
	throttled      map[int64]*parkedThrottle
	callbacks      map[int64]func(Result)
	nextID    int64
	nextIdx   int // next worker registration index (never reused)
	rrNext    int // next round-robin index
	pending   int // queued + running + backoff-parked jobs
	draining  bool
	sealed    bool // Seal called: queued jobs frozen for TakeAll recovery
	idle      *sync.Cond
	flFree    *inflight // recycled inflight records (see inflight)

	arrivalCancel func()
}

// inflight tracks one dispatched attempt. Exactly one of the worker's done
// callback or the deadline timer settles it; the loser is ignored.
//
// inflight records are pooled on the orchestrator's free list: dispatch is
// the per-invocation hot path, and recycling the record (together with its
// doneFn closure, built once per record and reused for every job it ever
// carries) makes a steady-state dispatch allocation-free. gen increments
// at every recycle so the deadline timer — whose callback may race the
// recycle in wall-clock mode — can detect that its record has moved on.
// A record is recycled only from completed (the worker's one done call is
// being consumed, so no reference survives); a deadline-settled record
// whose worker is still wedged stays out of the pool until the late done
// arrives, or forever — a wedged worker holds its doneFn indefinitely.
type inflight struct {
	o             *Orchestrator
	job           Job
	slot          *workerSlot
	started       time.Duration
	settled       bool
	gen           uint64
	cancelTimeout func()
	doneFn        func(Result) // stable across reuses; calls o.completed(fl, ·)
	next          *inflight    // free-list link
}

// run starts the attempt on its worker. Must be called after o.mu is
// released: RunJob can block (live workers write to TCP) and must never
// run under the orchestrator lock.
func (fl *inflight) run() { fl.slot.w.RunJob(fl.job, fl.doneFn) }

// getInflightLocked pops a recycled record or builds a fresh one (with its
// reusable done closure). Caller holds o.mu.
func (o *Orchestrator) getInflightLocked() *inflight {
	fl := o.flFree
	if fl != nil {
		o.flFree = fl.next
		fl.next = nil
		return fl
	}
	fl = &inflight{o: o}
	fl.doneFn = func(res Result) { fl.o.completed(fl, res) }
	return fl
}

// putInflightLocked recycles a record whose references are all dead: the
// generation bump orphans any still-pending deadline callback. Caller
// holds o.mu.
func (o *Orchestrator) putInflightLocked(fl *inflight) {
	fl.gen++
	fl.job = Job{}
	fl.slot = nil
	fl.settled = false
	fl.cancelTimeout = nil
	fl.next = o.flFree
	o.flFree = fl
}

// parkedRetry is a failed job waiting out its backoff delay.
type parkedRetry struct {
	job      Job
	exclude  string // the worker the previous attempt failed on
	parkedAt time.Duration
	cancel   func()
}

// parkedThrottle is a submission serving its energy-budget hold before it
// may enter a worker queue.
type parkedThrottle struct {
	job    Job
	cancel func()
}

// fnBudget tracks one function's energy budget. spent accumulates every
// attempt's metered joules (failures included — the energy was burned on
// the function's behalf); exhausted latches once spent crosses limit and
// only resets when the budget is raised or removed.
type fnBudget struct {
	limit     float64
	spent     float64
	exhausted bool
}

// BudgetStatus is one function's energy-budget accounting snapshot.
type BudgetStatus struct {
	// Function is the budgeted function's name.
	Function string `json:"function"`
	// LimitJoules is the configured cap.
	LimitJoules float64 `json:"limit_joules"`
	// SpentJoules is the metered energy charged so far (all attempts).
	SpentJoules float64 `json:"spent_joules"`
	// Exhausted reports whether spending has crossed the cap; while set,
	// the function is deprioritized and (with BudgetThrottle) throttled.
	Exhausted bool `json:"exhausted"`
}

// New builds an orchestrator over the given workers.
func New(cfg Config) (*Orchestrator, error) {
	if cfg.Runtime == nil {
		return nil, fmt.Errorf("core: a Runtime is required")
	}
	if len(cfg.Workers) == 0 {
		return nil, fmt.Errorf("core: at least one worker is required")
	}
	coll := cfg.Collector
	if coll == nil {
		coll = trace.NewCollector()
	}
	switch cfg.Policy {
	case AssignRandom, AssignRoundRobin, AssignLeastLoaded, AssignEnergyAware:
	default:
		return nil, fmt.Errorf("core: unknown assignment policy %d", int(cfg.Policy))
	}
	if cfg.JobTimeout < 0 || cfg.RetryBase < 0 || cfg.RetryMax < 0 ||
		cfg.BreakerThreshold < 0 || cfg.BreakerProbe < 0 {
		return nil, fmt.Errorf("core: negative failure-handling durations/thresholds")
	}
	maxAttempts := cfg.MaxAttempts
	if maxAttempts <= 0 {
		maxAttempts = 1
	}
	retryMax := cfg.RetryMax
	if cfg.RetryBase > 0 && retryMax == 0 {
		retryMax = 30 * cfg.RetryBase
		if retryMax < time.Second {
			retryMax = time.Second
		}
	}
	if retryMax > 0 && retryMax < cfg.RetryBase {
		return nil, fmt.Errorf("core: RetryMax %v below RetryBase %v", retryMax, cfg.RetryBase)
	}
	breakerProbe := cfg.BreakerProbe
	if cfg.BreakerThreshold > 0 && breakerProbe == 0 {
		breakerProbe = 30 * time.Second
	}
	if cfg.JobIDBase < 0 {
		return nil, fmt.Errorf("core: negative JobIDBase %d", cfg.JobIDBase)
	}
	if cfg.BudgetThrottle < 0 {
		return nil, fmt.Errorf("core: negative BudgetThrottle %v", cfg.BudgetThrottle)
	}
	for fn, j := range cfg.EnergyBudgets {
		if j <= 0 {
			return nil, fmt.Errorf("core: non-positive energy budget %g J for %q", j, fn)
		}
	}
	o := &Orchestrator{
		runtime:          cfg.Runtime,
		collector:        coll,
		pm:               cfg.PowerManager,
		shardLabel:       cfg.ShardLabel,
		policy:           cfg.Policy,
		maxAttempts:      maxAttempts,
		jobTimeout:       cfg.JobTimeout,
		retryBase:        cfg.RetryBase,
		retryMax:         retryMax,
		breakerThreshold: cfg.BreakerThreshold,
		breakerProbe:     breakerProbe,
		tracer:           cfg.Tracer,
		rng:              rand.New(rand.NewSource(cfg.Seed)),
		slots:            make([]*workerSlot, 0, len(cfg.Workers)),
		byID:             make(map[string]*workerSlot, len(cfg.Workers)),
		eligible:         make([]*workerSlot, 0, len(cfg.Workers)),
		parked:           make(map[int64]*parkedRetry),
		budgets:          make(map[string]*fnBudget, len(cfg.EnergyBudgets)),
		budgetThrottle:   cfg.BudgetThrottle,
		throttled:        make(map[int64]*parkedThrottle),
		callbacks:        make(map[int64]func(Result)),
		nextID:           cfg.JobIDBase,
	}
	o.idle = sync.NewCond(&o.mu)
	for i, w := range cfg.Workers {
		if _, dup := o.byID[w.ID()]; dup {
			return nil, fmt.Errorf("core: duplicate worker id %q", w.ID())
		}
		s := &workerSlot{w: w, id: w.ID(), idx: i, eligPos: i, parolePos: -1}
		o.slots = append(o.slots, s)
		o.byID[s.id] = s
		o.eligible = append(o.eligible, s)
	}
	o.nextIdx = len(cfg.Workers)
	o.initTelemetry(cfg.Telemetry)
	// Budgets seed in sorted order so their telemetry series appear in a
	// deterministic first-seen order.
	fns := make([]string, 0, len(cfg.EnergyBudgets))
	for fn := range cfg.EnergyBudgets {
		fns = append(fns, fn)
	}
	sort.Strings(fns)
	for _, fn := range fns {
		o.setBudgetLocked(fn, cfg.EnergyBudgets[fn])
	}
	return o, nil
}

// Telemetry returns the orchestrator's telemetry (nil when disabled).
func (o *Orchestrator) Telemetry() *telemetry.Telemetry { return o.tel }

// Tracer returns the orchestrator's tracer (nil when disabled).
func (o *Orchestrator) Tracer() *tracing.Tracer { return o.tracer }

// PowerManager returns the power-management plane (nil when the cluster
// runs the static per-job power policy).
func (o *Orchestrator) PowerManager() *powermgr.Manager { return o.pm }

// Now returns the current cluster-clock offset (virtual in sim mode,
// wall-clock-since-start in live mode).
func (o *Orchestrator) Now() time.Duration { return o.runtime.Now() }

// ShardLabel returns the control-plane shard name this orchestrator was
// configured with ("" for an unsharded deployment).
func (o *Orchestrator) ShardLabel() string { return o.shardLabel }

// Collector returns the orchestrator's trace collector.
func (o *Orchestrator) Collector() *trace.Collector { return o.collector }

// Workers returns the worker ids in registration order.
func (o *Orchestrator) Workers() []string {
	ids := make([]string, len(o.slots))
	for i, s := range o.slots {
		ids[i] = s.id
	}
	return ids
}

// Health returns a snapshot of every worker's failure tracking, in
// registration order.
func (o *Orchestrator) Health() []WorkerHealth {
	o.mu.Lock()
	defer o.mu.Unlock()
	now := o.runtime.Now()
	out := make([]WorkerHealth, 0, len(o.slots))
	for _, s := range o.slots {
		h := &s.health
		st := BreakerClosed
		if h.open {
			if now >= h.reopenAt {
				st = BreakerHalfOpen
			} else {
				st = BreakerOpen
			}
		}
		wh := WorkerHealth{
			ID:                  s.id,
			State:               st,
			ConsecutiveFailures: h.consec,
			Completed:           h.completed,
			Failed:              h.failed,
			TimedOut:            h.timedOut,
			QueueDepth:          s.qlen(),
			Busy:                s.busy,
		}
		if o.pm != nil {
			wh.Power = o.pm.StateName(s.id)
		}
		out = append(out, wh)
	}
	return out
}

// Submit enqueues an invocation on a uniformly random worker's queue (the
// paper's assignment policy) and returns the job id. It returns 0 without
// enqueueing when the orchestrator is draining.
func (o *Orchestrator) Submit(function string, args []byte) int64 {
	return o.SubmitAsync(function, args, nil)
}

// SubmitAsync is Submit with a completion callback: cb (when non-nil) is
// invoked exactly once with the job's final result (after any retries),
// once it is recorded in the collector. The callback runs outside the
// orchestrator lock; sim-mode callbacks run on the engine thread. When the
// orchestrator is draining, SubmitAsync returns 0 and cb never fires.
func (o *Orchestrator) SubmitAsync(function string, args []byte, cb func(Result)) int64 {
	return o.SubmitWithTimeout(function, args, o.jobTimeout, cb)
}

// SubmitWithTimeout is SubmitAsync with a per-job deadline overriding the
// configured JobTimeout (zero = no deadline for this job).
func (o *Orchestrator) SubmitWithTimeout(function string, args []byte, timeout time.Duration, cb func(Result)) int64 {
	o.mu.Lock()
	if o.draining {
		o.mu.Unlock()
		return 0
	}
	if o.budgetThrottle > 0 && o.exhaustedLocked(function) {
		// Budget-exhausted: the job is accepted (id, trace, pending) but
		// serves a throttle hold before it may enter any queue.
		job := o.newJobLocked(function, args, timeout, cb)
		o.m.budgetThrottled.Inc()
		o.emit(telemetry.EventQueue, job, "", "budget-throttle")
		p := &parkedThrottle{job: job}
		o.throttled[job.ID] = p
		p.cancel = o.runtime.After(o.budgetThrottle, func() { o.releaseThrottled(job.ID) })
		o.mu.Unlock()
		return job.ID
	}
	id, run := o.enqueueLocked(o.pickWorkerLocked(function), function, args, timeout, cb)
	o.mu.Unlock()
	if run != nil {
		run.run()
	}
	return id
}

// releaseThrottled moves a budget-held submission onto a worker queue once
// its hold elapses. A job abandoned by Drain is no longer parked and is
// skipped.
func (o *Orchestrator) releaseThrottled(id int64) {
	o.mu.Lock()
	p, ok := o.throttled[id]
	if !ok {
		o.mu.Unlock()
		return
	}
	delete(o.throttled, id)
	now := o.runtime.Now()
	o.span(p.job, tracing.PhaseThrottle, "", p.job.SubmittedAt, now, "budget")
	s := o.pickWorkerLocked(p.job.Function)
	o.pushJobLocked(s, p.job, "budget-release")
	run := o.maybeDispatchLocked(s)
	o.mu.Unlock()
	if run != nil {
		run.run()
	}
}

// addEligibleLocked appends a slot to the free-list. Caller holds o.mu.
func (o *Orchestrator) addEligibleLocked(s *workerSlot) {
	if s.eligPos >= 0 {
		return
	}
	s.eligPos = len(o.eligible)
	o.eligible = append(o.eligible, s)
}

// removeEligibleLocked swap-removes a slot from the free-list. Caller
// holds o.mu.
func (o *Orchestrator) removeEligibleLocked(s *workerSlot) {
	if s.eligPos < 0 {
		return
	}
	last := len(o.eligible) - 1
	moved := o.eligible[last]
	o.eligible[s.eligPos] = moved
	moved.eligPos = s.eligPos
	o.eligible[last] = nil
	o.eligible = o.eligible[:last]
	s.eligPos = -1
}

// promoteParoledLocked moves every breaker-ejected worker whose probe
// interval has passed back onto the free-list (its breaker turns
// half-open: assignable, next outcome decides). Amortized O(1) per
// breaker transition. Caller holds o.mu.
func (o *Orchestrator) promoteParoledLocked() {
	now := o.runtime.Now()
	for len(o.parole) > 0 && o.parole[0].health.reopenAt <= now {
		s := heap.Pop(&o.parole).(*workerSlot)
		o.addEligibleLocked(s)
	}
}

// assignableLocked returns the slots the assignment policy may choose
// from. With the breaker disabled this is exactly the registered worker
// list (so assignment randomness is unchanged from the breaker-free OP);
// when every breaker is open there is nowhere better to send work, so all
// workers stay assignable. Caller holds o.mu.
func (o *Orchestrator) assignableLocked() []*workerSlot {
	if o.breakerThreshold <= 0 {
		return o.slots
	}
	o.promoteParoledLocked()
	if len(o.eligible) == 0 {
		return o.slots
	}
	return o.eligible
}

// pickWorkerLocked applies the assignment policy over breaker-eligible
// workers. function feeds the energy-aware policy's budget deprioritization
// (a budget-exhausted function never triggers a node wake); the other
// policies ignore it. Caller holds o.mu.
func (o *Orchestrator) pickWorkerLocked(function string) *workerSlot {
	ws := o.assignableLocked()
	switch o.policy {
	case AssignRoundRobin:
		s := ws[o.rrNext%len(ws)]
		o.rrNext++
		return s
	case AssignLeastLoaded:
		// Ties break by registration order regardless of free-list order.
		var best *workerSlot
		bestLoad := int(^uint(0) >> 1)
		for _, s := range ws {
			load := s.qlen()
			if s.busy {
				load++
			}
			if load < bestLoad || (load == bestLoad && s.idx < best.idx) {
				best, bestLoad = s, load
			}
		}
		return best
	case AssignEnergyAware:
		return o.pickEnergyAwareLocked(ws, o.exhaustedLocked(function))
	default: // AssignRandom, the paper's policy
		return ws[o.rng.Intn(len(ws))]
	}
}

// exhaustedLocked reports whether the function has a budget and has spent
// it. Caller holds o.mu.
func (o *Orchestrator) exhaustedLocked(function string) bool {
	b, ok := o.budgets[function]
	return ok && b.exhausted
}

// pickEnergyAwareLocked packs load onto powered nodes so the rest can stay
// power-gated. Preference order: (1) an idle, already-powered worker —
// zero boot cost; (2) a powered-down worker, woken on demand, when every
// powered worker is occupied and the power cap admits another node;
// (3) the least-loaded powered worker; (4) a powered-down worker even
// against a binding cap (the wake parks in the manager's FIFO and the job
// feels it as queue wait). All ties break by registration order; the
// policy draws no randomness, so its picks are independent of evaluation
// order. Without a power manager every worker counts as powered and the
// policy degrades to least-loaded. noWake flips the preference for a
// budget-exhausted function: an already-powered worker (even a loaded one)
// always beats waking a node, so exhausted functions stop pulling hardware
// out of power gating. Caller holds o.mu.
func (o *Orchestrator) pickEnergyAwareLocked(ws []*workerSlot, noWake bool) *workerSlot {
	const maxInt = int(^uint(0) >> 1)
	var idleUp, down, leastUp *workerSlot
	leastLoad := maxInt
	for _, s := range ws {
		poweredUp := o.pm == nil || s.waking || o.pm.IsUp(s.id)
		load := s.qlen()
		if s.busy {
			load++
		}
		if !poweredUp {
			if down == nil || s.idx < down.idx {
				down = s
			}
			continue
		}
		if load == 0 && (idleUp == nil || s.idx < idleUp.idx) {
			idleUp = s
		}
		if load < leastLoad || (load == leastLoad && s.idx < leastUp.idx) {
			leastUp, leastLoad = s, load
		}
	}
	switch {
	case idleUp != nil:
		return idleUp
	case noWake && leastUp != nil:
		return leastUp
	case down != nil && (leastUp == nil || o.pm.CanWake()):
		return down
	case leastUp != nil:
		return leastUp
	default:
		return down
	}
}

// SubmitTo enqueues an invocation on a specific worker's queue.
func (o *Orchestrator) SubmitTo(workerID, function string, args []byte) (int64, error) {
	o.mu.Lock()
	if o.draining {
		o.mu.Unlock()
		return 0, fmt.Errorf("core: orchestrator is draining")
	}
	s, ok := o.byID[workerID]
	if !ok {
		o.mu.Unlock()
		return 0, fmt.Errorf("core: unknown worker %q", workerID)
	}
	id, run := o.enqueueLocked(s, function, args, o.jobTimeout, nil)
	o.mu.Unlock()
	if run != nil {
		run.run()
	}
	return id, nil
}

// newJobLocked accepts a submission: it allocates the job id, starts the
// trace, bumps the submission metrics, registers the callback, and counts
// the job pending — everything except placing the job on a queue (the
// budget-throttle path defers that part). Caller holds o.mu.
func (o *Orchestrator) newJobLocked(function string, args []byte, timeout time.Duration, cb func(Result)) Job {
	o.nextID++
	id := o.nextID
	job := Job{ID: id, Function: function, Args: args, SubmittedAt: o.runtime.Now(), Timeout: timeout}
	job.Trace = o.tracer.StartTrace(function, id, function, job.SubmittedAt)
	o.spanMarker(job, tracing.PhaseSubmit, "", job.SubmittedAt, "")
	o.m.submitted.Inc()
	o.noteSubmittedLocked(function)
	o.emit(telemetry.EventSubmit, job, "", "")
	if cb != nil {
		o.callbacks[id] = cb
	}
	o.pending++
	o.m.pending.Set(float64(o.pending))
	return job
}

// enqueueLocked appends the job and returns its id plus the dispatched
// attempt to run once o.mu is released (nil when the worker is already
// busy). Caller holds o.mu.
func (o *Orchestrator) enqueueLocked(s *workerSlot, function string, args []byte, timeout time.Duration, cb func(Result)) (int64, *inflight) {
	job := o.newJobLocked(function, args, timeout, cb)
	o.pushJobLocked(s, job, "")
	return job.ID, o.maybeDispatchLocked(s)
}

// pushJobLocked appends one attempt to a worker's queue, keeping the
// queue-depth gauge current and emitting the queue lifecycle event.
// Caller holds o.mu.
func (o *Orchestrator) pushJobLocked(s *workerSlot, job Job, detail string) {
	// A reassigned or stolen job keeps its original queuedAt: it has been
	// waiting since it first entered a queue, and the queue span should
	// show that.
	if detail != "reassigned" && detail != "stolen" {
		job.queuedAt = o.runtime.Now()
	}
	s.qpush(job)
	o.queueDepthChangedLocked(s)
	o.emit(telemetry.EventQueue, job, s.id, detail)
}

// maybeDispatchLocked pops the worker's next queued job if it is free and
// returns the pooled attempt record whose run() starts the worker on it.
// run() must be called after o.mu is released: RunJob can block (live
// workers write to TCP) and must never be entered while holding the
// orchestrator lock. Caller holds o.mu.
func (o *Orchestrator) maybeDispatchLocked(s *workerSlot) *inflight {
	if s.busy || s.qlen() == 0 || o.sealed || s.detached {
		return nil
	}
	if o.pm != nil && !s.bootPending {
		if s.waking {
			return nil // the manager's ready callback resumes this queue
		}
		cause := fmt.Sprintf("wake-on-demand (job %d)", s.qhead0().ID)
		if !o.pm.RequestUp(s.id, cause, func() { o.workerPowered(s) }) {
			// Powered down (or cap-parked): the wake is in flight and the
			// queued jobs wait it out — their queue spans absorb the boot.
			s.waking = true
			s.wakeStart = o.runtime.Now()
			return nil
		}
	}
	job := s.qpop()
	s.busy = true
	o.queueDepthChangedLocked(s)
	o.m.busy[s.id].Set(1)
	o.emit(telemetry.EventAssign, job, s.id, "")
	started := o.runtime.Now()
	if s.bootPending {
		// First dispatch after a wake: split the wait into the true queue
		// span and the boot the wake paid, so the critical path shows the
		// power-up instead of blaming scheduling.
		s.bootPending = false
		bootStart := job.queuedAt
		if s.wakeStart > bootStart {
			bootStart = s.wakeStart
		}
		o.span(job, tracing.PhaseQueue, s.id, job.queuedAt, bootStart, "")
		o.span(job, tracing.PhaseBoot, s.id, bootStart, started, "wake")
	} else {
		o.span(job, tracing.PhaseQueue, s.id, job.queuedAt, started, "")
	}
	o.spanMarker(job, tracing.PhaseDispatch, s.id, started, "")
	fl := o.getInflightLocked()
	fl.job = job
	fl.slot = s
	fl.started = started
	if job.Timeout > 0 {
		// The callback captures the generation so a timer that outlives
		// this attempt (wall mode can fire it concurrently with the
		// settling done callback) finds a recycled record and stands down.
		gen := fl.gen
		fl.cancelTimeout = o.runtime.After(job.Timeout, func() { o.deadlineExpired(fl, gen) })
	}
	return fl
}

// workerPowered is the power manager's ready callback: the wake requested
// for this worker has completed and it may dispatch. Runs outside both the
// manager's lock and (on entry) the orchestrator's.
func (o *Orchestrator) workerPowered(s *workerSlot) {
	o.mu.Lock()
	s.waking = false
	s.bootPending = true
	run := o.maybeDispatchLocked(s)
	if run == nil {
		// The queue emptied while the node booted (deadline reassignment or
		// drain took the jobs); hand the fresh node to the idle policy.
		s.bootPending = false
		o.noteWorkerIdleLocked(s)
	}
	o.mu.Unlock()
	if run != nil {
		run.run()
	}
}

// noteWorkerIdleLocked reports a genuinely idle worker (no queue, not
// executing, no wake in flight) to the power manager, starting its idle
// power-down countdown. No-op without a manager. Caller holds o.mu.
func (o *Orchestrator) noteWorkerIdleLocked(s *workerSlot) {
	if o.pm == nil || s.busy || s.waking || s.qlen() > 0 {
		return
	}
	o.pm.NoteIdle(s.id)
}

// completed handles a worker's done callback: it records the attempt,
// retries failures while attempts remain, and dispatches the worker's next
// job. If the attempt's deadline already fired, the late result is
// discarded and the (no longer wedged) worker is simply put back to work.
func (o *Orchestrator) completed(fl *inflight, res Result) {
	finished := o.runtime.Now()
	o.mu.Lock()
	s := fl.slot
	if fl.settled {
		// The deadline timer already synthesized this attempt's Result (and
		// possibly retried the job elsewhere). The worker has finally come
		// back — un-wedge it and dispatch its next queued job. With the one
		// permitted done call consumed and the deadline long fired, the
		// record has no live references left and rejoins the pool.
		o.putInflightLocked(fl)
		s.busy = false
		o.m.busy[s.id].Set(0)
		run := o.maybeDispatchLocked(s)
		if run == nil {
			o.noteWorkerIdleLocked(s)
		}
		release := o.takeHandoffLocked(s)
		o.mu.Unlock()
		if run != nil {
			run.run()
		}
		if release != nil {
			release(s.w)
		}
		return
	}
	fl.settled = true
	if fl.cancelTimeout != nil {
		fl.cancelTimeout()
	}
	job := fl.job
	o.collector.Add(trace.Record{
		JobID:     job.ID,
		Function:  job.Function,
		Worker:    s.id,
		Attempt:   job.Attempt,
		Submitted: job.SubmittedAt,
		Started:   fl.started,
		Finished:  finished,
		Boot:      res.Boot,
		Overhead:  res.Overhead,
		Exec:      res.Exec,
		Err:       res.Err,
	})
	o.noteAttemptLocked(s, res.Err == "", false)
	o.chargeEnergyLocked(job.Function, res.Joules)
	s.busy = false
	o.m.busy[s.id].Set(0)
	if res.Err == "" {
		o.noteAttemptMetrics(s.id, "ok")
		o.emit(telemetry.EventSettle, job, s.id, "ok")
		o.spanMarker(job, tracing.PhaseSettle, s.id, finished, "ok")
	} else {
		o.noteAttemptMetrics(s.id, "error")
		o.emit(telemetry.EventSettle, job, s.id, "error")
		o.spanMarker(job, tracing.PhaseSettle, s.id, finished, "error")
		o.faultSpan(job, s.id, finished, res.Err)
		if o.pm != nil {
			// A crashed worker can't be trusted warm: power-cycle it, so
			// the next dispatch (possibly this job's retry elsewhere) finds
			// a fresh environment.
			o.pm.NoteFault(s.id)
		}
	}
	// One batched drain per wake: collect every attempt this completion
	// unblocks — the retry's dispatch on another worker and this worker's
	// next queued job — and start them together after one unlock, instead
	// of a lock round-trip per dispatch. The common case (no retry) keeps
	// runs nil and allocates nothing.
	runs, cb := o.resolveAttemptLocked(s, job, res, finished)
	selfRun := o.maybeDispatchLocked(s)
	if selfRun == nil {
		o.noteWorkerIdleLocked(s)
	}
	release := o.takeHandoffLocked(s)
	started := fl.started
	// Both possible references are dead — the worker's single done call is
	// this very frame, and cancelTimeout ran above (a wall-mode timer that
	// already fired concurrently is gen-guarded) — so recycle the record.
	o.putInflightLocked(fl)
	o.mu.Unlock()
	for _, run := range runs {
		run.run()
	}
	if selfRun != nil {
		selfRun.run()
	}
	if release != nil {
		release(s.w)
	}
	if cb != nil {
		res.StartedAt, res.FinishedAt = started, finished
		cb(res)
	}
}

// deadlineExpired fires when an attempt's deadline passes before its
// worker reported back: the OP synthesizes a timed-out Result, leaves the
// wedged worker marked busy until (if ever) its late callback arrives, and
// reassigns the wedged worker's queued jobs so they do not wait behind a
// hang.
func (o *Orchestrator) deadlineExpired(fl *inflight, gen uint64) {
	o.mu.Lock()
	if fl.gen != gen || fl.settled {
		// gen mismatch: the attempt settled and its record was recycled (and
		// possibly reissued) before this wall-mode timer got the lock.
		o.mu.Unlock()
		return
	}
	fl.settled = true
	s := fl.slot
	job := fl.job
	now := o.runtime.Now()
	res := Result{
		Job:        job,
		WorkerID:   s.id,
		Err:        fmt.Sprintf("core: attempt %d of job %d exceeded its %v deadline on %s", job.Attempt, job.ID, job.Timeout, s.id),
		TimedOut:   true,
		StartedAt:  fl.started,
		FinishedAt: now,
	}
	o.collector.Add(trace.Record{
		JobID:     job.ID,
		Function:  job.Function,
		Worker:    s.id,
		Attempt:   job.Attempt,
		Submitted: job.SubmittedAt,
		Started:   fl.started,
		Finished:  now,
		Err:       res.Err,
	})
	o.noteAttemptLocked(s, false, true)
	o.noteAttemptMetrics(s.id, "timeout")
	o.emit(telemetry.EventSettle, job, s.id, "timeout")
	o.spanMarker(job, tracing.PhaseSettle, s.id, now, "timeout")
	o.faultSpan(job, s.id, now, res.Err)
	// fl is deliberately NOT recycled: the wedged worker still holds its
	// doneFn and may yet call it — the late-arrival path in completed
	// reclaims the record then.
	runs := o.reassignQueueLocked(s)
	more, cb := o.resolveAttemptLocked(s, job, res, now)
	runs = append(runs, more...)
	o.mu.Unlock()
	for _, run := range runs {
		run.run()
	}
	if cb != nil {
		cb(res)
	}
}

// reassignQueueLocked moves a wedged worker's queued (not yet started)
// jobs onto other workers. With a single-worker cluster there is nowhere
// to move them, so they stay put and wait for the worker's late recovery.
// Caller holds o.mu.
func (o *Orchestrator) reassignQueueLocked(wedged *workerSlot) []*inflight {
	if wedged.qlen() == 0 || len(o.slots) == 1 {
		return nil
	}
	q := wedged.qtake()
	o.queueDepthChangedLocked(wedged)
	var runs []*inflight
	for _, job := range q {
		s := o.pickRetryWorkerLocked(wedged)
		o.pushJobLocked(s, job, "reassigned")
		if run := o.maybeDispatchLocked(s); run != nil {
			runs = append(runs, run)
		}
	}
	return runs
}

// resolveAttemptLocked decides retry-versus-final for a finished attempt.
// It returns dispatch closures to run after o.mu is released and, when the
// outcome is final, the job's completion callback. Caller holds o.mu.
func (o *Orchestrator) resolveAttemptLocked(failedOn *workerSlot, job Job, res Result, finished time.Duration) (runs []*inflight, cb func(Result)) {
	retry := res.Err != "" && job.Attempt+1 < o.maxAttempts && !o.draining
	if retry {
		// The job stays pending: re-queue it on a different worker (a
		// fresh hardware environment — worker-local faults don't follow),
		// after the attempt's backoff delay.
		o.m.retries.Inc()
		next := job
		next.Attempt++
		if delay := o.retryDelayLocked(next.Attempt); delay > 0 {
			p := &parkedRetry{job: next, exclude: failedOn.id, parkedAt: finished}
			o.parked[next.ID] = p
			p.cancel = o.runtime.After(delay, func() { o.requeueParked(next.ID) })
			return nil, nil
		}
		o.span(next, tracing.PhaseRetry, "", finished, finished, "immediate")
		s := o.pickRetryWorkerLocked(failedOn)
		o.pushJobLocked(s, next, "retry")
		if run := o.maybeDispatchLocked(s); run != nil {
			runs = append(runs, run)
		}
		return runs, nil
	}
	o.tracer.EndTrace(job.Trace, finished, res.WorkerID, res.Err)
	o.noteFinal(job, res, finished)
	o.pending--
	o.m.pending.Set(float64(o.pending))
	cb = o.callbacks[job.ID]
	delete(o.callbacks, job.ID)
	if o.pending == 0 {
		o.idle.Broadcast()
	}
	return runs, cb
}

// retryDelayLocked computes attempt n's backoff: a jittered value in
// [d/2, d] with d = min(RetryBase·2^(n-1), RetryMax). Zero when backoff is
// disabled. The jitter comes from the orchestrator's seeded RNG, so sim
// runs remain deterministic. Caller holds o.mu.
func (o *Orchestrator) retryDelayLocked(attempt int) time.Duration {
	if o.retryBase <= 0 {
		return 0
	}
	shift := uint(attempt - 1)
	d := o.retryMax
	if shift < 62 {
		if exp := o.retryBase << shift; exp > 0 && exp < d {
			d = exp
		}
	}
	half := d / 2
	return half + time.Duration(o.rng.Int63n(int64(half)+1))
}

// requeueParked moves a backoff-parked job onto a worker's queue once its
// delay elapses. A job abandoned by Drain is no longer parked and is
// skipped.
func (o *Orchestrator) requeueParked(id int64) {
	o.mu.Lock()
	p, ok := o.parked[id]
	if !ok {
		o.mu.Unlock()
		return
	}
	delete(o.parked, id)
	o.span(p.job, tracing.PhaseRetry, "", p.parkedAt, o.runtime.Now(), "backoff")
	var s *workerSlot
	if failed, ok := o.byID[p.exclude]; ok {
		s = o.pickRetryWorkerLocked(failed)
	} else {
		s = o.pickWorkerLocked(p.job.Function)
	}
	o.pushJobLocked(s, p.job, "retry-backoff")
	run := o.maybeDispatchLocked(s)
	o.mu.Unlock()
	if run != nil {
		run.run()
	}
}

// pickRetryWorkerLocked chooses a random breaker-eligible worker other
// than failed (unless there is no other choice). Caller holds o.mu.
func (o *Orchestrator) pickRetryWorkerLocked(failed *workerSlot) *workerSlot {
	ws := o.assignableLocked()
	// O(1) other-worker check: the list either has someone besides failed,
	// or it is exactly [failed].
	hasOther := len(ws) > 1 || (len(ws) == 1 && ws[0] != failed)
	if !hasOther {
		if len(o.slots) == 1 {
			return o.slots[0]
		}
		// The failed worker is the only eligible one; any other worker is
		// still a fresher environment than re-running in place.
		ws = o.slots
	}
	for {
		s := ws[o.rng.Intn(len(ws))]
		if s != failed {
			return s
		}
	}
}

// noteAttemptLocked feeds one attempt's outcome into the worker's health
// record, trips or resets its breaker, and keeps the slot on the right
// side of the eligible/parole split. Caller holds o.mu.
func (o *Orchestrator) noteAttemptLocked(s *workerSlot, ok, timedOut bool) {
	h := &s.health
	if ok {
		h.completed++
		h.consec = 0
		if h.open {
			o.m.breakerTo[s.id]["closed"].Inc()
			h.open = false
			// A half-open probe succeeded; a still-parked slot (probe work
			// arrived via SubmitTo or the all-breakers-open fallback) comes
			// off parole too.
			if s.parolePos >= 0 {
				heap.Remove(&o.parole, s.parolePos)
				o.addEligibleLocked(s)
			}
		}
		return
	}
	h.failed++
	if timedOut {
		h.timedOut++
	}
	h.consec++
	if o.breakerThreshold > 0 && h.consec >= o.breakerThreshold {
		if !h.open {
			o.m.breakerTo[s.id]["open"].Inc()
		}
		h.open = true
		h.reopenAt = o.runtime.Now() + o.breakerProbe
		if s.eligPos >= 0 {
			o.removeEligibleLocked(s)
			heap.Push(&o.parole, s)
		} else if s.parolePos >= 0 {
			// Already parked; its reopen time moved later.
			heap.Fix(&o.parole, s.parolePos)
		}
	}
}

// Pending returns queued plus running (plus backoff-parked) jobs.
func (o *Orchestrator) Pending() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.pending
}

// Queued returns the total queued (not yet running) jobs across all
// workers. O(workers); the capacity aggregator and the per-shard
// queue-depth gauge poll it.
func (o *Orchestrator) Queued() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	total := 0
	for _, s := range o.slots {
		total += s.qlen()
	}
	return total
}

// QueueDepth returns the queued (not yet running) jobs for a worker.
func (o *Orchestrator) QueueDepth(workerID string) int {
	o.mu.Lock()
	defer o.mu.Unlock()
	if s, ok := o.byID[workerID]; ok {
		return s.qlen()
	}
	return 0
}

// StartArrivals begins the paper's arrival process: every interval, one
// job is added to each of sampleSize randomly-chosen queues (with
// replacement across ticks, without within a tick). gen produces each
// job's function name and arguments. Call the returned stop function to
// end the process; only one arrival process may run at a time. The whole
// tick — sampling, generation, enqueueing — happens atomically with
// respect to stop, so a stopped process never enqueues a tick it had
// already sampled.
func (o *Orchestrator) StartArrivals(interval time.Duration, sampleSize int, gen func(rng *rand.Rand) (string, []byte)) (stop func(), err error) {
	if interval <= 0 {
		return nil, fmt.Errorf("core: arrival interval must be positive")
	}
	if sampleSize <= 0 || sampleSize > len(o.slots) {
		return nil, fmt.Errorf("core: sample size %d outside [1,%d]", sampleSize, len(o.slots))
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.arrivalCancel != nil {
		return nil, fmt.Errorf("core: arrival process already running")
	}
	if o.draining {
		return nil, fmt.Errorf("core: orchestrator is draining")
	}
	stopped := false
	var tick func()
	tick = func() {
		var runs []*inflight
		o.mu.Lock()
		if stopped || o.draining {
			o.mu.Unlock()
			return
		}
		// Sample without replacement within the tick. The fleet can have
		// shrunk below sampleSize since validation (RemoveWorker); clamp
		// rather than index past the permutation.
		n := sampleSize
		if n > len(o.slots) {
			n = len(o.slots)
		}
		perm := o.rng.Perm(len(o.slots))
		targets := make([]*workerSlot, 0, n)
		for _, idx := range perm[:n] {
			targets = append(targets, o.slots[idx])
		}
		for _, s := range targets {
			fn, args := gen(o.rng)
			_, run := o.enqueueLocked(s, fn, args, o.jobTimeout, nil)
			if run != nil {
				runs = append(runs, run)
			}
		}
		o.arrivalCancel = o.runtime.After(interval, tick)
		o.mu.Unlock()
		for _, run := range runs {
			run.run()
		}
	}
	o.arrivalCancel = o.runtime.After(interval, tick)
	return func() {
		o.mu.Lock()
		defer o.mu.Unlock()
		stopped = true
		if o.arrivalCancel != nil {
			o.arrivalCancel()
			o.arrivalCancel = nil
		}
	}, nil
}

// Quiesce blocks until no jobs are pending. Live mode only: in sim mode
// the engine's Run drives the cluster instead, and calling Quiesce from
// the simulation thread would deadlock.
func (o *Orchestrator) Quiesce() {
	o.mu.Lock()
	defer o.mu.Unlock()
	for o.pending > 0 {
		o.idle.Wait()
	}
}

// Drain gracefully shuts intake down: it stops the arrival process,
// rejects new submissions (Submit returns 0), and waits for pending work
// to finish. If ctx expires first, Drain abandons every job that has not
// started executing — queued and backoff-parked jobs — and returns them
// sorted by id; currently-executing jobs keep running in the background
// and are recorded normally when they finish. Abandoned jobs never invoke
// their completion callbacks. Live mode only, like Quiesce.
func (o *Orchestrator) Drain(ctx context.Context) []Job {
	o.mu.Lock()
	o.draining = true
	if o.arrivalCancel != nil {
		o.arrivalCancel()
		o.arrivalCancel = nil
	}
	if o.pm != nil {
		// Stop the power plane first: parked wakes are cancelled (their
		// jobs are about to be abandoned below), idle nodes power off now,
		// and a wake completing mid-drain powers straight back down
		// instead of resurrecting a worker.
		o.pm.Drain()
	}
	// cond.Wait cannot select on ctx; poke the cond when ctx expires.
	stopWatch := context.AfterFunc(ctx, func() {
		o.mu.Lock()
		o.idle.Broadcast()
		o.mu.Unlock()
	})
	defer stopWatch()
	for o.pending > 0 && ctx.Err() == nil {
		o.idle.Wait()
	}
	if o.pending == 0 {
		o.mu.Unlock()
		return nil
	}
	var abandoned []Job
	for _, s := range o.slots {
		abandoned = append(abandoned, s.qtake()...)
		o.queueDepthChangedLocked(s)
	}
	for id, p := range o.parked {
		p.cancel()
		abandoned = append(abandoned, p.job)
		delete(o.parked, id)
	}
	for id, p := range o.throttled {
		p.cancel()
		abandoned = append(abandoned, p.job)
		delete(o.throttled, id)
	}
	sort.Slice(abandoned, func(i, j int) bool { return abandoned[i].ID < abandoned[j].ID })
	if o.tracer != nil {
		now := o.runtime.Now()
		for _, j := range abandoned {
			o.tracer.EndTrace(j.Trace, now, "", "core: abandoned at drain")
		}
	}
	o.pending -= len(abandoned)
	o.m.pending.Set(float64(o.pending))
	for _, j := range abandoned {
		delete(o.callbacks, j.ID)
	}
	if o.pending == 0 {
		o.idle.Broadcast()
	}
	o.mu.Unlock()
	return abandoned
}

// Draining reports whether Drain has been called.
func (o *Orchestrator) Draining() bool {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.draining
}
