// Package core implements the paper's primary contribution: the MicroFaaS
// cluster orchestration platform (OP, Sec IV-D).
//
// The OP maintains a job queue per worker node. Jobs are assigned to a
// random sampling of those queues (simulating the arrival of function
// invocations); on assignment a powered-down worker powers on, boots its
// worker OS, executes the job run-to-completion, and then either reboots
// into its next queued job or powers down. The OP records per-invocation
// timestamps for the evaluation, exactly as the paper's Python OP does.
//
// The same orchestrator drives two worker back-ends: discrete-event
// simulated workers (internal/node SimWorker / VMWorker, for the paper's
// figure-scale experiments) and live TCP workers executing real Go
// workload functions (internal/node LiveWorker). The Runtime abstraction
// is the only clock the OP touches, so its logic is identical in both
// modes.
package core

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"microfaas/internal/sim"
	"microfaas/internal/trace"
)

// Job is one queued function invocation.
type Job struct {
	ID          int64
	Function    string
	Args        []byte
	SubmittedAt time.Duration
	// Attempt counts retries: 0 for the first execution. The OP re-queues
	// failed jobs onto a different worker while attempts remain (hardware
	// isolation makes worker-local faults independent, so reassignment is
	// the natural retry policy).
	Attempt int
}

// Result is a completed (or failed) invocation as reported by a worker.
type Result struct {
	Job      Job
	WorkerID string
	Output   []byte
	Err      string

	// StartedAt/FinishedAt are on the cluster clock.
	StartedAt, FinishedAt time.Duration
	// Boot/Overhead/Exec decompose the worker's cycle (Fig 3).
	Boot, Overhead, Exec time.Duration
}

// Worker is a single-tenant, run-to-completion worker node. RunJob carries
// the node through one full cycle: power-on (the OP's GPIO line in the
// prototype), worker-OS boot, input receive, execution, result return, and
// power-down. done is invoked exactly once, and never synchronously from
// inside RunJob itself — sim workers fire it from a scheduled event, live
// workers from their own goroutine. The orchestrator never calls RunJob
// concurrently on the same worker.
type Worker interface {
	ID() string
	RunJob(job Job, done func(Result))
}

// Runtime abstracts the cluster clock: virtual (discrete-event) in sim
// mode, wall-clock in live mode.
type Runtime interface {
	// Now returns elapsed cluster time.
	Now() time.Duration
	// After schedules fn after d; the returned function cancels it.
	After(d time.Duration, fn func()) (cancel func())
}

// SimRuntime adapts a sim.Engine to the Runtime interface.
type SimRuntime struct{ Engine *sim.Engine }

// Now returns the engine's virtual time.
func (r SimRuntime) Now() time.Duration { return r.Engine.Now() }

// After schedules fn on the engine.
func (r SimRuntime) After(d time.Duration, fn func()) func() {
	ev := r.Engine.Schedule(d, fn)
	return ev.Cancel
}

// WallRuntime is the live cluster's clock: time elapsed since Start.
type WallRuntime struct{ Start time.Time }

// NewWallRuntime returns a runtime anchored at the current instant.
func NewWallRuntime() WallRuntime { return WallRuntime{Start: time.Now()} }

// Now returns wall time elapsed since the runtime was anchored.
func (r WallRuntime) Now() time.Duration { return time.Since(r.Start) }

// After schedules fn on a wall-clock timer.
func (r WallRuntime) After(d time.Duration, fn func()) func() {
	t := time.AfterFunc(d, fn)
	return func() { t.Stop() }
}

// AssignPolicy selects how Submit picks a worker queue.
type AssignPolicy int

const (
	// AssignRandom is the paper's policy: a uniformly random queue.
	AssignRandom AssignPolicy = iota
	// AssignRoundRobin cycles through workers in registration order.
	AssignRoundRobin
	// AssignLeastLoaded picks the worker with the fewest queued+running
	// jobs (ties broken by registration order).
	AssignLeastLoaded
)

func (p AssignPolicy) String() string {
	switch p {
	case AssignRandom:
		return "random"
	case AssignRoundRobin:
		return "round-robin"
	case AssignLeastLoaded:
		return "least-loaded"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// Config assembles an Orchestrator.
type Config struct {
	Runtime   Runtime
	Workers   []Worker
	Collector *trace.Collector // optional; a fresh one is created if nil
	// Seed drives the random queue-assignment sampling.
	Seed int64
	// Policy selects the queue-assignment policy (default AssignRandom,
	// the paper's).
	Policy AssignPolicy
	// MaxAttempts caps executions per job (default 1 = no retries).
	// Failed jobs are re-queued onto a different worker until the cap;
	// every attempt is recorded in the collector, and SubmitAsync
	// callbacks fire only on the final outcome.
	MaxAttempts int
}

// Orchestrator is the OP: per-worker job queues, random assignment,
// dispatch, and data collection.
type Orchestrator struct {
	runtime   Runtime
	collector *trace.Collector

	policy      AssignPolicy
	maxAttempts int

	mu        sync.Mutex
	rng       *rand.Rand
	workers   []Worker
	queues    map[string][]Job
	busy      map[string]bool
	callbacks map[int64]func(Result)
	nextID    int64
	rrNext    int // next round-robin index
	pending   int // queued + running jobs
	idle      *sync.Cond

	arrivalCancel func()
}

// New builds an orchestrator over the given workers.
func New(cfg Config) (*Orchestrator, error) {
	if cfg.Runtime == nil {
		return nil, fmt.Errorf("core: a Runtime is required")
	}
	if len(cfg.Workers) == 0 {
		return nil, fmt.Errorf("core: at least one worker is required")
	}
	coll := cfg.Collector
	if coll == nil {
		coll = trace.NewCollector()
	}
	switch cfg.Policy {
	case AssignRandom, AssignRoundRobin, AssignLeastLoaded:
	default:
		return nil, fmt.Errorf("core: unknown assignment policy %d", int(cfg.Policy))
	}
	maxAttempts := cfg.MaxAttempts
	if maxAttempts <= 0 {
		maxAttempts = 1
	}
	o := &Orchestrator{
		runtime:     cfg.Runtime,
		collector:   coll,
		policy:      cfg.Policy,
		maxAttempts: maxAttempts,
		rng:         rand.New(rand.NewSource(cfg.Seed)),
		workers:     append([]Worker(nil), cfg.Workers...),
		queues:      make(map[string][]Job, len(cfg.Workers)),
		busy:        make(map[string]bool, len(cfg.Workers)),
		callbacks:   make(map[int64]func(Result)),
	}
	o.idle = sync.NewCond(&o.mu)
	seen := map[string]bool{}
	for _, w := range cfg.Workers {
		if seen[w.ID()] {
			return nil, fmt.Errorf("core: duplicate worker id %q", w.ID())
		}
		seen[w.ID()] = true
	}
	return o, nil
}

// Collector returns the orchestrator's trace collector.
func (o *Orchestrator) Collector() *trace.Collector { return o.collector }

// Workers returns the worker ids in registration order.
func (o *Orchestrator) Workers() []string {
	ids := make([]string, len(o.workers))
	for i, w := range o.workers {
		ids[i] = w.ID()
	}
	return ids
}

// Submit enqueues an invocation on a uniformly random worker's queue (the
// paper's assignment policy) and returns the job id.
func (o *Orchestrator) Submit(function string, args []byte) int64 {
	return o.SubmitAsync(function, args, nil)
}

// SubmitAsync is Submit with a completion callback: cb (when non-nil) is
// invoked exactly once with the job's final result (after any retries),
// once it is recorded in the collector. The callback runs outside the
// orchestrator lock; sim-mode callbacks run on the engine thread.
func (o *Orchestrator) SubmitAsync(function string, args []byte, cb func(Result)) int64 {
	o.mu.Lock()
	return o.enqueueLocked(o.pickWorkerLocked(), function, args, cb)
}

// pickWorkerLocked applies the assignment policy. Caller holds o.mu.
func (o *Orchestrator) pickWorkerLocked() Worker {
	switch o.policy {
	case AssignRoundRobin:
		w := o.workers[o.rrNext%len(o.workers)]
		o.rrNext++
		return w
	case AssignLeastLoaded:
		best, bestLoad := o.workers[0], int(^uint(0)>>1)
		for _, w := range o.workers {
			load := len(o.queues[w.ID()])
			if o.busy[w.ID()] {
				load++
			}
			if load < bestLoad {
				best, bestLoad = w, load
			}
		}
		return best
	default: // AssignRandom, the paper's policy
		return o.workers[o.rng.Intn(len(o.workers))]
	}
}

// SubmitTo enqueues an invocation on a specific worker's queue.
func (o *Orchestrator) SubmitTo(workerID, function string, args []byte) (int64, error) {
	o.mu.Lock()
	for _, w := range o.workers {
		if w.ID() == workerID {
			return o.enqueueLocked(w, function, args, nil), nil
		}
	}
	o.mu.Unlock()
	return 0, fmt.Errorf("core: unknown worker %q", workerID)
}

// enqueueLocked appends the job and kicks dispatch; it releases o.mu.
func (o *Orchestrator) enqueueLocked(w Worker, function string, args []byte, cb func(Result)) int64 {
	o.nextID++
	id := o.nextID
	job := Job{ID: id, Function: function, Args: args, SubmittedAt: o.runtime.Now()}
	o.queues[w.ID()] = append(o.queues[w.ID()], job)
	if cb != nil {
		o.callbacks[id] = cb
	}
	o.pending++
	o.maybeDispatchLocked(w)
	o.mu.Unlock()
	return id
}

// maybeDispatchLocked starts the worker on its next queued job if it is
// free. Caller holds o.mu.
func (o *Orchestrator) maybeDispatchLocked(w Worker) {
	id := w.ID()
	if o.busy[id] {
		return
	}
	q := o.queues[id]
	if len(q) == 0 {
		return
	}
	job := q[0]
	o.queues[id] = q[1:]
	o.busy[id] = true
	started := o.runtime.Now()
	w.RunJob(job, func(res Result) {
		o.completed(w, job, started, res)
	})
}

// completed records a finished attempt, retries failures while attempts
// remain, and dispatches the worker's next job.
func (o *Orchestrator) completed(w Worker, job Job, started time.Duration, res Result) {
	finished := o.runtime.Now()
	o.collector.Add(trace.Record{
		JobID:     job.ID,
		Function:  job.Function,
		Worker:    w.ID(),
		Attempt:   job.Attempt,
		Submitted: job.SubmittedAt,
		Started:   started,
		Finished:  finished,
		Boot:      res.Boot,
		Overhead:  res.Overhead,
		Exec:      res.Exec,
		Err:       res.Err,
	})
	retry := res.Err != "" && job.Attempt+1 < o.maxAttempts
	o.mu.Lock()
	o.busy[w.ID()] = false
	var cb func(Result)
	if retry {
		// The job stays pending: re-queue it on a different worker (a
		// fresh hardware environment — worker-local faults don't follow).
		next := o.pickRetryWorkerLocked(w)
		j := job
		j.Attempt++
		o.queues[next.ID()] = append(o.queues[next.ID()], j)
		o.maybeDispatchLocked(next)
	} else {
		o.pending--
		cb = o.callbacks[job.ID]
		delete(o.callbacks, job.ID)
		if o.pending == 0 {
			o.idle.Broadcast()
		}
	}
	o.maybeDispatchLocked(w)
	o.mu.Unlock()
	if cb != nil {
		res.StartedAt, res.FinishedAt = started, finished
		cb(res)
	}
}

// pickRetryWorkerLocked chooses a random worker other than failed (unless
// it is the only one). Caller holds o.mu.
func (o *Orchestrator) pickRetryWorkerLocked(failed Worker) Worker {
	if len(o.workers) == 1 {
		return o.workers[0]
	}
	for {
		w := o.workers[o.rng.Intn(len(o.workers))]
		if w.ID() != failed.ID() {
			return w
		}
	}
}

// Pending returns queued plus running jobs.
func (o *Orchestrator) Pending() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.pending
}

// QueueDepth returns the queued (not yet running) jobs for a worker.
func (o *Orchestrator) QueueDepth(workerID string) int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return len(o.queues[workerID])
}

// StartArrivals begins the paper's arrival process: every interval, one
// job is added to each of sampleSize randomly-chosen queues (with
// replacement across ticks, without within a tick). gen produces each
// job's function name and arguments. Call the returned stop function to
// end the process; only one arrival process may run at a time.
func (o *Orchestrator) StartArrivals(interval time.Duration, sampleSize int, gen func(rng *rand.Rand) (string, []byte)) (stop func(), err error) {
	if interval <= 0 {
		return nil, fmt.Errorf("core: arrival interval must be positive")
	}
	if sampleSize <= 0 || sampleSize > len(o.workers) {
		return nil, fmt.Errorf("core: sample size %d outside [1,%d]", sampleSize, len(o.workers))
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.arrivalCancel != nil {
		return nil, fmt.Errorf("core: arrival process already running")
	}
	stopped := false
	var tick func()
	tick = func() {
		o.mu.Lock()
		if stopped {
			o.mu.Unlock()
			return
		}
		// Sample without replacement within the tick.
		perm := o.rng.Perm(len(o.workers))
		targets := make([]Worker, 0, sampleSize)
		for _, idx := range perm[:sampleSize] {
			targets = append(targets, o.workers[idx])
		}
		fns := make([]string, len(targets))
		argss := make([][]byte, len(targets))
		for i := range targets {
			fns[i], argss[i] = gen(o.rng)
		}
		o.mu.Unlock()
		for i, w := range targets {
			o.mu.Lock()
			o.enqueueLocked(w, fns[i], argss[i], nil) // releases o.mu
		}
		o.mu.Lock()
		if !stopped {
			o.arrivalCancel = o.runtime.After(interval, tick)
		}
		o.mu.Unlock()
	}
	o.arrivalCancel = o.runtime.After(interval, tick)
	return func() {
		o.mu.Lock()
		defer o.mu.Unlock()
		stopped = true
		if o.arrivalCancel != nil {
			o.arrivalCancel()
			o.arrivalCancel = nil
		}
	}, nil
}

// Quiesce blocks until no jobs are pending. Live mode only: in sim mode
// the engine's Run drives the cluster instead, and calling Quiesce from
// the simulation thread would deadlock.
func (o *Orchestrator) Quiesce() {
	o.mu.Lock()
	defer o.mu.Unlock()
	for o.pending > 0 {
		o.idle.Wait()
	}
}
