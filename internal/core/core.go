// Package core implements the paper's primary contribution: the MicroFaaS
// cluster orchestration platform (OP, Sec IV-D).
//
// The OP maintains a job queue per worker node. Jobs are assigned to a
// random sampling of those queues (simulating the arrival of function
// invocations); on assignment a powered-down worker powers on, boots its
// worker OS, executes the job run-to-completion, and then either reboots
// into its next queued job or powers down. The OP records per-invocation
// timestamps for the evaluation, exactly as the paper's Python OP does.
//
// The same orchestrator drives two worker back-ends: discrete-event
// simulated workers (internal/node SimWorker / VMWorker, for the paper's
// figure-scale experiments) and live TCP workers executing real Go
// workload functions (internal/node LiveWorker). The Runtime abstraction
// is the only clock the OP touches, so its logic is identical in both
// modes.
//
// Failure model (Sec III-a makes worker faults independent; the OP masks
// them): every attempt can carry a deadline enforced on the Runtime clock,
// so a wedged worker yields a timed-out Result instead of occupying its
// queue forever; failed attempts are re-queued onto a different worker
// with exponential backoff and seeded jitter; per-worker consecutive
// failures feed a circuit breaker that ejects the worker from assignment
// until a probe interval passes; and Drain stops intake and hands back the
// jobs it had to abandon.
package core

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"microfaas/internal/sim"
	"microfaas/internal/telemetry"
	"microfaas/internal/trace"
)

// Job is one queued function invocation.
type Job struct {
	ID          int64
	Function    string
	Args        []byte
	SubmittedAt time.Duration
	// Attempt counts retries: 0 for the first execution. The OP re-queues
	// failed jobs onto a different worker while attempts remain (hardware
	// isolation makes worker-local faults independent, so reassignment is
	// the natural retry policy).
	Attempt int
	// Timeout bounds one attempt's execution on the cluster clock; when it
	// expires the OP synthesizes a failed Result and moves on (retrying the
	// job elsewhere while attempts remain). Zero means no deadline.
	Timeout time.Duration
}

// Result is a completed (or failed) invocation as reported by a worker.
type Result struct {
	Job      Job
	WorkerID string
	Output   []byte
	Err      string

	// TimedOut marks a Result synthesized by the OP because the attempt's
	// deadline expired before the worker reported back.
	TimedOut bool

	// StartedAt/FinishedAt are on the cluster clock.
	StartedAt, FinishedAt time.Duration
	// Boot/Overhead/Exec decompose the worker's cycle (Fig 3).
	Boot, Overhead, Exec time.Duration
}

// Worker is a single-tenant, run-to-completion worker node. RunJob carries
// the node through one full cycle: power-on (the OP's GPIO line in the
// prototype), worker-OS boot, input receive, execution, result return, and
// power-down. done is invoked at most once, and never synchronously from
// inside RunJob itself — sim workers fire it from a scheduled event, live
// workers from their own goroutine. A wedged worker may never invoke done
// at all; the OP's deadline covers that case. The orchestrator never calls
// RunJob concurrently on the same worker.
type Worker interface {
	ID() string
	RunJob(job Job, done func(Result))
}

// Runtime abstracts the cluster clock: virtual (discrete-event) in sim
// mode, wall-clock in live mode.
type Runtime interface {
	// Now returns elapsed cluster time.
	Now() time.Duration
	// After schedules fn after d; the returned function cancels it.
	After(d time.Duration, fn func()) (cancel func())
}

// SimRuntime adapts a sim.Engine to the Runtime interface.
type SimRuntime struct{ Engine *sim.Engine }

// Now returns the engine's virtual time.
func (r SimRuntime) Now() time.Duration { return r.Engine.Now() }

// After schedules fn on the engine.
func (r SimRuntime) After(d time.Duration, fn func()) func() {
	ev := r.Engine.Schedule(d, fn)
	return ev.Cancel
}

// WallRuntime is the live cluster's clock: time elapsed since Start.
type WallRuntime struct{ Start time.Time }

// NewWallRuntime returns a runtime anchored at the current instant.
func NewWallRuntime() WallRuntime { return WallRuntime{Start: time.Now()} }

// Now returns wall time elapsed since the runtime was anchored.
func (r WallRuntime) Now() time.Duration { return time.Since(r.Start) }

// After schedules fn on a wall-clock timer.
func (r WallRuntime) After(d time.Duration, fn func()) func() {
	t := time.AfterFunc(d, fn)
	return func() { t.Stop() }
}

// AssignPolicy selects how Submit picks a worker queue.
type AssignPolicy int

const (
	// AssignRandom is the paper's policy: a uniformly random queue.
	AssignRandom AssignPolicy = iota
	// AssignRoundRobin cycles through workers in registration order.
	AssignRoundRobin
	// AssignLeastLoaded picks the worker with the fewest queued+running
	// jobs (ties broken by registration order).
	AssignLeastLoaded
)

func (p AssignPolicy) String() string {
	switch p {
	case AssignRandom:
		return "random"
	case AssignRoundRobin:
		return "round-robin"
	case AssignLeastLoaded:
		return "least-loaded"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// BreakerState is a worker's circuit-breaker position.
type BreakerState int

const (
	// BreakerClosed: the worker is healthy and assignable.
	BreakerClosed BreakerState = iota
	// BreakerOpen: consecutive failures crossed the threshold; the worker
	// is ejected from assignment until its probe interval passes.
	BreakerOpen
	// BreakerHalfOpen: the probe interval has passed; the worker is
	// assignable again, and its next outcome closes or re-opens the
	// breaker.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return fmt.Sprintf("breaker(%d)", int(s))
	}
}

// WorkerHealth is a point-in-time snapshot of one worker's failure
// tracking, as exposed by Orchestrator.Health.
type WorkerHealth struct {
	ID                  string       `json:"id"`
	State               BreakerState `json:"-"`
	ConsecutiveFailures int          `json:"consecutive_failures"`
	// Completed/Failed count attempts (not jobs); TimedOut attempts are a
	// subset of Failed.
	Completed  int  `json:"completed"`
	Failed     int  `json:"failed"`
	TimedOut   int  `json:"timed_out"`
	QueueDepth int  `json:"queue_depth"`
	Busy       bool `json:"busy"`
}

// workerHealth is the mutable per-worker record behind WorkerHealth.
type workerHealth struct {
	consec    int
	completed int
	failed    int
	timedOut  int
	open      bool
	reopenAt  time.Duration
}

// Config assembles an Orchestrator.
type Config struct {
	Runtime   Runtime
	Workers   []Worker
	Collector *trace.Collector // optional; a fresh one is created if nil
	// Seed drives the random queue-assignment sampling, retry jitter, and
	// retry-target selection.
	Seed int64
	// Policy selects the queue-assignment policy (default AssignRandom,
	// the paper's).
	Policy AssignPolicy
	// MaxAttempts caps executions per job (default 1 = no retries).
	// Failed jobs are re-queued onto a different worker until the cap;
	// every attempt is recorded in the collector, and SubmitAsync
	// callbacks fire only on the final outcome.
	MaxAttempts int
	// JobTimeout is the default per-attempt deadline stamped onto
	// submitted jobs (zero = no deadline). Enforced via Runtime.After, so
	// it behaves identically in sim and live modes.
	JobTimeout time.Duration
	// RetryBase enables exponential backoff between attempts: attempt n
	// waits in [d/2, d] where d = min(RetryBase·2^(n-1), RetryMax), with
	// the jitter drawn from the orchestrator's seeded RNG (sim runs stay
	// deterministic). Zero keeps the immediate re-queue.
	RetryBase time.Duration
	// RetryMax caps the backoff delay (default 30·RetryBase, at least 1s).
	RetryMax time.Duration
	// BreakerThreshold opens a worker's circuit breaker after this many
	// consecutive failed attempts, ejecting it from assignment policies.
	// Zero disables health-based ejection.
	BreakerThreshold int
	// BreakerProbe is how long an open breaker ejects its worker before
	// the worker is probed with real work again (default 30s).
	BreakerProbe time.Duration
	// Telemetry receives metrics and lifecycle events (nil = disabled;
	// the disabled path costs one nil check per site and leaves seeded
	// runs bit-identical — telemetry never touches the RNG or the clock).
	Telemetry *telemetry.Telemetry
}

// Orchestrator is the OP: per-worker job queues, random assignment,
// dispatch, and data collection.
type Orchestrator struct {
	runtime   Runtime
	collector *trace.Collector
	tel       *telemetry.Telemetry
	m         orchMetrics

	policy           AssignPolicy
	maxAttempts      int
	jobTimeout       time.Duration
	retryBase        time.Duration
	retryMax         time.Duration
	breakerThreshold int
	breakerProbe     time.Duration

	mu        sync.Mutex
	rng       *rand.Rand
	workers   []Worker
	queues    map[string][]Job
	busy      map[string]bool
	health    map[string]*workerHealth
	parked    map[int64]*parkedRetry
	callbacks map[int64]func(Result)
	nextID    int64
	rrNext    int // next round-robin index
	pending   int // queued + running + backoff-parked jobs
	draining  bool
	idle      *sync.Cond

	arrivalCancel func()
}

// inflight tracks one dispatched attempt. Exactly one of the worker's done
// callback or the deadline timer settles it; the loser is ignored.
type inflight struct {
	job           Job
	worker        Worker
	started       time.Duration
	settled       bool
	cancelTimeout func()
}

// parkedRetry is a failed job waiting out its backoff delay.
type parkedRetry struct {
	job     Job
	exclude string // the worker the previous attempt failed on
	cancel  func()
}

// New builds an orchestrator over the given workers.
func New(cfg Config) (*Orchestrator, error) {
	if cfg.Runtime == nil {
		return nil, fmt.Errorf("core: a Runtime is required")
	}
	if len(cfg.Workers) == 0 {
		return nil, fmt.Errorf("core: at least one worker is required")
	}
	coll := cfg.Collector
	if coll == nil {
		coll = trace.NewCollector()
	}
	switch cfg.Policy {
	case AssignRandom, AssignRoundRobin, AssignLeastLoaded:
	default:
		return nil, fmt.Errorf("core: unknown assignment policy %d", int(cfg.Policy))
	}
	if cfg.JobTimeout < 0 || cfg.RetryBase < 0 || cfg.RetryMax < 0 ||
		cfg.BreakerThreshold < 0 || cfg.BreakerProbe < 0 {
		return nil, fmt.Errorf("core: negative failure-handling durations/thresholds")
	}
	maxAttempts := cfg.MaxAttempts
	if maxAttempts <= 0 {
		maxAttempts = 1
	}
	retryMax := cfg.RetryMax
	if cfg.RetryBase > 0 && retryMax == 0 {
		retryMax = 30 * cfg.RetryBase
		if retryMax < time.Second {
			retryMax = time.Second
		}
	}
	if retryMax > 0 && retryMax < cfg.RetryBase {
		return nil, fmt.Errorf("core: RetryMax %v below RetryBase %v", retryMax, cfg.RetryBase)
	}
	breakerProbe := cfg.BreakerProbe
	if cfg.BreakerThreshold > 0 && breakerProbe == 0 {
		breakerProbe = 30 * time.Second
	}
	o := &Orchestrator{
		runtime:          cfg.Runtime,
		collector:        coll,
		policy:           cfg.Policy,
		maxAttempts:      maxAttempts,
		jobTimeout:       cfg.JobTimeout,
		retryBase:        cfg.RetryBase,
		retryMax:         retryMax,
		breakerThreshold: cfg.BreakerThreshold,
		breakerProbe:     breakerProbe,
		rng:              rand.New(rand.NewSource(cfg.Seed)),
		workers:          append([]Worker(nil), cfg.Workers...),
		queues:           make(map[string][]Job, len(cfg.Workers)),
		busy:             make(map[string]bool, len(cfg.Workers)),
		health:           make(map[string]*workerHealth, len(cfg.Workers)),
		parked:           make(map[int64]*parkedRetry),
		callbacks:        make(map[int64]func(Result)),
	}
	o.idle = sync.NewCond(&o.mu)
	seen := map[string]bool{}
	for _, w := range cfg.Workers {
		if seen[w.ID()] {
			return nil, fmt.Errorf("core: duplicate worker id %q", w.ID())
		}
		seen[w.ID()] = true
		o.health[w.ID()] = &workerHealth{}
	}
	o.initTelemetry(cfg.Telemetry)
	return o, nil
}

// Telemetry returns the orchestrator's telemetry (nil when disabled).
func (o *Orchestrator) Telemetry() *telemetry.Telemetry { return o.tel }

// Collector returns the orchestrator's trace collector.
func (o *Orchestrator) Collector() *trace.Collector { return o.collector }

// Workers returns the worker ids in registration order.
func (o *Orchestrator) Workers() []string {
	ids := make([]string, len(o.workers))
	for i, w := range o.workers {
		ids[i] = w.ID()
	}
	return ids
}

// Health returns a snapshot of every worker's failure tracking, in
// registration order.
func (o *Orchestrator) Health() []WorkerHealth {
	o.mu.Lock()
	defer o.mu.Unlock()
	now := o.runtime.Now()
	out := make([]WorkerHealth, 0, len(o.workers))
	for _, w := range o.workers {
		h := o.health[w.ID()]
		st := BreakerClosed
		if h.open {
			if now >= h.reopenAt {
				st = BreakerHalfOpen
			} else {
				st = BreakerOpen
			}
		}
		out = append(out, WorkerHealth{
			ID:                  w.ID(),
			State:               st,
			ConsecutiveFailures: h.consec,
			Completed:           h.completed,
			Failed:              h.failed,
			TimedOut:            h.timedOut,
			QueueDepth:          len(o.queues[w.ID()]),
			Busy:                o.busy[w.ID()],
		})
	}
	return out
}

// Submit enqueues an invocation on a uniformly random worker's queue (the
// paper's assignment policy) and returns the job id. It returns 0 without
// enqueueing when the orchestrator is draining.
func (o *Orchestrator) Submit(function string, args []byte) int64 {
	return o.SubmitAsync(function, args, nil)
}

// SubmitAsync is Submit with a completion callback: cb (when non-nil) is
// invoked exactly once with the job's final result (after any retries),
// once it is recorded in the collector. The callback runs outside the
// orchestrator lock; sim-mode callbacks run on the engine thread. When the
// orchestrator is draining, SubmitAsync returns 0 and cb never fires.
func (o *Orchestrator) SubmitAsync(function string, args []byte, cb func(Result)) int64 {
	return o.SubmitWithTimeout(function, args, o.jobTimeout, cb)
}

// SubmitWithTimeout is SubmitAsync with a per-job deadline overriding the
// configured JobTimeout (zero = no deadline for this job).
func (o *Orchestrator) SubmitWithTimeout(function string, args []byte, timeout time.Duration, cb func(Result)) int64 {
	o.mu.Lock()
	if o.draining {
		o.mu.Unlock()
		return 0
	}
	id, run := o.enqueueLocked(o.pickWorkerLocked(), function, args, timeout, cb)
	o.mu.Unlock()
	if run != nil {
		run()
	}
	return id
}

// eligibleWorkersLocked returns the workers whose breaker admits new work.
// With the breaker disabled this is exactly the registered worker list (so
// assignment randomness is unchanged from the breaker-free OP); when every
// breaker is open there is nowhere better to send work, so all workers
// stay eligible. Caller holds o.mu.
func (o *Orchestrator) eligibleWorkersLocked() []Worker {
	if o.breakerThreshold <= 0 {
		return o.workers
	}
	now := o.runtime.Now()
	eligible := make([]Worker, 0, len(o.workers))
	for _, w := range o.workers {
		h := o.health[w.ID()]
		if !h.open || now >= h.reopenAt {
			eligible = append(eligible, w)
		}
	}
	if len(eligible) == 0 {
		return o.workers
	}
	return eligible
}

// pickWorkerLocked applies the assignment policy over breaker-eligible
// workers. Caller holds o.mu.
func (o *Orchestrator) pickWorkerLocked() Worker {
	ws := o.eligibleWorkersLocked()
	switch o.policy {
	case AssignRoundRobin:
		w := ws[o.rrNext%len(ws)]
		o.rrNext++
		return w
	case AssignLeastLoaded:
		best, bestLoad := ws[0], int(^uint(0)>>1)
		for _, w := range ws {
			load := len(o.queues[w.ID()])
			if o.busy[w.ID()] {
				load++
			}
			if load < bestLoad {
				best, bestLoad = w, load
			}
		}
		return best
	default: // AssignRandom, the paper's policy
		return ws[o.rng.Intn(len(ws))]
	}
}

// SubmitTo enqueues an invocation on a specific worker's queue.
func (o *Orchestrator) SubmitTo(workerID, function string, args []byte) (int64, error) {
	o.mu.Lock()
	if o.draining {
		o.mu.Unlock()
		return 0, fmt.Errorf("core: orchestrator is draining")
	}
	for _, w := range o.workers {
		if w.ID() == workerID {
			id, run := o.enqueueLocked(w, function, args, o.jobTimeout, nil)
			o.mu.Unlock()
			if run != nil {
				run()
			}
			return id, nil
		}
	}
	o.mu.Unlock()
	return 0, fmt.Errorf("core: unknown worker %q", workerID)
}

// enqueueLocked appends the job and returns its id plus a dispatch closure
// to invoke once o.mu is released (nil when the worker is already busy).
// Caller holds o.mu.
func (o *Orchestrator) enqueueLocked(w Worker, function string, args []byte, timeout time.Duration, cb func(Result)) (int64, func()) {
	o.nextID++
	id := o.nextID
	job := Job{ID: id, Function: function, Args: args, SubmittedAt: o.runtime.Now(), Timeout: timeout}
	o.m.submitted.Inc()
	o.emit(telemetry.EventSubmit, job, "", "")
	o.pushJobLocked(w, job, "")
	if cb != nil {
		o.callbacks[id] = cb
	}
	o.pending++
	o.m.pending.Set(float64(o.pending))
	return id, o.maybeDispatchLocked(w)
}

// pushJobLocked appends one attempt to a worker's queue, keeping the
// queue-depth gauge current and emitting the queue lifecycle event.
// Caller holds o.mu.
func (o *Orchestrator) pushJobLocked(w Worker, job Job, detail string) {
	o.queues[w.ID()] = append(o.queues[w.ID()], job)
	o.queueDepthChangedLocked(w.ID())
	o.emit(telemetry.EventQueue, job, w.ID(), detail)
}

// maybeDispatchLocked pops the worker's next queued job if it is free and
// returns a closure that starts the worker on it. The closure must run
// after o.mu is released: RunJob can block (live workers dial TCP) and
// must never be entered while holding the orchestrator lock. Caller holds
// o.mu.
func (o *Orchestrator) maybeDispatchLocked(w Worker) func() {
	id := w.ID()
	if o.busy[id] {
		return nil
	}
	q := o.queues[id]
	if len(q) == 0 {
		return nil
	}
	job := q[0]
	o.queues[id] = q[1:]
	o.busy[id] = true
	o.queueDepthChangedLocked(id)
	o.m.busy[id].Set(1)
	o.emit(telemetry.EventAssign, job, id, "")
	fl := &inflight{job: job, worker: w, started: o.runtime.Now()}
	if job.Timeout > 0 {
		fl.cancelTimeout = o.runtime.After(job.Timeout, func() { o.deadlineExpired(fl) })
	}
	return func() {
		w.RunJob(job, func(res Result) { o.completed(fl, res) })
	}
}

// completed handles a worker's done callback: it records the attempt,
// retries failures while attempts remain, and dispatches the worker's next
// job. If the attempt's deadline already fired, the late result is
// discarded and the (no longer wedged) worker is simply put back to work.
func (o *Orchestrator) completed(fl *inflight, res Result) {
	finished := o.runtime.Now()
	o.mu.Lock()
	w := fl.worker
	if fl.settled {
		// The deadline timer already synthesized this attempt's Result (and
		// possibly retried the job elsewhere). The worker has finally come
		// back — un-wedge it and dispatch its next queued job.
		o.busy[w.ID()] = false
		o.m.busy[w.ID()].Set(0)
		run := o.maybeDispatchLocked(w)
		o.mu.Unlock()
		if run != nil {
			run()
		}
		return
	}
	fl.settled = true
	if fl.cancelTimeout != nil {
		fl.cancelTimeout()
	}
	job := fl.job
	o.collector.Add(trace.Record{
		JobID:     job.ID,
		Function:  job.Function,
		Worker:    w.ID(),
		Attempt:   job.Attempt,
		Submitted: job.SubmittedAt,
		Started:   fl.started,
		Finished:  finished,
		Boot:      res.Boot,
		Overhead:  res.Overhead,
		Exec:      res.Exec,
		Err:       res.Err,
	})
	o.noteAttemptLocked(w.ID(), res.Err == "", false)
	o.busy[w.ID()] = false
	o.m.busy[w.ID()].Set(0)
	if res.Err == "" {
		o.noteAttemptMetrics(w.ID(), "ok")
		o.emit(telemetry.EventSettle, job, w.ID(), "ok")
	} else {
		o.noteAttemptMetrics(w.ID(), "error")
		o.emit(telemetry.EventSettle, job, w.ID(), "error")
	}
	runs, cb := o.resolveAttemptLocked(w, job, res, finished)
	if run := o.maybeDispatchLocked(w); run != nil {
		runs = append(runs, run)
	}
	o.mu.Unlock()
	for _, run := range runs {
		run()
	}
	if cb != nil {
		res.StartedAt, res.FinishedAt = fl.started, finished
		cb(res)
	}
}

// deadlineExpired fires when an attempt's deadline passes before its
// worker reported back: the OP synthesizes a timed-out Result, leaves the
// wedged worker marked busy until (if ever) its late callback arrives, and
// reassigns the wedged worker's queued jobs so they do not wait behind a
// hang.
func (o *Orchestrator) deadlineExpired(fl *inflight) {
	o.mu.Lock()
	if fl.settled {
		o.mu.Unlock()
		return
	}
	fl.settled = true
	w := fl.worker
	job := fl.job
	now := o.runtime.Now()
	res := Result{
		Job:        job,
		WorkerID:   w.ID(),
		Err:        fmt.Sprintf("core: attempt %d of job %d exceeded its %v deadline on %s", job.Attempt, job.ID, job.Timeout, w.ID()),
		TimedOut:   true,
		StartedAt:  fl.started,
		FinishedAt: now,
	}
	o.collector.Add(trace.Record{
		JobID:     job.ID,
		Function:  job.Function,
		Worker:    w.ID(),
		Attempt:   job.Attempt,
		Submitted: job.SubmittedAt,
		Started:   fl.started,
		Finished:  now,
		Err:       res.Err,
	})
	o.noteAttemptLocked(w.ID(), false, true)
	o.noteAttemptMetrics(w.ID(), "timeout")
	o.emit(telemetry.EventSettle, job, w.ID(), "timeout")
	runs := o.reassignQueueLocked(w)
	more, cb := o.resolveAttemptLocked(w, job, res, now)
	runs = append(runs, more...)
	o.mu.Unlock()
	for _, run := range runs {
		run()
	}
	if cb != nil {
		cb(res)
	}
}

// reassignQueueLocked moves a wedged worker's queued (not yet started)
// jobs onto other workers. With a single-worker cluster there is nowhere
// to move them, so they stay put and wait for the worker's late recovery.
// Caller holds o.mu.
func (o *Orchestrator) reassignQueueLocked(wedged Worker) []func() {
	q := o.queues[wedged.ID()]
	if len(q) == 0 || len(o.workers) == 1 {
		return nil
	}
	o.queues[wedged.ID()] = nil
	o.queueDepthChangedLocked(wedged.ID())
	var runs []func()
	for _, job := range q {
		w := o.pickRetryWorkerLocked(wedged)
		o.pushJobLocked(w, job, "reassigned")
		if run := o.maybeDispatchLocked(w); run != nil {
			runs = append(runs, run)
		}
	}
	return runs
}

// resolveAttemptLocked decides retry-versus-final for a finished attempt.
// It returns dispatch closures to run after o.mu is released and, when the
// outcome is final, the job's completion callback. Caller holds o.mu.
func (o *Orchestrator) resolveAttemptLocked(failedOn Worker, job Job, res Result, finished time.Duration) (runs []func(), cb func(Result)) {
	retry := res.Err != "" && job.Attempt+1 < o.maxAttempts && !o.draining
	if retry {
		// The job stays pending: re-queue it on a different worker (a
		// fresh hardware environment — worker-local faults don't follow),
		// after the attempt's backoff delay.
		o.m.retries.Inc()
		next := job
		next.Attempt++
		if delay := o.retryDelayLocked(next.Attempt); delay > 0 {
			p := &parkedRetry{job: next, exclude: failedOn.ID()}
			o.parked[next.ID] = p
			p.cancel = o.runtime.After(delay, func() { o.requeueParked(next.ID) })
			return nil, nil
		}
		w := o.pickRetryWorkerLocked(failedOn)
		o.pushJobLocked(w, next, "retry")
		if run := o.maybeDispatchLocked(w); run != nil {
			runs = append(runs, run)
		}
		return runs, nil
	}
	o.noteFinal(job, res, finished)
	o.pending--
	o.m.pending.Set(float64(o.pending))
	cb = o.callbacks[job.ID]
	delete(o.callbacks, job.ID)
	if o.pending == 0 {
		o.idle.Broadcast()
	}
	return runs, cb
}

// retryDelayLocked computes attempt n's backoff: a jittered value in
// [d/2, d] with d = min(RetryBase·2^(n-1), RetryMax). Zero when backoff is
// disabled. The jitter comes from the orchestrator's seeded RNG, so sim
// runs remain deterministic. Caller holds o.mu.
func (o *Orchestrator) retryDelayLocked(attempt int) time.Duration {
	if o.retryBase <= 0 {
		return 0
	}
	shift := uint(attempt - 1)
	d := o.retryMax
	if shift < 62 {
		if exp := o.retryBase << shift; exp > 0 && exp < d {
			d = exp
		}
	}
	half := d / 2
	return half + time.Duration(o.rng.Int63n(int64(half)+1))
}

// requeueParked moves a backoff-parked job onto a worker's queue once its
// delay elapses. A job abandoned by Drain is no longer parked and is
// skipped.
func (o *Orchestrator) requeueParked(id int64) {
	o.mu.Lock()
	p, ok := o.parked[id]
	if !ok {
		o.mu.Unlock()
		return
	}
	delete(o.parked, id)
	var failed Worker
	for _, w := range o.workers {
		if w.ID() == p.exclude {
			failed = w
			break
		}
	}
	var w Worker
	if failed != nil {
		w = o.pickRetryWorkerLocked(failed)
	} else {
		w = o.pickWorkerLocked()
	}
	o.pushJobLocked(w, p.job, "retry-backoff")
	run := o.maybeDispatchLocked(w)
	o.mu.Unlock()
	if run != nil {
		run()
	}
}

// pickRetryWorkerLocked chooses a random breaker-eligible worker other
// than failed (unless there is no other choice). Caller holds o.mu.
func (o *Orchestrator) pickRetryWorkerLocked(failed Worker) Worker {
	ws := o.eligibleWorkersLocked()
	hasOther := false
	for _, w := range ws {
		if w.ID() != failed.ID() {
			hasOther = true
			break
		}
	}
	if !hasOther {
		if len(o.workers) == 1 {
			return o.workers[0]
		}
		// The failed worker is the only eligible one; any other worker is
		// still a fresher environment than re-running in place.
		ws = o.workers
	}
	for {
		w := ws[o.rng.Intn(len(ws))]
		if w.ID() != failed.ID() {
			return w
		}
	}
}

// noteAttemptLocked feeds one attempt's outcome into the worker's health
// record and trips or resets its breaker. Caller holds o.mu.
func (o *Orchestrator) noteAttemptLocked(workerID string, ok, timedOut bool) {
	h := o.health[workerID]
	if ok {
		h.completed++
		h.consec = 0
		if h.open {
			o.m.breakerTo[workerID]["closed"].Inc()
		}
		h.open = false
		return
	}
	h.failed++
	if timedOut {
		h.timedOut++
	}
	h.consec++
	if o.breakerThreshold > 0 && h.consec >= o.breakerThreshold {
		if !h.open {
			o.m.breakerTo[workerID]["open"].Inc()
		}
		h.open = true
		h.reopenAt = o.runtime.Now() + o.breakerProbe
	}
}

// Pending returns queued plus running (plus backoff-parked) jobs.
func (o *Orchestrator) Pending() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.pending
}

// QueueDepth returns the queued (not yet running) jobs for a worker.
func (o *Orchestrator) QueueDepth(workerID string) int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return len(o.queues[workerID])
}

// StartArrivals begins the paper's arrival process: every interval, one
// job is added to each of sampleSize randomly-chosen queues (with
// replacement across ticks, without within a tick). gen produces each
// job's function name and arguments. Call the returned stop function to
// end the process; only one arrival process may run at a time. The whole
// tick — sampling, generation, enqueueing — happens atomically with
// respect to stop, so a stopped process never enqueues a tick it had
// already sampled.
func (o *Orchestrator) StartArrivals(interval time.Duration, sampleSize int, gen func(rng *rand.Rand) (string, []byte)) (stop func(), err error) {
	if interval <= 0 {
		return nil, fmt.Errorf("core: arrival interval must be positive")
	}
	if sampleSize <= 0 || sampleSize > len(o.workers) {
		return nil, fmt.Errorf("core: sample size %d outside [1,%d]", sampleSize, len(o.workers))
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.arrivalCancel != nil {
		return nil, fmt.Errorf("core: arrival process already running")
	}
	if o.draining {
		return nil, fmt.Errorf("core: orchestrator is draining")
	}
	stopped := false
	var tick func()
	tick = func() {
		var runs []func()
		o.mu.Lock()
		if stopped || o.draining {
			o.mu.Unlock()
			return
		}
		// Sample without replacement within the tick.
		perm := o.rng.Perm(len(o.workers))
		targets := make([]Worker, 0, sampleSize)
		for _, idx := range perm[:sampleSize] {
			targets = append(targets, o.workers[idx])
		}
		for _, w := range targets {
			fn, args := gen(o.rng)
			_, run := o.enqueueLocked(w, fn, args, o.jobTimeout, nil)
			if run != nil {
				runs = append(runs, run)
			}
		}
		o.arrivalCancel = o.runtime.After(interval, tick)
		o.mu.Unlock()
		for _, run := range runs {
			run()
		}
	}
	o.arrivalCancel = o.runtime.After(interval, tick)
	return func() {
		o.mu.Lock()
		defer o.mu.Unlock()
		stopped = true
		if o.arrivalCancel != nil {
			o.arrivalCancel()
			o.arrivalCancel = nil
		}
	}, nil
}

// Quiesce blocks until no jobs are pending. Live mode only: in sim mode
// the engine's Run drives the cluster instead, and calling Quiesce from
// the simulation thread would deadlock.
func (o *Orchestrator) Quiesce() {
	o.mu.Lock()
	defer o.mu.Unlock()
	for o.pending > 0 {
		o.idle.Wait()
	}
}

// Drain gracefully shuts intake down: it stops the arrival process,
// rejects new submissions (Submit returns 0), and waits for pending work
// to finish. If ctx expires first, Drain abandons every job that has not
// started executing — queued and backoff-parked jobs — and returns them
// sorted by id; currently-executing jobs keep running in the background
// and are recorded normally when they finish. Abandoned jobs never invoke
// their completion callbacks. Live mode only, like Quiesce.
func (o *Orchestrator) Drain(ctx context.Context) []Job {
	o.mu.Lock()
	o.draining = true
	if o.arrivalCancel != nil {
		o.arrivalCancel()
		o.arrivalCancel = nil
	}
	// cond.Wait cannot select on ctx; poke the cond when ctx expires.
	stopWatch := context.AfterFunc(ctx, func() {
		o.mu.Lock()
		o.idle.Broadcast()
		o.mu.Unlock()
	})
	defer stopWatch()
	for o.pending > 0 && ctx.Err() == nil {
		o.idle.Wait()
	}
	if o.pending == 0 {
		o.mu.Unlock()
		return nil
	}
	var abandoned []Job
	for id := range o.queues {
		abandoned = append(abandoned, o.queues[id]...)
		o.queues[id] = nil
		o.queueDepthChangedLocked(id)
	}
	for id, p := range o.parked {
		p.cancel()
		abandoned = append(abandoned, p.job)
		delete(o.parked, id)
	}
	sort.Slice(abandoned, func(i, j int) bool { return abandoned[i].ID < abandoned[j].ID })
	o.pending -= len(abandoned)
	o.m.pending.Set(float64(o.pending))
	for _, j := range abandoned {
		delete(o.callbacks, j.ID)
	}
	if o.pending == 0 {
		o.idle.Broadcast()
	}
	o.mu.Unlock()
	return abandoned
}

// Draining reports whether Drain has been called.
func (o *Orchestrator) Draining() bool {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.draining
}
