package core

import (
	"context"
	"fmt"
	"testing"
	"time"

	"microfaas/internal/sim"
)

// newStealPair builds two single-engine orchestrators with disjoint
// job-id spaces, mimicking two shards of a plane.
func newStealPair(t *testing.T, workersEach int, service time.Duration) (*sim.Engine, *Orchestrator, *Orchestrator) {
	t.Helper()
	e := sim.NewEngine(7)
	build := func(base int64, label string) *Orchestrator {
		ws := make([]Worker, workersEach)
		for i := range ws {
			ws[i] = &fakeWorker{id: fmt.Sprintf("%s-w%02d", label, i), engine: e, service: service}
		}
		o, err := New(Config{
			Runtime: SimRuntime{Engine: e}, Workers: ws, Seed: 11,
			Policy: AssignLeastLoaded, JobIDBase: base, ShardLabel: label,
		})
		if err != nil {
			t.Fatal(err)
		}
		return o
	}
	return e, build(0, "a"), build(1<<40, "b")
}

func TestNegativeJobIDBaseRejected(t *testing.T) {
	e := sim.NewEngine(1)
	_, err := New(Config{
		Runtime:   SimRuntime{Engine: e},
		Workers:   []Worker{&fakeWorker{id: "w", engine: e, service: time.Second}},
		JobIDBase: -5,
	})
	if err == nil {
		t.Fatal("negative JobIDBase accepted")
	}
}

func TestJobIDBaseOffsetsSequence(t *testing.T) {
	_, _, b := newStealPair(t, 1, time.Second)
	if id := b.Submit("f", nil); id != 1<<40+1 {
		t.Fatalf("first id on offset shard = %d", id)
	}
}

// TestTakeQueuedKeepsHeads loads one worker with a deep queue and
// checks that TakeQueued drains from the tail, never takes the head
// job, updates pending, and forgets the stolen callbacks.
func TestTakeQueuedKeepsHeads(t *testing.T) {
	e, a, _ := newStealPair(t, 1, time.Second)
	fired := map[int64]bool{}
	var ids []int64
	for j := 0; j < 6; j++ {
		id := a.SubmitAsync("f", nil, func(res Result) { fired[res.Job.ID] = true })
		ids = append(ids, id)
	}
	// One running (job 1), five queued (jobs 2..6). Ask for more than
	// is stealable: only 4 may move — the queue head (job 2) stays.
	stolen := a.TakeQueued(10)
	if len(stolen) != 4 {
		t.Fatalf("stole %d jobs, want 4", len(stolen))
	}
	// Tail-first order: newest job (6) first.
	if stolen[0].Job.ID != ids[5] {
		t.Fatalf("first stolen id %d, want newest %d", stolen[0].Job.ID, ids[5])
	}
	for _, st := range stolen {
		if st.Job.ID == ids[0] || st.Job.ID == ids[1] {
			t.Fatalf("stole non-stealable job %d", st.Job.ID)
		}
		if st.Callback == nil {
			t.Fatalf("job %d lost its callback", st.Job.ID)
		}
	}
	if p := a.Pending(); p != 2 {
		t.Fatalf("pending after steal = %d, want 2", p)
	}
	e.RunAll()
	if !fired[ids[0]] || !fired[ids[1]] {
		t.Fatal("remaining jobs did not settle")
	}
	for _, st := range stolen {
		if fired[st.Job.ID] {
			t.Fatalf("stolen job %d settled on the victim", st.Job.ID)
		}
	}
}

func TestTakeQueuedNothingStealable(t *testing.T) {
	_, a, _ := newStealPair(t, 2, time.Second)
	if got := a.TakeQueued(5); got != nil {
		t.Fatalf("empty orchestrator yielded %d jobs", len(got))
	}
	a.SubmitAsync("f", nil, nil) // runs immediately, queue empty
	a.SubmitAsync("f", nil, nil)
	if got := a.TakeQueued(5); got != nil {
		t.Fatalf("running-only orchestrator yielded %d jobs", len(got))
	}
	if got := a.TakeQueued(0); got != nil {
		t.Fatal("TakeQueued(0) returned jobs")
	}
}

// TestSubmitJobPreservesIdentity migrates a queued job between two
// orchestrators and checks the result arrives under the original id
// with the original submit time intact.
func TestSubmitJobPreservesIdentity(t *testing.T) {
	e, a, b := newStealPair(t, 1, time.Second)
	var settled []Result
	for j := 0; j < 3; j++ {
		a.SubmitAsync("f", nil, func(res Result) { settled = append(settled, res) })
	}
	stolen := a.TakeQueued(1)
	if len(stolen) != 1 {
		t.Fatalf("stole %d, want 1", len(stolen))
	}
	want := stolen[0].Job.ID
	id, err := b.SubmitJob(stolen[0].Job, stolen[0].Callback)
	if err != nil {
		t.Fatal(err)
	}
	if id != want {
		t.Fatalf("SubmitJob changed the id: %d → %d", want, id)
	}
	e.RunAll()
	if len(settled) != 3 {
		t.Fatalf("%d results, want 3", len(settled))
	}
	found := false
	for _, res := range settled {
		if res.Job.ID == want {
			found = true
			if res.Job.SubmittedAt != 0 {
				t.Fatalf("migrated job's submit time rewritten to %v", res.Job.SubmittedAt)
			}
			if res.Err != "" {
				t.Fatalf("migrated job failed: %s", res.Err)
			}
		}
	}
	if !found {
		t.Fatalf("no result for migrated job %d", want)
	}
}

func TestSubmitJobValidates(t *testing.T) {
	_, _, b := newStealPair(t, 1, time.Second)
	if _, err := b.SubmitJob(Job{}, nil); err == nil {
		t.Fatal("SubmitJob accepted a job without an id")
	}
}

// TestSubmitJobRefusedWhileDraining checks the thief-side contract: a
// draining orchestrator returns id 0 and does not take the job.
func TestSubmitJobRefusedWhileDraining(t *testing.T) {
	e, a, b := newStealPair(t, 1, time.Second)
	for j := 0; j < 3; j++ {
		a.SubmitAsync("f", nil, nil)
	}
	stolen := a.TakeQueued(1)
	b.Drain(context.Background()) // b is idle; this just flips it to draining
	id, err := b.SubmitJob(stolen[0].Job, stolen[0].Callback)
	if err != nil {
		t.Fatal(err)
	}
	if id != 0 {
		t.Fatalf("draining orchestrator accepted job %d", id)
	}
	if p := b.Pending(); p != 0 {
		t.Fatalf("draining orchestrator holds %d pending", p)
	}
	// The caller still owns the job; send it home.
	if id, err := a.SubmitJob(stolen[0].Job, stolen[0].Callback); err != nil || id == 0 {
		t.Fatalf("victim refused its own job back: id=%d err=%v", id, err)
	}
	e.RunAll()
	if p := a.Pending(); p != 0 {
		t.Fatalf("%d jobs stuck", p)
	}
}

func TestQueuedCountsOnlyWaitingJobs(t *testing.T) {
	_, a, _ := newStealPair(t, 1, time.Second)
	if q := a.Queued(); q != 0 {
		t.Fatalf("empty Queued() = %d", q)
	}
	for j := 0; j < 4; j++ {
		a.SubmitAsync("f", nil, nil)
	}
	if q := a.Queued(); q != 3 {
		t.Fatalf("Queued() = %d, want 3 (one running)", q)
	}
	if p := a.Pending(); p != 4 {
		t.Fatalf("Pending() = %d, want 4", p)
	}
}
