package core

import (
	"fmt"
	"sort"

	"microfaas/internal/telemetry"
	"microfaas/internal/tracing"
)

// Cross-shard work stealing (the victim and thief halves of the shard
// plane's steal protocol; see internal/shard).
//
// TakeQueued is the victim side: it removes queued-but-not-started jobs
// from this orchestrator — newest first, deepest queues first, exactly
// how classic work stealing takes from the tail — together with their
// completion callbacks, and forgets them entirely (pending count, queue
// gauges, callbacks). SubmitJob is the thief side: it enqueues a job
// built elsewhere while preserving its identity — id, submission time,
// attempt count, and trace context — so latency accounting, async
// pickup, and span telescoping survive the migration. Job ids must be
// cluster-unique across shards for this to be safe; Config.JobIDBase
// gives each shard a disjoint id space.

// Stolen is one job removed by TakeQueued: the job itself plus the
// completion callback registered at submit (nil when the submitter did
// not ask for one). The thief shard re-registers the callback under the
// job's unchanged id.
type Stolen struct {
	// Job is the migrating invocation, identity intact.
	Job Job
	// Callback is the job's completion callback (nil if none).
	Callback func(Result)
}

// TakeQueued removes up to max queued (not yet running) jobs and returns
// them with their callbacks. Jobs come off the tails of the deepest
// queues first (ties by registration order), and every queue keeps its
// head job: the next dispatch each worker would make stays local, so
// stealing never adds latency to work that was about to run. Parked
// retries are not stealable (their backoff timer owns them). Returns nil
// when there is nothing safely stealable.
func (o *Orchestrator) TakeQueued(max int) []Stolen {
	if max <= 0 {
		return nil
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	// One sorted pass (deepest queue first, ties by registration order)
	// instead of a rescan per stolen job: a rack-sized victim shard hands
	// over thousands of jobs per aggregator tick.
	victims := make([]*workerSlot, 0, len(o.slots))
	for _, s := range o.slots {
		if s.qlen() >= 2 {
			victims = append(victims, s)
		}
	}
	sort.Slice(victims, func(i, j int) bool {
		if victims[i].qlen() != victims[j].qlen() {
			return victims[i].qlen() > victims[j].qlen()
		}
		return victims[i].idx < victims[j].idx
	})
	var out []Stolen
	for _, victim := range victims {
		for len(out) < max && victim.qlen() >= 2 {
			job := victim.qpoptail()
			o.emit(telemetry.EventQueue, job, victim.id, "stolen-from")
			cb := o.callbacks[job.ID]
			delete(o.callbacks, job.ID)
			o.pending--
			out = append(out, Stolen{Job: job, Callback: cb})
		}
		o.queueDepthChangedLocked(victim)
		if len(out) == max {
			break
		}
	}
	if len(out) > 0 {
		o.m.pending.Set(float64(o.pending))
		if o.pending == 0 {
			o.idle.Broadcast()
		}
	}
	return out
}

// SubmitJob enqueues a job that already exists elsewhere in the cluster
// (a steal, or any cross-shard handoff), preserving its id, submission
// time, attempt count, timeout, and trace context. The assignment policy
// picks the local worker. Returns the job's (unchanged) id, or 0 without
// enqueueing when this orchestrator is draining — the caller still holds
// the job and must re-route it.
func (o *Orchestrator) SubmitJob(job Job, cb func(Result)) (int64, error) {
	if job.ID == 0 {
		return 0, fmt.Errorf("core: SubmitJob needs a job with an assigned id")
	}
	o.mu.Lock()
	if o.draining {
		o.mu.Unlock()
		return 0, nil
	}
	s := o.pickWorkerLocked(job.Function)
	o.span(job, tracing.PhaseSteal, s.id, o.runtime.Now(), o.runtime.Now(), "migrated")
	o.pushJobLocked(s, job, "stolen")
	if cb != nil {
		o.callbacks[job.ID] = cb
	}
	o.pending++
	o.m.pending.Set(float64(o.pending))
	run := o.maybeDispatchLocked(s)
	o.mu.Unlock()
	if run != nil {
		run.run()
	}
	return job.ID, nil
}

// qpoptail removes and returns the newest queued job. Call only when
// qlen >= 1.
func (s *workerSlot) qpoptail() Job {
	last := len(s.queue) - 1
	j := s.queue[last]
	s.queue[last] = Job{}
	s.queue = s.queue[:last]
	if s.qhead == len(s.queue) {
		s.queue = s.queue[:0]
		s.qhead = 0
	}
	return j
}
