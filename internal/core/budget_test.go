package core

import (
	"context"
	"testing"
	"time"

	"microfaas/internal/sim"
)

// jouleWorker reports a fixed metered energy on every completed job, so
// budget accounting is exact without a full power-model rig.
type jouleWorker struct {
	id      string
	engine  *sim.Engine
	service time.Duration
	joules  float64
}

func (w *jouleWorker) ID() string { return w.id }

func (w *jouleWorker) RunJob(job Job, done func(Result)) {
	w.engine.Schedule(w.service, func() {
		done(Result{Job: job, WorkerID: w.id, Joules: w.joules})
	})
}

func TestEnergyBudgetAccountingAndExhaustion(t *testing.T) {
	e := sim.NewEngine(1)
	w := &jouleWorker{id: "w0", engine: e, service: 10 * time.Millisecond, joules: 10}
	o, err := New(Config{
		Runtime: SimRuntime{Engine: e}, Workers: []Worker{w},
		EnergyBudgets: map[string]float64{"F": 25},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Two 10 J jobs: 20 J spent, under the 25 J cap.
	o.Submit("F", nil)
	o.Submit("F", nil)
	e.RunAll()
	bs := o.EnergyBudgets()
	if len(bs) != 1 || bs[0].Function != "F" {
		t.Fatalf("budgets = %+v", bs)
	}
	if bs[0].SpentJoules != 20 || bs[0].Exhausted {
		t.Fatalf("after 2 jobs: spent %.0f exhausted %v, want 20 J not exhausted",
			bs[0].SpentJoules, bs[0].Exhausted)
	}
	// The third crosses the cap and latches exhaustion.
	o.Submit("F", nil)
	e.RunAll()
	if bs = o.EnergyBudgets(); !bs[0].Exhausted || bs[0].SpentJoules != 30 {
		t.Fatalf("after 3 jobs: %+v, want exhausted at 30 J", bs[0])
	}
	// An unbudgeted function is never tracked.
	o.Submit("G", nil)
	e.RunAll()
	if bs = o.EnergyBudgets(); len(bs) != 1 {
		t.Fatalf("unbudgeted function grew the budget list: %+v", bs)
	}
	// Raising the cap above the spend clears the latch; removal drops the
	// budget entirely.
	o.SetEnergyBudget("F", 100)
	if bs = o.EnergyBudgets(); bs[0].Exhausted || bs[0].LimitJoules != 100 {
		t.Fatalf("after raise: %+v, want limit 100 not exhausted", bs[0])
	}
	o.SetEnergyBudget("F", 0)
	if bs = o.EnergyBudgets(); len(bs) != 0 {
		t.Fatalf("after removal: %+v, want empty", bs)
	}
}

func TestBudgetThrottleHoldsSubmissions(t *testing.T) {
	const hold = 500 * time.Millisecond
	e := sim.NewEngine(1)
	w := &jouleWorker{id: "w0", engine: e, service: 10 * time.Millisecond, joules: 10}
	o, err := New(Config{
		Runtime: SimRuntime{Engine: e}, Workers: []Worker{w},
		EnergyBudgets:  map[string]float64{"F": 5},
		BudgetThrottle: hold,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Job 1 exhausts the 5 J budget on completion.
	o.Submit("F", nil)
	e.RunAll()
	if bs := o.EnergyBudgets(); !bs[0].Exhausted {
		t.Fatalf("budget not exhausted after 10 J spend: %+v", bs[0])
	}
	// Job 2 must serve the hold before it may queue.
	var res Result
	start := e.Now()
	id := o.SubmitAsync("F", nil, func(r Result) { res = r })
	if id == 0 {
		t.Fatal("throttled submission rejected; it must be accepted, just held")
	}
	if got := o.Pending(); got != 1 {
		t.Fatalf("pending during hold = %d, want 1", got)
	}
	e.RunAll()
	if res.Job.ID != id || res.Err != "" {
		t.Fatalf("throttled job result = %+v", res)
	}
	if wait := res.StartedAt - start; wait < hold {
		t.Fatalf("throttled job started after %v, want ≥ %v hold", wait, hold)
	}
	// An unbudgeted function is not throttled even while F is exhausted.
	start = e.Now()
	var other Result
	o.SubmitAsync("G", nil, func(r Result) { other = r })
	e.RunAll()
	if wait := other.StartedAt - start; wait >= hold {
		t.Fatalf("unbudgeted function was throttled: waited %v", wait)
	}
}

func TestBudgetThrottledJobAbandonedByDrain(t *testing.T) {
	e := sim.NewEngine(1)
	w := &jouleWorker{id: "w0", engine: e, service: 10 * time.Millisecond, joules: 10}
	o, err := New(Config{
		Runtime: SimRuntime{Engine: e}, Workers: []Worker{w},
		EnergyBudgets:  map[string]float64{"F": 5},
		BudgetThrottle: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	o.Submit("F", nil)
	e.RunAll()
	fired := false
	id := o.SubmitAsync("F", nil, func(Result) { fired = true })
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	abandoned := o.Drain(ctx)
	if len(abandoned) != 1 || abandoned[0].ID != id {
		t.Fatalf("abandoned = %+v, want the held job %d", abandoned, id)
	}
	e.RunAll()
	if fired {
		t.Fatal("abandoned throttled job's callback fired")
	}
	if got := o.Pending(); got != 0 {
		t.Fatalf("pending after drain = %d, want 0", got)
	}
}
