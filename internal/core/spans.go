package core

import (
	"time"

	"microfaas/internal/tracing"
)

// Orchestrator-side span recording. These helpers mirror the telemetry
// emit path: they are callable while holding o.mu (the tracer's lock is a
// leaf), and every method is a no-op on a nil tracer or an untraced job,
// so the disabled path costs one nil/validity check and — like telemetry —
// never touches the RNG or the clock beyond reads, keeping seeded sim
// runs bit-identical.

// span records one orchestrator-side interval span for the job.
func (o *Orchestrator) span(job Job, phase tracing.Phase, worker string, start, end time.Duration, detail string) {
	o.tracer.Record(job.Trace, tracing.Span{
		Phase:    phase,
		Job:      job.ID,
		Function: job.Function,
		Worker:   worker,
		Shard:    o.shardLabel,
		Attempt:  job.Attempt,
		Start:    start,
		End:      end,
		Detail:   detail,
	})
}

// spanMarker records a zero-length annotation span (submit, dispatch,
// settle) at the given instant.
func (o *Orchestrator) spanMarker(job Job, phase tracing.Phase, worker string, at time.Duration, detail string) {
	o.span(job, phase, worker, at, at, detail)
}

// faultSpan annotates a failed or timed-out attempt.
func (o *Orchestrator) faultSpan(job Job, worker string, at time.Duration, errMsg string) {
	o.tracer.Record(job.Trace, tracing.Span{
		Phase:    tracing.PhaseFault,
		Job:      job.ID,
		Function: job.Function,
		Worker:   worker,
		Shard:    o.shardLabel,
		Attempt:  job.Attempt,
		Start:    at,
		End:      at,
		Err:      errMsg,
	})
}
