package model

import (
	"math"
	"testing"
	"time"

	"microfaas/internal/netsim"
	"microfaas/internal/power"
)

// within asserts |got-want|/want <= tol.
func within(t *testing.T, what string, got, want, tol float64) {
	t.Helper()
	if want == 0 {
		t.Fatalf("%s: zero target", what)
	}
	if math.Abs(got-want)/math.Abs(want) > tol {
		t.Fatalf("%s = %.3f, want %.3f ± %.0f%%", what, got, want, tol*100)
	}
}

func TestSeventeenFunctions(t *testing.T) {
	fs := Functions()
	if len(fs) != 17 {
		t.Fatalf("suite has %d functions, want 17 (Table I)", len(fs))
	}
	cpu, net := 0, 0
	for _, f := range fs {
		switch f.Class {
		case CPUBound:
			cpu++
		case NetworkBound:
			net++
		}
		if f.Class == NetworkBound && f.Service == ServiceNone {
			t.Fatalf("%s is network-bound but has no backing service", f.Name)
		}
		if f.Class == CPUBound && f.Service != ServiceNone {
			t.Fatalf("%s is CPU-bound but names service %q", f.Name, f.Service)
		}
		if f.WorkARM <= 0 || f.WorkX86 <= 0 || f.CPUFrac <= 0 || f.CPUFrac > 1 {
			t.Fatalf("%s has implausible parameters: %+v", f.Name, f)
		}
	}
	if cpu != 9 || net != 8 {
		t.Fatalf("class split = %d CPU / %d network, want 9/8 (Table I)", cpu, net)
	}
	// Table I stars six FunctionBench-derived functions.
	stars := 0
	for _, f := range fs {
		if f.FromFunctionBench {
			stars++
		}
	}
	if stars != 6 {
		t.Fatalf("%d FunctionBench adaptations, want 6", stars)
	}
}

func TestClusterThroughputMatchesPaper(t *testing.T) {
	// Sec V: 10 SBCs → 200.6 func/min; 6 VMs → 211.7 func/min.
	sbc := ClusterThroughput(SBCCount, ARM, DefaultWorkerLink(ARM))
	within(t, "10-SBC throughput (func/min)", sbc, PaperSBCThroughput, 0.02)
	vm := ClusterThroughput(VMCount, X86, DefaultWorkerLink(X86))
	within(t, "6-VM throughput (func/min)", vm, PaperVMThroughput, 0.02)
}

func TestFasterAndHalfSpeedCounts(t *testing.T) {
	// Sec V: "out of 17 functions, the MicroFaaS cluster executes four
	// faster than the conventional cluster and nine at more than half the
	// speed of the conventional cluster."
	armLink, x86Link := DefaultWorkerLink(ARM), DefaultWorkerLink(X86)
	faster, atHalf, below := 0, 0, 0
	for _, f := range Functions() {
		arm := f.TotalTime(ARM, armLink)
		x86 := f.TotalTime(X86, x86Link)
		ratio := float64(x86) / float64(arm) // MicroFaaS speed relative to conventional
		switch {
		case ratio > 1:
			faster++
		case ratio > 0.5:
			atHalf++
		default:
			below++
		}
	}
	if faster != 4 {
		t.Errorf("functions faster on MicroFaaS = %d, want 4", faster)
	}
	if atHalf != 9 {
		t.Errorf("functions at more than half speed = %d, want 9", atHalf)
	}
	if below != 4 {
		t.Errorf("functions below half speed = %d, want 4", below)
	}
	if t.Failed() {
		for _, f := range Functions() {
			arm := f.TotalTime(ARM, armLink)
			x86 := f.TotalTime(X86, x86Link)
			t.Logf("%-12s arm=%-8v x86=%-8v speed-ratio=%.3f",
				f.Name, arm.Round(time.Millisecond), x86.Round(time.Millisecond),
				float64(x86)/float64(arm))
		}
	}
}

func TestFastFourAreChattySmallPayloadFunctions(t *testing.T) {
	// The mechanism behind the fast four: bridged-virtio per-RTT penalty on
	// chatty protocols. Verify the winners are exactly the KV/MQ ops.
	armLink, x86Link := DefaultWorkerLink(ARM), DefaultWorkerLink(X86)
	want := map[string]bool{"RedisInsert": true, "RedisUpdate": true, "MQProduce": true, "MQConsume": true}
	for _, f := range Functions() {
		faster := f.TotalTime(ARM, armLink) < f.TotalTime(X86, x86Link)
		if faster != want[f.Name] {
			t.Errorf("%s: faster-on-MicroFaaS = %v, want %v", f.Name, faster, want[f.Name])
		}
	}
}

func TestMicroFaaSEnergyPerFunction(t *testing.T) {
	// An SBC draws its busy power for the whole cycle (boot + job): 5.7 J.
	sbc := power.DefaultSBCModel()
	cycle := MeanCycleTime(ARM, DefaultWorkerLink(ARM))
	joules := float64(power.Energy(sbc.BusyW, cycle))
	within(t, "MicroFaaS J/function", joules, PaperMicroFaaSJoulesPerFunc, 0.05)
}

func TestConventionalEnergyPerFunction(t *testing.T) {
	// Six busy VMs: server power at their utilization over the cluster's
	// throughput: 32.0 J/function.
	srv := power.DefaultServerModel()
	util := VMUtilization(VMCount)
	watts := float64(srv.Power(util))
	thpt := ClusterThroughput(VMCount, X86, DefaultWorkerLink(X86)) / 60 // func/s
	joules := watts / thpt
	within(t, "conventional J/function", joules, PaperConventionalJoulesPerFunc, 0.05)
}

func TestPeakConventionalEfficiency(t *testing.T) {
	// Fig 4: saturating the server with VMs reaches ≈16.1 J/function.
	srv := power.DefaultServerModel()
	joules := float64(srv.Power(1)) / (SaturatedThroughput() / 60)
	within(t, "peak conventional J/function", joules, PaperPeakConventionalJoulesPerFunc, 0.05)
}

func TestHeadlineEfficiencyGain(t *testing.T) {
	sbc := power.DefaultSBCModel()
	mfJ := float64(power.Energy(sbc.BusyW, MeanCycleTime(ARM, DefaultWorkerLink(ARM))))
	srv := power.DefaultServerModel()
	convJ := float64(srv.Power(VMUtilization(VMCount))) /
		(ClusterThroughput(VMCount, X86, DefaultWorkerLink(X86)) / 60)
	within(t, "energy-efficiency gain (x)", convJ/mfJ, PaperEnergyEfficiencyGain, 0.05)
}

func TestVMUtilizationSaneAtSixVMs(t *testing.T) {
	u := VMUtilization(VMCount)
	if u <= 0.25 || u >= 0.6 {
		t.Fatalf("utilization at 6 VMs = %.3f, expect mid-range (six single-core VMs on 12 cores)", u)
	}
	// Saturation should land in the mid-teens of VMs (Fig 4's sweep).
	nSat := 1
	for VMUtilization(nSat) < 1 {
		nSat++
		if nSat > 50 {
			t.Fatal("server never saturates")
		}
	}
	if nSat < 12 || nSat > 20 {
		t.Fatalf("saturation at %d VMs, expect 12–20", nSat)
	}
}

func TestExecAndOverheadComposition(t *testing.T) {
	link := DefaultWorkerLink(ARM)
	for _, f := range Functions() {
		if got := f.TotalTime(ARM, link); got != f.ExecTime(ARM, link)+f.OverheadTime(ARM, link) {
			t.Fatalf("%s: total != exec + overhead", f.Name)
		}
		if f.ExecTime(ARM, link) < f.Work(ARM) {
			t.Fatalf("%s: exec < pure work", f.Name)
		}
		if f.CPUTime(ARM) > f.TotalTime(ARM, link) {
			t.Fatalf("%s: CPU demand exceeds wall time", f.Name)
		}
	}
}

func TestCOSGetDominatedByFastEthernetTransfer(t *testing.T) {
	// Sec V: upgrading the SBC NIC to GigE "would likely reduce the
	// overhead of functions like COSGet" — the 8 MiB download must dominate
	// COSGet's ARM runtime on Fast Ethernet.
	f, err := FunctionByName("COSGet")
	if err != nil {
		t.Fatal(err)
	}
	fe := f.ExecTime(ARM, netsim.FastEthernet())
	ge := f.ExecTime(ARM, netsim.GigabitEthernet())
	if fe < 2*ge {
		t.Fatalf("COSGet on FE %v vs GigE %v: transfer should dominate", fe, ge)
	}
}

func TestFunctionByName(t *testing.T) {
	f, err := FunctionByName("CascSHA")
	if err != nil || f.Name != "CascSHA" {
		t.Fatalf("FunctionByName: %+v, %v", f, err)
	}
	if _, err := FunctionByName("Nope"); err == nil {
		t.Fatal("unknown name accepted")
	}
}

func TestFunctionsReturnsCopy(t *testing.T) {
	fs := Functions()
	fs[0].WorkARM = time.Hour
	if Functions()[0].WorkARM == time.Hour {
		t.Fatal("Functions leaked internal slice")
	}
}
